//! Deriving a [`PipelineProgram`] from a concrete runtime
//! configuration, and [`verified_switch`] — the front door the rest of
//! the workspace uses to build a [`Switch`].
//!
//! [`program_for_switch`] reads the facts a [`SwitchConfig`] and its
//! application's [`SketchMeta`] already state — Bloom filter geometry,
//! `fk_buffer` capacity, application array count and width — and writes
//! them down as the IR the verifier can reason about. Nothing is
//! invented: every register array, step, and index bound is computed
//! from the same numbers the runtime uses, so a verdict about the
//! program is a verdict about the deployment.

use ow_common::error::OwError;
use ow_sketch::SketchMeta;
use ow_switch::app::DataPlaneApp;
use ow_switch::flowkey::FlowkeyTracker;
use ow_switch::placement::StageLimits;
use ow_switch::switch::{Switch, SwitchConfig};

use crate::diag::{Diagnostic, ErrorCode, VerifyReport};
use crate::ir::{
    AccessDecl, AccessKind, FeatureDecl, PacketClass, PathDecl, PipelineProgram, RegisterDecl,
    StepDecl,
};
use crate::verify::verify;

/// Derive the static pipeline program that a [`SwitchConfig`] wrapped
/// around an application with `meta` / `app_states` actually deploys.
pub fn program_for_switch(
    cfg: &SwitchConfig,
    meta: &SketchMeta,
    app_states: usize,
) -> PipelineProgram {
    let app_states = app_states.max(1);
    let fk_cells = cfg.fk_capacity.max(1);

    // Read the Bloom geometry off the exact tracker the switch builds.
    let tracker = FlowkeyTracker::new(cfg.fk_capacity, cfg.expected_flows, cfg.seed);
    let bloom = tracker.bloom_meta();
    let hashes = bloom.hash_units.max(1);
    // On hardware a k-hash Bloom filter is k register arrays (one SALU
    // each); split the simulator's single bit array accordingly.
    let bloom_cells = (bloom.memory_bytes * 8 / 32).div_ceil(hashes).max(1);
    // Both regions' tracking state lives on-chip simultaneously.
    let fk_sram = ((2 * tracker.memory_bytes()).div_ceil(1024)) as u32;
    let app_sram_per_array = ((2 * app_states * 4)
        .div_ceil(1024)
        .div_ceil(meta.register_arrays.max(1))) as u32;

    let mut program = PipelineProgram::new(
        format!(
            "switch({},fk={},flows={})",
            meta.name, cfg.fk_capacity, cfg.expected_flows
        ),
        StageLimits::default(),
    )
    .register(RegisterDecl::new("signal_state", 1, 1))
    .register(RegisterDecl::new("fk_buffer", 2, fk_cells))
    .register(RegisterDecl::new("reset_counter", 1, 1));
    for h in 0..hashes {
        program = program.register(RegisterDecl::new(format!("bloom_{h}"), 2, bloom_cells));
    }
    for a in 0..meta.register_arrays.max(1) {
        program = program.register(RegisterDecl::new(format!("app_arr{a}"), 2, app_states));
    }

    // Features, in the Table-2 shapes: signal + consistency first, then
    // flowkey tracking (one dependent step per Bloom hash, then the
    // append), the application's own update steps, AFR generation, and
    // the in-switch reset chain.
    program = program
        .feature(FeatureDecl::new(
            "Signal",
            vec![StepDecl {
                sram_kb: 32,
                salus: 1,
                vliw: 3,
                gateways: 2,
            }],
        ))
        .feature(FeatureDecl::new(
            "Consistency model",
            vec![StepDecl {
                sram_kb: 0,
                salus: 0,
                vliw: 2,
                gateways: 1,
            }],
        ));
    let mut fk_steps: Vec<StepDecl> = (0..hashes)
        .map(|_| StepDecl {
            sram_kb: fk_sram / (hashes as u32 + 1),
            salus: 1,
            vliw: 2,
            gateways: 2,
        })
        .collect();
    fk_steps.push(StepDecl {
        sram_kb: fk_sram - (fk_sram / (hashes as u32 + 1)) * hashes as u32,
        salus: 1,
        vliw: 1,
        gateways: 1,
    });
    program = program
        .feature(FeatureDecl::new("Flowkey tracking", fk_steps))
        .feature(FeatureDecl::new(
            meta.name,
            (0..meta.register_arrays.max(1))
                .map(|_| StepDecl {
                    sram_kb: app_sram_per_array,
                    salus: 1,
                    vliw: 2,
                    gateways: 1,
                })
                .collect(),
        ))
        .feature(FeatureDecl::new(
            "AFR generation",
            vec![StepDecl {
                sram_kb: 0,
                salus: 0,
                vliw: 4,
                gateways: 3,
            }],
        ))
        .feature(FeatureDecl::new(
            "In-switch reset",
            vec![
                StepDecl {
                    sram_kb: 32,
                    salus: 1,
                    vliw: 2,
                    gateways: 2,
                },
                StepDecl {
                    sram_kb: 0,
                    salus: 0,
                    vliw: 2,
                    gateways: 2,
                },
                StepDecl {
                    sram_kb: 0,
                    salus: 0,
                    vliw: 1,
                    gateways: 1,
                },
            ],
        ));

    // Normal measured traffic: signal check, Bloom dedup on every hash,
    // fk_buffer append, one update per application array.
    let mut normal = vec![
        AccessDecl::new("signal_state", AccessKind::Max, 0),
        AccessDecl::new("fk_buffer", AccessKind::Write, fk_cells - 1),
    ];
    for h in 0..hashes {
        normal.push(AccessDecl::new(
            format!("bloom_{h}"),
            AccessKind::Max,
            bloom_cells - 1,
        ));
    }
    for a in 0..meta.register_arrays.max(1) {
        normal.push(AccessDecl::new(
            format!("app_arr{a}"),
            AccessKind::AddSat,
            app_states - 1,
        ));
    }
    program = program.path(PathDecl::new("normal", PacketClass::Normal, normal));

    // Collection packets: enumerate fk_buffer, query the first app array
    // (the AFR statistic); one recirculation per buffered key.
    program = program.path(
        PathDecl::new(
            "collect",
            PacketClass::Recirculated,
            vec![
                AccessDecl::new("fk_buffer", AccessKind::Read, fk_cells - 1),
                AccessDecl::new("app_arr0", AccessKind::Read, app_states - 1),
            ],
        )
        .with_recirc_bound(fk_cells as u64),
    );

    // Clear packets: bump the progress counter, zero one index of each
    // application array; bounded by the region size.
    let mut clear = vec![AccessDecl::new("reset_counter", AccessKind::AddSat, 0)];
    for a in 0..meta.register_arrays.max(1) {
        clear.push(AccessDecl::new(
            format!("app_arr{a}"),
            AccessKind::Write,
            app_states - 1,
        ));
    }
    program = program.path(
        PathDecl::new("clear", PacketClass::Clear, clear).with_recirc_bound(app_states as u64),
    );

    // §8 control-plane paths: snapshot reads only, no SALU access.
    program
        .path(PathDecl::new("retransmit", PacketClass::Retransmit, vec![]))
        .path(PathDecl::new("os-read", PacketClass::OsRead, vec![]))
}

/// Statically verify the pipeline a `(cfg, app)` pair deploys, then
/// build the switch. This is the supported construction path: examples,
/// tests, the benchmark harness, and the network simulator all come
/// through here, so no unverified pipeline ever runs.
pub fn verified_switch<A: DataPlaneApp>(
    cfg: SwitchConfig,
    region_a: A,
    region_b: A,
) -> Result<Switch<A>, Box<VerifyReport>> {
    let program = program_for_switch(&cfg, &region_a.meta(), region_a.states_per_array());
    let witness = verify(&program)?;
    witness
        .build_switch(cfg, region_a, region_b)
        .map_err(|e| Box::new(mismatch_report(witness.program().name.clone(), e)))
}

/// Wrap a witness/configuration mismatch as a one-diagnostic report so
/// callers handle a single error type.
fn mismatch_report(program: String, err: OwError) -> VerifyReport {
    VerifyReport {
        program,
        ok: false,
        stages_used: 0,
        placement_method: String::new(),
        density: None,
        totals: Default::default(),
        diagnostics: vec![Diagnostic::error(
            ErrorCode::ConfigMismatch,
            "build_switch".to_string(),
            err.to_string(),
        )],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ow_common::flowkey::KeyKind;
    use ow_sketch::CountMin;
    use ow_switch::app::FrequencyApp;

    fn quick_cfg() -> SwitchConfig {
        SwitchConfig {
            fk_capacity: 1024,
            expected_flows: 4096,
            ..SwitchConfig::default()
        }
    }

    fn app(seed: u64) -> FrequencyApp<CountMin> {
        FrequencyApp::new(CountMin::new(2, 4096, seed), KeyKind::SrcIp, false)
    }

    #[test]
    fn derived_program_verifies_and_builds() {
        let cfg = quick_cfg();
        let sw = verified_switch(cfg, app(1), app(1)).expect("verifies");
        // The pipeline actually works.
        drop(sw);
    }

    #[test]
    fn derived_program_matches_runtime_geometry() {
        let cfg = quick_cfg();
        let a = app(1);
        let p = program_for_switch(&cfg, &a.meta(), a.states_per_array());
        let fk = p.find_register("fk_buffer").unwrap();
        assert_eq!(fk.region_cells, 1024);
        assert_eq!(fk.regions, 2);
        let arr = p.find_register("app_arr0").unwrap();
        assert_eq!(arr.region_cells, a.states_per_array());
        // One bloom array per hash the real filter performs.
        let bloom = FlowkeyTracker::new(cfg.fk_capacity, cfg.expected_flows, cfg.seed).bloom_meta();
        for h in 0..bloom.hash_units {
            assert!(p.find_register(&format!("bloom_{h}")).is_some());
        }
    }
}
