//! Offline stand-in for `serde_derive`.
//!
//! Parses the deriving item with nothing but `proc_macro` (no syn /
//! quote, which are unavailable offline) and emits an implementation of
//! the workspace's [`serde::Serialize`] shim trait, which models values
//! as a JSON tree. Supports the shapes this repository actually derives
//! on: non-generic named-field structs, tuple structs, unit structs,
//! and enums whose variants are unit (optionally with explicit
//! discriminants), tuple, or struct-like.
//!
//! `#[derive(Deserialize)]` is accepted and expands to nothing: no code
//! in the workspace deserializes, but the attribute appears throughout
//! the source and must keep compiling.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derive the `serde::Serialize` shim trait.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let body = match &item.shape {
        Shape::NamedStruct(fields) => {
            let pairs = fields
                .iter()
                .map(|f| format!("(\"{f}\".to_string(), ::serde::Serialize::to_value(&self.{f}))"))
                .collect::<Vec<_>>()
                .join(", ");
            format!("::serde::Value::Object(::std::vec![{pairs}])")
        }
        Shape::TupleStruct(n) => {
            if *n == 1 {
                // Newtype structs serialize transparently, like serde.
                "::serde::Serialize::to_value(&self.0)".to_string()
            } else {
                let items = (0..*n)
                    .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                    .collect::<Vec<_>>()
                    .join(", ");
                format!("::serde::Value::Array(::std::vec![{items}])")
            }
        }
        Shape::UnitStruct => "::serde::Value::Object(::std::vec![])".to_string(),
        Shape::Enum(variants) => {
            let arms = variants
                .iter()
                .map(|v| variant_arm(&item.name, v))
                .collect::<Vec<_>>()
                .join("\n");
            format!("match self {{ {arms} }}")
        }
    };
    format!(
        "impl ::serde::Serialize for {} {{\n  fn to_value(&self) -> ::serde::Value {{\n    {}\n  }}\n}}",
        item.name, body
    )
    .parse()
    .expect("serde_derive shim generated invalid Rust")
}

/// Accept `#[derive(Deserialize)]` as a no-op.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

fn variant_arm(ty: &str, v: &Variant) -> String {
    match &v.shape {
        VariantShape::Unit => format!(
            "{ty}::{name} => ::serde::Value::String(\"{name}\".to_string()),",
            name = v.name
        ),
        VariantShape::Tuple(n) => {
            let binds = (0..*n).map(|i| format!("f{i}")).collect::<Vec<_>>();
            let inner = if *n == 1 {
                "::serde::Serialize::to_value(f0)".to_string()
            } else {
                let items = binds
                    .iter()
                    .map(|b| format!("::serde::Serialize::to_value({b})"))
                    .collect::<Vec<_>>()
                    .join(", ");
                format!("::serde::Value::Array(::std::vec![{items}])")
            };
            format!(
                "{ty}::{name}({binds}) => ::serde::Value::Object(::std::vec![(\"{name}\".to_string(), {inner})]),",
                name = v.name,
                binds = binds.join(", ")
            )
        }
        VariantShape::Named(fields) => {
            let binds = fields.join(", ");
            let pairs = fields
                .iter()
                .map(|f| format!("(\"{f}\".to_string(), ::serde::Serialize::to_value({f}))"))
                .collect::<Vec<_>>()
                .join(", ");
            format!(
                "{ty}::{name} {{ {binds} }} => ::serde::Value::Object(::std::vec![(\"{name}\".to_string(), ::serde::Value::Object(::std::vec![{pairs}]))]),",
                name = v.name
            )
        }
    }
}

struct Item {
    name: String,
    shape: Shape,
}

enum Shape {
    NamedStruct(Vec<String>),
    TupleStruct(usize),
    UnitStruct,
    Enum(Vec<Variant>),
}

struct Variant {
    name: String,
    shape: VariantShape,
}

enum VariantShape {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    // Skip attributes (`#[...]`) and visibility / misc keywords until the
    // `struct` / `enum` keyword.
    let mut kind = None;
    while i < tokens.len() {
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == '#' => i += 2, // '#' + [...]
            TokenTree::Ident(id) => {
                let s = id.to_string();
                if s == "struct" || s == "enum" {
                    kind = Some(s);
                    i += 1;
                    break;
                }
                i += 1; // pub / crate-visibility idents
            }
            _ => i += 1,
        }
    }
    let kind = kind.expect("serde_derive shim: no struct/enum keyword");
    let name = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde_derive shim: expected type name, got {other}"),
    };
    i += 1;
    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            panic!("serde_derive shim: generic types are not supported (type {name})");
        }
    }
    let shape = if kind == "struct" {
        match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::NamedStruct(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Shape::TupleStruct(count_tuple_fields(g.stream()))
            }
            _ => Shape::UnitStruct,
        }
    } else {
        match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::Enum(parse_variants(g.stream()))
            }
            other => panic!("serde_derive shim: enum {name} without body: {other:?}"),
        }
    };
    Item { name, shape }
}

/// Split a token stream on commas at angle-bracket depth zero.
fn split_top_level(stream: TokenStream) -> Vec<Vec<TokenTree>> {
    let mut out = Vec::new();
    let mut cur = Vec::new();
    let mut angle = 0i32;
    for t in stream {
        match &t {
            TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => {
                if !cur.is_empty() {
                    out.push(std::mem::take(&mut cur));
                }
                continue;
            }
            _ => {}
        }
        cur.push(t);
    }
    if !cur.is_empty() {
        out.push(cur);
    }
    out
}

/// Field name = the ident immediately before the first top-level `:`
/// (skipping attributes and visibility).
fn field_name(tokens: &[TokenTree]) -> Option<String> {
    let mut i = 0;
    let mut last_ident = None;
    while i < tokens.len() {
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == '#' => i += 2,
            TokenTree::Ident(id) if id.to_string() == "pub" => {
                i += 1;
                // Skip `pub(crate)`-style restrictions.
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1;
                    }
                }
            }
            TokenTree::Ident(id) => {
                last_ident = Some(id.to_string());
                i += 1;
            }
            TokenTree::Punct(p) if p.as_char() == ':' => return last_ident,
            _ => i += 1,
        }
    }
    None
}

fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    split_top_level(stream)
        .iter()
        .filter_map(|f| field_name(f))
        .collect()
}

fn count_tuple_fields(stream: TokenStream) -> usize {
    split_top_level(stream).len()
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    split_top_level(stream)
        .into_iter()
        .filter_map(|v| parse_variant(&v))
        .collect()
}

fn parse_variant(tokens: &[TokenTree]) -> Option<Variant> {
    let mut i = 0;
    // Skip attributes / doc comments.
    while let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '#' {
            i += 2;
        } else {
            break;
        }
    }
    let name = match tokens.get(i)? {
        TokenTree::Ident(id) => id.to_string(),
        _ => return None,
    };
    i += 1;
    let shape = match tokens.get(i) {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
            VariantShape::Tuple(count_tuple_fields(g.stream()))
        }
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
            VariantShape::Named(parse_named_fields(g.stream()))
        }
        // Unit, possibly with `= discriminant` (skipped: serialization
        // uses the variant name, not the value).
        _ => VariantShape::Unit,
    };
    Some(Variant { name, shape })
}
