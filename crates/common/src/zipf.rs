//! A seeded Zipf sampler for heavy-tailed synthetic traces.
//!
//! CAIDA backbone traces have strongly heavy-tailed flow-size
//! distributions; the accuracy experiments depend on that shape (a few
//! elephant flows, many mice). This sampler draws ranks from a Zipf(α)
//! distribution over `n` items using the rejection-inversion method of
//! Hörmann & Derflinger (1996) — O(1) per sample, no precomputed tables,
//! fully deterministic given the RNG.

use rand::Rng;

/// Zipf distribution over ranks `1..=n` with exponent `alpha > 0`.
///
/// ```
/// use ow_common::zipf::Zipf;
/// use rand::{SeedableRng, rngs::StdRng};
///
/// let zipf = Zipf::new(1_000, 1.1);
/// let mut rng = StdRng::seed_from_u64(1);
/// let rank = zipf.sample(&mut rng);
/// assert!((1..=1_000).contains(&rank));
/// ```
#[derive(Debug, Clone)]
pub struct Zipf {
    n: u64,
    alpha: f64,
    // Precomputed constants of the rejection-inversion sampler.
    h_x1: f64,
    h_n: f64,
    s: f64,
}

impl Zipf {
    /// Create a sampler over `1..=n` with exponent `alpha`.
    ///
    /// # Panics
    /// Panics if `n == 0` or `alpha <= 0`.
    pub fn new(n: u64, alpha: f64) -> Zipf {
        assert!(n > 0, "Zipf needs at least one item");
        assert!(alpha > 0.0, "Zipf exponent must be positive");
        let h = |x: f64| -> f64 {
            if (alpha - 1.0).abs() < 1e-12 {
                (1.0 + x).ln()
            } else {
                ((1.0 + x).powf(1.0 - alpha) - 1.0) / (1.0 - alpha)
            }
        };
        let h_x1 = h(1.5) - 1.0;
        let h_n = h(n as f64 + 0.5);
        let s = 2.0 - Self::h_inv_static(alpha, h(2.5) - (2.0f64).powf(-alpha));
        Zipf {
            n,
            alpha,
            h_x1,
            h_n,
            s,
        }
    }

    fn h_inv_static(alpha: f64, x: f64) -> f64 {
        if (alpha - 1.0).abs() < 1e-12 {
            x.exp() - 1.0
        } else {
            (1.0 + x * (1.0 - alpha)).powf(1.0 / (1.0 - alpha)) - 1.0
        }
    }

    fn h(&self, x: f64) -> f64 {
        if (self.alpha - 1.0).abs() < 1e-12 {
            (1.0 + x).ln()
        } else {
            ((1.0 + x).powf(1.0 - self.alpha) - 1.0) / (1.0 - self.alpha)
        }
    }

    fn h_inv(&self, x: f64) -> f64 {
        Self::h_inv_static(self.alpha, x)
    }

    /// Number of items.
    pub fn n(&self) -> u64 {
        self.n
    }

    /// Draw a rank in `1..=n`; rank 1 is the most popular.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        loop {
            let u = self.h_x1 + rng.gen::<f64>() * (self.h_n - self.h_x1);
            let x = self.h_inv(u);
            let k = (x + 0.5).floor().clamp(1.0, self.n as f64);
            if k - x <= self.s || u >= self.h(k + 0.5) - (k).powf(-self.alpha) {
                return k as u64;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn samples_stay_in_range() {
        let z = Zipf::new(1000, 1.1);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let s = z.sample(&mut rng);
            assert!((1..=1000).contains(&s));
        }
    }

    #[test]
    fn rank_one_dominates() {
        let z = Zipf::new(10_000, 1.2);
        let mut rng = StdRng::seed_from_u64(2);
        let mut count1 = 0u32;
        let mut count_tail = 0u32;
        let total = 100_000;
        for _ in 0..total {
            let s = z.sample(&mut rng);
            if s == 1 {
                count1 += 1;
            }
            if s > 5000 {
                count_tail += 1;
            }
        }
        // Rank 1 should receive far more mass than the entire deep tail.
        assert!(count1 > 5_000, "rank-1 mass too small: {count1}");
        assert!(count1 > count_tail, "tail unexpectedly heavy");
    }

    #[test]
    fn alpha_one_special_case_works() {
        let z = Zipf::new(100, 1.0);
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..5_000 {
            seen.insert(z.sample(&mut rng));
        }
        // With α=1 over 100 items, nearly every rank appears in 5k draws.
        assert!(seen.len() > 80, "only {} distinct ranks", seen.len());
    }

    #[test]
    fn deterministic_with_same_seed() {
        let z = Zipf::new(500, 1.05);
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(z.sample(&mut a), z.sample(&mut b));
        }
    }

    #[test]
    fn single_item_always_returns_one() {
        let z = Zipf::new(1, 1.5);
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..100 {
            assert_eq!(z.sample(&mut rng), 1);
        }
    }

    #[test]
    #[should_panic(expected = "at least one item")]
    fn zero_items_panics() {
        let _ = Zipf::new(0, 1.0);
    }
}
