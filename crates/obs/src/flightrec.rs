//! The black-box flight recorder.
//!
//! A bounded ring of recent observability context — journal events,
//! per-tick rule-signal readings, tick summaries — that [`freeze`]s the
//! moment something goes badly wrong (a [`crate::health`] rule firing
//! at `Severity::Critical`, or a `WindowFsm` invariant rejection) and
//! becomes a deterministic `results/flightrec_*.json` post-mortem: the
//! retained ring, the full registry snapshot at the freeze instant, a
//! brief of every causal span tree, and the health-alert timeline.
//! Chaos failures become diagnosable artifacts instead of log
//! archaeology.
//!
//! The ring is bounded by **both** an entry count and a byte budget
//! ([`FlightRecorderConfig`]); eviction is oldest-first, and the dump
//! canonicalizes entry order by `(at_ns, kind, detail)` with journal
//! sequence numbers stripped, so two same-seed runs — whose journal
//! *multiset* is deterministic even when cross-thread interleaving is
//! not — dump byte-identical post-mortems.
//!
//! [`freeze`]: FlightRecorder::freeze

use std::collections::VecDeque;
use std::io;
use std::path::Path;

use serde::{Serialize, Value};

use crate::health::AlertEvent;
use crate::json::ValueExt;
use crate::registry::RegistrySnapshot;

/// Byte/entry bounds of the recorder ring.
#[derive(Debug, Clone, Copy)]
pub struct FlightRecorderConfig {
    /// Maximum retained entries.
    pub max_entries: usize,
    /// Maximum total [`FlightEntry::cost`] bytes retained.
    pub max_bytes: usize,
}

impl Default for FlightRecorderConfig {
    fn default() -> FlightRecorderConfig {
        FlightRecorderConfig {
            max_entries: 8192,
            max_bytes: 1 << 20,
        }
    }
}

/// One retained black-box entry: a journal event, a rule-signal
/// reading, or a tick summary, pre-rendered to a canonical line.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Serialize)]
pub struct FlightEntry {
    /// Virtual-clock timestamp (0 when the source carried none).
    pub at_ns: u64,
    /// `"event"`, `"signal"`, or `"tick"`.
    pub kind: String,
    /// Canonical rendered detail (journal sequence numbers excluded so
    /// same-seed runs match byte for byte).
    pub detail: String,
}

impl FlightEntry {
    /// Accounting size of this entry against the byte budget.
    pub fn cost(&self) -> usize {
        16 + self.kind.len() + self.detail.len()
    }
}

/// One span tree's brief in the post-mortem.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct TraceBrief {
    /// Trace id (root span id).
    pub trace_id: u64,
    /// The traced sub-window.
    pub subwindow: u32,
    /// Spans in the tree.
    pub spans: u64,
    /// Critical-path wall latency of the tree, ns.
    pub wall_ns: u64,
}

/// The deterministic on-disk post-mortem (`results/flightrec_*.json`).
#[derive(Debug, Clone, Serialize)]
pub struct FlightDump {
    /// Name of the run that froze.
    pub run: String,
    /// Why the recorder froze (rule code + entity, or the rejected FSM
    /// transition).
    pub freeze_reason: String,
    /// Virtual-clock instant of the freeze.
    pub frozen_at_ns: u64,
    /// Entries the bounded ring evicted before the freeze.
    pub entries_dropped: u64,
    /// The retained ring in canonical `(at_ns, kind, detail)` order.
    pub entries: Vec<FlightEntry>,
    /// Full registry snapshot at the freeze instant.
    pub registry: RegistrySnapshot,
    /// Brief of every causal span tree at the freeze instant, by id.
    pub traces: Vec<TraceBrief>,
    /// The health-alert timeline up to and including the freeze.
    pub timeline: Vec<AlertEvent>,
}

impl FlightDump {
    /// Pretty-printed JSON (the byte-stable form the CI determinism
    /// gate compares with `cmp`).
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("flight dump serializes")
    }

    /// Write the dump to `path`, creating parent directories.
    pub fn write(&self, path: &Path) -> io::Result<()> {
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        std::fs::write(path, self.to_json())
    }
}

/// What the freeze captured (set once, first trigger wins).
#[derive(Debug)]
struct FrozenState {
    reason: String,
    at_ns: u64,
    registry: RegistrySnapshot,
    traces: Vec<TraceBrief>,
    timeline: Vec<AlertEvent>,
}

/// The bounded black-box ring. Owned by the health engine (single
/// writer behind its lock); not internally synchronized.
#[derive(Debug)]
pub struct FlightRecorder {
    cfg: FlightRecorderConfig,
    ring: VecDeque<FlightEntry>,
    bytes: usize,
    dropped: u64,
    frozen: Option<FrozenState>,
}

impl FlightRecorder {
    /// An empty recorder with the given bounds.
    pub fn new(cfg: FlightRecorderConfig) -> FlightRecorder {
        FlightRecorder {
            cfg: FlightRecorderConfig {
                max_entries: cfg.max_entries.max(1),
                max_bytes: cfg.max_bytes.max(1),
            },
            ring: VecDeque::new(),
            bytes: 0,
            dropped: 0,
            frozen: None,
        }
    }

    /// Append an entry, evicting oldest-first until both bounds hold.
    /// After a freeze this is a no-op (the black box stops recording).
    /// An entry whose own cost exceeds the byte budget is dropped
    /// outright rather than blowing the bound.
    pub fn record(&mut self, entry: FlightEntry) {
        if self.frozen.is_some() {
            return;
        }
        let cost = entry.cost();
        if cost > self.cfg.max_bytes {
            self.dropped += 1;
            return;
        }
        while self.ring.len() >= self.cfg.max_entries || self.bytes + cost > self.cfg.max_bytes {
            match self.ring.pop_front() {
                Some(old) => {
                    self.bytes -= old.cost();
                    self.dropped += 1;
                }
                None => break,
            }
        }
        self.bytes += cost;
        self.ring.push_back(entry);
    }

    /// Freeze the recorder with the post-mortem context. The first
    /// trigger wins; later freezes are ignored so the dump reflects the
    /// *initial* failure, not the last symptom.
    pub fn freeze(
        &mut self,
        reason: &str,
        at_ns: u64,
        registry: RegistrySnapshot,
        traces: Vec<TraceBrief>,
        timeline: Vec<AlertEvent>,
    ) {
        if self.frozen.is_some() {
            return;
        }
        self.frozen = Some(FrozenState {
            reason: reason.to_string(),
            at_ns,
            registry,
            traces,
            timeline,
        });
    }

    /// Whether a freeze already happened.
    pub fn is_frozen(&self) -> bool {
        self.frozen.is_some()
    }

    /// Retained entry count.
    pub fn entry_count(&self) -> usize {
        self.ring.len()
    }

    /// Retained byte total (sum of entry costs).
    pub fn byte_usage(&self) -> usize {
        self.bytes
    }

    /// Entries evicted (or oversized-rejected) so far.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// The configured bounds.
    pub fn config(&self) -> FlightRecorderConfig {
        self.cfg
    }

    /// The frozen post-mortem, if a freeze happened; entries in
    /// canonical order.
    pub fn dump(&self, run: &str) -> Option<FlightDump> {
        let frozen = self.frozen.as_ref()?;
        let mut entries: Vec<FlightEntry> = self.ring.iter().cloned().collect();
        entries.sort();
        let mut traces = frozen.traces.clone();
        traces.sort_by_key(|t| t.trace_id);
        Some(FlightDump {
            run: run.to_string(),
            freeze_reason: frozen.reason.clone(),
            frozen_at_ns: frozen.at_ns,
            entries_dropped: self.dropped,
            entries,
            registry: frozen.registry.clone(),
            traces,
            timeline: frozen.timeline.clone(),
        })
    }
}

/// Validate a parsed flight-recorder dump against the schema
/// [`FlightDump`] emits: non-empty `freeze_reason`, well-formed
/// entries (`at_ns`/`kind`/`detail` with a known kind), a registry
/// snapshot with a metrics array, trace briefs, and timeline records
/// each carrying a stable `OW-HEALTH-*` code.
pub fn validate_flightrec_json(doc: &Value) -> Result<(), String> {
    doc.field("run")
        .and_then(Value::as_str)
        .ok_or("dump without run")?;
    let reason = doc
        .field("freeze_reason")
        .and_then(Value::as_str)
        .ok_or("dump without freeze_reason")?;
    if reason.is_empty() {
        return Err("empty freeze_reason".into());
    }
    doc.field("frozen_at_ns")
        .and_then(Value::as_u64)
        .ok_or("dump without frozen_at_ns")?;
    let entries = doc
        .field("entries")
        .and_then(Value::items)
        .ok_or("dump without entries array")?;
    for (i, e) in entries.iter().enumerate() {
        e.field("at_ns")
            .and_then(Value::as_u64)
            .ok_or(format!("entry {i} without at_ns"))?;
        let kind = e
            .field("kind")
            .and_then(Value::as_str)
            .ok_or(format!("entry {i} without kind"))?;
        if !matches!(kind, "event" | "signal" | "tick") {
            return Err(format!("entry {i} has unknown kind '{kind}'"));
        }
        e.field("detail")
            .and_then(Value::as_str)
            .ok_or(format!("entry {i} without detail"))?;
    }
    doc.field("registry")
        .and_then(|r| r.field("metrics"))
        .and_then(Value::items)
        .ok_or("dump without registry.metrics")?;
    let traces = doc
        .field("traces")
        .and_then(Value::items)
        .ok_or("dump without traces array")?;
    for (i, t) in traces.iter().enumerate() {
        t.field("trace_id")
            .and_then(Value::as_u64)
            .ok_or(format!("trace brief {i} without trace_id"))?;
        t.field("spans")
            .and_then(Value::as_u64)
            .ok_or(format!("trace brief {i} without spans"))?;
    }
    let timeline = doc
        .field("timeline")
        .and_then(Value::items)
        .ok_or("dump without timeline array")?;
    for (i, a) in timeline.iter().enumerate() {
        let code = a
            .field("code")
            .and_then(Value::as_str)
            .ok_or(format!("timeline record {i} without code"))?;
        if !crate::health::valid_code(code) {
            return Err(format!("timeline record {i} has bad code '{code}'"));
        }
        a.field("state")
            .and_then(Value::as_str)
            .filter(|s| matches!(*s, "fired" | "cleared"))
            .ok_or(format!("timeline record {i} without fired/cleared state"))?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(i: u64, detail: &str) -> FlightEntry {
        FlightEntry {
            at_ns: i,
            kind: "event".into(),
            detail: detail.to_string(),
        }
    }

    #[test]
    fn ring_enforces_entry_bound_oldest_first() {
        let mut rec = FlightRecorder::new(FlightRecorderConfig {
            max_entries: 3,
            max_bytes: 1 << 20,
        });
        for i in 0..5 {
            rec.record(entry(i, "x"));
        }
        assert_eq!(rec.entry_count(), 3);
        assert_eq!(rec.dropped(), 2);
        let dumpless = rec.dump("unit");
        assert!(dumpless.is_none(), "no dump before a freeze");
    }

    #[test]
    fn ring_enforces_byte_bound() {
        let cfg = FlightRecorderConfig {
            max_entries: 1000,
            max_bytes: 100,
        };
        let mut rec = FlightRecorder::new(cfg);
        for i in 0..50 {
            rec.record(entry(i, "0123456789"));
            assert!(rec.byte_usage() <= cfg.max_bytes);
        }
        assert!(rec.dropped() > 0);
        // One entry bigger than the whole budget is rejected outright.
        let before = rec.entry_count();
        rec.record(entry(99, &"y".repeat(200)));
        assert_eq!(rec.entry_count(), before);
        assert!(rec.byte_usage() <= cfg.max_bytes);
    }

    #[test]
    fn freeze_is_first_wins_and_stops_recording() {
        let mut rec = FlightRecorder::new(FlightRecorderConfig::default());
        rec.record(entry(5, "before"));
        rec.freeze(
            "first failure",
            10,
            RegistrySnapshot::default(),
            vec![],
            vec![],
        );
        rec.freeze(
            "second failure",
            20,
            RegistrySnapshot::default(),
            vec![],
            vec![],
        );
        rec.record(entry(30, "after"));
        let dump = rec.dump("unit").expect("frozen");
        assert_eq!(dump.freeze_reason, "first failure");
        assert_eq!(dump.frozen_at_ns, 10);
        assert_eq!(dump.entries.len(), 1, "post-freeze entries ignored");
        assert_eq!(dump.entries[0].detail, "before");
    }

    #[test]
    fn dump_is_canonically_ordered_and_schema_valid() {
        let mut rec = FlightRecorder::new(FlightRecorderConfig::default());
        rec.record(entry(9, "late"));
        rec.record(entry(1, "early"));
        rec.record(FlightEntry {
            at_ns: 1,
            kind: "tick".into(),
            detail: "tick=0".into(),
        });
        rec.freeze("unit test", 9, RegistrySnapshot::default(), vec![], vec![]);
        let dump = rec.dump("unit").expect("frozen");
        let order: Vec<&str> = dump.entries.iter().map(|e| e.detail.as_str()).collect();
        assert_eq!(order, vec!["early", "tick=0", "late"]);
        let doc = crate::json::parse(&dump.to_json()).expect("dump parses");
        validate_flightrec_json(&doc).expect("dump validates");
    }

    #[test]
    fn validator_rejects_malformed_dumps() {
        let bad = crate::json::parse(r#"{"run":"x","freeze_reason":""}"#).unwrap();
        assert!(validate_flightrec_json(&bad).is_err());
        let bad_kind = crate::json::parse(
            r#"{"run":"x","freeze_reason":"r","frozen_at_ns":1,
                "entries":[{"at_ns":1,"kind":"bogus","detail":"d"}],
                "registry":{"metrics":[]},"traces":[],"timeline":[]}"#,
        )
        .unwrap();
        let err = validate_flightrec_json(&bad_kind).unwrap_err();
        assert!(err.contains("unknown kind"), "{err}");
    }
}
