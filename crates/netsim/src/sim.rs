//! A deterministic discrete-event simulator for multi-switch paths.
//!
//! Packets traverse a configured path of nodes; each hop invokes a
//! user-supplied handler with the packet and the node's *local* time
//! (global time plus the node's clock offset — the PTP deviation model
//! of Exp#9). Links add delay and jitter and can drop packets with a
//! configured probability; every drop is recorded so experiments have
//! exact loss ground truth.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use ow_common::packet::Packet;
use ow_common::time::{Duration, Instant};

/// A node (switch) in the simulated path.
#[derive(Debug, Clone, Default)]
pub struct NodeConfig {
    /// Clock offset relative to global time. Positive = the node's clock
    /// runs ahead. Signed nanoseconds.
    pub clock_offset_ns: i64,
}

/// A link between consecutive path nodes.
#[derive(Debug, Clone)]
pub struct Link {
    /// Propagation + queueing delay.
    pub delay: Duration,
    /// Uniform jitter added on top of `delay` (0..jitter).
    pub jitter: Duration,
    /// Probability a packet is dropped on this link.
    pub loss_prob: f64,
}

impl Default for Link {
    fn default() -> Self {
        Link {
            delay: Duration::from_micros(10),
            jitter: Duration::from_micros(5),
            loss_prob: 0.0,
        }
    }
}

#[derive(Debug, Clone, PartialEq, Eq)]
struct Event {
    at: Instant,
    seq: u64,
    hop: usize,
    pkt_idx: usize,
}

impl Ord for Event {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// A record of one packet dropped on a link (loss ground truth).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DropRecord {
    /// Index of the packet in the injected trace.
    pub pkt_idx: usize,
    /// The link (upstream hop index) where it was dropped.
    pub after_hop: usize,
    /// Global time of the drop.
    pub at: Instant,
}

/// The path simulator.
#[derive(Debug)]
pub struct NetSim {
    nodes: Vec<NodeConfig>,
    links: Vec<Link>,
    rng: StdRng,
    drops: Vec<DropRecord>,
}

impl NetSim {
    /// Build a linear path: `nodes[0] → link[0] → nodes[1] → …`.
    ///
    /// # Panics
    /// Panics unless `links.len() + 1 == nodes.len()`.
    pub fn path(nodes: Vec<NodeConfig>, links: Vec<Link>, seed: u64) -> NetSim {
        assert_eq!(
            links.len() + 1,
            nodes.len(),
            "a path of n nodes has n-1 links"
        );
        NetSim {
            nodes,
            links,
            rng: StdRng::seed_from_u64(seed),
            drops: Vec::new(),
        }
    }

    /// Local time at `node` for a given global time.
    pub fn local_time(&self, node: usize, global: Instant) -> Instant {
        let offset = self.nodes[node].clock_offset_ns;
        let ns = global.as_nanos() as i64 + offset;
        Instant::from_nanos(ns.max(0) as u64)
    }

    /// Packets dropped so far (ground truth).
    pub fn drops(&self) -> &[DropRecord] {
        &self.drops
    }

    /// Run `trace` through the path. For every hop the handler receives
    /// `(hop_index, packet_index, &mut Packet, local_time)`; the packet's
    /// `ts` field is also set to the hop's local arrival time before the
    /// call. Handler mutations to the OmniWindow header persist across
    /// hops (that is how stamps propagate).
    pub fn run<F>(&mut self, trace: &[Packet], mut handler: F)
    where
        F: FnMut(usize, usize, &mut Packet, Instant),
    {
        // Working copies of the packets (mutated across hops).
        let mut pkts: Vec<Packet> = trace.to_vec();
        let mut queue: BinaryHeap<Reverse<Event>> = BinaryHeap::new();
        let mut seq = 0u64;
        for (i, p) in trace.iter().enumerate() {
            queue.push(Reverse(Event {
                at: p.ts,
                seq,
                hop: 0,
                pkt_idx: i,
            }));
            seq += 1;
        }

        while let Some(Reverse(ev)) = queue.pop() {
            let pkt = &mut pkts[ev.pkt_idx];
            let local = {
                let offset = self.nodes[ev.hop].clock_offset_ns;
                let ns = ev.at.as_nanos() as i64 + offset;
                Instant::from_nanos(ns.max(0) as u64)
            };
            pkt.ts = local;
            handler(ev.hop, ev.pkt_idx, pkt, local);

            // Traverse the next link, if any.
            if ev.hop < self.links.len() {
                let link = &self.links[ev.hop];
                if self.rng.gen::<f64>() < link.loss_prob {
                    self.drops.push(DropRecord {
                        pkt_idx: ev.pkt_idx,
                        after_hop: ev.hop,
                        at: ev.at,
                    });
                    continue;
                }
                let jitter = if link.jitter.as_nanos() > 0 {
                    Duration::from_nanos(self.rng.gen_range(0..link.jitter.as_nanos()))
                } else {
                    Duration::ZERO
                };
                queue.push(Reverse(Event {
                    at: ev.at + link.delay + jitter,
                    seq,
                    hop: ev.hop + 1,
                    pkt_idx: ev.pkt_idx,
                }));
                seq += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ow_common::packet::TcpFlags;

    fn trace(n: usize) -> Vec<Packet> {
        (0..n)
            .map(|i| {
                Packet::tcp(
                    Instant::from_micros(i as u64 * 100),
                    i as u32,
                    99,
                    1,
                    80,
                    TcpFlags::ack(),
                    64,
                )
            })
            .collect()
    }

    fn two_nodes(loss: f64, offset_ns: i64) -> NetSim {
        NetSim::path(
            vec![
                NodeConfig::default(),
                NodeConfig {
                    clock_offset_ns: offset_ns,
                },
            ],
            vec![Link {
                delay: Duration::from_micros(10),
                jitter: Duration::ZERO,
                loss_prob: loss,
            }],
            42,
        )
    }

    #[test]
    fn every_packet_visits_both_hops_without_loss() {
        let mut sim = two_nodes(0.0, 0);
        let mut visits = [0u32; 2];
        sim.run(&trace(100), |hop, _, _, _| visits[hop] += 1);
        assert_eq!(visits, [100, 100]);
        assert!(sim.drops().is_empty());
    }

    #[test]
    fn loss_drops_packets_and_records_them() {
        let mut sim = two_nodes(0.3, 0);
        let mut visits = [0u32; 2];
        sim.run(&trace(1000), |hop, _, _, _| visits[hop] += 1);
        assert_eq!(visits[0], 1000);
        let arrived = visits[1] as usize;
        assert_eq!(arrived + sim.drops().len(), 1000);
        // ~30% loss, generous tolerance.
        assert!((200..400).contains(&sim.drops().len()));
    }

    #[test]
    fn clock_offset_shifts_local_time() {
        let mut sim = two_nodes(0.0, 500_000); // +500µs
        let mut downstream_times = Vec::new();
        sim.run(&trace(1), |hop, _, _, local| {
            if hop == 1 {
                downstream_times.push(local);
            }
        });
        // Arrival at hop 1: global 10µs + offset 500µs = 510µs local.
        assert_eq!(downstream_times[0], Instant::from_micros(510));
    }

    #[test]
    fn header_mutations_propagate_downstream() {
        let mut sim = two_nodes(0.0, 0);
        let mut seen = Vec::new();
        sim.run(&trace(3), |hop, idx, pkt, _| {
            if hop == 0 {
                pkt.ow.subwindow = 7 + idx as u32;
            } else {
                seen.push(pkt.ow.subwindow);
            }
        });
        assert_eq!(seen, vec![7, 8, 9]);
    }

    #[test]
    fn delivery_order_is_time_order() {
        let mut sim = two_nodes(0.0, 0);
        let mut last = Instant::ZERO;
        sim.run(&trace(50), |hop, _, _, local| {
            if hop == 1 {
                assert!(local >= last);
                last = local;
            }
        });
    }

    #[test]
    #[should_panic(expected = "n-1 links")]
    fn mismatched_path_panics() {
        let _ = NetSim::path(vec![NodeConfig::default()], vec![Link::default()], 1);
    }

    #[test]
    fn jitter_can_reorder_across_flows_but_events_stay_time_ordered() {
        // Large jitter relative to inter-packet gaps: downstream arrival
        // order may differ from injection order, but the simulator still
        // delivers events in non-decreasing local-time order.
        let mut sim = NetSim::path(
            vec![NodeConfig::default(), NodeConfig::default()],
            vec![Link {
                delay: Duration::from_micros(10),
                jitter: Duration::from_micros(500),
                loss_prob: 0.0,
            }],
            9,
        );
        let t: Vec<Packet> = (0..200)
            .map(|i| {
                Packet::tcp(
                    Instant::from_micros(i as u64 * 5),
                    i as u32,
                    99,
                    1,
                    80,
                    TcpFlags::ack(),
                    64,
                )
            })
            .collect();
        let mut arrivals = Vec::new();
        let mut last = Instant::ZERO;
        sim.run(&t, |hop, idx, _, local| {
            if hop == 1 {
                assert!(local >= last, "event times must be monotone");
                last = local;
                arrivals.push(idx);
            }
        });
        assert_eq!(arrivals.len(), 200);
        let reordered = arrivals.windows(2).filter(|w| w[1] < w[0]).count();
        assert!(reordered > 0, "500µs jitter over 5µs gaps must reorder");
    }

    #[test]
    fn multi_hop_chain_accumulates_delay_and_offsets() {
        let mut sim = NetSim::path(
            vec![
                NodeConfig { clock_offset_ns: 0 },
                NodeConfig {
                    clock_offset_ns: 1_000,
                },
                NodeConfig {
                    clock_offset_ns: -2_000,
                },
                NodeConfig {
                    clock_offset_ns: 3_000,
                },
            ],
            vec![
                Link {
                    delay: Duration::from_micros(10),
                    jitter: Duration::ZERO,
                    loss_prob: 0.0,
                };
                3
            ],
            3,
        );
        let t = vec![Packet::tcp(
            Instant::from_micros(100),
            1,
            2,
            3,
            4,
            TcpFlags::ack(),
            64,
        )];
        let mut locals = Vec::new();
        sim.run(&t, |_, _, _, local| locals.push(local.as_nanos()));
        // Hop k arrives at global 100µs + k·10µs, plus its clock offset.
        assert_eq!(
            locals,
            vec![100_000, 111_000, 118_000, 133_000],
            "local clocks disagree exactly by their offsets"
        );
    }
}
