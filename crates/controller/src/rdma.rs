//! Simulated one-sided RDMA collection (§7).
//!
//! The real system lets the switch construct RoCEv2 WRITE /
//! Fetch-and-Add requests targeting a registered memory region in the
//! controller, so AFRs land in controller memory without controller CPU
//! work. We reproduce the *division of labour* exactly:
//!
//! * the controller owns a region: a slot array for hot keys (grouped by
//!   key, one slot per key) and an append buffer for cold keys;
//! * the controller installs hot keys' slot addresses into the switch's
//!   *address MAT* and monitors hotness, promoting/demoting keys;
//! * the switch-side writer matches a key in the address MAT — hit →
//!   `WRITE`/`Fetch-and-Add` straight into the slot; miss → append the
//!   whole AFR to the buffer;
//! * the controller CPU only drains the cold buffer; hot-key sums never
//!   touch it.

use std::collections::HashMap;

use ow_common::afr::{AttrValue, FlowRecord};
use ow_common::flowkey::FlowKey;

/// What kind of RDMA verb a switch-side write used (for accounting).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RdmaWriteKind {
    /// One-sided WRITE of the attribute into the key's slot.
    Write,
    /// Fetch-and-Add aggregation into the key's slot (frequency and
    /// distinction sums are offloaded to the RNIC).
    FetchAdd,
    /// Append to the cold-key buffer.
    BufferAppend,
}

/// The controller's registered memory region plus the switch-visible
/// address MAT.
#[derive(Debug, Clone, Default)]
pub struct RdmaRegion {
    /// Hot-key slots: merged frequency value per key, maintained by the
    /// RNIC (Fetch-and-Add), never by controller code.
    slots: Vec<u64>,
    /// Hot key → slot index (the mirror of the switch's address MAT).
    addr_mat: HashMap<FlowKey, usize>,
    /// Cold-key append buffer (drained by the controller CPU).
    buffer: Vec<FlowRecord>,
    /// Per-key write counts for hotness monitoring.
    hotness: HashMap<FlowKey, u32>,
    /// Verb counters for accounting.
    pub writes: u64,
    /// Fetch-and-Add count.
    pub fetch_adds: u64,
    /// Buffer append count.
    pub appends: u64,
}

impl RdmaRegion {
    /// A fresh region with no hot keys.
    pub fn new() -> RdmaRegion {
        RdmaRegion::default()
    }

    /// Install `key` as hot: allocate a slot and publish its address to
    /// the switch's address MAT. Idempotent.
    pub fn promote(&mut self, key: FlowKey) {
        if !self.addr_mat.contains_key(&key) {
            self.slots.push(0);
            self.addr_mat.insert(key, self.slots.len() - 1);
        }
    }

    /// Remove a cold key from the address MAT (its slot is retired; the
    /// merged value is returned for the table).
    pub fn demote(&mut self, key: &FlowKey) -> Option<u64> {
        self.addr_mat.remove(key).map(|idx| {
            let v = self.slots[idx];
            self.slots[idx] = 0;
            v
        })
    }

    /// Whether the switch's address MAT currently matches `key`.
    pub fn is_hot(&self, key: &FlowKey) -> bool {
        self.addr_mat.contains_key(key)
    }

    /// The switch-side write path for one AFR: address-MAT hit uses
    /// Fetch-and-Add (frequency) or WRITE (other patterns); miss appends
    /// to the cold buffer. Returns which verb was used.
    pub fn switch_write(&mut self, rec: FlowRecord) -> RdmaWriteKind {
        *self.hotness.entry(rec.key).or_insert(0) += 1;
        match self.addr_mat.get(&rec.key) {
            Some(&idx) => match rec.attr {
                AttrValue::Frequency(v) => {
                    // RNIC-side Fetch-and-Add: no controller CPU involved.
                    self.slots[idx] = self.slots[idx].saturating_add(v);
                    self.fetch_adds += 1;
                    RdmaWriteKind::FetchAdd
                }
                _ => {
                    // Non-additive patterns are written per-sub-window and
                    // merged by the controller on read; model as WRITE into
                    // the slot holding the latest scalar.
                    self.slots[idx] = rec.attr.scalar() as u64;
                    self.writes += 1;
                    RdmaWriteKind::Write
                }
            },
            None => {
                self.buffer.push(rec);
                self.appends += 1;
                RdmaWriteKind::BufferAppend
            }
        }
    }

    /// The merged hot-key value for `key` (what the RNIC accumulated).
    pub fn hot_value(&self, key: &FlowKey) -> Option<u64> {
        self.addr_mat.get(key).map(|&i| self.slots[i])
    }

    /// Drain the cold-key buffer (the only controller-CPU collection
    /// work under the RDMA optimisation).
    pub fn drain_buffer(&mut self) -> Vec<FlowRecord> {
        std::mem::take(&mut self.buffer)
    }

    /// Hotness pass: promote keys with ≥ `threshold` writes since the
    /// last pass, demote hot keys that went quiet. Returns
    /// `(promoted, demoted)` — the notification the controller sends to
    /// the switch's address MAT.
    pub fn rebalance(&mut self, threshold: u32) -> (Vec<FlowKey>, Vec<FlowKey>) {
        let mut promoted = Vec::new();
        let mut demoted = Vec::new();
        let hot_now: Vec<FlowKey> = self.addr_mat.keys().copied().collect();
        for key in hot_now {
            if self.hotness.get(&key).copied().unwrap_or(0) == 0 {
                self.demote(&key);
                demoted.push(key);
            }
        }
        let candidates: Vec<FlowKey> = self
            .hotness
            .iter()
            .filter(|(k, &n)| n >= threshold && !self.addr_mat.contains_key(*k))
            .map(|(k, _)| *k)
            .collect();
        for key in candidates {
            self.promote(key);
            promoted.push(key);
        }
        self.hotness.clear();
        promoted.sort_by_key(|k| k.as_u128());
        demoted.sort_by_key(|k| k.as_u128());
        (promoted, demoted)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(i: u32) -> FlowKey {
        FlowKey::src_ip(i)
    }

    fn freq(i: u32, n: u64, sw: u32) -> FlowRecord {
        FlowRecord::frequency(key(i), n, sw)
    }

    #[test]
    fn hot_keys_aggregate_without_cpu() {
        let mut r = RdmaRegion::new();
        r.promote(key(1));
        assert_eq!(r.switch_write(freq(1, 60, 0)), RdmaWriteKind::FetchAdd);
        assert_eq!(r.switch_write(freq(1, 80, 1)), RdmaWriteKind::FetchAdd);
        assert_eq!(r.hot_value(&key(1)), Some(140));
        // Nothing reached the CPU-drained buffer.
        assert!(r.drain_buffer().is_empty());
        assert_eq!(r.fetch_adds, 2);
    }

    #[test]
    fn cold_keys_go_to_buffer() {
        let mut r = RdmaRegion::new();
        assert_eq!(r.switch_write(freq(9, 5, 0)), RdmaWriteKind::BufferAppend);
        let drained = r.drain_buffer();
        assert_eq!(drained.len(), 1);
        assert_eq!(drained[0].key, key(9));
        // Buffer is consumed.
        assert!(r.drain_buffer().is_empty());
    }

    #[test]
    fn promotion_is_idempotent() {
        let mut r = RdmaRegion::new();
        r.promote(key(1));
        r.switch_write(freq(1, 10, 0));
        r.promote(key(1));
        assert_eq!(r.hot_value(&key(1)), Some(10));
    }

    #[test]
    fn demote_returns_merged_value() {
        let mut r = RdmaRegion::new();
        r.promote(key(1));
        r.switch_write(freq(1, 25, 0));
        assert_eq!(r.demote(&key(1)), Some(25));
        assert!(!r.is_hot(&key(1)));
        // Next write for the key is cold.
        assert_eq!(r.switch_write(freq(1, 1, 1)), RdmaWriteKind::BufferAppend);
    }

    #[test]
    fn rebalance_promotes_busy_and_demotes_quiet() {
        let mut r = RdmaRegion::new();
        r.promote(key(1)); // will go quiet
        for _ in 0..5 {
            r.switch_write(freq(2, 1, 0)); // busy cold key
        }
        let (promoted, demoted) = r.rebalance(3);
        assert_eq!(promoted, vec![key(2)]);
        // key(1) had zero writes this epoch → demoted.
        assert_eq!(demoted, vec![key(1)]);
        assert!(!r.is_hot(&key(1)));
        assert!(r.is_hot(&key(2)));
    }

    #[test]
    fn non_frequency_patterns_use_write_verb() {
        let mut r = RdmaRegion::new();
        r.promote(key(1));
        let rec = FlowRecord {
            key: key(1),
            attr: AttrValue::Max(42),
            subwindow: 0,
            seq: 0,
        };
        assert_eq!(r.switch_write(rec), RdmaWriteKind::Write);
        assert_eq!(r.hot_value(&key(1)), Some(42));
    }
}
