//! Network-wide packet-loss detection and why window consistency matters
//! (the paper's §5 + Exp#9 in miniature).
//!
//! Two switches run LossRadar digests over a lossy link. With
//! OmniWindow's consistency model (sub-window stamped once at the first
//! hop), the decoded difference is exactly the lost packets. With
//! per-switch local clocks that disagree by a PTP-scale deviation,
//! boundary packets are digested into different sub-windows and decode
//! as phantom losses.
//!
//! Run with: `cargo run --release --example packet_loss_consistency`

use omniwindow::experiments::exp9_consistency::{run, Exp9Config};

fn main() {
    let cfg = Exp9Config {
        flows: 200,
        pkts_per_flow: 40,
        deviations_us: vec![8, 64, 512],
        ..Exp9Config::default()
    };
    println!(
        "LossRadar across two switches: {} flows × {} packets, {:.1}% link loss",
        cfg.flows,
        cfg.pkts_per_flow,
        cfg.loss_prob * 100.0
    );

    let result = run(&cfg);
    println!(
        "\n{:<12} {:>8} {:>10} {:>9} {:>6}",
        "mode", "dev(µs)", "precision", "reported", "truth"
    );
    for p in &result.points {
        println!(
            "{:<12} {:>8} {:>9.1}% {:>9} {:>6}",
            p.mode,
            p.deviation_us,
            p.precision * 100.0,
            p.reported,
            p.truth
        );
    }

    for &dev in &cfg.deviations_us {
        assert_eq!(result.precision("OmniWindow", dev), Some(1.0));
    }
    let lc512 = result.precision("LocalClock", 512).unwrap();
    assert!(lc512 < 0.9, "local clocks must produce phantom losses");
    println!("\nOmniWindow's consistency keeps loss reports exact; local clocks do not ✓");
}
