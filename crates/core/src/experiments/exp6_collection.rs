//! Exp#6 (Figure 11): time of AFR generation and collection.
//!
//! Compares the seven collection paths on the paper's setup — a
//! Count-Min instance with 128 KB per state array and 1–4 hash
//! functions, 64 K flowkeys, 32 K cached in the data-plane array:
//!
//! * OS — conventional switch-OS read of the full sketch,
//! * CPC / CPC* — control-plane collection (inject all 64 K keys),
//! * DPC / DPC* — data-plane collection (enumerate all 64 K keys),
//! * OW / OW* — the hybrid (32 K enumerated + 32 K injected);
//!
//! starred variants use the RDMA optimisation with 16 recirculating
//! packets (3 without RDMA — DPDK cannot absorb more).

use serde::Serialize;

use ow_common::flowkey::{FlowKey, KeyKind};
use ow_common::packet::{Packet, TcpFlags};
use ow_common::time::Instant;
use ow_sketch::CountMin;
use ow_switch::app::{DataPlaneApp, FrequencyApp};
use ow_switch::collect::{CollectConfig, CollectMode, CrEngine};
use ow_switch::flowkey::FlowkeyTracker;
use ow_switch::latency::LatencyModel;

/// One (method, hash-count) measurement.
#[derive(Debug, Clone, Serialize)]
pub struct CollectionTime {
    /// Method label (OS, CPC, DPC, OW, CPC*, DPC*, OW*).
    pub method: String,
    /// Number of Count-Min hash functions (1–4).
    pub hashes: usize,
    /// Modelled collection time in milliseconds.
    pub millis: f64,
    /// AFRs produced (sanity: all methods collect every key).
    pub afrs: usize,
}

/// The whole experiment.
#[derive(Debug, Clone, Serialize)]
pub struct Exp6Result {
    /// All (method, hashes) cells of Figure 11.
    pub times: Vec<CollectionTime>,
}

/// Keys in the sub-window (paper: 64 K).
pub const TOTAL_KEYS: usize = 64 * 1024;
/// Keys cached in the data-plane flowkey array for the hybrid (32 K).
pub const CACHED_KEYS: usize = 32 * 1024;
/// Count-Min state array size (128 KB of 4-byte counters per array).
pub const ARRAY_BYTES: usize = 128 * 1024;

fn build_state(
    hashes: usize,
    fk_capacity: usize,
    keys: usize,
    seed: u64,
) -> (FrequencyApp<CountMin>, FlowkeyTracker) {
    let mut app = FrequencyApp::new(
        CountMin::new(hashes, ARRAY_BYTES / 4, seed),
        KeyKind::SrcIp,
        false,
    );
    let mut tracker = FlowkeyTracker::new(fk_capacity, keys, seed ^ 0x66);
    for i in 0..keys as u32 {
        let pkt = Packet::tcp(Instant::ZERO, i + 1, 9, 1, 80, TcpFlags::ack(), 64);
        app.update(&pkt);
        tracker.track(&FlowKey::src_ip(i + 1));
    }
    (app, tracker)
}

/// Run Exp#6: every method × 1–4 hash functions.
pub fn run(seed: u64) -> Exp6Result {
    run_sized(TOTAL_KEYS, CACHED_KEYS, seed)
}

/// Run with custom key counts (tests use smaller populations).
pub fn run_sized(total_keys: usize, cached_keys: usize, seed: u64) -> Exp6Result {
    let engine = CrEngine::new(LatencyModel::default());
    let mut times = Vec::new();
    let methods: [(&str, CollectMode, usize, bool, usize); 7] = [
        // (label, mode, recirc packets, rdma, fk capacity)
        ("OS", CollectMode::SwitchOs, 0, false, total_keys),
        ("CPC", CollectMode::ControlPlane, 0, false, total_keys),
        ("DPC", CollectMode::DataPlane, 3, false, total_keys),
        ("OW", CollectMode::Hybrid, 3, false, cached_keys),
        ("CPC*", CollectMode::ControlPlane, 0, true, total_keys),
        ("DPC*", CollectMode::DataPlane, 16, true, total_keys),
        ("OW*", CollectMode::Hybrid, 16, true, cached_keys),
    ];
    for hashes in 1..=4usize {
        for (label, mode, recirc, rdma, fk) in methods {
            let (mut app, mut tracker) = build_state(hashes, fk, total_keys, seed);
            let out = engine.collect_and_reset(
                &mut app,
                &mut tracker,
                0,
                CollectConfig {
                    mode,
                    recirc_packets: recirc,
                    rdma,
                },
            );
            times.push(CollectionTime {
                method: label.to_string(),
                hashes,
                millis: out.collect_time.as_millis_f64(),
                afrs: out.afrs.len(),
            });
        }
    }
    Exp6Result { times }
}

impl Exp6Result {
    /// Mean time of a method across hash counts, in ms.
    pub fn mean_ms(&self, method: &str) -> f64 {
        let v: Vec<f64> = self
            .times
            .iter()
            .filter(|t| t.method == method)
            .map(|t| t.millis)
            .collect();
        if v.is_empty() {
            0.0
        } else {
            v.iter().sum::<f64>() / v.len() as f64
        }
    }
}
