//! HashPipe (Sivaraman et al., SOSR'17).
//!
//! Heavy-hitter detection entirely in the data plane: a pipeline of `d`
//! stages, each a table of `(key, count)` slots. The first stage always
//! inserts the incoming key (evicting the resident entry); subsequent
//! stages either merge a matching key, fill an empty slot, or swap the
//! carried entry with the resident one if the carried count is larger —
//! so small flows ripple out of the pipeline while elephants settle.

use ow_common::flowkey::FlowKey;
use ow_common::hash::HashFamily;

use crate::traits::{FrequencySketch, InvertibleSketch, SketchMeta};

#[derive(Debug, Clone, Copy, Default)]
struct Slot {
    key: Option<FlowKey>,
    count: u64,
}

/// Bytes per slot in the hardware layout: 13 B key + 4 B count → 17,
/// rounded to 20 for alignment.
pub const HASHPIPE_SLOT_BYTES: usize = 20;

/// A `d`-stage HashPipe with `w` slots per stage.
#[derive(Debug, Clone)]
pub struct HashPipe {
    stages: usize,
    width: usize,
    slots: Vec<Slot>,
    hashes: HashFamily,
}

impl HashPipe {
    /// Create a pipe with `stages` stages of `width` slots each.
    ///
    /// # Panics
    /// Panics if `stages == 0` or `width == 0`.
    pub fn new(stages: usize, width: usize, seed: u64) -> HashPipe {
        assert!(
            stages > 0 && width > 0,
            "HashPipe dimensions must be positive"
        );
        HashPipe {
            stages,
            width,
            slots: vec![Slot::default(); stages * width],
            hashes: HashFamily::new(seed, stages),
        }
    }

    /// Create a pipe with `stages` stages sized to `total_bytes`.
    pub fn with_memory(stages: usize, total_bytes: usize, seed: u64) -> HashPipe {
        let width = (total_bytes / HASHPIPE_SLOT_BYTES / stages).max(1);
        HashPipe::new(stages, width, seed)
    }

    /// Slots per stage.
    pub fn width(&self) -> usize {
        self.width
    }
}

impl FrequencySketch for HashPipe {
    fn update(&mut self, key: &FlowKey, weight: u64) {
        // Stage 0: always insert, evicting the resident entry.
        let idx0 = self.hashes.get(0).index(key, self.width);
        let slot0 = &mut self.slots[idx0];
        let (mut carried_key, mut carried_count) = match slot0.key {
            Some(k) if k == *key => {
                slot0.count += weight;
                return;
            }
            Some(k) => {
                let evicted = (k, slot0.count);
                slot0.key = Some(*key);
                slot0.count = weight;
                evicted
            }
            None => {
                slot0.key = Some(*key);
                slot0.count = weight;
                return;
            }
        };

        // Later stages: merge, fill, or swap-if-larger.
        for s in 1..self.stages {
            let idx = s * self.width
                + self.hashes.get(s).index_u64(
                    {
                        // Hash the carried key (not the packet key) at stage s.
                        carried_key.as_u128() as u64 ^ (carried_key.as_u128() >> 64) as u64
                    },
                    self.width,
                );
            let slot = &mut self.slots[idx];
            match slot.key {
                Some(k) if k == carried_key => {
                    slot.count += carried_count;
                    return;
                }
                Some(_) if carried_count > slot.count => {
                    let tmp_key = slot.key.take().expect("slot occupied");
                    let tmp_count = slot.count;
                    slot.key = Some(carried_key);
                    slot.count = carried_count;
                    carried_key = tmp_key;
                    carried_count = tmp_count;
                }
                Some(_) => { /* carried entry continues */ }
                None => {
                    slot.key = Some(carried_key);
                    slot.count = carried_count;
                    return;
                }
            }
        }
        // Entry falling off the last stage is dropped (HashPipe's loss).
    }

    fn query(&self, key: &FlowKey) -> u64 {
        let mut total = 0u64;
        // Stage 0 indexed by the key directly.
        let idx0 = self.hashes.get(0).index(key, self.width);
        if self.slots[idx0].key == Some(*key) {
            total += self.slots[idx0].count;
        }
        let kh = key.as_u128() as u64 ^ (key.as_u128() >> 64) as u64;
        for s in 1..self.stages {
            let idx = s * self.width + self.hashes.get(s).index_u64(kh, self.width);
            if self.slots[idx].key == Some(*key) {
                total += self.slots[idx].count;
            }
        }
        total
    }

    fn reset(&mut self) {
        self.slots.fill(Slot::default());
    }

    fn meta(&self) -> SketchMeta {
        SketchMeta {
            name: "HashPipe",
            memory_bytes: self.slots.len() * HASHPIPE_SLOT_BYTES,
            register_arrays: self.stages * 2, // key + count array per stage
            salus_per_packet: self.stages * 2,
            hash_units: self.stages,
        }
    }
}

impl InvertibleSketch for HashPipe {
    fn candidates(&self) -> Vec<FlowKey> {
        let mut keys: Vec<FlowKey> = self.slots.iter().filter_map(|s| s.key).collect();
        keys.sort_by_key(|k| k.as_u128());
        keys.dedup();
        keys
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(i: u32) -> FlowKey {
        FlowKey::five_tuple(i, i.wrapping_mul(0x9E3779B9), 1, 80, 6)
    }

    #[test]
    fn elephants_survive_mice() {
        let mut hp = HashPipe::new(4, 256, 1);
        for round in 0..200u32 {
            for e in 0..5u32 {
                hp.update(&key(e), 20);
            }
            hp.update(&key(1000 + round), 1);
        }
        let cands = hp.candidates();
        for e in 0..5u32 {
            assert!(cands.contains(&key(e)), "elephant {e} evicted");
            let est = hp.query(&key(e));
            // HashPipe can undercount (entries dropped off the pipe) but an
            // elephant repeatedly re-inserted keeps most of its mass.
            assert!(est >= 2000, "elephant {e} estimate {est} too low");
        }
    }

    #[test]
    fn single_flow_exact() {
        let mut hp = HashPipe::new(3, 64, 2);
        for _ in 0..10 {
            hp.update(&key(7), 3);
        }
        assert_eq!(hp.query(&key(7)), 30);
    }

    #[test]
    fn never_overestimates_single_update_path() {
        // HashPipe only ever splits a flow's count across stages or drops
        // some of it; summing matching slots can never exceed the truth.
        let mut hp = HashPipe::new(4, 32, 3);
        let mut truth = std::collections::HashMap::new();
        for i in 0..2000u32 {
            let k = key(i % 300);
            hp.update(&k, 1);
            *truth.entry(i % 300).or_insert(0u64) += 1;
        }
        for (i, t) in truth {
            assert!(hp.query(&key(i)) <= t, "overestimate for {i}");
        }
    }

    #[test]
    fn reset_clears() {
        let mut hp = HashPipe::new(2, 16, 4);
        hp.update(&key(1), 5);
        hp.reset();
        assert_eq!(hp.query(&key(1)), 0);
        assert!(hp.candidates().is_empty());
    }

    #[test]
    fn duplicate_keys_merge_in_stage_zero() {
        let mut hp = HashPipe::new(2, 8, 5);
        hp.update(&key(1), 1);
        hp.update(&key(1), 1);
        assert_eq!(hp.query(&key(1)), 2);
        assert_eq!(hp.candidates().len(), 1);
    }
}
