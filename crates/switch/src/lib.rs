//! Software model of an RMT programmable switch running OmniWindow.
//!
//! The paper's data plane is a P4₁₆ program on an Intel Tofino ASIC. This
//! crate models that data plane faithfully at the level the paper's
//! mechanisms care about, while enforcing the RMT constraints of §2:
//!
//! * **C1** — no memory-traversal instruction: the only way to enumerate
//!   state is recirculating packets ([`collect`]) or the slow switch-OS
//!   path ([`osmodel`]);
//! * **C2** — no global clock: sub-window agreement comes from the
//!   Lamport-style consistency model ([`consistency`]);
//! * **C3** — scarce memory and SALUs: register arrays are explicitly
//!   sized, every feature's footprint is tracked ([`resources`]), and a
//!   greedy stage placer derives the pipeline packing ([`placement`]);
//! * **C4** — single-pass processing: one SALU access per register array
//!   per pass, enforced by the [`register`] types; sliding windows are
//!   *not* built by replicating state but by the sub-window machinery.
//!
//! Composition: [`switch::Switch`] wires the window [`signal`] engine,
//! the [`consistency`] model, [`flowkey`] tracking (Algorithm 1), the
//! two-region state layout ([`regions`], §6), and the collect-and-reset
//! engine ([`collect`], Algorithm 2 + §4.3) around any telemetry
//! application implementing [`app::DataPlaneApp`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod app;
pub mod collect;
pub mod consistency;
pub mod flowkey;
pub mod health;
pub mod latency;
pub mod osmodel;
pub mod placement;
pub mod regions;
pub mod register;
pub mod resources;
pub mod signal;
pub mod switch;

pub use app::DataPlaneApp;
pub use collect::{CollectConfig, CollectOutcome, CrEngine, RetransmitBuffer};
pub use consistency::ConsistencyModel;
pub use flowkey::{FlowkeyTracker, TrackOutcome};
pub use latency::LatencyModel;
pub use placement::{
    place, place_optimal, DepGraph, Feature, PackingDensity, Placement, PlacementError,
    ResourceClass, SearchBudget, StageLimits, StepRef,
};
pub use regions::TwoRegionState;
pub use register::{FlattenedLayout, RegisterArray, SaluOp};
pub use resources::{FeatureUsage, ResourceReport};
pub use signal::{SignalEngine, Termination, WindowSignal};
pub use switch::{Switch, SwitchConfig, SwitchEvent};
