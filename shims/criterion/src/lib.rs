//! Offline stand-in for `criterion`.
//!
//! A minimal wall-clock benchmarking harness exposing the criterion 0.5
//! API this workspace's benches use: `Criterion::benchmark_group`,
//! `bench_function` / `bench_with_input`, `Bencher::iter` /
//! `iter_batched`, `Throughput`, `BatchSize`, `BenchmarkId`, and the
//! `criterion_group!` / `criterion_main!` macros. No statistics, plots,
//! or outlier analysis — each benchmark reports the mean time per
//! iteration (and derived throughput) over a fixed number of samples.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::time::{Duration, Instant};

/// How work units are counted for throughput reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// How `iter_batched` amortises setup cost (ignored by the shim; every
/// iteration gets a fresh setup value).
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One setup per iteration.
    PerIteration,
}

/// A `function/parameter` benchmark label.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Label `{function}/{parameter}`.
    pub fn new(function: impl fmt::Display, parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            id: format!("{function}/{parameter}"),
        }
    }

    /// Label from the parameter alone.
    pub fn from_parameter(parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

/// Times closures for one benchmark target.
pub struct Bencher {
    samples: u32,
    elapsed: Duration,
    iters: u64,
}

impl Bencher {
    /// Time `routine`, called repeatedly.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Calibrate: grow the per-sample iteration count until one
        // sample takes ≳1ms, so timer overhead stays negligible.
        let mut per_sample = 1u64;
        loop {
            let start = Instant::now();
            for _ in 0..per_sample {
                std::hint::black_box(routine());
            }
            if start.elapsed() >= Duration::from_millis(1) || per_sample >= 1 << 20 {
                break;
            }
            per_sample *= 2;
        }
        for _ in 0..self.samples {
            let start = Instant::now();
            for _ in 0..per_sample {
                std::hint::black_box(routine());
            }
            self.elapsed += start.elapsed();
            self.iters += per_sample;
        }
    }

    /// Time `routine` over fresh values from `setup`; setup time is not
    /// counted.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        for _ in 0..self.samples {
            let input = setup();
            let start = Instant::now();
            std::hint::black_box(routine(input));
            self.elapsed += start.elapsed();
            self.iters += 1;
        }
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    criterion: &'a mut Criterion,
    throughput: Option<Throughput>,
    sample_size: u32,
}

impl BenchmarkGroup<'_> {
    /// Set the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1) as u32;
        self
    }

    /// Set the work-per-iteration used for throughput lines.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Run one benchmark.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            samples: self.sample_size,
            elapsed: Duration::ZERO,
            iters: 0,
        };
        f(&mut b);
        self.report(&id.to_string(), &b);
        self
    }

    /// Run one benchmark parameterised by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher {
            samples: self.sample_size,
            elapsed: Duration::ZERO,
            iters: 0,
        };
        f(&mut b, input);
        self.report(&id.to_string(), &b);
        self
    }

    fn report(&self, id: &str, b: &Bencher) {
        if b.iters == 0 {
            println!("{}/{:<40} (no iterations recorded)", self.name, id);
            return;
        }
        let per_iter_ns = b.elapsed.as_nanos() as f64 / b.iters as f64;
        let mut line = format!("{}/{:<40} {:>12.1} ns/iter", self.name, id, per_iter_ns);
        match self.throughput {
            Some(Throughput::Elements(n)) => {
                let rate = n as f64 / (per_iter_ns / 1e9);
                line.push_str(&format!("  {:>12.3} Melem/s", rate / 1e6));
            }
            Some(Throughput::Bytes(n)) => {
                let rate = n as f64 / (per_iter_ns / 1e9);
                line.push_str(&format!("  {:>12.3} MiB/s", rate / (1024.0 * 1024.0)));
            }
            None => {}
        }
        println!("{line}");
        let _ = &self.criterion;
    }

    /// End the group (formatting no-op in the shim).
    pub fn finish(&mut self) {}
}

/// The benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Start a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            criterion: self,
            throughput: None,
            sample_size: 10,
        }
    }

    /// Run one free-standing benchmark.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let name = id.to_string();
        self.benchmark_group(name.clone()).bench_function("", f);
        self
    }
}

/// Collect benchmark functions into a runner called by
/// [`criterion_main!`].
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        /// Benchmark group entry point generated by `criterion_group!`.
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Emit `fn main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_counts_iterations() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim_smoke");
        group.sample_size(3);
        group.throughput(Throughput::Elements(4));
        let mut calls = 0u64;
        group.bench_with_input(BenchmarkId::new("sum", 4), &[1u64, 2, 3, 4], |b, xs| {
            b.iter(|| {
                calls += 1;
                xs.iter().sum::<u64>()
            });
        });
        group.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 16], |v| v.len(), BatchSize::LargeInput);
        });
        group.finish();
        assert!(calls > 0);
    }
}
