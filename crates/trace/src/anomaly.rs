//! Ground-truth anomaly injectors for the accuracy experiments.
//!
//! Each injector appends attack traffic to a packet vector. The anomaly
//! kinds mirror the seven Sonata queries of Table 1 plus the boundary
//! burst of Figure 1. The injected hosts live in dedicated prefixes
//! (`192.168.0.0/16` for attackers, `172.16.0.0/12` for victims) so
//! experiments can always recover which reported key was synthetic.

use rand::Rng;

use ow_common::packet::{Packet, TcpFlags};
use ow_common::time::{Duration, Instant};

/// Base address for injected attacker hosts.
pub const ATTACKER_NET: u32 = 0xC0A8_0000; // 192.168.0.0
/// Base address for injected victim hosts.
pub const VICTIM_NET: u32 = 0xAC10_0000; // 172.16.0.0

/// What kind of anomaly to inject.
#[derive(Debug, Clone, PartialEq)]
pub enum AnomalyKind {
    /// One host opens `conns` new TCP connections to distinct servers
    /// (query Q1). Attacker: `ATTACKER_NET + id`.
    NewTcpConns {
        /// Number of new connections to open.
        conns: usize,
    },
    /// SSH brute force against one victim (Q2): `attempts` short
    /// connections to port 22 from one source.
    SshBruteForce {
        /// Number of login attempts.
        attempts: usize,
    },
    /// Port scan against one victim (Q3): SYNs to `ports` distinct ports.
    PortScan {
        /// Number of distinct destination ports probed.
        ports: usize,
    },
    /// DDoS (Q4): `sources` distinct hosts hit one victim.
    Ddos {
        /// Number of attacking sources.
        sources: usize,
    },
    /// SYN flood (Q5): `syns` SYN packets without completing handshakes.
    SynFlood {
        /// Number of SYNs.
        syns: usize,
    },
    /// Incomplete-flow spike (Q6): `flows` connections that open (SYN)
    /// but never close (no FIN) toward one victim.
    IncompleteFlows {
        /// Number of never-completed flows.
        flows: usize,
    },
    /// Slowloris (Q7): `conns` long-lived connections to one victim, each
    /// trickling tiny packets — many connections, very few bytes each.
    Slowloris {
        /// Number of concurrent connections.
        conns: usize,
        /// Tiny packets sent per connection.
        pkts_per_conn: usize,
    },
    /// Super-spreader (Q8): one source contacts `dsts` distinct hosts.
    SuperSpreader {
        /// Number of distinct destinations contacted.
        dsts: usize,
    },
    /// Heavy flow (Q9/Q10): one five-tuple flow of `pkts` packets.
    HeavyFlow {
        /// Number of packets in the flow.
        pkts: usize,
        /// Bytes per packet.
        pkt_len: u16,
    },
    /// The Figure-1 pathology: a flow whose `pkts` packets form a burst
    /// centred exactly on `boundary`, half before and half after — a
    /// tumbling window sees two sub-threshold halves, a sliding window
    /// sees the full burst.
    BoundaryBurst {
        /// Packets in the burst.
        pkts: usize,
        /// The window boundary the burst straddles.
        boundary: Instant,
        /// Burst width (centred on the boundary).
        width: Duration,
    },
}

/// A configured anomaly instance: what, who, and when.
#[derive(Debug, Clone, PartialEq)]
pub struct Anomaly {
    /// The anomaly type and its magnitude parameters.
    pub kind: AnomalyKind,
    /// Instance id: selects distinct attacker/victim addresses so several
    /// anomalies of the same kind never share hosts.
    pub id: u32,
    /// When the anomaly starts.
    pub start: Instant,
    /// How long it lasts (ignored by `BoundaryBurst`, which derives its
    /// own span).
    pub duration: Duration,
}

impl Anomaly {
    /// The attacker address for this instance.
    pub fn attacker(&self) -> u32 {
        ATTACKER_NET + self.id
    }

    /// The victim address for this instance.
    pub fn victim(&self) -> u32 {
        VICTIM_NET + self.id
    }

    fn spread_ts(&self, i: usize, n: usize, rng: &mut impl Rng) -> Instant {
        let span = self.duration.as_nanos().max(1);
        let base = self.start.as_nanos();
        let jitter = rng.gen_range(0..(span / (n as u64 + 1)).max(1));
        Instant::from_nanos(base + span * i as u64 / n.max(1) as u64 + jitter)
    }

    /// Append this anomaly's packets to `out`.
    pub fn inject(&self, out: &mut Vec<Packet>, rng: &mut impl Rng) {
        let atk = self.attacker();
        let vic = self.victim();
        match self.kind {
            AnomalyKind::NewTcpConns { conns } => {
                for i in 0..conns {
                    let ts = self.spread_ts(i, conns, rng);
                    let dst = vic.wrapping_add((i as u32) << 4);
                    let sport = 10_000 + (i % 50_000) as u16;
                    out.push(Packet::tcp(ts, atk, dst, sport, 80, TcpFlags::syn(), 64));
                    out.push(Packet::tcp(
                        ts + Duration::from_micros(50),
                        atk,
                        dst,
                        sport,
                        80,
                        TcpFlags::ack(),
                        128,
                    ));
                }
            }
            AnomalyKind::SshBruteForce { attempts } => {
                for i in 0..attempts {
                    let ts = self.spread_ts(i, attempts, rng);
                    let sport = 20_000 + (i % 40_000) as u16;
                    out.push(Packet::tcp(ts, atk, vic, sport, 22, TcpFlags::syn(), 64));
                    out.push(Packet::tcp(
                        ts + Duration::from_micros(100),
                        atk,
                        vic,
                        sport,
                        22,
                        TcpFlags::ack(),
                        96,
                    ));
                    out.push(Packet::tcp(
                        ts + Duration::from_micros(500),
                        atk,
                        vic,
                        sport,
                        22,
                        TcpFlags::fin_ack(),
                        64,
                    ));
                }
            }
            AnomalyKind::PortScan { ports } => {
                for i in 0..ports {
                    let ts = self.spread_ts(i, ports, rng);
                    out.push(Packet::tcp(
                        ts,
                        atk,
                        vic,
                        31_337,
                        (1 + i % 65_000) as u16,
                        TcpFlags::syn(),
                        64,
                    ));
                }
            }
            AnomalyKind::Ddos { sources } => {
                for i in 0..sources {
                    let ts = self.spread_ts(i, sources, rng);
                    let src = ATTACKER_NET + 0x8000 + (self.id << 10) + i as u32;
                    out.push(Packet::udp(ts, src, vic, 4444, 53, 512));
                    out.push(Packet::udp(
                        ts + Duration::from_micros(30),
                        src,
                        vic,
                        4444,
                        53,
                        512,
                    ));
                }
            }
            AnomalyKind::SynFlood { syns } => {
                for i in 0..syns {
                    let ts = self.spread_ts(i, syns, rng);
                    // Spoofed sources: rotate through a small pool.
                    let src = ATTACKER_NET + 0xC000 + (i % 256) as u32;
                    out.push(Packet::tcp(
                        ts,
                        src,
                        vic,
                        (1024 + i % 60_000) as u16,
                        80,
                        TcpFlags::syn(),
                        64,
                    ));
                }
            }
            AnomalyKind::IncompleteFlows { flows } => {
                for i in 0..flows {
                    let ts = self.spread_ts(i, flows, rng);
                    let sport = (2048 + i % 60_000) as u16;
                    out.push(Packet::tcp(ts, atk, vic, sport, 443, TcpFlags::syn(), 64));
                    out.push(Packet::tcp(
                        ts + Duration::from_micros(80),
                        atk,
                        vic,
                        sport,
                        443,
                        TcpFlags::ack(),
                        200,
                    ));
                    // No FIN: the flow never completes.
                }
            }
            AnomalyKind::Slowloris {
                conns,
                pkts_per_conn,
            } => {
                for c in 0..conns {
                    let sport = (3000 + c % 60_000) as u16;
                    let src = atk.wrapping_add((c as u32 % 16) << 8);
                    for p in 0..pkts_per_conn {
                        let ts = self.spread_ts(c * pkts_per_conn + p, conns * pkts_per_conn, rng);
                        let flags = if p == 0 {
                            TcpFlags::syn()
                        } else {
                            TcpFlags::ack()
                        };
                        // Tiny payloads: the Slowloris signature.
                        out.push(Packet::tcp(ts, src, vic, sport, 80, flags, 60));
                    }
                }
            }
            AnomalyKind::SuperSpreader { dsts } => {
                for i in 0..dsts {
                    let ts = self.spread_ts(i, dsts, rng);
                    let dst = vic.wrapping_add(i as u32);
                    out.push(Packet::udp(ts, atk, dst, 5555, 8080, 128));
                }
            }
            AnomalyKind::HeavyFlow { pkts, pkt_len } => {
                for i in 0..pkts {
                    let ts = self.spread_ts(i, pkts, rng);
                    out.push(Packet::tcp(
                        ts,
                        atk,
                        vic,
                        7777,
                        80,
                        if i == 0 {
                            TcpFlags::syn()
                        } else {
                            TcpFlags::ack()
                        },
                        pkt_len,
                    ));
                }
            }
            AnomalyKind::BoundaryBurst {
                pkts,
                boundary,
                width,
            } => {
                let half = Duration::from_nanos(width.as_nanos() / 2);
                let start = boundary - half;
                for i in 0..pkts {
                    let off = width.as_nanos() * i as u64 / pkts.max(1) as u64;
                    let ts = start + Duration::from_nanos(off);
                    out.push(Packet::tcp(
                        ts,
                        atk,
                        vic,
                        8888,
                        80,
                        if i == 0 {
                            TcpFlags::syn()
                        } else {
                            TcpFlags::ack()
                        },
                        1400,
                    ));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::collections::HashSet;

    fn run(kind: AnomalyKind) -> Vec<Packet> {
        let a = Anomaly {
            kind,
            id: 1,
            start: Instant::from_millis(100),
            duration: Duration::from_millis(200),
        };
        let mut out = Vec::new();
        a.inject(&mut out, &mut StdRng::seed_from_u64(7));
        out
    }

    #[test]
    fn port_scan_hits_distinct_ports() {
        let pkts = run(AnomalyKind::PortScan { ports: 500 });
        let ports: HashSet<u16> = pkts.iter().map(|p| p.dst_port).collect();
        assert_eq!(ports.len(), 500);
        assert!(pkts.iter().all(|p| p.tcp_flags.is_pure_syn()));
        assert!(pkts.iter().all(|p| p.dst_ip == VICTIM_NET + 1));
    }

    #[test]
    fn ddos_uses_distinct_sources() {
        let pkts = run(AnomalyKind::Ddos { sources: 300 });
        let srcs: HashSet<u32> = pkts.iter().map(|p| p.src_ip).collect();
        assert_eq!(srcs.len(), 300);
        assert!(pkts.iter().all(|p| p.dst_ip == VICTIM_NET + 1));
    }

    #[test]
    fn syn_flood_is_all_syn_no_fin() {
        let pkts = run(AnomalyKind::SynFlood { syns: 200 });
        assert_eq!(pkts.len(), 200);
        assert!(pkts.iter().all(|p| p.tcp_flags.is_pure_syn()));
    }

    #[test]
    fn ssh_brute_force_targets_port_22() {
        let pkts = run(AnomalyKind::SshBruteForce { attempts: 50 });
        assert!(pkts.iter().all(|p| p.dst_port == 22));
        let syns = pkts.iter().filter(|p| p.tcp_flags.is_pure_syn()).count();
        assert_eq!(syns, 50);
    }

    #[test]
    fn super_spreader_contacts_distinct_hosts() {
        let pkts = run(AnomalyKind::SuperSpreader { dsts: 400 });
        let dsts: HashSet<u32> = pkts.iter().map(|p| p.dst_ip).collect();
        assert_eq!(dsts.len(), 400);
        assert!(pkts.iter().all(|p| p.src_ip == ATTACKER_NET + 1));
    }

    #[test]
    fn incomplete_flows_never_fin() {
        let pkts = run(AnomalyKind::IncompleteFlows { flows: 60 });
        assert!(pkts.iter().all(|p| !p.tcp_flags.has_fin()));
        let syns = pkts.iter().filter(|p| p.tcp_flags.is_pure_syn()).count();
        assert_eq!(syns, 60);
    }

    #[test]
    fn slowloris_is_many_conns_tiny_packets() {
        let pkts = run(AnomalyKind::Slowloris {
            conns: 80,
            pkts_per_conn: 4,
        });
        assert_eq!(pkts.len(), 320);
        assert!(pkts.iter().all(|p| p.wire_len <= 64));
        let conns: HashSet<(u32, u16)> = pkts.iter().map(|p| (p.src_ip, p.src_port)).collect();
        assert_eq!(conns.len(), 80);
    }

    #[test]
    fn boundary_burst_straddles_boundary() {
        let boundary = Instant::from_millis(500);
        let pkts = run(AnomalyKind::BoundaryBurst {
            pkts: 100,
            boundary,
            width: Duration::from_millis(100),
        });
        let before = pkts.iter().filter(|p| p.ts < boundary).count();
        let after = pkts.len() - before;
        assert_eq!(pkts.len(), 100);
        // Half on each side (±5%).
        assert!((45..=55).contains(&before), "before={before}");
        assert!((45..=55).contains(&after), "after={after}");
    }

    #[test]
    fn timestamps_within_anomaly_span() {
        let a = Anomaly {
            kind: AnomalyKind::PortScan { ports: 100 },
            id: 3,
            start: Instant::from_millis(250),
            duration: Duration::from_millis(100),
        };
        let mut out = Vec::new();
        a.inject(&mut out, &mut StdRng::seed_from_u64(9));
        for p in &out {
            assert!(p.ts >= a.start);
            assert!(p.ts <= a.start + a.duration + Duration::from_millis(1));
        }
    }

    #[test]
    fn distinct_ids_use_distinct_hosts() {
        let a = Anomaly {
            kind: AnomalyKind::HeavyFlow {
                pkts: 10,
                pkt_len: 100,
            },
            id: 1,
            start: Instant::ZERO,
            duration: Duration::from_millis(10),
        };
        let b = Anomaly { id: 2, ..a.clone() };
        assert_ne!(a.attacker(), b.attacker());
        assert_ne!(a.victim(), b.victim());
    }
}
