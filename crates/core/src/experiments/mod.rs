//! One driver per paper experiment, shared by the `ow-bench` binaries
//! and the integration tests.
//!
//! Every driver takes a [`Scale`]: `Small` keeps tests fast (seconds),
//! `Paper` approaches the paper's workload sizes for the bench binaries.
//! Results are plain serialisable structs so binaries can print tables
//! and dump JSON.

pub mod ablations;
pub mod common;
pub mod exp10_window_sizes;
pub mod exp1_queries;
pub mod exp2_sketches;
pub mod exp3_dml;
pub mod exp4_controller;
pub mod exp5_resources;
pub mod exp6_collection;
pub mod exp7_aggregation;
pub mod exp8_reset;
pub mod exp9_consistency;
pub mod obs_smoke;

pub use common::Scale;
