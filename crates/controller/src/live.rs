//! A live, threaded switch→controller deployment.
//!
//! The simulation experiments run single-threaded on virtual time, but a
//! real deployment has the data plane and the controller on different
//! processors connected by a message stream. This module provides that
//! runtime shape: a bounded crossbeam channel carries per-sub-window AFR
//! batches from the (switch-side) producer thread to a controller thread
//! that folds them into a shared, lock-protected merge table; queries
//! read the table concurrently through the [`LiveHandle`].

use std::thread::JoinHandle;

use crossbeam::channel::{bounded, Receiver, Sender};
use parking_lot::RwLock;
use std::sync::Arc;

use ow_common::afr::FlowRecord;
use ow_common::flowkey::FlowKey;

use crate::table::MergeTable;

/// A message from the data plane to the controller.
#[derive(Debug, Clone)]
pub enum DataPlaneMsg {
    /// One terminated sub-window's AFR batch.
    AfrBatch {
        /// The terminated sub-window.
        subwindow: u32,
        /// Its AFRs.
        afrs: Vec<FlowRecord>,
    },
    /// End of stream: the controller thread drains and exits.
    Shutdown,
}

/// Shared handle for querying the live merge table.
#[derive(Debug, Clone)]
pub struct LiveHandle {
    table: Arc<RwLock<MergeTable>>,
    window_subwindows: usize,
}

impl LiveHandle {
    /// Flows whose merged scalar is at least `threshold`, right now.
    pub fn flows_over(&self, threshold: f64) -> Vec<(FlowKey, f64)> {
        self.table.read().flows_over(threshold)
    }

    /// Number of flows currently merged.
    pub fn merged_flows(&self) -> usize {
        self.table.read().len()
    }

    /// The sub-windows currently contributing to the table.
    pub fn subwindows(&self) -> Vec<u32> {
        self.table.read().subwindows()
    }

    /// Sub-windows per sliding window.
    pub fn window_span(&self) -> usize {
        self.window_subwindows
    }
}

/// The running controller: its input channel, query handle, and thread.
pub struct LiveController {
    /// Send AFR batches (and finally `Shutdown`) here.
    pub sender: Sender<DataPlaneMsg>,
    /// Concurrent query access.
    pub handle: LiveHandle,
    thread: JoinHandle<u64>,
}

impl LiveController {
    /// Spawn a controller maintaining a sliding window of
    /// `window_subwindows` sub-windows. `queue_depth` bounds the channel
    /// (back-pressure toward the data plane, as a NIC queue would).
    pub fn spawn(window_subwindows: usize, queue_depth: usize) -> LiveController {
        let (tx, rx): (Sender<DataPlaneMsg>, Receiver<DataPlaneMsg>) = bounded(queue_depth);
        let table = Arc::new(RwLock::new(MergeTable::new()));
        let handle = LiveHandle {
            table: table.clone(),
            window_subwindows,
        };
        let thread = std::thread::spawn(move || {
            let mut batches = 0u64;
            while let Ok(msg) = rx.recv() {
                match msg {
                    DataPlaneMsg::AfrBatch { subwindow, afrs } => {
                        let mut t = table.write();
                        t.insert_batch(subwindow, afrs);
                        while t.subwindows().len() > window_subwindows {
                            t.evict_oldest();
                        }
                        batches += 1;
                    }
                    DataPlaneMsg::Shutdown => break,
                }
            }
            batches
        });
        LiveController {
            sender: tx,
            handle,
            thread,
        }
    }

    /// Signal shutdown and wait for the controller thread; returns the
    /// number of batches it processed.
    pub fn join(self) -> u64 {
        let _ = self.sender.send(DataPlaneMsg::Shutdown);
        self.thread.join().expect("controller thread panicked")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn batch(sw: u32, flows: std::ops::Range<u32>, n: u64) -> DataPlaneMsg {
        DataPlaneMsg::AfrBatch {
            subwindow: sw,
            afrs: flows
                .map(|i| FlowRecord::frequency(FlowKey::src_ip(i), n, sw))
                .collect(),
        }
    }

    #[test]
    fn live_pipeline_merges_and_slides() {
        let ctl = LiveController::spawn(2, 16);
        ctl.sender.send(batch(0, 0..10, 60)).unwrap();
        ctl.sender.send(batch(1, 0..10, 80)).unwrap();
        // Wait for the controller to drain.
        while ctl.handle.merged_flows() < 10 {
            std::thread::yield_now();
        }
        // 60 + 80 = 140 ≥ 100: boundary flows visible live.
        let mut over = Vec::new();
        for _ in 0..1000 {
            over = ctl.handle.flows_over(100.0);
            if over.len() == 10 {
                break;
            }
            std::thread::yield_now();
        }
        assert_eq!(over.len(), 10);

        // Slide: sub-window 2 evicts sub-window 0.
        ctl.sender.send(batch(2, 0..10, 5)).unwrap();
        let mut sws = Vec::new();
        for _ in 0..10_000 {
            sws = ctl.handle.subwindows();
            if sws == vec![1, 2] {
                break;
            }
            std::thread::yield_now();
        }
        assert_eq!(sws, vec![1, 2]);
        assert_eq!(ctl.join(), 3);
    }

    #[test]
    fn shutdown_without_traffic() {
        let ctl = LiveController::spawn(5, 4);
        assert_eq!(ctl.join(), 0);
    }

    #[test]
    fn queries_concurrent_with_ingest() {
        let ctl = LiveController::spawn(3, 64);
        let handle = ctl.handle.clone();
        let reader = std::thread::spawn(move || {
            let mut max_seen = 0;
            for _ in 0..200 {
                max_seen = max_seen.max(handle.merged_flows());
                std::thread::yield_now();
            }
            max_seen
        });
        for sw in 0..20u32 {
            ctl.sender.send(batch(sw, 0..50, 1)).unwrap();
        }
        let _ = reader.join().unwrap();
        let final_handle = ctl.handle.clone();
        assert_eq!(ctl.join(), 20);
        // Final state spans the last 3 sub-windows.
        assert_eq!(final_handle.subwindows(), vec![17, 18, 19]);
    }
}
