//! Structured diagnostics with stable error codes, and the
//! machine-readable verification report.
//!
//! Every check the verifier performs maps to exactly one [`ErrorCode`];
//! codes are part of the tool's contract (CI greps them, tests assert
//! them) and must never be renamed once shipped. The JSON rendering of
//! a [`VerifyReport`] is what `ow-lint --json` emits and what the
//! Table-2 baseline under `results/` records.

use ow_switch::placement::PackingDensity;
use serde::{Serialize, Value};

/// Stable diagnostic codes. One code per provable property; the
/// string form (`OW-…`) is the public contract.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ErrorCode {
    /// A path performs two SALU accesses to one register array in a
    /// single pass (violates C4).
    C4DoubleAccess,
    /// A path references a register array the program never declares.
    UnknownRegister,
    /// A register declaration is malformed (zero regions/cells, or a
    /// duplicate name).
    BadRegister,
    /// A path's static index bound can exceed its region's cell count
    /// in the §6 flattened layout.
    AddrOutOfBounds,
    /// Dependency-ordered stage placement does not fit the pipeline.
    StageOverflow,
    /// A step (or the program total) exceeds the SRAM budget.
    SramOverflow,
    /// A step exceeds the per-stage SALU budget.
    SaluOverflow,
    /// A step exceeds the per-stage VLIW budget.
    VliwOverflow,
    /// A step exceeds the per-stage gateway budget.
    GatewayOverflow,
    /// The program declares fewer SALUs across its steps than register
    /// arrays: some array has no SALU to serve it.
    SaluUnderprovisioned,
    /// A recirculating path (clear / collection) has no finite static
    /// bound on its recirculation count — C1 makes such a loop the only
    /// way to traverse memory, so it must provably terminate.
    RecircUnbounded,
    /// A control-plane path (retransmit / os-read) declares a SALU
    /// access; those paths must read via snapshots only.
    ControlPlaneSalu,
    /// The program declares no path for a packet class the window state
    /// machine exercises (warning).
    MissingPath,
    /// A verified witness was applied to a configuration/application it
    /// does not cover.
    ConfigMismatch,
    /// The branch-and-bound placer proved (or, budget permitting,
    /// strongly evidenced) that no stage assignment fits: the message
    /// names the feature, step, and binding resource class.
    PlaceInfeasible,
    /// Informational: the program was placed, with the stage slack and
    /// per-stage packing density the optimizer achieved.
    PlaceSlack,
}

impl ErrorCode {
    /// The stable string form of the code.
    pub fn as_str(&self) -> &'static str {
        match self {
            ErrorCode::C4DoubleAccess => "OW-C4-DOUBLE-ACCESS",
            ErrorCode::UnknownRegister => "OW-UNKNOWN-REGISTER",
            ErrorCode::BadRegister => "OW-BAD-REGISTER",
            ErrorCode::AddrOutOfBounds => "OW-ADDR-OOB",
            ErrorCode::StageOverflow => "OW-STAGE-OVERFLOW",
            ErrorCode::SramOverflow => "OW-SRAM-OVERFLOW",
            ErrorCode::SaluOverflow => "OW-SALU-OVERFLOW",
            ErrorCode::VliwOverflow => "OW-VLIW-OVERFLOW",
            ErrorCode::GatewayOverflow => "OW-GATEWAY-OVERFLOW",
            ErrorCode::SaluUnderprovisioned => "OW-SALU-UNDERPROVISIONED",
            ErrorCode::RecircUnbounded => "OW-RECIRC-UNBOUNDED",
            ErrorCode::ControlPlaneSalu => "OW-CONTROL-PLANE-SALU",
            ErrorCode::MissingPath => "OW-MISSING-PATH",
            ErrorCode::ConfigMismatch => "OW-CONFIG-MISMATCH",
            ErrorCode::PlaceInfeasible => "OW-PLACE-INFEASIBLE",
            ErrorCode::PlaceSlack => "OW-PLACE-SLACK",
        }
    }
}

impl core::fmt::Display for ErrorCode {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(self.as_str())
    }
}

impl Serialize for ErrorCode {
    fn to_value(&self) -> Value {
        Value::String(self.as_str().to_string())
    }
}

/// Diagnostic severity. Only `Error` blocks verification; `Warning`
/// still yields a [`crate::VerifiedProgram`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Severity {
    /// The program is rejected.
    Error,
    /// Suspicious but not unsound.
    Warning,
    /// Informational (e.g. the placement's packing density); never
    /// blocks and never indicates a problem.
    Note,
}

impl Serialize for Severity {
    fn to_value(&self) -> Value {
        Value::String(
            match self {
                Severity::Error => "error",
                Severity::Warning => "warning",
                Severity::Note => "note",
            }
            .to_string(),
        )
    }
}

/// One verifier finding.
#[derive(Debug, Clone, Serialize)]
pub struct Diagnostic {
    /// Stable code.
    pub code: ErrorCode,
    /// Severity.
    pub severity: Severity,
    /// Where in the program (feature, path, or register name).
    pub context: String,
    /// Human-readable explanation.
    pub message: String,
}

impl Diagnostic {
    /// An error-severity diagnostic.
    pub fn error(code: ErrorCode, context: impl Into<String>, message: impl Into<String>) -> Self {
        Diagnostic {
            code,
            severity: Severity::Error,
            context: context.into(),
            message: message.into(),
        }
    }

    /// A warning-severity diagnostic.
    pub fn warning(
        code: ErrorCode,
        context: impl Into<String>,
        message: impl Into<String>,
    ) -> Self {
        Diagnostic {
            code,
            severity: Severity::Warning,
            context: context.into(),
            message: message.into(),
        }
    }

    /// A note-severity (informational) diagnostic.
    pub fn note(code: ErrorCode, context: impl Into<String>, message: impl Into<String>) -> Self {
        Diagnostic {
            code,
            severity: Severity::Note,
            context: context.into(),
            message: message.into(),
        }
    }
}

impl core::fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        let sev = match self.severity {
            Severity::Error => "error",
            Severity::Warning => "warning",
            Severity::Note => "note",
        };
        write!(
            f,
            "{sev}[{}] {}: {}",
            self.code.as_str(),
            self.context,
            self.message
        )
    }
}

/// Whole-program resource totals recorded in the report.
#[derive(Debug, Clone, Copy, Default, Serialize)]
pub struct ResourceTotals {
    /// Summed SRAM across all steps (KB).
    pub sram_kb: u32,
    /// Summed SALUs across all steps.
    pub salus: u32,
    /// Summed VLIW slots across all steps.
    pub vliw: u32,
    /// Summed gateways across all steps.
    pub gateways: u32,
    /// Declared register arrays.
    pub registers: u32,
    /// Total register cells across all arrays and regions.
    pub register_cells: u64,
}

/// The machine-readable verification report.
#[derive(Debug, Clone, Serialize)]
pub struct VerifyReport {
    /// The verified program's name.
    pub program: String,
    /// Whether verification succeeded (no error-severity diagnostics).
    pub ok: bool,
    /// All findings, errors first.
    pub diagnostics: Vec<Diagnostic>,
    /// Stages the placement actually used (0 when placement failed).
    pub stages_used: u32,
    /// How the placement was derived (`"greedy"`, `"greedy-incumbent"`,
    /// `"branch-and-bound"`; empty when placement failed).
    pub placement_method: String,
    /// Packing density of the derived placement (`None` when placement
    /// failed): the per-stage utilisation permille of every resource
    /// class, the admission currency of the multi-tenant control plane.
    pub density: Option<PackingDensity>,
    /// Whole-program resource totals.
    pub totals: ResourceTotals,
}

impl VerifyReport {
    /// Error-severity diagnostics only.
    pub fn errors(&self) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Error)
    }

    /// Whether any diagnostic carries `code`.
    pub fn has_code(&self, code: ErrorCode) -> bool {
        self.diagnostics.iter().any(|d| d.code == code)
    }

    /// Pretty JSON rendering (the `ow-lint --json` payload).
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("report serializes")
    }
}

impl core::fmt::Display for VerifyReport {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "{}: {} ({} stages, {} KB SRAM, {} SALUs, {} VLIW, {} gateways)",
            self.program,
            if self.ok { "OK" } else { "REJECTED" },
            self.stages_used,
            self.totals.sram_kb,
            self.totals.salus,
            self.totals.vliw,
            self.totals.gateways,
        )?;
        if let Some(d) = &self.density {
            write!(
                f,
                " [density permille: sram {} salu {} vliw {} gateway {}]",
                d.sram_permille, d.salu_permille, d.vliw_permille, d.gateway_permille
            )?;
        }
        writeln!(f)?;
        for d in &self.diagnostics {
            writeln!(f, "  {d}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_are_stable_strings() {
        assert_eq!(ErrorCode::C4DoubleAccess.as_str(), "OW-C4-DOUBLE-ACCESS");
        assert_eq!(ErrorCode::StageOverflow.as_str(), "OW-STAGE-OVERFLOW");
        assert_eq!(ErrorCode::AddrOutOfBounds.as_str(), "OW-ADDR-OOB");
        assert_eq!(ErrorCode::RecircUnbounded.as_str(), "OW-RECIRC-UNBOUNDED");
        assert_eq!(ErrorCode::PlaceInfeasible.as_str(), "OW-PLACE-INFEASIBLE");
        assert_eq!(ErrorCode::PlaceSlack.as_str(), "OW-PLACE-SLACK");
    }

    #[test]
    fn report_json_contains_codes() {
        let report = VerifyReport {
            program: "p".into(),
            ok: false,
            diagnostics: vec![Diagnostic::error(
                ErrorCode::C4DoubleAccess,
                "path 'clear'",
                "register 'r' accessed twice",
            )],
            stages_used: 0,
            placement_method: String::new(),
            density: None,
            totals: ResourceTotals::default(),
        };
        let json = report.to_json();
        assert!(json.contains("OW-C4-DOUBLE-ACCESS"), "{json}");
        assert!(json.contains("\"ok\": false"), "{json}");
        assert!(json.contains("\"density\": null"), "{json}");
    }

    #[test]
    fn density_serializes_with_permille_columns() {
        let report = VerifyReport {
            program: "p".into(),
            ok: true,
            diagnostics: vec![],
            stages_used: 3,
            placement_method: "branch-and-bound".into(),
            density: Some(PackingDensity {
                stages_used: 3,
                stages_limit: 12,
                sram_permille: 10,
                salu_permille: 1000,
                vliw_permille: 416,
                gateway_permille: 250,
            }),
            totals: ResourceTotals::default(),
        };
        let json = report.to_json();
        assert!(json.contains("\"salu_permille\": 1000"), "{json}");
        assert!(
            json.contains("\"placement_method\": \"branch-and-bound\""),
            "{json}"
        );
        let text = report.to_string();
        assert!(text.contains("density permille"), "{text}");
    }
}
