//! DDoS-victim detection with a Sonata-style query under OmniWindow.
//!
//! Runs query Q4 ("detect hosts under DDoS attack": distinct sources per
//! destination over a threshold) on a trace with two injected DDoS
//! attacks — one inside a window, one straddling a window boundary — and
//! compares the conventional single-region tumbling window (TW1, which
//! loses traffic during its slow collect-and-reset) against OmniWindow.
//!
//! Run with: `cargo run --release --example ddos_detection`

use omniwindow::app::QueryApp;
use omniwindow::config::WindowConfig;
use omniwindow::mechanisms::{run_conventional_tw, run_ideal, run_omniwindow_probed, Mode};
use ow_common::flowkey::FlowKey;
use ow_common::time::{Duration, Instant};
use ow_query::spec::standard_queries;
use ow_trace::anomaly::{Anomaly, AnomalyKind};
use ow_trace::{TraceBuilder, TraceConfig};

fn main() {
    let cfg = WindowConfig::paper_default();
    let q4 = standard_queries()[3];
    println!("query: {} — {}", q4.name, q4.description);

    let mk = |id, start_ms| Anomaly {
        kind: AnomalyKind::Ddos { sources: 150 },
        id,
        start: Instant::from_millis(start_ms),
        duration: Duration::from_millis(250),
    };
    let trace = TraceBuilder::new(TraceConfig {
        duration: Duration::from_millis(2_000),
        flows: 3_000,
        packets: 60_000,
        seed: 7,
        ..TraceConfig::default()
    })
    .with_anomalies([mk(1, 120), mk(2, 880), mk(3, 1_380)])
    .build();

    let victims: Vec<FlowKey> = (1..=3)
        .map(|id| FlowKey::dst_ip(0xAC10_0000 + id))
        .collect();

    let app = QueryApp::new(q4);
    let mem = app.memory_for_slots(16 * 1024);
    let ideal = run_ideal(&app, &trace, &cfg, Mode::Tumbling);
    let tw1 = run_conventional_tw(
        &app,
        &trace,
        &cfg,
        mem,
        Duration::from_millis(60), // the switch-OS C&R blackout
        7,
        &[],
    );
    let otw = run_omniwindow_probed(&app, &trace, &cfg, Mode::Tumbling, mem / 4, 8_192, 7, &[]);

    println!("\nper-window victim reports (I = ideal, 1 = TW1, O = OmniWindow):");
    for w in 0..ideal.len() {
        let marks = |r: &std::collections::HashSet<FlowKey>| {
            victims
                .iter()
                .map(|v| if r.contains(v) { 'x' } else { '.' })
                .collect::<String>()
        };
        println!(
            "  window {w}:  I[{}]  1[{}]  O[{}]",
            marks(&ideal[w].reported),
            marks(&tw1[w].reported),
            marks(&otw[w].reported)
        );
    }

    let count = |rs: &[omniwindow::mechanisms::WindowResult]| {
        rs.iter()
            .map(|w| victims.iter().filter(|v| w.reported.contains(v)).count())
            .sum::<usize>()
    };
    println!(
        "\nvictim detections — ideal: {}, TW1: {}, OmniWindow: {}",
        count(&ideal),
        count(&tw1),
        count(&otw)
    );
    assert!(count(&otw) >= count(&tw1));
}
