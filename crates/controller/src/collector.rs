//! Per-sub-window AFR collection sessions with loss recovery (§8,
//! "Reliability of AFRs").
//!
//! AFR report clones travel at the lowest priority and can be dropped
//! under congestion. The switch announces, in the trigger packet, how
//! many flowkeys the sub-window tracked and gives every AFR a dense
//! sequence id; the controller checks completeness after generation and
//! asks the switch to retransmit exactly the missing sequence ids.

use std::collections::HashMap;

use ow_common::afr::FlowRecord;
use ow_common::engine::{WindowEvent, WindowFsm, WindowPhase};

/// State of one sub-window's collection session.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SessionStatus {
    /// Still expecting AFRs (count below announced).
    Collecting,
    /// All announced sequence ids received.
    Complete,
    /// Generation finished but ids are missing — retransmission needed.
    MissingAfrs,
}

/// A collection session for one (switch, sub-window) pair.
///
/// The session's lifecycle is a [`WindowFsm`] entered at
/// [`WindowPhase::Collected`] (the first thing the controller learns
/// about a window is its announced batch size); [`SessionStatus`] is a
/// projection of the FSM phase rather than an independently re-derived
/// state, so the controller cannot drift from the switch's view of the
/// same window.
#[derive(Debug, Clone)]
pub struct CollectionSession {
    subwindow: u32,
    announced: u32,
    received: HashMap<u32, FlowRecord>,
    fsm: WindowFsm,
}

impl CollectionSession {
    /// Open a session after the trigger packet announced `announced`
    /// tracked flowkeys for `subwindow`.
    pub fn new(subwindow: u32, announced: u32) -> CollectionSession {
        let mut fsm = WindowFsm::announced(subwindow, announced);
        if announced == 0 {
            // Nothing to wait for: the empty batch is complete on arrival.
            fsm.apply(WindowEvent::StreamComplete)
                .expect("empty session completes immediately");
        }
        CollectionSession {
            subwindow,
            announced,
            received: HashMap::with_capacity(announced as usize),
            fsm,
        }
    }

    /// The sub-window being collected.
    pub fn subwindow(&self) -> u32 {
        self.subwindow
    }

    /// The session's lifecycle FSM (the controller-side half of the
    /// window lifecycle).
    pub fn fsm(&self) -> &WindowFsm {
        &self.fsm
    }

    /// Current lifecycle phase.
    pub fn phase(&self) -> WindowPhase {
        self.fsm.phase()
    }

    /// Ingest one AFR report. Duplicates (retransmissions that crossed
    /// with the original) are idempotent. AFRs for the wrong sub-window
    /// are rejected.
    pub fn receive(&mut self, rec: FlowRecord) -> Result<(), ow_common::OwError> {
        if rec.subwindow != self.subwindow {
            return Err(ow_common::OwError::Protocol(format!(
                "AFR for sub-window {} in session {}",
                rec.subwindow, self.subwindow
            )));
        }
        self.received.entry(rec.seq).or_insert(rec);
        if self.received.len() as u32 >= self.announced && self.fsm.phase() != WindowPhase::Merged {
            self.fsm
                .apply(WindowEvent::StreamComplete)
                .expect("a full session merges");
        }
        Ok(())
    }

    /// How many AFRs the trigger announced for this session.
    pub fn announced(&self) -> u32 {
        self.announced
    }

    /// Distinct sequence ids received so far (duplicates collapse).
    pub fn received(&self) -> usize {
        self.received.len()
    }

    /// Session status — a projection of the lifecycle phase.
    pub fn status(&self) -> SessionStatus {
        match self.fsm.phase() {
            WindowPhase::Merged => SessionStatus::Complete,
            WindowPhase::Retransmitting | WindowPhase::Escalated => SessionStatus::MissingAfrs,
            _ => SessionStatus::Collecting,
        }
    }

    /// The missing sequence ids (the retransmission request payload).
    /// Calling this marks the generation phase as over: a non-empty
    /// result advances the FSM into its §8 retransmission side-loop; an
    /// empty result means the session is complete.
    pub fn missing(&mut self) -> Vec<u32> {
        let miss: Vec<u32> = (0..self.announced)
            .filter(|seq| !self.received.contains_key(seq))
            .collect();
        if !miss.is_empty()
            && matches!(
                self.fsm.phase(),
                WindowPhase::Collected | WindowPhase::Retransmitting
            )
        {
            self.fsm
                .apply(WindowEvent::RetransmitRound)
                .expect("phase checked above");
        }
        miss
    }

    /// Mark the §8 OS-read escalation: retransmission is abandoned and
    /// the reliable switch-OS readback will produce the batch.
    pub fn escalate(&mut self) {
        if matches!(
            self.fsm.phase(),
            WindowPhase::Collected | WindowPhase::Retransmitting
        ) {
            self.fsm
                .apply(WindowEvent::EscalateOsRead)
                .expect("phase checked above");
        }
    }

    /// How many retransmission rounds this session needed.
    pub fn retransmissions(&self) -> u32 {
        self.fsm.retransmit_rounds()
    }

    /// Finish the session, yielding the complete AFR batch sorted by
    /// sequence id.
    ///
    /// # Panics
    /// Panics if called while AFRs are still missing — callers must
    /// drive retransmission to completion first.
    pub fn into_batch(self) -> Vec<FlowRecord> {
        assert!(
            self.received.len() as u32 >= self.announced,
            "session for sub-window {} incomplete: {}/{}",
            self.subwindow,
            self.received.len(),
            self.announced
        );
        let mut batch: Vec<FlowRecord> = self.received.into_values().collect();
        batch.sort_by_key(|r| r.seq);
        batch
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ow_common::flowkey::FlowKey;

    fn rec(seq: u32, sw: u32) -> FlowRecord {
        let mut r = FlowRecord::frequency(FlowKey::src_ip(seq + 1), seq as u64, sw);
        r.seq = seq;
        r
    }

    #[test]
    fn complete_session_without_loss() {
        let mut s = CollectionSession::new(3, 5);
        for seq in 0..5 {
            s.receive(rec(seq, 3)).unwrap();
        }
        assert_eq!(s.status(), SessionStatus::Complete);
        assert!(s.missing().is_empty());
        assert_eq!(s.retransmissions(), 0);
        let batch = s.into_batch();
        assert_eq!(batch.len(), 5);
        assert!(batch.windows(2).all(|w| w[0].seq < w[1].seq));
    }

    #[test]
    fn loss_detected_and_recovered() {
        let mut s = CollectionSession::new(0, 4);
        s.receive(rec(0, 0)).unwrap();
        s.receive(rec(2, 0)).unwrap();
        assert_eq!(s.status(), SessionStatus::Collecting);
        assert_eq!(s.missing(), vec![1, 3]);
        assert_eq!(s.retransmissions(), 1);
        // Retransmitted AFRs arrive.
        s.receive(rec(1, 0)).unwrap();
        s.receive(rec(3, 0)).unwrap();
        assert_eq!(s.status(), SessionStatus::Complete);
        assert_eq!(s.into_batch().len(), 4);
    }

    #[test]
    fn duplicates_are_idempotent() {
        let mut s = CollectionSession::new(0, 2);
        s.receive(rec(0, 0)).unwrap();
        s.receive(rec(0, 0)).unwrap();
        s.receive(rec(1, 0)).unwrap();
        assert_eq!(s.into_batch().len(), 2);
    }

    #[test]
    fn wrong_subwindow_rejected() {
        let mut s = CollectionSession::new(1, 1);
        assert!(s.receive(rec(0, 2)).is_err());
    }

    #[test]
    #[should_panic(expected = "incomplete")]
    fn incomplete_batch_panics() {
        let s = CollectionSession::new(0, 3);
        let _ = s.into_batch();
    }

    #[test]
    fn status_is_a_projection_of_the_lifecycle_fsm() {
        let mut s = CollectionSession::new(2, 3);
        assert_eq!(s.phase(), WindowPhase::Collected);
        assert_eq!(s.status(), SessionStatus::Collecting);
        s.receive(rec(0, 2)).unwrap();
        assert_eq!(s.missing(), vec![1, 2]);
        assert_eq!(s.phase(), WindowPhase::Retransmitting);
        assert_eq!(s.status(), SessionStatus::MissingAfrs);
        s.escalate();
        assert_eq!(s.phase(), WindowPhase::Escalated);
        assert!(s.fsm().was_escalated());
        s.receive(rec(1, 2)).unwrap();
        s.receive(rec(2, 2)).unwrap();
        assert_eq!(s.phase(), WindowPhase::Merged);
        assert_eq!(s.status(), SessionStatus::Complete);
        assert_eq!(s.retransmissions(), 1);
    }

    #[test]
    fn empty_announcement_merges_on_open() {
        let s = CollectionSession::new(9, 0);
        assert_eq!(s.phase(), WindowPhase::Merged);
        assert_eq!(s.status(), SessionStatus::Complete);
        assert!(s.into_batch().is_empty());
    }
}
