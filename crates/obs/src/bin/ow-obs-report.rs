//! `ow-obs-report` — render a `results/obs_*.json` snapshot or a
//! `results/trace_*.json` span-trace report as human-readable tables.
//!
//! ```text
//! ow-obs-report results/obs_smoke.json [--events N] [--prometheus] [--section NAME]
//! ow-obs-report results/trace_smoke.json
//! ```
//!
//! `--section <name>` renders exactly one section of a metrics
//! snapshot (`counters`, `health`, `fleet`, `accuracy`, `histograms`,
//! or `journal`); an unknown name exits nonzero so CI greps cannot
//! silently pass on a typo.
//!
//! For a metrics snapshot, prints the run's counters/gauges, histogram
//! percentiles (virtual nanoseconds), and the retained journal tail;
//! `--prometheus` instead re-reads just the registry and prints nothing
//! but the text exposition (handy for piping into format checkers).
//!
//! A document carrying a `traces` field is treated as an
//! `ow_obs::TraceReport`: it is first checked against the span schema
//! (single root, no orphans, `parent < id`, non-empty critical-path
//! chains — exit nonzero on any violation, so CI can gate on it), then
//! rendered as one indented per-window span timeline each, with the
//! critical path and SLO verdict on top.
//!
//! A document carrying a `freeze_reason` field is a flight-recorder
//! post-mortem (`results/flightrec_*.json`): schema-checked by
//! `validate_flightrec_json`, then rendered as the freeze header, the
//! alert timeline, and the black-box entry tail.
//!
//! Metrics snapshots are validated **strictly**: an unrecognized
//! top-level section, an unknown metric kind, or a histogram without
//! its bucket detail is an error (exit nonzero), not something to
//! skip silently — a malformed artifact in CI should fail the gate,
//! not render a truncated report that passes.

use std::process::ExitCode;

use ow_obs::json::{parse, ValueExt};
use ow_obs::{validate_flightrec_json, validate_trace_json};
use serde::Value;

/// Section names `--section` accepts, in render order.
const SECTIONS: [&str; 6] = [
    "counters",
    "health",
    "fleet",
    "accuracy",
    "histograms",
    "journal",
];

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut path: Option<String> = None;
    let mut events_shown = 20usize;
    let mut prometheus = false;
    let mut section: Option<String> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--events" => match it.next().and_then(|v| v.parse().ok()) {
                Some(n) => events_shown = n,
                None => return usage("--events needs an integer"),
            },
            "--prometheus" => prometheus = true,
            "--section" => match it.next() {
                Some(name) if SECTIONS.contains(&name.as_str()) => {
                    section = Some(name.clone());
                }
                Some(name) => {
                    return usage(&format!(
                        "unknown section '{name}' (known: {})",
                        SECTIONS.join(", ")
                    ));
                }
                None => return usage("--section needs a name"),
            },
            "--help" | "-h" => {
                eprintln!(
                    "usage: ow-obs-report <obs_snapshot.json> [--events N] [--prometheus] \
                     [--section NAME]"
                );
                return ExitCode::SUCCESS;
            }
            other if !other.starts_with('-') && path.is_none() => path = Some(other.to_string()),
            other => return usage(&format!("unknown flag '{other}'")),
        }
    }
    let Some(path) = path else {
        return usage("missing snapshot path");
    };
    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("ow-obs-report: cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let doc = match parse(&text) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("ow-obs-report: {path} is not valid JSON: {e}");
            return ExitCode::FAILURE;
        }
    };
    // Flight dumps carry a `traces` field too, so the freeze_reason
    // check must dispatch first.
    if doc.field("freeze_reason").is_some() {
        if let Err(e) = validate_flightrec_json(&doc) {
            eprintln!("ow-obs-report: invalid flight-recorder dump: {e}");
            return ExitCode::FAILURE;
        }
        return match render_flightrec(&doc, events_shown) {
            Ok(out) => {
                print!("{out}");
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("ow-obs-report: malformed flight-recorder dump: {e}");
                ExitCode::FAILURE
            }
        };
    }
    if doc.field("traces").is_some() {
        if let Err(e) = validate_trace_json(&doc) {
            eprintln!("ow-obs-report: invalid trace report: {e}");
            return ExitCode::FAILURE;
        }
        return match render_traces(&doc) {
            Ok(out) => {
                print!("{out}");
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("ow-obs-report: malformed trace report: {e}");
                ExitCode::FAILURE
            }
        };
    }
    match render(&doc, events_shown, prometheus, section.as_deref()) {
        Ok(out) => {
            print!("{out}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("ow-obs-report: malformed snapshot: {e}");
            ExitCode::FAILURE
        }
    }
}

/// Render a validated trace report as per-window span timelines.
fn render_traces(doc: &Value) -> Result<String, String> {
    let run = doc.field("run").and_then(Value::as_str).unwrap_or("?");
    let traces = doc
        .field("traces")
        .and_then(Value::items)
        .ok_or("missing traces")?;
    let mut out = String::new();
    out.push_str(&format!("run: {run} — {} window trace(s)\n", traces.len()));
    if let Some(slo) = doc.field("slo_deadline_ns").and_then(Value::as_u64) {
        out.push_str(&format!("SLO deadline: {slo}ns\n"));
    }
    for trace in traces {
        let sw = trace
            .field("subwindow")
            .and_then(Value::as_u64)
            .ok_or("trace without subwindow")?;
        let id = trace
            .field("trace_id")
            .and_then(Value::as_u64)
            .ok_or("trace without trace_id")?;
        let spans = trace
            .field("spans")
            .and_then(Value::items)
            .ok_or("trace without spans")?;
        out.push_str(&format!("\n== sub-window {sw} (trace {id}) ==\n"));
        if let Some(cp) = trace.field("critical_path") {
            let wall = cp.field("wall_ns").and_then(Value::as_u64).unwrap_or(0);
            let attr = cp
                .field("attributed_permille")
                .and_then(Value::as_u64)
                .unwrap_or(0);
            let violated = matches!(cp.field("slo_violated"), Some(Value::Bool(true)));
            let chain: Vec<&str> = cp
                .field("chain")
                .and_then(Value::items)
                .unwrap_or(&[])
                .iter()
                .filter_map(Value::as_str)
                .collect();
            out.push_str(&format!(
                "critical path: {} — wall {wall}ns, {attr}‰ attributed{}\n",
                chain.join(" → "),
                if violated { ", SLO VIOLATED" } else { "" }
            ));
        }
        render_span_tree(spans, None, 0, &mut out)?;
    }
    Ok(out)
}

/// Append `parent`'s children (in span-id order) at `depth`, recursing.
fn render_span_tree(
    spans: &[Value],
    parent: Option<u64>,
    depth: usize,
    out: &mut String,
) -> Result<(), String> {
    for s in spans {
        let this_parent = s.field("parent").and_then(Value::as_u64);
        if this_parent != parent || (parent.is_none() && s.field("parent").is_some_and(is_set)) {
            continue;
        }
        let id = s
            .field("id")
            .and_then(Value::as_u64)
            .ok_or("span sans id")?;
        let name = s.field("name").and_then(Value::as_str).unwrap_or("?");
        let side = s.field("side").and_then(Value::as_str).unwrap_or("?");
        let start = s.field("start_ns").and_then(Value::as_u64).unwrap_or(0);
        let end = s.field("end_ns").and_then(Value::as_u64).unwrap_or(0);
        let shard = s
            .field("shard")
            .and_then(Value::as_u64)
            .map(|sh| format!(" shard={sh}"))
            .unwrap_or_default();
        out.push_str(&format!(
            "{:indent$}{name} [{side}{shard}]  {start}..{end}  ({}ns)\n",
            "",
            end.saturating_sub(start),
            indent = 2 + depth * 2,
        ));
        render_span_tree(spans, Some(id), depth + 1, out)?;
    }
    Ok(())
}

/// Whether a JSON value is present and non-null.
fn is_set(v: &Value) -> bool {
    !matches!(v, Value::Null)
}

fn usage(msg: &str) -> ExitCode {
    eprintln!("ow-obs-report: {msg}");
    eprintln!(
        "usage: ow-obs-report <obs_snapshot.json> [--events N] [--prometheus] [--section NAME]"
    );
    ExitCode::from(2)
}

fn render_id(m: &Value) -> Result<String, String> {
    let name = m
        .field("name")
        .and_then(Value::as_str)
        .ok_or("metric without name")?;
    let labels = m.field("labels").and_then(Value::items).unwrap_or(&[]);
    if labels.is_empty() {
        return Ok(name.to_string());
    }
    let mut parts = Vec::new();
    for pair in labels {
        let kv = pair.items().ok_or("label is not a pair")?;
        if kv.len() != 2 {
            return Err("label pair is not 2-element".into());
        }
        parts.push(format!(
            "{}=\"{}\"",
            kv[0].as_str().unwrap_or("?"),
            kv[1].as_str().unwrap_or("?")
        ));
    }
    Ok(format!("{name}{{{}}}", parts.join(",")))
}

/// Strict structural validation of a metrics snapshot: every top-level
/// section must be one the renderer understands, every metric must
/// carry a known kind, and histogram metrics must carry their bucket
/// detail. Unrecognized or malformed sections are an **error** — a
/// corrupted artifact must fail loudly, not render partially.
fn validate_snapshot(doc: &Value) -> Result<(), String> {
    const KNOWN_SECTIONS: [&str; 5] = [
        "run",
        "registry",
        "events_recorded",
        "events_dropped",
        "events",
    ];
    let Value::Object(sections) = doc else {
        return Err("snapshot is not a JSON object".into());
    };
    for (key, _) in sections {
        if !KNOWN_SECTIONS.contains(&key.as_str()) {
            return Err(format!(
                "unrecognized top-level section '{key}' (known: {})",
                KNOWN_SECTIONS.join(", ")
            ));
        }
    }
    let metrics = doc
        .field("registry")
        .and_then(|r| r.field("metrics"))
        .and_then(Value::items)
        .ok_or("missing registry.metrics")?;
    for m in metrics {
        let name = m
            .field("name")
            .and_then(Value::as_str)
            .ok_or("metric without name")?;
        let kind = m
            .field("kind")
            .and_then(Value::as_str)
            .ok_or(format!("metric '{name}' without kind"))?;
        if !matches!(kind, "counter" | "gauge" | "histogram") {
            return Err(format!("metric '{name}' has unrecognized kind '{kind}'"));
        }
        let detail = m.field("histogram").filter(|h| is_set(h));
        if kind == "histogram" && detail.is_none() {
            return Err(format!("histogram '{name}' without bucket detail"));
        }
        if kind != "histogram" && detail.is_some() {
            return Err(format!("{kind} '{name}' carries histogram detail"));
        }
        m.field("value")
            .and_then(Value::as_u64)
            .ok_or(format!("metric '{name}' without numeric value"))?;
    }
    for (i, e) in doc
        .field("events")
        .and_then(Value::items)
        .unwrap_or(&[])
        .iter()
        .enumerate()
    {
        let level = e
            .field("level")
            .and_then(Value::as_str)
            .ok_or(format!("journal event {i} without level"))?;
        if !matches!(level, "Info" | "Warn") {
            return Err(format!("journal event {i} has unknown level '{level}'"));
        }
        e.field("kind")
            .and_then(Value::as_str)
            .ok_or(format!("journal event {i} without kind"))?;
    }
    Ok(())
}

fn render(
    doc: &Value,
    events_shown: usize,
    prometheus: bool,
    section: Option<&str>,
) -> Result<String, String> {
    validate_snapshot(doc)?;
    let metrics = doc
        .field("registry")
        .and_then(|r| r.field("metrics"))
        .and_then(Value::items)
        .ok_or("missing registry.metrics")?;

    if prometheus {
        return render_prometheus(metrics);
    }

    // `--section X` renders exactly that section; without it, all.
    let want = |name: &str| section.map_or(true, |s| s == name);

    let run = doc.field("run").and_then(Value::as_str).unwrap_or("?");
    let recorded = doc
        .field("events_recorded")
        .and_then(Value::as_u64)
        .unwrap_or(0);
    let events = doc.field("events").and_then(Value::items).unwrap_or(&[]);

    let mut out = String::new();
    if section.is_none() {
        out.push_str(&format!(
            "run: {run} — {} metrics, {recorded} events recorded ({} retained)\n\n",
            metrics.len(),
            events.len()
        ));
    }

    let scalars: Vec<&Value> = metrics
        .iter()
        .filter(|m| m.field("kind").and_then(Value::as_str) != Some("histogram"))
        .collect();
    if !scalars.is_empty() && want("counters") {
        out.push_str("== counters & gauges ==\n");
        let ids: Vec<String> = scalars
            .iter()
            .map(|m| render_id(m))
            .collect::<Result<_, _>>()?;
        let width = ids.iter().map(String::len).max().unwrap_or(0);
        for (m, id) in scalars.iter().zip(&ids) {
            let kind = m.field("kind").and_then(Value::as_str).unwrap_or("?");
            let value = m.field("value").and_then(Value::as_u64).unwrap_or(0);
            out.push_str(&format!("{id:<width$}  {kind:<7}  {value}\n"));
        }
        out.push('\n');
    }

    if want("health") {
        out.push_str(&render_health(metrics));
    }
    if want("fleet") {
        out.push_str(&render_fleet(metrics));
    }
    if want("accuracy") {
        out.push_str(&render_accuracy(metrics));
    }

    let histos: Vec<&Value> = metrics
        .iter()
        .filter(|m| m.field("kind").and_then(Value::as_str) == Some("histogram"))
        .collect();
    if !histos.is_empty() && want("histograms") {
        out.push_str("== histograms (virtual ns) ==\n");
        let ids: Vec<String> = histos
            .iter()
            .map(|m| render_id(m))
            .collect::<Result<_, _>>()?;
        let width = ids.iter().map(String::len).max().unwrap_or(0).max(4);
        out.push_str(&format!(
            "{:<width$}  {:>8}  {:>12}  {:>12}  {:>12}  {:>14}\n",
            "name", "count", "p50", "p90", "p99", "sum"
        ));
        for (m, id) in histos.iter().zip(&ids) {
            let h = m
                .field("histogram")
                .ok_or("histogram metric without detail")?;
            let get = |k: &str| h.field(k).and_then(Value::as_u64).unwrap_or(0);
            out.push_str(&format!(
                "{id:<width$}  {:>8}  {:>12}  {:>12}  {:>12}  {:>14}\n",
                get("count"),
                get("p50"),
                get("p90"),
                get("p99"),
                get("sum")
            ));
        }
        out.push('\n');
    }

    if !events.is_empty() && events_shown > 0 && want("journal") {
        let tail = &events[events.len().saturating_sub(events_shown)..];
        out.push_str(&format!(
            "== journal (last {} of {recorded}) ==\n",
            tail.len()
        ));
        for e in tail {
            let seq = e.field("seq").and_then(Value::as_u64).unwrap_or(0);
            let level = match e.field("level").and_then(Value::as_str) {
                Some("Warn") => "WARN",
                _ => "info",
            };
            let kind = e.field("kind").and_then(Value::as_str).unwrap_or("?");
            let mut ctx = Vec::new();
            if let Some(sw) = e.field("subwindow").and_then(Value::as_u64) {
                ctx.push(format!("sw={sw}"));
            }
            if let Some(p) = e.field("phase").and_then(Value::as_str) {
                ctx.push(format!("phase={p}"));
            }
            if let Some(s) = e.field("shard").and_then(Value::as_u64) {
                ctx.push(format!("shard={s}"));
            }
            let ctx = if ctx.is_empty() {
                String::new()
            } else {
                format!(" [{}]", ctx.join(" "))
            };
            let message = e.field("message").and_then(Value::as_str).unwrap_or("");
            out.push_str(&format!("{seq:>6}  {level}  {kind}{ctx}: {message}\n"));
        }
    }
    Ok(out)
}

/// Summarize the health-engine metrics (`ow_health_fleet_score`,
/// `ow_health_entity_score{entity=…}`, `ow_health_alerts_total`) when
/// a snapshot carries them; empty when no engine ran.
fn render_health(metrics: &[Value]) -> String {
    let named = |want: &str| -> Vec<&Value> {
        metrics
            .iter()
            .filter(|m| m.field("name").and_then(Value::as_str) == Some(want))
            .collect()
    };
    let fleet = named("ow_health_fleet_score");
    if fleet.is_empty() {
        return String::new();
    }
    let value_of = |m: &Value| m.field("value").and_then(Value::as_u64).unwrap_or(0);
    let label_of = |m: &Value, key: &str| -> String {
        m.field("labels")
            .and_then(Value::items)
            .unwrap_or(&[])
            .iter()
            .filter_map(Value::items)
            .filter(|kv| kv.len() == 2 && kv[0].as_str() == Some(key))
            .filter_map(|kv| kv[1].as_str())
            .next()
            .unwrap_or("?")
            .to_string()
    };
    let mut out = String::from("== health ==\n");
    let score = value_of(fleet[0]);
    let ticks = named("ow_health_ticks_total")
        .first()
        .map_or(0, |m| value_of(m));
    out.push_str(&format!(
        "fleet score: {score}/1000 ({}) over {ticks} tick(s)\n",
        if score == 1000 { "healthy" } else { "DEGRADED" }
    ));
    let alerts = named("ow_health_alerts_total");
    let total: u64 = alerts.iter().map(|m| value_of(m)).sum();
    if total > 0 {
        let per: Vec<String> = alerts
            .iter()
            .filter(|m| value_of(m) > 0)
            .map(|m| format!("{} {}", value_of(m), label_of(m, "severity")))
            .collect();
        out.push_str(&format!("alerts fired: {total} ({})\n", per.join(", ")));
    } else {
        out.push_str("alerts fired: none\n");
    }
    let mut entities: Vec<(String, u64)> = named("ow_health_entity_score")
        .iter()
        .map(|m| (label_of(m, "entity"), value_of(m)))
        .collect();
    entities.sort();
    for (entity, score) in entities.iter().filter(|(_, s)| *s < 1000) {
        out.push_str(&format!("  {entity}: {score}/1000\n"));
    }
    out.push('\n');
    out
}

/// Summarize the live accuracy observatory (`ow_accuracy_*` scores per
/// query, plus any `ow_sketch_*` data-quality series) when a snapshot
/// carries them; empty when no scorer was installed.
fn render_accuracy(metrics: &[Value]) -> String {
    let named = |want: &str| -> Vec<&Value> {
        metrics
            .iter()
            .filter(|m| m.field("name").and_then(Value::as_str) == Some(want))
            .collect()
    };
    let value_of = |m: &Value| m.field("value").and_then(Value::as_u64).unwrap_or(0);
    let label_of = |m: &Value, key: &str| -> String {
        m.field("labels")
            .and_then(Value::items)
            .unwrap_or(&[])
            .iter()
            .filter_map(Value::items)
            .filter(|kv| kv.len() == 2 && kv[0].as_str() == Some(key))
            .filter_map(|kv| kv[1].as_str())
            .next()
            .unwrap_or("?")
            .to_string()
    };
    let precisions = named("ow_accuracy_precision_permille");
    if precisions.is_empty() {
        return String::new();
    }
    let series_for = |name: &str, query: &str| -> u64 {
        named(name)
            .iter()
            .find(|m| label_of(m, "query") == query)
            .map_or(0, |m| value_of(m))
    };
    let mut out = String::from("== accuracy ==\n");
    let mut queries: Vec<String> = precisions.iter().map(|m| label_of(m, "query")).collect();
    queries.sort();
    for query in queries {
        let windows = series_for("ow_accuracy_windows_scored_total", &query);
        out.push_str(&format!(
            "query '{query}': precision {}‰ recall {}‰ aare {}‰ over {windows} window(s)\n",
            series_for("ow_accuracy_precision_permille", &query),
            series_for("ow_accuracy_recall_permille", &query),
            series_for("ow_accuracy_aare_permille", &query),
        ));
        out.push_str(&format!(
            "  oracle: {} truth key(s) vs {} merged, {} departed window(s)\n",
            series_for("ow_accuracy_truth_keys_total", &query),
            series_for("ow_accuracy_merged_keys_total", &query),
            series_for("ow_accuracy_oracle_departed_total", &query),
        ));
    }
    let mut sketches: Vec<String> = named("ow_sketch_occupancy_permille")
        .iter()
        .map(|m| label_of(m, "sketch"))
        .collect();
    sketches.sort();
    for sketch in sketches {
        let per_sketch = |name: &str| -> u64 {
            named(name)
                .iter()
                .find(|m| label_of(m, "sketch") == sketch)
                .map_or(0, |m| value_of(m))
        };
        out.push_str(&format!(
            "  sketch {sketch}: occupancy {}‰, {} collision(s), {} eviction(s), \
             {} decode failure(s), {} saturation(s)\n",
            per_sketch("ow_sketch_occupancy_permille"),
            per_sketch("ow_sketch_hash_collisions_total"),
            per_sketch("ow_sketch_heavy_evicts_total"),
            per_sketch("ow_sketch_decode_failures_total"),
            per_sketch("ow_sketch_saturations_total"),
        ));
    }
    out.push('\n');
    out
}

/// Render a validated flight-recorder dump: the freeze header, the
/// alert timeline, and the tail of the black-box entry ring.
fn render_flightrec(doc: &Value, entries_shown: usize) -> Result<String, String> {
    let run = doc.field("run").and_then(Value::as_str).unwrap_or("?");
    let reason = doc
        .field("freeze_reason")
        .and_then(Value::as_str)
        .ok_or("missing freeze_reason")?;
    let at = doc
        .field("frozen_at_ns")
        .and_then(Value::as_u64)
        .unwrap_or(0);
    let dropped = doc
        .field("entries_dropped")
        .and_then(Value::as_u64)
        .unwrap_or(0);
    let entries = doc
        .field("entries")
        .and_then(Value::items)
        .ok_or("missing entries")?;
    let traces = doc.field("traces").and_then(Value::items).unwrap_or(&[]);
    let timeline = doc.field("timeline").and_then(Value::items).unwrap_or(&[]);
    let registry = doc
        .field("registry")
        .and_then(|r| r.field("metrics"))
        .and_then(Value::items)
        .unwrap_or(&[]);

    let mut out = String::new();
    out.push_str(&format!("run: {run} — FLIGHT RECORDER POST-MORTEM\n"));
    out.push_str(&format!("frozen at: {at}ns\nreason: {reason}\n"));
    out.push_str(&format!(
        "captured: {} entries ({dropped} evicted), {} metrics, {} trace(s)\n\n",
        entries.len(),
        registry.len(),
        traces.len()
    ));
    if !timeline.is_empty() {
        out.push_str("== alert timeline ==\n");
        for a in timeline {
            let code = a.field("code").and_then(Value::as_str).unwrap_or("?");
            let rule = a.field("rule").and_then(Value::as_str).unwrap_or("?");
            let entity = a.field("entity").and_then(Value::as_str).unwrap_or("?");
            let state = a.field("state").and_then(Value::as_str).unwrap_or("?");
            let sev = a.field("severity").and_then(Value::as_str).unwrap_or("?");
            let at_ns = a.field("at_ns").and_then(Value::as_u64).unwrap_or(0);
            let value = a.field("value").and_then(Value::as_u64).unwrap_or(0);
            let threshold = a.field("threshold").and_then(Value::as_u64).unwrap_or(0);
            out.push_str(&format!(
                "{at_ns:>12}ns  {code}  {rule} {state} for {entity} ({sev}): value {value} vs threshold {threshold}\n"
            ));
        }
        out.push('\n');
    }
    if !entries.is_empty() && entries_shown > 0 {
        let tail = &entries[entries.len().saturating_sub(entries_shown)..];
        out.push_str(&format!(
            "== black box (last {} of {}) ==\n",
            tail.len(),
            entries.len()
        ));
        for e in tail {
            let at_ns = e.field("at_ns").and_then(Value::as_u64).unwrap_or(0);
            let kind = e.field("kind").and_then(Value::as_str).unwrap_or("?");
            let detail = e.field("detail").and_then(Value::as_str).unwrap_or("");
            out.push_str(&format!("{at_ns:>12}ns  {kind:<6}  {detail}\n"));
        }
    }
    Ok(out)
}

/// Summarize the fleet gauges (`ow_fleet_switches_live`,
/// `ow_fleet_windows_inflight{worker=…}`) when a snapshot carries them;
/// empty for non-fleet runs.
fn render_fleet(metrics: &[Value]) -> String {
    let live = metrics
        .iter()
        .find(|m| m.field("name").and_then(Value::as_str) == Some("ow_fleet_switches_live"));
    let inflight: Vec<&Value> = metrics
        .iter()
        .filter(|m| m.field("name").and_then(Value::as_str) == Some("ow_fleet_windows_inflight"))
        .collect();
    if live.is_none() && inflight.is_empty() {
        return String::new();
    }
    let mut out = String::from("== fleet ==\n");
    if let Some(m) = live {
        let v = m.field("value").and_then(Value::as_u64).unwrap_or(0);
        out.push_str(&format!("switches live: {v}\n"));
    }
    if !inflight.is_empty() {
        let total: u64 = inflight
            .iter()
            .map(|m| m.field("value").and_then(Value::as_u64).unwrap_or(0))
            .sum();
        out.push_str(&format!(
            "windows in flight: {total} across {} worker(s)\n",
            inflight.len()
        ));
    }
    out.push('\n');
    out
}

fn render_prometheus(metrics: &[Value]) -> Result<String, String> {
    // Rebuild exposition text from the snapshot JSON (scalar series
    // only carry their value; histograms re-expand to buckets).
    let mut out = String::new();
    let mut last_family: Option<(String, String)> = None;
    for m in metrics {
        let name = m
            .field("name")
            .and_then(Value::as_str)
            .ok_or("metric without name")?
            .to_string();
        let kind = m
            .field("kind")
            .and_then(Value::as_str)
            .ok_or("metric without kind")?
            .to_string();
        let family = (name.clone(), kind.clone());
        if last_family.as_ref() != Some(&family) {
            out.push_str(&format!("# TYPE {name} {kind}\n"));
            last_family = Some(family);
        }
        let id = render_id(m)?;
        if kind == "histogram" {
            let h = m
                .field("histogram")
                .ok_or("histogram metric without detail")?;
            let buckets = h.field("buckets").and_then(Value::items).unwrap_or(&[]);
            let mut cumulative = 0u64;
            let (bare, labels) = match id.split_once('{') {
                Some((n, rest)) => (n.to_string(), {
                    let inner = rest.trim_end_matches('}');
                    format!(",{inner}")
                }),
                None => (id.clone(), String::new()),
            };
            for pair in buckets {
                let kv = pair.items().ok_or("bucket is not a pair")?;
                let bound = kv.first().and_then(Value::as_u64).unwrap_or(0);
                cumulative += kv.get(1).and_then(Value::as_u64).unwrap_or(0);
                out.push_str(&format!(
                    "{bare}_bucket{{le=\"{bound}\"{labels}}} {cumulative}\n"
                ));
            }
            let count = h.field("count").and_then(Value::as_u64).unwrap_or(0);
            let sum = h.field("sum").and_then(Value::as_u64).unwrap_or(0);
            out.push_str(&format!("{bare}_bucket{{le=\"+Inf\"{labels}}} {count}\n"));
            let suffix_id = |suffix: &str| {
                if labels.is_empty() {
                    format!("{bare}{suffix}")
                } else {
                    format!("{bare}{suffix}{{{}}}", labels.trim_start_matches(','))
                }
            };
            out.push_str(&format!("{} {sum}\n", suffix_id("_sum")));
            out.push_str(&format!("{} {count}\n", suffix_id("_count")));
        } else {
            let value = m.field("value").and_then(Value::as_u64).unwrap_or(0);
            out.push_str(&format!("{id} {value}\n"));
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fleet_gauges_render_a_fleet_section() {
        let obs = ow_obs::Obs::new();
        obs.gauge("ow_fleet_switches_live", &[]).set(30);
        obs.gauge("ow_fleet_windows_inflight", &[("worker", "0")])
            .set(3);
        obs.gauge("ow_fleet_windows_inflight", &[("worker", "1")])
            .set(4);
        let doc = parse(&obs.report("fleet").to_json()).expect("report parses");
        let rendered = render(&doc, 0, false, None).expect("snapshot renders");
        assert!(rendered.contains("== fleet =="));
        assert!(rendered.contains("switches live: 30"));
        assert!(rendered.contains("windows in flight: 7 across 2 worker(s)"));
    }

    #[test]
    fn non_fleet_snapshots_render_no_fleet_section() {
        let obs = ow_obs::Obs::new();
        obs.counter("ow_controller_sessions_total", &[]).inc();
        let doc = parse(&obs.report("plain").to_json()).expect("report parses");
        let rendered = render(&doc, 0, false, None).expect("snapshot renders");
        assert!(!rendered.contains("== fleet =="));
        assert!(!rendered.contains("== health =="));
    }

    #[test]
    fn corrupted_snapshots_are_rejected_not_skipped() {
        let obs = ow_obs::Obs::new();
        obs.counter("ow_test_events_total", &[]).inc();
        obs.event(ow_obs::Event::new("progress", "ok"));
        let good = obs.report("unit").to_json();
        render(&parse(&good).unwrap(), 5, false, None).expect("pristine report renders");

        // An unknown metric kind (a `summary` from some other system)
        // must fail, not silently drop the series.
        let bad_kind = good.replace("\"counter\"", "\"summary\"");
        let err = render(&parse(&bad_kind).unwrap(), 5, false, None).unwrap_err();
        assert!(err.contains("unrecognized kind 'summary'"), "{err}");

        // An unrecognized top-level section means the artifact is not
        // the schema this renderer understands.
        let bad_section = good.replacen("\"run\"", "\"generator\"", 1);
        let err = render(&parse(&bad_section).unwrap(), 5, false, None).unwrap_err();
        assert!(err.contains("unrecognized top-level section"), "{err}");

        // A journal event with an unknown level is malformed.
        let bad_level = good.replace("\"Info\"", "\"Trace\"");
        let err = render(&parse(&bad_level).unwrap(), 5, false, None).unwrap_err();
        assert!(err.contains("unknown level 'Trace'"), "{err}");

        // A histogram stripped of its bucket detail is malformed even
        // when no histogram table would be printed.
        let obs2 = ow_obs::Obs::new();
        obs2.histogram("ow_test_latency", &[])
            .record(ow_common::time::Duration::from_micros(3));
        let hist = obs2.report("unit").to_json();
        let stripped = hist.replace("\"kind\": \"histogram\"", "\"kind\": \"gauge\"");
        let err = render(&parse(&stripped).unwrap(), 5, false, None).unwrap_err();
        assert!(err.contains("carries histogram detail"), "{err}");
    }

    #[test]
    fn health_metrics_render_a_health_section() {
        use ow_obs::{Cmp, FlightRecorderConfig, MetricSelector, Rule, RuleSet, Severity, Signal};
        let obs = ow_obs::Obs::new();
        let engine = obs.install_health(
            RuleSet::new(vec![Rule::new(
                "OW-HEALTH-998",
                "unit_rule",
                MetricSelector::new("ow_test_depth", &[]),
                Signal::Value,
                Cmp::Above,
                10,
                Severity::Warning,
            )
            .entity("unit")])
            .unwrap(),
            FlightRecorderConfig::default(),
        );
        obs.gauge("ow_test_depth", &[]).set(50);
        engine.tick(ow_common::time::Instant(1_000));
        let doc = parse(&obs.report("unit").to_json()).expect("report parses");
        let rendered = render(&doc, 0, false, None).expect("snapshot renders");
        assert!(rendered.contains("== health =="), "{rendered}");
        assert!(
            rendered.contains("fleet score: 750/1000 (DEGRADED)"),
            "{rendered}"
        );
        assert!(
            rendered.contains("alerts fired: 1 (1 warning)"),
            "{rendered}"
        );
        assert!(rendered.contains("unit: 750/1000"), "{rendered}");
    }

    #[test]
    fn accuracy_metrics_render_an_accuracy_section() {
        use ow_common::afr::FlowRecord;
        use ow_common::block::RecordBlock;
        use ow_common::flowkey::FlowKey;
        let obs = ow_obs::Obs::new();
        let acc = obs.install_accuracy(ow_obs::AccuracyConfig::default());
        let batch = vec![
            FlowRecord::frequency(FlowKey::src_ip(1), 40, 2),
            FlowRecord::frequency(FlowKey::src_ip(2), 60, 2),
        ];
        acc.feed_truth(2, &batch);
        acc.quiesce();
        acc.score_window(&RecordBlock::from_records(2, &batch));
        obs.gauge("ow_sketch_occupancy_permille", &[("sketch", "mv")])
            .set(875);
        obs.counter("ow_sketch_hash_collisions_total", &[("sketch", "mv")])
            .add(4);
        let doc = parse(&obs.report("unit").to_json()).expect("report parses");
        let rendered = render(&doc, 0, false, None).expect("snapshot renders");
        assert!(rendered.contains("== accuracy =="), "{rendered}");
        assert!(
            rendered.contains(
                "query 'heavy_hitter': precision 1000‰ recall 1000‰ aare 0‰ over 1 window(s)"
            ),
            "{rendered}"
        );
        assert!(
            rendered.contains("oracle: 2 truth key(s) vs 2 merged, 0 departed window(s)"),
            "{rendered}"
        );
        assert!(
            rendered.contains("sketch mv: occupancy 875‰, 4 collision(s)"),
            "{rendered}"
        );
    }

    #[test]
    fn section_flag_renders_exactly_one_section() {
        let obs = ow_obs::Obs::new();
        obs.gauge("ow_fleet_switches_live", &[]).set(8);
        obs.counter("ow_test_events_total", &[]).inc();
        obs.histogram("ow_test_latency", &[])
            .record(ow_common::time::Duration::from_micros(3));
        obs.event(ow_obs::Event::new("progress", "ok"));
        let doc = parse(&obs.report("unit").to_json()).expect("report parses");
        let fleet_only = render(&doc, 20, false, Some("fleet")).expect("renders");
        assert!(fleet_only.contains("== fleet =="), "{fleet_only}");
        assert!(
            !fleet_only.contains("== counters & gauges =="),
            "{fleet_only}"
        );
        assert!(!fleet_only.contains("== histograms"), "{fleet_only}");
        assert!(!fleet_only.contains("== journal"), "{fleet_only}");
        assert!(!fleet_only.contains("run:"), "{fleet_only}");
        let journal_only = render(&doc, 20, false, Some("journal")).expect("renders");
        assert!(journal_only.contains("== journal"), "{journal_only}");
        assert!(!journal_only.contains("== fleet =="), "{journal_only}");
        // A snapshot with no accuracy scorer renders an empty accuracy
        // section — the filter is exact, not an error.
        let accuracy_only = render(&doc, 20, false, Some("accuracy")).expect("renders");
        assert_eq!(accuracy_only, "");
    }

    #[test]
    fn flight_recorder_dump_renders_end_to_end() {
        use ow_obs::{Cmp, FlightRecorderConfig, MetricSelector, Rule, RuleSet, Severity, Signal};
        let obs = ow_obs::Obs::new();
        let engine = obs.install_health(
            RuleSet::new(vec![Rule::new(
                "OW-HEALTH-999",
                "unit_critical",
                MetricSelector::new("ow_test_wedged", &[]),
                Signal::Value,
                Cmp::Above,
                0,
                Severity::Critical,
            )
            .entity("unit")])
            .unwrap(),
            FlightRecorderConfig::default(),
        );
        obs.gauge("ow_test_wedged", &[]).set(2);
        engine.tick(ow_common::time::Instant(5_000));
        let dump = engine.flight_dump("unit").expect("critical froze the box");
        let doc = parse(&dump.to_json()).expect("dump parses");
        ow_obs::validate_flightrec_json(&doc).expect("dump validates");
        let rendered = render_flightrec(&doc, 10).expect("dump renders");
        assert!(
            rendered.contains("FLIGHT RECORDER POST-MORTEM"),
            "{rendered}"
        );
        assert!(rendered.contains("OW-HEALTH-999"), "{rendered}");
        assert!(rendered.contains("== alert timeline =="), "{rendered}");
        assert!(rendered.contains("== black box"), "{rendered}");
    }
}
