//! Chaos acceptance suite for the fleet-scale pipeline.
//!
//! The fleet simulator drives {32, 128} switches against a sharded
//! controller tier under 30% AFR loss, rack-correlated loss bursts, and
//! mid-window switch churn (joins, graceful leaves, crashes). These
//! tests pin the three fleet guarantees:
//!
//! 1. **No window wedges.** Every window whose announcement was sent
//!    reaches a terminal lifecycle state: `Merged` (complete batch) or
//!    `Released` via the departure path — never stuck in
//!    `CrWait`/`Retransmitting` against a switch that no longer exists.
//! 2. **Chaos is invisible to the merge.** The fleet-wide folded view of
//!    a chaotic N-worker run is byte-identical (`encode_merged`) to a
//!    lossless single-worker run of the same schedule: loss, bursts, and
//!    escalations change *how* batches are recovered, never *what* is
//!    merged. The surviving window set is schedule-determined (crash
//!    churn departs the same windows in both runs), so the baseline is a
//!    true ground truth.
//! 3. **Chaos is reproducible.** A fixed `FleetConfig` reproduces the
//!    same report — counters, fault stats, and merged bytes — run over
//!    run, which is what lets CI diff two runs of the smoke scenario.

use ow_common::time::Duration;
use ow_controller::wire::encode_merged;
use ow_netsim::fleet::{self, ChurnEvent, ChurnKind, FleetConfig, FleetReport, RackBurst};
use proptest::prelude::*;

/// The ISSUE scenario at one fleet size: 30% loss, one rack-level
/// burst at 60%, a crash and a graceful leave mid-run, a late join,
/// and every 7th window's retransmit channel dead (forced escalation).
fn chaos_config(switches: u32, seed: u64) -> FleetConfig {
    let mut cfg = FleetConfig {
        switches,
        workers: 4,
        shards_per_worker: 2,
        local_windows: 4,
        records_per_window: 24,
        population: 64,
        subwindow_len: Duration::from_millis(1),
        afr_loss: 0.30,
        rack_size: 8,
        bursts: vec![RackBurst {
            rack: 1,
            from: Duration::from_micros(500),
            until: Duration::from_micros(2_500),
            loss: 0.60,
        }],
        churn: Vec::new(),
        escalate_every: 7,
        sketch_feed: None,
        seed,
    };
    cfg.churn = vec![
        ChurnEvent {
            // Crash switch 2 just after its second announcement — inside
            // that window's stream regardless of the seed's stagger draw,
            // so the departure path is always exercised.
            at: Duration::from_micros(1_000 + cfg.stagger_ns(2) / 1_000 + 100),
            switch: 2,
            kind: ChurnKind::Crash,
        },
        ChurnEvent {
            at: Duration::from_micros(2_100),
            switch: 5,
            kind: ChurnKind::Leave,
        },
        ChurnEvent {
            at: Duration::from_micros(1_000),
            switch: 7,
            kind: ChurnKind::Join,
        },
    ];
    cfg
}

/// Assert the three fleet guarantees for one config; returns the
/// chaotic report for further scenario-specific checks.
fn assert_chaos_invariants(cfg: &FleetConfig) -> FleetReport {
    let chaotic = fleet::run(cfg, None);

    // 1. Every started window terminated: merged or departed-released.
    assert!(
        chaotic.all_windows_accounted(),
        "wedged windows: started {} != merged {} + departed {}",
        chaotic.started_windows,
        chaotic.merged_windows,
        chaotic.departed_windows
    );
    assert_eq!(
        chaotic.metrics.departed, chaotic.departed_windows,
        "every departed window must be a departed session, nothing more"
    );

    // 2. Byte-identical merge against the lossless single-worker run of
    //    the same schedule.
    let baseline = fleet::run(&cfg.lossless_baseline(), None);
    assert_eq!(
        baseline.started_windows, chaotic.started_windows,
        "the window schedule must not depend on loss"
    );
    assert_eq!(baseline.merged_windows, chaotic.merged_windows);
    assert_eq!(
        encode_merged(&chaotic.merged),
        encode_merged(&baseline.merged),
        "chaotic fold diverged from the lossless single-worker baseline"
    );

    // 3. Deterministic replay.
    let again = fleet::run(cfg, None);
    assert_eq!(again.started_windows, chaotic.started_windows);
    assert_eq!(again.merged_windows, chaotic.merged_windows);
    assert_eq!(again.departed_windows, chaotic.departed_windows);
    assert_eq!(again.metrics, chaotic.metrics);
    assert_eq!(again.fault_stats, chaotic.fault_stats);
    assert_eq!(
        encode_merged(&again.merged),
        encode_merged(&chaotic.merged),
        "same seed, different merged bytes"
    );

    chaotic
}

#[test]
fn fleet_of_32_survives_loss_bursts_and_churn() {
    let cfg = chaos_config(32, 0xf1ee0032);
    let report = assert_chaos_invariants(&cfg);
    assert_eq!(report.switches, 32);
    // The chaos actually happened: loss forced recovery work, the crash
    // departed at least one window, the dead back-channels escalated.
    assert!(
        report.metrics.retransmit_rounds > 0,
        "no recovery exercised"
    );
    assert!(report.metrics.escalations > 0, "no escalation exercised");
    assert!(report.departed_windows > 0, "no departure exercised");
    assert!(
        report.fault_stats.total_dropped() > 0,
        "the channel never dropped"
    );
    // Work spread across the whole tier.
    assert!(
        report.per_worker_started.iter().all(|&n| n > 0),
        "idle worker in {:?}",
        report.per_worker_started
    );
}

#[test]
fn fleet_of_128_survives_loss_bursts_and_churn() {
    let cfg = chaos_config(128, 0xf1ee0128);
    let report = assert_chaos_invariants(&cfg);
    assert_eq!(report.switches, 128);
    assert!(report.metrics.retransmit_rounds > 0);
    assert!(report.metrics.escalations > 0);
    assert!(report.departed_windows > 0);
    // At 128 switches the stagger must spread announcements: with every
    // switch on its own offset, no two windows of different switches
    // share an announce instant in any realistic draw.
    let offsets: std::collections::HashSet<u64> =
        (0..cfg.switches).map(|s| cfg.stagger_ns(s)).collect();
    assert!(
        offsets.len() as u32 > cfg.switches * 3 / 4,
        "stagger collapsed"
    );
}

#[test]
fn crashed_switch_windows_release_instead_of_wedging() {
    // Crash a switch right after its second announcement: the two
    // unfinished windows must depart (router tombstones them, FSMs go
    // Released), while its completed first window still merges.
    let mut cfg = chaos_config(32, 7);
    cfg.churn = vec![ChurnEvent {
        // Inside window 1's stream for every stagger draw: after each
        // switch's announce (local*1ms + stagger < 2ms) and before some
        // streams end.
        at: Duration::from_micros(1_990),
        switch: 3,
        kind: ChurnKind::Crash,
    }];
    let report = assert_chaos_invariants(&cfg);
    assert!(report.departed_windows >= 1, "the crash departed nothing");
    // Switch 3 scheduled 4 windows but crashed during its second: the
    // later two never started.
    assert_eq!(
        report.started_windows,
        31 * 4 + 2,
        "crash must cancel the not-yet-announced windows"
    );
}

#[test]
fn worker_count_does_not_change_the_merge() {
    // Same fleet, same seed, different tier widths: the fold is a pure
    // function of the schedule, so 1, 2, and 8 workers agree bytewise.
    let base = FleetConfig {
        switches: 24,
        afr_loss: 0.25,
        escalate_every: 5,
        ..FleetConfig::default()
    };
    let reference = fleet::run(
        &FleetConfig {
            workers: 1,
            ..base.clone()
        },
        None,
    );
    for workers in [2usize, 8] {
        let report = fleet::run(
            &FleetConfig {
                workers,
                ..base.clone()
            },
            None,
        );
        assert!(report.all_windows_accounted());
        assert_eq!(
            encode_merged(&report.merged),
            encode_merged(&reference.merged),
            "{workers}-worker fold diverged from the single-worker fold"
        );
    }
}

proptest! {
    // Every case runs a chaotic fleet, its lossless baseline, and a
    // replay — three full controller tiers — so keep the case count
    // modest. 12 cases still sweep seeds, loss rates, tier widths, and
    // churn shapes.
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Random chaos never wedges a window, never perturbs the merge,
    /// and always replays byte-identically.
    #[test]
    fn random_chaos_upholds_the_fleet_invariants(
        seed in any::<u64>(),
        switches in 8u32..48,
        workers in 1usize..6,
        afr_loss in 0.0f64..0.45,
        escalate_every in 0u32..9,
        crash_at_us in 500u64..3_500,
        crash_switch in 0u32..8,
        leave_switch in 0u32..8,
        burst in any::<bool>(),
    ) {
        let cfg = FleetConfig {
            switches,
            workers,
            shards_per_worker: 2,
            afr_loss,
            escalate_every,
            bursts: if burst {
                vec![RackBurst {
                    rack: 0,
                    from: Duration::from_micros(800),
                    until: Duration::from_micros(2_600),
                    loss: 0.7,
                }]
            } else {
                Vec::new()
            },
            churn: vec![
                ChurnEvent {
                    at: Duration::from_micros(crash_at_us),
                    switch: crash_switch % switches,
                    kind: ChurnKind::Crash,
                },
                ChurnEvent {
                    at: Duration::from_micros(2_200),
                    switch: (crash_switch + 1 + leave_switch) % switches,
                    kind: ChurnKind::Leave,
                },
            ],
            seed,
            ..FleetConfig::default()
        };

        let chaotic = fleet::run(&cfg, None);
        prop_assert!(
            chaotic.all_windows_accounted(),
            "wedged: started {} merged {} departed {}",
            chaotic.started_windows, chaotic.merged_windows, chaotic.departed_windows
        );
        prop_assert_eq!(chaotic.metrics.departed, chaotic.departed_windows);

        let baseline = fleet::run(&cfg.lossless_baseline(), None);
        prop_assert_eq!(baseline.started_windows, chaotic.started_windows);
        prop_assert_eq!(
            encode_merged(&chaotic.merged),
            encode_merged(&baseline.merged),
            "chaotic fold diverged from the lossless baseline"
        );

        let again = fleet::run(&cfg, None);
        prop_assert_eq!(again.metrics, chaotic.metrics);
        prop_assert_eq!(
            encode_merged(&again.merged),
            encode_merged(&chaotic.merged)
        );
    }
}
