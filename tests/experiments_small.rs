//! Integration tests asserting the paper's qualitative claims on the
//! Tiny-scale workload — the regression suite for the reproduction.
//!
//! Each test runs one experiment driver end-to-end (trace generation →
//! window mechanisms → scoring) and asserts the *shape* the paper
//! reports: who wins, by roughly what factor, where the crossovers fall.

use omniwindow::experiments::{
    ablations, exp10_window_sizes, exp1_queries, exp2_sketches, exp3_dml, exp4_controller,
    exp5_resources, exp6_collection, exp8_reset, exp9_consistency, Scale,
};
use ow_trace::dml::DmlConfig;

const SEED: u64 = 0xCA1DA;

#[test]
fn exp1_window_mechanism_ordering() {
    let r = exp1_queries::run(Scale::Tiny, SEED);
    assert_eq!(r.queries.len(), 7);

    // ITW-vs-ISW: tumbling union precision is exactly 1.0 (every
    // tumbling window is a sliding position) but recall is below 1 —
    // boundary anomalies only a sliding window catches.
    let (p, rcl) = r.average("ITW-vs-ISW");
    assert!(p > 0.999, "ITW union precision {p}");
    assert!(
        rcl < 0.99,
        "ITW union recall {rcl} should miss boundary bursts"
    );
    assert!(rcl > 0.6, "ITW union recall {rcl} unreasonably low");

    // TW1's C&R blackout costs recall relative to TW2.
    let (_, tw1_recall) = r.average("TW1");
    let (_, tw2_recall) = r.average("TW2");
    assert!(
        tw1_recall < tw2_recall - 0.02,
        "TW1 recall {tw1_recall} !< TW2 recall {tw2_recall}"
    );

    // OmniWindow is close to ideal on both axes, with 1/4 the memory.
    let (otw_p, otw_r) = r.average("OTW");
    let (osw_p, osw_r) = r.average("OSW");
    assert!(otw_r > 0.9, "OTW recall {otw_r}");
    assert!(osw_r > 0.9, "OSW recall {osw_r}");
    assert!(otw_p > 0.8, "OTW precision {otw_p}");
    assert!(osw_p > 0.8, "OSW precision {osw_p}");
}

#[test]
fn exp2_sketch_ordering() {
    let r = exp2_sketches::run(Scale::Tiny, SEED);

    // Q9 heavy hitters: OmniWindow near-ideal; Sliding Sketch's
    // over-inclusion costs precision. ElasticSketch is the extension
    // structure (§4.2's heavy-keys-only example).
    for sketch in ["MvSketch", "HashPipe", "ElasticSketch"] {
        let s = r.get("Q9", sketch).expect(sketch);
        let otw = s.row("OTW").unwrap();
        let ss = s.row("SS").unwrap();
        assert!(otw.recall > 0.9, "{sketch} OTW recall {}", otw.recall);
        assert!(
            ss.precision < otw.precision,
            "{sketch}: SS precision {} !< OTW precision {}",
            ss.precision,
            otw.precision
        );
    }

    // Q10 per-flow size: SS error far above OmniWindow's (the paper's
    // "orders of magnitude"); TW1's blackout inflates error over TW2.
    for sketch in ["CountMin", "SuMax"] {
        let s = r.get("Q10", sketch).expect(sketch);
        let osw = s.error("OSW").unwrap();
        let ss = s.error("SS").unwrap();
        let tw1 = s.error("TW1").unwrap();
        let tw2 = s.error("TW2").unwrap();
        assert!(ss > osw * 10.0, "{sketch}: SS {ss} !≫ OSW {osw}");
        assert!(tw1 > tw2, "{sketch}: TW1 {tw1} !> TW2 {tw2}");
    }

    // Q11 cardinality: OmniWindow's state merge stays within a few
    // percent; SS overcounts wildly.
    for sketch in ["LinearCounting", "HyperLogLog"] {
        let s = r.get("Q11", sketch).expect(sketch);
        let osw = s.error("OSW").unwrap();
        let ss = s.error("SS").unwrap();
        assert!(osw < 0.1, "{sketch} OSW AARE {osw}");
        assert!(ss > osw * 3.0, "{sketch}: SS {ss} !≫ OSW {osw}");
    }
}

#[test]
fn exp3_iteration_times_follow_compression() {
    let cfg = DmlConfig {
        iterations: 48,
        base_gradient_bytes: 1024 * 1024,
        ..DmlConfig::default()
    };
    let r = exp3_dml::run(&cfg);
    // Ratio doubles at 17 and 33: mean times halve (±20%).
    let t1 = r.mean_time(8);
    let t2 = r.mean_time(24);
    let t3 = r.mean_time(40);
    assert!(t1 > 0.0 && t2 > 0.0 && t3 > 0.0);
    assert!((t1 / t2 - 2.0).abs() < 0.4, "t1/t2 = {}", t1 / t2);
    assert!((t2 / t3 - 2.0).abs() < 0.4, "t2/t3 = {}", t2 / t3);
}

#[test]
fn exp4_controller_fits_subwindow_budget() {
    let r = exp4_controller::run(8_192, 10, SEED);
    let mean_tumbling = exp4_controller::Exp4Result::mean_total(&r.tumbling);
    let mean_sliding = exp4_controller::Exp4Result::mean_total(&r.sliding);
    // Far below the 100 ms sub-window (the paper's headroom claim).
    assert!(mean_tumbling < 50_000.0, "tumbling mean {mean_tumbling}µs");
    assert!(mean_sliding < 100_000.0, "sliding mean {mean_sliding}µs");
    // Structural differences (robust, unlike wall-clock means): sliding
    // processes the merged result after *every* sub-window once full and
    // evicts (O4+O5); tumbling only processes at window ends and never
    // evicts.
    assert!(r.tumbling.iter().all(|b| b.o5_evict == 0.0));
    assert!(r.sliding.iter().skip(5).all(|b| b.o5_evict > 0.0));
    assert!(r.sliding.iter().skip(5).all(|b| b.o4_process > 0.0));
    let tumbling_o4 = r.tumbling.iter().filter(|b| b.o4_process > 0.0).count();
    assert_eq!(tumbling_o4, 2, "two complete windows in 10 sub-windows");
}

#[test]
fn exp5_resource_breakdown_matches_table_2() {
    let r = exp5_resources::run();
    assert_eq!(r.total.sram_kb, 1632);
    assert_eq!(r.total.salus, 8);
    assert_eq!(r.total.stages, 8);
    assert_eq!(r.total.vliw, 35);
    assert_eq!(r.total.gateways, 31);
    let norm: std::collections::HashMap<_, _> = r.normalized_percent().into_iter().collect();
    assert!(norm.values().all(|&v| v < 50.0 || norm["Stage"] >= v));
}

#[test]
fn exp6_collection_path_ordering() {
    // Reduced population keeps the functional AFR generation fast; the
    // latency model scales linearly so the ordering is scale-free.
    let r = exp6_collection::run_sized(8 * 1024, 4 * 1024, SEED);
    let os = r.mean_ms("OS");
    let cpc = r.mean_ms("CPC");
    let cpc_star = r.mean_ms("CPC*");
    let dpc = r.mean_ms("DPC");
    let dpc_star = r.mean_ms("DPC*");
    let ow = r.mean_ms("OW");
    let ow_star = r.mean_ms("OW*");

    // The paper's ordering: OS ≫ everything; CPC* > CPC > OW > DPC;
    // with RDMA, DPC* < OW* ≪ OW.
    assert!(os > cpc * 20.0, "OS {os} !≫ CPC {cpc}");
    assert!(cpc_star > cpc, "CPC* {cpc_star} !> CPC {cpc}");
    assert!(cpc > ow, "CPC {cpc} !> OW {ow}");
    assert!(ow > dpc, "OW {ow} !> DPC {dpc}");
    assert!(ow_star < ow, "OW* {ow_star} !< OW {ow}");
    assert!(dpc_star < dpc, "DPC* {dpc_star} !< DPC {dpc}");
    // Every method collects (essentially) every key — the Bloom filter
    // in the flowkey tracker may drop a sub-percent of keys as false
    // positives, exactly as the hardware structure does.
    assert!(
        r.times.iter().all(|t| t.afrs as f64 >= 8.0 * 1024.0 * 0.99),
        "AFR counts: {:?}",
        r.times.iter().map(|t| t.afrs).collect::<Vec<_>>()
    );
}

#[test]
fn exp8_reset_shape() {
    let r = exp8_reset::run(65_536);
    // OS reset is linear in the register count…
    let os1 = r.millis("OS", 1).unwrap();
    let os4 = r.millis("OS", 4).unwrap();
    assert!((os4 / os1 - 4.0).abs() < 0.2, "OS scaling {}", os4 / os1);
    // …while OmniWindow's clear packets are flat in it.
    for method in ["OW-4", "OW-8", "OW-16"] {
        let t1 = r.millis(method, 1).unwrap();
        let t4 = r.millis(method, 4).unwrap();
        assert!((t1 - t4).abs() < 1e-9, "{method} not flat");
    }
    // 16 packets clear 128 KB registers in under 2 ms (the paper's
    // headline number), and far below the OS path.
    let ow16 = r.millis("OW-16", 4).unwrap();
    assert!(ow16 < 2.0, "OW-16 {ow16}ms");
    assert!(os4 / ow16 > 100.0);
}

#[test]
fn exp9_consistency_precision() {
    let cfg = exp9_consistency::Exp9Config {
        flows: 150,
        pkts_per_flow: 25,
        deviations_us: vec![2, 128, 512],
        ..exp9_consistency::Exp9Config::default()
    };
    let r = exp9_consistency::run(&cfg);
    // OmniWindow: always perfect.
    for dev in [2, 128, 512] {
        assert_eq!(
            r.precision("OmniWindow", dev),
            Some(1.0),
            "OmniWindow at {dev}µs"
        );
    }
    // Local clocks: precision decays with deviation.
    let p2 = r.precision("LocalClock", 2).unwrap();
    let p128 = r.precision("LocalClock", 128).unwrap();
    let p512 = r.precision("LocalClock", 512).unwrap();
    assert!(p2 > p128, "{p2} !> {p128}");
    assert!(p128 > p512, "{p128} !> {p512}");
    assert!(
        p128 < 0.8,
        "128µs precision {p128} should be badly degraded"
    );
}

#[test]
fn exp10_omniwindow_stable_across_window_sizes() {
    let r = exp10_window_sizes::run(Scale::Tiny, &[500, 1_500], 40, SEED);
    // OmniWindow's accuracy stays high at every window size (the Tiny
    // scale runs every structure hot, so the bound is looser than the
    // near-100% the paper-scale run shows).
    for win in [500, 1_500] {
        let (p, rcl) = r.at(win, "OTW").unwrap();
        assert!(p > 0.7 && rcl > 0.9, "OTW at {win}ms: {p}/{rcl}");
        let (p, rcl) = r.at(win, "OSW").unwrap();
        assert!(p > 0.7 && rcl > 0.9, "OSW at {win}ms: {p}/{rcl}");
    }
    // Conventional TW degrades as the window outgrows its memory: true
    // heavy hitters collide in the overloaded candidate slots.
    let (tw2_p_small, _) = r.at(500, "TW2").unwrap();
    let (tw2_p_large, _) = r.at(1_500, "TW2").unwrap();
    assert!(
        tw2_p_large < tw2_p_small - 0.1,
        "TW2 precision must degrade: {tw2_p_small} → {tw2_p_large}"
    );
    let (otw_p_large, _) = r.at(1_500, "OTW").unwrap();
    assert!(
        otw_p_large > tw2_p_large + 0.2,
        "OTW {otw_p_large} must stay far above TW2 {tw2_p_large} at 1.5s"
    );
    // Sliding Sketch is far below OSW at every size.
    for win in [500, 1_500] {
        let (ss_p, _) = r.at(win, "SS").unwrap();
        let (osw_p, _) = r.at(win, "OSW").unwrap();
        assert!(ss_p < osw_p - 0.2, "SS {ss_p} vs OSW {osw_p} at {win}ms");
    }
}

/// Paper-scale smoke run (minutes; excluded from the default suite).
/// Run with `cargo test --release -- --ignored`.
#[test]
#[ignore = "paper-scale run takes minutes; run explicitly with --ignored"]
fn paper_scale_exp1_smoke() {
    let r = exp1_queries::run(Scale::Paper, SEED);
    let (p, rcl) = r.average("OTW");
    assert!(p > 0.85 && rcl > 0.95, "paper-scale OTW {p}/{rcl}");
    let (itw_p, itw_r) = r.average("ITW-vs-ISW");
    assert!(itw_p > 0.999 && itw_r < 0.99);
}

#[test]
fn ablation_shapes() {
    let m = ablations::merging_strategies(Scale::Tiny, SEED);
    assert!(m.afr_recall > 0.99);
    assert!(m.results_recall < 0.2);
    assert!(m.state_are > m.afr_are);

    for row in ablations::salu_ablation() {
        assert_eq!(row.naive, 2 * row.flattened);
    }

    let sweep = ablations::recirc_sweep(65_536);
    assert!(sweep.last().unwrap().fits_subwindow);
}
