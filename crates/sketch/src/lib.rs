//! From-scratch sketch library for OmniWindow-RS.
//!
//! Implements every streaming summary the paper's evaluation uses
//! (§9, Exp#2/Exp#9/Exp#10), all behind small typed APIs plus a common
//! [`SketchMeta`] resource descriptor used by the switch resource
//! accountant:
//!
//! | Module | Structure | Paper role |
//! |---|---|---|
//! | [`cm`] | Count-Min Sketch (Cormode & Muthukrishnan) | per-flow size (Q10), Exp#6 |
//! | [`sumax`] | SuMax Sketch (LightGuardian) | per-flow size (Q10) |
//! | [`mv`] | MV-Sketch (Tang et al.) | heavy hitters (Q9), Exp#10 |
//! | [`hashpipe`] | HashPipe (Sivaraman et al.) | heavy hitters (Q9) |
//! | [`spread`] | SpreadSketch (Tang et al.) | super-spreaders (Q8) |
//! | [`vbf`] | Vector Bloom Filter (Liu et al.) | super-spreaders (Q8) |
//! | [`lc`] | Linear Counting (Whang et al.) | flow cardinality (Q11) |
//! | [`hll`] | HyperLogLog (Heule et al. practice variant) | flow cardinality (Q11) |
//! | [`bloom`] | Bloom filter | flowkey tracking (Algorithm 1) |
//! | [`elastic`] | Elastic Sketch (Yang et al.) | heavy-key telemetry (§4.2 integration) |
//! | [`flowradar`] | FlowRadar (Li et al.) | the §8 state-migration path (no data-plane query) |
//! | [`iblt`] | Invertible Bloom Lookup Table | LossRadar digests (Exp#9) |
//! | [`sliding`] | Sliding Sketch framework (Gou et al.) | the competing sliding-window baseline |
//!
//! Every structure is deterministic given a hash seed, supports `reset()`
//! (the operation OmniWindow's clear packets perform region-by-region),
//! and reports its memory/SALU footprint via [`SketchMeta`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bloom;
pub mod cm;
pub mod elastic;
pub mod flowradar;
pub mod hashpipe;
pub mod hll;
pub mod iblt;
pub mod lc;
pub mod mv;
pub mod sliding;
pub mod spread;
pub mod sumax;
pub mod traits;
pub mod vbf;

pub use bloom::BloomFilter;
pub use cm::CountMin;
pub use elastic::ElasticSketch;
pub use flowradar::{FlowRadar, FlowRadarDecode};
pub use hashpipe::HashPipe;
pub use hll::HyperLogLog;
pub use iblt::Iblt;
pub use lc::LinearCounting;
pub use mv::MvSketch;
pub use sliding::{SlidingCm, SlidingMv};
pub use spread::SpreadSketch;
pub use sumax::SuMax;
pub use traits::{
    FrequencySketch, InvertibleSketch, NullSketchObs, SketchMeta, SketchObs, SpreadEstimator,
};
pub use vbf::VectorBloomFilter;
