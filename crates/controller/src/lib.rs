//! The OmniWindow controller: AFR collection, storage, and merging.
//!
//! The paper's controller is a DPDK process that (1) receives trigger
//! packets and injects flowkeys/collection packets, (2) stores incoming
//! AFRs in an `rte_hash` table, (3) merges per-sub-window AFRs into
//! complete windows with AVX-512, (4) answers telemetry queries on the
//! merged table, and (5) for sliding windows evicts the oldest
//! sub-window. This crate reproduces that pipeline in native Rust:
//!
//! * [`table`] — the key-value merge table with the four merge
//!   strategies (frequency / existence / max-min / distinction) and
//!   incremental sliding-window eviction,
//! * [`shard`] — the same table split into `N` disjoint key slices by
//!   flow-key hash, with a deterministic final fold that is
//!   byte-identical to the single-shard baseline,
//! * [`collector`] — the per-sub-window collection session, including
//!   the sequence-id reliability check and retransmission requests (§8),
//! * [`rdma`] — the simulated one-sided RDMA region: hot-key address
//!   MAT, cold-key append buffer, and Fetch-and-Add offload (§7),
//! * [`simd`] — scalar vs auto-vectorised AFR aggregation (Exp#7),
//! * [`live`] — a threaded live deployment: a crossbeam channel from
//!   the data plane into a controller thread with a shared, lock-
//!   protected merge table,
//! * [`timing`] — the O1–O5 instrumented controller for Exp#4.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod collector;
pub mod health;
pub mod live;
pub mod rdma;
pub mod reliability;
pub mod shard;
pub mod simd;
pub mod table;
pub mod timing;
pub mod wire;

pub use collector::{CollectionSession, SessionStatus};
pub use live::{LiveController, LiveHandle, ReliableLiveController, ReliableMsg};
pub use rdma::{RdmaRegion, RdmaWriteKind};
pub use reliability::{AfrTransport, FnTransport, ReliabilityDriver, RetryPolicy, SessionOutcome};
pub use shard::ShardedMergeTable;
pub use table::MergeTable;
pub use timing::{InstrumentedController, OpBreakdown};
pub use wire::{decode_batch, decode_merged, encode_batch, encode_merged};
