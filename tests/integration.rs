//! Cross-crate integration tests: the full protocol path from packets
//! through the switch model to the controller's merged results.

use ow_common::afr::AttrValue;
use ow_common::flowkey::{FlowKey, KeyKind};
use ow_common::packet::{Packet, TcpFlags};
use ow_common::time::{Duration, Instant};
use ow_controller::collector::{CollectionSession, SessionStatus};
use ow_controller::rdma::{RdmaRegion, RdmaWriteKind};
use ow_controller::reliability::{ReliabilityDriver, RetryPolicy};
use ow_controller::table::MergeTable;
use ow_netsim::{FaultConfig, LossyChannel, PacketClass};
use ow_sketch::CountMin;
use ow_switch::app::FrequencyApp;
use ow_switch::signal::WindowSignal;
use ow_switch::{Switch, SwitchConfig, SwitchEvent};
use ow_verify::verified_switch;

type App = FrequencyApp<CountMin>;

fn mk_switch(first_hop: bool, fk_capacity: usize) -> Switch<App> {
    let app = |s| FrequencyApp::new(CountMin::new(2, 8192, s), KeyKind::SrcIp, false);
    verified_switch(
        SwitchConfig {
            first_hop,
            fk_capacity,
            expected_flows: 16 * 1024,
            signal: WindowSignal::Timeout(Duration::from_millis(100)),
            cr_wait: Duration::from_millis(1),
            ..SwitchConfig::default()
        },
        app(1),
        app(2),
    )
    .expect("pipeline verifies")
}

fn pkt(src: u32, ms: u64) -> Packet {
    Packet::tcp(Instant::from_millis(ms), src, 9, 1, 80, TcpFlags::ack(), 64)
}

/// Drive a trace through the switch, feed every AFR batch through a
/// reliability session into the merge table, and return the table.
fn run_pipeline(switch: &mut Switch<App>, packets: Vec<Packet>) -> MergeTable {
    let mut table = MergeTable::new();
    let mut events = Vec::new();
    for p in packets {
        events.extend(switch.process(p));
    }
    events.extend(switch.flush());

    let mut announced: std::collections::HashMap<u32, u32> = std::collections::HashMap::new();
    for e in &events {
        if let SwitchEvent::Trigger {
            ended,
            tracked_keys,
            ..
        } = e
        {
            announced.insert(*ended, *tracked_keys);
        }
    }
    for e in events {
        if let SwitchEvent::AfrBatch {
            subwindow, outcome, ..
        } = e
        {
            // The reliability path: a session checks the batch against
            // the trigger's announced key count before merging.
            let expect = announced.get(&subwindow).copied().unwrap_or(0);
            let mut session =
                CollectionSession::new(subwindow, expect.min(outcome.afrs.len() as u32));
            for afr in &outcome.afrs {
                session.receive(*afr).expect("AFR for right sub-window");
            }
            assert_eq!(session.status(), SessionStatus::Complete);
            table.insert_batch(subwindow, session.into_batch());
        }
    }
    table
}

#[test]
fn end_to_end_counts_are_exact_without_contention() {
    let mut sw = mk_switch(true, 4096);
    let mut packets = Vec::new();
    // Host 5 sends 37 packets per sub-window for 5 sub-windows; host 6
    // sends 3 per sub-window.
    for s in 0..5u64 {
        for i in 0..37 {
            packets.push(pkt(5, s * 100 + 1 + i * 2));
        }
        for i in 0..3 {
            packets.push(pkt(6, s * 100 + 50 + i));
        }
    }
    packets.sort_by_key(|p| p.ts);
    let table = run_pipeline(&mut sw, packets);

    assert_eq!(
        table.get(&FlowKey::src_ip(5)),
        Some(AttrValue::Frequency(37 * 5))
    );
    assert_eq!(
        table.get(&FlowKey::src_ip(6)),
        Some(AttrValue::Frequency(15))
    );
    // Threshold query over the merged window.
    let heavy = table.flows_over(100.0);
    assert_eq!(heavy.len(), 1);
    assert_eq!(heavy[0].0, FlowKey::src_ip(5));
}

#[test]
fn overflow_keys_still_produce_afrs() {
    // fk_buffer of 2: keys overflow to the controller (Algorithm 1
    // lines 5-6) yet every flow's AFR must still be generated.
    let mut sw = mk_switch(true, 2);
    let mut packets = Vec::new();
    for src in 1..=10u32 {
        for i in 0..5 {
            packets.push(pkt(src, 10 + i));
        }
    }
    packets.sort_by_key(|p| p.ts);
    let table = run_pipeline(&mut sw, packets);
    for src in 1..=10u32 {
        assert_eq!(
            table.get(&FlowKey::src_ip(src)),
            Some(AttrValue::Frequency(5)),
            "flow {src}"
        );
    }
}

#[test]
fn boundary_flow_crosses_threshold_only_after_merging() {
    // The paper's §4.1 example end-to-end: 60 packets in one sub-window
    // and 80 in the next; threshold 100.
    let mut sw = mk_switch(true, 4096);
    let mut packets = Vec::new();
    for i in 0..60u64 {
        packets.push(pkt(42, 30 + i));
    }
    for i in 0..80u64 {
        packets.push(pkt(42, 110 + i));
    }
    let table = run_pipeline(&mut sw, packets);
    assert_eq!(
        table.get(&FlowKey::src_ip(42)),
        Some(AttrValue::Frequency(140))
    );
    assert!(!table.flows_over(100.0).is_empty());
}

#[test]
fn transit_switch_agrees_with_first_hop() {
    // Two switches in series: the first stamps, the second adopts. Both
    // must attribute every packet to the same sub-window.
    let mut first = mk_switch(true, 4096);
    let mut second = mk_switch(false, 4096);

    let mut first_batches: std::collections::HashMap<u32, u64> = Default::default();
    let mut second_batches: std::collections::HashMap<u32, u64> = Default::default();

    let mut downstream = Vec::new();
    for s in 0..4u64 {
        for i in 0..25 {
            let p = pkt(7, s * 100 + 1 + i * 3);
            for e in first.process(p) {
                match e {
                    SwitchEvent::Forward(fp) => downstream.push(fp),
                    SwitchEvent::AfrBatch {
                        subwindow, outcome, ..
                    } => {
                        let v = outcome
                            .afrs
                            .iter()
                            .find(|r| r.key == FlowKey::src_ip(7))
                            .map(|r| r.attr.scalar() as u64)
                            .unwrap_or(0);
                        first_batches.insert(subwindow, v);
                    }
                    _ => {}
                }
            }
        }
    }
    for e in first.flush() {
        if let SwitchEvent::AfrBatch {
            subwindow, outcome, ..
        } = e
        {
            let v = outcome
                .afrs
                .iter()
                .find(|r| r.key == FlowKey::src_ip(7))
                .map(|r| r.attr.scalar() as u64)
                .unwrap_or(0);
            first_batches.insert(subwindow, v);
        }
    }

    // Downstream packets arrive 30µs later (transit delay) — without the
    // embedded stamp, boundary packets would shift sub-windows.
    for mut p in downstream {
        p.ts += Duration::from_micros(30);
        for e in second.process(p) {
            if let SwitchEvent::AfrBatch {
                subwindow, outcome, ..
            } = e
            {
                let v = outcome
                    .afrs
                    .iter()
                    .find(|r| r.key == FlowKey::src_ip(7))
                    .map(|r| r.attr.scalar() as u64)
                    .unwrap_or(0);
                second_batches.insert(subwindow, v);
            }
        }
    }
    for e in second.flush() {
        if let SwitchEvent::AfrBatch {
            subwindow, outcome, ..
        } = e
        {
            let v = outcome
                .afrs
                .iter()
                .find(|r| r.key == FlowKey::src_ip(7))
                .map(|r| r.attr.scalar() as u64)
                .unwrap_or(0);
            second_batches.insert(subwindow, v);
        }
    }

    // Same per-sub-window counts on both switches — the consistency
    // guarantee that makes network-wide telemetry interpretable.
    for (sw, v1) in &first_batches {
        let v2 = second_batches.get(sw).copied().unwrap_or(0);
        assert_eq!(*v1, v2, "sub-window {sw}: {v1} upstream vs {v2} downstream");
    }
}

/// The controller's end of a lossy fabric: the switch's retransmit
/// handlers spliced behind an `ow-netsim` fault channel. Initial AFR
/// streams are pre-transmitted (lowest priority, lossy); retransmission
/// requests and their replies cross the channel too; the OS read is the
/// reliable fallback.
struct LossySwitchTransport<'a> {
    switch: &'a mut Switch<App>,
    channel: LossyChannel,
    initial: std::collections::HashMap<u32, Vec<ow_common::afr::FlowRecord>>,
}

impl ow_controller::reliability::AfrTransport for LossySwitchTransport<'_> {
    fn initial_afrs(&mut self, subwindow: u32) -> Vec<ow_common::afr::FlowRecord> {
        self.initial.remove(&subwindow).unwrap_or_default()
    }
    fn request_retransmit(
        &mut self,
        subwindow: u32,
        seqs: &[u32],
    ) -> Vec<ow_common::afr::FlowRecord> {
        // The request packet itself can be lost.
        if self
            .channel
            .transmit_one(PacketClass::RetransmitRequest, ())
            .is_empty()
        {
            return Vec::new();
        }
        let replayed = self.switch.handle_retransmit_request(subwindow, seqs);
        self.channel.transmit(PacketClass::RetransmitData, replayed)
    }
    fn os_read(&mut self, subwindow: u32) -> (Vec<ow_common::afr::FlowRecord>, Duration) {
        self.switch
            .os_read_terminated(subwindow)
            .expect("switch retains unacknowledged batches")
    }
}

#[test]
fn lossy_channel_recovers_byte_identical_merge_table() {
    // CI varies this seed across a small matrix (see ci.yml); any value
    // must converge to the loss-free result.
    let seed_offset: u64 = std::env::var("OW_FAULT_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0);

    let mk_packets = || {
        let mut packets = Vec::new();
        for s in 0..6u64 {
            for src in 1..=40u32 {
                for i in 0..(1 + src as u64 % 5) {
                    packets.push(pkt(src, s * 100 + 1 + i * 7 + src as u64 % 13));
                }
            }
        }
        packets.sort_by_key(|p| p.ts);
        packets
    };

    // Reference: the same trace through an identical switch with a
    // perfect channel.
    let mut reference: Vec<(u32, Vec<ow_common::afr::FlowRecord>)> = Vec::new();
    let mut sw = mk_switch(true, 4096);
    let mut events = Vec::new();
    for p in mk_packets() {
        events.extend(sw.process(p));
    }
    events.extend(sw.flush());
    for e in events {
        if let SwitchEvent::AfrBatch {
            subwindow, outcome, ..
        } = e
        {
            reference.push((subwindow, outcome.afrs));
        }
    }
    let mut loss_free = MergeTable::new();
    for (subwindow, afrs) in &reference {
        loss_free.insert_batch(*subwindow, afrs.clone());
    }

    for (i, loss) in [0.01f64, 0.10, 0.30].into_iter().enumerate() {
        let mut sw = mk_switch(true, 4096);
        let mut events = Vec::new();
        for p in mk_packets() {
            events.extend(sw.process(p));
        }
        events.extend(sw.flush());

        let mut batches = Vec::new();
        for e in events {
            if let SwitchEvent::AfrBatch {
                subwindow, outcome, ..
            } = e
            {
                batches.push((subwindow, outcome.afrs));
            }
        }

        // Drop `loss` of the AFR clones; the recovery path is reliable
        // except at 30 %, where requests get lost too.
        let mut cfg = FaultConfig::afr_loss(0xFA_u64 + i as u64 + seed_offset * 101, loss);
        if loss >= 0.30 {
            cfg.retransmit_request.loss = 0.2;
            cfg.retransmit_data.loss = 0.1;
        }
        let mut channel = LossyChannel::new(cfg);
        let mut initial = std::collections::HashMap::new();
        for (subwindow, afrs) in &batches {
            initial.insert(
                *subwindow,
                channel.transmit(PacketClass::AfrReport, afrs.clone()),
            );
        }

        let mut transport = LossySwitchTransport {
            switch: &mut sw,
            channel,
            initial,
        };
        let driver = ReliabilityDriver::new(RetryPolicy::default());
        let mut table = MergeTable::new();
        let mut total = ow_common::metrics::ReliabilityMetrics::default();
        for (idx, (subwindow, afrs)) in batches.iter().enumerate() {
            let out = driver.collect(&mut transport, *subwindow, afrs.len() as u32);
            // The recovered batch is byte-identical on the wire to the
            // loss-free batch of the reference run.
            assert_eq!(
                ow_controller::wire::encode_batch(&out.batch),
                ow_controller::wire::encode_batch(&reference[idx].1),
                "loss {loss}: sub-window {subwindow} batch diverged"
            );
            transport.switch.ack_collection(*subwindow);
            total.merge(&out.metrics);
            table.insert_batch(*subwindow, out.batch);
        }

        // The merged tables agree exactly: same sub-windows, same flows,
        // same merged values.
        assert_eq!(table.subwindows(), loss_free.subwindows(), "loss {loss}");
        assert_eq!(table.len(), loss_free.len(), "loss {loss}");
        let mut lossy_flows = table.flows_over(0.0);
        let mut free_flows = loss_free.flows_over(0.0);
        lossy_flows.sort_by_key(|(k, _)| k.as_u128());
        free_flows.sort_by_key(|(k, _)| k.as_u128());
        assert_eq!(lossy_flows, free_flows, "loss {loss}");

        // The reliability loop did real, observable work.
        assert_eq!(
            total.announced,
            reference.iter().map(|(_, b)| b.len() as u64).sum::<u64>()
        );
        if loss >= 0.10 {
            assert!(total.retransmit_rounds > 0, "loss {loss}: no rounds");
            assert!(total.recovered > 0, "loss {loss}: nothing recovered");
            assert!(
                total.wall_clock > Duration::ZERO,
                "loss {loss}: recovery cost no time"
            );
            assert!(total.first_pass_loss() > 0.0, "loss {loss}");
        }
        assert!(
            total.first_pass + total.recovered <= total.announced,
            "loss {loss}: counters overflow the announced total"
        );
    }
}

#[test]
fn rdma_path_matches_cpu_path() {
    // The same AFR stream through (a) the merge table (controller CPU)
    // and (b) the simulated RDMA region with hot keys — identical merged
    // values for the hot keys.
    let mut table = MergeTable::new();
    let mut region = RdmaRegion::new();
    let hot = FlowKey::src_ip(1);
    region.promote(hot);

    for sw in 0..5u32 {
        let afrs = vec![
            ow_common::afr::FlowRecord::frequency(hot, 60 + sw as u64, sw),
            ow_common::afr::FlowRecord::frequency(FlowKey::src_ip(2), 5, sw),
        ];
        for r in &afrs {
            let kind = region.switch_write(*r);
            if r.key == hot {
                assert_eq!(kind, RdmaWriteKind::FetchAdd);
            } else {
                assert_eq!(kind, RdmaWriteKind::BufferAppend);
            }
        }
        table.insert_batch(sw, afrs);
    }
    // Hot key: RNIC-accumulated value equals the CPU-merged value.
    let cpu = table.get(&hot).unwrap().scalar() as u64;
    assert_eq!(region.hot_value(&hot), Some(cpu));
    // Cold keys came through the buffer and must drain completely.
    assert_eq!(region.drain_buffer().len(), 5);
}

#[test]
fn header_stamps_survive_wire_roundtrip() {
    // The sub-window stamp must survive serialisation between switches.
    let mut first = mk_switch(true, 1024);
    let p = pkt(9, 250);
    let forwarded = first
        .process(p)
        .into_iter()
        .find_map(|e| match e {
            SwitchEvent::Forward(fp) => Some(fp),
            _ => None,
        })
        .expect("forwarded");
    assert_eq!(forwarded.ow.subwindow, 2);
    let wire = forwarded.ow.encode();
    let decoded = ow_common::packet::OwHeader::decode(wire).unwrap();
    assert_eq!(decoded, forwarded.ow);
}
