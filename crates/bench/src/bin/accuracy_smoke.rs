//! Accuracy-observatory smoke: acceptance gates for the streaming
//! ground-truth oracle, the live `AccuracyScorer`, and the
//! `OW-HEALTH-4xx` accuracy alert catalog.
//!
//! Three phases, all deterministic under `--seed`:
//!
//! 1. **Lossless gate** — an exact-feed fleet scored against the
//!    oracle must come out perfect (1000‰ precision/recall, 0‰ AARE),
//!    with zero pending oracle entries and *zero* 4xx alerts: a
//!    well-provisioned pipeline is never paged for accuracy.
//! 2. **Live ≡ offline** — on a moderately undersized data-plane
//!    sketch (real degradation, non-trivial scores) the live permille
//!    aggregates must equal what the offline
//!    `evaluate::score_reports` / `score_estimates` path computes over
//!    the very same windows after the fact. Any drift means the
//!    observatory is lying about accuracy.
//! 3. **Degraded gate** — a severely undersized sketch must fire
//!    exactly the 4xx catalog (`401` recall SLO burn, `402` sketch
//!    saturation, `403` cardinality drift, critical `404` accuracy
//!    collapse) and nothing else, with the 404 freezing the black-box
//!    flight recorder. The phase repeats with the same seed and both
//!    the accuracy summary and the flight dump must match byte for
//!    byte; the dump lands in `results/flightrec_accuracy_smoke.json`
//!    (override with `--trace-json <path>`) and the phase reports in
//!    `results/accuracy_smoke.json` (override with `--json <path>`).
//!    The degraded run's metrics snapshot is written next to the
//!    report (`<stem>.obs.json`) so `ow-obs-report --section accuracy`
//!    renders the scorecard.
//!
//! Any missed alert, spurious alert, live/offline disagreement, or
//! nondeterministic artifact exits nonzero, so CI gates on all of them.

use std::collections::BTreeSet;
use std::path::Path;

use omniwindow::evaluate;
use omniwindow::mechanisms::WindowResult;
use ow_bench::Cli;
use ow_common::metrics;
use ow_common::time::Duration;
use ow_netsim::fleet;
use ow_netsim::{ChurnEvent, ChurnKind, FleetConfig};
use ow_obs::{
    accuracy_health_rules, json, validate_flightrec_json, AccuracyConfig, AccuracyScorer,
    AccuracySummary, FlightRecorderConfig, HealthEngine, HealthReport, Obs,
};
use serde::Serialize;

/// Live vs offline permille scores on the same degraded run.
#[derive(Serialize)]
struct LiveOffline {
    windows: usize,
    live_precision_permille: u64,
    live_recall_permille: u64,
    live_aare_permille: u64,
    offline_precision_permille: u64,
    offline_recall_permille: u64,
    offline_aare_permille: u64,
}

/// Everything the smoke writes to `results/accuracy_smoke.json`.
#[derive(Serialize)]
struct AccuracySmokeDoc {
    run: String,
    seed: u64,
    lossless: AccuracySummary,
    live_offline: LiveOffline,
    degraded: AccuracySummary,
    degraded_health: HealthReport,
    fired_codes: Vec<String>,
}

fn fail(msg: String) -> ! {
    eprintln!("accuracy smoke FAILED: {msg}");
    std::process::exit(1);
}

fn permille(x: f64) -> u64 {
    (x * 1000.0).round() as u64
}

/// A fleet announcing through a data-plane MV-Sketch of the given
/// geometry (`None` = exact feed), with one mid-run crash so the
/// departure path exercises too.
fn fleet_config(seed: u64, sketch_feed: Option<(usize, usize)>) -> FleetConfig {
    FleetConfig {
        switches: 16,
        workers: 2,
        local_windows: 3,
        afr_loss: 0.15,
        churn: vec![ChurnEvent {
            at: Duration::from_micros(1_700),
            switch: 2,
            kind: ChurnKind::Crash,
        }],
        sketch_feed,
        seed,
        ..FleetConfig::default()
    }
}

/// One observed fleet run with the oracle, scorer, and 4xx catalog
/// installed.
fn run_once(
    cfg: &FleetConfig,
) -> (
    std::sync::Arc<AccuracyScorer>,
    std::sync::Arc<HealthEngine>,
    Obs,
) {
    let obs = Obs::with_journal_capacity(1 << 15);
    let engine = obs.install_health(accuracy_health_rules(), FlightRecorderConfig::default());
    let scorer = obs.install_accuracy(AccuracyConfig::default());
    fleet::run(cfg, Some(&obs));
    (scorer, engine, obs)
}

/// Phase 1: an exact-feed lossless fleet scores perfectly and stays
/// silent.
fn lossless_gate(seed: u64) -> AccuracySummary {
    let cfg = FleetConfig {
        switches: 16,
        workers: 2,
        local_windows: 3,
        afr_loss: 0.0,
        seed,
        ..FleetConfig::default()
    };
    let (scorer, engine, _obs) = run_once(&cfg);
    let summary = scorer.summary();
    if summary.windows_scored != 16 * 3 {
        fail(format!(
            "lossless run scored {} windows, expected 48",
            summary.windows_scored
        ));
    }
    if (
        summary.precision_permille,
        summary.recall_permille,
        summary.aare_permille,
    ) != (1000, 1000, 0)
    {
        fail(format!("lossless run is not a perfect score: {summary:?}"));
    }
    if scorer.pending_windows() != 0 {
        fail(format!(
            "{} oracle entries left pending after a lossless run",
            scorer.pending_windows()
        ));
    }
    let timeline = engine.timeline();
    if !timeline.is_empty() {
        fail(format!(
            "lossless run raised {} accuracy alert event(s); first: {:?}",
            timeline.len(),
            timeline[0]
        ));
    }
    if engine.frozen() {
        fail("lossless run froze the flight recorder".into());
    }
    println!(
        "  lossless: {} windows scored 1000\u{2030}/1000\u{2030}/0\u{2030}, 0 alerts",
        summary.windows_scored
    );
    summary
}

/// Phase 2: the live aggregates equal the offline evaluation path on
/// the same (moderately degraded) run.
fn live_offline_gate(seed: u64) -> LiveOffline {
    let (scorer, _engine, _obs) = run_once(&fleet_config(seed, Some((1, 12))));
    let summary = scorer.summary();
    if summary.windows_scored == 0 {
        fail("live/offline run scored no windows".into());
    }
    if summary.recall_permille == 1000 {
        fail("a 12-bucket sketch must lose flows; the scenario is broken".into());
    }
    let windows = scorer.windows();
    let threshold = scorer.config().threshold;
    let to_result = |rows: &Vec<(ow_common::flowkey::FlowKey, f64)>, i: usize| WindowResult {
        index: i,
        reported: rows
            .iter()
            .filter(|(_, s)| *s >= threshold)
            .map(|(k, _)| *k)
            .collect(),
        estimates: rows.iter().cloned().collect(),
    };
    let mech: Vec<WindowResult> = windows
        .iter()
        .enumerate()
        .map(|(i, w)| to_result(&w.merged, i))
        .collect();
    let refr: Vec<WindowResult> = windows
        .iter()
        .enumerate()
        .map(|(i, w)| to_result(&w.truth, i))
        .collect();
    let pr = evaluate::score_reports(&mech, &refr);
    let ares: Vec<f64> = (0..windows.len())
        .map(|i| {
            evaluate::score_estimates(
                std::slice::from_ref(&mech[i]),
                std::slice::from_ref(&refr[i]),
            )
        })
        .collect();
    let out = LiveOffline {
        windows: windows.len(),
        live_precision_permille: summary.precision_permille,
        live_recall_permille: summary.recall_permille,
        live_aare_permille: summary.aare_permille,
        offline_precision_permille: permille(pr.precision),
        offline_recall_permille: permille(pr.recall),
        offline_aare_permille: permille(metrics::mean(&ares)),
    };
    if (out.live_precision_permille, out.live_recall_permille)
        != (out.offline_precision_permille, out.offline_recall_permille)
    {
        fail(format!(
            "live precision/recall {}\u{2030}/{}\u{2030} != offline {}\u{2030}/{}\u{2030}",
            out.live_precision_permille,
            out.live_recall_permille,
            out.offline_precision_permille,
            out.offline_recall_permille
        ));
    }
    if out.live_aare_permille != out.offline_aare_permille {
        fail(format!(
            "live AARE {}\u{2030} != offline {}\u{2030}",
            out.live_aare_permille, out.offline_aare_permille
        ));
    }
    println!(
        "  live = offline over {} windows: {}\u{2030} precision, {}\u{2030} recall, \
         {}\u{2030} AARE",
        out.windows, out.live_precision_permille, out.live_recall_permille, out.live_aare_permille
    );
    out
}

/// One degraded run: a 4-bucket sketch against ~20-key windows.
fn degraded_once(seed: u64) -> (AccuracySummary, HealthReport, String, String, Obs) {
    let (scorer, engine, obs) = run_once(&fleet_config(seed, Some((1, 4))));
    let dump = match engine.flight_dump("accuracy_smoke_degraded") {
        Some(d) => d.to_json(),
        None => fail("degraded run did not freeze the flight recorder".into()),
    };
    let summary_json = serde_json::to_string(&scorer.summary()).expect("summary serializes");
    (
        scorer.summary(),
        engine.report("accuracy_smoke_degraded"),
        summary_json,
        dump,
        obs,
    )
}

fn main() {
    let cli = Cli::parse();
    cli.progress(format!("accuracy smoke, seed {}…", cli.seed));

    println!("phase 1: lossless precision gate (exact feed, perfect score, zero 4xx)");
    let lossless = lossless_gate(cli.seed);

    println!("phase 2: live vs offline agreement (12-bucket sketch feed)");
    let live_offline = live_offline_gate(cli.seed);

    println!("phase 3: degraded recall gate (4-bucket sketch feed, full 4xx catalog)");
    let (degraded, health, summary_json, dump, obs) = degraded_once(cli.seed);
    let (_, _, summary_json_b, dump_b, _obs_b) = degraded_once(cli.seed);
    if summary_json != summary_json_b {
        fail("degraded accuracy summaries differ across same-seed runs".into());
    }
    if dump != dump_b {
        fail("degraded flight dumps differ across same-seed runs".into());
    }
    let doc = match json::parse(&dump) {
        Ok(doc) => doc,
        Err(e) => fail(format!("flight dump unparsable: {e}")),
    };
    if let Err(e) = validate_flightrec_json(&doc) {
        fail(format!("flight dump schema invalid: {e}"));
    }
    if degraded.recall_permille >= 500 {
        fail(format!(
            "degraded recall {}\u{2030} did not collapse below 500\u{2030}",
            degraded.recall_permille
        ));
    }
    let fired = fired_pairs_checked(&health, &dump);
    println!(
        "  degraded: recall {}\u{2030}, fired {:?}, dump byte-identical across runs",
        degraded.recall_permille,
        fired.iter().map(|(c, _)| c).collect::<Vec<_>>()
    );

    let rec_path = cli
        .trace_json
        .clone()
        .unwrap_or_else(|| "results/flightrec_accuracy_smoke.json".to_string());
    if let Err(e) = std::fs::write(Path::new(&rec_path), format!("{dump}\n")) {
        fail(format!("failed to write {rec_path}: {e}"));
    }
    cli.progress(format!("flight dump written to {rec_path}"));

    let path = cli
        .json
        .clone()
        .unwrap_or_else(|| "results/accuracy_smoke.json".to_string());
    // The degraded run's metrics snapshot, for the report renderer's
    // `== accuracy ==` section (journal ordering is thread-racy, so
    // this artifact renders but is not byte-compared).
    let obs_path = match path.strip_suffix(".json") {
        Some(stem) => format!("{stem}.obs.json"),
        None => format!("{path}.obs.json"),
    };
    if let Err(e) = obs.report("accuracy_smoke").write(Path::new(&obs_path)) {
        fail(format!("failed to write {obs_path}: {e}"));
    }
    cli.progress(format!("metrics snapshot written to {obs_path}"));

    let doc = AccuracySmokeDoc {
        run: "accuracy_smoke".into(),
        seed: cli.seed,
        lossless,
        live_offline,
        degraded,
        degraded_health: health,
        fired_codes: fired.iter().map(|(c, _)| c.clone()).collect(),
    };
    let body = serde_json::to_string_pretty(&doc).expect("doc serializes");
    if let Err(e) = std::fs::write(Path::new(&path), format!("{body}\n")) {
        fail(format!("failed to write {path}: {e}"));
    }
    cli.progress(format!("accuracy report written to {path}"));
    println!("accuracy smoke OK: all three phases match their expected outcomes");
}

/// Check the degraded phase's alert set: exactly the 4xx catalog, the
/// recorder frozen by the critical 404.
fn fired_pairs_checked(health: &HealthReport, dump: &str) -> BTreeSet<(String, String)> {
    let fired: BTreeSet<(String, String)> = health
        .timeline
        .iter()
        .filter(|a| a.state == "fired")
        .map(|a| (a.code.clone(), a.entity.clone()))
        .collect();
    let want: BTreeSet<(String, String)> = [
        ("OW-HEALTH-401", "accuracy"),
        ("OW-HEALTH-402", "sketch:mv"),
        ("OW-HEALTH-403", "accuracy"),
        ("OW-HEALTH-404", "accuracy"),
    ]
    .iter()
    .map(|(c, e)| (c.to_string(), e.to_string()))
    .collect();
    for pair in &want {
        if !fired.contains(pair) {
            fail(format!(
                "degraded: expected {pair:?} to fire; fired set: {fired:?}"
            ));
        }
    }
    for pair in &fired {
        if !want.contains(pair) {
            fail(format!(
                "degraded: spurious alert {pair:?}; expected only {want:?}"
            ));
        }
    }
    if !health.frozen {
        fail("degraded report does not mark the recorder frozen".into());
    }
    if !dump.contains("OW-HEALTH-404") {
        fail("flight dump freeze reason does not name OW-HEALTH-404".into());
    }
    fired
}
