//! Controller-side health rules for the `ow_obs::health` engine.
//!
//! These interpret the controller's registry footprint: the sharded
//! merge path's queue gauges (`ow_controller_shard_queue_*`), the C&R
//! reliability counters folded per session
//! (`ow_controller_{retransmit_requests,escalations,…}_total`), and
//! the recovery-phase latency histogram that PR 5's SLO machinery
//! feeds. Install with [`controller_health_rules`] (alone or merged
//! with the switch and fleet catalogs via `RuleSet::merged`).
//!
//! | code | rule | signal |
//! |------|------|--------|
//! | `OW-HEALTH-201` | `shard_queue_saturation` | per-shard queued-record high-watermark near capacity |
//! | `OW-HEALTH-202` | `backpressure_drops` | any record dropped by backpressure |
//! | `OW-HEALTH-203` | `recovery_slo_burn` | recovery-latency SLO burn rate above budget |
//! | `OW-HEALTH-204` | `escalation_storm` | switch-OS escalations per 1000 sessions above 50‰ (**critical**) |
//! | `OW-HEALTH-205` | `cr_retransmit_storm` | AFRs recovered by retransmission per 1000 announced above 150‰ |

use ow_obs::{Cmp, MetricSelector, Rule, RuleSet, Severity, Signal};

/// Queued-record capacity the saturation rule judges peaks against.
/// The default is far above anything the in-tree scenarios enqueue —
/// saturating a shard queue is exceptional by construction — and
/// callers with small bounded queues pass their real capacity.
pub const DEFAULT_SHARD_QUEUE_CAPACITY: u64 = 1 << 20;

/// Saturation threshold (‰ of capacity) for `OW-HEALTH-201`.
pub const QUEUE_SATURATION_PERMILLE: u64 = 800;

/// Recovery SLO deadline (virtual ns) for the burn-rate rule: normal
/// lossy recovery lands well under 1ms, switch-OS escalation rounds
/// (tens of ms of control-plane reads) blow past it.
pub const RECOVERY_SLO_DEADLINE_NS: u64 = 1_000_000;

/// Error budget (‰ of sessions allowed past the deadline) for
/// `OW-HEALTH-203`.
pub const RECOVERY_SLO_BUDGET_PERMILLE: u64 = 50;

/// Escalation-storm threshold (‰ of sessions escalating to switch-OS
/// reads) for the critical `OW-HEALTH-204`.
pub const ESCALATION_STORM_PERMILLE: u64 = 50;

/// Retransmit-storm threshold (‰ of announced AFRs recovered through
/// the §8 retransmission loop) for `OW-HEALTH-205`: the loop holds
/// this near the loss rate, so 150‰ separates heavy loss (30%) from
/// the 10% steady state.
pub const CR_RETRANSMIT_STORM_PERMILLE: u64 = 150;

/// The controller rule catalog (`OW-HEALTH-2xx`) with an explicit
/// shard-queue capacity.
pub fn controller_health_rules_with_capacity(queue_capacity: u64) -> RuleSet {
    RuleSet::new(vec![
        Rule::new(
            "OW-HEALTH-201",
            "shard_queue_saturation",
            MetricSelector::new("ow_controller_shard_queue_records", &[]),
            Signal::SaturationPermille {
                capacity: queue_capacity,
            },
            Cmp::Above,
            QUEUE_SATURATION_PERMILLE,
            Severity::Warning,
        )
        .group_by("shard")
        .entity("shard"),
        Rule::new(
            "OW-HEALTH-202",
            "backpressure_drops",
            MetricSelector::new("ow_controller_backpressure_dropped_total", &[]),
            Signal::Value,
            Cmp::Above,
            0,
            Severity::Warning,
        )
        .entity("controller"),
        Rule::new(
            "OW-HEALTH-203",
            "recovery_slo_burn",
            MetricSelector::new("ow_controller_cr_phase_duration", &[("phase", "recovery")]),
            Signal::BurnRatePermille {
                deadline_ns: RECOVERY_SLO_DEADLINE_NS,
                budget_permille: RECOVERY_SLO_BUDGET_PERMILLE,
            },
            Cmp::Above,
            1000,
            Severity::Warning,
        )
        .entity("controller"),
        Rule::new(
            "OW-HEALTH-204",
            "escalation_storm",
            MetricSelector::new("ow_controller_escalations_total", &[]),
            Signal::RatioPermille {
                denominator: MetricSelector::new("ow_controller_sessions_total", &[]),
            },
            Cmp::Above,
            ESCALATION_STORM_PERMILLE,
            Severity::Critical,
        )
        .entity("controller"),
        Rule::new(
            "OW-HEALTH-205",
            "cr_retransmit_storm",
            MetricSelector::new("ow_controller_afr_recovered_total", &[]),
            Signal::RatioPermille {
                denominator: MetricSelector::new("ow_controller_afr_announced_total", &[]),
            },
            Cmp::Above,
            CR_RETRANSMIT_STORM_PERMILLE,
            Severity::Warning,
        )
        .entity("controller"),
    ])
    .expect("controller rule catalog validates")
}

/// The controller rule catalog with [`DEFAULT_SHARD_QUEUE_CAPACITY`].
pub fn controller_health_rules() -> RuleSet {
    controller_health_rules_with_capacity(DEFAULT_SHARD_QUEUE_CAPACITY)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ow_obs::{FlightRecorderConfig, HealthSample, MetricSnapshot, Obs, PeakSample};

    fn metric(name: &str, labels: &[(&str, &str)], value: u64) -> MetricSnapshot {
        MetricSnapshot {
            name: name.into(),
            labels: labels
                .iter()
                .map(|(k, v)| (k.to_string(), v.to_string()))
                .collect(),
            kind: "counter".into(),
            value,
            histogram: None,
        }
    }

    #[test]
    fn catalog_validates_and_merges_with_the_switch_catalog() {
        let merged = RuleSet::merged(vec![
            controller_health_rules(),
            ow_switch::health::switch_health_rules(),
        ])
        .expect("cross-catalog codes stay unique");
        assert_eq!(merged.rules().len(), 8);
    }

    #[test]
    fn queue_saturation_judges_the_peak_not_the_drained_value() {
        let obs = Obs::new();
        let engine = obs.install_health(
            controller_health_rules_with_capacity(100),
            FlightRecorderConfig::default(),
        );
        // Queue spiked to 90 records mid-window but drained to 0 by
        // the sample: the instantaneous gauge hides it, the
        // high-watermark does not (900‰ of a 100-record capacity).
        let fired = engine.tick_with_sample(HealthSample {
            at_ns: 1_000,
            metrics: vec![metric(
                "ow_controller_shard_queue_records",
                &[("shard", "2")],
                0,
            )],
            peaks: vec![PeakSample {
                name: "ow_controller_shard_queue_records".into(),
                labels: vec![("shard".into(), "2".into())],
                peak: 90,
            }],
        });
        assert_eq!(fired.len(), 1);
        assert_eq!(fired[0].code, "OW-HEALTH-201");
        assert_eq!(fired[0].entity, "shard:2");
        assert_eq!(fired[0].value, 900);
    }

    #[test]
    fn escalation_storm_is_critical_and_freezes_the_black_box() {
        let obs = Obs::new();
        let engine = obs.install_health(controller_health_rules(), FlightRecorderConfig::default());
        // 1 escalation per 100 sessions = 10‰: within tolerance.
        engine.tick_with_sample(HealthSample {
            at_ns: 1_000,
            metrics: vec![
                metric("ow_controller_escalations_total", &[], 1),
                metric("ow_controller_sessions_total", &[], 100),
            ],
            peaks: vec![],
        });
        assert!(!engine.frozen());
        // 10 per 100 = 100‰: a storm — critical, so the recorder
        // freezes with the rule in the reason line.
        let fired = engine.tick_with_sample(HealthSample {
            at_ns: 2_000,
            metrics: vec![
                metric("ow_controller_escalations_total", &[], 10),
                metric("ow_controller_sessions_total", &[], 100),
            ],
            peaks: vec![],
        });
        assert_eq!(fired.len(), 1);
        assert_eq!(fired[0].severity, "critical");
        assert!(engine.frozen());
        let dump = engine.flight_dump("unit").expect("critical froze the box");
        assert!(dump.freeze_reason.contains("OW-HEALTH-204"));
    }

    #[test]
    fn recovery_burn_fires_when_escalated_sessions_blow_the_deadline() {
        use ow_common::time::Duration;
        let obs = Obs::new();
        let engine = obs.install_health(controller_health_rules(), FlightRecorderConfig::default());
        let hist = obs.histogram("ow_controller_cr_phase_duration", &[("phase", "recovery")]);
        // 19 fast recoveries (~100µs) + 1 escalated one (40ms): 5% of
        // sessions past the 1ms deadline against a 5% budget — at the
        // edge, not over. Ten escalations (~34%) burn 6.9× the budget.
        for _ in 0..19 {
            hist.record(Duration::from_micros(100));
        }
        hist.record(Duration::from_millis(40));
        let edge = engine.tick(ow_common::time::Instant(1_000_000));
        assert!(edge.iter().all(|a| a.code != "OW-HEALTH-203"), "{edge:?}");
        for _ in 0..9 {
            hist.record(Duration::from_millis(40));
        }
        let fired = engine.tick(ow_common::time::Instant(2_000_000));
        assert_eq!(fired.len(), 1);
        assert_eq!(fired[0].code, "OW-HEALTH-203");
        assert!(
            fired[0].value > 1000,
            "burn {} must exceed budget",
            fired[0].value
        );
    }
}
