//! Pipeline stage placement — deriving Table 2's stage packing.
//!
//! An RMT program is a sequence of match-action *steps*; the compiler
//! assigns steps to physical stages respecting (a) dependency order —
//! a step can share a stage with steps of other features but must come
//! at or after its own feature's previous step — and (b) per-stage
//! resource limits (SRAM, SALUs, VLIW slots, gateways). This module
//! implements that placement two ways, so the "Total stages" row of
//! the resource report is *computed* from the feature steps rather
//! than asserted:
//!
//! * [`place`] — the original greedy first-fit packer. Fast, but a
//!   fixed feature order with no backtracking: it can fragment scarce
//!   resources (SALUs especially) and reject programs that fit.
//! * [`place_optimal`] — dependency-aware branch-and-bound over stage
//!   assignments. It takes an explicit [`DepGraph`] (intra-feature
//!   precedence chains plus cross-feature register-conflict edges
//!   supplied by the caller), seeds the search with the greedy
//!   solution as the incumbent so it is **never worse than greedy**,
//!   and explores alternative assignments under a deterministic
//!   node-count [`SearchBudget`]. On failure it returns a structured
//!   [`PlacementError`] naming the feature, step, and binding
//!   [`ResourceClass`], and whether infeasibility was *proven*
//!   (exhaustive search / lower bound) or the budget ran out.
//!
//! A successful [`Placement`] can report its [`PackingDensity`] — the
//! per-stage utilisation permille of each resource class across the
//! stages actually used — which is the admission-control currency of
//! the multi-tenant control plane: denser packing is more tenants.
//!
//! Tofino-like per-stage limits (per the public RMT literature the paper
//! cites): 12 stages; tens of KB–MB SRAM per stage; fewer than 8 SALUs
//! per stage; bounded VLIW actions and gateways.

use serde::Serialize;

use ow_common::error::OwError;

/// One match-action step of a feature (occupies part of one stage).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct Step {
    /// SRAM the step's tables/registers need in this stage (KB).
    pub sram_kb: u32,
    /// SALUs the step uses in this stage.
    pub salus: u32,
    /// VLIW action slots.
    pub vliw: u32,
    /// Gateways (predication units).
    pub gateways: u32,
}

/// Per-stage capacity of the modelled pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct StageLimits {
    /// Physical stages in the pipeline.
    pub stages: u32,
    /// SRAM per stage (KB).
    pub sram_kb: u32,
    /// SALUs per stage (the paper: "less than eight").
    pub salus: u32,
    /// VLIW slots per stage.
    pub vliw: u32,
    /// Gateways per stage.
    pub gateways: u32,
}

impl Default for StageLimits {
    fn default() -> Self {
        StageLimits {
            stages: 12,
            sram_kb: 1_280,
            salus: 4,
            vliw: 8,
            gateways: 8,
        }
    }
}

/// A named feature: an ordered list of steps.
#[derive(Debug, Clone, Serialize)]
pub struct Feature {
    /// Feature name.
    pub name: String,
    /// Its steps, in dependency order.
    pub steps: Vec<Step>,
}

impl Feature {
    /// Build a feature from a name and its steps in dependency order.
    pub fn new(name: impl Into<String>, steps: Vec<Step>) -> Feature {
        Feature {
            name: name.into(),
            steps,
        }
    }
}

/// The result of placing features onto the pipeline.
#[derive(Debug, Clone, Serialize)]
pub struct Placement {
    /// For each feature, the stage index of each of its steps.
    pub assignments: Vec<(String, Vec<u32>)>,
    /// Number of stages actually used.
    pub stages_used: u32,
    /// Residual capacity per used stage.
    pub residual: Vec<StageLimits>,
    /// How the placement was produced: `"greedy"` (first-fit),
    /// `"greedy-incumbent"` (search kept the greedy solution), or
    /// `"branch-and-bound"` (search improved on greedy or placed a
    /// program greedy rejected).
    pub method: &'static str,
    /// Search nodes expanded producing this placement (0 for greedy).
    pub nodes_explored: u64,
    /// Whether the search ran to completion within its budget, proving
    /// `stages_used` minimal for the dependency model. `false` for bare
    /// greedy and for budget-exhausted searches.
    pub optimal: bool,
}

impl Placement {
    /// Packing density of this placement against `limits`: utilisation
    /// permille of every resource class across the stages actually
    /// used. An empty placement reports zero density.
    pub fn density(&self, limits: StageLimits) -> PackingDensity {
        let used_stages = self.stages_used as u64;
        let spent = |get: fn(&StageLimits) -> u32| -> u64 {
            self.residual
                .iter()
                .map(|r| (get(&limits) - get(r)) as u64)
                .sum()
        };
        let permille = |spent: u64, cap: u32| -> u32 {
            (spent * 1000)
                .checked_div(used_stages * cap as u64)
                .unwrap_or(0) as u32
        };
        PackingDensity {
            stages_used: self.stages_used,
            stages_limit: limits.stages,
            sram_permille: permille(spent(|l| l.sram_kb), limits.sram_kb),
            salu_permille: permille(spent(|l| l.salus), limits.salus),
            vliw_permille: permille(spent(|l| l.vliw), limits.vliw),
            gateway_permille: permille(spent(|l| l.gateways), limits.gateways),
        }
    }
}

/// Per-stage utilisation of a [`Placement`], in permille of each
/// resource class's capacity across the stages actually used. This is
/// the packing-density metric `ow-lint` emits into the verify table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct PackingDensity {
    /// Stages the placement occupies.
    pub stages_used: u32,
    /// Physical stages available.
    pub stages_limit: u32,
    /// SRAM utilisation across used stages (permille).
    pub sram_permille: u32,
    /// SALU utilisation across used stages (permille).
    pub salu_permille: u32,
    /// VLIW-slot utilisation across used stages (permille).
    pub vliw_permille: u32,
    /// Gateway utilisation across used stages (permille).
    pub gateway_permille: u32,
}

/// Greedy first-fit placement with dependency order.
///
/// Every feature's step `i+1` is placed at a stage ≥ the stage of step
/// `i` + 1 (stateful dependencies serialise within a feature), while
/// different features pack into the same stages when capacity allows —
/// which is exactly why Table 2's total (8 stages) is below the sum of
/// the per-feature stage counts (16).
pub fn place(features: &[Feature], limits: StageLimits) -> Result<Placement, OwError> {
    let n = limits.stages as usize;
    let mut free: Vec<StageLimits> = vec![limits; n];
    let mut assignments = Vec::with_capacity(features.len());
    let mut stages_used = 0u32;

    for feature in features {
        let mut stage_of_steps = Vec::with_capacity(feature.steps.len());
        let mut next_stage = 0usize;
        for (i, step) in feature.steps.iter().enumerate() {
            let placed = free
                .iter()
                .enumerate()
                .skip(next_stage)
                .find(|(_, f)| {
                    f.sram_kb >= step.sram_kb
                        && f.salus >= step.salus
                        && f.vliw >= step.vliw
                        && f.gateways >= step.gateways
                })
                .map(|(s, _)| s);
            let s = placed.ok_or_else(|| {
                OwError::ResourceExhausted(format!(
                    "feature '{}' step {} does not fit in {} stages",
                    feature.name, i, n
                ))
            })?;
            let f = &mut free[s];
            f.sram_kb -= step.sram_kb;
            f.salus -= step.salus;
            f.vliw -= step.vliw;
            f.gateways -= step.gateways;
            stage_of_steps.push(s as u32);
            stages_used = stages_used.max(s as u32 + 1);
            next_stage = s + 1; // dependency: next step strictly later
        }
        assignments.push((feature.name.clone(), stage_of_steps));
    }

    Ok(Placement {
        assignments,
        stages_used,
        residual: free.into_iter().take(stages_used as usize).collect(),
        method: "greedy",
        nodes_explored: 0,
        optimal: false,
    })
}

/// Identifies one step globally as `(feature index, step index)`.
pub type StepRef = (usize, usize);

/// The resource class that binds a placement decision. `Stages` covers
/// dependency-chain exhaustion (no stage late enough exists at all).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum ResourceClass {
    /// Physical stage count / dependency depth.
    Stages,
    /// Per-stage SRAM (KB).
    Sram,
    /// Per-stage SALUs.
    Salu,
    /// Per-stage VLIW action slots.
    Vliw,
    /// Per-stage gateways.
    Gateway,
}

impl ResourceClass {
    /// Stable lowercase name used in diagnostics.
    pub fn as_str(&self) -> &'static str {
        match self {
            ResourceClass::Stages => "stages",
            ResourceClass::Sram => "sram",
            ResourceClass::Salu => "salu",
            ResourceClass::Vliw => "vliw",
            ResourceClass::Gateway => "gateway",
        }
    }
}

impl core::fmt::Display for ResourceClass {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Deterministic budget for [`place_optimal`]: the search stops after
/// expanding `max_nodes` nodes and keeps the best incumbent found.
/// Counting nodes (not wall-clock) keeps the output byte-identical
/// across machines and runs — the CI determinism gate relies on it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SearchBudget {
    /// Maximum branch-and-bound nodes to expand.
    pub max_nodes: u64,
}

impl Default for SearchBudget {
    fn default() -> Self {
        // Large enough to prove optimality for every catalog program,
        // small enough that `ow-lint` over the full catalog stays well
        // under a second in CI.
        SearchBudget { max_nodes: 200_000 }
    }
}

/// Why [`place_optimal`] could not place a program.
#[derive(Debug, Clone)]
pub struct PlacementError {
    /// Feature whose step hit the dead end deepest into the search.
    pub feature: String,
    /// Step index within that feature.
    pub step: usize,
    /// The resource class that blocked the most candidate stages for
    /// that step.
    pub resource: ResourceClass,
    /// `true` when infeasibility is proven (a lower bound exceeds the
    /// stage count, or the search exhausted the whole tree within
    /// budget); `false` when the budget ran out first.
    pub proven: bool,
    /// Human-readable proof / progress detail.
    pub detail: String,
}

impl core::fmt::Display for PlacementError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "feature '{}' step {} cannot be placed ({} exhausted; {}): {}",
            self.feature,
            self.step,
            self.resource,
            if self.proven {
                "infeasibility proven"
            } else {
                "search budget exhausted"
            },
            self.detail
        )
    }
}

impl From<PlacementError> for OwError {
    fn from(e: PlacementError) -> OwError {
        OwError::ResourceExhausted(e.to_string())
    }
}

/// The explicit step-dependency graph [`place_optimal`] searches over.
///
/// Nodes are global step ids in feature-major order (feature 0 step 0,
/// feature 0 step 1, …). Two edge kinds:
///
/// * **strict** — intra-feature precedence: step `i+1` of a feature
///   must land in a strictly later stage than step `i` (stateful
///   dependencies serialise). These are hard constraints.
/// * **conflict** — cross-feature register-conflict edges supplied by
///   the caller (`ow-verify` derives them from the order a path's
///   access sequence touches the SALU steps serving shared register
///   arrays). They steer the branching order — higher-conflict steps
///   are placed earlier, where backtracking is cheap — without
///   shrinking the feasible set, so search stays strictly more
///   permissive than greedy.
#[derive(Debug, Clone)]
pub struct DepGraph {
    /// Global step count.
    pub steps: usize,
    /// Strict intra-feature precedence edges `(a, b)`: `stage(a) < stage(b)`.
    pub strict: Vec<(usize, usize)>,
    /// Cross-feature conflict edges (search guidance, not constraints).
    pub conflicts: Vec<(usize, usize)>,
}

impl DepGraph {
    /// Build the graph for `features`, folding in cross-feature
    /// `conflicts` given as `(feature, step)` pairs. Conflict edges
    /// referencing out-of-range steps are ignored; intra-feature
    /// conflict edges are dropped (the strict chain already orders
    /// them).
    pub fn build(features: &[Feature], conflicts: &[(StepRef, StepRef)]) -> DepGraph {
        let offsets: Vec<usize> = features
            .iter()
            .scan(0usize, |acc, f| {
                let o = *acc;
                *acc += f.steps.len();
                Some(o)
            })
            .collect();
        let steps: usize = features.iter().map(|f| f.steps.len()).sum();
        let mut strict = Vec::new();
        for (fi, f) in features.iter().enumerate() {
            for s in 1..f.steps.len() {
                strict.push((offsets[fi] + s - 1, offsets[fi] + s));
            }
        }
        let gid = |(fi, si): StepRef| -> Option<usize> {
            features
                .get(fi)
                .filter(|f| si < f.steps.len())
                .map(|_| offsets[fi] + si)
        };
        let mut edges: Vec<(usize, usize)> = conflicts
            .iter()
            .filter(|((fa, _), (fb, _))| fa != fb)
            .filter_map(|&(a, b)| Some((gid(a)?, gid(b)?)))
            .collect();
        edges.sort_unstable();
        edges.dedup();
        DepGraph {
            steps,
            strict,
            conflicts: edges,
        }
    }

    /// Number of conflict edges touching each step.
    pub fn conflict_degree(&self) -> Vec<u32> {
        let mut deg = vec![0u32; self.steps];
        for &(a, b) in &self.conflicts {
            deg[a] += 1;
            deg[b] += 1;
        }
        deg
    }
}

/// One flattened step with its search metadata.
struct FlatStep {
    feature: usize,
    pos: usize,
    step: Step,
    /// Steps after this one in its feature's chain.
    chain_rem: u32,
}

fn fits(free: &StageLimits, s: &Step) -> bool {
    free.sram_kb >= s.sram_kb
        && free.salus >= s.salus
        && free.vliw >= s.vliw
        && free.gateways >= s.gateways
}

fn consume(free: &mut StageLimits, s: &Step) {
    free.sram_kb -= s.sram_kb;
    free.salus -= s.salus;
    free.vliw -= s.vliw;
    free.gateways -= s.gateways;
}

fn release(free: &mut StageLimits, s: &Step) {
    free.sram_kb += s.sram_kb;
    free.salus += s.salus;
    free.vliw += s.vliw;
    free.gateways += s.gateways;
}

/// Mutable state of one branch-and-bound run.
struct Search<'a> {
    flat: &'a [FlatStep],
    order: &'a [usize],
    n_stages: usize,
    free: Vec<StageLimits>,
    stage_of: Vec<u32>,
    /// Best complete assignment found so far (stage per global step).
    best: Option<Vec<u32>>,
    /// Stage count of the incumbent (greedy or best-found); solutions
    /// must beat it strictly.
    best_cost: u32,
    nodes: u64,
    max_nodes: u64,
    exhausted: bool,
    /// Deepest dead end seen: (depth, global step id, binding class).
    deepest_fail: Option<(usize, usize, ResourceClass)>,
}

impl Search<'_> {
    /// DFS over stage choices for `order[i..]`. `cur_used` is the
    /// stage count implied by the steps assigned so far.
    fn dfs(&mut self, i: usize, cur_used: u32) {
        if self.exhausted {
            return;
        }
        if i == self.order.len() {
            // Pruning guarantees cur_used < best_cost here.
            self.best = Some(self.stage_of.clone());
            self.best_cost = cur_used;
            return;
        }
        let sid = self.order[i];
        let st = &self.flat[sid];
        let earliest = if st.pos == 0 {
            0
        } else {
            self.stage_of[sid - 1] as usize + 1
        };
        let mut any = false;
        // Track, per resource class, how many candidate stages it
        // blocked — the dead-end diagnostic names the dominant one.
        let mut blocked = [0u32; 4]; // sram, salu, vliw, gateway
        for s in earliest..self.n_stages {
            // Cost bound: placing at stage s forces this feature's
            // remaining chain to end at stage ≥ s + chain_rem, so the
            // final count is ≥ max(cur_used, s + chain_rem + 1). The
            // bound grows with s — once it reaches the incumbent, no
            // later stage can improve either.
            let projected = cur_used.max(s as u32 + st.chain_rem + 1);
            if projected >= self.best_cost {
                break;
            }
            if !fits(&self.free[s], &st.step) {
                let f = &self.free[s];
                if f.sram_kb < st.step.sram_kb {
                    blocked[0] += 1;
                } else if f.salus < st.step.salus {
                    blocked[1] += 1;
                } else if f.vliw < st.step.vliw {
                    blocked[2] += 1;
                } else {
                    blocked[3] += 1;
                }
                continue;
            }
            any = true;
            self.nodes += 1;
            if self.nodes > self.max_nodes {
                self.exhausted = true;
                return;
            }
            consume(&mut self.free[s], &st.step);
            self.stage_of[sid] = s as u32;
            self.dfs(i + 1, cur_used.max(s as u32 + 1));
            self.stage_of[sid] = u32::MAX;
            release(&mut self.free[s], &st.step);
            if self.exhausted {
                return;
            }
        }
        if !any {
            let class = if blocked.iter().all(|&b| b == 0) {
                // No candidate stage existed at all: the dependency
                // chain (or the incumbent bound) left no room.
                ResourceClass::Stages
            } else {
                let idx = blocked
                    .iter()
                    .enumerate()
                    .max_by_key(|&(i, &b)| (b, usize::MAX - i))
                    .map(|(i, _)| i)
                    .unwrap_or(0);
                [
                    ResourceClass::Sram,
                    ResourceClass::Salu,
                    ResourceClass::Vliw,
                    ResourceClass::Gateway,
                ][idx]
            };
            match self.deepest_fail {
                Some((d, _, _)) if d >= i => {}
                _ => self.deepest_fail = Some((i, sid, class)),
            }
        }
    }
}

/// Dependency-aware branch-and-bound stage placement.
///
/// Searches stage assignments for every step of `features`, honouring
/// intra-feature precedence and per-stage capacity, and minimising the
/// number of stages used. The greedy [`place`] solution (when one
/// exists) seeds the incumbent, so the result **never uses more stages
/// than greedy**; when greedy fails, the search still explores the
/// full assignment space and admits any program that fits — strictly
/// more permissive than first-fit. `conflicts` are cross-feature
/// register-conflict edges (see [`DepGraph`]); they order the
/// branching, not the feasible set. The node-count `budget` makes the
/// search — and therefore every diagnostic and density figure derived
/// from it — deterministic.
pub fn place_optimal(
    features: &[Feature],
    limits: StageLimits,
    conflicts: &[(StepRef, StepRef)],
    budget: SearchBudget,
) -> Result<Placement, PlacementError> {
    let n_stages = limits.stages as usize;
    let total_steps: usize = features.iter().map(|f| f.steps.len()).sum();
    if total_steps == 0 {
        return Ok(Placement {
            assignments: features.iter().map(|f| (f.name.clone(), vec![])).collect(),
            stages_used: 0,
            residual: vec![],
            method: "branch-and-bound",
            nodes_explored: 0,
            optimal: true,
        });
    }

    // --- Fast infeasibility proofs (lower bounds) ------------------
    for f in features {
        if f.steps.len() > n_stages {
            return Err(PlacementError {
                feature: f.name.clone(),
                step: n_stages.min(f.steps.len().saturating_sub(1)),
                resource: ResourceClass::Stages,
                proven: true,
                detail: format!(
                    "a {}-step dependency chain cannot serialise through {} stages",
                    f.steps.len(),
                    n_stages
                ),
            });
        }
        for (si, s) in f.steps.iter().enumerate() {
            let class = if s.sram_kb > limits.sram_kb {
                Some(ResourceClass::Sram)
            } else if s.salus > limits.salus {
                Some(ResourceClass::Salu)
            } else if s.vliw > limits.vliw {
                Some(ResourceClass::Vliw)
            } else if s.gateways > limits.gateways {
                Some(ResourceClass::Gateway)
            } else {
                None
            };
            if let Some(resource) = class {
                return Err(PlacementError {
                    feature: f.name.clone(),
                    step: si,
                    resource,
                    proven: true,
                    detail: format!("the step alone exceeds a whole stage's {resource} budget"),
                });
            }
        }
    }
    let totals = features.iter().flat_map(|f| f.steps.iter()).fold(
        (0u64, 0u64, 0u64, 0u64),
        |(a, b, c, d), s| {
            (
                a + s.sram_kb as u64,
                b + s.salus as u64,
                c + s.vliw as u64,
                d + s.gateways as u64,
            )
        },
    );
    for (total, cap, resource) in [
        (totals.0, limits.sram_kb, ResourceClass::Sram),
        (totals.1, limits.salus, ResourceClass::Salu),
        (totals.2, limits.vliw, ResourceClass::Vliw),
        (totals.3, limits.gateways, ResourceClass::Gateway),
    ] {
        let need = if cap == 0 {
            if total > 0 {
                u64::MAX
            } else {
                0
            }
        } else {
            total.div_ceil(cap as u64)
        };
        if need > n_stages as u64 {
            return Err(PlacementError {
                feature: features[0].name.clone(),
                step: 0,
                resource,
                proven: true,
                detail: format!(
                    "whole-program demand needs ≥ {need} stages of {resource} but the \
                     pipeline has {n_stages}"
                ),
            });
        }
    }

    // --- Flatten + branching order ---------------------------------
    let mut flat: Vec<FlatStep> = Vec::with_capacity(total_steps);
    for (fi, f) in features.iter().enumerate() {
        for (si, s) in f.steps.iter().enumerate() {
            flat.push(FlatStep {
                feature: fi,
                pos: si,
                step: *s,
                chain_rem: (f.steps.len() - 1 - si) as u32,
            });
        }
    }
    let graph = DepGraph::build(features, conflicts);
    let degree = graph.conflict_degree();
    // Longest-chain-first (critical path), then conflict degree, then
    // resource weight. Within a feature `chain_rem` strictly decreases
    // with position, so every step sorts after its predecessor and the
    // order is automatically precedence-compatible.
    let mut order: Vec<usize> = (0..total_steps).collect();
    order.sort_by_key(|&i| {
        let st = &flat[i];
        (
            core::cmp::Reverse(st.chain_rem),
            core::cmp::Reverse(degree[i]),
            core::cmp::Reverse(st.step.salus),
            core::cmp::Reverse(st.step.sram_kb),
            st.feature,
            st.pos,
        )
    });

    // --- Incumbent -------------------------------------------------
    let greedy = place(features, limits).ok();
    let best_cost = greedy
        .as_ref()
        .map(|g| g.stages_used)
        .unwrap_or(limits.stages + 1);

    let mut search = Search {
        flat: &flat,
        order: &order,
        n_stages,
        free: vec![limits; n_stages],
        stage_of: vec![u32::MAX; total_steps],
        best: None,
        best_cost,
        nodes: 0,
        max_nodes: budget.max_nodes,
        exhausted: false,
        deepest_fail: None,
    };
    search.dfs(0, 0);

    let nodes = search.nodes;
    let complete = !search.exhausted;
    if let Some(stage_of) = search.best {
        return Ok(build_placement(
            features,
            limits,
            &stage_of,
            "branch-and-bound",
            nodes,
            complete,
        ));
    }
    if let Some(mut g) = greedy {
        // Search found nothing better (or ran out of budget): the
        // greedy incumbent stands, now annotated with what the search
        // proved about it.
        g.method = "greedy-incumbent";
        g.nodes_explored = nodes;
        g.optimal = complete;
        return Ok(g);
    }
    let (_, sid, resource) = search
        .deepest_fail
        .unwrap_or((0, order[0], ResourceClass::Stages));
    let st = &flat[sid];
    Err(PlacementError {
        feature: features[st.feature].name.clone(),
        step: st.pos,
        resource,
        proven: complete,
        detail: format!(
            "explored {nodes} nodes over {total_steps} steps × {n_stages} stages \
             without a feasible assignment"
        ),
    })
}

/// Assemble a [`Placement`] from a complete per-step stage assignment.
fn build_placement(
    features: &[Feature],
    limits: StageLimits,
    stage_of: &[u32],
    method: &'static str,
    nodes_explored: u64,
    optimal: bool,
) -> Placement {
    let mut free = vec![limits; limits.stages as usize];
    let mut assignments = Vec::with_capacity(features.len());
    let mut stages_used = 0u32;
    let mut gid = 0usize;
    for f in features {
        let mut stages = Vec::with_capacity(f.steps.len());
        for s in &f.steps {
            let stage = stage_of[gid];
            consume(&mut free[stage as usize], s);
            stages_used = stages_used.max(stage + 1);
            stages.push(stage);
            gid += 1;
        }
        assignments.push((f.name.clone(), stages));
    }
    Placement {
        assignments,
        stages_used,
        residual: free.into_iter().take(stages_used as usize).collect(),
        method,
        nodes_explored,
        optimal,
    }
}

/// The OmniWindow feature steps of the Exp#5 build (Q1 configuration):
/// the same per-feature totals as the resource report's rows, broken
/// into the per-stage steps the P4 program serialises.
pub fn omniwindow_features(fk_sram_kb: u32, bloom_hashes: u32, rdma_sram_kb: u32) -> Vec<Feature> {
    let mut features = vec![
        Feature {
            name: "Signal".into(),
            steps: vec![Step {
                sram_kb: 32,
                salus: 1,
                vliw: 3,
                gateways: 2,
            }],
        },
        Feature {
            name: "Consistency model".into(),
            steps: vec![Step {
                sram_kb: 0,
                salus: 0,
                vliw: 2,
                gateways: 1,
            }],
        },
        Feature {
            name: "Address location".into(),
            steps: vec![Step {
                sram_kb: 16,
                salus: 0,
                vliw: 2,
                gateways: 0,
            }],
        },
    ];
    // Flowkey tracking: one step per Bloom hash (each reads/writes one
    // register array) plus the fk_buffer append step carrying the SRAM.
    let mut fk_steps: Vec<Step> = (0..bloom_hashes)
        .map(|_| Step {
            sram_kb: fk_sram_kb / (bloom_hashes + 1),
            salus: 1,
            vliw: 2,
            gateways: 2,
        })
        .collect();
    fk_steps.push(Step {
        sram_kb: fk_sram_kb - (fk_sram_kb / (bloom_hashes + 1)) * bloom_hashes,
        salus: 1,
        vliw: 1,
        gateways: 1,
    });
    features.push(Feature {
        name: "Flowkey tracking".into(),
        steps: fk_steps,
    });
    features.push(Feature {
        name: "AFR generation".into(),
        steps: vec![Step {
            sram_kb: 0,
            salus: 0,
            vliw: 4,
            gateways: 3,
        }],
    });
    features.push(Feature {
        name: "RDMA opt.".into(),
        steps: vec![
            Step {
                sram_kb: rdma_sram_kb,
                salus: 0,
                vliw: 4,
                gateways: 3,
            }, // address MAT
            Step {
                sram_kb: 0,
                salus: 1,
                vliw: 4,
                gateways: 3,
            }, // PSN counter
            Step {
                sram_kb: 0,
                salus: 1,
                vliw: 4,
                gateways: 3,
            }, // ICRC state
            Step {
                sram_kb: 0,
                salus: 0,
                vliw: 4,
                gateways: 2,
            }, // header build
            Step {
                sram_kb: 0,
                salus: 0,
                vliw: 4,
                gateways: 2,
            }, // header build
        ],
    });
    features.push(Feature {
        name: "In-switch reset".into(),
        steps: vec![
            Step {
                sram_kb: 32,
                salus: 1,
                vliw: 2,
                gateways: 2,
            }, // reset_counter
            Step {
                sram_kb: 0,
                salus: 0,
                vliw: 2,
                gateways: 2,
            }, // index rewrite
            Step {
                sram_kb: 0,
                salus: 0,
                vliw: 1,
                gateways: 1,
            }, // drop/recirc select
        ],
    });
    features
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exp5_build_packs_into_at_most_eight_stages() {
        // The Exp#5 configuration (624 KB flowkey SRAM, 3 Bloom hashes,
        // 928 KB address MAT) packs into at most 8 of the 12 stages —
        // the paper's measured total — because features share stages.
        // The greedy packer is a *lower bound* on the measured build
        // (which also shares the pipeline with Q1 + switch.p4 and their
        // cross-table dependencies), so it may do slightly better.
        let features = omniwindow_features(624, 3, 928);
        let placement = place(&features, StageLimits::default()).expect("fits");
        assert!(
            (6..=8).contains(&placement.stages_used),
            "stages {} — {:?}",
            placement.stages_used,
            placement.assignments
        );
        // Per-feature stage counts sum to 16 — sharing saves half.
        let step_stages: usize = features.iter().map(|f| f.steps.len()).sum();
        assert_eq!(step_stages, 16);
        assert!(placement.stages_used as usize <= step_stages / 2);
    }

    #[test]
    fn dependencies_are_serialised() {
        let features = omniwindow_features(624, 3, 928);
        let placement = place(&features, StageLimits::default()).unwrap();
        for (name, stages) in &placement.assignments {
            for w in stages.windows(2) {
                assert!(w[1] > w[0], "{name}: steps out of order: {stages:?}");
            }
        }
    }

    #[test]
    fn capacity_is_respected() {
        let features = omniwindow_features(624, 3, 928);
        let limits = StageLimits::default();
        let placement = place(&features, limits).unwrap();
        for (s, residual) in placement.residual.iter().enumerate() {
            assert!(residual.salus <= limits.salus, "stage {s}");
            assert!(residual.sram_kb <= limits.sram_kb, "stage {s}");
        }
        // SALUs used overall = 8 (the Table 2 total).
        let used_salus: u32 = placement
            .residual
            .iter()
            .map(|r| limits.salus - r.salus)
            .sum();
        assert_eq!(used_salus, 8);
    }

    #[test]
    fn oversized_feature_is_rejected() {
        let features = vec![Feature {
            name: "huge".into(),
            steps: vec![
                Step {
                    sram_kb: 10_000, // exceeds any stage
                    salus: 1,
                    vliw: 1,
                    gateways: 1,
                };
                1
            ],
        }];
        assert!(place(&features, StageLimits::default()).is_err());
    }

    #[test]
    fn too_many_dependent_steps_rejected() {
        // 13 dependent steps cannot serialise through 12 stages.
        let features = vec![Feature {
            name: "deep".into(),
            steps: vec![
                Step {
                    sram_kb: 1,
                    salus: 0,
                    vliw: 1,
                    gateways: 0,
                };
                13
            ],
        }];
        assert!(place(&features, StageLimits::default()).is_err());
    }

    /// The regression shape of the optimizer: greedy burns the only
    /// SALU of stage 0 on the short feature and then cannot finish the
    /// chained feature; branch-and-bound reorders and fits.
    fn greedy_hostile_features() -> Vec<Feature> {
        vec![
            Feature::new(
                "short",
                vec![Step {
                    sram_kb: 8,
                    salus: 1,
                    vliw: 1,
                    gateways: 1,
                }],
            ),
            Feature::new(
                "chained",
                vec![
                    Step {
                        sram_kb: 8,
                        salus: 1,
                        vliw: 1,
                        gateways: 1,
                    },
                    Step {
                        sram_kb: 8,
                        salus: 1,
                        vliw: 1,
                        gateways: 1,
                    },
                    Step {
                        sram_kb: 0,
                        salus: 0,
                        vliw: 2,
                        gateways: 1,
                    },
                ],
            ),
        ]
    }

    fn tight_limits() -> StageLimits {
        StageLimits {
            stages: 3,
            sram_kb: 128,
            salus: 1,
            vliw: 4,
            gateways: 4,
        }
    }

    #[test]
    fn search_places_programs_greedy_rejects() {
        let features = greedy_hostile_features();
        let limits = tight_limits();
        assert!(place(&features, limits).is_err(), "greedy must reject");
        let p = place_optimal(&features, limits, &[], SearchBudget::default())
            .expect("branch-and-bound fits");
        assert_eq!(p.stages_used, 3);
        assert_eq!(p.method, "branch-and-bound");
        assert!(p.optimal, "the search space is tiny; must be proven");
        // Soundness: chains strictly increase, capacity respected.
        for (name, stages) in &p.assignments {
            for w in stages.windows(2) {
                assert!(w[1] > w[0], "{name}: {stages:?}");
            }
        }
        for r in &p.residual {
            assert!(r.salus <= limits.salus && r.vliw <= limits.vliw);
        }
    }

    #[test]
    fn search_never_uses_more_stages_than_greedy() {
        let features = omniwindow_features(624, 3, 928);
        let greedy = place(&features, StageLimits::default()).unwrap();
        let opt = place_optimal(
            &features,
            StageLimits::default(),
            &[],
            SearchBudget::default(),
        )
        .unwrap();
        assert!(opt.stages_used <= greedy.stages_used);
    }

    #[test]
    fn search_is_deterministic() {
        let features = omniwindow_features(624, 3, 928);
        let a = place_optimal(
            &features,
            StageLimits::default(),
            &[],
            SearchBudget::default(),
        )
        .unwrap();
        let b = place_optimal(
            &features,
            StageLimits::default(),
            &[],
            SearchBudget::default(),
        )
        .unwrap();
        assert_eq!(format!("{a:?}"), format!("{b:?}"));
    }

    #[test]
    fn exhausted_budget_keeps_the_greedy_incumbent() {
        let features = omniwindow_features(624, 3, 928);
        let greedy = place(&features, StageLimits::default()).unwrap();
        let p = place_optimal(
            &features,
            StageLimits::default(),
            &[],
            SearchBudget { max_nodes: 1 },
        )
        .expect("incumbent survives budget exhaustion");
        assert_eq!(p.stages_used, greedy.stages_used);
        assert!(!p.optimal, "one node proves nothing");
    }

    #[test]
    fn infeasibility_proof_names_feature_step_and_resource() {
        // Totals fit (2 SALUs ≤ 2 stages × 1, 4 VLIW ≤ 2 × 2) and every
        // step fits a bare stage, but the combination cannot pack: the
        // chained feature occupies both stages and leaves no SALU+VLIW
        // pair for the rider.
        let limits = StageLimits {
            stages: 2,
            sram_kb: 64,
            salus: 1,
            vliw: 2,
            gateways: 4,
        };
        let features = vec![
            Feature::new(
                "deep",
                vec![
                    Step {
                        sram_kb: 0,
                        salus: 1,
                        vliw: 1,
                        gateways: 1,
                    },
                    Step {
                        sram_kb: 0,
                        salus: 0,
                        vliw: 2,
                        gateways: 1,
                    },
                ],
            ),
            Feature::new(
                "rider",
                vec![Step {
                    sram_kb: 0,
                    salus: 1,
                    vliw: 1,
                    gateways: 1,
                }],
            ),
        ];
        let err = place_optimal(&features, limits, &[], SearchBudget::default()).unwrap_err();
        assert!(err.proven, "the tree is tiny; must be exhausted");
        assert!(err.feature == "deep" || err.feature == "rider", "{err}");
        assert!(
            matches!(err.resource, ResourceClass::Salu | ResourceClass::Vliw),
            "{err}"
        );
        let rendered = err.to_string();
        assert!(rendered.contains("infeasibility proven"), "{rendered}");
    }

    #[test]
    fn lower_bound_proof_names_the_scarce_resource() {
        // 13 single-SALU steps across features of length 1 cannot fit
        // 12 stages × 1 SALU: the totals bound proves it without search.
        let features: Vec<Feature> = (0..13)
            .map(|i| {
                Feature::new(
                    format!("f{i}"),
                    vec![Step {
                        sram_kb: 0,
                        salus: 1,
                        vliw: 1,
                        gateways: 0,
                    }],
                )
            })
            .collect();
        let limits = StageLimits {
            salus: 1,
            ..StageLimits::default()
        };
        let err = place_optimal(&features, limits, &[], SearchBudget::default()).unwrap_err();
        assert_eq!(err.resource, ResourceClass::Salu);
        assert!(err.proven);
        assert!(err.detail.contains("13 stages"), "{}", err.detail);
    }

    #[test]
    fn density_reports_permille_utilisation() {
        let features = greedy_hostile_features();
        let limits = tight_limits();
        let p = place_optimal(&features, limits, &[], SearchBudget::default()).unwrap();
        let d = p.density(limits);
        assert_eq!(d.stages_used, 3);
        assert_eq!(d.stages_limit, 3);
        // 3 SALUs over 3 stages of 1 → fully saturated.
        assert_eq!(d.salu_permille, 1000);
        // 5 VLIW slots over 3 stages of 4 → ⌊5000/12⌋ = 416 permille.
        assert_eq!(d.vliw_permille, 416);
        assert!(d.sram_permille <= 1000 && d.gateway_permille <= 1000);
    }

    #[test]
    fn conflict_edges_are_guidance_not_constraints() {
        // Even a deliberately backwards conflict edge (late step before
        // early) must not change feasibility or the optimal stage count.
        let features = greedy_hostile_features();
        let limits = tight_limits();
        let baseline = place_optimal(&features, limits, &[], SearchBudget::default()).unwrap();
        let steered = place_optimal(
            &features,
            limits,
            &[((1, 2), (0, 0)), ((0, 0), (1, 0))],
            SearchBudget::default(),
        )
        .unwrap();
        assert_eq!(baseline.stages_used, steered.stages_used);
    }

    #[test]
    fn depgraph_builds_strict_chains_and_dedups_conflicts() {
        let features = greedy_hostile_features();
        let g = DepGraph::build(
            &features,
            &[
                ((0, 0), (1, 1)),
                ((0, 0), (1, 1)), // duplicate
                ((1, 0), (1, 2)), // intra-feature: dropped
                ((0, 0), (9, 9)), // out of range: dropped
            ],
        );
        assert_eq!(g.steps, 4);
        assert_eq!(g.strict, vec![(1, 2), (2, 3)]);
        assert_eq!(g.conflicts, vec![(0, 2)]);
        assert_eq!(g.conflict_degree(), vec![1, 0, 1, 0]);
    }

    #[test]
    fn empty_feature_set_places_trivially() {
        let p = place_optimal(&[], StageLimits::default(), &[], SearchBudget::default()).unwrap();
        assert_eq!(p.stages_used, 0);
        assert!(p.optimal);
        assert_eq!(p.density(StageLimits::default()).salu_permille, 0);
    }

    #[test]
    fn tighter_salu_budget_spreads_stages() {
        // With only 2 SALUs per stage the same program needs more stages.
        let features = omniwindow_features(624, 3, 928);
        let tight = StageLimits {
            salus: 1,
            ..StageLimits::default()
        };
        let loose = place(&features, StageLimits::default()).unwrap();
        let spread = place(&features, tight).unwrap();
        assert!(spread.stages_used > loose.stages_used);
    }
}
