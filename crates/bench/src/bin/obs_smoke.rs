//! Observability smoke run: a short instrumented lossy C&R pipeline
//! (verified switch → lossy channel → sharded reliable controller, one
//! shared `ow-obs` registry throughout), whose snapshot lands in
//! `results/obs_smoke.json` (override with `--json <path>`).
//!
//! The binary self-checks the Prometheus exposition line format and
//! exits nonzero if it is malformed, so CI can gate on it.

use std::path::Path;

use omniwindow::experiments::obs_smoke::{self, ObsSmokeConfig};
use ow_bench::Cli;
use ow_obs::{check_exposition, prometheus_text, Event};

fn main() {
    let cli = Cli::parse();
    let cfg = ObsSmokeConfig {
        seed: cli.seed,
        ..ObsSmokeConfig::default()
    };
    cli.progress(format!(
        "running obs smoke: {} shards, {:.0}% AFR loss, seed {}…",
        cfg.shards,
        cfg.loss * 100.0,
        cfg.seed
    ));
    let out = obs_smoke::run(&cfg);

    let snapshot = out.obs.snapshot();
    let exposition = prometheus_text(&snapshot);
    if let Err((line, msg)) = check_exposition(&exposition) {
        cli.obs.event(
            Event::new(
                "exposition_error",
                format!("exposition line {line} is malformed: {msg}"),
            )
            .warn(),
        );
        std::process::exit(1);
    }

    println!(
        "obs smoke: {} metric series, exposition OK",
        snapshot.metrics.len()
    );
    println!(
        "  sessions: {} merged flows, {} first pass, {} recovered, \
         {} retransmit round(s), {} escalation(s)",
        out.merged_flows,
        out.metrics.first_pass,
        out.metrics.recovered,
        out.metrics.retransmit_rounds,
        out.metrics.escalations,
    );
    println!(
        "  registry mirror: retransmit_rounds={} escalations={}",
        snapshot.value("ow_controller_retransmit_rounds", &[]),
        snapshot.value("ow_controller_escalations_total", &[]),
    );

    let path = cli
        .json
        .clone()
        .unwrap_or_else(|| "results/obs_smoke.json".to_string());
    let report = out.obs.report("obs_smoke");
    if let Err(e) = report.write(Path::new(&path)) {
        cli.obs
            .event(Event::new("dump_error", format!("failed to write {path}: {e}")).warn());
        std::process::exit(1);
    }
    cli.progress(format!("snapshot written to {path}"));
}
