//! Fast collection and reset (§4): AFR generation (Algorithm 2), the
//! in-switch reset (§4.3), and the timing of every collection path the
//! paper compares in Exp#6/Exp#8.
//!
//! Two layers:
//!
//! * [`CrEngine::collect_and_reset`] — the *functional* engine used by
//!   the window mechanisms: queries the terminated region for every
//!   tracked flowkey, produces the AFR batch, resets the region, and
//!   charges the configured path's latency.
//! * [`PacketCollector`] — a literal interpreter of Algorithm 2: feeds
//!   `Collection` packets through the pipeline one recirculation at a
//!   time, maintaining the enumeration counter, appending AFRs to packet
//!   headers, cloning reports to the controller, and converting the
//!   packets to `Reset` clears at the end. Used by protocol-level tests
//!   and the quickstart to show the mechanism exactly as published.

use std::collections::BTreeMap;

use ow_common::afr::FlowRecord;
use ow_common::flowkey::FlowKey;
use ow_common::packet::{OwFlag, OwHeader, Packet};
use ow_common::time::{Duration, Instant};

use crate::app::DataPlaneApp;
use crate::flowkey::FlowkeyTracker;
use crate::latency::LatencyModel;

/// Which collection path to charge (the Exp#6 variants).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CollectMode {
    /// Conventional switch-OS read of the full state (the baseline).
    SwitchOs,
    /// Control-plane collection: the controller injects *every* flowkey.
    ControlPlane,
    /// Data-plane collection: all keys are in `fk_buffer`, enumerated by
    /// recirculating packets.
    DataPlane,
    /// OmniWindow's hybrid: buffered keys enumerated in-switch, overflow
    /// keys injected by the controller.
    Hybrid,
}

/// Collection configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CollectConfig {
    /// Path to charge.
    pub mode: CollectMode,
    /// Simultaneously recirculating collection packets (paper: 3 without
    /// RDMA — DPDK cannot absorb more — and 16 with RDMA).
    pub recirc_packets: usize,
    /// Whether the RDMA optimisation is on (§7).
    pub rdma: bool,
}

impl Default for CollectConfig {
    fn default() -> Self {
        CollectConfig {
            mode: CollectMode::Hybrid,
            recirc_packets: 3,
            rdma: false,
        }
    }
}

/// Result of one sub-window's collect-and-reset.
#[derive(Debug, Clone)]
pub struct CollectOutcome {
    /// The AFR batch for the terminated sub-window (deduplicated keys,
    /// sequence-numbered for the reliability mechanism).
    pub afrs: Vec<FlowRecord>,
    /// Keys enumerated inside the data plane.
    pub keys_from_dataplane: usize,
    /// Keys injected from the controller.
    pub keys_injected: usize,
    /// Time to generate and collect all AFRs (data-plane + control-plane).
    pub collect_time: Duration,
    /// Time for the in-switch (or OS) reset.
    pub reset_time: Duration,
}

impl CollectOutcome {
    /// Total C&R latency.
    pub fn total_time(&self) -> Duration {
        self.collect_time + self.reset_time
    }
}

/// The collect-and-reset engine.
#[derive(Debug, Clone)]
pub struct CrEngine {
    latency: LatencyModel,
}

impl CrEngine {
    /// Create an engine with the given latency model.
    pub fn new(latency: LatencyModel) -> CrEngine {
        CrEngine { latency }
    }

    /// The latency model in use.
    pub fn latency(&self) -> &LatencyModel {
        &self.latency
    }

    /// Collect the terminated region's AFRs and reset it.
    ///
    /// `app` and `tracker` are the *inactive* region's state. `subwindow`
    /// is the terminated sub-window number. Returns the AFR batch and the
    /// charged latencies.
    pub fn collect_and_reset<A: DataPlaneApp>(
        &self,
        app: &mut A,
        tracker: &mut FlowkeyTracker,
        subwindow: u32,
        cfg: CollectConfig,
    ) -> CollectOutcome {
        // Assemble the key set: structure-resident keys, buffered keys,
        // and controller-held overflow keys.
        let mut keys: Vec<FlowKey> = app.self_tracked_keys();
        keys.extend_from_slice(tracker.buffered());
        keys.extend_from_slice(tracker.overflowed());
        keys.sort_by_key(|k| k.as_u128());
        keys.dedup();

        let (from_dataplane, injected) = match cfg.mode {
            CollectMode::SwitchOs => (0, 0),
            CollectMode::ControlPlane => (0, keys.len()),
            CollectMode::DataPlane => (keys.len(), 0),
            CollectMode::Hybrid => {
                let buffered = tracker.buffered().len() + app.self_tracked_keys().len();
                let buffered = buffered.min(keys.len());
                (buffered, keys.len() - buffered)
            }
        };

        // Generate the AFRs (the query operation of Algorithm 2 line 8).
        let afrs: Vec<FlowRecord> = keys
            .iter()
            .enumerate()
            .map(|(i, k)| FlowRecord {
                key: *k,
                attr: app.query(k),
                subwindow,
                seq: i as u32,
            })
            .collect();

        // Charge the path's latency. AFR reports stream back to the
        // controller *while* the switch enumerates / the controller
        // injects, so the receive cost overlaps generation: the total is
        // the trigger round trip plus the max of (generation+injection)
        // and receive.
        let receive = self.latency.receive(afrs.len(), cfg.rdma);
        let collect_time = match cfg.mode {
            CollectMode::SwitchOs => {
                let m = app.meta();
                self.latency
                    .os_read(m.register_arrays, app.states_per_array())
            }
            CollectMode::ControlPlane => {
                self.latency.trigger_rtt + self.latency.inject(injected, cfg.rdma).max(receive)
            }
            CollectMode::DataPlane => {
                self.latency.trigger_rtt
                    + self
                        .latency
                        .recirc_enumeration(from_dataplane, cfg.recirc_packets)
                        .max(receive)
            }
            CollectMode::Hybrid => {
                let inject_time = if cfg.rdma {
                    self.latency.rdma_inject(injected)
                } else {
                    self.latency.inject(injected, false)
                };
                let generation = self
                    .latency
                    .recirc_enumeration(from_dataplane, cfg.recirc_packets)
                    + inject_time;
                self.latency.trigger_rtt + generation.max(receive)
            }
        };

        // Reset: clear packets sweep every register index once; one pass
        // clears the same index of all arrays (§4.3), so array count does
        // not multiply the time. The OS path is linear in arrays (Exp#8).
        let reset_time = match cfg.mode {
            CollectMode::SwitchOs => {
                let m = app.meta();
                self.latency
                    .os_reset(m.register_arrays, app.states_per_array())
            }
            _ => self
                .latency
                .recirc_enumeration(app.states_per_array(), cfg.recirc_packets),
        };

        // Perform the functional reset.
        app.reset();
        tracker.reset();

        CollectOutcome {
            afrs,
            keys_from_dataplane: from_dataplane,
            keys_injected: injected,
            collect_time,
            reset_time,
        }
    }
}

/// Switch-side retention of terminated AFR batches (§8, "Reliability of
/// AFRs").
///
/// [`CrEngine::collect_and_reset`] destroys the region state the moment
/// the batch is generated, so the AFRs themselves are the only copy the
/// switch still has. They are parked here — indexed by sub-window, in
/// cheap DRAM on the switch CPU — until the controller either confirms
/// completeness ([`RetransmitBuffer::release`]) or gives up on the fast
/// path and reads the whole batch back ([`RetransmitBuffer::full_batch`],
/// the OS-path escalation). Retransmission requests replay exactly the
/// requested sequence ids.
///
/// The buffer holds at most `capacity` sub-windows (0 = unbounded);
/// beyond that the oldest batch is evicted, modelling bounded switch-CPU
/// memory. An eviction before release means that sub-window can no
/// longer be repaired — the counter is exposed so experiments can detect
/// an undersized buffer.
#[derive(Debug, Clone, Default)]
pub struct RetransmitBuffer {
    batches: BTreeMap<u32, Vec<FlowRecord>>,
    capacity: usize,
    evicted: u64,
}

impl RetransmitBuffer {
    /// A buffer retaining at most `capacity` sub-windows (0 = unbounded).
    pub fn new(capacity: usize) -> RetransmitBuffer {
        RetransmitBuffer {
            batches: BTreeMap::new(),
            capacity,
            evicted: 0,
        }
    }

    /// Park a freshly generated batch, evicting the oldest retained
    /// sub-windows if the buffer is over capacity. Returns the evicted
    /// sub-windows (oldest first) so the caller can retire their
    /// lifecycle state; with `capacity == 0` (unbounded) the eviction
    /// path provably never runs and the result is always empty.
    pub fn retain(&mut self, subwindow: u32, afrs: &[FlowRecord]) -> Vec<u32> {
        self.batches.insert(subwindow, afrs.to_vec());
        if self.capacity == 0 {
            return Vec::new();
        }
        let mut evicted = Vec::new();
        while self.batches.len() > self.capacity {
            let oldest = *self.batches.keys().next().expect("non-empty");
            self.batches.remove(&oldest);
            self.evicted += 1;
            evicted.push(oldest);
        }
        evicted
    }

    /// Replay the requested sequence ids of `subwindow`. Unknown ids and
    /// sub-windows no longer retained yield nothing (the controller's
    /// timeout, not an error, handles that).
    pub fn retransmit(&self, subwindow: u32, seqs: &[u32]) -> Vec<FlowRecord> {
        match self.batches.get(&subwindow) {
            None => Vec::new(),
            Some(batch) => seqs
                .iter()
                .filter_map(|&seq| batch.iter().find(|r| r.seq == seq).cloned())
                .collect(),
        }
    }

    /// The full retained batch of `subwindow` (the OS-path readback).
    pub fn full_batch(&self, subwindow: u32) -> Option<&[FlowRecord]> {
        self.batches.get(&subwindow).map(Vec::as_slice)
    }

    /// Drop a batch the controller has confirmed complete.
    pub fn release(&mut self, subwindow: u32) {
        self.batches.remove(&subwindow);
    }

    /// Sub-windows currently retained, oldest first.
    pub fn retained(&self) -> Vec<u32> {
        self.batches.keys().copied().collect()
    }

    /// Batches evicted before the controller released them.
    pub fn evicted(&self) -> u64 {
        self.evicted
    }
}

impl LatencyModel {
    /// RDMA-batched flowkey injection (OW*): the controller writes key
    /// batches into the switch's injection ring as one-sided RDMA writes,
    /// amortising the per-packet DPDK cost. Calibrated to the paper's
    /// OW* = 1.8 ms with 32 K injected keys.
    pub fn rdma_inject(&self, keys: usize) -> Duration {
        Duration::from_nanos(40).saturating_mul(keys as u64)
    }
}

// ---------------------------------------------------------------------
// Literal Algorithm 2 interpreter.
// ---------------------------------------------------------------------

/// A literal packet-level interpreter of Algorithm 2 + §4.3: drives
/// `Collection` packets through the pipeline, producing `AfrReport`
/// clones and finally `Reset` sweeps.
#[derive(Debug)]
pub struct PacketCollector {
    counter: usize,
    reset_counter: usize,
    subwindow: u32,
}

/// What the pipeline did with one special packet pass.
#[derive(Debug, Clone, PartialEq)]
pub enum PassResult {
    /// The packet generated an AFR: the clone to send to the controller,
    /// and the original recirculates (Algorithm 2 lines 7–11).
    Report {
        /// Clone carrying the AFR to the controller.
        clone: Packet,
        /// The original packet, already recirculated (mutated in place).
        recirculate: bool,
    },
    /// Enumeration finished: the packet converted to a `Reset` clear
    /// packet and recirculates for in-switch reset (lines 4–6).
    BecameReset,
    /// A reset pass cleared one index; packet keeps recirculating.
    ResetPass {
        /// Index cleared in every register array this pass.
        index: usize,
    },
    /// Reset finished; the packet is dropped.
    Done,
}

impl PacketCollector {
    /// Start a collection for `subwindow`.
    pub fn new(subwindow: u32) -> PacketCollector {
        PacketCollector {
            counter: 0,
            reset_counter: 0,
            subwindow,
        }
    }

    /// Process one pipeline pass of a special packet `p` against the
    /// terminated region (`app`, `tracker`).
    pub fn pass<A: DataPlaneApp>(
        &mut self,
        p: &mut Packet,
        app: &mut A,
        tracker: &FlowkeyTracker,
    ) -> PassResult {
        match p.ow.flag {
            OwFlag::Collection => {
                let index = self.counter;
                self.counter += 1;
                let buffered = tracker.buffered();
                if index >= buffered.len() {
                    // Line 5–6: convert to clear packet for in-switch reset.
                    p.ow.flag = OwFlag::Reset;
                    return PassResult::BecameReset;
                }
                let key = buffered[index];
                let attr = app.query(&key);
                let clone = Packet {
                    ow: OwHeader {
                        subwindow: self.subwindow,
                        flag: OwFlag::AfrReport,
                        flowkey: Some(key),
                        afr_value: attr.scalar() as u64,
                        seq: index as u32,
                    },
                    ..*p
                };
                PassResult::Report {
                    clone,
                    recirculate: true,
                }
            }
            OwFlag::InjectKey => {
                // Controller-injected key: query and report, no recirculation.
                let key = p.ow.flowkey.expect("InjectKey carries a key");
                let attr = app.query(&key);
                let clone = Packet {
                    ow: OwHeader {
                        subwindow: self.subwindow,
                        flag: OwFlag::AfrReport,
                        flowkey: Some(key),
                        afr_value: attr.scalar() as u64,
                        seq: p.ow.seq,
                    },
                    ..*p
                };
                PassResult::Report {
                    clone,
                    recirculate: false,
                }
            }
            OwFlag::Reset => {
                let index = self.reset_counter;
                if index >= app.states_per_array() {
                    return PassResult::Done;
                }
                self.reset_counter += 1;
                // The functional model clears the whole region when the
                // sweep completes; each pass represents clearing `index`
                // across all arrays in one pipeline transit.
                if self.reset_counter >= app.states_per_array() {
                    app.reset();
                }
                PassResult::ResetPass { index }
            }
            _ => PassResult::Done,
        }
    }

    /// How many enumeration passes have run.
    pub fn enumerated(&self) -> usize {
        self.counter
    }

    /// How many reset passes have run.
    pub fn reset_passes(&self) -> usize {
        self.reset_counter
    }
}

/// Build the special collection packets the controller injects (fewer
/// than 20 in the paper; Exp#5/Exp#7 use 16).
pub fn make_collection_packets(n: usize, subwindow: u32, now: Instant) -> Vec<Packet> {
    (0..n)
        .map(|i| {
            let mut p = Packet::udp(now, 0, 0, 0, 0, 64);
            p.ow = OwHeader {
                subwindow,
                flag: OwFlag::Collection,
                flowkey: None,
                afr_value: 0,
                seq: i as u32,
            };
            p
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::app::FrequencyApp;
    use ow_common::afr::AttrValue;
    use ow_common::flowkey::KeyKind;
    use ow_common::packet::TcpFlags;
    use ow_sketch::CountMin;

    type App = FrequencyApp<CountMin>;

    fn app(seed: u64) -> App {
        FrequencyApp::new(CountMin::new(2, 128, seed), KeyKind::SrcIp, false)
    }

    fn feed(app: &mut App, tracker: &mut FlowkeyTracker, srcs: &[(u32, u64)]) {
        for &(src, n) in srcs {
            for _ in 0..n {
                let p = Packet::tcp(Instant::ZERO, src, 9, 1, 80, TcpFlags::ack(), 64);
                app.update(&p);
            }
            tracker.track(&FlowKey::src_ip(src));
        }
    }

    #[test]
    fn functional_collection_yields_all_afrs() {
        let mut a = app(1);
        let mut t = FlowkeyTracker::new(2, 100, 2); // force overflow
        feed(&mut a, &mut t, &[(1, 5), (2, 3), (3, 7)]);
        let engine = CrEngine::new(LatencyModel::default());
        let out = engine.collect_and_reset(&mut a, &mut t, 4, CollectConfig::default());
        assert_eq!(out.afrs.len(), 3);
        assert_eq!(out.keys_from_dataplane, 2);
        assert_eq!(out.keys_injected, 1);
        let find = |src: u32| {
            out.afrs
                .iter()
                .find(|r| r.key == FlowKey::src_ip(src))
                .expect("AFR present")
        };
        assert_eq!(find(1).attr, AttrValue::Frequency(5));
        assert_eq!(find(3).attr, AttrValue::Frequency(7));
        assert!(out.afrs.iter().all(|r| r.subwindow == 4));
        // Sequence ids are dense for the reliability check.
        let mut seqs: Vec<u32> = out.afrs.iter().map(|r| r.seq).collect();
        seqs.sort_unstable();
        assert_eq!(seqs, vec![0, 1, 2]);
    }

    #[test]
    fn collection_resets_state() {
        let mut a = app(3);
        let mut t = FlowkeyTracker::new(10, 100, 4);
        feed(&mut a, &mut t, &[(1, 5)]);
        let engine = CrEngine::new(LatencyModel::default());
        engine.collect_and_reset(&mut a, &mut t, 0, CollectConfig::default());
        assert_eq!(a.query(&FlowKey::src_ip(1)), AttrValue::Frequency(0));
        assert_eq!(t.total_tracked(), 0);
    }

    fn afr(seq: u32, sw: u32) -> FlowRecord {
        let mut r = FlowRecord::frequency(FlowKey::src_ip(seq + 1), seq as u64 + 1, sw);
        r.seq = seq;
        r
    }

    #[test]
    fn retransmit_buffer_replays_exact_seq_ids() {
        let mut buf = RetransmitBuffer::new(0);
        let batch: Vec<FlowRecord> = (0..5).map(|s| afr(s, 7)).collect();
        buf.retain(7, &batch);
        let got = buf.retransmit(7, &[1, 3, 9]);
        assert_eq!(got.len(), 2, "unknown seq 9 is skipped");
        assert_eq!(got[0].seq, 1);
        assert_eq!(got[1].seq, 3);
        assert_eq!(buf.full_batch(7).unwrap().len(), 5);
        assert!(buf.retransmit(8, &[0]).is_empty(), "unknown sub-window");
        buf.release(7);
        assert!(buf.full_batch(7).is_none());
        assert!(buf.retransmit(7, &[1]).is_empty());
    }

    #[test]
    fn retransmit_buffer_evicts_oldest_beyond_capacity() {
        let mut buf = RetransmitBuffer::new(2);
        let mut reported = Vec::new();
        for sw in 0..4u32 {
            reported.extend(buf.retain(sw, &[afr(0, sw)]));
        }
        assert_eq!(buf.retained(), vec![2, 3]);
        assert_eq!(buf.evicted(), 2);
        assert_eq!(reported, vec![0, 1], "evictions are reported oldest first");
        assert!(buf.full_batch(0).is_none());
    }

    #[test]
    fn unbounded_buffer_never_evicts() {
        // retransmit_depth: 0 is documented as "unbounded"; the eviction
        // path must provably never fire in that mode, however many
        // sub-windows pile up unacknowledged.
        let mut buf = RetransmitBuffer::new(0);
        for sw in 0..512u32 {
            assert!(buf.retain(sw, &[afr(0, sw)]).is_empty());
        }
        assert_eq!(buf.evicted(), 0);
        assert_eq!(buf.retained().len(), 512);
        assert!(buf.full_batch(0).is_some(), "oldest batch still retained");
        // Releases do not disturb the counter either.
        for sw in 0..512u32 {
            buf.release(sw);
        }
        assert_eq!(buf.evicted(), 0);
    }

    #[test]
    fn hybrid_beats_cpc_and_approaches_dpc() {
        // The Exp#6 ordering: DPC < OW < CPC (all far below OS).
        let engine = CrEngine::new(LatencyModel::default());
        let mk = || {
            let mut a = app(5);
            let mut t = FlowkeyTracker::new(500, 2000, 6);
            for i in 0..1000u32 {
                let p = Packet::tcp(Instant::ZERO, i, 9, 1, 80, TcpFlags::ack(), 64);
                a.update(&p);
                t.track(&FlowKey::src_ip(i));
            }
            (a, t)
        };
        let run = |mode| {
            let (mut a, mut t) = mk();
            engine
                .collect_and_reset(
                    &mut a,
                    &mut t,
                    0,
                    CollectConfig {
                        mode,
                        recirc_packets: 3,
                        rdma: false,
                    },
                )
                .collect_time
        };
        let os = run(CollectMode::SwitchOs);
        let cpc = run(CollectMode::ControlPlane);
        let dpc = run(CollectMode::DataPlane);
        let ow = run(CollectMode::Hybrid);
        assert!(dpc < ow, "dpc {dpc} !< ow {ow}");
        assert!(ow < cpc, "ow {ow} !< cpc {cpc}");
        assert!(cpc < os, "cpc {cpc} !< os {os}");
    }

    #[test]
    fn rdma_reduces_hybrid_time() {
        let engine = CrEngine::new(LatencyModel::default());
        let mk = || {
            let a = app(7);
            let mut t = FlowkeyTracker::new(500, 2000, 8);
            for i in 0..1000u32 {
                t.track(&FlowKey::src_ip(i));
            }
            (a.clone(), t)
        };
        let (mut a1, mut t1) = mk();
        let plain = engine
            .collect_and_reset(
                &mut a1,
                &mut t1,
                0,
                CollectConfig {
                    mode: CollectMode::Hybrid,
                    recirc_packets: 3,
                    rdma: false,
                },
            )
            .collect_time;
        let (mut a2, mut t2) = mk();
        let rdma = engine
            .collect_and_reset(
                &mut a2,
                &mut t2,
                0,
                CollectConfig {
                    mode: CollectMode::Hybrid,
                    recirc_packets: 16,
                    rdma: true,
                },
            )
            .collect_time;
        assert!(rdma < plain, "rdma {rdma} !< plain {plain}");
    }

    #[test]
    fn packet_collector_runs_algorithm_2_literally() {
        let mut a = app(9);
        let mut t = FlowkeyTracker::new(10, 100, 10);
        feed(&mut a, &mut t, &[(1, 2), (2, 4)]);

        let mut pc = PacketCollector::new(3);
        let mut pkts = make_collection_packets(1, 3, Instant::ZERO);
        let p = &mut pkts[0];

        // Pass 1: AFR for the first buffered key.
        let r1 = pc.pass(p, &mut a, &t);
        match r1 {
            PassResult::Report { clone, recirculate } => {
                assert!(recirculate);
                assert_eq!(clone.ow.flag, OwFlag::AfrReport);
                assert_eq!(clone.ow.flowkey, Some(FlowKey::src_ip(1)));
                assert_eq!(clone.ow.afr_value, 2);
                assert_eq!(clone.ow.subwindow, 3);
            }
            other => panic!("expected report, got {other:?}"),
        }
        // Pass 2: second key.
        match pc.pass(p, &mut a, &t) {
            PassResult::Report { clone, .. } => {
                assert_eq!(clone.ow.flowkey, Some(FlowKey::src_ip(2)));
                assert_eq!(clone.ow.afr_value, 4);
            }
            other => panic!("expected report, got {other:?}"),
        }
        // Pass 3: enumeration exhausted → becomes a clear packet.
        assert_eq!(pc.pass(p, &mut a, &t), PassResult::BecameReset);
        assert_eq!(p.ow.flag, OwFlag::Reset);

        // Reset passes sweep every register index, then the packet drops.
        let n = a.states_per_array();
        for i in 0..n {
            assert_eq!(pc.pass(p, &mut a, &t), PassResult::ResetPass { index: i });
        }
        assert_eq!(pc.pass(p, &mut a, &t), PassResult::Done);
        // State is cleared after the sweep.
        assert_eq!(a.query(&FlowKey::src_ip(2)), AttrValue::Frequency(0));
    }

    #[test]
    fn inject_key_packets_are_answered_without_recirculation() {
        let mut a = app(11);
        let t = FlowkeyTracker::new(10, 100, 12);
        for _ in 0..6 {
            let p = Packet::tcp(Instant::ZERO, 42, 9, 1, 80, TcpFlags::ack(), 64);
            a.update(&p);
        }
        let mut pc = PacketCollector::new(0);
        let mut p = Packet::udp(Instant::ZERO, 0, 0, 0, 0, 64);
        p.ow.flag = OwFlag::InjectKey;
        p.ow.flowkey = Some(FlowKey::src_ip(42));
        p.ow.seq = 17;
        match pc.pass(&mut p, &mut a, &t) {
            PassResult::Report { clone, recirculate } => {
                assert!(!recirculate);
                assert_eq!(clone.ow.afr_value, 6);
                assert_eq!(clone.ow.seq, 17);
            }
            other => panic!("expected report, got {other:?}"),
        }
    }
}
