//! A deterministic hash family for sketches and key tracking.
//!
//! All sketches in `ow-sketch` draw their hash functions from this family
//! so experiments are reproducible across runs and platforms. The design
//! is a 128→64-bit mix (SplitMix64-style finalizer over the packed flow
//! key, salted per function index) — cheap, well-distributed, and entirely
//! self-contained (no external hashing crates).

use crate::flowkey::FlowKey;

/// One member of the pairwise-independent-ish hash family.
///
/// `HashFn::new(seed, i)` with distinct `i` yields effectively independent
/// functions; the same `(seed, i)` always yields the same function.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HashFn {
    salt0: u64,
    salt1: u64,
}

/// SplitMix64 finalizer: the core 64-bit mixer.
#[inline]
pub fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E3779B97F4A7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

impl HashFn {
    /// Create the `index`-th function of the family derived from `seed`.
    pub fn new(seed: u64, index: usize) -> HashFn {
        let base = mix64(seed ^ mix64(index as u64 + 1));
        HashFn {
            salt0: base,
            salt1: mix64(base ^ 0xA5A5_A5A5_5A5A_5A5A),
        }
    }

    /// Hash a packed 128-bit value to 64 bits.
    #[inline]
    pub fn hash_u128(&self, v: u128) -> u64 {
        let lo = v as u64;
        let hi = (v >> 64) as u64;
        mix64(lo ^ self.salt0) ^ mix64(hi.wrapping_add(self.salt1))
    }

    /// Hash a flow key (under its projection) to 64 bits.
    #[inline]
    pub fn hash_key(&self, key: &FlowKey) -> u64 {
        self.hash_u128(key.as_u128())
    }

    /// Hash a flow key to a table index in `[0, buckets)`.
    ///
    /// Uses the high-entropy multiply-shift reduction instead of modulo,
    /// which is what a P4 program's bit-sliced index computation looks like
    /// and avoids modulo bias for non-power-of-two widths.
    #[inline]
    pub fn index(&self, key: &FlowKey, buckets: usize) -> usize {
        debug_assert!(buckets > 0);
        let h = self.hash_key(key);
        (((h as u128) * (buckets as u128)) >> 64) as usize
    }

    /// Hash an arbitrary 64-bit value to a table index in `[0, buckets)`.
    #[inline]
    pub fn index_u64(&self, v: u64, buckets: usize) -> usize {
        debug_assert!(buckets > 0);
        let h = mix64(v ^ self.salt0).wrapping_add(self.salt1);
        (((mix64(h) as u128) * (buckets as u128)) >> 64) as usize
    }
}

/// A convenience bundle of `d` hash functions, as used by d-row sketches.
#[derive(Debug, Clone)]
pub struct HashFamily {
    fns: Vec<HashFn>,
}

impl HashFamily {
    /// Build `d` functions from `seed`.
    pub fn new(seed: u64, d: usize) -> HashFamily {
        HashFamily {
            fns: (0..d).map(|i| HashFn::new(seed, i)).collect(),
        }
    }

    /// Number of functions.
    pub fn len(&self) -> usize {
        self.fns.len()
    }

    /// Whether the family is empty.
    pub fn is_empty(&self) -> bool {
        self.fns.is_empty()
    }

    /// The `i`-th function.
    pub fn get(&self, i: usize) -> &HashFn {
        &self.fns[i]
    }

    /// Iterate over the functions.
    pub fn iter(&self) -> impl Iterator<Item = &HashFn> {
        self.fns.iter()
    }
}

/// The flow-key → shard mapping used by the controller's sharded merge
/// path.
///
/// Every component that splits or routes `FlowRecord`s by key — the
/// live controller's router, the `ShardedMergeTable`, benchmarks, the
/// netsim topology builder — must agree on the mapping, so it is pinned
/// here with a fixed internal seed rather than passed around as a bare
/// `HashFn`. The mapping is the multiply-shift reduction of the mixed
/// flow key, i.e. exactly what the sketches use for bucket indexing, so
/// shard balance inherits the family's uniformity.
///
/// Crucially the mapping depends only on `(shards, key)`: re-splitting
/// the same records at a different shard count moves keys between
/// shards but never splits one key's records across shards, which is
/// what makes the sharded merge byte-identical to the single-shard
/// baseline after the deterministic final fold.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardPartition {
    shards: usize,
    h: HashFn,
}

/// The fixed seed behind every [`ShardPartition`]. Changing it would
/// silently re-partition deployed tables, so it is a named constant.
const SHARD_PARTITION_SEED: u64 = 0x0077_5348_4152_4453; // "\0\0wSHARDS"

impl ShardPartition {
    /// A partition over `shards` shards.
    ///
    /// # Panics
    /// Panics when `shards == 0` — an empty partition cannot place any
    /// key.
    pub fn new(shards: usize) -> ShardPartition {
        assert!(shards > 0, "ShardPartition requires at least one shard");
        ShardPartition {
            shards,
            h: HashFn::new(SHARD_PARTITION_SEED, 0),
        }
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// The shard owning `key`, in `[0, shards)`.
    #[inline]
    pub fn shard_of(&self, key: &FlowKey) -> usize {
        if self.shards == 1 {
            0
        } else {
            self.h.index(key, self.shards)
        }
    }

    /// Bulk key → shard mapping over a whole key column.
    ///
    /// Clears `out` and fills it with the shard index of every key, in
    /// order. This is the block path's router primitive: hashing the
    /// column in one tight pass amortizes the multiply-shift across the
    /// block instead of interleaving it with per-record bookkeeping.
    pub fn shard_indices(&self, keys: &[FlowKey], out: &mut Vec<u32>) {
        out.clear();
        out.reserve(keys.len());
        if self.shards == 1 {
            out.resize(keys.len(), 0u32);
        } else {
            out.extend(keys.iter().map(|k| self.h.index(k, self.shards) as u32));
        }
    }

    /// Split a batch of flow records into one vector per shard,
    /// preserving the input order within each shard (order preservation
    /// is what keeps per-key merge folds identical across shard
    /// counts).
    pub fn split(&self, records: &[crate::afr::FlowRecord]) -> Vec<Vec<crate::afr::FlowRecord>> {
        let mut out = vec![Vec::new(); self.shards];
        for rec in records {
            out[self.shard_of(&rec.key)].push(*rec);
        }
        out
    }
}

/// A fast `std::hash::Hasher` built on [`mix64`], for the controller's
/// key-value tables (the stand-in for DPDK `rte_hash`'s CRC hashing —
/// the default SipHash would dominate the Exp#4 measurements).
#[derive(Debug, Clone, Copy, Default)]
pub struct OwHasher {
    state: u64,
}

impl core::hash::Hasher for OwHasher {
    #[inline]
    fn finish(&self) -> u64 {
        mix64(self.state)
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut buf = [0u8; 8];
            buf[..chunk.len()].copy_from_slice(chunk);
            self.state = mix64(self.state ^ u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.state = mix64(self.state ^ v);
    }

    #[inline]
    fn write_u128(&mut self, v: u128) {
        self.state = mix64(self.state ^ v as u64);
        self.state = mix64(self.state ^ (v >> 64) as u64);
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.write_u64(v as u64);
    }
}

/// `BuildHasher` for [`OwHasher`].
#[derive(Debug, Clone, Copy, Default)]
pub struct OwBuildHasher;

impl core::hash::BuildHasher for OwBuildHasher {
    type Hasher = OwHasher;
    fn build_hasher(&self) -> OwHasher {
        OwHasher::default()
    }
}

/// A `HashMap` keyed with the fast [`OwHasher`].
pub type FastMap<K, V> = std::collections::HashMap<K, V, OwBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flowkey::FlowKey;

    #[test]
    fn deterministic_across_instances() {
        let a = HashFn::new(42, 3);
        let b = HashFn::new(42, 3);
        let k = FlowKey::five_tuple(1, 2, 3, 4, 6);
        assert_eq!(a.hash_key(&k), b.hash_key(&k));
    }

    #[test]
    fn different_indices_give_different_functions() {
        let a = HashFn::new(42, 0);
        let b = HashFn::new(42, 1);
        let k = FlowKey::five_tuple(1, 2, 3, 4, 6);
        assert_ne!(a.hash_key(&k), b.hash_key(&k));
    }

    #[test]
    fn index_stays_in_range() {
        let h = HashFn::new(7, 0);
        for buckets in [1usize, 2, 3, 1000, 65536, 100003] {
            for i in 0..200u32 {
                let k = FlowKey::five_tuple(i, i * 7 + 1, 80, 443, 6);
                assert!(h.index(&k, buckets) < buckets);
            }
        }
    }

    #[test]
    fn distribution_is_roughly_uniform() {
        // Chi-square-ish sanity check: 64 buckets, 64k keys, each bucket
        // should hold close to 1024 keys.
        let h = HashFn::new(99, 0);
        let buckets = 64usize;
        let mut counts = vec![0u32; buckets];
        for i in 0..65536u32 {
            let k = FlowKey::five_tuple(i, !i, (i % 1000) as u16, 80, 6);
            counts[h.index(&k, buckets)] += 1;
        }
        let expected = 65536.0 / buckets as f64;
        for (b, &c) in counts.iter().enumerate() {
            let dev = (c as f64 - expected).abs() / expected;
            assert!(dev < 0.25, "bucket {b} count {c} deviates {dev:.2}");
        }
    }

    #[test]
    fn family_has_requested_size() {
        let fam = HashFamily::new(1, 4);
        assert_eq!(fam.len(), 4);
        assert!(!fam.is_empty());
        // All members distinct.
        let k = FlowKey::src_ip(0x01020304);
        let hashes: Vec<u64> = fam.iter().map(|f| f.hash_key(&k)).collect();
        for i in 0..hashes.len() {
            for j in (i + 1)..hashes.len() {
                assert_ne!(hashes[i], hashes[j]);
            }
        }
    }

    #[test]
    fn ow_hasher_distributes_keys() {
        use core::hash::BuildHasher;
        let bh = OwBuildHasher;
        let mut buckets = vec![0u32; 64];
        for i in 0..65536u32 {
            let k = FlowKey::five_tuple(i, !i, 80, 443, 6);
            buckets[(bh.hash_one(k) % 64) as usize] += 1;
        }
        let expected = 65536.0 / 64.0;
        for &c in &buckets {
            assert!((c as f64 - expected).abs() / expected < 0.3, "bucket {c}");
        }
    }

    #[test]
    fn fast_map_works_as_hashmap() {
        let mut m: FastMap<FlowKey, u32> = FastMap::default();
        for i in 0..100u32 {
            m.insert(FlowKey::src_ip(i), i);
        }
        assert_eq!(m.len(), 100);
        assert_eq!(m.get(&FlowKey::src_ip(42)), Some(&42));
    }

    #[test]
    fn shard_partition_is_stable_and_in_range() {
        let p4 = ShardPartition::new(4);
        let p4b = ShardPartition::new(4);
        for i in 0..1000u32 {
            let k = FlowKey::five_tuple(i, !i, 80, 443, 6);
            let s = p4.shard_of(&k);
            assert!(s < 4);
            assert_eq!(s, p4b.shard_of(&k), "mapping must be deterministic");
        }
        let p1 = ShardPartition::new(1);
        assert_eq!(p1.shard_of(&FlowKey::src_ip(9)), 0);
    }

    #[test]
    fn shard_split_preserves_order_and_key_locality() {
        use crate::afr::{AttrValue, FlowRecord};
        let p = ShardPartition::new(3);
        let records: Vec<FlowRecord> = (0..300u32)
            .map(|i| FlowRecord {
                key: FlowKey::src_ip(i % 50),
                attr: AttrValue::Frequency(i as u64),
                subwindow: 0,
                seq: i,
            })
            .collect();
        let shards = p.split(&records);
        assert_eq!(shards.len(), 3);
        assert_eq!(shards.iter().map(Vec::len).sum::<usize>(), 300);
        for (s, recs) in shards.iter().enumerate() {
            // Every record landed on the shard owning its key…
            assert!(recs.iter().all(|r| p.shard_of(&r.key) == s));
            // …and input order (seq ascending here) is preserved.
            assert!(recs.windows(2).all(|w| w[0].seq < w[1].seq));
        }
    }

    #[test]
    fn shard_indices_matches_shard_of() {
        for shards in [1usize, 2, 4, 8] {
            let p = ShardPartition::new(shards);
            let keys: Vec<FlowKey> = (0..500u32)
                .map(|i| FlowKey::five_tuple(i, !i, 80, 443, 6))
                .collect();
            let mut out = vec![99u32; 3]; // stale contents must be cleared
            p.shard_indices(&keys, &mut out);
            assert_eq!(out.len(), keys.len());
            for (k, &s) in keys.iter().zip(&out) {
                assert_eq!(s as usize, p.shard_of(k));
            }
        }
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn shard_partition_rejects_zero() {
        let _ = ShardPartition::new(0);
    }

    #[test]
    fn mix64_avalanche_smoke() {
        // Flipping one input bit should flip roughly half the output bits.
        let a = mix64(0x1234_5678_9ABC_DEF0);
        let b = mix64(0x1234_5678_9ABC_DEF1);
        let flipped = (a ^ b).count_ones();
        assert!(
            (16..=48).contains(&flipped),
            "poor avalanche: {flipped} bits"
        );
    }
}
