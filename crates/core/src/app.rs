//! The telemetry-application abstraction the window mechanisms drive.
//!
//! A [`WindowApp`] bundles everything OmniWindow needs from a telemetry
//! application (§4.1's feasibility requirements, made explicit):
//!
//! * a flowkey definition and packet filter,
//! * a *data-plane* state (register program / sketch) with update, flow
//!   query (AFR generation), and reset,
//! * an *error-free* reference execution (for the ideal baselines),
//! * a report predicate over the merged window statistic.
//!
//! Adapters are provided for the Sonata queries ([`QueryApp`]), the
//! heavy-hitter sketches ([`HeavyHitterApp`] — MV-Sketch / HashPipe),
//! the per-flow size sketches ([`SizeApp`] — Count-Min / SuMax), and the
//! super-spreader structures ([`SpreadApp`] / [`VbfApp`]).

use std::collections::HashSet;

use ow_common::afr::AttrValue;
use ow_common::flowkey::{FlowKey, KeyKind};
use ow_common::hash::mix64;
use ow_common::packet::Packet;
use ow_query::registers::RegisterEngine;
use ow_query::spec::QuerySpec;
use ow_sketch::traits::{FrequencySketch, InvertibleSketch, SpreadEstimator};
use ow_sketch::{
    CountMin, ElasticSketch, HashPipe, MvSketch, SpreadSketch, SuMax, VectorBloomFilter,
};

use crate::exact::ExactStat;

/// A telemetry application pluggable into every window mechanism.
pub trait WindowApp {
    /// Per-(sub)window data-plane state.
    type State;

    /// The application's flowkey definition.
    fn key_kind(&self) -> KeyKind;

    /// Packet relevance filter (query `filter` operator; sketches accept
    /// everything).
    fn filter(&self, pkt: &Packet) -> bool {
        let _ = pkt;
        true
    }

    /// Allocate a state instance within `memory_bytes`.
    fn make_state(&self, memory_bytes: usize, seed: u64) -> Self::State;

    /// Apply one packet (the data-plane update path). Callers apply
    /// [`WindowApp::filter`] first.
    fn update(&self, st: &mut Self::State, pkt: &Packet);

    /// Data-plane flow query — the AFR for `key` in this state.
    fn query(&self, st: &Self::State, key: &FlowKey) -> AttrValue;

    /// Keys resident in the structure itself (empty if the structure
    /// keeps no keys and relies on OmniWindow's flowkey tracking).
    fn resident_keys(&self, st: &Self::State) -> Vec<FlowKey> {
        let _ = st;
        Vec::new()
    }

    /// Clear the state (in-switch reset target).
    fn reset(&self, st: &mut Self::State);

    /// A fresh exact statistic for the error-free reference.
    fn exact_new(&self) -> ExactStat;

    /// Apply one (filtered) packet to an exact statistic.
    fn exact_update(&self, st: &mut ExactStat, pkt: &Packet);

    /// Report predicate over a merged data-plane statistic.
    fn passes_attr(&self, attr: &AttrValue) -> bool;

    /// Report predicate over a merged exact statistic.
    fn passes_exact(&self, st: &ExactStat) -> bool;
}

// ---------------------------------------------------------------------
// Sonata queries.
// ---------------------------------------------------------------------

/// A Sonata query as a window application (data plane = hash-indexed
/// registers without conflict handling).
#[derive(Debug, Clone, Copy)]
pub struct QueryApp {
    spec: QuerySpec,
}

impl QueryApp {
    /// Wrap a query spec.
    pub fn new(spec: QuerySpec) -> QueryApp {
        QueryApp { spec }
    }

    /// The wrapped spec.
    pub fn spec(&self) -> &QuerySpec {
        &self.spec
    }

    /// The memory budget that yields `slots` register cells for this
    /// query's statistic layout (lets experiments size states by slot
    /// count rather than raw bytes, since cell sizes vary per query).
    pub fn memory_for_slots(&self, slots: usize) -> usize {
        slots * self.cell_bytes()
    }

    fn cell_bytes(&self) -> usize {
        use ow_common::afr::AttrKind;
        let attr = match self.spec.stat.attr_kind() {
            AttrKind::Frequency | AttrKind::Signed | AttrKind::Max | AttrKind::Min => 4,
            AttrKind::Existence => 1,
            AttrKind::Distinction => 64,
            AttrKind::ConnBytes => 72,
        };
        attr + 13
    }
}

impl WindowApp for QueryApp {
    type State = RegisterEngine;

    fn key_kind(&self) -> KeyKind {
        self.spec.key_kind
    }

    fn filter(&self, pkt: &Packet) -> bool {
        (self.spec.filter)(pkt)
    }

    fn make_state(&self, memory_bytes: usize, seed: u64) -> RegisterEngine {
        let slots = (memory_bytes / self.cell_bytes()).max(1);
        RegisterEngine::new(self.spec, slots, seed)
    }

    fn update(&self, st: &mut RegisterEngine, pkt: &Packet) {
        st.update(pkt);
    }

    fn query(&self, st: &RegisterEngine, key: &FlowKey) -> AttrValue {
        st.query(key)
    }

    fn resident_keys(&self, st: &RegisterEngine) -> Vec<FlowKey> {
        st.resident_keys()
    }

    fn reset(&self, st: &mut RegisterEngine) {
        st.reset();
    }

    fn exact_new(&self) -> ExactStat {
        use ow_query::spec::StatKind;
        match self.spec.stat {
            StatKind::Count => ExactStat::Count(0),
            StatKind::Distinct(_) => ExactStat::Distinct(HashSet::new()),
            StatKind::CountDiff { .. } => ExactStat::Signed(0),
            StatKind::ConnBytes => ExactStat::ConnBytes {
                conns: HashSet::new(),
                bytes: 0,
            },
        }
    }

    fn exact_update(&self, st: &mut ExactStat, pkt: &Packet) {
        use ow_query::spec::StatKind;
        match (self.spec.stat, st) {
            (StatKind::Count, ExactStat::Count(v)) => *v += 1,
            (StatKind::Distinct(el), ExactStat::Distinct(s)) => {
                s.insert(el.extract(pkt));
            }
            (StatKind::CountDiff { plus, minus }, ExactStat::Signed(v)) => {
                if plus(pkt) {
                    *v += 1;
                }
                if minus(pkt) {
                    *v -= 1;
                }
            }
            (StatKind::ConnBytes, ExactStat::ConnBytes { conns, bytes }) => {
                conns.insert(((pkt.src_ip as u64) << 16) | pkt.src_port as u64);
                *bytes += pkt.wire_len as u64;
            }
            _ => unreachable!("exact stat initialised from spec"),
        }
    }

    fn passes_attr(&self, attr: &AttrValue) -> bool {
        self.spec.passes(attr)
    }

    fn passes_exact(&self, st: &ExactStat) -> bool {
        use ow_query::spec::Report;
        match self.spec.report {
            // ConnBytes scalar is bytes/conn; AtLeast queries never use
            // ConnBytes, everything else thresholds the scalar.
            Report::AtLeast(t) => st.scalar() >= t,
            Report::ManyConnsFewBytes {
                min_conns,
                max_bytes_per_conn,
            } => match st {
                ExactStat::ConnBytes { conns, bytes } => {
                    let c = conns.len() as f64;
                    c >= min_conns && (*bytes as f64 / c.max(1.0)) <= max_bytes_per_conn
                }
                _ => false,
            },
        }
    }
}

// ---------------------------------------------------------------------
// Sketch factory plumbing.
// ---------------------------------------------------------------------

/// Uniform memory-budgeted constructor over the frequency sketches.
pub trait SketchFactory: Sized {
    /// Build an instance with `rows` rows within `total_bytes`.
    fn build(rows: usize, total_bytes: usize, seed: u64) -> Self;
}

impl SketchFactory for CountMin {
    fn build(rows: usize, total_bytes: usize, seed: u64) -> Self {
        CountMin::with_memory(rows, total_bytes, seed)
    }
}

impl SketchFactory for SuMax {
    fn build(rows: usize, total_bytes: usize, seed: u64) -> Self {
        SuMax::with_memory(rows, total_bytes, seed)
    }
}

impl SketchFactory for MvSketch {
    fn build(rows: usize, total_bytes: usize, seed: u64) -> Self {
        MvSketch::with_memory(rows, total_bytes, seed)
    }
}

impl SketchFactory for HashPipe {
    fn build(rows: usize, total_bytes: usize, seed: u64) -> Self {
        HashPipe::with_memory(rows, total_bytes, seed)
    }
}

impl SketchFactory for ElasticSketch {
    fn build(_rows: usize, total_bytes: usize, seed: u64) -> Self {
        ElasticSketch::with_memory(total_bytes, seed)
    }
}

// ---------------------------------------------------------------------
// Heavy hitters (Q9): MV-Sketch / HashPipe, packet counts, 5-tuple key.
// ---------------------------------------------------------------------

/// Heavy-hitter detection on packet counts over five-tuples.
#[derive(Debug, Clone, Copy)]
pub struct HeavyHitterApp<S> {
    rows: usize,
    threshold: u64,
    _marker: std::marker::PhantomData<fn() -> S>,
}

impl HeavyHitterApp<MvSketch> {
    /// MV-Sketch heavy-hitter app (paper depth 4).
    pub fn mv(threshold: u64) -> Self {
        HeavyHitterApp {
            rows: 4,
            threshold,
            _marker: std::marker::PhantomData,
        }
    }
}

impl HeavyHitterApp<HashPipe> {
    /// HashPipe heavy-hitter app (paper depth 4).
    pub fn hashpipe(threshold: u64) -> Self {
        HeavyHitterApp {
            rows: 4,
            threshold,
            _marker: std::marker::PhantomData,
        }
    }
}

impl HeavyHitterApp<ElasticSketch> {
    /// Elastic Sketch heavy-hitter app (heavy part + light part).
    pub fn elastic(threshold: u64) -> Self {
        HeavyHitterApp {
            rows: 1,
            threshold,
            _marker: std::marker::PhantomData,
        }
    }
}

impl<S> WindowApp for HeavyHitterApp<S>
where
    S: FrequencySketch + InvertibleSketch + SketchFactory,
{
    type State = S;

    fn key_kind(&self) -> KeyKind {
        KeyKind::FiveTuple
    }

    fn make_state(&self, memory_bytes: usize, seed: u64) -> S {
        S::build(self.rows, memory_bytes, seed)
    }

    fn update(&self, st: &mut S, pkt: &Packet) {
        st.update(&pkt.five_tuple(), 1);
    }

    fn query(&self, st: &S, key: &FlowKey) -> AttrValue {
        AttrValue::Frequency(st.query(key))
    }

    fn resident_keys(&self, st: &S) -> Vec<FlowKey> {
        st.candidates()
    }

    fn reset(&self, st: &mut S) {
        st.reset();
    }

    fn exact_new(&self) -> ExactStat {
        ExactStat::Count(0)
    }

    fn exact_update(&self, st: &mut ExactStat, _pkt: &Packet) {
        if let ExactStat::Count(v) = st {
            *v += 1;
        }
    }

    fn passes_attr(&self, attr: &AttrValue) -> bool {
        attr.scalar() >= self.threshold as f64
    }

    fn passes_exact(&self, st: &ExactStat) -> bool {
        st.scalar() >= self.threshold as f64
    }
}

// ---------------------------------------------------------------------
// Per-flow size (Q10): Count-Min / SuMax, byte counts, 5-tuple key.
// ---------------------------------------------------------------------

/// Per-flow size estimation (bytes per five-tuple).
#[derive(Debug, Clone, Copy)]
pub struct SizeApp<S> {
    rows: usize,
    /// Report threshold in bytes (heavy flows by volume); size accuracy
    /// itself is scored by ARE over probe keys.
    threshold: u64,
    _marker: std::marker::PhantomData<fn() -> S>,
}

impl SizeApp<CountMin> {
    /// Count-Min size app (paper depth 4).
    pub fn count_min(threshold: u64) -> Self {
        SizeApp {
            rows: 4,
            threshold,
            _marker: std::marker::PhantomData,
        }
    }
}

impl SizeApp<SuMax> {
    /// SuMax size app (paper depth 4).
    pub fn sumax(threshold: u64) -> Self {
        SizeApp {
            rows: 4,
            threshold,
            _marker: std::marker::PhantomData,
        }
    }
}

impl<S> WindowApp for SizeApp<S>
where
    S: FrequencySketch + SketchFactory,
{
    type State = S;

    fn key_kind(&self) -> KeyKind {
        KeyKind::FiveTuple
    }

    fn make_state(&self, memory_bytes: usize, seed: u64) -> S {
        S::build(self.rows, memory_bytes, seed)
    }

    fn update(&self, st: &mut S, pkt: &Packet) {
        st.update(&pkt.five_tuple(), pkt.wire_len as u64);
    }

    fn query(&self, st: &S, key: &FlowKey) -> AttrValue {
        AttrValue::Frequency(st.query(key))
    }

    fn reset(&self, st: &mut S) {
        st.reset();
    }

    fn exact_new(&self) -> ExactStat {
        ExactStat::Count(0)
    }

    fn exact_update(&self, st: &mut ExactStat, pkt: &Packet) {
        if let ExactStat::Count(v) = st {
            *v += pkt.wire_len as u64;
        }
    }

    fn passes_attr(&self, attr: &AttrValue) -> bool {
        attr.scalar() >= self.threshold as f64
    }

    fn passes_exact(&self, st: &ExactStat) -> bool {
        st.scalar() >= self.threshold as f64
    }
}

// ---------------------------------------------------------------------
// Super-spreaders (Q8): SpreadSketch / Vector Bloom Filter.
// ---------------------------------------------------------------------

/// Super-spreader detection with SpreadSketch (distinct destinations per
/// source).
#[derive(Debug, Clone, Copy)]
pub struct SpreadApp {
    rows: usize,
    threshold: u64,
}

impl SpreadApp {
    /// Paper configuration: depth 4.
    pub fn new(threshold: u64) -> SpreadApp {
        SpreadApp { rows: 4, threshold }
    }
}

fn element_of(pkt: &Packet) -> u64 {
    mix64(pkt.dst_ip as u64 ^ 0xE1E)
}

impl WindowApp for SpreadApp {
    type State = SpreadSketch;

    fn key_kind(&self) -> KeyKind {
        KeyKind::SrcIp
    }

    fn make_state(&self, memory_bytes: usize, seed: u64) -> SpreadSketch {
        SpreadSketch::with_memory(self.rows, memory_bytes, seed)
    }

    fn update(&self, st: &mut SpreadSketch, pkt: &Packet) {
        st.update_element(&pkt.key(KeyKind::SrcIp), element_of(pkt));
    }

    fn query(&self, st: &SpreadSketch, key: &FlowKey) -> AttrValue {
        AttrValue::Distinction(st.bitmap(key))
    }

    fn resident_keys(&self, st: &SpreadSketch) -> Vec<FlowKey> {
        st.candidates()
    }

    fn reset(&self, st: &mut SpreadSketch) {
        st.reset();
    }

    fn exact_new(&self) -> ExactStat {
        ExactStat::Distinct(HashSet::new())
    }

    fn exact_update(&self, st: &mut ExactStat, pkt: &Packet) {
        if let ExactStat::Distinct(s) = st {
            s.insert(pkt.dst_ip as u64);
        }
    }

    fn passes_attr(&self, attr: &AttrValue) -> bool {
        attr.scalar() >= self.threshold as f64
    }

    fn passes_exact(&self, st: &ExactStat) -> bool {
        st.scalar() >= self.threshold as f64
    }
}

/// Super-spreader detection with the Vector Bloom Filter.
#[derive(Debug, Clone, Copy)]
pub struct VbfApp {
    threshold: u64,
}

impl VbfApp {
    /// Paper configuration: 5 arrays of 4096 bitmaps (the invertible
    /// bit-slice geometry is fixed, so the memory budget is too: 160 KB).
    pub fn new(threshold: u64) -> VbfApp {
        VbfApp { threshold }
    }

    /// The hot-cell criterion matching the spread threshold: a cell
    /// holding `threshold` distinct elements has about
    /// `m·(1 − e^(−T/m))` set bits (inverse of linear counting).
    fn min_ones(&self) -> u32 {
        let m = ow_sketch::vbf::VBF_CELL_BITS as f64;
        let t = self.threshold as f64;
        (m * (1.0 - (-t / m).exp())).floor().max(1.0) as u32
    }
}

impl WindowApp for VbfApp {
    type State = VectorBloomFilter;

    fn key_kind(&self) -> KeyKind {
        KeyKind::SrcIp
    }

    fn make_state(&self, _memory_bytes: usize, seed: u64) -> VectorBloomFilter {
        // The VBF's invertible geometry is fixed (5 × 4096 × 64 bits);
        // the budget parameter is intentionally ignored.
        VectorBloomFilter::new(seed)
    }

    fn update(&self, st: &mut VectorBloomFilter, pkt: &Packet) {
        st.update_element(&pkt.key(KeyKind::SrcIp), element_of(pkt));
    }

    fn query(&self, st: &VectorBloomFilter, key: &FlowKey) -> AttrValue {
        AttrValue::Distinction(st.cell_bitmap(key))
    }

    fn resident_keys(&self, st: &VectorBloomFilter) -> Vec<FlowKey> {
        st.candidates(self.min_ones())
    }

    fn reset(&self, st: &mut VectorBloomFilter) {
        st.reset();
    }

    fn exact_new(&self) -> ExactStat {
        ExactStat::Distinct(HashSet::new())
    }

    fn exact_update(&self, st: &mut ExactStat, pkt: &Packet) {
        if let ExactStat::Distinct(s) = st {
            s.insert(pkt.dst_ip as u64);
        }
    }

    fn passes_attr(&self, attr: &AttrValue) -> bool {
        attr.scalar() >= self.threshold as f64
    }

    fn passes_exact(&self, st: &ExactStat) -> bool {
        st.scalar() >= self.threshold as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ow_common::packet::TcpFlags;
    use ow_common::time::Instant;
    use ow_query::spec::standard_queries;

    fn pkt(src: u32, dst: u32) -> Packet {
        Packet::tcp(Instant::ZERO, src, dst, 1, 80, TcpFlags::ack(), 100)
    }

    #[test]
    fn heavy_hitter_app_counts_packets() {
        let app = HeavyHitterApp::mv(3);
        let mut st = app.make_state(64 * 1024, 1);
        for _ in 0..5 {
            app.update(&mut st, &pkt(1, 2));
        }
        let key = pkt(1, 2).five_tuple();
        assert_eq!(app.query(&st, &key), AttrValue::Frequency(5));
        assert!(app.passes_attr(&app.query(&st, &key)));
        assert!(app.resident_keys(&st).contains(&key));
        // Exact reference agrees.
        let mut ex = app.exact_new();
        for _ in 0..5 {
            app.exact_update(&mut ex, &pkt(1, 2));
        }
        assert!(app.passes_exact(&ex));
        assert_eq!(ex.scalar(), 5.0);
    }

    #[test]
    fn size_app_counts_bytes() {
        let app = SizeApp::count_min(150);
        let mut st = app.make_state(64 * 1024, 2);
        app.update(&mut st, &pkt(1, 2));
        app.update(&mut st, &pkt(1, 2));
        let key = pkt(1, 2).five_tuple();
        assert_eq!(app.query(&st, &key), AttrValue::Frequency(200));
        assert!(app.passes_attr(&AttrValue::Frequency(200)));
        assert!(!app.passes_attr(&AttrValue::Frequency(100)));
    }

    #[test]
    fn spread_app_afr_is_mergeable_bitmap() {
        let app = SpreadApp::new(10);
        let mut st1 = app.make_state(256 * 1024, 3);
        let mut st2 = app.make_state(256 * 1024, 3);
        // 15 distinct destinations split across two sub-windows with
        // overlap: union must count ~20, not 30.
        for d in 0..15u32 {
            app.update(&mut st1, &pkt(7, d));
        }
        for d in 10..25u32 {
            app.update(&mut st2, &pkt(7, d));
        }
        let key = FlowKey::src_ip(7);
        let mut a = app.query(&st1, &key);
        let b = app.query(&st2, &key);
        a.merge(&b).unwrap();
        let est = a.scalar();
        assert!((15.0..32.0).contains(&est), "union estimate {est}");
        assert!(app.passes_attr(&a));
    }

    #[test]
    fn vbf_app_bitmap_has_native_size() {
        let app = VbfApp::new(10);
        let mut st = app.make_state(160 * 1024, 4);
        for d in 0..20u32 {
            app.update(&mut st, &pkt(9, d));
        }
        match app.query(&st, &FlowKey::src_ip(9)) {
            AttrValue::Distinction(bm) => {
                assert_eq!(bm.logical_bits, 64);
                let est = bm.estimate();
                assert!((10.0..40.0).contains(&est), "estimate {est}");
            }
            other => panic!("wrong AFR {other:?}"),
        }
    }

    #[test]
    fn query_app_exact_and_register_agree_without_collisions() {
        let q5 = standard_queries()[4]; // SYN-flood count per dst
        let app = QueryApp::new(q5);
        let mut st = app.make_state(1 << 20, 5);
        let mut ex = app.exact_new();
        for i in 0..90u32 {
            let p = Packet::tcp(Instant::ZERO, i, 7, 1, 80, TcpFlags::syn(), 64);
            assert!(app.filter(&p));
            app.update(&mut st, &p);
            app.exact_update(&mut ex, &p);
        }
        let victim = FlowKey::dst_ip(7);
        assert_eq!(app.query(&st, &victim).scalar(), 90.0);
        assert_eq!(ex.scalar(), 90.0);
        assert!(app.passes_attr(&app.query(&st, &victim)));
        assert!(app.passes_exact(&ex));
    }

    #[test]
    fn query_app_filter_excludes() {
        let q2 = standard_queries()[1]; // SSH brute force
        let app = QueryApp::new(q2);
        let p = pkt(1, 2); // ACK to port 80
        assert!(!app.filter(&p));
    }
}
