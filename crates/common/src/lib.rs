//! Common foundation types for OmniWindow-RS.
//!
//! This crate holds everything shared between the data-plane model
//! (`ow-switch`), the controller (`ow-controller`), the sketch library
//! (`ow-sketch`), and the experiment harness:
//!
//! * the packet model ([`packet`]) including the OmniWindow custom header
//!   that the paper places between Ethernet and IP,
//! * flow keys ([`flowkey`]) — five-tuple and coarser projections,
//! * application-derived flow records ([`afr`]) and their merge algebra,
//! * a deterministic multiply-shift / mixer hash family ([`hash`]) used by
//!   all sketches so experiments are reproducible,
//! * the per-window lifecycle state machine ([`engine`]) consumed by
//!   both the switch and the controller so the two sides cannot drift,
//! * virtual time ([`time`]) — the discrete-event nanosecond clock,
//! * a Zipf sampler ([`zipf`]) for CAIDA-like heavy-tailed synthetic traces,
//! * accuracy metrics ([`metrics`]) — precision / recall / ARE / AARE.
//!
//! The crate is `#![forbid(unsafe_code)]` and allocation-light: packet and
//! key types are `Copy`, so the simulator can replay millions of packets
//! without touching the heap.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod afr;
pub mod block;
pub mod engine;
pub mod error;
pub mod flowkey;
pub mod hash;
pub mod metrics;
pub mod packet;
pub mod time;
pub mod zipf;

pub use afr::{AttrKind, AttrValue, FlowRecord};
pub use block::{AttrColumn, RecordBlock, ShardScatter, DEFAULT_BLOCK_CAPACITY};
pub use error::OwError;
pub use flowkey::{FlowKey, KeyKind};
pub use packet::{OwFlag, OwHeader, Packet, TcpFlags};
pub use time::{Duration, Instant};
