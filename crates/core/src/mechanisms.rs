//! The seven window mechanisms of the evaluation.
//!
//! | Name | Paper label | Implementation |
//! |---|---|---|
//! | [`run_ideal`] (tumbling) | ITW | exact per-sub-window statistics, losslessly merged |
//! | [`run_ideal`] (sliding) | ISW | same, over sliding positions |
//! | [`run_conventional_tw`] with blackout | TW1 | one memory region; traffic during C&R is lost |
//! | [`run_conventional_tw`] without | TW2 | two memory regions; no loss, double memory |
//! | [`run_omniwindow`] (tumbling) | OTW | sub-window states + flowkey tracking + AFR merging |
//! | [`run_omniwindow`] (sliding) | OSW | same, sliding merge with eviction |
//! | [`run_sliding_sketch`] | SS | the Sliding Sketch baseline: two half-size states |
//!
//! All mechanisms take an optional `probes` list: keys whose merged
//! estimate is recorded per window, which is how the ARE experiments
//! compare a mechanism's per-flow estimates against the ideal values.

use std::collections::{HashMap, HashSet};

use ow_common::afr::FlowRecord;
use ow_common::flowkey::FlowKey;
use ow_common::time::Duration;
use ow_controller::table::MergeTable;
use ow_switch::flowkey::FlowkeyTracker;
use ow_trace::Trace;

use crate::app::WindowApp;
use crate::config::WindowConfig;
use crate::exact::ExactStat;

/// Tumbling or sliding reconstruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// Non-overlapping windows.
    Tumbling,
    /// Overlapping windows advancing by the configured slide.
    Sliding,
}

/// One window's outcome from a mechanism.
#[derive(Debug, Clone)]
pub struct WindowResult {
    /// Window index (tumbling index or sliding position).
    pub index: usize,
    /// Keys the mechanism reported.
    pub reported: HashSet<FlowKey>,
    /// Merged scalar estimates for the probe keys (0.0 when the key was
    /// not observed).
    pub estimates: HashMap<FlowKey, f64>,
}

fn window_ranges(cfg: &WindowConfig, total_subwindows: usize, mode: Mode) -> Vec<(usize, usize)> {
    let spw = cfg.subwindows_per_window();
    let step = match mode {
        Mode::Tumbling => spw,
        Mode::Sliding => cfg.subwindows_per_slide(),
    };
    let mut out = Vec::new();
    let mut start = 0usize;
    while start + spw <= total_subwindows {
        out.push((start, start + spw));
        start += step;
    }
    out
}

// ---------------------------------------------------------------------
// Ideal mechanisms (ITW / ISW).
// ---------------------------------------------------------------------

/// Run the error-free reference (ITW for tumbling, ISW for sliding).
pub fn run_ideal<A: WindowApp>(
    app: &A,
    trace: &Trace,
    cfg: &WindowConfig,
    mode: Mode,
) -> Vec<WindowResult> {
    let n_sub = cfg.subwindows_in(trace.duration);
    let mut sub_states: Vec<HashMap<FlowKey, ExactStat>> = vec![HashMap::new(); n_sub];
    for pkt in trace.iter() {
        if !app.filter(pkt) {
            continue;
        }
        let s = cfg.subwindow_of(pkt.ts) as usize;
        if s >= n_sub {
            continue; // tail beyond the last complete sub-window
        }
        let key = pkt.key(app.key_kind());
        let st = sub_states[s].entry(key).or_insert_with(|| app.exact_new());
        app.exact_update(st, pkt);
    }

    window_ranges(cfg, n_sub, mode)
        .into_iter()
        .enumerate()
        .map(|(index, (lo, hi))| {
            let mut merged: HashMap<FlowKey, ExactStat> = HashMap::new();
            for sub in &sub_states[lo..hi] {
                for (k, v) in sub {
                    match merged.get_mut(k) {
                        Some(acc) => acc.merge(v),
                        None => {
                            merged.insert(*k, v.clone());
                        }
                    }
                }
            }
            let reported = merged
                .iter()
                .filter(|(_, v)| app.passes_exact(v))
                .map(|(k, _)| *k)
                .collect();
            let estimates = merged.iter().map(|(k, v)| (*k, v.scalar())).collect();
            WindowResult {
                index,
                reported,
                estimates,
            }
        })
        .collect()
}

// ---------------------------------------------------------------------
// Conventional tumbling windows (TW1 / TW2).
// ---------------------------------------------------------------------

/// Run a conventional tumbling-window mechanism with full-window state.
///
/// `blackout` models TW1's hazard: the slow C&R of the previous window
/// runs on the *same* memory region at the start of each window, so
/// traffic arriving during the first `blackout` of every window (except
/// the first) is not measured. Pass `Duration::ZERO` for TW2 (a second
/// region absorbs the C&R).
pub fn run_conventional_tw<A: WindowApp>(
    app: &A,
    trace: &Trace,
    cfg: &WindowConfig,
    memory_bytes: usize,
    blackout: Duration,
    seed: u64,
    probes: &[FlowKey],
) -> Vec<WindowResult> {
    let n_sub = cfg.subwindows_in(trace.duration);
    let ranges = window_ranges(cfg, n_sub, Mode::Tumbling);
    let win_ns = cfg.window().as_nanos();
    let mut state = app.make_state(memory_bytes, seed);
    let mut results = Vec::with_capacity(ranges.len());
    let mut window_idx = 0usize;

    for pkt in trace.iter() {
        if window_idx >= ranges.len() {
            break;
        }
        let w = (pkt.ts.as_nanos() / win_ns) as usize;
        // Close finished windows (possibly several on a sparse trace).
        while w > window_idx && window_idx < ranges.len() {
            results.push(report_window(app, &state, window_idx, probes));
            app.reset(&mut state);
            window_idx += 1;
        }
        if window_idx >= ranges.len() {
            break;
        }
        if !app.filter(pkt) {
            continue;
        }
        // TW1 blackout: the region is being reset during the first
        // `blackout` of every window after the first.
        if window_idx > 0 {
            let into_window = pkt.ts.as_nanos() - window_idx as u64 * win_ns;
            if into_window < blackout.as_nanos() {
                continue;
            }
        }
        app.update(&mut state, pkt);
    }
    // Close remaining complete windows.
    while window_idx < ranges.len() {
        results.push(report_window(app, &state, window_idx, probes));
        app.reset(&mut state);
        window_idx += 1;
    }
    results
}

fn report_window<A: WindowApp>(
    app: &A,
    state: &A::State,
    index: usize,
    probes: &[FlowKey],
) -> WindowResult {
    let reported = app
        .resident_keys(state)
        .into_iter()
        .filter(|k| app.passes_attr(&app.query(state, k)))
        .collect();
    let estimates = probes
        .iter()
        .map(|k| (*k, app.query(state, k).scalar()))
        .collect();
    WindowResult {
        index,
        reported,
        estimates,
    }
}

// ---------------------------------------------------------------------
// OmniWindow (OTW / OSW).
// ---------------------------------------------------------------------

/// Run the OmniWindow mechanism: per-sub-window states with flowkey
/// tracking, AFR generation at every sub-window end, and controller-side
/// merging into tumbling or sliding windows.
///
/// `subwindow_memory` is the budget per sub-window (the paper allocates
/// 1/4 of the original window's memory to each of the five sub-windows
/// because traffic is non-uniform). `fk_capacity` bounds the data-plane
/// flowkey array; overflow keys are tracked by the controller exactly as
/// Algorithm 1 prescribes.
#[allow(clippy::too_many_arguments)]
pub fn run_omniwindow<A: WindowApp>(
    app: &A,
    trace: &Trace,
    cfg: &WindowConfig,
    mode: Mode,
    subwindow_memory: usize,
    seed: u64,
) -> Vec<WindowResult> {
    run_omniwindow_probed(
        app,
        trace,
        cfg,
        mode,
        subwindow_memory,
        64 * 1024,
        seed,
        &[],
    )
}

/// [`run_omniwindow`] with explicit flowkey-array capacity and probes.
#[allow(clippy::too_many_arguments)]
pub fn run_omniwindow_probed<A: WindowApp>(
    app: &A,
    trace: &Trace,
    cfg: &WindowConfig,
    mode: Mode,
    subwindow_memory: usize,
    fk_capacity: usize,
    seed: u64,
    probes: &[FlowKey],
) -> Vec<WindowResult> {
    let n_sub = cfg.subwindows_in(trace.duration);
    // Generate one AFR batch per sub-window. The hardware reuses two
    // regions; functionally each sub-window sees a freshly reset state,
    // which a single state + reset reproduces exactly.
    let mut state = app.make_state(subwindow_memory, seed);
    let mut tracker = FlowkeyTracker::new(fk_capacity, fk_capacity * 2, seed ^ 0xF1);
    let mut batches: Vec<Vec<FlowRecord>> = Vec::with_capacity(n_sub);
    let mut current = 0usize;

    let finish_subwindow =
        |state: &mut A::State, tracker: &mut FlowkeyTracker, sw: usize| -> Vec<FlowRecord> {
            let mut keys: Vec<FlowKey> = app.resident_keys(state);
            keys.extend_from_slice(tracker.buffered());
            keys.extend_from_slice(tracker.overflowed());
            keys.sort_by_key(|k| k.as_u128());
            keys.dedup();
            let batch = keys
                .iter()
                .enumerate()
                .map(|(i, k)| FlowRecord {
                    key: *k,
                    attr: app.query(state, k),
                    subwindow: sw as u32,
                    seq: i as u32,
                })
                .collect();
            app.reset(state);
            tracker.reset();
            batch
        };

    for pkt in trace.iter() {
        let s = cfg.subwindow_of(pkt.ts) as usize;
        if s >= n_sub {
            break;
        }
        while s > current {
            let b = finish_subwindow(&mut state, &mut tracker, current);
            batches.push(b);
            current += 1;
        }
        if !app.filter(pkt) {
            continue;
        }
        app.update(&mut state, pkt);
        tracker.track(&pkt.key(app.key_kind()));
    }
    while current < n_sub {
        let b = finish_subwindow(&mut state, &mut tracker, current);
        batches.push(b);
        current += 1;
    }

    // Controller-side merging.
    let spw = cfg.subwindows_per_window();
    let ranges = window_ranges(cfg, n_sub, mode);
    let mut results = Vec::with_capacity(ranges.len());
    match mode {
        Mode::Tumbling => {
            for (index, (lo, hi)) in ranges.into_iter().enumerate() {
                let mut table = MergeTable::new();
                for (sw, batch) in batches[lo..hi].iter().enumerate() {
                    table.insert_batch((lo + sw) as u32, batch.clone());
                }
                results.push(report_table(app, &table, index, probes));
            }
        }
        Mode::Sliding => {
            let mut table = MergeTable::new();
            let mut inserted = 0usize;
            for (index, (_lo, hi)) in ranges.into_iter().enumerate() {
                while inserted < hi {
                    table.insert_batch(inserted as u32, batches[inserted].clone());
                    inserted += 1;
                }
                while table.subwindows().len() > spw {
                    table.evict_oldest();
                }
                results.push(report_table(app, &table, index, probes));
            }
        }
    }
    results
}

fn report_table<A: WindowApp>(
    app: &A,
    table: &MergeTable,
    index: usize,
    probes: &[FlowKey],
) -> WindowResult {
    let reported = table
        .iter()
        .filter(|(_, v)| app.passes_attr(v))
        .map(|(k, _)| k)
        .collect();
    let estimates = probes
        .iter()
        .map(|k| {
            let v = table.get(k).map(|a| a.scalar()).unwrap_or(0.0);
            (*k, v)
        })
        .collect();
    WindowResult {
        index,
        reported,
        estimates,
    }
}

// ---------------------------------------------------------------------
// Sliding Sketch baseline (SS).
// ---------------------------------------------------------------------

/// Run the Sliding Sketch baseline: two half-memory states; the current
/// one absorbs traffic, both answer queries, rotation happens at
/// tumbling boundaries. Queries therefore reflect one-to-two windows of
/// traffic — the over-inclusion the paper measures.
pub fn run_sliding_sketch<A: WindowApp>(
    app: &A,
    trace: &Trace,
    cfg: &WindowConfig,
    memory_bytes: usize,
    seed: u64,
    probes: &[FlowKey],
) -> Vec<WindowResult> {
    let n_sub = cfg.subwindows_in(trace.duration);
    let ranges = window_ranges(cfg, n_sub, Mode::Sliding);
    let win_ns = cfg.window().as_nanos();
    let sub_ns = cfg.subwindow().as_nanos();

    let mut cur = app.make_state(memory_bytes / 2, seed);
    let mut prev = app.make_state(memory_bytes / 2, seed);
    let mut results = Vec::with_capacity(ranges.len());
    let mut next_rotation = win_ns;

    // Sliding position i ends at sub-window boundary (i + spw) * sub.
    let mut next_report_idx = 0usize;

    let report_ss = |cur: &A::State, prev: &A::State, index: usize| {
        let mut keys: Vec<FlowKey> = app.resident_keys(cur);
        keys.extend(app.resident_keys(prev));
        keys.sort_by_key(|k| k.as_u128());
        keys.dedup();
        let merged = |k: &FlowKey| {
            let mut a = app.query(cur, k);
            let b = app.query(prev, k);
            let _ = a.merge(&b);
            a
        };
        let reported = keys
            .into_iter()
            .filter(|k| app.passes_attr(&merged(k)))
            .collect();
        let estimates = probes.iter().map(|k| (*k, merged(k).scalar())).collect();
        WindowResult {
            index,
            reported,
            estimates,
        }
    };

    for pkt in trace.iter() {
        // Emit reports for every sliding position that ended before this
        // packet.
        while next_report_idx < ranges.len() {
            let end_ns = (ranges[next_report_idx].1 as u64) * sub_ns;
            if pkt.ts.as_nanos() >= end_ns {
                // Rotations strictly before this report point happen
                // first; a rotation exactly at the report boundary is
                // applied after the query, so the estimate reflects the
                // one-to-two windows ending at the boundary.
                while next_rotation < end_ns {
                    std::mem::swap(&mut cur, &mut prev);
                    app.reset(&mut cur);
                    next_rotation += win_ns;
                }
                results.push(report_ss(&cur, &prev, next_report_idx));
                next_report_idx += 1;
            } else {
                break;
            }
        }
        while pkt.ts.as_nanos() >= next_rotation {
            std::mem::swap(&mut cur, &mut prev);
            app.reset(&mut cur);
            next_rotation += win_ns;
        }
        if app.filter(pkt) {
            app.update(&mut cur, pkt);
        }
    }
    while next_report_idx < ranges.len() {
        results.push(report_ss(&cur, &prev, next_report_idx));
        next_report_idx += 1;
    }
    results
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::app::HeavyHitterApp;
    use ow_common::packet::{Packet, TcpFlags};
    use ow_common::time::{Duration, Instant};

    fn cfg() -> WindowConfig {
        WindowConfig::paper_default()
    }

    /// A trace with one heavy flow burst straddling the 500ms boundary
    /// (Figure 1) plus steady light flows.
    fn boundary_trace() -> Trace {
        let mut packets = Vec::new();
        // Light background: flows 1..20, one packet per 50ms each.
        for f in 1..20u32 {
            for t in (0..1500).step_by(50) {
                packets.push(Packet::tcp(
                    Instant::from_millis(t + (f as u64) % 7),
                    f,
                    100,
                    10,
                    80,
                    TcpFlags::ack(),
                    100,
                ));
            }
        }
        // Heavy burst: 120 packets in [450ms, 550ms) — 60 in window 0,
        // 60 in window 1, so no tumbling window sees all 120.
        for i in 0..120u64 {
            packets.push(Packet::tcp(
                Instant::from_nanos(450_000_000 + i * 100_000_000 / 120),
                77,
                100,
                10,
                80,
                TcpFlags::ack(),
                100,
            ));
        }
        packets.sort_by_key(|p| p.ts);
        Trace {
            packets,
            duration: Duration::from_millis(1500),
        }
    }

    #[test]
    fn ideal_tumbling_misses_boundary_burst() {
        // The Figure-1 pathology: with a threshold of 100, neither
        // tumbling window reports flow 77 (60+60), but the sliding window
        // catches it.
        let app = HeavyHitterApp::mv(100);
        let trace = boundary_trace();
        let burst_key = trace
            .packets
            .iter()
            .find(|p| p.src_ip == 77)
            .unwrap()
            .five_tuple();

        let itw = run_ideal(&app, &trace, &cfg(), Mode::Tumbling);
        assert!(itw.iter().all(|w| !w.reported.contains(&burst_key)));

        let isw = run_ideal(&app, &trace, &cfg(), Mode::Sliding);
        assert!(
            isw.iter().any(|w| w.reported.contains(&burst_key)),
            "sliding window must catch the boundary burst"
        );
    }

    #[test]
    fn omniwindow_tumbling_matches_ideal_with_ample_memory() {
        let app = HeavyHitterApp::mv(50);
        let trace = boundary_trace();
        let c = cfg();
        let itw = run_ideal(&app, &trace, &c, Mode::Tumbling);
        let otw = run_omniwindow(&app, &trace, &c, Mode::Tumbling, 1 << 20, 7);
        assert_eq!(itw.len(), otw.len());
        for (i, o) in itw.iter().zip(otw.iter()) {
            assert_eq!(i.reported, o.reported, "window {}", i.index);
        }
    }

    #[test]
    fn omniwindow_sliding_matches_ideal_with_ample_memory() {
        let app = HeavyHitterApp::mv(50);
        let trace = boundary_trace();
        let c = cfg();
        let isw = run_ideal(&app, &trace, &c, Mode::Sliding);
        let osw = run_omniwindow(&app, &trace, &c, Mode::Sliding, 1 << 20, 7);
        assert_eq!(isw.len(), osw.len());
        for (i, o) in isw.iter().zip(osw.iter()) {
            assert_eq!(i.reported, o.reported, "position {}", i.index);
        }
    }

    #[test]
    fn tw2_matches_ideal_reports_with_ample_memory() {
        let app = HeavyHitterApp::mv(50);
        let trace = boundary_trace();
        let c = cfg();
        let itw = run_ideal(&app, &trace, &c, Mode::Tumbling);
        let tw2 = run_conventional_tw(&app, &trace, &c, 1 << 20, Duration::ZERO, 7, &[]);
        assert_eq!(itw.len(), tw2.len());
        for (i, t) in itw.iter().zip(tw2.iter()) {
            assert_eq!(i.reported, t.reported, "window {}", i.index);
        }
    }

    #[test]
    fn tw1_blackout_loses_traffic() {
        let app = HeavyHitterApp::mv(50);
        let trace = boundary_trace();
        let c = cfg();
        // A 100ms blackout swallows the second half of the burst (which
        // lands in [500,550ms) of window 1).
        let tw1 = run_conventional_tw(
            &app,
            &trace,
            &c,
            1 << 20,
            Duration::from_millis(100),
            7,
            &[],
        );
        let tw2 = run_conventional_tw(&app, &trace, &c, 1 << 20, Duration::ZERO, 7, &[]);
        let burst_key = trace
            .packets
            .iter()
            .find(|p| p.src_ip == 77)
            .unwrap()
            .five_tuple();
        // Window 1 under TW2 sees 60 burst packets ≥ 50 → reported; TW1
        // lost them to the blackout.
        assert!(tw2[1].reported.contains(&burst_key));
        assert!(!tw1[1].reported.contains(&burst_key));
    }

    #[test]
    fn sliding_sketch_overreports_history() {
        // A flow heavy in window 0 but silent afterwards keeps being
        // reported by SS at positions whose true window excludes it.
        let app = HeavyHitterApp::mv(100);
        let mut packets = Vec::new();
        for i in 0..150u64 {
            packets.push(Packet::tcp(
                Instant::from_nanos(i * 3_000_000),
                55,
                100,
                10,
                80,
                TcpFlags::ack(),
                100,
            ));
        }
        // Keep the trace alive past 1500ms with a light flow.
        for t in (0..1500).step_by(25) {
            packets.push(Packet::tcp(
                Instant::from_millis(t),
                1,
                100,
                10,
                80,
                TcpFlags::ack(),
                100,
            ));
        }
        packets.sort_by_key(|p| p.ts);
        let trace = Trace {
            packets,
            duration: Duration::from_millis(1500),
        };
        let c = cfg();
        let key = FlowKey::five_tuple(55, 100, 10, 80, 6);

        let isw = run_ideal(&app, &trace, &c, Mode::Sliding);
        let ss = run_sliding_sketch(&app, &trace, &c, 1 << 20, 7, &[]);
        assert_eq!(isw.len(), ss.len());
        // Position 5 covers [500,1000): the flow is truly absent there…
        assert!(!isw[5].reported.contains(&key));
        // …but SS still reports it from the previous-window state.
        assert!(
            ss[5].reported.contains(&key),
            "SS must over-report the stale flow at position 5"
        );
    }

    #[test]
    fn probes_record_estimates() {
        let app = HeavyHitterApp::mv(1_000_000);
        let trace = boundary_trace();
        let c = cfg();
        let burst_key = FlowKey::five_tuple(77, 100, 10, 80, 6);
        let probes = vec![burst_key];
        let otw =
            run_omniwindow_probed(&app, &trace, &c, Mode::Tumbling, 1 << 20, 1024, 7, &probes);
        // Window 0 holds the first 60 burst packets.
        assert_eq!(otw[0].estimates[&burst_key], 60.0);
        assert_eq!(otw[1].estimates[&burst_key], 60.0);
        assert_eq!(otw[2].estimates[&burst_key], 0.0);
    }
}
