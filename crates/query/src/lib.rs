//! Sonata-style query-driven telemetry (the Exp#1 substrate).
//!
//! Sonata compiles declarative queries (filter / map / distinct /
//! reduce) into data-plane register programs. This crate provides:
//!
//! * [`spec`] — a declarative query model covering the seven anomaly
//!   detection queries of Table 1 (Q1–Q7),
//! * [`plan`] — the declarative dataflow front end (filter → group_by
//!   → aggregate → having) that compiles into executable specs,
//! * [`exact`] — an error-free execution engine (hash maps), used for
//!   the ideal-window ground truths ITW/ISW,
//! * [`registers`] — the data-plane engine: hash-indexed register cells
//!   *without collision handling*, faithfully reproducing the error
//!   source the paper attributes to Sonata ("the stateful operators of
//!   Sonata do not handle hash conflicts, which cannot be avoided by
//!   OmniWindow").

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod exact;
pub mod plan;
pub mod registers;
pub mod spec;

pub use exact::ExactEngine;
pub use plan::{Agg, Pred, QueryPlan};
pub use registers::RegisterEngine;
pub use spec::{standard_queries, QuerySpec, StatKind};
