//! Exp#2 (Figure 8): sketch-based algorithms under the window settings.
//!
//! Eight sketches across four query types:
//! Q8 super-spreaders (SpreadSketch, Vector Bloom Filter — precision/
//! recall), Q9 heavy hitters (MV-Sketch, HashPipe — precision/recall),
//! Q10 per-flow size (Count-Min, SuMax — ARE vs ideal), Q11 flow
//! cardinality (Linear Counting, HyperLogLog — AARE vs ideal).
//! The Sliding Sketch baseline (SS) joins every sliding comparison.

use std::collections::HashSet;

use serde::Serialize;

use ow_common::flowkey::FlowKey;
use ow_common::time::Duration;

use crate::app::{HeavyHitterApp, SizeApp, SpreadApp, VbfApp, WindowApp};
use crate::cardinality::{
    conventional_cardinality, ideal_cardinality, omniwindow_cardinality,
    sliding_sketch_cardinality, Estimator,
};
use crate::config::WindowConfig;
use crate::evaluate::{aare, score_estimates, score_reports};
use crate::experiments::common::{evaluation_trace, MechScore, Scale};
use crate::experiments::exp1_queries::TW1_BLACKOUT;
use crate::mechanisms::{
    run_conventional_tw, run_ideal, run_omniwindow_probed, run_sliding_sketch, Mode,
};

/// Accuracy of one sketch under every window setting.
#[derive(Debug, Clone, Serialize)]
pub struct SketchAccuracy {
    /// Query id (Q8–Q11).
    pub query: String,
    /// Sketch name.
    pub sketch: String,
    /// Precision/recall rows (detection sketches) — empty for error
    /// metrics.
    pub rows: Vec<MechScore>,
    /// Relative-error rows `(mechanism, error)` (estimation sketches) —
    /// empty for detection metrics.
    pub errors: Vec<(String, f64)>,
}

/// The whole experiment.
#[derive(Debug, Clone, Serialize)]
pub struct Exp2Result {
    /// One entry per (query, sketch) pair.
    pub sketches: Vec<SketchAccuracy>,
}

fn detection_rows<A: WindowApp>(
    app: &A,
    trace: &ow_trace::Trace,
    cfg: &WindowConfig,
    scale: Scale,
    seed: u64,
) -> Vec<MechScore> {
    let mem = scale.window_memory();
    let sub_mem = scale.subwindow_memory();
    let fk = scale.fk_capacity();
    let itw = run_ideal(app, trace, cfg, Mode::Tumbling);
    let isw = run_ideal(app, trace, cfg, Mode::Sliding);
    let tw1 = run_conventional_tw(app, trace, cfg, mem, TW1_BLACKOUT, seed, &[]);
    let tw2 = run_conventional_tw(app, trace, cfg, mem, Duration::ZERO, seed, &[]);
    let otw = run_omniwindow_probed(app, trace, cfg, Mode::Tumbling, sub_mem, fk, seed, &[]);
    let osw = run_omniwindow_probed(app, trace, cfg, Mode::Sliding, sub_mem, fk, seed, &[]);
    let ss = run_sliding_sketch(app, trace, cfg, mem, seed, &[]);

    let mut rows = Vec::new();
    let mut push = |name: &str, pr: ow_common::metrics::PrecisionRecall| {
        rows.push(MechScore {
            mechanism: name.to_string(),
            precision: pr.precision,
            recall: pr.recall,
        });
    };
    push("TW1", score_reports(&tw1, &itw));
    push("TW2", score_reports(&tw2, &itw));
    push("OTW", score_reports(&otw, &itw));
    push("OSW", score_reports(&osw, &isw));
    push("SS", score_reports(&ss, &isw));
    rows
}

fn probe_keys<A: WindowApp>(app: &A, trace: &ow_trace::Trace) -> Vec<FlowKey> {
    let mut keys: HashSet<FlowKey> = HashSet::new();
    for pkt in trace.iter() {
        if app.filter(pkt) {
            keys.insert(pkt.key(app.key_kind()));
        }
    }
    let mut v: Vec<FlowKey> = keys.into_iter().collect();
    v.sort_by_key(|k| k.as_u128());
    v
}

fn error_rows<A: WindowApp>(
    app: &A,
    trace: &ow_trace::Trace,
    cfg: &WindowConfig,
    scale: Scale,
    seed: u64,
) -> Vec<(String, f64)> {
    let mem = scale.window_memory();
    let sub_mem = scale.subwindow_memory();
    let fk = scale.fk_capacity();
    let probes = probe_keys(app, trace);
    let itw = run_ideal(app, trace, cfg, Mode::Tumbling);
    let isw = run_ideal(app, trace, cfg, Mode::Sliding);
    let tw1 = run_conventional_tw(app, trace, cfg, mem, TW1_BLACKOUT, seed, &probes);
    let tw2 = run_conventional_tw(app, trace, cfg, mem, Duration::ZERO, seed, &probes);
    let otw = run_omniwindow_probed(app, trace, cfg, Mode::Tumbling, sub_mem, fk, seed, &probes);
    let osw = run_omniwindow_probed(app, trace, cfg, Mode::Sliding, sub_mem, fk, seed, &probes);
    let ss = run_sliding_sketch(app, trace, cfg, mem, seed, &probes);
    vec![
        ("TW1".into(), score_estimates(&tw1, &itw)),
        ("TW2".into(), score_estimates(&tw2, &itw)),
        ("OTW".into(), score_estimates(&otw, &itw)),
        ("OSW".into(), score_estimates(&osw, &isw)),
        ("SS".into(), score_estimates(&ss, &isw)),
    ]
}

fn cardinality_rows(
    trace: &ow_trace::Trace,
    cfg: &WindowConfig,
    est_window: Estimator,
    est_sub: Estimator,
    seed: u64,
) -> Vec<(String, f64)> {
    let ideal_t = ideal_cardinality(trace, cfg, Mode::Tumbling);
    let ideal_s = ideal_cardinality(trace, cfg, Mode::Sliding);
    let tw1 = conventional_cardinality(trace, cfg, est_window, TW1_BLACKOUT, seed);
    let tw2 = conventional_cardinality(trace, cfg, est_window, Duration::ZERO, seed);
    let otw = omniwindow_cardinality(trace, cfg, Mode::Tumbling, est_sub, seed);
    let osw = omniwindow_cardinality(trace, cfg, Mode::Sliding, est_sub, seed);
    let ss = sliding_sketch_cardinality(trace, cfg, est_window, seed);
    vec![
        ("TW1".into(), aare(&tw1, &ideal_t)),
        ("TW2".into(), aare(&tw2, &ideal_t)),
        ("OTW".into(), aare(&otw, &ideal_t)),
        ("OSW".into(), aare(&osw, &ideal_s)),
        ("SS".into(), aare(&ss, &ideal_s)),
    ]
}

/// Run Exp#2.
pub fn run(scale: Scale, seed: u64) -> Exp2Result {
    let trace = evaluation_trace(scale, seed);
    let cfg = WindowConfig::paper_default();
    let mut sketches = Vec::new();

    // Q8: super-spreaders.
    let spread_threshold = 80;
    let sps = SpreadApp::new(spread_threshold);
    sketches.push(SketchAccuracy {
        query: "Q8".into(),
        sketch: "SpreadSketch".into(),
        rows: detection_rows(&sps, &trace, &cfg, scale, seed),
        errors: vec![],
    });
    let vbf = VbfApp::new(spread_threshold);
    sketches.push(SketchAccuracy {
        query: "Q8".into(),
        sketch: "VectorBloomFilter".into(),
        rows: detection_rows(&vbf, &trace, &cfg, scale, seed),
        errors: vec![],
    });

    // Q9: heavy hitters (packets per five-tuple).
    let hh_threshold = 120;
    let mv = HeavyHitterApp::mv(hh_threshold);
    sketches.push(SketchAccuracy {
        query: "Q9".into(),
        sketch: "MvSketch".into(),
        rows: detection_rows(&mv, &trace, &cfg, scale, seed),
        errors: vec![],
    });
    let hp = HeavyHitterApp::hashpipe(hh_threshold);
    sketches.push(SketchAccuracy {
        query: "Q9".into(),
        sketch: "HashPipe".into(),
        rows: detection_rows(&hp, &trace, &cfg, scale, seed),
        errors: vec![],
    });
    // Extension beyond the paper's eight: Elastic Sketch (§4.2's
    // heavy-keys-only example) under the same window settings.
    let es = HeavyHitterApp::elastic(hh_threshold);
    sketches.push(SketchAccuracy {
        query: "Q9".into(),
        sketch: "ElasticSketch".into(),
        rows: detection_rows(&es, &trace, &cfg, scale, seed),
        errors: vec![],
    });

    // Q10: per-flow size (bytes), scored by ARE.
    let cm = SizeApp::count_min(u64::MAX); // never reports; ARE only
    sketches.push(SketchAccuracy {
        query: "Q10".into(),
        sketch: "CountMin".into(),
        rows: vec![],
        errors: error_rows(&cm, &trace, &cfg, scale, seed),
    });
    let sm = SizeApp::sumax(u64::MAX);
    sketches.push(SketchAccuracy {
        query: "Q10".into(),
        sketch: "SuMax".into(),
        rows: vec![],
        errors: error_rows(&sm, &trace, &cfg, scale, seed),
    });

    // Q11: flow cardinality, scored by AARE. Window instances get the
    // full window budget; sub-window instances the sub-window budget.
    let lc_bits_win = scale.window_memory() * 8 / 16; // bits
    let lc_bits_sub = lc_bits_win / 4;
    sketches.push(SketchAccuracy {
        query: "Q11".into(),
        sketch: "LinearCounting".into(),
        rows: vec![],
        errors: cardinality_rows(
            &trace,
            &cfg,
            Estimator::LinearCounting { bits: lc_bits_win },
            Estimator::LinearCounting { bits: lc_bits_sub },
            seed,
        ),
    });
    let hll_p_win = match scale {
        Scale::Tiny => 11,
        Scale::Small => 12,
        Scale::Paper => 14,
    };
    sketches.push(SketchAccuracy {
        query: "Q11".into(),
        sketch: "HyperLogLog".into(),
        rows: vec![],
        errors: cardinality_rows(
            &trace,
            &cfg,
            Estimator::HyperLogLog {
                precision: hll_p_win,
            },
            Estimator::HyperLogLog {
                precision: hll_p_win - 2,
            },
            seed,
        ),
    });

    Exp2Result { sketches }
}

impl Exp2Result {
    /// Look up one (query, sketch) entry.
    pub fn get(&self, query: &str, sketch: &str) -> Option<&SketchAccuracy> {
        self.sketches
            .iter()
            .find(|s| s.query == query && s.sketch == sketch)
    }
}

impl SketchAccuracy {
    /// A detection row by mechanism name.
    pub fn row(&self, mechanism: &str) -> Option<&MechScore> {
        self.rows.iter().find(|r| r.mechanism == mechanism)
    }

    /// An error value by mechanism name.
    pub fn error(&self, mechanism: &str) -> Option<f64> {
        self.errors
            .iter()
            .find(|(m, _)| m == mechanism)
            .map(|(_, e)| *e)
    }
}
