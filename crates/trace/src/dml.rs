//! Distributed-ML parameter-server traffic for the Exp#3 case study.
//!
//! The paper trains VGG19/CIFAR-10 on four hosts (one parameter server,
//! three workers) and tags every packet with the training-iteration
//! number; OmniWindow's user-defined signals then measure per-iteration
//! time. Gradients are compressed with a dynamic ratio that "starts from
//! 2 and doubles every 16 iterations until it reaches 2048".
//!
//! We synthesize the same traffic shape: per iteration, each worker
//! pushes `base_gradient_bytes / ratio` bytes to the server and pulls the
//! updated model back; the per-iteration wall time is dominated by the
//! transfer, so measured iteration times fall as the ratio doubles —
//! exactly the staircase of Figure 9.

use ow_common::packet::{Packet, TcpFlags};
use ow_common::time::{Duration, Instant};

/// Configuration of the synthetic training job.
#[derive(Debug, Clone)]
pub struct DmlConfig {
    /// Number of worker hosts (the paper uses 3 + 1 server).
    pub workers: usize,
    /// Training iterations to generate.
    pub iterations: u32,
    /// Uncompressed gradient size in bytes (VGG19 ≈ 550 MB; scaled down
    /// here — only the *shape* over iterations matters).
    pub base_gradient_bytes: u64,
    /// Initial compression ratio (paper: 2).
    pub initial_ratio: u64,
    /// Iterations between ratio doublings (paper: 16).
    pub double_every: u32,
    /// Maximum ratio (paper: 2048).
    pub max_ratio: u64,
    /// Link throughput used to derive transfer times, bytes/sec.
    pub link_bytes_per_sec: u64,
    /// Fixed per-iteration compute time (forward/backward pass).
    pub compute_time: Duration,
    /// MTU-sized payload per packet.
    pub mtu: u16,
}

impl Default for DmlConfig {
    fn default() -> Self {
        DmlConfig {
            workers: 3,
            iterations: 160,
            base_gradient_bytes: 8 * 1024 * 1024,
            initial_ratio: 2,
            double_every: 16,
            max_ratio: 2048,
            link_bytes_per_sec: 1_000_000_000,
            compute_time: Duration::from_millis(2),
            mtu: 1400,
        }
    }
}

/// Address of the parameter server.
pub const PS_ADDR: u32 = 0x0AFE_0001;
/// Address of worker `w`.
pub fn worker_addr(w: usize) -> u32 {
    0x0AFE_0010 + w as u32
}

/// The compression ratio in effect at `iteration` (0-based).
pub fn compression_ratio(cfg: &DmlConfig, iteration: u32) -> u64 {
    let doublings = iteration / cfg.double_every;
    cfg.initial_ratio
        .saturating_mul(1u64 << doublings.min(63))
        .min(cfg.max_ratio)
}

/// Generate the parameter-server trace. Every packet's `app_tag` is the
/// 1-based iteration number (0 marks no tag), which is what the
/// user-defined window signal extracts.
pub fn generate(cfg: &DmlConfig) -> Vec<Packet> {
    let mut packets = Vec::new();
    let mut now = Instant::ZERO;
    for it in 0..cfg.iterations {
        let ratio = compression_ratio(cfg, it);
        let grad_bytes = (cfg.base_gradient_bytes / ratio).max(cfg.mtu as u64);
        let iter_tag = it + 1;

        // Workers push concurrently; iteration time = slowest worker.
        let mut iter_end = now;
        for w in 0..cfg.workers {
            let src = worker_addr(w);
            // Mild heterogeneity: worker w is (1 + w/10) slower.
            let eff_rate = cfg.link_bytes_per_sec * 10 / (10 + w as u64);
            let n_pkts = grad_bytes.div_ceil(cfg.mtu as u64);
            let total_ns = grad_bytes * 1_000_000_000 / eff_rate;
            for i in 0..n_pkts {
                let ts = now + Duration::from_nanos(total_ns * i / n_pkts.max(1));
                let mut p = Packet::tcp(
                    ts,
                    src,
                    PS_ADDR,
                    9000 + w as u16,
                    5000,
                    if i == 0 {
                        TcpFlags::syn()
                    } else {
                        TcpFlags::ack()
                    },
                    cfg.mtu,
                );
                p.app_tag = iter_tag;
                packets.push(p);
            }
            // Model pull back (small, one packet burst).
            let done = now + Duration::from_nanos(total_ns);
            let mut pull = Packet::tcp(
                done,
                PS_ADDR,
                src,
                5000,
                9000 + w as u16,
                TcpFlags::ack(),
                cfg.mtu,
            );
            pull.app_tag = iter_tag;
            packets.push(pull);
            if done > iter_end {
                iter_end = done;
            }
        }
        now = iter_end + cfg.compute_time;
    }
    packets.sort_by_key(|p| p.ts);
    packets
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratio_follows_paper_schedule() {
        let cfg = DmlConfig::default();
        assert_eq!(compression_ratio(&cfg, 0), 2);
        assert_eq!(compression_ratio(&cfg, 15), 2);
        assert_eq!(compression_ratio(&cfg, 16), 4);
        assert_eq!(compression_ratio(&cfg, 32), 8);
        assert_eq!(compression_ratio(&cfg, 159), 1024);
        assert_eq!(compression_ratio(&cfg, 160), 2048);
        // Capped at max.
        assert_eq!(compression_ratio(&cfg, 10_000), 2048);
    }

    #[test]
    fn every_packet_is_tagged() {
        let cfg = DmlConfig {
            iterations: 8,
            base_gradient_bytes: 64 * 1024,
            ..DmlConfig::default()
        };
        let pkts = generate(&cfg);
        assert!(!pkts.is_empty());
        assert!(pkts.iter().all(|p| p.app_tag >= 1 && p.app_tag <= 8));
    }

    #[test]
    fn iteration_volume_shrinks_with_compression() {
        let cfg = DmlConfig {
            iterations: 32,
            base_gradient_bytes: 1024 * 1024,
            ..DmlConfig::default()
        };
        let pkts = generate(&cfg);
        let count = |it: u32| pkts.iter().filter(|p| p.app_tag == it).count();
        // Iteration 17 (ratio 4) carries half the packets of iteration 1
        // (ratio 2), ± the pull packets.
        let early = count(1);
        let late = count(17);
        assert!(
            (late as f64) < early as f64 * 0.6,
            "early {early} late {late}"
        );
    }

    #[test]
    fn iterations_do_not_interleave() {
        let cfg = DmlConfig {
            iterations: 6,
            base_gradient_bytes: 128 * 1024,
            ..DmlConfig::default()
        };
        let pkts = generate(&cfg);
        // Last packet of iteration i precedes first packet of i+1.
        for it in 1..6u32 {
            let last_i = pkts
                .iter()
                .filter(|p| p.app_tag == it)
                .map(|p| p.ts)
                .max()
                .unwrap();
            let first_next = pkts
                .iter()
                .filter(|p| p.app_tag == it + 1)
                .map(|p| p.ts)
                .min()
                .unwrap();
            assert!(
                last_i <= first_next,
                "iterations {it}/{} interleave",
                it + 1
            );
        }
    }

    #[test]
    fn workers_are_heterogeneous() {
        let cfg = DmlConfig {
            iterations: 1,
            base_gradient_bytes: 1024 * 1024,
            ..DmlConfig::default()
        };
        let pkts = generate(&cfg);
        let span = |w: usize| {
            let ts: Vec<_> = pkts
                .iter()
                .filter(|p| p.src_ip == worker_addr(w))
                .map(|p| p.ts)
                .collect();
            ts.iter()
                .max()
                .unwrap()
                .saturating_since(*ts.iter().min().unwrap())
        };
        // Worker 2 is slower than worker 0.
        assert!(span(2) > span(0));
    }
}
