//! The declarative pipeline IR.
//!
//! A [`PipelineProgram`] is the static description of everything an
//! OmniWindow deployment asks of the RMT pipeline, at the granularity
//! the §2 constraints are stated at:
//!
//! * **register arrays** ([`RegisterDecl`]) — flattened §6 layouts:
//!   `regions × region_cells` 32-bit cells behind one SALU;
//! * **features** ([`FeatureDecl`]) — ordered match-action steps with
//!   their per-stage SRAM/SALU/VLIW/gateway appetite, exactly the shape
//!   `ow_switch::placement::place` packs onto physical stages;
//! * **paths** ([`PathDecl`]) — one entry per packet class
//!   ([`PacketClass`]): the register accesses a single pipeline pass of
//!   that class performs, plus a static bound on how often the packet
//!   recirculates.
//!
//! The IR is deliberately *declarative*: it contains no code, only the
//! facts the verifier needs to prove C4 (one SALU access per array per
//! pass), placement feasibility, budget fit, address-bounds safety, and
//! recirculation termination — ahead of constructing any runtime state.

use ow_switch::placement::StageLimits;
use ow_switch::resources::ResourceConfig;
use serde::Serialize;

/// A flattened register array (§6): `regions` regions of `region_cells`
/// 32-bit cells concatenated behind a single SALU.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct RegisterDecl {
    /// Unique array name (diagnostics reference it).
    pub name: String,
    /// Memory regions sharing the array (2 for the two-region layout).
    pub regions: usize,
    /// Cells per region.
    pub region_cells: usize,
}

impl RegisterDecl {
    /// Declare an array of `regions × region_cells` cells.
    pub fn new(name: impl Into<String>, regions: usize, region_cells: usize) -> RegisterDecl {
        RegisterDecl {
            name: name.into(),
            regions,
            region_cells,
        }
    }

    /// Total physical cells across all regions.
    pub fn cells(&self) -> usize {
        self.regions.saturating_mul(self.region_cells)
    }
}

/// One match-action step of a feature: its appetite within one stage.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct StepDecl {
    /// SRAM the step's tables/registers need in its stage (KB).
    pub sram_kb: u32,
    /// SALUs the step uses.
    pub salus: u32,
    /// VLIW action slots.
    pub vliw: u32,
    /// Gateways (predication units).
    pub gateways: u32,
}

/// A named feature: an ordered list of steps (dependency order).
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct FeatureDecl {
    /// Feature name (a Table 2 row).
    pub name: String,
    /// Steps in dependency order; step `i+1` must land in a later stage
    /// than step `i`.
    pub steps: Vec<StepDecl>,
}

impl FeatureDecl {
    /// Declare a feature from its ordered steps.
    pub fn new(name: impl Into<String>, steps: Vec<StepDecl>) -> FeatureDecl {
        FeatureDecl {
            name: name.into(),
            steps,
        }
    }
}

/// The packet classes whose pipeline paths the verifier proves safe.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum PacketClass {
    /// Ordinary measured traffic (stamp/adopt + application update).
    Normal,
    /// §4.3 clear packets sweeping one register index per pass.
    Clear,
    /// Algorithm 2 collection packets recirculating through `fk_buffer`.
    Recirculated,
    /// §8 retransmission / acknowledgement handling. Runs on the switch
    /// CPU against the parked AFR batches; a compliant program performs
    /// **no** SALU access on this path.
    Retransmit,
    /// §8 OS-path escalation: the slow switch-OS readback. Reads state
    /// via control-plane snapshots, outside the SALU pass discipline.
    OsRead,
}

impl PacketClass {
    /// Stable lowercase label used in diagnostics and JSON reports.
    pub fn label(&self) -> &'static str {
        match self {
            PacketClass::Normal => "normal",
            PacketClass::Clear => "clear",
            PacketClass::Recirculated => "recirculated",
            PacketClass::Retransmit => "retransmit",
            PacketClass::OsRead => "os-read",
        }
    }

    /// Whether packets of this class re-enter the pipeline after a pass,
    /// requiring a static termination bound.
    pub fn recirculates(&self) -> bool {
        matches!(self, PacketClass::Clear | PacketClass::Recirculated)
    }

    /// Whether this class runs on the switch CPU (control plane) rather
    /// than transiting the match-action pipeline. CPU classes must not
    /// declare SALU accesses.
    pub fn is_control_plane(&self) -> bool {
        matches!(self, PacketClass::Retransmit | PacketClass::OsRead)
    }
}

/// What the SALU does at the accessed cell (mirrors
/// `ow_switch::register::SaluOp` without carrying an operand).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum AccessKind {
    /// Read the cell.
    Read,
    /// Saturating add.
    AddSat,
    /// Running maximum.
    Max,
    /// Overwrite, returning the old value.
    Write,
}

/// One register-array access a path performs in a single pass.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct AccessDecl {
    /// Name of the accessed [`RegisterDecl`].
    pub register: String,
    /// Operation kind.
    pub kind: AccessKind,
    /// Static upper bound on the *within-region* index this path can
    /// compute (e.g. `hash % cells` has bound `cells - 1`). The verifier
    /// proves `max_index < region_cells`.
    pub max_index: usize,
}

impl AccessDecl {
    /// Declare an access with a static index bound.
    pub fn new(register: impl Into<String>, kind: AccessKind, max_index: usize) -> AccessDecl {
        AccessDecl {
            register: register.into(),
            kind,
            max_index,
        }
    }
}

/// The register accesses of one pipeline pass of one packet class.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct PathDecl {
    /// Human-readable path name for diagnostics.
    pub name: String,
    /// The packet class this path handles.
    pub class: PacketClass,
    /// Register accesses performed in a single pass of this path.
    pub accesses: Vec<AccessDecl>,
    /// Static bound on recirculations of one packet of this class
    /// (`None` = unknown / unbounded). Required (`Some`, finite) for
    /// classes where [`PacketClass::recirculates`] holds; a clear-packet
    /// sweep, for instance, is bounded by the region's cell count.
    pub max_recirculations: Option<u64>,
}

impl PathDecl {
    /// Declare a non-recirculating path.
    pub fn new(name: impl Into<String>, class: PacketClass, accesses: Vec<AccessDecl>) -> PathDecl {
        PathDecl {
            name: name.into(),
            class,
            accesses,
            max_recirculations: None,
        }
    }

    /// Attach a static recirculation bound.
    pub fn with_recirc_bound(mut self, bound: u64) -> PathDecl {
        self.max_recirculations = Some(bound);
        self
    }
}

/// The full static description of one pipeline deployment.
#[derive(Debug, Clone, Serialize)]
pub struct PipelineProgram {
    /// Program name (appears in reports).
    pub name: String,
    /// Per-stage budgets of the target pipeline.
    pub limits: StageLimits,
    /// Declared register arrays.
    pub registers: Vec<RegisterDecl>,
    /// Features to place onto stages.
    pub features: Vec<FeatureDecl>,
    /// Per-class pipeline paths.
    pub paths: Vec<PathDecl>,
}

impl PipelineProgram {
    /// Start an empty program against `limits`.
    pub fn new(name: impl Into<String>, limits: StageLimits) -> PipelineProgram {
        PipelineProgram {
            name: name.into(),
            limits,
            registers: Vec::new(),
            features: Vec::new(),
            paths: Vec::new(),
        }
    }

    /// Add a register array declaration.
    pub fn register(mut self, reg: RegisterDecl) -> Self {
        self.registers.push(reg);
        self
    }

    /// Add a feature.
    pub fn feature(mut self, feature: FeatureDecl) -> Self {
        self.features.push(feature);
        self
    }

    /// Add a path.
    pub fn path(mut self, path: PathDecl) -> Self {
        self.paths.push(path);
        self
    }

    /// Look up a register declaration by name.
    pub fn find_register(&self, name: &str) -> Option<&RegisterDecl> {
        self.registers.iter().find(|r| r.name == name)
    }
}

/// The paper's Table-2 OmniWindow program for a [`ResourceConfig`]:
/// the Exp#5 feature steps (via
/// [`ow_switch::placement::omniwindow_features`]) plus the register
/// arrays and per-class paths the window state machine implies.
/// `app_states` is the per-region cell count of the wrapped telemetry
/// application's state arrays (sizes the clear-packet sweep bound).
pub fn omniwindow_program(cfg: &ResourceConfig, app_states: usize) -> PipelineProgram {
    let fk_sram = cfg.bloom_kb + (cfg.fk_capacity * 13).div_ceil(1024) + 8;
    let rdma_sram = (cfg.rdma_hot_keys * 29).div_ceil(1024);
    let features: Vec<FeatureDecl> = ow_switch::placement::omniwindow_features(
        fk_sram,
        cfg.bloom_hashes,
        if cfg.rdma_enabled { rdma_sram } else { 0 },
    )
    .into_iter()
    .filter(|f| cfg.rdma_enabled || f.name != "RDMA opt.")
    .map(|f| {
        FeatureDecl::new(
            f.name,
            f.steps
                .iter()
                .map(|s| StepDecl {
                    sram_kb: s.sram_kb,
                    salus: s.salus,
                    vliw: s.vliw,
                    gateways: s.gateways,
                })
                .collect(),
        )
    })
    .collect();

    let app_states = app_states.max(1);
    let bloom_cells = (cfg.bloom_kb as usize * 1024 * 8 / 32)
        .div_ceil(cfg.bloom_hashes.max(1) as usize)
        .max(1);
    let fk_cells = (cfg.fk_capacity as usize).max(1);

    let mut program = PipelineProgram::new(
        format!(
            "omniwindow/table2(bloom={}KB,h={},fk={},rdma={})",
            cfg.bloom_kb, cfg.bloom_hashes, cfg.fk_capacity, cfg.rdma_enabled
        ),
        StageLimits::default(),
    )
    // The signal engine's last-boundary state: one cell, one region.
    .register(RegisterDecl::new("signal_state", 1, 1))
    // The wrapped application's window state: the §6 two-region layout.
    .register(RegisterDecl::new("win_state", 2, app_states))
    // fk_buffer: the per-region flowkey append array (Algorithm 1).
    .register(RegisterDecl::new("fk_buffer", 2, fk_cells))
    // Clear-packet progress counter for the in-switch reset.
    .register(RegisterDecl::new("reset_counter", 1, 1));
    // One Bloom filter array per hash (each behind its own SALU).
    for h in 0..cfg.bloom_hashes {
        program = program.register(RegisterDecl::new(format!("bloom_{h}"), 2, bloom_cells));
    }
    if cfg.rdma_enabled {
        program = program
            .register(RegisterDecl::new("psn_counter", 1, 1))
            .register(RegisterDecl::new("icrc_state", 1, 1));
    }
    for feature in features {
        program = program.feature(feature);
    }
    // Table 2 measures the framework's own overhead; the wrapped
    // application's state update is a pipeline feature too (its SALU
    // must be provisioned or win_state has nothing to serve it).
    program = program.feature(FeatureDecl::new(
        "Application state",
        vec![StepDecl {
            sram_kb: ((2 * app_states * 4).div_ceil(1024)) as u32,
            salus: 1,
            vliw: 2,
            gateways: 1,
        }],
    ));

    // Normal measured traffic: signal check, Bloom check-and-insert on
    // every hash, fk_buffer append, application state update.
    let mut normal = vec![
        AccessDecl::new("signal_state", AccessKind::Max, 0),
        AccessDecl::new("win_state", AccessKind::AddSat, app_states - 1),
        AccessDecl::new("fk_buffer", AccessKind::Write, fk_cells - 1),
    ];
    for h in 0..cfg.bloom_hashes {
        normal.push(AccessDecl::new(
            format!("bloom_{h}"),
            AccessKind::Max,
            bloom_cells - 1,
        ));
    }
    program = program.path(PathDecl::new("normal", PacketClass::Normal, normal));

    // Collection packets (Algorithm 2): read the enumerated flowkey,
    // query the application state, bump the RDMA counters when deployed;
    // recirculate once per buffered key.
    let mut collect = vec![
        AccessDecl::new("fk_buffer", AccessKind::Read, fk_cells - 1),
        AccessDecl::new("win_state", AccessKind::Read, app_states - 1),
    ];
    if cfg.rdma_enabled {
        collect.push(AccessDecl::new("psn_counter", AccessKind::AddSat, 0));
        collect.push(AccessDecl::new("icrc_state", AccessKind::Write, 0));
    }
    program = program.path(
        PathDecl::new("collect", PacketClass::Recirculated, collect)
            .with_recirc_bound(fk_cells as u64),
    );

    // Clear packets (§4.3): bump the reset counter, zero one index of
    // the application state; the sweep is bounded by the region size.
    program = program.path(
        PathDecl::new(
            "clear",
            PacketClass::Clear,
            vec![
                AccessDecl::new("reset_counter", AccessKind::AddSat, 0),
                AccessDecl::new("win_state", AccessKind::Write, app_states - 1),
            ],
        )
        .with_recirc_bound(app_states as u64),
    );

    // §8 control-plane paths: retransmit/ack serve parked batches from
    // switch-CPU DRAM, os-read uses snapshots — no SALU access on either.
    program = program
        .path(PathDecl::new("retransmit", PacketClass::Retransmit, vec![]))
        .path(PathDecl::new("os-read", PacketClass::OsRead, vec![]));
    program
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn omniwindow_program_declares_all_classes() {
        let p = omniwindow_program(&ResourceConfig::default(), 32 * 1024);
        let classes: Vec<PacketClass> = p.paths.iter().map(|p| p.class).collect();
        for c in [
            PacketClass::Normal,
            PacketClass::Clear,
            PacketClass::Recirculated,
            PacketClass::Retransmit,
            PacketClass::OsRead,
        ] {
            assert!(classes.contains(&c), "missing class {c:?}");
        }
    }

    #[test]
    fn rdma_toggle_changes_registers_and_features() {
        let on = omniwindow_program(&ResourceConfig::default(), 1024);
        let off = omniwindow_program(
            &ResourceConfig {
                rdma_enabled: false,
                ..ResourceConfig::default()
            },
            1024,
        );
        assert!(on.find_register("psn_counter").is_some());
        assert!(off.find_register("psn_counter").is_none());
        assert!(off.features.iter().all(|f| f.name != "RDMA opt."));
    }

    #[test]
    fn register_cells_multiply_regions() {
        let r = RegisterDecl::new("x", 2, 1024);
        assert_eq!(r.cells(), 2048);
    }
}
