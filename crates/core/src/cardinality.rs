//! Whole-window flow-cardinality estimation (Q11: LC / HyperLogLog).
//!
//! Cardinality estimators produce one number per window, not per-flow
//! records, so OmniWindow cannot generate AFRs for them. Instead the
//! data plane migrates the entire (small) state to the controller,
//! which merges sub-window states in the *distinct-union* way each
//! structure supports — bitmap OR for Linear Counting, register-wise max
//! for HyperLogLog (§8, "Merging intermediate data without AFRs").

use std::collections::HashSet;

use ow_common::flowkey::{FlowKey, KeyKind};
use ow_common::time::Duration;
use ow_sketch::{HyperLogLog, LinearCounting};
use ow_trace::Trace;

use crate::config::WindowConfig;
use crate::mechanisms::Mode;

/// Which estimator backs the cardinality pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Estimator {
    /// Linear Counting with the given bitmap bits per instance.
    LinearCounting {
        /// Bits per (sub-)window instance.
        bits: usize,
    },
    /// HyperLogLog with the given precision per instance.
    HyperLogLog {
        /// Precision `p` (2^p one-byte registers).
        precision: u8,
    },
}

enum State {
    Lc(LinearCounting),
    Hll(HyperLogLog),
}

impl State {
    fn new(est: Estimator, seed: u64) -> State {
        match est {
            Estimator::LinearCounting { bits } => State::Lc(LinearCounting::new(bits, seed)),
            Estimator::HyperLogLog { precision } => State::Hll(HyperLogLog::new(precision, seed)),
        }
    }

    fn insert(&mut self, key: &FlowKey) {
        match self {
            State::Lc(lc) => lc.insert(key),
            State::Hll(h) => h.insert(key),
        }
    }

    fn merge(&mut self, other: &State) {
        match (self, other) {
            (State::Lc(a), State::Lc(b)) => a.merge(b),
            (State::Hll(a), State::Hll(b)) => a.merge(b),
            _ => unreachable!("states built from one estimator"),
        }
    }

    fn estimate(&self) -> f64 {
        match self {
            State::Lc(lc) => lc.estimate(),
            State::Hll(h) => h.estimate(),
        }
    }
}

/// Exact per-window flow cardinalities (the ideal baseline).
pub fn ideal_cardinality(trace: &Trace, cfg: &WindowConfig, mode: Mode) -> Vec<f64> {
    let n_sub = cfg.subwindows_in(trace.duration);
    let mut subs: Vec<HashSet<FlowKey>> = vec![HashSet::new(); n_sub];
    for pkt in trace.iter() {
        let s = cfg.subwindow_of(pkt.ts) as usize;
        if s < n_sub {
            subs[s].insert(pkt.key(KeyKind::FiveTuple));
        }
    }
    window_ranges(cfg, n_sub, mode)
        .into_iter()
        .map(|(lo, hi)| {
            let mut u: HashSet<&FlowKey> = HashSet::new();
            for s in &subs[lo..hi] {
                u.extend(s.iter());
            }
            u.len() as f64
        })
        .collect()
}

/// OmniWindow cardinality: one estimator instance per sub-window (each
/// sized to the sub-window budget), state-merged per window position.
pub fn omniwindow_cardinality(
    trace: &Trace,
    cfg: &WindowConfig,
    mode: Mode,
    est: Estimator,
    seed: u64,
) -> Vec<f64> {
    let n_sub = cfg.subwindows_in(trace.duration);
    let mut subs: Vec<State> = (0..n_sub).map(|_| State::new(est, seed)).collect();
    for pkt in trace.iter() {
        let s = cfg.subwindow_of(pkt.ts) as usize;
        if s < n_sub {
            subs[s].insert(&pkt.key(KeyKind::FiveTuple));
        }
    }
    window_ranges(cfg, n_sub, mode)
        .into_iter()
        .map(|(lo, hi)| {
            let mut acc = State::new(est, seed);
            for s in &subs[lo..hi] {
                acc.merge(s);
            }
            acc.estimate()
        })
        .collect()
}

/// Conventional tumbling-window cardinality with one full-window
/// instance; `blackout` models the TW1 hazard (traffic during the C&R
/// at each window start after the first is not inserted).
pub fn conventional_cardinality(
    trace: &Trace,
    cfg: &WindowConfig,
    est: Estimator,
    blackout: Duration,
    seed: u64,
) -> Vec<f64> {
    let n_sub = cfg.subwindows_in(trace.duration);
    let ranges = window_ranges(cfg, n_sub, Mode::Tumbling);
    let win_ns = cfg.window().as_nanos();
    let mut state = State::new(est, seed);
    let mut out = Vec::with_capacity(ranges.len());
    let mut window_idx = 0usize;
    for pkt in trace.iter() {
        if window_idx >= ranges.len() {
            break;
        }
        let w = (pkt.ts.as_nanos() / win_ns) as usize;
        while w > window_idx && window_idx < ranges.len() {
            out.push(state.estimate());
            state = State::new(est, seed);
            window_idx += 1;
        }
        if window_idx >= ranges.len() {
            break;
        }
        if window_idx > 0 {
            let into = pkt.ts.as_nanos() - window_idx as u64 * win_ns;
            if into < blackout.as_nanos() {
                continue;
            }
        }
        state.insert(&pkt.key(KeyKind::FiveTuple));
    }
    while window_idx < ranges.len() {
        out.push(state.estimate());
        state = State::new(est, seed);
        window_idx += 1;
    }
    out
}

/// Sliding-Sketch-style sliding cardinality: two half-size instances,
/// rotation per tumbling window, estimate = merge of both — includes up
/// to a full extra window of traffic (the over-inclusion error).
pub fn sliding_sketch_cardinality(
    trace: &Trace,
    cfg: &WindowConfig,
    est: Estimator,
    seed: u64,
) -> Vec<f64> {
    let half = match est {
        Estimator::LinearCounting { bits } => Estimator::LinearCounting { bits: bits / 2 },
        Estimator::HyperLogLog { precision } => Estimator::HyperLogLog {
            precision: precision.saturating_sub(1).max(4),
        },
    };
    let n_sub = cfg.subwindows_in(trace.duration);
    let ranges = window_ranges(cfg, n_sub, Mode::Sliding);
    let win_ns = cfg.window().as_nanos();
    let sub_ns = cfg.subwindow().as_nanos();
    let mut cur = State::new(half, seed);
    let mut prev = State::new(half, seed);
    let mut next_rotation = win_ns;
    let mut next_report = 0usize;
    let mut out = Vec::with_capacity(ranges.len());

    for pkt in trace.iter() {
        while next_report < ranges.len() {
            let end_ns = ranges[next_report].1 as u64 * sub_ns;
            if pkt.ts.as_nanos() >= end_ns {
                // Rotations strictly before the report point only; one
                // landing exactly on the boundary applies after the query.
                while next_rotation < end_ns {
                    std::mem::swap(&mut cur, &mut prev);
                    cur = State::new(half, seed);
                    next_rotation += win_ns;
                }
                let mut merged = State::new(half, seed);
                merged.merge(&cur);
                merged.merge(&prev);
                out.push(merged.estimate());
                next_report += 1;
            } else {
                break;
            }
        }
        while pkt.ts.as_nanos() >= next_rotation {
            std::mem::swap(&mut cur, &mut prev);
            cur = State::new(half, seed);
            next_rotation += win_ns;
        }
        cur.insert(&pkt.key(KeyKind::FiveTuple));
    }
    while next_report < ranges.len() {
        let mut merged = State::new(half, seed);
        merged.merge(&cur);
        merged.merge(&prev);
        out.push(merged.estimate());
        next_report += 1;
    }
    out
}

fn window_ranges(cfg: &WindowConfig, total: usize, mode: Mode) -> Vec<(usize, usize)> {
    let spw = cfg.subwindows_per_window();
    let step = match mode {
        Mode::Tumbling => spw,
        Mode::Sliding => cfg.subwindows_per_slide(),
    };
    let mut out = Vec::new();
    let mut start = 0usize;
    while start + spw <= total {
        out.push((start, start + spw));
        start += step;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::evaluate::aare;
    use ow_trace::{TraceBuilder, TraceConfig};

    fn trace() -> Trace {
        TraceBuilder::new(TraceConfig {
            duration: Duration::from_millis(1500),
            flows: 3_000,
            packets: 60_000,
            seed: 11,
            ..TraceConfig::default()
        })
        .build()
    }

    #[test]
    fn omniwindow_lc_tracks_ideal() {
        let t = trace();
        let cfg = WindowConfig::paper_default();
        let ideal = ideal_cardinality(&t, &cfg, Mode::Tumbling);
        let ow = omniwindow_cardinality(
            &t,
            &cfg,
            Mode::Tumbling,
            Estimator::LinearCounting { bits: 64 * 1024 },
            5,
        );
        let err = aare(&ow, &ideal);
        assert!(err < 0.05, "LC AARE {err}");
    }

    #[test]
    fn omniwindow_hll_tracks_ideal_sliding() {
        let t = trace();
        let cfg = WindowConfig::paper_default();
        let ideal = ideal_cardinality(&t, &cfg, Mode::Sliding);
        let ow = omniwindow_cardinality(
            &t,
            &cfg,
            Mode::Sliding,
            Estimator::HyperLogLog { precision: 12 },
            5,
        );
        let err = aare(&ow, &ideal);
        assert!(err < 0.1, "HLL AARE {err}");
    }

    #[test]
    fn sliding_sketch_overestimates_cardinality() {
        let t = trace();
        let cfg = WindowConfig::paper_default();
        let ideal = ideal_cardinality(&t, &cfg, Mode::Sliding);
        let ss =
            sliding_sketch_cardinality(&t, &cfg, Estimator::LinearCounting { bits: 64 * 1024 }, 5);
        let ow = omniwindow_cardinality(
            &t,
            &cfg,
            Mode::Sliding,
            Estimator::LinearCounting { bits: 64 * 1024 },
            5,
        );
        let err_ss = aare(&ss, &ideal);
        let err_ow = aare(&ow, &ideal);
        assert!(
            err_ss > err_ow * 5.0,
            "SS error {err_ss} must dwarf OW error {err_ow}"
        );
        // SS specifically *over*-estimates (stale traffic included).
        let mean_ss: f64 = ss.iter().sum::<f64>() / ss.len() as f64;
        let mean_ideal: f64 = ideal.iter().sum::<f64>() / ideal.len() as f64;
        assert!(mean_ss > mean_ideal);
    }

    #[test]
    fn tw1_blackout_undercounts() {
        let t = trace();
        let cfg = WindowConfig::paper_default();
        let tw2 = conventional_cardinality(
            &t,
            &cfg,
            Estimator::LinearCounting { bits: 64 * 1024 },
            Duration::ZERO,
            5,
        );
        let tw1 = conventional_cardinality(
            &t,
            &cfg,
            Estimator::LinearCounting { bits: 64 * 1024 },
            Duration::from_millis(100),
            5,
        );
        // Windows after the first must count fewer flows under TW1.
        for w in 1..tw1.len() {
            assert!(
                tw1[w] < tw2[w],
                "window {w}: tw1 {} !< tw2 {}",
                tw1[w],
                tw2[w]
            );
        }
    }
}
