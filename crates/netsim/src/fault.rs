//! Deterministic fault injection for the AFR collection path (§8).
//!
//! AFR report clones leave the switch at the lowest queue priority, so
//! under congestion they are the first packets dropped; trigger packets
//! and retransmission requests travel the control path but can still be
//! lost, duplicated, or reordered. This module models that channel as a
//! seeded random process so every reliability experiment is exactly
//! reproducible: the same [`FaultConfig`] (including its seed) always
//! drops, duplicates, and displaces the same packets.
//!
//! The channel is typed by *packet class* rather than by payload:
//! per-class loss rates let an experiment say "AFR clones lose 30 % but
//! the control path only 1 %", which is how the paper's reliability
//! argument is framed (data-plane clones are expendable precisely
//! because the recovery loop runs over a better-behaved path).

use ow_common::time::Duration;
use ow_obs::{TraceContext, Traced};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The traffic classes the collection path distinguishes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PacketClass {
    /// Lowest-priority AFR report clones (the initial, droppable stream).
    AfrReport,
    /// Trigger packets announcing a terminated sub-window.
    Trigger,
    /// Controller→switch retransmission requests (missing seq ids).
    RetransmitRequest,
    /// Switch→controller retransmitted AFRs (replayed from the
    /// retransmit buffer, typically at a higher priority).
    RetransmitData,
}

impl PacketClass {
    /// All classes, in stats-index order.
    pub const ALL: [PacketClass; 4] = [
        PacketClass::AfrReport,
        PacketClass::Trigger,
        PacketClass::RetransmitRequest,
        PacketClass::RetransmitData,
    ];

    fn index(self) -> usize {
        match self {
            PacketClass::AfrReport => 0,
            PacketClass::Trigger => 1,
            PacketClass::RetransmitRequest => 2,
            PacketClass::RetransmitData => 3,
        }
    }
}

/// Fault profile for one packet class.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClassProfile {
    /// Independent per-packet drop probability, in `[0, 1]`.
    pub loss: f64,
    /// Probability a delivered packet arrives twice.
    pub duplicate: f64,
    /// Probability a delivered packet is displaced later in the
    /// delivery order (modelling multi-path reordering).
    pub reorder: f64,
    /// Base one-way delay.
    pub delay: Duration,
    /// Uniform jitter added on top of `delay` (0..=jitter).
    pub jitter: Duration,
}

impl ClassProfile {
    /// A perfectly reliable, instantaneous profile.
    pub const IDEAL: ClassProfile = ClassProfile {
        loss: 0.0,
        duplicate: 0.0,
        reorder: 0.0,
        delay: Duration::ZERO,
        jitter: Duration::ZERO,
    };

    /// A profile that only loses packets (no dup/reorder/delay).
    pub fn lossy(loss: f64) -> ClassProfile {
        ClassProfile {
            loss,
            ..ClassProfile::IDEAL
        }
    }
}

/// Full channel configuration: one profile per class plus the RNG seed.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultConfig {
    /// Seed of the channel's private RNG; fixes the whole fault pattern.
    pub seed: u64,
    /// Profile for [`PacketClass::AfrReport`].
    pub afr: ClassProfile,
    /// Profile for [`PacketClass::Trigger`].
    pub trigger: ClassProfile,
    /// Profile for [`PacketClass::RetransmitRequest`].
    pub retransmit_request: ClassProfile,
    /// Profile for [`PacketClass::RetransmitData`].
    pub retransmit_data: ClassProfile,
}

impl FaultConfig {
    /// A channel that never misbehaves (useful as a control group).
    pub fn lossless(seed: u64) -> FaultConfig {
        FaultConfig {
            seed,
            afr: ClassProfile::IDEAL,
            trigger: ClassProfile::IDEAL,
            retransmit_request: ClassProfile::IDEAL,
            retransmit_data: ClassProfile::IDEAL,
        }
    }

    /// The paper's congestion scenario: AFR clones lose `afr_loss`,
    /// everything on the recovery path is reliable.
    pub fn afr_loss(seed: u64, afr_loss: f64) -> FaultConfig {
        FaultConfig {
            afr: ClassProfile::lossy(afr_loss),
            ..FaultConfig::lossless(seed)
        }
    }

    /// The profile governing `class`.
    pub fn profile(&self, class: PacketClass) -> &ClassProfile {
        match class {
            PacketClass::AfrReport => &self.afr,
            PacketClass::Trigger => &self.trigger,
            PacketClass::RetransmitRequest => &self.retransmit_request,
            PacketClass::RetransmitData => &self.retransmit_data,
        }
    }

    /// Mutable access to the profile governing `class`.
    pub fn profile_mut(&mut self, class: PacketClass) -> &mut ClassProfile {
        match class {
            PacketClass::AfrReport => &mut self.afr,
            PacketClass::Trigger => &mut self.trigger,
            PacketClass::RetransmitRequest => &mut self.retransmit_request,
            PacketClass::RetransmitData => &mut self.retransmit_data,
        }
    }
}

/// Delivery counters for one packet class.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ClassStats {
    /// Packets handed to the channel.
    pub offered: u64,
    /// Copies that came out the far end (includes duplicates).
    pub delivered: u64,
    /// Packets the channel dropped.
    pub dropped: u64,
    /// Extra copies created by duplication.
    pub duplicated: u64,
    /// Packets displaced from their offered position.
    pub reordered: u64,
}

/// Per-class delivery counters for a [`LossyChannel`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    classes: [ClassStats; 4],
}

impl FaultStats {
    /// Counters for one class.
    pub fn class(&self, class: PacketClass) -> &ClassStats {
        &self.classes[class.index()]
    }

    /// Total packets dropped across all classes.
    pub fn total_dropped(&self) -> u64 {
        self.classes.iter().map(|c| c.dropped).sum()
    }

    /// Total packets offered across all classes.
    pub fn total_offered(&self) -> u64 {
        self.classes.iter().map(|c| c.offered).sum()
    }

    /// Fold another channel's counters into this aggregate (per-class,
    /// counter for counter) — how a fleet sums its per-link channels.
    pub fn merge(&mut self, other: &FaultStats) {
        for (mine, theirs) in self.classes.iter_mut().zip(other.classes.iter()) {
            mine.offered += theirs.offered;
            mine.delivered += theirs.delivered;
            mine.dropped += theirs.dropped;
            mine.duplicated += theirs.duplicated;
            mine.reordered += theirs.reordered;
        }
    }

    fn class_mut(&mut self, class: PacketClass) -> &mut ClassStats {
        &mut self.classes[class.index()]
    }
}

/// A deterministic lossy channel between switch and controller.
///
/// All randomness comes from one seeded xoshiro stream, so a fixed
/// `(FaultConfig, call sequence)` pair reproduces the exact same fault
/// pattern — the property the CI seed matrix relies on.
#[derive(Debug, Clone)]
pub struct LossyChannel {
    cfg: FaultConfig,
    rng: StdRng,
    stats: FaultStats,
}

impl LossyChannel {
    /// Build a channel from `cfg` (seeding its private RNG from
    /// `cfg.seed`).
    pub fn new(cfg: FaultConfig) -> LossyChannel {
        let rng = StdRng::seed_from_u64(cfg.seed);
        LossyChannel {
            cfg,
            rng,
            stats: FaultStats::default(),
        }
    }

    /// Push a batch through the channel, returning what arrives in
    /// arrival order (losses removed, duplicates inserted, reordering
    /// applied within the batch).
    pub fn transmit<T: Clone>(&mut self, class: PacketClass, items: Vec<T>) -> Vec<T> {
        let profile = *self.cfg.profile(class);
        // (arrival key, insertion tiebreak, item); the key displaces
        // reordered packets later in the delivery sequence.
        let mut in_flight: Vec<(u64, u64, T)> = Vec::with_capacity(items.len());
        let mut tiebreak = 0u64;
        for (slot, item) in items.into_iter().enumerate() {
            self.stats.class_mut(class).offered += 1;
            if profile.loss > 0.0 && self.rng.gen_bool(profile.loss) {
                self.stats.class_mut(class).dropped += 1;
                continue;
            }
            let displaced = profile.reorder > 0.0 && self.rng.gen_bool(profile.reorder);
            let displacement: u64 = if displaced {
                self.stats.class_mut(class).reordered += 1;
                self.rng.gen_range(2u64..16)
            } else {
                0
            };
            let key = slot as u64 * 2 + displacement;
            let duplicated = profile.duplicate > 0.0 && self.rng.gen_bool(profile.duplicate);
            if duplicated {
                self.stats.class_mut(class).duplicated += 1;
                self.stats.class_mut(class).delivered += 1;
                // The copy takes its own (possibly displaced) arrival slot.
                let copy_key = key + self.rng.gen_range(1u64..8);
                in_flight.push((copy_key, tiebreak, item.clone()));
                tiebreak += 1;
            }
            self.stats.class_mut(class).delivered += 1;
            in_flight.push((key, tiebreak, item));
            tiebreak += 1;
        }
        in_flight.sort_by_key(|(key, tie, _)| (*key, *tie));
        in_flight.into_iter().map(|(_, _, item)| item).collect()
    }

    /// Push a single packet through the channel; the result is empty
    /// (lost), one copy, or two copies (duplicated).
    pub fn transmit_one<T: Clone>(&mut self, class: PacketClass, item: T) -> Vec<T> {
        self.transmit(class, vec![item])
    }

    /// Push a batch through the channel with a [`TraceContext`] stamped
    /// onto every item. The envelope rides the exact same fault model —
    /// drops drop it, duplicates copy it, reordering moves it — so
    /// *whatever* subset arrives still carries the originating window's
    /// context and the receiver can stitch its spans under the same
    /// causal root.
    pub fn transmit_traced<T: Clone>(
        &mut self,
        class: PacketClass,
        ctx: TraceContext,
        items: Vec<T>,
    ) -> Vec<Traced<T>> {
        self.transmit(
            class,
            items
                .into_iter()
                .map(|payload| Traced::new(ctx, payload))
                .collect(),
        )
    }

    /// Sample the one-way latency for one packet of `class`
    /// (base delay plus uniform jitter).
    pub fn latency(&mut self, class: PacketClass) -> Duration {
        let profile = self.cfg.profile(class);
        let jitter_ns = profile.jitter.as_nanos();
        let jitter = if jitter_ns == 0 {
            0
        } else {
            self.rng.gen_range(0..=jitter_ns)
        };
        profile.delay + Duration::from_nanos(jitter)
    }

    /// The channel's configuration.
    pub fn config(&self) -> &FaultConfig {
        &self.cfg
    }

    /// Delivery counters so far.
    pub fn stats(&self) -> &FaultStats {
        &self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lossless_channel_is_identity() {
        let mut ch = LossyChannel::new(FaultConfig::lossless(1));
        let out = ch.transmit(PacketClass::AfrReport, (0..100u32).collect());
        assert_eq!(out, (0..100).collect::<Vec<_>>());
        let s = ch.stats().class(PacketClass::AfrReport);
        assert_eq!(s.offered, 100);
        assert_eq!(s.delivered, 100);
        assert_eq!(s.dropped, 0);
    }

    #[test]
    fn same_seed_same_fault_pattern() {
        let cfg = FaultConfig::afr_loss(77, 0.3);
        let mut a = LossyChannel::new(cfg.clone());
        let mut b = LossyChannel::new(cfg);
        for _ in 0..10 {
            let xs = a.transmit(PacketClass::AfrReport, (0..50u32).collect());
            let ys = b.transmit(PacketClass::AfrReport, (0..50u32).collect());
            assert_eq!(xs, ys);
        }
    }

    #[test]
    fn loss_rate_is_roughly_honoured() {
        let mut ch = LossyChannel::new(FaultConfig::afr_loss(5, 0.3));
        for _ in 0..100 {
            let _ = ch.transmit(PacketClass::AfrReport, (0..100u32).collect());
        }
        let s = ch.stats().class(PacketClass::AfrReport);
        assert_eq!(s.offered, 10_000);
        let rate = s.dropped as f64 / s.offered as f64;
        assert!((0.25..0.35).contains(&rate), "observed loss {rate}");
    }

    #[test]
    fn per_class_profiles_are_independent() {
        let mut cfg = FaultConfig::afr_loss(9, 1.0);
        cfg.retransmit_data = ClassProfile::IDEAL;
        let mut ch = LossyChannel::new(cfg);
        assert!(ch
            .transmit(PacketClass::AfrReport, vec![1, 2, 3])
            .is_empty());
        assert_eq!(
            ch.transmit(PacketClass::RetransmitData, vec![4, 5]),
            vec![4, 5]
        );
        assert_eq!(ch.stats().class(PacketClass::AfrReport).dropped, 3);
        assert_eq!(ch.stats().class(PacketClass::RetransmitData).dropped, 0);
    }

    #[test]
    fn duplication_creates_extra_copies() {
        let mut cfg = FaultConfig::lossless(13);
        cfg.afr.duplicate = 1.0;
        let mut ch = LossyChannel::new(cfg);
        let out = ch.transmit(PacketClass::AfrReport, vec![1u32, 2, 3]);
        assert_eq!(out.len(), 6);
        let mut sorted = out.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![1, 1, 2, 2, 3, 3]);
        assert_eq!(ch.stats().class(PacketClass::AfrReport).duplicated, 3);
    }

    #[test]
    fn reordering_permutes_but_preserves_contents() {
        let mut cfg = FaultConfig::lossless(21);
        cfg.afr.reorder = 0.5;
        let mut ch = LossyChannel::new(cfg);
        let input: Vec<u32> = (0..200).collect();
        let out = ch.transmit(PacketClass::AfrReport, input.clone());
        assert_ne!(out, input, "seed 21 should displace at least one packet");
        let mut sorted = out.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, input);
        assert!(ch.stats().class(PacketClass::AfrReport).reordered > 0);
    }

    #[test]
    fn traced_envelopes_ride_the_same_fault_pattern() {
        let ctx = TraceContext {
            trace_id: 7,
            root: 7,
            collect: 9,
            anchor_ns: 123,
        };
        let input: Vec<u32> = (0..100).collect();
        let mut plain = LossyChannel::new(FaultConfig::afr_loss(42, 0.3));
        let mut traced = LossyChannel::new(FaultConfig::afr_loss(42, 0.3));
        let a = plain.transmit(PacketClass::AfrReport, input.clone());
        let b = traced.transmit_traced(PacketClass::AfrReport, ctx, input);
        // Same seed, same faults: the envelope changes nothing about
        // which copies arrive or in what order…
        let payloads: Vec<u32> = b.iter().map(|t| t.payload).collect();
        assert_eq!(a, payloads);
        // …and every survivor still carries the originating context.
        assert!(b.iter().all(|t| t.ctx == ctx));
        assert!(b.len() < 100, "seed 42 at 30% loss drops something");
    }

    #[test]
    fn latency_includes_bounded_jitter() {
        let mut cfg = FaultConfig::lossless(3);
        cfg.trigger.delay = Duration::from_micros(100);
        cfg.trigger.jitter = Duration::from_micros(10);
        let mut ch = LossyChannel::new(cfg);
        for _ in 0..100 {
            let d = ch.latency(PacketClass::Trigger);
            assert!(d >= Duration::from_micros(100));
            assert!(d <= Duration::from_micros(110));
        }
        assert_eq!(
            ch.latency(PacketClass::AfrReport),
            Duration::ZERO,
            "ideal profile has zero latency"
        );
    }
}
