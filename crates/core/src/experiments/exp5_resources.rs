//! Exp#5 (Table 2): switch hardware resource breakdown.
//!
//! Thin wrapper over the resource accountant: the per-feature rows,
//! totals after stage/VLIW sharing, and the normalisation against the
//! host program (Q1 + switch.p4).

use ow_switch::resources::{ResourceConfig, ResourceReport};

/// Run Exp#5 for the default (paper) configuration.
pub fn run() -> ResourceReport {
    ResourceReport::for_config(&ResourceConfig::default())
}

/// Run Exp#5 for a custom configuration (ablations: flowkey-array size,
/// RDMA on/off).
pub fn run_with(cfg: &ResourceConfig) -> ResourceReport {
    ResourceReport::for_config(cfg)
}
