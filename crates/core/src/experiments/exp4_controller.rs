//! Exp#4 (Figure 10): controller time-usage breakdown.
//!
//! Measures the wall-clock time of the five controller operations
//! (O1 collect, O2 insert, O3 merge, O4 process, O5 evict) over one
//! complete window of five sub-windows, for both tumbling and sliding
//! reconstruction, using Q1-scale AFR batches.

use serde::Serialize;

use ow_common::afr::FlowRecord;
use ow_common::flowkey::FlowKey;
use ow_common::hash::mix64;
use ow_controller::timing::{InstrumentedController, WindowMode};

/// One sub-window's measured breakdown, in microseconds.
#[derive(Debug, Clone, Serialize)]
pub struct BreakdownRow {
    /// Sub-window label (sw1…).
    pub subwindow: u32,
    /// O1 collect µs.
    pub o1_collect: f64,
    /// O2 insert µs.
    pub o2_insert: f64,
    /// O3 merge µs.
    pub o3_merge: f64,
    /// O4 process µs.
    pub o4_process: f64,
    /// O5 evict µs.
    pub o5_evict: f64,
}

impl BreakdownRow {
    /// Total µs.
    pub fn total(&self) -> f64 {
        self.o1_collect + self.o2_insert + self.o3_merge + self.o4_process + self.o5_evict
    }
}

/// The whole experiment.
#[derive(Debug, Clone, Serialize)]
pub struct Exp4Result {
    /// Tumbling-window rows (five sub-windows).
    pub tumbling: Vec<BreakdownRow>,
    /// Sliding-window rows.
    pub sliding: Vec<BreakdownRow>,
}

/// Build one sub-window's AFR batch with `flows` records. Roughly 70% of
/// flows persist across sub-windows (the merge-heavy case) and 30% are
/// new — matching the churn the paper's trace shows.
fn batch(subwindow: u32, flows: usize, seed: u64) -> Vec<FlowRecord> {
    (0..flows)
        .map(|i| {
            let persistent = i < flows * 7 / 10;
            let id = if persistent {
                i as u64
            } else {
                mix64(seed ^ subwindow as u64 ^ i as u64) | 0x8000_0000
            };
            let mut r = FlowRecord::frequency(
                FlowKey::src_ip((id as u32) | 0x0A00_0000),
                1 + (mix64(id) % 50),
                subwindow,
            );
            r.seq = i as u32;
            r
        })
        .collect()
}

/// Run Exp#4 with `flows_per_subwindow` AFRs per sub-window (the paper's
/// sub-windows carry 64 K–96 K flows).
pub fn run(flows_per_subwindow: usize, subwindows: u32, seed: u64) -> Exp4Result {
    let threshold = 100.0;
    let spw = 5usize;

    let run_mode = |mode: WindowMode| -> Vec<BreakdownRow> {
        let mut c = InstrumentedController::new(mode, threshold);
        let mut rows = Vec::new();
        for sw in 0..subwindows {
            let b = batch(sw, flows_per_subwindow, seed);
            let bd = c.ingest(sw, &b);
            rows.push(BreakdownRow {
                subwindow: sw + 1,
                o1_collect: bd.o1_collect.as_secs_f64() * 1e6,
                o2_insert: bd.o2_insert.as_secs_f64() * 1e6,
                o3_merge: bd.o3_merge.as_secs_f64() * 1e6,
                o4_process: bd.o4_process.as_secs_f64() * 1e6,
                o5_evict: bd.o5_evict.as_secs_f64() * 1e6,
            });
        }
        rows
    };

    Exp4Result {
        tumbling: run_mode(WindowMode::Tumbling { subwindows: spw }),
        sliding: run_mode(WindowMode::Sliding { subwindows: spw }),
    }
}

impl Exp4Result {
    /// Mean total µs per sub-window for a mode's rows.
    pub fn mean_total(rows: &[BreakdownRow]) -> f64 {
        if rows.is_empty() {
            return 0.0;
        }
        rows.iter().map(|r| r.total()).sum::<f64>() / rows.len() as f64
    }
}
