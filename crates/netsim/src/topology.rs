//! Verified multi-switch topologies.
//!
//! [`TopologyBuilder`] assembles the Exp#9-style linear path — n
//! switches, n−1 lossy links, per-node clock offsets — with one extra
//! guarantee over building the pieces by hand: **every switch on the
//! path is statically verified before it exists.** Each node's pipeline
//! program is derived from its concrete configuration and application
//! and pushed through `ow-verify`; a single unplaceable or
//! C4-violating node rejects the whole topology with that node's
//! diagnostic report.
//!
//! [`TopologyBuilder::build_live`] additionally attaches the sharded
//! live controller to the verified path: the builder's
//! [`TopologyBuilder::shards`] knob sets how many merge worker shards
//! the controller spawns, so a topology experiment can dial collection
//! throughput without touching any call site.

use ow_controller::live::LiveController;
use ow_obs::Obs;
use ow_switch::app::DataPlaneApp;
use ow_switch::switch::{Switch, SwitchConfig};
use ow_verify::{verified_switch, VerifyReport};

use crate::sim::{Link, NetSim, NodeConfig};

/// A fully built path: verified switches plus the event simulator that
/// carries packets between them.
#[derive(Debug)]
pub struct VerifiedPath<A> {
    /// One verified switch per node, in path order.
    pub switches: Vec<Switch<A>>,
    /// The discrete-event simulator over the same nodes and links.
    pub sim: NetSim,
}

/// A [`VerifiedPath`] plus the live sharded controller collecting the
/// last hop's AFR batches.
pub struct LivePath<A> {
    /// The verified switches and their simulator.
    pub path: VerifiedPath<A>,
    /// The running sharded merge controller.
    pub controller: LiveController,
}

/// A structurally invalid topology, rejected before any switch is
/// verified or constructed.
#[derive(Debug)]
pub enum TopologyError {
    /// Two nodes declared the same id.
    DuplicateNodeId(String),
    /// A link referenced a node id that was never declared.
    UnknownEndpoint {
        /// Index of the offending link, in declaration order.
        link: usize,
        /// The undeclared node id the link referenced.
        id: String,
    },
    /// A named link connected two nodes that are not consecutive on the
    /// path ([`NetSim::path`] is strictly linear).
    NonAdjacentLink {
        /// Index of the offending link, in declaration order.
        link: usize,
        /// The link's upstream endpoint id.
        from: String,
        /// The link's downstream endpoint id.
        to: String,
    },
    /// A node's derived pipeline program failed static verification;
    /// the boxed report carries its diagnostics.
    Verify(Box<VerifyReport>),
}

impl core::fmt::Display for TopologyError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            TopologyError::DuplicateNodeId(id) => {
                write!(f, "duplicate node id '{id}' in topology")
            }
            TopologyError::UnknownEndpoint { link, id } => {
                write!(f, "link {link} references undeclared node '{id}'")
            }
            TopologyError::NonAdjacentLink { link, from, to } => write!(
                f,
                "link {link} connects '{from}' and '{to}', which are not \
                 consecutive on the path"
            ),
            TopologyError::Verify(report) => write!(f, "{report}"),
        }
    }
}

impl std::error::Error for TopologyError {}

impl From<Box<VerifyReport>> for TopologyError {
    fn from(report: Box<VerifyReport>) -> TopologyError {
        TopologyError::Verify(report)
    }
}

impl TopologyError {
    /// The verification report, when the failure came from `ow-verify`.
    pub fn verify_report(&self) -> Option<&VerifyReport> {
        match self {
            TopologyError::Verify(report) => Some(report),
            _ => None,
        }
    }
}

/// Builder for a linear path of verified OmniWindow switches.
#[derive(Debug, Clone)]
pub struct TopologyBuilder {
    nodes: Vec<NodeConfig>,
    node_ids: Vec<String>,
    links: Vec<Link>,
    /// Declared endpoints per link (`None` for positional
    /// [`TopologyBuilder::link`] calls, which are adjacent by
    /// construction).
    link_endpoints: Vec<Option<(String, String)>>,
    seed: u64,
    shards: usize,
    obs: Option<Obs>,
}

impl Default for TopologyBuilder {
    fn default() -> TopologyBuilder {
        TopologyBuilder::new(0)
    }
}

impl TopologyBuilder {
    /// Start an empty topology; `seed` drives the simulator's loss and
    /// jitter draws. The controller shard count defaults to the
    /// process-wide `OW_SHARDS` setting.
    pub fn new(seed: u64) -> TopologyBuilder {
        TopologyBuilder {
            nodes: Vec::new(),
            node_ids: Vec::new(),
            links: Vec::new(),
            link_endpoints: Vec::new(),
            seed,
            shards: ow_controller::live::shards_from_env(),
            obs: None,
        }
    }

    /// Attach an observability registry to the topology: every verified
    /// switch records its C&R histograms and lifecycle events into it,
    /// and [`TopologyBuilder::build_live`]'s controller exposes its
    /// per-shard queue-depth gauges and drop counters through it.
    pub fn obs(mut self, obs: &Obs) -> Self {
        self.obs = Some(obs.clone());
        self
    }

    /// Set how many merge shards [`TopologyBuilder::build_live`]'s
    /// controller spawns (≥ 1; the fold stays byte-identical at any
    /// count).
    pub fn shards(mut self, shards: usize) -> Self {
        self.shards = shards.max(1);
        self
    }

    /// Append a node (the first node becomes the stamping first hop),
    /// auto-named `node<index>`.
    pub fn node(self, cfg: NodeConfig) -> Self {
        let id = format!("node{}", self.nodes.len());
        self.named_node(id, cfg)
    }

    /// Append a node under an explicit id. Duplicate ids are rejected at
    /// build time with [`TopologyError::DuplicateNodeId`].
    pub fn named_node(mut self, id: impl Into<String>, cfg: NodeConfig) -> Self {
        self.nodes.push(cfg);
        self.node_ids.push(id.into());
        self
    }

    /// Append the link connecting the last added node to the next one.
    pub fn link(mut self, link: Link) -> Self {
        self.links.push(link);
        self.link_endpoints.push(None);
        self
    }

    /// Append a link declared by its endpoint ids. Both ids must name
    /// declared nodes ([`TopologyError::UnknownEndpoint`] otherwise) and
    /// the pair must be consecutive on the path
    /// ([`TopologyError::NonAdjacentLink`]) — checked at build time,
    /// before any switch is verified.
    pub fn link_between(
        mut self,
        from: impl Into<String>,
        to: impl Into<String>,
        link: Link,
    ) -> Self {
        self.links.push(link);
        self.link_endpoints.push(Some((from.into(), to.into())));
        self
    }

    /// Reject structurally broken topologies: duplicate node ids, links
    /// whose declared endpoints were never declared as nodes, and named
    /// links that skip over the linear path.
    fn validate(&self) -> Result<(), TopologyError> {
        let mut seen: std::collections::HashSet<&str> = std::collections::HashSet::new();
        for id in &self.node_ids {
            if !seen.insert(id.as_str()) {
                return Err(TopologyError::DuplicateNodeId(id.clone()));
            }
        }
        for (index, endpoints) in self.link_endpoints.iter().enumerate() {
            let Some((from, to)) = endpoints else {
                continue;
            };
            let position = |id: &String| self.node_ids.iter().position(|n| n == id);
            let from_pos = position(from).ok_or_else(|| TopologyError::UnknownEndpoint {
                link: index,
                id: from.clone(),
            })?;
            let to_pos = position(to).ok_or_else(|| TopologyError::UnknownEndpoint {
                link: index,
                id: to.clone(),
            })?;
            if to_pos != from_pos + 1 {
                return Err(TopologyError::NonAdjacentLink {
                    link: index,
                    from: from.clone(),
                    to: to.clone(),
                });
            }
        }
        Ok(())
    }

    /// Verify and build every switch on the path, then the simulator.
    ///
    /// `app` is called as `app(node_index, region)` to create the two
    /// per-region application instances of each node. The first node is
    /// configured as the stamping first hop; downstream nodes adopt
    /// stamps (§4.2). A structurally broken topology (duplicate node
    /// id, link referencing an undeclared node) is rejected before any
    /// switch exists; any node whose derived pipeline program fails
    /// static verification aborts the build with its report.
    ///
    /// # Panics
    /// Panics unless `links == nodes − 1` (a linear path), as
    /// [`NetSim::path`] requires.
    pub fn build_verified<A, F>(
        self,
        cfg: &SwitchConfig,
        mut app: F,
    ) -> Result<VerifiedPath<A>, TopologyError>
    where
        A: DataPlaneApp,
        F: FnMut(usize, usize) -> A,
    {
        self.validate()?;
        let mut switches = Vec::with_capacity(self.nodes.len());
        for i in 0..self.nodes.len() {
            let node_cfg = SwitchConfig {
                first_hop: i == 0,
                ..cfg.clone()
            };
            let mut switch = verified_switch(node_cfg, app(i, 0), app(i, 1))?;
            if let Some(obs) = &self.obs {
                switch.attach_obs(obs);
            }
            switches.push(switch);
        }
        Ok(VerifiedPath {
            switches,
            sim: NetSim::path(self.nodes, self.links, self.seed),
        })
    }

    /// [`TopologyBuilder::build_verified`] plus a running sharded live
    /// controller (sliding window of `window_subwindows` sub-windows,
    /// `queue_depth`-bounded channels) wired for the path's AFR
    /// batches. The shard count comes from [`TopologyBuilder::shards`].
    ///
    /// # Panics
    /// Panics unless `links == nodes − 1` (a linear path), as
    /// [`NetSim::path`] requires.
    pub fn build_live<A, F>(
        self,
        cfg: &SwitchConfig,
        app: F,
        window_subwindows: usize,
        queue_depth: usize,
    ) -> Result<LivePath<A>, TopologyError>
    where
        A: DataPlaneApp,
        F: FnMut(usize, usize) -> A,
    {
        let shards = self.shards;
        let obs = self.obs.clone();
        let path = self.build_verified(cfg, app)?;
        Ok(LivePath {
            path,
            controller: LiveController::spawn_sharded_obs(
                window_subwindows,
                queue_depth,
                shards,
                obs.as_ref(),
            ),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ow_common::flowkey::KeyKind;
    use ow_sketch::CountMin;
    use ow_switch::app::FrequencyApp;

    fn app(node: usize, region: usize) -> FrequencyApp<CountMin> {
        let seed = (node as u64) << 8 | region as u64;
        FrequencyApp::new(CountMin::new(2, 4096, seed), KeyKind::SrcIp, false)
    }

    #[test]
    fn two_node_path_builds_verified() {
        let path = TopologyBuilder::new(7)
            .node(NodeConfig::default())
            .link(Link::default())
            .node(NodeConfig {
                clock_offset_ns: 1_500,
            })
            .build_verified(
                &SwitchConfig {
                    fk_capacity: 1024,
                    expected_flows: 4096,
                    ..SwitchConfig::default()
                },
                app,
            )
            .expect("both nodes verify");
        assert_eq!(path.switches.len(), 2);
    }

    #[test]
    fn live_path_attaches_a_sharded_controller() {
        use ow_common::afr::FlowRecord;
        use ow_common::flowkey::FlowKey;
        use ow_controller::live::DataPlaneMsg;

        let live = TopologyBuilder::new(7)
            .shards(4)
            .node(NodeConfig::default())
            .link(Link::default())
            .node(NodeConfig::default())
            .build_live(
                &SwitchConfig {
                    fk_capacity: 1024,
                    expected_flows: 4096,
                    ..SwitchConfig::default()
                },
                app,
                3,
                16,
            )
            .expect("both nodes verify");
        assert_eq!(live.path.switches.len(), 2);
        assert_eq!(live.controller.handle.shard_count(), 4);
        assert_eq!(live.controller.handle.window_span(), 3);
        for sw in 0..2u32 {
            live.controller
                .sender
                .send(DataPlaneMsg::AfrBatch {
                    subwindow: sw,
                    afrs: (0..20)
                        .map(|i| FlowRecord::frequency(FlowKey::src_ip(i), 5, sw))
                        .collect(),
                })
                .unwrap();
        }
        let handle = live.controller.handle.clone();
        assert_eq!(live.controller.join(), 2);
        assert_eq!(handle.merged_flows(), 20);
        assert_eq!(handle.subwindows(), vec![0, 1]);
    }

    #[test]
    fn obs_knob_wires_the_registry_through_switches_and_controller() {
        use ow_common::afr::FlowRecord;
        use ow_common::flowkey::FlowKey;
        use ow_controller::live::DataPlaneMsg;

        let obs = Obs::new();
        let live = TopologyBuilder::new(7)
            .shards(2)
            .obs(&obs)
            .node(NodeConfig::default())
            .link(Link::default())
            .node(NodeConfig::default())
            .build_live(
                &SwitchConfig {
                    fk_capacity: 1024,
                    expected_flows: 4096,
                    ..SwitchConfig::default()
                },
                app,
                3,
                16,
            )
            .expect("both nodes verify");
        live.controller
            .sender
            .send(DataPlaneMsg::AfrBatch {
                subwindow: 0,
                afrs: (0..10)
                    .map(|i| FlowRecord::frequency(FlowKey::src_ip(i), 5, 0))
                    .collect(),
            })
            .unwrap();
        assert_eq!(live.controller.join(), 1);

        let snap = obs.snapshot();
        // Controller side: the routed batch and both shard gauges
        // (drained back to zero) are visible.
        assert_eq!(snap.value("ow_controller_batches_total", &[]), 1);
        for shard in 0..2u32 {
            let gauge = snap
                .get(
                    "ow_controller_shard_queue_depth",
                    &[("shard", &shard.to_string())],
                )
                .expect("per-shard gauge registered");
            assert_eq!(gauge.value, 0);
        }
        // Switch side: both verified switches attached the same
        // registry (their metric families exist even before any
        // collection runs).
        assert!(snap.get("ow_switch_collections_total", &[]).is_some());
        assert!(snap
            .get("ow_common_engine_transitions_total", &[("side", "switch")])
            .is_some());
    }

    #[test]
    fn unverifiable_node_rejects_the_topology() {
        // An fk_buffer this size cannot fit any stage's SRAM budget; the
        // topology must be rejected before any switch is constructed.
        let err = TopologyBuilder::new(7)
            .node(NodeConfig::default())
            .build_verified(
                &SwitchConfig {
                    fk_capacity: 100_000_000,
                    expected_flows: 4096,
                    ..SwitchConfig::default()
                },
                app,
            )
            .expect_err("oversized pipeline must be rejected");
        let report = err.verify_report().expect("verification failure");
        assert!(
            report.has_code(ow_verify::ErrorCode::SramOverflow),
            "{report}"
        );
    }

    #[test]
    fn duplicate_node_ids_reject_the_topology() {
        let err = TopologyBuilder::new(7)
            .named_node("tor-a", NodeConfig::default())
            .link(Link::default())
            .named_node("tor-a", NodeConfig::default())
            .build_verified(&SwitchConfig::default(), app)
            .expect_err("duplicate id must be rejected");
        assert!(matches!(&err, TopologyError::DuplicateNodeId(id) if id == "tor-a"));
        assert_eq!(err.to_string(), "duplicate node id 'tor-a' in topology");
    }

    #[test]
    fn link_referencing_undeclared_node_rejects_the_topology() {
        let err = TopologyBuilder::new(7)
            .named_node("tor-a", NodeConfig::default())
            .link_between("tor-a", "tor-z", Link::default())
            .named_node("tor-b", NodeConfig::default())
            .build_verified(&SwitchConfig::default(), app)
            .expect_err("undeclared endpoint must be rejected");
        assert!(
            matches!(&err, TopologyError::UnknownEndpoint { link: 0, id } if id == "tor-z"),
            "{err}"
        );
        assert_eq!(err.to_string(), "link 0 references undeclared node 'tor-z'");
    }

    #[test]
    fn non_adjacent_named_link_rejects_the_topology() {
        let err = TopologyBuilder::new(7)
            .named_node("a", NodeConfig::default())
            .link_between("a", "c", Link::default())
            .named_node("b", NodeConfig::default())
            .named_node("c", NodeConfig::default())
            .build_verified(&SwitchConfig::default(), app)
            .expect_err("path-skipping link must be rejected");
        assert!(
            matches!(err, TopologyError::NonAdjacentLink { link: 0, .. }),
            "{err}"
        );
    }

    #[test]
    fn named_adjacent_links_build() {
        let path = TopologyBuilder::new(7)
            .named_node("tor-a", NodeConfig::default())
            .link_between("tor-a", "tor-b", Link::default())
            .named_node(
                "tor-b",
                NodeConfig {
                    clock_offset_ns: 900,
                },
            )
            .build_verified(
                &SwitchConfig {
                    fk_capacity: 1024,
                    expected_flows: 4096,
                    ..SwitchConfig::default()
                },
                app,
            )
            .expect("adjacent named link verifies");
        assert_eq!(path.switches.len(), 2);
    }
}
