//! Application-derived flow records (AFRs) and their merge algebra.
//!
//! An AFR (paper §4.1) is `{flowkey, attributes}` — the result of querying
//! a telemetry application's data-plane state for one flow in one
//! sub-window. The controller merges per-sub-window AFRs into complete
//! windows. Merging depends on the *pattern* of the flow statistic
//! (following FlyMon's four patterns, cited in §4.2):
//!
//! * **Frequency** — sum across sub-windows (packet counts, byte counts),
//! * **Existence** — logical OR (did the key appear at all),
//! * **Max/Min** — take the extremum,
//! * **Distinction** — union the distinct-value summaries, then count.
//!
//! Distinction statistics cannot be merged as plain integers (summing
//! per-sub-window distinct counts double-counts values seen in several
//! sub-windows), so a distinction AFR carries a small bitmap summary of
//! the values seen, and merging unions the bitmaps — exactly the
//! information a data-plane distinct structure can export.

use serde::{Deserialize, Serialize};

use crate::flowkey::FlowKey;

/// Number of 64-bit words in a distinction bitmap summary (512 bits).
pub const DISTINCT_BITMAP_WORDS: usize = 8;

/// A compact summary of distinct values, used by distinction statistics.
///
/// A hashed bitmap (up to 512 bits) with linear-counting estimation:
/// enough for the per-flow distinct counts the evaluation queries use
/// (ports per scanner, sources per DDoS victim), and mergeable by
/// bitwise OR. `logical_bits` lets a data-plane structure with smaller
/// cells (e.g. the Vector Bloom Filter's 64-bit bitmaps) export its
/// state at native size so the estimate formula stays correct.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DistinctBitmap {
    /// The raw bitmap words.
    pub words: [u64; DISTINCT_BITMAP_WORDS],
    /// Number of logically usable bits (≤ 512).
    pub logical_bits: u32,
}

impl Default for DistinctBitmap {
    fn default() -> Self {
        DistinctBitmap {
            words: [0; DISTINCT_BITMAP_WORDS],
            logical_bits: Self::BITS as u32,
        }
    }
}

impl DistinctBitmap {
    /// Maximum bits in the bitmap.
    pub const BITS: u64 = (DISTINCT_BITMAP_WORDS * 64) as u64;

    /// An empty bitmap restricted to `logical_bits` usable bits.
    ///
    /// # Panics
    /// Panics if `logical_bits` is zero or exceeds [`Self::BITS`].
    pub fn with_logical_bits(logical_bits: u32) -> DistinctBitmap {
        assert!(
            logical_bits > 0 && logical_bits as u64 <= Self::BITS,
            "logical_bits out of range"
        );
        DistinctBitmap {
            words: [0; DISTINCT_BITMAP_WORDS],
            logical_bits,
        }
    }

    /// Record a (hashed) value.
    pub fn insert_hash(&mut self, hash: u64) {
        let bit = hash % self.logical_bits as u64;
        self.words[(bit / 64) as usize] |= 1u64 << (bit % 64);
    }

    /// Number of set bits.
    pub fn ones(&self) -> u32 {
        self.words.iter().map(|w| w.count_ones()).sum()
    }

    /// Whether no value has been recorded.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Linear-counting estimate of the number of distinct values recorded.
    pub fn estimate(&self) -> f64 {
        let m = self.logical_bits as f64;
        let zeros = m - self.ones() as f64;
        if zeros <= 0.0 {
            // Saturated bitmap: report the (unreachable) upper bound.
            m * m.ln()
        } else {
            m * (m / zeros).ln()
        }
    }

    /// Union with another bitmap (the distinction merge operation).
    ///
    /// # Panics
    /// Panics (debug) if the logical sizes differ — unioning bitmaps of
    /// different geometry silently corrupts the estimate.
    pub fn union_with(&mut self, other: &DistinctBitmap) {
        debug_assert_eq!(
            self.logical_bits, other.logical_bits,
            "bitmap geometry mismatch"
        );
        for (a, b) in self.words.iter_mut().zip(other.words.iter()) {
            *a |= b;
        }
    }
}

/// The statistic pattern of a flow attribute, which dictates merging.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AttrKind {
    /// Additive statistic (packet count, bytes): merged by summation.
    Frequency,
    /// Appearance indicator: merged by logical OR.
    Existence,
    /// Maximum-so-far: merged by `max`.
    Max,
    /// Minimum-so-far: merged by `min`.
    Min,
    /// Count of distinct values: merged by bitmap union.
    Distinction,
    /// Signed difference statistic (e.g. #SYN − #FIN): merged by
    /// summation. Needed because a flow's opens and closes can land in
    /// different sub-windows, making per-sub-window contributions
    /// negative.
    Signed,
    /// Join statistic pairing a distinct-connection summary with a byte
    /// count (Sonata-style joins, e.g. Slowloris: many connections AND
    /// few bytes per connection). Merged component-wise.
    ConnBytes,
}

/// A single flow attribute value, tagged with its merge pattern.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum AttrValue {
    /// Additive counter.
    Frequency(u64),
    /// Appearance flag.
    Existence(bool),
    /// Running maximum.
    Max(u64),
    /// Running minimum.
    Min(u64),
    /// Distinct-value summary.
    Distinction(DistinctBitmap),
    /// Signed difference counter.
    Signed(i64),
    /// Distinct-connection summary plus byte volume.
    ConnBytes {
        /// Distinct connections observed for the key.
        conns: DistinctBitmap,
        /// Total bytes observed for the key.
        bytes: u64,
    },
}

impl AttrValue {
    /// The pattern of this value.
    pub fn kind(&self) -> AttrKind {
        match self {
            AttrValue::Frequency(_) => AttrKind::Frequency,
            AttrValue::Existence(_) => AttrKind::Existence,
            AttrValue::Max(_) => AttrKind::Max,
            AttrValue::Min(_) => AttrKind::Min,
            AttrValue::Distinction(_) => AttrKind::Distinction,
            AttrValue::Signed(_) => AttrKind::Signed,
            AttrValue::ConnBytes { .. } => AttrKind::ConnBytes,
        }
    }

    /// A zero/identity element for the pattern, suitable as merge seed.
    pub fn identity(kind: AttrKind) -> AttrValue {
        match kind {
            AttrKind::Frequency => AttrValue::Frequency(0),
            AttrKind::Existence => AttrValue::Existence(false),
            AttrKind::Max => AttrValue::Max(0),
            AttrKind::Min => AttrValue::Min(u64::MAX),
            AttrKind::Distinction => AttrValue::Distinction(DistinctBitmap::default()),
            AttrKind::Signed => AttrValue::Signed(0),
            AttrKind::ConnBytes => AttrValue::ConnBytes {
                conns: DistinctBitmap::default(),
                bytes: 0,
            },
        }
    }

    /// Merge another sub-window's value of the same pattern into this one.
    ///
    /// Returns an error on pattern mismatch — merging a frequency into a
    /// max would silently corrupt results, so this is a hard failure.
    pub fn merge(&mut self, other: &AttrValue) -> Result<(), crate::error::OwError> {
        match (self, other) {
            (AttrValue::Frequency(a), AttrValue::Frequency(b)) => {
                *a = a.saturating_add(*b);
                Ok(())
            }
            (AttrValue::Existence(a), AttrValue::Existence(b)) => {
                *a |= *b;
                Ok(())
            }
            (AttrValue::Max(a), AttrValue::Max(b)) => {
                *a = (*a).max(*b);
                Ok(())
            }
            (AttrValue::Min(a), AttrValue::Min(b)) => {
                *a = (*a).min(*b);
                Ok(())
            }
            (AttrValue::Distinction(a), AttrValue::Distinction(b)) => {
                a.union_with(b);
                Ok(())
            }
            (AttrValue::Signed(a), AttrValue::Signed(b)) => {
                *a = a.saturating_add(*b);
                Ok(())
            }
            (
                AttrValue::ConnBytes {
                    conns: ca,
                    bytes: ba,
                },
                AttrValue::ConnBytes {
                    conns: cb,
                    bytes: bb,
                },
            ) => {
                ca.union_with(cb);
                *ba = ba.saturating_add(*bb);
                Ok(())
            }
            (me, other) => Err(crate::error::OwError::AttrMismatch {
                left: me.kind(),
                right: other.kind(),
            }),
        }
    }

    /// Subtract another sub-window's contribution (sliding-window eviction,
    /// Exp#4 operation O5). Only frequency statistics support subtraction;
    /// the other patterns require recomputation from the surviving
    /// sub-windows, which the controller does instead.
    pub fn unmerge_frequency(&mut self, other: &AttrValue) -> Result<(), crate::error::OwError> {
        match (self, other) {
            (AttrValue::Frequency(a), AttrValue::Frequency(b)) => {
                *a = a.saturating_sub(*b);
                Ok(())
            }
            (me, other) => Err(crate::error::OwError::AttrMismatch {
                left: me.kind(),
                right: other.kind(),
            }),
        }
    }

    /// Scalar view of the value for threshold queries: the counter for
    /// frequency/max/min, 0/1 for existence, the estimate for distinction.
    pub fn scalar(&self) -> f64 {
        match self {
            AttrValue::Frequency(v) | AttrValue::Max(v) => *v as f64,
            AttrValue::Min(v) => {
                if *v == u64::MAX {
                    0.0
                } else {
                    *v as f64
                }
            }
            AttrValue::Existence(b) => {
                if *b {
                    1.0
                } else {
                    0.0
                }
            }
            AttrValue::Distinction(bm) => bm.estimate(),
            AttrValue::Signed(v) => *v as f64,
            AttrValue::ConnBytes { conns, bytes } => {
                // Scalar view: bytes per connection (the Slowloris
                // signature is a *low* value here with many connections).
                let c = conns.estimate().max(1.0);
                *bytes as f64 / c
            }
        }
    }
}

/// An application-derived flow record: one flow's statistic in one
/// sub-window, as exported by the data plane.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FlowRecord {
    /// The flow this record describes.
    pub key: FlowKey,
    /// The attribute value queried from the data-plane state.
    pub attr: AttrValue,
    /// The sub-window the record was generated for.
    pub subwindow: u32,
    /// Per-sub-window sequence id (for the reliability mechanism, §8).
    pub seq: u32,
}

impl FlowRecord {
    /// Convenience constructor for a frequency AFR.
    pub fn frequency(key: FlowKey, count: u64, subwindow: u32) -> FlowRecord {
        FlowRecord {
            key,
            attr: AttrValue::Frequency(count),
            subwindow,
            seq: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::OwError;

    #[test]
    fn frequency_merge_sums() {
        // The paper's motivating example (§4.1): 60 packets in one
        // sub-window plus 80 in the next must reach a threshold of 100
        // after merging, even though neither sub-window does alone.
        let mut a = AttrValue::Frequency(60);
        a.merge(&AttrValue::Frequency(80)).unwrap();
        assert_eq!(a, AttrValue::Frequency(140));
        assert!(a.scalar() >= 100.0);
    }

    #[test]
    fn frequency_merge_saturates() {
        let mut a = AttrValue::Frequency(u64::MAX - 1);
        a.merge(&AttrValue::Frequency(10)).unwrap();
        assert_eq!(a, AttrValue::Frequency(u64::MAX));
    }

    #[test]
    fn existence_merge_is_or() {
        let mut a = AttrValue::Existence(false);
        a.merge(&AttrValue::Existence(false)).unwrap();
        assert_eq!(a, AttrValue::Existence(false));
        a.merge(&AttrValue::Existence(true)).unwrap();
        assert_eq!(a, AttrValue::Existence(true));
        a.merge(&AttrValue::Existence(false)).unwrap();
        assert_eq!(a, AttrValue::Existence(true));
    }

    #[test]
    fn max_min_merges_take_extrema() {
        let mut mx = AttrValue::Max(5);
        mx.merge(&AttrValue::Max(9)).unwrap();
        mx.merge(&AttrValue::Max(3)).unwrap();
        assert_eq!(mx, AttrValue::Max(9));

        let mut mn = AttrValue::Min(5);
        mn.merge(&AttrValue::Min(9)).unwrap();
        mn.merge(&AttrValue::Min(3)).unwrap();
        assert_eq!(mn, AttrValue::Min(3));
    }

    #[test]
    fn min_identity_does_not_poison_scalar() {
        let id = AttrValue::identity(AttrKind::Min);
        assert_eq!(id.scalar(), 0.0);
        let mut v = id;
        v.merge(&AttrValue::Min(7)).unwrap();
        assert_eq!(v.scalar(), 7.0);
    }

    #[test]
    fn mismatched_patterns_fail_loudly() {
        let mut a = AttrValue::Frequency(1);
        let err = a.merge(&AttrValue::Max(2)).unwrap_err();
        assert!(matches!(err, OwError::AttrMismatch { .. }));
    }

    #[test]
    fn distinction_union_does_not_double_count() {
        // The same hashed value inserted in two sub-windows must count once.
        let mut a = DistinctBitmap::default();
        let mut b = DistinctBitmap::default();
        a.insert_hash(12345);
        b.insert_hash(12345);
        b.insert_hash(99999);
        a.union_with(&b);
        assert_eq!(a.ones(), 2);
    }

    #[test]
    fn distinction_estimate_tracks_cardinality() {
        let mut bm = DistinctBitmap::default();
        for i in 0..100u64 {
            // Spread hashes well.
            bm.insert_hash(i.wrapping_mul(0x9E3779B97F4A7C15));
        }
        let est = bm.estimate();
        assert!((80.0..130.0).contains(&est), "estimate {est} out of range");
    }

    #[test]
    fn unmerge_reverses_frequency_merge() {
        let mut a = AttrValue::Frequency(100);
        a.unmerge_frequency(&AttrValue::Frequency(30)).unwrap();
        assert_eq!(a, AttrValue::Frequency(70));
        assert!(a.unmerge_frequency(&AttrValue::Max(1)).is_err());
    }

    #[test]
    fn signed_merge_sums_with_negatives() {
        // A flow's SYN lands in one sub-window (+1), its FIN in the next
        // (−1): the merged difference must be zero.
        let mut a = AttrValue::Signed(1);
        a.merge(&AttrValue::Signed(-1)).unwrap();
        assert_eq!(a, AttrValue::Signed(0));
        assert_eq!(a.scalar(), 0.0);
    }

    #[test]
    fn conn_bytes_merges_componentwise() {
        let mut c1 = DistinctBitmap::default();
        c1.insert_hash(1);
        let mut c2 = DistinctBitmap::default();
        c2.insert_hash(2);
        let mut a = AttrValue::ConnBytes {
            conns: c1,
            bytes: 100,
        };
        a.merge(&AttrValue::ConnBytes {
            conns: c2,
            bytes: 50,
        })
        .unwrap();
        match a {
            AttrValue::ConnBytes { conns, bytes } => {
                assert_eq!(conns.ones(), 2);
                assert_eq!(bytes, 150);
            }
            other => panic!("wrong variant {other:?}"),
        }
    }

    #[test]
    fn conn_bytes_scalar_is_bytes_per_conn() {
        let mut conns = DistinctBitmap::default();
        for i in 0..10u64 {
            conns.insert_hash(i * 1_000_003);
        }
        let v = AttrValue::ConnBytes { conns, bytes: 1000 };
        let s = v.scalar();
        assert!((60.0..160.0).contains(&s), "bytes/conn {s}");
    }

    #[test]
    fn identity_elements_are_merge_neutral() {
        for kind in [
            AttrKind::Frequency,
            AttrKind::Existence,
            AttrKind::Max,
            AttrKind::Min,
            AttrKind::Signed,
        ] {
            let mut id = AttrValue::identity(kind);
            let v = match kind {
                AttrKind::Frequency => AttrValue::Frequency(42),
                AttrKind::Existence => AttrValue::Existence(true),
                AttrKind::Max => AttrValue::Max(42),
                AttrKind::Min => AttrValue::Min(42),
                AttrKind::Distinction | AttrKind::ConnBytes => unreachable!(),
                AttrKind::Signed => AttrValue::Signed(42),
            };
            id.merge(&v).unwrap();
            assert_eq!(id, v, "identity not neutral for {kind:?}");
        }
    }
}
