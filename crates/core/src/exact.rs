//! Error-free reference statistics — the substance behind ITW/ISW.
//!
//! The paper computes its ideal baselines "offline using error-free data
//! structures". [`ExactStat`] is that structure: a lossless per-key
//! statistic (true sets for distinct counts, exact integers for
//! counters) that merges across sub-windows without error.

use std::collections::HashSet;

/// One flow's exact statistic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExactStat {
    /// Exact count (packets or bytes).
    Count(u64),
    /// Exact distinct-element set.
    Distinct(HashSet<u64>),
    /// Exact signed difference.
    Signed(i64),
    /// Exact connection set plus byte volume.
    ConnBytes {
        /// Distinct connections.
        conns: HashSet<u64>,
        /// Total bytes.
        bytes: u64,
    },
}

impl ExactStat {
    /// Merge another sub-window's exact statistic (lossless).
    ///
    /// # Panics
    /// Panics on pattern mismatch — exact stats for one app always share
    /// a pattern, so a mismatch is a harness bug.
    pub fn merge(&mut self, other: &ExactStat) {
        match (self, other) {
            (ExactStat::Count(a), ExactStat::Count(b)) => *a += b,
            (ExactStat::Distinct(a), ExactStat::Distinct(b)) => a.extend(b.iter().copied()),
            (ExactStat::Signed(a), ExactStat::Signed(b)) => *a += b,
            (
                ExactStat::ConnBytes {
                    conns: ca,
                    bytes: ba,
                },
                ExactStat::ConnBytes {
                    conns: cb,
                    bytes: bb,
                },
            ) => {
                ca.extend(cb.iter().copied());
                *ba += bb;
            }
            (a, b) => panic!("exact-stat pattern mismatch: {a:?} vs {b:?}"),
        }
    }

    /// Scalar view (exact): the count, set size, difference, or bytes
    /// per connection.
    pub fn scalar(&self) -> f64 {
        match self {
            ExactStat::Count(v) => *v as f64,
            ExactStat::Distinct(s) => s.len() as f64,
            ExactStat::Signed(v) => *v as f64,
            ExactStat::ConnBytes { conns, bytes } => *bytes as f64 / (conns.len().max(1)) as f64,
        }
    }

    /// Distinct connections (only for `ConnBytes`).
    pub fn conns(&self) -> Option<usize> {
        match self {
            ExactStat::ConnBytes { conns, .. } => Some(conns.len()),
            _ => None,
        }
    }

    /// Total bytes (only for `ConnBytes`).
    pub fn bytes(&self) -> Option<u64> {
        match self {
            ExactStat::ConnBytes { bytes, .. } => Some(*bytes),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_merge_exactly() {
        let mut a = ExactStat::Count(60);
        a.merge(&ExactStat::Count(80));
        assert_eq!(a, ExactStat::Count(140));
        assert_eq!(a.scalar(), 140.0);
    }

    #[test]
    fn distinct_merge_is_true_union() {
        let mut a = ExactStat::Distinct([1u64, 2, 3].into_iter().collect());
        let b = ExactStat::Distinct([3u64, 4].into_iter().collect());
        a.merge(&b);
        assert_eq!(a.scalar(), 4.0);
    }

    #[test]
    fn signed_can_cross_zero() {
        let mut a = ExactStat::Signed(5);
        a.merge(&ExactStat::Signed(-9));
        assert_eq!(a, ExactStat::Signed(-4));
    }

    #[test]
    fn conn_bytes_scalar_is_bytes_per_conn() {
        let mut a = ExactStat::ConnBytes {
            conns: [1u64, 2].into_iter().collect(),
            bytes: 100,
        };
        a.merge(&ExactStat::ConnBytes {
            conns: [2u64, 3].into_iter().collect(),
            bytes: 50,
        });
        assert_eq!(a.conns(), Some(3));
        assert_eq!(a.bytes(), Some(150));
        assert_eq!(a.scalar(), 50.0);
    }

    #[test]
    #[should_panic(expected = "pattern mismatch")]
    fn mismatch_panics() {
        let mut a = ExactStat::Count(1);
        a.merge(&ExactStat::Signed(1));
    }
}
