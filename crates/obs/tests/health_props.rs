//! Property tests for the health engine and the flight recorder: the
//! ring honours its byte/entry budget under arbitrary floods, and rule
//! evaluation is a pure function of the sample *set* (never its
//! order), which is what lets threaded runs alert deterministically.

use proptest::prelude::*;

use ow_obs::{
    Cmp, FlightEntry, FlightRecorder, FlightRecorderConfig, HealthSample, MetricSelector,
    MetricSnapshot, Obs, PeakSample, Rule, RuleSet, Severity, Signal,
};

/// One flood entry: kind selector plus payload length.
fn arb_entry() -> impl Strategy<Value = (u8, u16, u64)> {
    (any::<u8>(), any::<u16>(), any::<u64>())
}

fn entry_of((kind, len, at): (u8, u16, u64)) -> FlightEntry {
    let kinds = ["event", "signal", "tick"];
    FlightEntry {
        at_ns: at % 1_000_000,
        kind: kinds[kind as usize % 3].into(),
        detail: "x".repeat(len as usize % 512),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// However hard the recorder is flooded, the retained ring never
    /// exceeds either configured bound, and every eviction is counted.
    #[test]
    fn recorder_ring_never_exceeds_its_bounds(
        max_entries in 1usize..64,
        max_bytes in 1usize..4096,
        flood in proptest::collection::vec(arb_entry(), 0..256),
    ) {
        let mut rec = FlightRecorder::new(FlightRecorderConfig { max_entries, max_bytes });
        let mut offered = 0u64;
        for raw in flood {
            let entry = entry_of(raw);
            offered += 1;
            rec.record(entry);
            prop_assert!(rec.entry_count() <= max_entries,
                "{} entries retained with max_entries {max_entries}", rec.entry_count());
            prop_assert!(rec.byte_usage() <= max_bytes,
                "{} bytes retained with max_bytes {max_bytes}", rec.byte_usage());
        }
        prop_assert!(rec.dropped() + rec.entry_count() as u64 <= offered);
    }

    /// A frozen recorder is inert: floods after the freeze change
    /// nothing about what the dump will say.
    #[test]
    fn frozen_recorder_ignores_floods(
        flood in proptest::collection::vec(arb_entry(), 1..64),
    ) {
        let mut rec = FlightRecorder::new(FlightRecorderConfig::default());
        rec.record(FlightEntry {
            at_ns: 1,
            kind: "event".into(),
            detail: "before the freeze".into(),
        });
        rec.freeze(
            "prop test freeze",
            2,
            ow_obs::RegistrySnapshot::default(),
            Vec::new(),
            Vec::new(),
        );
        let before = rec.dump("props").expect("frozen").to_json();
        for raw in flood {
            rec.record(entry_of(raw));
        }
        prop_assert_eq!(before, rec.dump("props").expect("still frozen").to_json());
    }
}

/// A small fixed metric space the order-independence property draws
/// samples over: two counter families sharded four ways plus one
/// gauge peak family.
fn sample_of(values: &[u64], order: &[u8]) -> HealthSample {
    let mut metrics = Vec::new();
    let mut peaks = Vec::new();
    for shard in 0..4u64 {
        let labels = vec![("shard".to_string(), shard.to_string())];
        metrics.push(MetricSnapshot {
            name: "ow_prop_num_total".into(),
            labels: labels.clone(),
            kind: "counter".into(),
            value: values[shard as usize],
            histogram: None,
        });
        metrics.push(MetricSnapshot {
            name: "ow_prop_den_total".into(),
            labels: labels.clone(),
            kind: "counter".into(),
            value: 100,
            histogram: None,
        });
        peaks.push(PeakSample {
            name: "ow_prop_queue".into(),
            labels,
            peak: values[4 + shard as usize],
        });
    }
    // Deterministic permutation driven by the generated order bytes.
    let m_len = metrics.len();
    let p_len = peaks.len();
    for (i, &o) in order.iter().enumerate() {
        metrics.swap(i % m_len, o as usize % m_len);
        peaks.swap(i % p_len, o as usize % p_len);
    }
    HealthSample {
        at_ns: 1_000,
        metrics,
        peaks,
    }
}

fn prop_rules() -> RuleSet {
    RuleSet::new(vec![
        Rule::new(
            "OW-HEALTH-901",
            "prop_ratio",
            MetricSelector::new("ow_prop_num_total", &[]),
            Signal::RatioPermille {
                denominator: MetricSelector::new("ow_prop_den_total", &[]),
            },
            Cmp::Above,
            300,
            Severity::Warning,
        )
        .group_by("shard")
        .entity("shard"),
        Rule::new(
            "OW-HEALTH-902",
            "prop_saturation",
            MetricSelector::new("ow_prop_queue", &[]),
            Signal::SaturationPermille { capacity: 100 },
            Cmp::Above,
            500,
            Severity::Warning,
        )
        .group_by("shard")
        .entity("shard"),
        Rule::new(
            "OW-HEALTH-903",
            "prop_total",
            MetricSelector::new("ow_prop_num_total", &[]),
            Signal::Value,
            Cmp::Above,
            150,
            Severity::Critical,
        )
        .entity("fleet"),
    ])
    .expect("prop catalog validates")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Feeding the same sample *set* in any order produces the same
    /// alerts, the same scores, and the same timeline: evaluation
    /// cannot depend on snapshot enumeration order.
    #[test]
    fn rule_evaluation_is_order_independent(
        values in proptest::collection::vec(0u64..120, 8),
        order_a in proptest::collection::vec(any::<u8>(), 8),
        order_b in proptest::collection::vec(any::<u8>(), 8),
    ) {
        let obs_a = Obs::new();
        let obs_b = Obs::new();
        let engine_a = obs_a.install_health(prop_rules(), FlightRecorderConfig::default());
        let engine_b = obs_b.install_health(prop_rules(), FlightRecorderConfig::default());
        let fired_a = engine_a.tick_with_sample(sample_of(&values, &order_a));
        let fired_b = engine_b.tick_with_sample(sample_of(&values, &order_b));
        prop_assert_eq!(fired_a, fired_b);
        prop_assert_eq!(engine_a.timeline(), engine_b.timeline());
        let report_a = serde_json::to_string(&engine_a.report("props")).unwrap();
        let report_b = serde_json::to_string(&engine_b.report("props")).unwrap();
        prop_assert_eq!(report_a, report_b);
        prop_assert_eq!(engine_a.frozen(), engine_b.frozen());
        if engine_a.frozen() {
            prop_assert_eq!(
                engine_a.flight_dump("props").map(|d| d.to_json()),
                engine_b.flight_dump("props").map(|d| d.to_json())
            );
        }
    }
}
