//! Exp#3 (Figure 9): user-defined window signals in distributed ML.
//!
//! The application embeds the training-iteration number in every packet;
//! the switch's user-defined signal engine segments the stream by
//! iteration and records the first/last packet timestamp per (worker,
//! iteration) — the per-iteration training time, without any end-host
//! cooperation. The measured staircase (time halving as the gradient
//! compression ratio doubles every 16 iterations) is the figure's shape.

use std::collections::HashMap;

use serde::Serialize;

use ow_common::time::Instant;
use ow_switch::signal::{SignalEngine, WindowSignal};
use ow_trace::dml::{self, DmlConfig};

/// Per-(worker, iteration) measured time.
#[derive(Debug, Clone, Serialize)]
pub struct IterationTime {
    /// Worker index.
    pub worker: usize,
    /// 1-based iteration number.
    pub iteration: u32,
    /// Measured duration in microseconds (last − first packet of the
    /// iteration for this worker).
    pub micros: f64,
}

/// The whole experiment.
#[derive(Debug, Clone, Serialize)]
pub struct Exp3Result {
    /// All measured (worker, iteration) times.
    pub times: Vec<IterationTime>,
    /// Iterations observed.
    pub iterations: u32,
}

/// Run Exp#3 with the given training configuration.
pub fn run(cfg: &DmlConfig) -> Exp3Result {
    let packets = dml::generate(cfg);

    // The switch extracts the embedded iteration tag; the user-defined
    // signal engine turns tag changes into window terminations. Here the
    // engine validates the tag stream while the measurement itself is
    // the per-(worker, iteration) first/last timestamps the switch
    // registers record.
    let mut signal = SignalEngine::new(WindowSignal::UserDefined);
    let mut spans: HashMap<(usize, u32), (Instant, Instant)> = HashMap::new();

    for pkt in &packets {
        let _ = signal.on_packet(pkt);
        let iteration = pkt.app_tag;
        if iteration == 0 {
            continue;
        }
        // Attribute the packet to its worker (pushes come from workers;
        // the pull from the server is attributed to the destination).
        let worker_ip = if pkt.src_ip == dml::PS_ADDR {
            pkt.dst_ip
        } else {
            pkt.src_ip
        };
        let Some(worker) = (0..cfg.workers).find(|&w| dml::worker_addr(w) == worker_ip) else {
            continue;
        };
        let e = spans.entry((worker, iteration)).or_insert((pkt.ts, pkt.ts));
        if pkt.ts < e.0 {
            e.0 = pkt.ts;
        }
        if pkt.ts > e.1 {
            e.1 = pkt.ts;
        }
    }

    let mut times: Vec<IterationTime> = spans
        .into_iter()
        .map(|((worker, iteration), (first, last))| IterationTime {
            worker,
            iteration,
            micros: last.saturating_since(first).as_micros_f64(),
        })
        .collect();
    times.sort_by_key(|t| (t.iteration, t.worker));
    Exp3Result {
        iterations: signal.current(),
        times,
    }
}

impl Exp3Result {
    /// Mean measured time of one iteration across workers.
    pub fn mean_time(&self, iteration: u32) -> f64 {
        let v: Vec<f64> = self
            .times
            .iter()
            .filter(|t| t.iteration == iteration)
            .map(|t| t.micros)
            .collect();
        if v.is_empty() {
            0.0
        } else {
            v.iter().sum::<f64>() / v.len() as f64
        }
    }
}
