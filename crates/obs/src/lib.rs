//! `ow-obs` — observability for the OmniWindow reproduction.
//!
//! Three pieces, all designed around the repo's *virtual* clock so that
//! everything recorded is deterministic and testable:
//!
//! * [`MetricsRegistry`] ([`registry`]) — named counters, gauges, and
//!   fixed-bucket log2 histograms with percentile readout. Handles are
//!   atomics shared out of the registry, so hot paths never touch the
//!   registry lock. Names follow `ow_<crate>_<name>`.
//! * [`EventJournal`] ([`journal`]) — typed lifecycle events (window,
//!   phase, shard) in a bounded ring, with optional JSONL and console
//!   sinks; this replaces free-form `eprintln!` progress prints.
//! * Exporters ([`export`]) — Prometheus text exposition with a
//!   line-format checker, plus `results/obs_*.json` snapshot reports
//!   rendered by the `ow-obs-report` binary.
//! * [`Tracer`] ([`span`]) — causal span tracing: per-window span
//!   trees on the virtual clock, stitched across the lossy channel by
//!   a wire-propagated [`TraceContext`], analysed by
//!   [`critical_path`] and exported as `results/trace_*.json`.
//! * [`HealthEngine`] ([`health`]) — the streaming interpretation
//!   layer: declarative `OW-HEALTH-*` rules over derived signals
//!   (rates, EWMA, saturation, SLO burn rate), per-entity scoring
//!   rolled up to `ow_health_fleet_score`, and a bounded black-box
//!   [`FlightRecorder`] ([`flightrec`]) that freezes a deterministic
//!   `results/flightrec_*.json` post-mortem on critical alerts or FSM
//!   invariant rejections.
//!
//! * [`AccuracyScorer`] ([`accuracy`]) — the live query-accuracy
//!   observatory: a streaming ground-truth oracle fed per sub-window
//!   by the feeder, scored against each window's merged answer at its
//!   `Merged` transition, published as `ow_accuracy_*` permille gauges
//!   and closed through the health engine by the `OW-HEALTH-4xx`
//!   catalog ([`accuracy_health_rules`]).
//!
//! [`Obs`] bundles one registry, one journal, and one tracer into a
//! cheap-clone handle that threads through the switch, controller, and
//! topology builder. [`Obs::engine_sink`] adapts the handle onto
//! [`ow_common::engine::TransitionSink`] so every `WindowEngine`
//! transition — including rejected drift — lands in the registry, the
//! journal, and (when the window has an active trace) the span tree.

pub mod accuracy;
pub mod export;
pub mod flightrec;
pub mod health;
pub mod journal;
pub mod json;
pub mod registry;
pub mod span;

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use parking_lot::RwLock;

use ow_common::engine::{Transition, TransitionSink, WindowPhase};
use ow_common::metrics::ReliabilityMetrics;

pub use accuracy::{
    accuracy_health_rules, AccuracyConfig, AccuracyScorer, AccuracySummary, WindowScore,
    WindowScoreBrief,
};
pub use export::{check_exposition, prometheus_text, ObsReport};
pub use flightrec::{
    validate_flightrec_json, FlightDump, FlightEntry, FlightRecorder, FlightRecorderConfig,
    TraceBrief,
};
pub use health::{
    valid_code, AlertEvent, Cmp, HealthEngine, HealthReport, HealthSample, MetricSelector, Rule,
    RuleSet, Severity, Signal, FSM_REJECT_CODE,
};
pub use journal::{Event, EventJournal, Level};
pub use registry::{
    validate_metric_name, Counter, Gauge, Histogram, HistogramSnapshot, MetricSnapshot,
    MetricsRegistry, PeakSample, RegistrySnapshot,
};
pub use span::{
    critical_path, validate_trace_json, CriticalPath, PhaseMark, Span, TraceContext, TraceReport,
    TraceSummary, Traced, Tracer,
};

/// The combined observability handle: one metrics registry, one event
/// journal, one span tracer. Cheap to clone (three `Arc`s); every clone
/// observes the same run.
#[derive(Debug, Clone)]
pub struct Obs {
    registry: Arc<MetricsRegistry>,
    journal: Arc<EventJournal>,
    tracer: Arc<Tracer>,
    health: Arc<RwLock<Option<Arc<HealthEngine>>>>,
    accuracy: Arc<RwLock<Option<Arc<AccuracyScorer>>>>,
}

impl Default for Obs {
    fn default() -> Obs {
        Obs::new()
    }
}

impl Obs {
    /// A fresh registry + journal + tracer triple, with the crate's own
    /// health metrics pre-registered: `ow_obs_journal_dropped_total`
    /// (events the bounded journal ring discarded) and
    /// `ow_obs_spans_total` (spans recorded by the tracer).
    pub fn new() -> Obs {
        Obs::with_journal_capacity(journal::DEFAULT_CAPACITY)
    }

    /// Like [`Obs::new`] with an explicit journal ring capacity
    /// (tests overfill a tiny ring to exercise the drop counter).
    pub fn with_journal_capacity(capacity: usize) -> Obs {
        let registry = Arc::new(MetricsRegistry::new());
        let journal = Arc::new(EventJournal::with_capacity(capacity));
        let tracer = Arc::new(Tracer::new());
        journal.set_drop_counter(registry.counter("ow_obs_journal_dropped_total", &[]));
        tracer.set_span_counter(registry.counter("ow_obs_spans_total", &[]));
        Obs {
            registry,
            journal,
            tracer,
            health: Arc::new(RwLock::new(None)),
            accuracy: Arc::new(RwLock::new(None)),
        }
    }

    /// Install a [`HealthEngine`] over this handle's registry, journal,
    /// and tracer. Every clone of the handle sees the engine (the
    /// engine-transition sink uses it to freeze the flight recorder on
    /// FSM invariant rejections). Installing again replaces the
    /// previous engine.
    pub fn install_health(
        &self,
        rules: RuleSet,
        recorder_cfg: FlightRecorderConfig,
    ) -> Arc<HealthEngine> {
        let engine = Arc::new(HealthEngine::new(
            rules,
            Arc::clone(&self.registry),
            Arc::clone(&self.journal),
            Arc::clone(&self.tracer),
            recorder_cfg,
        ));
        *self.health.write() = Some(Arc::clone(&engine));
        engine
    }

    /// The installed health engine, if any.
    pub fn health(&self) -> Option<Arc<HealthEngine>> {
        self.health.read().clone()
    }

    /// Install an [`AccuracyScorer`] over this handle's registry and
    /// journal. Every clone of the handle sees the scorer: the feeder
    /// streams ground truth into it and the controller scores each
    /// window at its `Merged` transition. Installing again replaces the
    /// previous scorer (and starts a fresh oracle).
    pub fn install_accuracy(&self, cfg: AccuracyConfig) -> Arc<AccuracyScorer> {
        let scorer =
            AccuracyScorer::new(cfg, Arc::clone(&self.registry), Arc::clone(&self.journal));
        *self.accuracy.write() = Some(Arc::clone(&scorer));
        scorer
    }

    /// The installed accuracy scorer, if any.
    pub fn accuracy(&self) -> Option<Arc<AccuracyScorer>> {
        self.accuracy.read().clone()
    }

    /// The span tracer.
    pub fn tracer(&self) -> &Arc<Tracer> {
        &self.tracer
    }

    /// The metrics registry.
    pub fn registry(&self) -> &Arc<MetricsRegistry> {
        &self.registry
    }

    /// The event journal.
    pub fn journal(&self) -> &Arc<EventJournal> {
        &self.journal
    }

    /// Register (or look up) a counter. See [`MetricsRegistry::counter`].
    pub fn counter(&self, name: &str, labels: &[(&str, &str)]) -> Counter {
        self.registry.counter(name, labels)
    }

    /// Register (or look up) a gauge. See [`MetricsRegistry::gauge`].
    pub fn gauge(&self, name: &str, labels: &[(&str, &str)]) -> Gauge {
        self.registry.gauge(name, labels)
    }

    /// Register (or look up) a histogram. See
    /// [`MetricsRegistry::histogram`].
    pub fn histogram(&self, name: &str, labels: &[(&str, &str)]) -> Histogram {
        self.registry.histogram(name, labels)
    }

    /// Record one journal event.
    pub fn event(&self, event: Event) {
        self.journal.record(event);
    }

    /// A deterministic snapshot of the registry.
    pub fn snapshot(&self) -> RegistrySnapshot {
        self.registry.snapshot()
    }

    /// Capture a full on-disk report (registry + journal tail).
    pub fn report(&self, run: &str) -> ObsReport {
        ObsReport::capture(run, &self.registry, &self.journal)
    }

    /// A [`TransitionSink`] mirroring every `WindowEngine` transition on
    /// the given `side` (`"switch"` / `"controller"`) into this handle:
    /// `ow_common_engine_{transitions,released,rejected}_total{side=…}`
    /// counters, an `fsm_transition` journal event per step, and a
    /// one-shot `drift_detected` warning on the first rejection.
    pub fn engine_sink(&self, side: &str) -> Arc<EngineObserver> {
        Arc::new(EngineObserver {
            obs: self.clone(),
            side: side.to_string(),
            transitions: self.counter("ow_common_engine_transitions_total", &[("side", side)]),
            released: self.counter("ow_common_engine_released_total", &[("side", side)]),
            rejected: self.counter("ow_common_engine_rejected_total", &[("side", side)]),
            drift_warned: AtomicBool::new(false),
        })
    }

    /// Fold one session's [`ReliabilityMetrics`] into the registry under
    /// the `ow_controller_*` names (counters accumulate across
    /// sessions; `wall_clock` feeds the C&R recovery-duration
    /// histogram).
    pub fn fold_reliability(&self, m: &ReliabilityMetrics) {
        self.counter("ow_controller_afr_announced_total", &[])
            .add(m.announced);
        self.counter("ow_controller_afr_first_pass_total", &[])
            .add(m.first_pass);
        self.counter("ow_controller_retransmit_rounds", &[])
            .add(m.retransmit_rounds);
        self.counter("ow_controller_retransmit_requests_total", &[])
            .add(m.retransmit_requests);
        self.counter("ow_controller_afr_recovered_total", &[])
            .add(m.recovered);
        self.counter("ow_controller_afr_duplicates_total", &[])
            .add(m.duplicates);
        self.counter("ow_controller_escalations_total", &[])
            .add(m.escalations);
        self.counter("ow_controller_backpressure_dropped_total", &[])
            .add(m.dropped);
        self.counter("ow_controller_departed_sessions_total", &[])
            .add(m.departed);
        self.histogram("ow_controller_cr_phase_duration", &[("phase", "recovery")])
            .record(m.wall_clock);
    }
}

/// Adapter from [`Obs`] onto the engine's [`TransitionSink`] hook; build
/// via [`Obs::engine_sink`].
#[derive(Debug)]
pub struct EngineObserver {
    obs: Obs,
    side: String,
    transitions: Counter,
    released: Counter,
    rejected: Counter,
    drift_warned: AtomicBool,
}

impl TransitionSink for EngineObserver {
    fn on_transition(&self, t: &Transition) {
        self.transitions.inc();
        match t.to {
            Some(to) => {
                if to == WindowPhase::Released {
                    self.released.inc();
                }
                self.obs
                    .tracer
                    .mark(t.subwindow, &self.side, t.event, t.from.name(), to.name());
                self.obs.event(
                    Event::new(
                        "fsm_transition",
                        format!("{} -> {} via '{}' ({})", t.from, to, t.event, self.side),
                    )
                    .subwindow(t.subwindow)
                    .phase(to.name()),
                );
            }
            None => {
                self.rejected.inc();
                self.obs.event(
                    Event::new(
                        "fsm_transition",
                        format!(
                            "rejected event '{}' in phase '{}' ({})",
                            t.event, t.from, self.side
                        ),
                    )
                    .warn()
                    .subwindow(t.subwindow)
                    .phase(t.from.name()),
                );
                if !self.drift_warned.swap(true, Ordering::Relaxed) {
                    self.obs.event(
                        Event::new(
                            "drift_detected",
                            format!(
                                "first rejected transition on side '{}': sub-window {} event '{}' in phase '{}'",
                                self.side, t.subwindow, t.event, t.from
                            ),
                        )
                        .warn()
                        .subwindow(t.subwindow),
                    );
                }
                // A rejected transition is an invariant violation: when
                // a health engine is installed, it freezes the black
                // box so the failure becomes a post-mortem artifact.
                if let Some(health) = self.obs.health() {
                    health.fsm_invariant_rejected(
                        &self.side,
                        t.subwindow,
                        &format!("event '{}' rejected in phase '{}'", t.event, t.from),
                    );
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ow_common::engine::{WindowEngine, WindowEvent, WindowFsm};
    use ow_common::time::Duration;

    #[test]
    fn engine_sink_mirrors_transitions_into_registry_and_journal() {
        let obs = Obs::new();
        let mut engine = WindowEngine::new();
        engine.set_sink(obs.engine_sink("controller"));
        engine.insert(WindowFsm::announced(3, 5));
        engine.apply(3, WindowEvent::RetransmitRound).unwrap();
        engine.apply(3, WindowEvent::StreamComplete).unwrap();
        engine.apply(3, WindowEvent::Acked).unwrap();
        assert!(engine.apply(3, WindowEvent::Acked).is_err(), "pruned");
        assert!(engine.apply(3, WindowEvent::Acked).is_err());

        let snap = obs.snapshot();
        let side = [("side", "controller")];
        assert_eq!(snap.value("ow_common_engine_transitions_total", &side), 5);
        assert_eq!(snap.value("ow_common_engine_released_total", &side), 1);
        assert_eq!(snap.value("ow_common_engine_rejected_total", &side), 2);
        assert_eq!(
            snap.value("ow_common_engine_rejected_total", &side),
            engine.rejected()
        );

        let events = obs.journal().events();
        let kinds: Vec<&str> = events.iter().map(|e| e.kind.as_str()).collect();
        // 5 fsm_transition events plus exactly one drift_detected.
        assert_eq!(kinds.iter().filter(|k| **k == "fsm_transition").count(), 5);
        assert_eq!(kinds.iter().filter(|k| **k == "drift_detected").count(), 1);
        let drift = events.iter().find(|e| e.kind == "drift_detected").unwrap();
        assert_eq!(drift.level, Level::Warn);
        assert_eq!(drift.subwindow, Some(3));
    }

    #[test]
    fn journal_overflow_surfaces_in_snapshot_exposition_and_report() {
        let obs = Obs::with_journal_capacity(4);
        for i in 0..10 {
            obs.event(Event::new("tick", format!("event {i}")));
        }
        // 10 recorded into a 4-slot ring: 6 dropped, visible everywhere.
        let snap = obs.snapshot();
        assert_eq!(snap.value("ow_obs_journal_dropped_total", &[]), 6);
        let text = crate::prometheus_text(&snap);
        assert!(text.contains("ow_obs_journal_dropped_total 6"), "{text}");
        let report = obs.report("unit");
        assert_eq!(report.events_dropped, 6);
        assert_eq!(report.events_recorded, 10);
        assert_eq!(report.events.len(), 4);
        assert!(
            report.to_json().contains("\"events_dropped\": 6"),
            "JSON snapshot carries the drop count"
        );
    }

    #[test]
    fn engine_sink_marks_transitions_into_the_active_trace() {
        let obs = Obs::new();
        obs.tracer().start_window(3, "controller", 0);
        let mut engine = WindowEngine::new();
        engine.set_sink(obs.engine_sink("controller"));
        engine.insert(WindowFsm::announced(3, 5));
        engine.apply(3, WindowEvent::StreamComplete).unwrap();
        engine.apply(3, WindowEvent::Acked).unwrap();
        let report = TraceReport::capture("unit", obs.tracer(), None);
        let events: Vec<&str> = report.traces[0]
            .transitions
            .iter()
            .map(|m| m.event.as_str())
            .collect();
        assert_eq!(events, vec!["stream_complete", "acked"]);
        assert_eq!(report.traces[0].transitions[0].to, "merged");
    }

    #[test]
    fn reliability_metrics_fold_accumulates() {
        let obs = Obs::new();
        let session = ReliabilityMetrics {
            announced: 10,
            first_pass: 7,
            retransmit_rounds: 2,
            retransmit_requests: 3,
            recovered: 3,
            duplicates: 1,
            escalations: 1,
            dropped: 0,
            departed: 1,
            wall_clock: Duration::from_micros(400),
        };
        obs.fold_reliability(&session);
        obs.fold_reliability(&session);
        let snap = obs.snapshot();
        assert_eq!(snap.value("ow_controller_afr_announced_total", &[]), 20);
        assert_eq!(snap.value("ow_controller_retransmit_rounds", &[]), 4);
        assert_eq!(snap.value("ow_controller_escalations_total", &[]), 2);
        assert_eq!(snap.value("ow_controller_departed_sessions_total", &[]), 2);
        let h = snap
            .get("ow_controller_cr_phase_duration", &[("phase", "recovery")])
            .unwrap()
            .histogram
            .as_ref()
            .unwrap();
        assert_eq!(h.count, 2);
        assert_eq!(h.sum, 800_000);
    }
}
