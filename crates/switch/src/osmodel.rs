//! The conventional switch-OS collection path (the baseline OmniWindow
//! bypasses).
//!
//! Prior telemetry systems perform C&R through the switch OS: the
//! control CPU issues register reads/writes over PCIe with RPC framing,
//! one batch at a time, with no concurrency across register arrays
//! (constraint C1). This module models that path so experiments can
//! compare it against the recirculation-based design: reads return the
//! true state (no error) but take seconds; worse, traffic measured while
//! the read runs is attributed inconsistently — the TW1 accuracy hazard.

use ow_common::time::Duration;

use crate::latency::LatencyModel;

/// The switch-OS slow path.
#[derive(Debug, Clone)]
pub struct SwitchOsModel {
    latency: LatencyModel,
    /// Fixed per-RPC overhead (connection + framing), charged per array.
    pub rpc_overhead: Duration,
}

impl SwitchOsModel {
    /// Create with the default latency model.
    pub fn new(latency: LatencyModel) -> SwitchOsModel {
        SwitchOsModel {
            latency,
            rpc_overhead: Duration::from_micros(500),
        }
    }

    /// Time to read `arrays` register arrays of `entries` entries each.
    pub fn read_time(&self, arrays: usize, entries: usize) -> Duration {
        self.latency.os_read(arrays, entries) + self.rpc_overhead.saturating_mul(arrays as u64)
    }

    /// Time to reset the same registers (sequential across arrays).
    pub fn reset_time(&self, arrays: usize, entries: usize) -> Duration {
        self.latency.os_reset(arrays, entries) + self.rpc_overhead.saturating_mul(arrays as u64)
    }

    /// Full C&R time (read then reset; the OS cannot overlap them on one
    /// register).
    pub fn cr_time(&self, arrays: usize, entries: usize) -> Duration {
        self.read_time(arrays, entries) + self.reset_time(arrays, entries)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_time_linear_in_arrays() {
        let os = SwitchOsModel::new(LatencyModel::default());
        let one = os.read_time(1, 65_536);
        let four = os.read_time(4, 65_536);
        let ratio = four.as_nanos() as f64 / one.as_nanos() as f64;
        assert!((3.9..4.1).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn os_cr_is_orders_of_magnitude_slower_than_subwindow() {
        let os = SwitchOsModel::new(LatencyModel::default());
        let t = os.cr_time(4, 65_536);
        // Far beyond a 100 ms sub-window — the motivation for fast C&R.
        assert!(t > Duration::from_millis(1_000), "{t}");
    }
}
