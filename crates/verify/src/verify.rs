//! The static verifier: proves the §2 constraints and Table-2 resource
//! fit for a [`PipelineProgram`], and mints the [`VerifiedProgram`]
//! witness that the rest of the workspace requires before assembling a
//! runtime [`Switch`] pipeline.
//!
//! Checks performed (each maps to one stable [`ErrorCode`]):
//!
//! | property | code |
//! |---|---|
//! | C4: ≤ 1 SALU access per array per pass, on **every** path | `OW-C4-DOUBLE-ACCESS` |
//! | every accessed array is declared | `OW-UNKNOWN-REGISTER` |
//! | register declarations well-formed | `OW-BAD-REGISTER` |
//! | §6 flattened-layout address bounds | `OW-ADDR-OOB` |
//! | a dependency chain is longer than the pipeline | `OW-STAGE-OVERFLOW` |
//! | search-based stage placement fits (drives [`place_optimal`]) | `OW-PLACE-INFEASIBLE` |
//! | packing density of the found placement (note) | `OW-PLACE-SLACK` |
//! | per-step / whole-program SRAM fit | `OW-SRAM-OVERFLOW` |
//! | per-step SALU fit | `OW-SALU-OVERFLOW` |
//! | per-step VLIW fit | `OW-VLIW-OVERFLOW` |
//! | per-step gateway fit | `OW-GATEWAY-OVERFLOW` |
//! | every array has a SALU to serve it | `OW-SALU-UNDERPROVISIONED` |
//! | recirculation loops statically bounded (C1) | `OW-RECIRC-UNBOUNDED` |
//! | §8 CPU paths never touch a SALU | `OW-CONTROL-PLANE-SALU` |
//! | expected packet classes covered (warning) | `OW-MISSING-PATH` |
//!
//! Stage placement runs the dependency-aware branch-and-bound search
//! ([`place_optimal`]) seeded with the greedy first-fit solution as
//! its incumbent, so the verifier is *strictly more permissive* than
//! the old greedy-only pass (any program greedy placed still places,
//! in at most as many stages) while admitting programs greedy
//! fragmented. The search budget is a node count, keeping every
//! report — density figures included — byte-deterministic.

use std::collections::HashMap;

use ow_common::error::OwError;
use ow_switch::app::DataPlaneApp;
use ow_switch::placement::{place_optimal, Feature, Placement, SearchBudget, Step};
use ow_switch::switch::{Switch, SwitchConfig};

use crate::diag::{Diagnostic, ErrorCode, ResourceTotals, Severity, VerifyReport};
use crate::ir::{PacketClass, PipelineProgram};

/// The witness that a program passed every static check. Holding one is
/// the only supported way to construct a [`Switch`] pipeline; the type
/// cannot be built outside [`verify()`](crate::verify::verify).
#[derive(Debug, Clone)]
pub struct VerifiedProgram {
    program: PipelineProgram,
    placement: Placement,
    report: VerifyReport,
}

impl VerifiedProgram {
    /// The verified program.
    pub fn program(&self) -> &PipelineProgram {
        &self.program
    }

    /// The derived stage placement.
    pub fn placement(&self) -> &Placement {
        &self.placement
    }

    /// The full report (possibly carrying warnings).
    pub fn report(&self) -> &VerifyReport {
        &self.report
    }

    /// Assemble the runtime switch this program was verified for.
    ///
    /// Cross-checks the concrete configuration and application against
    /// the verified declarations — the witness must actually cover what
    /// is about to run — then constructs the pipeline via the unchecked
    /// constructor the witness guards.
    pub fn build_switch<A: DataPlaneApp>(
        &self,
        cfg: SwitchConfig,
        region_a: A,
        region_b: A,
    ) -> Result<Switch<A>, OwError> {
        if region_a.meta() != region_b.meta() {
            return Err(OwError::Config(
                "the two region applications are configured differently".into(),
            ));
        }
        let states = region_a.states_per_array();
        let covers_app = self
            .program
            .registers
            .iter()
            .any(|r| r.regions >= 2 && r.region_cells >= states.max(1));
        if !covers_app {
            return Err(OwError::Config(format!(
                "verified program '{}' declares no two-region array of ≥ {} cells for \
                 application '{}'",
                self.program.name,
                states,
                region_a.meta().name
            )));
        }
        let covers_fk = self
            .program
            .registers
            .iter()
            .any(|r| r.name == "fk_buffer" && r.region_cells >= cfg.fk_capacity.max(1));
        if !covers_fk {
            return Err(OwError::Config(format!(
                "verified program '{}' has no fk_buffer of ≥ {} cells",
                self.program.name, cfg.fk_capacity
            )));
        }
        Ok(Switch::new_unchecked(cfg, region_a, region_b))
    }
}

/// Statically verify `program` with the default placement search
/// budget. Returns the witness on success; the full report (with at
/// least one error diagnostic) on rejection.
pub fn verify(program: &PipelineProgram) -> Result<VerifiedProgram, Box<VerifyReport>> {
    verify_with_budget(program, SearchBudget::default())
}

/// [`verify`] with an explicit placement [`SearchBudget`] — the knob
/// `ow-lint --budget` exposes so CI can pin the node count (stable
/// reports) and callers in a hurry can shrink it (the greedy incumbent
/// keeps small budgets sound, just less optimal).
pub fn verify_with_budget(
    program: &PipelineProgram,
    budget: SearchBudget,
) -> Result<VerifiedProgram, Box<VerifyReport>> {
    let mut diags: Vec<Diagnostic> = Vec::new();
    let limits = program.limits;

    // --- Register declarations -------------------------------------
    let mut seen: HashMap<&str, ()> = HashMap::new();
    for reg in &program.registers {
        if reg.regions == 0 || reg.region_cells == 0 {
            diags.push(Diagnostic::error(
                ErrorCode::BadRegister,
                format!("register '{}'", reg.name),
                format!(
                    "empty layout: {} regions × {} cells",
                    reg.regions, reg.region_cells
                ),
            ));
        }
        if seen.insert(reg.name.as_str(), ()).is_some() {
            diags.push(Diagnostic::error(
                ErrorCode::BadRegister,
                format!("register '{}'", reg.name),
                "duplicate register name".to_string(),
            ));
        }
    }

    // --- Per-step budget fit ---------------------------------------
    for feature in &program.features {
        let ctx = format!("feature '{}'", feature.name);
        if feature.steps.len() > limits.stages as usize {
            diags.push(Diagnostic::error(
                ErrorCode::StageOverflow,
                ctx.clone(),
                format!(
                    "{} dependency-ordered steps cannot serialise through {} stages",
                    feature.steps.len(),
                    limits.stages
                ),
            ));
        }
        for (i, step) in feature.steps.iter().enumerate() {
            let mut overflow = |code, what: &str, used: u32, cap: u32| {
                if used > cap {
                    diags.push(Diagnostic::error(
                        code,
                        format!("{ctx} step {i}"),
                        format!("needs {used} {what} but a stage offers {cap}"),
                    ));
                }
            };
            overflow(
                ErrorCode::SramOverflow,
                "KB SRAM",
                step.sram_kb,
                limits.sram_kb,
            );
            overflow(ErrorCode::SaluOverflow, "SALUs", step.salus, limits.salus);
            overflow(
                ErrorCode::VliwOverflow,
                "VLIW slots",
                step.vliw,
                limits.vliw,
            );
            overflow(
                ErrorCode::GatewayOverflow,
                "gateways",
                step.gateways,
                limits.gateways,
            );
        }
    }

    // --- Whole-program totals --------------------------------------
    let sum = |f: fn(&crate::ir::StepDecl) -> u32| -> u32 {
        program
            .features
            .iter()
            .flat_map(|feat| feat.steps.iter())
            .map(f)
            .sum()
    };
    let totals = ResourceTotals {
        sram_kb: sum(|s| s.sram_kb),
        salus: sum(|s| s.salus),
        vliw: sum(|s| s.vliw),
        gateways: sum(|s| s.gateways),
        registers: program.registers.len() as u32,
        register_cells: program.registers.iter().map(|r| r.cells() as u64).sum(),
    };
    if totals.sram_kb > limits.stages * limits.sram_kb {
        diags.push(Diagnostic::error(
            ErrorCode::SramOverflow,
            "program".to_string(),
            format!(
                "total SRAM {} KB exceeds the pipeline's {} KB",
                totals.sram_kb,
                limits.stages * limits.sram_kb
            ),
        ));
    }
    if totals.salus > limits.stages * limits.salus {
        diags.push(Diagnostic::error(
            ErrorCode::SaluOverflow,
            "program".to_string(),
            format!(
                "total SALUs {} exceed the pipeline's {}",
                totals.salus,
                limits.stages * limits.salus
            ),
        ));
    }
    if totals.salus < totals.registers {
        diags.push(Diagnostic::error(
            ErrorCode::SaluUnderprovisioned,
            "program".to_string(),
            format!(
                "{} register arrays but only {} SALUs declared across all steps — \
                 some array has no SALU to serve it",
                totals.registers, totals.salus
            ),
        ));
    }

    // --- Paths: C4, address bounds, recirculation, CPU discipline --
    for path in &program.paths {
        let ctx = format!("path '{}' ({})", path.name, path.class.label());
        if path.class.is_control_plane() && !path.accesses.is_empty() {
            diags.push(Diagnostic::error(
                ErrorCode::ControlPlaneSalu,
                ctx.clone(),
                format!(
                    "{} SALU access(es) on a switch-CPU path; §8 paths must read via \
                     control-plane snapshots only",
                    path.accesses.len()
                ),
            ));
        }
        if path.class.recirculates() && path.max_recirculations.is_none() {
            diags.push(Diagnostic::error(
                ErrorCode::RecircUnbounded,
                ctx.clone(),
                "recirculating path has no static termination bound (C1 makes this loop \
                 the only memory traversal; it must provably terminate)"
                    .to_string(),
            ));
        }
        let mut per_register: HashMap<&str, u32> = HashMap::new();
        for access in &path.accesses {
            match program.find_register(&access.register) {
                None => diags.push(Diagnostic::error(
                    ErrorCode::UnknownRegister,
                    ctx.clone(),
                    format!("access to undeclared register '{}'", access.register),
                )),
                Some(reg) => {
                    if reg.region_cells > 0 && access.max_index >= reg.region_cells {
                        diags.push(Diagnostic::error(
                            ErrorCode::AddrOutOfBounds,
                            ctx.clone(),
                            format!(
                                "index bound {} reaches past region size {} of register '{}' \
                                 (flattened address would alias the next region)",
                                access.max_index, reg.region_cells, reg.name
                            ),
                        ));
                    }
                }
            }
            *per_register.entry(access.register.as_str()).or_insert(0) += 1;
        }
        let mut doubled: Vec<(&str, u32)> =
            per_register.into_iter().filter(|(_, n)| *n > 1).collect();
        doubled.sort_unstable();
        for (reg, n) in doubled {
            diags.push(Diagnostic::error(
                ErrorCode::C4DoubleAccess,
                ctx.clone(),
                format!(
                    "register '{reg}' accessed {n}× in one pass (C4: one SALU access per \
                     array per packet pass)"
                ),
            ));
        }
    }

    // --- Class coverage (warnings) ---------------------------------
    let has_class = |c: PacketClass| program.paths.iter().any(|p| p.class == c);
    if !has_class(PacketClass::Normal) {
        diags.push(Diagnostic::warning(
            ErrorCode::MissingPath,
            "program".to_string(),
            "no normal-traffic path declared".to_string(),
        ));
    }
    if program.registers.iter().any(|r| r.regions >= 2) && !has_class(PacketClass::Clear) {
        diags.push(Diagnostic::warning(
            ErrorCode::MissingPath,
            "program".to_string(),
            "two-region state declared but no clear-packet path — the in-switch reset \
             cannot run"
                .to_string(),
        ));
    }

    // --- Stage placement (dependency-aware branch-and-bound) -------
    let features: Vec<Feature> = program
        .features
        .iter()
        .map(|f| {
            Feature::new(
                f.name.clone(),
                f.steps
                    .iter()
                    .map(|s| Step {
                        sram_kb: s.sram_kb,
                        salus: s.salus,
                        vliw: s.vliw,
                        gateways: s.gateways,
                    })
                    .collect(),
            )
        })
        .collect();
    let conflicts = crate::depgraph::register_conflict_edges(program);
    let placement = match place_optimal(&features, limits, &conflicts, budget) {
        Ok(p) => {
            let d = p.density(limits);
            diags.push(Diagnostic::note(
                ErrorCode::PlaceSlack,
                "placement".to_string(),
                format!(
                    "placed in {}/{} stages ({}, {} nodes, optimality {}); slack {} stage(s); \
                     utilisation permille: sram {} salu {} vliw {} gateway {}",
                    d.stages_used,
                    d.stages_limit,
                    p.method,
                    p.nodes_explored,
                    if p.optimal {
                        "proven"
                    } else {
                        "budget-bounded"
                    },
                    d.stages_limit - d.stages_used,
                    d.sram_permille,
                    d.salu_permille,
                    d.vliw_permille,
                    d.gateway_permille,
                ),
            ));
            Some(p)
        }
        Err(e) => {
            // Report the placement failure only when no finer-grained
            // budget diagnostic already explains it. The error names
            // the blocking feature/step and the exhausted resource
            // class, plus whether infeasibility was proven or the
            // search budget ran out first.
            if !diags.iter().any(|d| d.severity == Severity::Error) {
                diags.push(Diagnostic::error(
                    ErrorCode::PlaceInfeasible,
                    format!("feature '{}' step {}", e.feature, e.step),
                    format!(
                        "no dependency-respecting stage assignment exists: {} capacity \
                         exhausted ({}); {}",
                        e.resource,
                        if e.proven {
                            "infeasibility proven"
                        } else {
                            "search budget exhausted — greedy also fails"
                        },
                        e.detail,
                    ),
                ));
            }
            None
        }
    };

    diags.sort_by_key(|d| match d.severity {
        Severity::Error => 0,
        Severity::Warning => 1,
        Severity::Note => 2,
    });
    let ok = !diags.iter().any(|d| d.severity == Severity::Error);
    let report = VerifyReport {
        program: program.name.clone(),
        ok,
        stages_used: placement.as_ref().map(|p| p.stages_used).unwrap_or(0),
        placement_method: placement
            .as_ref()
            .map(|p| p.method.to_string())
            .unwrap_or_default(),
        density: placement.as_ref().map(|p| p.density(limits)),
        totals,
        diagnostics: diags,
    };
    match (ok, placement) {
        (true, Some(placement)) => Ok(VerifiedProgram {
            program: program.clone(),
            placement,
            report,
        }),
        _ => Err(Box::new(report)),
    }
}
