//! Shared helpers for the experiment binaries (`exp1`–`exp10`).
//!
//! Each binary regenerates one table or figure of the paper: it runs the
//! corresponding driver from `omniwindow::experiments`, prints the rows
//! the paper reports, and (with `--json <path>`) dumps machine-readable
//! results.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use omniwindow::experiments::Scale;
use ow_obs::{Event, Obs};

/// Parsed common CLI flags for experiment binaries.
#[derive(Debug, Clone)]
pub struct Cli {
    /// Workload scale (`--small` for a quick run; default is paper scale).
    pub scale: Scale,
    /// Optional JSON dump path (`--json <path>`).
    pub json: Option<String>,
    /// Optional span-trace report path (`--trace-json <path>`), for
    /// binaries that capture an `ow_obs::TraceReport`.
    pub trace_json: Option<String>,
    /// RNG seed (`--seed <n>`).
    pub seed: u64,
    /// Process-wide observability handle. The journal's console sink is
    /// enabled, so progress and warning events render on stderr while
    /// stdout stays clean for `--json` pipelines.
    pub obs: Obs,
}

impl Cli {
    /// Parse from `std::env::args`.
    ///
    /// An unknown flag is a hard error: a structured `cli_error`
    /// warning goes through the journal (rendering on stderr via its
    /// console sink) and the process exits with status 2 — experiments
    /// never run under a silently misread configuration.
    pub fn parse() -> Cli {
        match Cli::try_parse_from(std::env::args().skip(1)) {
            Ok(cli) => cli,
            Err(_) => std::process::exit(2),
        }
    }

    /// [`Cli::parse`] over explicit arguments (program name excluded).
    /// `Err` carries the partially parsed `Cli` whose journal holds the
    /// `cli_error` warning — `parse` exits 2 with it.
    pub fn try_parse_from(args: impl Iterator<Item = String>) -> Result<Cli, Cli> {
        let args: Vec<String> = args.collect();
        let obs = Obs::new();
        obs.journal().enable_console();
        let mut cli = Cli {
            scale: Scale::Paper,
            json: None,
            trace_json: None,
            seed: 0xCA1DA,
            obs,
        };
        let mut i = 0;
        while i < args.len() {
            match args[i].as_str() {
                "--small" => cli.scale = Scale::Small,
                "--json" => {
                    i += 1;
                    cli.json = args.get(i).cloned();
                }
                "--trace-json" => {
                    i += 1;
                    cli.trace_json = args.get(i).cloned();
                }
                "--seed" => {
                    i += 1;
                    cli.seed = args.get(i).and_then(|s| s.parse().ok()).unwrap_or(cli.seed);
                }
                other => {
                    cli.obs.event(
                        Event::new(
                            "cli_error",
                            format!(
                                "unknown flag '{other}' (known: --small --json <path> \
                                 --seed <n> --trace-json <path>)"
                            ),
                        )
                        .warn(),
                    );
                    return Err(cli);
                }
            }
            i += 1;
        }
        Ok(cli)
    }

    /// Record a progress line through the journal's console sink (the
    /// replacement for the binaries' former bare `eprintln!` calls).
    pub fn progress(&self, message: impl Into<String>) {
        self.obs.journal().progress(message);
    }

    /// Write `value` as pretty JSON if `--json` was given.
    pub fn dump<T: serde::Serialize>(&self, value: &T) {
        if let Some(path) = &self.json {
            match serde_json::to_string_pretty(value) {
                Ok(s) => {
                    if let Err(e) = std::fs::write(path, s) {
                        self.obs.event(
                            Event::new("dump_error", format!("failed to write {path}: {e}")).warn(),
                        );
                    } else {
                        self.progress(format!("results written to {path}"));
                    }
                }
                Err(e) => {
                    self.obs.event(
                        Event::new("dump_error", format!("failed to serialise results: {e}"))
                            .warn(),
                    );
                }
            }
        }
    }
}

/// Format a ratio as a percentage with one decimal.
pub fn pct(v: f64) -> String {
    format!("{:5.1}%", v * 100.0)
}

/// The deterministic C&R merge workload shared by `bench_cr` and
/// `bench_snapshot`: `subwindows` batches of `records` sequenced AFRs
/// over a `population`-key space, values mixed so every shard count and
/// every run replays exactly the same records.
pub fn cr_workload(
    subwindows: u32,
    records: u32,
    population: u32,
    seed: u64,
) -> Vec<Vec<ow_common::afr::FlowRecord>> {
    use ow_common::afr::FlowRecord;
    use ow_common::flowkey::FlowKey;
    (0..subwindows)
        .map(|sw| {
            (0..records)
                .map(|i| {
                    let mix = (u64::from(i))
                        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                        .wrapping_add(u64::from(sw).wrapping_mul(seed | 1));
                    let key = (mix >> 16) as u32 % population;
                    let mut r = FlowRecord::frequency(FlowKey::src_ip(key), (mix & 0x3FF) + 1, sw);
                    r.seq = i;
                    r
                })
                .collect()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(args: &[&str]) -> impl Iterator<Item = String> {
        args.iter()
            .map(|s| s.to_string())
            .collect::<Vec<_>>()
            .into_iter()
    }

    #[test]
    fn known_flags_parse() {
        let cli = Cli::try_parse_from(argv(&[
            "--small",
            "--seed",
            "42",
            "--json",
            "out.json",
            "--trace-json",
            "trace.json",
        ]))
        .expect("known flags parse");
        assert_eq!(cli.scale, Scale::Small);
        assert_eq!(cli.seed, 42);
        assert_eq!(cli.json.as_deref(), Some("out.json"));
        assert_eq!(cli.trace_json.as_deref(), Some("trace.json"));
    }

    #[test]
    fn unknown_flag_is_a_hard_error_with_a_journal_record() {
        let cli = Cli::try_parse_from(argv(&["--small", "--frobnicate"]))
            .expect_err("unknown flag must be rejected");
        let events = cli.obs.journal().events();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].kind, "cli_error");
        assert_eq!(events[0].level, ow_obs::Level::Warn);
        assert!(events[0].message.contains("--frobnicate"));
    }

    #[test]
    fn progress_routes_through_the_journal() {
        let cli = Cli::try_parse_from(argv(&[])).expect("empty argv parses");
        cli.progress("running…");
        let events = cli.obs.journal().events();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].kind, "progress");
    }
}
