//! Shared helpers for the experiment binaries (`exp1`–`exp10`).
//!
//! Each binary regenerates one table or figure of the paper: it runs the
//! corresponding driver from `omniwindow::experiments`, prints the rows
//! the paper reports, and (with `--json <path>`) dumps machine-readable
//! results.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use omniwindow::experiments::Scale;

/// Parsed common CLI flags for experiment binaries.
#[derive(Debug, Clone)]
pub struct Cli {
    /// Workload scale (`--small` for a quick run; default is paper scale).
    pub scale: Scale,
    /// Optional JSON dump path (`--json <path>`).
    pub json: Option<String>,
    /// RNG seed (`--seed <n>`).
    pub seed: u64,
}

impl Cli {
    /// Parse from `std::env::args`.
    pub fn parse() -> Cli {
        let args: Vec<String> = std::env::args().collect();
        let mut cli = Cli {
            scale: Scale::Paper,
            json: None,
            seed: 0xCA1DA,
        };
        let mut i = 1;
        while i < args.len() {
            match args[i].as_str() {
                "--small" => cli.scale = Scale::Small,
                "--json" => {
                    i += 1;
                    cli.json = args.get(i).cloned();
                }
                "--seed" => {
                    i += 1;
                    cli.seed = args.get(i).and_then(|s| s.parse().ok()).unwrap_or(cli.seed);
                }
                other => eprintln!("ignoring unknown flag {other}"),
            }
            i += 1;
        }
        cli
    }

    /// Write `value` as pretty JSON if `--json` was given.
    pub fn dump<T: serde::Serialize>(&self, value: &T) {
        if let Some(path) = &self.json {
            match serde_json::to_string_pretty(value) {
                Ok(s) => {
                    if let Err(e) = std::fs::write(path, s) {
                        eprintln!("failed to write {path}: {e}");
                    } else {
                        eprintln!("results written to {path}");
                    }
                }
                Err(e) => eprintln!("failed to serialise results: {e}"),
            }
        }
    }
}

/// Format a ratio as a percentage with one decimal.
pub fn pct(v: f64) -> String {
    format!("{:5.1}%", v * 100.0)
}
