//! Declarative query plans — the Sonata-flavoured front end.
//!
//! Sonata expresses telemetry as dataflow over packets: filters, a
//! grouping key, an aggregation, and a report condition. [`QueryPlan`]
//! is that pipeline as data; [`QueryPlan::compile`] validates the shape
//! (filters first, exactly one group-by, exactly one aggregation,
//! exactly one having) and lowers it to the [`QuerySpec`] the execution
//! engines run. Example, Q3 (port-scan victims):
//!
//! ```
//! use ow_query::plan::{Agg, Pred, QueryPlan};
//! use ow_query::spec::{Element, Report};
//! use ow_common::flowkey::KeyKind;
//!
//! let spec = QueryPlan::new("scan")
//!     .filter(Pred::PureSyn)
//!     .group_by(KeyKind::DstIp)
//!     .aggregate(Agg::Distinct(Element::DstPort))
//!     .having(Report::AtLeast(60.0))
//!     .compile()
//!     .unwrap();
//! assert_eq!(spec.key_kind, KeyKind::DstIp);
//! ```

use ow_common::error::OwError;
use ow_common::flowkey::KeyKind;
use ow_common::packet::{Packet, PROTO_TCP, PROTO_UDP};

use crate::spec::{Element, QuerySpec, Report, StatKind};

/// A named packet predicate (the filter library the compiler lowers to
/// data-plane match conditions; named rather than closures so plans are
/// inspectable and specs stay `Copy`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Pred {
    /// All packets.
    Any,
    /// TCP packets.
    Tcp,
    /// UDP packets.
    Udp,
    /// Pure SYN (connection attempts).
    PureSyn,
    /// Packets with FIN set.
    Fin,
    /// Pure SYN to port 22.
    SshSyn,
    /// TCP to port 80.
    Web,
}

impl Pred {
    /// The predicate as a function pointer (what the spec carries).
    pub fn as_fn(self) -> fn(&Packet) -> bool {
        match self {
            Pred::Any => |_| true,
            Pred::Tcp => |p| p.proto == PROTO_TCP,
            Pred::Udp => |p| p.proto == PROTO_UDP,
            Pred::PureSyn => |p| p.proto == PROTO_TCP && p.tcp_flags.is_pure_syn(),
            Pred::Fin => |p| p.proto == PROTO_TCP && p.tcp_flags.has_fin(),
            Pred::SshSyn => {
                |p| p.proto == PROTO_TCP && p.tcp_flags.is_pure_syn() && p.dst_port == 22
            }
            Pred::Web => |p| p.proto == PROTO_TCP && p.dst_port == 80,
        }
    }

    /// Evaluate directly.
    pub fn eval(self, pkt: &Packet) -> bool {
        (self.as_fn())(pkt)
    }

    /// The conjunction of two library predicates, if it is itself in the
    /// library (the data plane has one match stage per filter; the
    /// compiler folds compatible filters into one).
    pub fn and(self, other: Pred) -> Option<Pred> {
        use Pred::*;
        Some(match (self, other) {
            (a, b) if a == b => a,
            (Any, x) | (x, Any) => x,
            (Tcp, PureSyn) | (PureSyn, Tcp) => PureSyn,
            (Tcp, Fin) | (Fin, Tcp) => Fin,
            (Tcp, SshSyn) | (SshSyn, Tcp) => SshSyn,
            (Tcp, Web) | (Web, Tcp) => Web,
            (PureSyn, SshSyn) | (SshSyn, PureSyn) => SshSyn,
            _ => return None,
        })
    }
}

/// The aggregation step of a plan.
#[derive(Debug, Clone, Copy)]
pub enum Agg {
    /// Count matching packets.
    Count,
    /// Count distinct elements.
    Distinct(Element),
    /// Signed difference of two sub-predicates.
    CountDiff {
        /// +1 packets.
        plus: Pred,
        /// −1 packets.
        minus: Pred,
    },
    /// Join of distinct connections and byte volume.
    ConnBytes,
}

/// One pipeline stage.
#[derive(Debug, Clone, Copy)]
enum Stage {
    Filter(Pred),
    GroupBy(KeyKind),
    Aggregate(Agg),
    Having(Report),
}

/// A declarative telemetry query plan.
#[derive(Debug, Clone)]
pub struct QueryPlan {
    name: &'static str,
    stages: Vec<Stage>,
}

impl QueryPlan {
    /// Start a plan.
    pub fn new(name: &'static str) -> QueryPlan {
        QueryPlan {
            name,
            stages: Vec::new(),
        }
    }

    /// Add a packet filter (multiple filters AND together).
    pub fn filter(mut self, pred: Pred) -> QueryPlan {
        self.stages.push(Stage::Filter(pred));
        self
    }

    /// Set the aggregation key.
    pub fn group_by(mut self, kind: KeyKind) -> QueryPlan {
        self.stages.push(Stage::GroupBy(kind));
        self
    }

    /// Set the aggregation.
    pub fn aggregate(mut self, agg: Agg) -> QueryPlan {
        self.stages.push(Stage::Aggregate(agg));
        self
    }

    /// Set the report condition.
    pub fn having(mut self, report: Report) -> QueryPlan {
        self.stages.push(Stage::Having(report));
        self
    }

    /// Validate and lower to an executable [`QuerySpec`].
    ///
    /// Rules: filters must precede the group-by; exactly one group-by,
    /// one aggregation (after the group-by), and one having (last);
    /// filters must fold into a single library predicate (one match
    /// stage in the data plane).
    pub fn compile(self) -> Result<QuerySpec, OwError> {
        let mut folded = Pred::Any;
        let mut key: Option<KeyKind> = None;
        let mut agg: Option<Agg> = None;
        let mut report: Option<Report> = None;

        for stage in &self.stages {
            match *stage {
                Stage::Filter(p) => {
                    if key.is_some() {
                        return Err(OwError::Config(format!(
                            "{}: filters must precede group_by",
                            self.name
                        )));
                    }
                    folded = folded.and(p).ok_or_else(|| {
                        OwError::Config(format!(
                            "{}: filters {folded:?} ∧ {p:?} do not fold into one match stage",
                            self.name
                        ))
                    })?;
                }
                Stage::GroupBy(k) => {
                    if key.replace(k).is_some() {
                        return Err(OwError::Config(format!(
                            "{}: more than one group_by",
                            self.name
                        )));
                    }
                }
                Stage::Aggregate(a) => {
                    if key.is_none() {
                        return Err(OwError::Config(format!(
                            "{}: aggregate before group_by",
                            self.name
                        )));
                    }
                    if agg.replace(a).is_some() {
                        return Err(OwError::Config(format!(
                            "{}: more than one aggregation",
                            self.name
                        )));
                    }
                }
                Stage::Having(r) => {
                    if agg.is_none() {
                        return Err(OwError::Config(format!(
                            "{}: having before aggregate",
                            self.name
                        )));
                    }
                    if report.replace(r).is_some() {
                        return Err(OwError::Config(format!(
                            "{}: more than one having",
                            self.name
                        )));
                    }
                }
            }
        }
        let key = key.ok_or_else(|| OwError::Config(format!("{}: missing group_by", self.name)))?;
        let agg =
            agg.ok_or_else(|| OwError::Config(format!("{}: missing aggregation", self.name)))?;
        let report =
            report.ok_or_else(|| OwError::Config(format!("{}: missing having", self.name)))?;

        let stat = match agg {
            Agg::Count => StatKind::Count,
            Agg::Distinct(el) => StatKind::Distinct(el),
            Agg::CountDiff { plus, minus } => StatKind::CountDiff {
                plus: plus.as_fn(),
                minus: minus.as_fn(),
            },
            Agg::ConnBytes => StatKind::ConnBytes,
        };
        Ok(QuerySpec {
            name: self.name,
            description: self.name,
            key_kind: key,
            filter: folded.as_fn(),
            stat,
            report,
        })
    }
}

/// The seven Table-1 queries written as plans — the declarative source
/// the compiled [`crate::spec::standard_queries`] corresponds to.
pub fn standard_plans() -> Vec<QueryPlan> {
    vec![
        QueryPlan::new("Q1")
            .filter(Pred::Tcp)
            .filter(Pred::PureSyn)
            .group_by(KeyKind::SrcIp)
            .aggregate(Agg::Distinct(Element::DstIp))
            .having(Report::AtLeast(40.0)),
        QueryPlan::new("Q2")
            .filter(Pred::SshSyn)
            .group_by(KeyKind::DstIp)
            .aggregate(Agg::Count)
            .having(Report::AtLeast(20.0)),
        QueryPlan::new("Q3")
            .filter(Pred::PureSyn)
            .group_by(KeyKind::DstIp)
            .aggregate(Agg::Distinct(Element::DstPort))
            .having(Report::AtLeast(60.0)),
        QueryPlan::new("Q4")
            .filter(Pred::Any)
            .group_by(KeyKind::DstIp)
            .aggregate(Agg::Distinct(Element::SrcIp))
            .having(Report::AtLeast(60.0)),
        QueryPlan::new("Q5")
            .filter(Pred::PureSyn)
            .group_by(KeyKind::DstIp)
            .aggregate(Agg::Count)
            .having(Report::AtLeast(80.0)),
        QueryPlan::new("Q6")
            .filter(Pred::Tcp)
            .group_by(KeyKind::DstIp)
            .aggregate(Agg::CountDiff {
                plus: Pred::PureSyn,
                minus: Pred::Fin,
            })
            .having(Report::AtLeast(50.0)),
        QueryPlan::new("Q7")
            .filter(Pred::Web)
            .group_by(KeyKind::DstIp)
            .aggregate(Agg::ConnBytes)
            .having(Report::ManyConnsFewBytes {
                min_conns: 40.0,
                max_bytes_per_conn: 600.0,
            }),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::ExactEngine;
    use crate::spec::standard_queries;
    use ow_common::packet::TcpFlags;
    use ow_common::time::Instant;
    use rand_like::packets;

    /// A deterministic mixed packet sample (no rand dependency here).
    mod rand_like {
        use super::*;
        pub fn packets() -> Vec<Packet> {
            let mut out = Vec::new();
            for i in 0..2_000u32 {
                let flags = match i % 5 {
                    0 => TcpFlags::syn(),
                    1 => TcpFlags::fin_ack(),
                    _ => TcpFlags::ack(),
                };
                let dport = match i % 4 {
                    0 => 22,
                    1 => 80,
                    _ => (1000 + i % 5000) as u16,
                };
                let p = if i % 7 == 0 {
                    Packet::udp(
                        Instant::from_micros(i as u64),
                        i % 50,
                        i % 30,
                        1000,
                        dport,
                        100,
                    )
                } else {
                    Packet::tcp(
                        Instant::from_micros(i as u64),
                        i % 50,
                        i % 30,
                        (1000 + i % 100) as u16,
                        dport,
                        flags,
                        (64 + i % 1000) as u16,
                    )
                };
                out.push(p);
            }
            out
        }
    }

    #[test]
    fn standard_plans_compile() {
        let plans = standard_plans();
        assert_eq!(plans.len(), 7);
        for plan in plans {
            plan.compile().expect("standard plan compiles");
        }
    }

    #[test]
    fn compiled_plans_match_handwritten_specs() {
        // Every compiled plan must behave identically to the matching
        // hand-written spec on a packet sample: same filter decisions,
        // same reports from the exact engine.
        let compiled: Vec<QuerySpec> = standard_plans()
            .into_iter()
            .map(|p| p.compile().unwrap())
            .collect();
        let handwritten = standard_queries();
        let sample = packets();
        for (c, h) in compiled.iter().zip(handwritten.iter()) {
            for p in &sample {
                assert_eq!((c.filter)(p), (h.filter)(p), "{}: filter disagrees", c.name);
            }
            let mut ec = ExactEngine::new(*c);
            let mut eh = ExactEngine::new(*h);
            for p in &sample {
                ec.update(p);
                eh.update(p);
            }
            assert_eq!(ec.report(), eh.report(), "{}: reports disagree", c.name);
        }
    }

    #[test]
    fn missing_group_by_rejected() {
        let err = QueryPlan::new("bad")
            .filter(Pred::Tcp)
            .aggregate(Agg::Count)
            .having(Report::AtLeast(1.0))
            .compile()
            .unwrap_err();
        assert!(err.to_string().contains("aggregate before group_by"));
    }

    #[test]
    fn double_aggregate_rejected() {
        let err = QueryPlan::new("bad")
            .group_by(KeyKind::SrcIp)
            .aggregate(Agg::Count)
            .aggregate(Agg::Count)
            .having(Report::AtLeast(1.0))
            .compile()
            .unwrap_err();
        assert!(err.to_string().contains("more than one aggregation"));
    }

    #[test]
    fn having_before_aggregate_rejected() {
        let err = QueryPlan::new("bad")
            .group_by(KeyKind::SrcIp)
            .having(Report::AtLeast(1.0))
            .compile()
            .unwrap_err();
        assert!(err.to_string().contains("having before aggregate"));
    }

    #[test]
    fn filter_after_group_by_rejected() {
        let err = QueryPlan::new("bad")
            .group_by(KeyKind::SrcIp)
            .filter(Pred::Tcp)
            .compile()
            .unwrap_err();
        assert!(err.to_string().contains("filters must precede"));
    }

    #[test]
    fn unfoldable_filters_rejected() {
        // UDP ∧ PureSyn is not a single library predicate (and is empty
        // anyway) — the compiler refuses rather than silently guessing.
        let err = QueryPlan::new("bad")
            .filter(Pred::Udp)
            .filter(Pred::PureSyn)
            .group_by(KeyKind::SrcIp)
            .aggregate(Agg::Count)
            .having(Report::AtLeast(1.0))
            .compile()
            .unwrap_err();
        assert!(err.to_string().contains("do not fold"));
    }

    #[test]
    fn predicate_conjunction_table() {
        assert_eq!(Pred::Tcp.and(Pred::PureSyn), Some(Pred::PureSyn));
        assert_eq!(Pred::Any.and(Pred::Web), Some(Pred::Web));
        assert_eq!(Pred::SshSyn.and(Pred::PureSyn), Some(Pred::SshSyn));
        assert_eq!(Pred::Udp.and(Pred::Fin), None);
    }
}
