//! `ow-lint` — verify every pipeline configuration this repo deploys.
//!
//! Runs the static verifier over the full [`ow_verify::catalog`] (the
//! paper's Table-2 resource configurations plus every switch
//! configuration the examples, tests, benchmarks, and simulator use)
//! and exits non-zero if any program is rejected.
//!
//! Placement runs the dependency-aware branch-and-bound search; the
//! `--budget` knob pins its node count so CI runs stay fast and every
//! emitted report (the packing-density columns included) is
//! byte-deterministic — the committed `results/verify_table2.json`
//! baseline is exactly `ow-lint --json` at the default budget.
//!
//! ```text
//! ow-lint             # human-readable, one line per program + diagnostics
//! ow-lint --json      # machine-readable report array
//! ow-lint --only X    # restrict to catalog entries whose name contains X
//! ow-lint --budget N  # cap the placement search at N nodes per program
//! ```

use std::process::ExitCode;

use ow_switch::placement::SearchBudget;
use ow_verify::catalog::repo_programs;
use ow_verify::verify_with_budget;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let json = args.iter().any(|a| a == "--json");
    let flag_value = |name: &str| {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
            .cloned()
    };
    let only = flag_value("--only");
    let budget = match flag_value("--budget") {
        None => SearchBudget::default(),
        Some(raw) => match raw.parse::<u64>() {
            Ok(max_nodes) => SearchBudget { max_nodes },
            Err(_) => {
                eprintln!("ow-lint: --budget expects a node count, got '{raw}'");
                return ExitCode::FAILURE;
            }
        },
    };
    if args.iter().any(|a| a == "--help" || a == "-h") {
        eprintln!("usage: ow-lint [--json] [--only SUBSTR] [--budget NODES]");
        return ExitCode::SUCCESS;
    }

    let mut failures = 0usize;
    let mut reports: Vec<String> = Vec::new();
    for (name, program) in repo_programs() {
        if let Some(filter) = &only {
            if !name.contains(filter.as_str()) {
                continue;
            }
        }
        let report = match verify_with_budget(&program, budget) {
            Ok(witness) => witness.report().clone(),
            Err(report) => {
                failures += 1;
                *report
            }
        };
        if json {
            reports.push(report.to_json());
        } else {
            print!("[{name}] {report}");
        }
    }
    if json {
        println!("[{}]", reports.join(",\n"));
    }
    if failures > 0 {
        eprintln!("ow-lint: {failures} configuration(s) rejected");
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
