//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors the subset of the rand 0.8 API it actually uses: a seedable
//! deterministic generator ([`rngs::StdRng`], implemented as
//! xoshiro256++ seeded through splitmix64), the [`Rng`] extension trait
//! with `gen`, `gen_range`, and `gen_bool`, and the [`SeedableRng`]
//! constructor trait. Streams are *not* bit-compatible with the real
//! `rand::rngs::StdRng` (which is ChaCha12); everything in this
//! repository that depends on randomness either fixes its own seeds or
//! asserts distributional properties with tolerances, so only
//! determinism and statistical quality matter, both of which
//! xoshiro256++ provides.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Low-level entropy source: everything derives from `next_u64`.
pub trait RngCore {
    /// The next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly distributed bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Types constructible from a 64-bit seed (the only seeding path the
/// workspace uses).
pub trait SeedableRng: Sized {
    /// Build a generator deterministically from `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// A value uniformly sampleable over a range (`gen_range` support).
pub trait SampleUniform: Sized + Copy {
    /// Uniform sample from `[low, high)`. `high > low` must hold.
    fn sample_half_open(rng: &mut dyn RngCore, low: Self, high: Self) -> Self;
    /// Uniform sample from `[low, high]`.
    fn sample_inclusive(rng: &mut dyn RngCore, low: Self, high: Self) -> Self;
}

macro_rules! impl_sample_uniform_uint {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open(rng: &mut dyn RngCore, low: Self, high: Self) -> Self {
                assert!(low < high, "gen_range: empty range");
                let span = (high as u128) - (low as u128);
                low + (rng.next_u64() as u128 % span) as $t
            }
            fn sample_inclusive(rng: &mut dyn RngCore, low: Self, high: Self) -> Self {
                assert!(low <= high, "gen_range: empty range");
                let span = (high as u128) - (low as u128) + 1;
                low + (rng.next_u64() as u128 % span) as $t
            }
        }
    )*};
}
impl_sample_uniform_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open(rng: &mut dyn RngCore, low: Self, high: Self) -> Self {
                assert!(low < high, "gen_range: empty range");
                let span = (high as i128 - low as i128) as u128;
                (low as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
            fn sample_inclusive(rng: &mut dyn RngCore, low: Self, high: Self) -> Self {
                assert!(low <= high, "gen_range: empty range");
                let span = (high as i128 - low as i128 + 1) as u128;
                (low as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}
impl_sample_uniform_int!(i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_half_open(rng: &mut dyn RngCore, low: Self, high: Self) -> Self {
        assert!(low < high, "gen_range: empty range");
        low + unit_f64(rng.next_u64()) * (high - low)
    }
    fn sample_inclusive(rng: &mut dyn RngCore, low: Self, high: Self) -> Self {
        Self::sample_half_open(rng, low, high)
    }
}

/// A range usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draw a uniform sample from the range.
    fn sample_from(self, rng: &mut dyn RngCore) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_from(self, rng: &mut dyn RngCore) -> T {
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_from(self, rng: &mut dyn RngCore) -> T {
        T::sample_inclusive(rng, *self.start(), *self.end())
    }
}

/// Types producible by [`Rng::gen`] (the `Standard` distribution).
pub trait Standard: Sized {
    /// Draw one uniformly distributed value.
    fn standard(rng: &mut dyn RngCore) -> Self;
}

fn unit_f64(bits: u64) -> f64 {
    // 53 uniform mantissa bits in [0, 1).
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

macro_rules! impl_standard_uint {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn standard(rng: &mut dyn RngCore) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for u128 {
    fn standard(rng: &mut dyn RngCore) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl Standard for bool {
    fn standard(rng: &mut dyn RngCore) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn standard(rng: &mut dyn RngCore) -> Self {
        unit_f64(rng.next_u64())
    }
}

impl Standard for f32 {
    fn standard(rng: &mut dyn RngCore) -> Self {
        unit_f64(rng.next_u64()) as f32
    }
}

/// Adapter making `&mut R` (with `R: ?Sized`) usable where a sized
/// `dyn RngCore` coercion source is needed.
struct ByRef<'a, R: RngCore + ?Sized>(&'a mut R);

impl<R: RngCore + ?Sized> RngCore for ByRef<'_, R> {
    fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }
    fn next_u32(&mut self) -> u32 {
        self.0.next_u32()
    }
}

/// The user-facing extension trait, blanket-implemented for every
/// [`RngCore`] (mirroring rand 0.8's `Rng`, including its availability
/// on unsized `R: Rng + ?Sized` receivers).
pub trait Rng: RngCore {
    /// A uniform value of type `T` (`Standard` distribution).
    fn gen<T: Standard>(&mut self) -> T {
        T::standard(&mut ByRef(self))
    }

    /// A uniform value in `range`.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: SampleRange<T>,
    {
        range.sample_from(&mut ByRef(self))
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p out of [0,1]");
        unit_f64(self.next_u64()) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++.
    ///
    /// Not stream-compatible with rand 0.8's ChaCha12-based `StdRng`;
    /// see the crate docs for why that is acceptable here.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for w in &mut s {
                *w = splitmix64(&mut sm);
            }
            // All-zero state would be a fixed point; splitmix64 cannot
            // produce four zero outputs in a row, but guard anyway.
            if s == [0; 4] {
                s[0] = 0x1;
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn unit_floats_in_range_and_spread() {
        let mut r = StdRng::seed_from_u64(7);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let v: f64 = r.gen();
            assert!((0.0..1.0).contains(&v));
            sum += v;
        }
        let mean = sum / 10_000.0;
        assert!((0.47..0.53).contains(&mean), "mean {mean}");
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut r = StdRng::seed_from_u64(9);
        for _ in 0..1_000 {
            let v = r.gen_range(10u64..20);
            assert!((10..20).contains(&v));
            let w = r.gen_range(5i64..=5);
            assert_eq!(w, 5);
            let x = r.gen_range(-10i64..10);
            assert!((-10..10).contains(&x));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut r = StdRng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| r.gen_bool(0.3)).count();
        assert!((2_700..3_300).contains(&hits), "{hits}");
    }

    #[test]
    fn next_u64_is_not_constant() {
        let mut r = StdRng::seed_from_u64(0);
        let first = r.next_u64();
        assert!((0..100).any(|_| r.next_u64() != first));
    }
}
