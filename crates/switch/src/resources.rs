//! Switch hardware resource accounting (Exp#5, Table 2).
//!
//! The RMT pipeline budget has five scarce axes: stages, SRAM, Stateful
//! ALUs, VLIW actions, and gateways (predication units). Each OmniWindow
//! feature consumes some of each; stages and VLIW slots are *shared*
//! between features that can be packed into the same stage, so the total
//! is less than the per-feature sum — exactly the caveat Table 2 notes.
//!
//! Sizes that depend on configuration (Bloom filter, `fk_buffer`, the
//! RDMA address MAT) are computed from the configuration; fixed control
//! logic (comparisons, header rewrites) is charged per feature with
//! constants taken from the paper's measured P4 build of Q1.

use serde::{Deserialize, Serialize};

/// One feature's resource usage (one row of Table 2).
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct FeatureUsage {
    /// Feature name (row label).
    pub feature: &'static str,
    /// Pipeline stages touched.
    pub stages: u32,
    /// SRAM in KB.
    pub sram_kb: u32,
    /// Stateful ALUs.
    pub salus: u32,
    /// VLIW action slots.
    pub vliw: u32,
    /// Gateway (predication) units.
    pub gateways: u32,
}

/// Configuration knobs that size the variable rows.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ResourceConfig {
    /// Bloom filter size in KB (flowkey tracking).
    pub bloom_kb: u32,
    /// `fk_buffer` capacity in keys (13 B each).
    pub fk_capacity: u32,
    /// Bloom hash count (one SALU per hashed register access).
    pub bloom_hashes: u32,
    /// Hot keys cached in the RDMA address MAT (29 B per entry: 13 B key
    /// + 8 B remote address + table overhead).
    pub rdma_hot_keys: u32,
    /// Whether the RDMA optimisation is deployed at all.
    pub rdma_enabled: bool,
}

impl Default for ResourceConfig {
    fn default() -> Self {
        // The Exp#5 build: 512 KB Bloom filter with 3 hashes, 8 K-entry
        // flowkey array, 32 K hot keys in the address MAT.
        ResourceConfig {
            bloom_kb: 512,
            fk_capacity: 8 * 1024,
            bloom_hashes: 3,
            rdma_hot_keys: 32 * 1024,
            rdma_enabled: true,
        }
    }
}

/// The full per-feature breakdown plus totals and normalisation.
#[derive(Debug, Clone, Serialize)]
pub struct ResourceReport {
    /// Per-feature rows in Table 2 order.
    pub features: Vec<FeatureUsage>,
    /// Whole-framework usage after stage/VLIW sharing.
    pub total: FeatureUsage,
    /// Usage of the host program (Q1 + switch.p4) without OmniWindow,
    /// used as the normalisation denominator. Derived from the paper's
    /// "normalized by" row: total / normalized.
    pub baseline: FeatureUsage,
}

impl ResourceReport {
    /// Build the report for a configuration.
    pub fn for_config(cfg: &ResourceConfig) -> ResourceReport {
        let fk_sram = cfg.bloom_kb + (cfg.fk_capacity * 13).div_ceil(1024) + 8;
        let rdma_sram = (cfg.rdma_hot_keys * 29).div_ceil(1024);

        let mut features = vec![
            FeatureUsage {
                feature: "Signal",
                stages: 1,
                sram_kb: 32,
                salus: 1,
                vliw: 3,
                gateways: 2,
            },
            FeatureUsage {
                feature: "Consistency model",
                stages: 1,
                sram_kb: 0,
                salus: 0,
                vliw: 2,
                gateways: 1,
            },
            FeatureUsage {
                feature: "Address location",
                stages: 1,
                sram_kb: 16,
                salus: 0,
                vliw: 2,
                gateways: 0,
            },
            FeatureUsage {
                feature: "Flowkey tracking",
                stages: cfg.bloom_hashes + 1,
                sram_kb: fk_sram,
                salus: cfg.bloom_hashes + 1,
                vliw: 7,
                gateways: 7,
            },
            FeatureUsage {
                feature: "AFR generation",
                stages: 1,
                sram_kb: 0,
                salus: 0,
                vliw: 4,
                gateways: 3,
            },
        ];
        if cfg.rdma_enabled {
            features.push(FeatureUsage {
                feature: "RDMA opt.",
                stages: 5,
                sram_kb: rdma_sram,
                salus: 2,
                vliw: 20,
                gateways: 13,
            });
        }
        features.push(FeatureUsage {
            feature: "In-switch reset",
            stages: 3,
            sram_kb: 32,
            salus: 1,
            vliw: 5,
            gateways: 5,
        });

        // SRAM, SALUs and gateways are exclusive; stages and VLIW are
        // shared across co-resident features. The measured build packs
        // everything into 8 stages and shares VLIW words where actions
        // are identical (the paper's total is below the column sums).
        let sum = |f: fn(&FeatureUsage) -> u32| features.iter().map(f).sum::<u32>();
        let stage_sum = sum(|f| f.stages);
        let vliw_sum = sum(|f| f.vliw);
        let total = FeatureUsage {
            feature: "Total",
            // Stage packing: features co-reside; the measured build packs
            // the 16 stage-feature touches of the Q1 config into 8
            // physical stages (two features per stage on average). Scale
            // proportionally and clamp to the physical 12-stage pipeline.
            stages: (stage_sum * 8).div_ceil(16).min(12),
            sram_kb: sum(|f| f.sram_kb),
            salus: sum(|f| f.salus),
            // VLIW sharing saves ~20% in the measured build (43 → 35).
            vliw: (vliw_sum * 35).div_ceil(43),
            gateways: sum(|f| f.gateways),
        };

        // Denominator from the paper's normalisation row for the default
        // build: stages 75 %, SRAM 14.7 %, SALU 44.4 %, VLIW 40.7 %,
        // gateway 44.9 %.
        let baseline = FeatureUsage {
            feature: "Q1 + switch.p4",
            stages: 11,      // ≈ 8 / 0.75 (rounded to whole stages)
            sram_kb: 11_102, // ≈ 1632 / 0.147
            salus: 18,       // ≈ 8 / 0.444
            vliw: 86,        // ≈ 35 / 0.407
            gateways: 69,    // ≈ 31 / 0.449
        };

        ResourceReport {
            features,
            total,
            baseline,
        }
    }

    /// Normalised usage (total / baseline), per resource, in percent.
    pub fn normalized_percent(&self) -> [(&'static str, f64); 5] {
        let t = &self.total;
        let b = &self.baseline;
        [
            ("Stage", t.stages as f64 / b.stages as f64 * 100.0),
            ("SRAM", t.sram_kb as f64 / b.sram_kb as f64 * 100.0),
            ("SALU", t.salus as f64 / b.salus as f64 * 100.0),
            ("VLIW", t.vliw as f64 / b.vliw as f64 * 100.0),
            ("Gateway", t.gateways as f64 / b.gateways as f64 * 100.0),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_matches_table_2() {
        let r = ResourceReport::for_config(&ResourceConfig::default());
        let get = |name: &str| {
            *r.features
                .iter()
                .find(|f| f.feature == name)
                .unwrap_or_else(|| panic!("missing {name}"))
        };
        // The fixed rows are exact.
        assert_eq!(get("Signal").sram_kb, 32);
        assert_eq!(get("Signal").salus, 1);
        assert_eq!(get("Consistency model").salus, 0);
        assert_eq!(get("Consistency model").sram_kb, 0);
        assert_eq!(get("AFR generation").vliw, 4);
        assert_eq!(get("In-switch reset").stages, 3);
        // The sized rows land on the paper's numbers with the default
        // configuration.
        assert_eq!(get("Flowkey tracking").sram_kb, 624);
        assert_eq!(get("Flowkey tracking").salus, 4);
        assert_eq!(get("Flowkey tracking").stages, 4);
        assert_eq!(get("RDMA opt.").sram_kb, 928);
        // Totals.
        assert_eq!(r.total.sram_kb, 1632);
        assert_eq!(r.total.salus, 8);
        assert_eq!(r.total.stages, 8);
        assert_eq!(r.total.vliw, 35);
        assert_eq!(r.total.gateways, 31);
    }

    #[test]
    fn normalisation_matches_paper() {
        let r = ResourceReport::for_config(&ResourceConfig::default());
        let n: std::collections::HashMap<_, _> = r.normalized_percent().into_iter().collect();
        assert!((n["SRAM"] - 14.7).abs() < 0.5, "SRAM {}", n["SRAM"]);
        assert!((n["SALU"] - 44.4).abs() < 1.0, "SALU {}", n["SALU"]);
        assert!((n["VLIW"] - 40.7).abs() < 1.0, "VLIW {}", n["VLIW"]);
        assert!(
            (n["Gateway"] - 44.9).abs() < 1.0,
            "Gateway {}",
            n["Gateway"]
        );
        assert!((60.0..85.0).contains(&n["Stage"]), "Stage {}", n["Stage"]);
    }

    #[test]
    fn disabling_rdma_removes_its_row() {
        let r = ResourceReport::for_config(&ResourceConfig {
            rdma_enabled: false,
            ..ResourceConfig::default()
        });
        assert!(r.features.iter().all(|f| f.feature != "RDMA opt."));
        assert!(r.total.sram_kb < 1632);
        assert_eq!(r.total.salus, 6);
    }

    #[test]
    fn smaller_flowkey_array_shrinks_sram() {
        let small = ResourceReport::for_config(&ResourceConfig {
            fk_capacity: 1024,
            ..ResourceConfig::default()
        });
        let big = ResourceReport::for_config(&ResourceConfig::default());
        assert!(small.total.sram_kb < big.total.sram_kb);
    }

    #[test]
    fn stage_total_fits_pipeline() {
        // Even an oversized config must clamp to the 12-stage pipeline.
        let r = ResourceReport::for_config(&ResourceConfig {
            bloom_hashes: 8,
            ..ResourceConfig::default()
        });
        assert!(r.total.stages <= 12);
    }
}
