//! `bench_cr` — collect-and-reset merge throughput across shard counts,
//! on the batched block path.
//!
//! Feeds one identical, deterministic AFR workload through the live
//! sharded controller at shards ∈ {1, 2, 4, 8} as columnar
//! [`RecordBlock`] streams (one queue send per block), measures the
//! end-to-end merge rate (records routed, scattered, block-folded, and
//! slide-evicted per second), and asserts the deterministic final fold
//! is **byte-identical** to an independent single-threaded *per-record*
//! reference fold before reporting anything — a perf number for a wrong
//! answer is worthless.
//!
//! Writes `results/bench_cr.json` (override with `--json <path>`), the
//! perf-trajectory baseline later PRs compare against. The pre-block
//! (PR 3) trajectory is pinned in `results/bench_cr_pr3.json`.

use std::collections::HashMap;
use std::time::Instant;

use omniwindow::experiments::Scale;
use ow_bench::{cr_workload, Cli};
use ow_common::afr::{AttrValue, FlowRecord};
use ow_common::block::{RecordBlock, DEFAULT_BLOCK_CAPACITY};
use ow_common::flowkey::FlowKey;
use ow_controller::live::{DataPlaneMsg, LiveController};
use ow_controller::wire::encode_merged;
use serde::Serialize;

/// One shard count's measurement.
#[derive(Debug, Clone, Serialize)]
struct ShardRow {
    /// Merge shards (worker threads) behind the controller.
    shards: usize,
    /// AFR records pushed through the pipeline.
    records: u64,
    /// Wall-clock for ingest + drain, milliseconds.
    wall_ms: f64,
    /// `records / wall` — the merge throughput.
    records_per_sec: f64,
    /// Flows in the final merged view.
    merged_flows: usize,
    /// Whether the encoded final fold equals the per-record reference.
    byte_identical: bool,
}

/// The whole `bench_cr` result set.
#[derive(Debug, Clone, Serialize)]
struct BenchCr {
    /// Sub-windows in the workload.
    subwindows: u32,
    /// Sliding-window span (sub-windows retained).
    window_span: usize,
    /// Records per sub-window.
    records_per_subwindow: u32,
    /// Distinct flow keys in the population.
    key_population: u32,
    /// Records per block on the wire.
    block_capacity: usize,
    /// Encoded size of the deterministic final fold, bytes.
    snapshot_bytes: usize,
    /// Per-shard-count measurements.
    rows: Vec<ShardRow>,
}

/// The independent correctness oracle: a strictly per-record,
/// single-threaded fold of the same sliding window, sharing no code
/// with the block pipeline. The workload is frequency-only, so merge is
/// saturating add and eviction is saturating subtract + refcount drop.
fn reference_fold(batches: &[Vec<FlowRecord>], span: usize) -> Vec<u8> {
    let mut table: HashMap<FlowKey, (u64, u32)> = HashMap::new();
    let mut window: std::collections::VecDeque<&Vec<FlowRecord>> = Default::default();
    for batch in batches {
        for rec in batch {
            let AttrValue::Frequency(n) = rec.attr else {
                panic!("cr_workload is frequency-only");
            };
            let e = table.entry(rec.key).or_insert((0, 0));
            e.0 = e.0.saturating_add(n);
            e.1 += 1;
        }
        window.push_back(batch);
        while window.len() > span {
            let evicted = window.pop_front().expect("non-empty");
            for rec in evicted {
                let AttrValue::Frequency(n) = rec.attr else {
                    unreachable!()
                };
                let e = table.get_mut(&rec.key).expect("evicted key present");
                e.1 -= 1;
                if e.1 == 0 {
                    table.remove(&rec.key);
                } else {
                    e.0 = e.0.saturating_sub(n);
                }
            }
        }
    }
    let mut fold: Vec<(FlowKey, AttrValue)> = table
        .into_iter()
        .map(|(k, (sum, _))| (k, AttrValue::Frequency(sum)))
        .collect();
    fold.sort_by_key(|(k, _)| k.as_u128());
    encode_merged(&fold).to_vec()
}

/// Pre-build the block stream for one run so the timed loop measures
/// the pipeline, not message construction.
fn build_messages(batches: &[Vec<FlowRecord>], capacity: usize) -> Vec<DataPlaneMsg> {
    let mut msgs = Vec::new();
    for (sw, afrs) in batches.iter().enumerate() {
        let chunks: Vec<&[FlowRecord]> = afrs.chunks(capacity.max(1)).collect();
        for (i, chunk) in chunks.iter().enumerate() {
            msgs.push(DataPlaneMsg::AfrBlock {
                block: RecordBlock::from_records(sw as u32, chunk),
                seal: i + 1 == chunks.len(),
            });
        }
    }
    msgs
}

fn main() {
    let mut cli = Cli::parse();
    // This binary's JSON artifact is the point: default the dump path
    // so CI and local runs refresh the committed baseline.
    if cli.json.is_none() {
        cli.json = Some("results/bench_cr.json".into());
    }
    let (subwindows, records, population) = match cli.scale {
        Scale::Tiny | Scale::Small => (12u32, 5_000u32, 2_048u32),
        Scale::Paper => (24u32, 40_000u32, 16_384u32),
    };
    let window_span = 8usize;
    let batches = cr_workload(subwindows, records, population, cli.seed);
    let total_records = u64::from(subwindows) * u64::from(records);
    let reference = reference_fold(&batches, window_span);
    let messages = build_messages(&batches, DEFAULT_BLOCK_CAPACITY);

    eprintln!(
        "running bench_cr: {subwindows} sub-windows × {records} AFRs, span {window_span}, \
         blocks of {DEFAULT_BLOCK_CAPACITY}, shards 1/2/4/8…"
    );

    let mut rows: Vec<ShardRow> = Vec::new();
    let mut snapshot_bytes = 0usize;
    for shards in [1usize, 2, 4, 8] {
        // Best of 3: the container's wall clock is noisy, and the
        // trajectory file feeds cross-PR comparisons — every rep still
        // asserts byte-identity.
        let mut best_wall = f64::INFINITY;
        let mut merged_flows = 0usize;
        for _ in 0..3 {
            let run = messages.clone();
            let ctl = LiveController::spawn_sharded(window_span, 256, shards);
            let started = Instant::now();
            for msg in run {
                ctl.sender.send(msg).expect("controller alive");
            }
            let handle = ctl.handle.clone();
            let routed = ctl.join();
            let wall = started.elapsed().as_secs_f64();
            assert_eq!(routed, u64::from(subwindows), "every sub-window sealed");

            let fold = encode_merged(&handle.snapshot()).to_vec();
            snapshot_bytes = fold.len();
            assert!(
                fold == reference,
                "{shards}-shard block fold diverged from the per-record reference"
            );
            best_wall = best_wall.min(wall);
            merged_flows = handle.merged_flows();
        }
        rows.push(ShardRow {
            shards,
            records: total_records,
            wall_ms: best_wall * 1e3,
            records_per_sec: total_records as f64 / best_wall,
            merged_flows,
            byte_identical: true,
        });
    }

    println!("bench_cr: sharded C&R block-path merge throughput (byte-identity asserted)\n");
    println!(
        "  {:>6} {:>12} {:>10} {:>14} {:>12}",
        "shards", "records", "wall ms", "records/s", "merged flows"
    );
    for r in &rows {
        println!(
            "  {:>6} {:>12} {:>10.1} {:>14.0} {:>12}",
            r.shards, r.records, r.wall_ms, r.records_per_sec, r.merged_flows
        );
    }

    let result = BenchCr {
        subwindows,
        window_span,
        records_per_subwindow: records,
        key_population: population,
        block_capacity: DEFAULT_BLOCK_CAPACITY,
        snapshot_bytes,
        rows,
    };
    cli.dump(&result);
}
