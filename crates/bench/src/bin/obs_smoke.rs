//! Observability smoke run: a short instrumented lossy C&R pipeline
//! (verified switch → lossy channel → sharded reliable controller, one
//! shared `ow-obs` registry throughout), whose snapshot lands in
//! `results/obs_smoke.json` (override with `--json <path>`) and whose
//! causal span traces land in `results/trace_smoke.json` (override with
//! `--trace-json <path>`).
//!
//! The binary self-checks the Prometheus exposition line format and the
//! span-trace JSON schema and exits nonzero if either is malformed, so
//! CI can gate on both.

use std::path::Path;

use omniwindow::experiments::obs_smoke::{self, ObsSmokeConfig};
use ow_bench::Cli;
use ow_common::time::Duration;
use ow_obs::{check_exposition, prometheus_text, validate_trace_json, Event, TraceReport};

fn main() {
    let cli = Cli::parse();
    let cfg = ObsSmokeConfig {
        seed: cli.seed,
        ..ObsSmokeConfig::default()
    };
    cli.progress(format!(
        "running obs smoke: {} shards, {:.0}% AFR loss, seed {}…",
        cfg.shards,
        cfg.loss * 100.0,
        cfg.seed
    ));
    let out = obs_smoke::run(&cfg);

    let snapshot = out.obs.snapshot();
    let exposition = prometheus_text(&snapshot);
    if let Err((line, msg)) = check_exposition(&exposition) {
        cli.obs.event(
            Event::new(
                "exposition_error",
                format!("exposition line {line} is malformed: {msg}"),
            )
            .warn(),
        );
        std::process::exit(1);
    }

    println!(
        "obs smoke: {} metric series, exposition OK",
        snapshot.metrics.len()
    );
    println!(
        "  sessions: {} merged flows, {} first pass, {} recovered, \
         {} retransmit round(s), {} escalation(s)",
        out.merged_flows,
        out.metrics.first_pass,
        out.metrics.recovered,
        out.metrics.retransmit_rounds,
        out.metrics.escalations,
    );
    println!(
        "  registry mirror: retransmit_rounds={} escalations={}",
        snapshot.value("ow_controller_retransmit_rounds", &[]),
        snapshot.value("ow_controller_escalations_total", &[]),
    );

    let path = cli
        .json
        .clone()
        .unwrap_or_else(|| "results/obs_smoke.json".to_string());
    let report = out.obs.report("obs_smoke");
    if let Err(e) = report.write(Path::new(&path)) {
        cli.obs
            .event(Event::new("dump_error", format!("failed to write {path}: {e}")).warn());
        std::process::exit(1);
    }
    cli.progress(format!("snapshot written to {path}"));

    // The span traces: one causal tree per collected window, with its
    // critical path judged against a 10ms window-latency SLO — tight
    // enough that the deterministically escalated session (40ms OS
    // read) flags a violation on every run.
    let traces = TraceReport::capture(
        "obs_smoke",
        out.obs.tracer(),
        Some(Duration::from_millis(10)),
    );
    let doc = match ow_obs::json::parse(&traces.to_json()) {
        Ok(doc) => doc,
        Err(e) => {
            cli.obs
                .event(Event::new("trace_error", format!("trace JSON unparsable: {e}")).warn());
            std::process::exit(1);
        }
    };
    if let Err(e) = validate_trace_json(&doc) {
        cli.obs
            .event(Event::new("trace_error", format!("trace schema invalid: {e}")).warn());
        std::process::exit(1);
    }
    let violations = traces
        .traces
        .iter()
        .filter(|t| t.critical_path.slo_violated)
        .count();
    println!(
        "  traces: {} window(s), {} SLO violation(s) at 10ms",
        traces.traces.len(),
        violations
    );
    let trace_path = cli
        .trace_json
        .clone()
        .unwrap_or_else(|| "results/trace_smoke.json".to_string());
    if let Err(e) = traces.write(Path::new(&trace_path)) {
        cli.obs
            .event(Event::new("dump_error", format!("failed to write {trace_path}: {e}")).warn());
        std::process::exit(1);
    }
    cli.progress(format!("span traces written to {trace_path}"));
}
