//! End-to-end acceptance for the fleet health engine and the black-box
//! flight recorder, mirroring the `health_smoke` bench gates at test
//! scale:
//!
//! 1. **Precision.** A lossless fleet with the full fleet + controller
//!    catalog installed raises zero alerts and keeps the recorder warm
//!    (unfrozen) — a healthy system is never paged.
//! 2. **Recall.** Injected faults fire exactly their matching rules:
//!    a crash fires `OW-HEALTH-301`, a bursting rack fires
//!    `OW-HEALTH-302` for that rack only, a forced escalation drill
//!    fires the critical `OW-HEALTH-204` and freezes the black box.
//! 3. **Determinism.** Same-seed chaos runs produce byte-identical
//!    flight-recorder dumps and alert timelines (a proptest over
//!    seeds), which is what lets CI `cmp` two smoke artifacts.
//! 4. **Invariant coupling.** A `WindowFsm` invariant rejection inside
//!    an observed engine freezes the recorder through the
//!    `TransitionSink` path with the reserved `OW-HEALTH-001` code.

use std::collections::BTreeSet;

use ow_common::engine::{WindowEngine, WindowEvent, WindowFsm};
use ow_common::time::Duration;
use ow_controller::health::controller_health_rules;
use ow_netsim::fleet::{self, fleet_health_rules};
use ow_netsim::{ChurnEvent, ChurnKind, FleetConfig, RackBurst};
use ow_obs::{
    validate_flightrec_json, FlightRecorderConfig, HealthEngine, Obs, RuleSet, FSM_REJECT_CODE,
};
use proptest::prelude::*;

/// The catalog every fleet test installs: fleet + controller rules,
/// minus the scheduling-dependent queue-watermark rule (its firing
/// path is unit-tested in ow-controller; here it would leak thread
/// timing into the byte-identity checks).
fn fleet_catalog() -> RuleSet {
    RuleSet::merged(vec![fleet_health_rules(), controller_health_rules()])
        .expect("catalogs merge")
        .without(&["OW-HEALTH-201"])
}

/// A small chaos fleet: 30% loss, rack 1 bursting at 90%, switch 2
/// crashing mid-run, every 4th window's retransmit channel dead.
fn chaos_config(seed: u64) -> FleetConfig {
    FleetConfig {
        switches: 16,
        workers: 2,
        local_windows: 3,
        afr_loss: 0.30,
        bursts: vec![RackBurst {
            rack: 1,
            from: Duration::ZERO,
            until: Duration::from_millis(100),
            loss: 0.90,
        }],
        churn: vec![ChurnEvent {
            at: Duration::from_micros(1_700),
            switch: 2,
            kind: ChurnKind::Crash,
        }],
        escalate_every: 4,
        seed,
        ..FleetConfig::default()
    }
}

/// Run a fleet with the health catalog installed; returns the engine.
fn run_with_health(cfg: &FleetConfig) -> std::sync::Arc<HealthEngine> {
    let obs = Obs::with_journal_capacity(1 << 15);
    let engine = obs.install_health(fleet_catalog(), FlightRecorderConfig::default());
    fleet::run(cfg, Some(&obs));
    engine
}

fn fired_pairs(engine: &HealthEngine) -> BTreeSet<(String, String)> {
    engine
        .timeline()
        .iter()
        .filter(|a| a.state == "fired")
        .map(|a| (a.code.clone(), a.entity.clone()))
        .collect()
}

#[test]
fn lossless_fleet_raises_zero_alerts() {
    let engine = run_with_health(&FleetConfig {
        switches: 16,
        workers: 2,
        local_windows: 3,
        afr_loss: 0.0,
        seed: 11,
        ..FleetConfig::default()
    });
    assert!(engine.timeline().is_empty(), "{:?}", engine.timeline());
    assert!(!engine.frozen());
    assert_eq!(engine.report("e2e").fleet_score, 1000);
}

#[test]
fn injected_faults_fire_exactly_their_rules() {
    let engine = run_with_health(&chaos_config(11));
    let fired = fired_pairs(&engine);
    let want: BTreeSet<(String, String)> = [
        ("OW-HEALTH-203", "controller"), // escalated recoveries burn the 1ms SLO
        ("OW-HEALTH-204", "controller"), // every 4th window escalating is a storm
        ("OW-HEALTH-205", "controller"), // 30% loss is a retransmit storm
        ("OW-HEALTH-301", "fleet"),      // the injected crash
        ("OW-HEALTH-302", "rack:1"),     // only the bursting rack
    ]
    .iter()
    .map(|(c, e)| (c.to_string(), e.to_string()))
    .collect();
    assert_eq!(fired, want, "recall and precision must both hold");
    // The critical 204 froze the box, and the dump validates.
    assert!(engine.frozen());
    let dump = engine.flight_dump("e2e").expect("critical froze");
    assert!(dump.freeze_reason.contains("OW-HEALTH-204"));
    let doc = ow_obs::json::parse(&dump.to_json()).expect("dump parses");
    validate_flightrec_json(&doc).expect("dump validates");
}

#[test]
fn fsm_invariant_rejection_freezes_through_the_sink() {
    let obs = Obs::new();
    let engine = obs.install_health(fleet_catalog(), FlightRecorderConfig::default());
    let mut fsm = WindowEngine::new();
    fsm.set_sink(obs.engine_sink("controller"));
    fsm.insert(WindowFsm::announced(9, 4));
    fsm.apply(9, WindowEvent::StreamComplete).unwrap();
    fsm.apply(9, WindowEvent::Acked).unwrap();
    assert!(!engine.frozen());
    assert!(fsm.apply(9, WindowEvent::Acked).is_err());
    assert!(engine.frozen(), "invariant rejection must freeze the box");
    let dump = engine.flight_dump("e2e").expect("frozen");
    assert!(dump.freeze_reason.contains(FSM_REJECT_CODE));
    assert_eq!(
        dump.timeline.last().map(|a| a.entity.as_str()),
        Some("controller:9")
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Same-seed chaos runs — threaded workers and all — dump
    /// byte-identical post-mortems and alert timelines.
    #[test]
    fn same_seed_chaos_dumps_are_byte_identical(seed in 1u64..10_000) {
        let cfg = chaos_config(seed);
        let a = run_with_health(&cfg);
        let b = run_with_health(&cfg);
        prop_assert_eq!(a.timeline(), b.timeline());
        let dump_a = a.flight_dump("e2e").map(|d| d.to_json());
        let dump_b = b.flight_dump("e2e").map(|d| d.to_json());
        prop_assert!(dump_a.is_some(), "the escalation drill always goes critical");
        prop_assert_eq!(dump_a, dump_b);
        let report_a = serde_json::to_string(&a.report("e2e")).unwrap();
        let report_b = serde_json::to_string(&b.report("e2e")).unwrap();
        prop_assert_eq!(report_a, report_b);
    }
}
