//! Ablations of OmniWindow's design choices (DESIGN.md §4).
//!
//! * [`merging_strategies`] — why AFRs (§4.1): compare merging AFRs
//!   against the two straw-men the paper rejects — merging per-sub-window
//!   *measurement results* (loses sub-threshold flows) and merging
//!   per-sub-window *states* (amplifies collision error).
//! * [`salu_ablation`] — the flattened two-region layout (§6): SALUs
//!   with and without it, per sketch.
//! * [`fk_capacity_sweep`] — the hybrid collection trade-off (Exp#6's
//!   OW point as a function of the flowkey-array size).
//! * [`recirc_sweep`] — C&R latency vs the number of simultaneously
//!   recirculating packets (why 16 is enough).

use serde::Serialize;

use ow_common::flowkey::FlowKey;
use ow_common::time::Duration;
use ow_sketch::traits::FrequencySketch;
use ow_sketch::CountMin;
use ow_switch::latency::LatencyModel;

use crate::experiments::common::Scale;

/// Result of the merging-strategy ablation.
#[derive(Debug, Clone, Serialize)]
pub struct MergingAblation {
    /// Heavy-hitter recall when merging AFRs (OmniWindow).
    pub afr_recall: f64,
    /// Recall when merging per-sub-window measurement results.
    pub results_recall: f64,
    /// Per-flow ARE when merging AFRs.
    pub afr_are: f64,
    /// Per-flow ARE when merging sub-window states.
    pub state_are: f64,
}

/// Compare the three §4.1 merging strategies on a synthetic workload of
/// `flows` flows over five sub-windows, with heavy flows split across
/// sub-windows (the boundary pathology).
pub fn merging_strategies(scale: Scale, seed: u64) -> MergingAblation {
    let flows = match scale {
        Scale::Tiny => 1_000u32,
        Scale::Small => 2_000,
        Scale::Paper => 20_000,
    };
    let subwindows = 5usize;
    let threshold = 100u64;
    let width = flows as usize / 2; // deliberate contention
    let key = |i: u32| FlowKey::src_ip(i + 1);

    // Ground truth mirrors real traffic churn: every 20th flow is heavy
    // (150 > threshold) and active in *all five* sub-windows with a
    // sub-threshold share (30); the mice are short-lived — each lives in
    // exactly one sub-window. This is where AFR merging wins: each
    // sub-window's sketch only holds that sub-window's flows, so summing
    // per-sub-window queries picks up far less collision mass than one
    // state holding everything.
    let count = |i: u32| -> u64 {
        if i % 20 == 0 {
            150
        } else {
            1 + (i % 7) as u64
        }
    };
    let active_in = |i: u32, s: usize| -> bool {
        if i % 20 == 0 {
            true
        } else {
            (i as usize) % subwindows == s
        }
    };

    let mut subs: Vec<CountMin> = (0..subwindows)
        .map(|_| CountMin::new(4, width, seed))
        .collect();
    for i in 0..flows {
        let c = count(i);
        for (s, cm) in subs.iter_mut().enumerate() {
            if !active_in(i, s) {
                continue;
            }
            let share = if i % 20 == 0 {
                c / subwindows as u64
            } else {
                c
            };
            cm.update(&key(i), share);
        }
    }

    let truth_heavy: Vec<u32> = (0..flows).filter(|&i| count(i) >= threshold).collect();

    // Strategy 1: AFR merging — sum the queries of the sub-windows the
    // flow was tracked in (flowkey tracking is per sub-window, so absent
    // sub-windows contribute no AFR).
    let afr_estimate = |i: u32| -> u64 {
        subs.iter()
            .enumerate()
            .filter(|(s, _)| active_in(i, *s))
            .map(|(_, cm)| cm.query(&key(i)))
            .sum::<u64>()
    };
    let afr_found = truth_heavy
        .iter()
        .filter(|&&i| afr_estimate(i) >= threshold)
        .count();

    // Strategy 2: merging measurement results — union of per-sub-window
    // reports at the full threshold.
    let results_found = truth_heavy
        .iter()
        .filter(|&&i| subs.iter().any(|cm| cm.query(&key(i)) >= threshold))
        .count();

    // Strategy 3: merging states — element-wise sum, then one query.
    let mut merged = subs[0].clone();
    for cm in &subs[1..] {
        merged.merge_states(cm);
    }

    let mut afr_pairs = Vec::new();
    let mut state_pairs = Vec::new();
    for i in 0..flows {
        let t = count(i) as f64;
        afr_pairs.push((afr_estimate(i) as f64, t));
        state_pairs.push((merged.query(&key(i)) as f64, t));
    }

    MergingAblation {
        afr_recall: afr_found as f64 / truth_heavy.len().max(1) as f64,
        results_recall: results_found as f64 / truth_heavy.len().max(1) as f64,
        afr_are: ow_common::metrics::average_relative_error(&afr_pairs),
        state_are: ow_common::metrics::average_relative_error(&state_pairs),
    }
}

/// One sketch's SALU cost with and without the flattened layout.
#[derive(Debug, Clone, Serialize)]
pub struct SaluRow {
    /// Sketch name.
    pub sketch: String,
    /// SALUs per packet with the flattened two-region layout.
    pub flattened: usize,
    /// SALUs per packet with naive per-region registers.
    pub naive: usize,
}

/// The §6 SALU ablation across the evaluation's sketches.
pub fn salu_ablation() -> Vec<SaluRow> {
    use ow_sketch::traits::SpreadEstimator;
    let rows: Vec<(&str, usize)> = vec![
        (
            "CountMin",
            ow_sketch::CountMin::new(4, 64, 1).meta().salus_per_packet,
        ),
        (
            "SuMax",
            ow_sketch::SuMax::new(4, 64, 1).meta().salus_per_packet,
        ),
        (
            "MvSketch",
            FrequencySketch::meta(&ow_sketch::MvSketch::new(4, 64, 1)).salus_per_packet,
        ),
        (
            "HashPipe",
            FrequencySketch::meta(&ow_sketch::HashPipe::new(4, 64, 1)).salus_per_packet,
        ),
        (
            "SpreadSketch",
            SpreadEstimator::meta(&ow_sketch::SpreadSketch::new(4, 64, 1)).salus_per_packet,
        ),
    ];
    rows.into_iter()
        .map(|(name, per_region)| SaluRow {
            sketch: name.to_string(),
            flattened: per_region,
            naive: per_region * 2,
        })
        .collect()
}

/// One point of the flowkey-capacity sweep.
#[derive(Debug, Clone, Serialize)]
pub struct FkCapacityPoint {
    /// Data-plane flowkey-array capacity.
    pub capacity: usize,
    /// Keys enumerated in the data plane.
    pub from_dataplane: usize,
    /// Keys injected by the controller.
    pub injected: usize,
    /// Modelled collection time (ms).
    pub millis: f64,
    /// Data-plane SRAM for the array (KB).
    pub sram_kb: usize,
}

/// Sweep the hybrid collection's flowkey-array capacity for a population
/// of `total_keys` keys — the CPC↔DPC trade-off OmniWindow sits between.
pub fn fk_capacity_sweep(total_keys: usize) -> Vec<FkCapacityPoint> {
    let lat = LatencyModel::default();
    let caps: Vec<usize> = (0..8).map(|i| total_keys >> i).rev().collect();
    caps.into_iter()
        .map(|capacity| {
            let buffered = capacity.min(total_keys);
            let injected = total_keys - buffered;
            let t =
                lat.trigger_rtt + lat.recirc_enumeration(buffered, 3) + lat.inject(injected, false);
            FkCapacityPoint {
                capacity,
                from_dataplane: buffered,
                injected,
                millis: t.as_millis_f64(),
                sram_kb: capacity * 13 / 1024,
            }
        })
        .collect()
}

/// One point of the recirculation fan-out sweep.
#[derive(Debug, Clone, Serialize)]
pub struct RecircPoint {
    /// Simultaneously recirculating packets.
    pub packets: usize,
    /// Enumeration time for 64 K slots (ms).
    pub enumerate_ms: f64,
    /// Whether a 100 ms sub-window budget holds with margin (< 10 ms).
    pub fits_subwindow: bool,
}

/// Sweep the number of recirculating collection/clear packets (why the
/// paper stops at 16).
pub fn recirc_sweep(slots: usize) -> Vec<RecircPoint> {
    let lat = LatencyModel::default();
    [1usize, 2, 4, 8, 16, 32]
        .into_iter()
        .map(|packets| {
            let t = lat.recirc_enumeration(slots, packets);
            RecircPoint {
                packets,
                enumerate_ms: t.as_millis_f64(),
                fits_subwindow: t < Duration::from_millis(10),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn afr_merging_beats_both_strawmen() {
        let r = merging_strategies(Scale::Small, 3);
        // AFRs find every heavy flow; per-sub-window reports miss the
        // split ones entirely (each share is 30 < 100).
        assert!(r.afr_recall > 0.99, "AFR recall {}", r.afr_recall);
        assert!(
            r.results_recall < 0.1,
            "results-merging recall {} should collapse",
            r.results_recall
        );
        // State merging amplifies collision error.
        assert!(
            r.state_are > r.afr_are * 1.5,
            "state ARE {} !≫ AFR ARE {}",
            r.state_are,
            r.afr_are
        );
    }

    #[test]
    fn flattened_layout_halves_salus_everywhere() {
        for row in salu_ablation() {
            assert_eq!(row.naive, row.flattened * 2, "{}", row.sketch);
        }
    }

    #[test]
    fn fk_sweep_trades_sram_for_time() {
        let sweep = fk_capacity_sweep(64 * 1024);
        // More capacity → more SRAM, less injection → less time.
        for w in sweep.windows(2) {
            assert!(w[1].capacity > w[0].capacity);
            assert!(w[1].sram_kb >= w[0].sram_kb);
            assert!(w[1].millis <= w[0].millis + 1e-9);
        }
        // Full capacity = pure DPC (nothing injected).
        assert_eq!(sweep.last().unwrap().injected, 0);
    }

    #[test]
    fn recirc_sweep_divides_time() {
        let sweep = recirc_sweep(65_536);
        assert!(!sweep[0].fits_subwindow, "1 packet cannot fit the budget");
        assert!(sweep.last().unwrap().fits_subwindow);
        for w in sweep.windows(2) {
            assert!(w[1].enumerate_ms <= w[0].enumerate_ms);
        }
    }
}
