//! A literal walk through OmniWindow's switch protocol: Algorithm 1
//! (flowkey tracking), the trigger packet, Algorithm 2 (AFR generation
//! by recirculating collection packets), and the in-switch reset (§4.3)
//! — followed by the same flow end-to-end through the composed
//! [`ow_switch::Switch`] and a live threaded controller.
//!
//! Run with: `cargo run --release --example switch_protocol`

use ow_common::flowkey::KeyKind;
use ow_common::packet::{OwFlag, Packet, TcpFlags};
use ow_common::time::{Duration, Instant};
use ow_controller::live::{DataPlaneMsg, LiveController};
use ow_sketch::CountMin;
use ow_switch::app::{DataPlaneApp, FrequencyApp};
use ow_switch::collect::{make_collection_packets, PacketCollector, PassResult};
use ow_switch::flowkey::FlowkeyTracker;
use ow_switch::signal::WindowSignal;
use ow_switch::{SwitchConfig, SwitchEvent};
use ow_verify::verified_switch;

fn main() {
    // ------------------------------------------------------------------
    // Part 1: Algorithm 2, one recirculation pass at a time.
    // ------------------------------------------------------------------
    println!("— Algorithm 2, literally —");
    let mut app = FrequencyApp::new(CountMin::new(2, 256, 1), KeyKind::SrcIp, false);
    let mut tracker = FlowkeyTracker::new(16, 64, 2);
    for (src, n) in [(10u32, 3u64), (20, 7), (30, 1)] {
        for _ in 0..n {
            let p = Packet::tcp(Instant::ZERO, src, 99, 1, 80, TcpFlags::ack(), 64);
            app.update(&p);
        }
        tracker.track(&ow_common::flowkey::FlowKey::src_ip(src));
    }
    println!("sub-window tracked {} flowkeys", tracker.total_tracked());

    let mut pc = PacketCollector::new(0);
    let mut pkts = make_collection_packets(1, 0, Instant::ZERO);
    let p = &mut pkts[0];
    loop {
        match pc.pass(p, &mut app, &tracker) {
            PassResult::Report { clone, .. } => println!(
                "  collection pass {}: AFR {{key: {}, count: {}}} cloned to controller",
                pc.enumerated(),
                clone.ow.flowkey.unwrap(),
                clone.ow.afr_value
            ),
            PassResult::BecameReset => {
                println!("  enumeration done → packet converted to clear packet");
                assert_eq!(p.ow.flag, OwFlag::Reset);
            }
            PassResult::ResetPass { index } => {
                if index == 0 || (index + 1) % 128 == 0 {
                    println!("  reset pass clears index {index} of every register");
                }
            }
            PassResult::Done => break,
        }
    }
    println!(
        "  reset swept {} slots; state cleared ✓\n",
        pc.reset_passes()
    );

    // ------------------------------------------------------------------
    // Part 2: the composed switch feeding a live threaded controller.
    // ------------------------------------------------------------------
    println!("— Composed switch + live controller —");
    let mk_app = |s| FrequencyApp::new(CountMin::new(2, 4096, s), KeyKind::SrcIp, false);
    let mut switch = verified_switch(
        SwitchConfig {
            signal: WindowSignal::Timeout(Duration::from_millis(100)),
            fk_capacity: 1024,
            expected_flows: 4096,
            ..SwitchConfig::default()
        },
        mk_app(1),
        mk_app(2),
    )
    .expect("pipeline verifies");
    let controller = LiveController::spawn(5, 64);

    // 4 sub-windows of traffic: host 77 sends 40 packets per sub-window.
    let mut events = Vec::new();
    for sw in 0..4u64 {
        for i in 0..40 {
            let ts = Instant::from_millis(sw * 100 + 2 + i * 2);
            events.extend(switch.process(Packet::tcp(ts, 77, 9, 1, 80, TcpFlags::ack(), 64)));
            events.extend(switch.process(Packet::tcp(
                ts,
                1000 + i as u32,
                9,
                1,
                80,
                TcpFlags::ack(),
                64,
            )));
        }
    }
    events.extend(switch.flush());

    let mut batches = 0;
    for e in events {
        match e {
            SwitchEvent::Trigger {
                ended,
                tracked_keys,
                ..
            } => {
                println!("  trigger: sub-window {ended} ended with {tracked_keys} keys");
            }
            SwitchEvent::AfrBatch {
                subwindow, outcome, ..
            } => {
                println!(
                    "  C&R for sub-window {subwindow}: {} AFRs in {} (+ reset {})",
                    outcome.afrs.len(),
                    outcome.collect_time,
                    outcome.reset_time
                );
                controller
                    .sender
                    .send(DataPlaneMsg::AfrBatch {
                        subwindow,
                        afrs: outcome.afrs,
                    })
                    .unwrap();
                batches += 1;
            }
            _ => {}
        }
    }
    let handle = controller.handle.clone();
    let processed = controller.join();
    assert_eq!(processed, batches);

    let heavy = handle.flows_over(100.0);
    println!(
        "  live table merged {} flows; ≥100 packets across the window: {:?}",
        handle.merged_flows(),
        heavy
            .iter()
            .map(|(k, v)| format!("{k} = {v}"))
            .collect::<Vec<_>>()
    );
    // Host 77 sent 160 packets across four sub-windows — only the merge
    // across sub-windows can see that.
    assert_eq!(heavy.len(), 1);
    println!("\nfull protocol round-trip verified ✓");
}
