//! FlowRadar (Li et al., NSDI'16) — the paper's §8 example of a
//! telemetry structure that cannot answer data-plane flow queries.
//!
//! FlowRadar encodes *all* flows and their packet counts into a counting
//! table of XOR cells; per-flow statistics only exist after a decode
//! step on the controller. OmniWindow therefore cannot generate AFRs in
//! the switch for it — instead it migrates the whole (small) state per
//! sub-window and the controller decodes each state into AFRs before
//! merging ("Merging intermediate data without AFRs").
//!
//! Structure: a flow filter (Bloom) plus `k`-cell encoding; each cell is
//! `{flow_xor, flow_count, packet_count}`. Decoding peels cells with
//! `flow_count == 1`, whose `packet_count` is exactly that flow's count.

use ow_common::flowkey::FlowKey;
use ow_common::hash::{HashFamily, HashFn};

use crate::bloom::BloomFilter;
use crate::traits::{SketchMeta, SketchObs};

#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
struct Cell {
    flow_xor: u128,
    check_xor: u64,
    flow_count: u32,
    packet_count: u64,
}

/// A FlowRadar instance: flow filter + counting table.
#[derive(Debug, Clone)]
pub struct FlowRadar {
    filter: BloomFilter,
    cells: Vec<Cell>,
    hashes: HashFamily,
    check: HashFn,
}

/// Outcome of decoding a FlowRadar state.
#[derive(Debug, Clone, PartialEq)]
pub struct FlowRadarDecode {
    /// Recovered `(flow, packet count)` pairs.
    pub flows: Vec<(FlowKey, u64)>,
    /// Whether peeling emptied the table (all flows recovered).
    pub complete: bool,
}

impl FlowRadar {
    /// Create an instance with `ncells` counting cells and `k` hashes,
    /// sized for roughly `expected_flows` flows.
    ///
    /// # Panics
    /// Panics if `ncells == 0` or `k == 0`.
    pub fn new(ncells: usize, k: usize, expected_flows: usize, seed: u64) -> FlowRadar {
        assert!(ncells > 0 && k > 0, "FlowRadar dimensions must be positive");
        FlowRadar {
            filter: BloomFilter::for_capacity(expected_flows.max(64), seed ^ 0xF10),
            cells: vec![Cell::default(); ncells],
            hashes: HashFamily::new(seed ^ 0xF1A0, k),
            check: HashFn::new(seed ^ 0xF1AC, 0),
        }
    }

    fn indices(&self, key: &FlowKey) -> Vec<usize> {
        let k = self.hashes.len();
        let per = self.cells.len() / k.max(1);
        if per == 0 {
            return self
                .hashes
                .iter()
                .map(|h| h.index(key, self.cells.len()))
                .collect();
        }
        self.hashes
            .iter()
            .enumerate()
            .map(|(i, h)| i * per + h.index(key, per))
            .collect()
    }

    /// Record one packet of `key`.
    pub fn update(&mut self, key: &FlowKey) {
        let is_new = !self.filter.check_and_insert(key);
        let check = self.check.hash_key(key);
        for idx in self.indices(key) {
            let c = &mut self.cells[idx];
            if is_new {
                c.flow_xor ^= key.as_u128();
                c.check_xor ^= check;
                c.flow_count += 1;
            }
            c.packet_count += 1;
        }
    }

    /// Decode the state into per-flow packet counts (the controller-side
    /// step of §8). Consumes the cells; clone first to keep the state.
    pub fn decode(&mut self) -> FlowRadarDecode {
        let mut flows = Vec::new();
        loop {
            let mut progressed = false;
            for i in 0..self.cells.len() {
                let cell = self.cells[i];
                if cell.flow_count != 1 {
                    continue;
                }
                let Some(key) = unpack_key(cell.flow_xor) else {
                    continue;
                };
                if self.check.hash_key(&key) != cell.check_xor {
                    continue;
                }
                let count = cell.packet_count;
                let check = cell.check_xor;
                for idx in self.indices(&key) {
                    let c = &mut self.cells[idx];
                    c.flow_xor ^= key.as_u128();
                    c.check_xor ^= check;
                    c.flow_count -= 1;
                    c.packet_count = c.packet_count.saturating_sub(count);
                }
                flows.push((key, count));
                progressed = true;
            }
            if !progressed {
                break;
            }
        }
        let complete = self.cells.iter().all(|c| c.flow_count == 0);
        flows.sort_by_key(|(k, _)| k.as_u128());
        FlowRadarDecode { flows, complete }
    }

    /// [`FlowRadar::decode`] with data-quality observation: an
    /// incomplete peel (flows left encoded, AFR generation incomplete)
    /// reports one decode failure to `obs`.
    pub fn decode_observed(&mut self, obs: &dyn SketchObs) -> FlowRadarDecode {
        let result = self.decode();
        if !result.complete {
            obs.decode_failures("flowradar", 1);
        }
        result
    }

    /// Clear the state (the in-switch reset target).
    pub fn reset(&mut self) {
        self.filter.reset();
        self.cells.fill(Cell::default());
    }

    /// Resource footprint.
    pub fn meta(&self) -> SketchMeta {
        SketchMeta {
            name: "FlowRadar",
            memory_bytes: self.filter.meta().memory_bytes + self.cells.len() * 32,
            register_arrays: 4, // filter + flow_xor + flow_count + packet_count
            salus_per_packet: self.filter.meta().salus_per_packet + self.hashes.len() * 3,
            hash_units: self.filter.meta().hash_units + self.hashes.len(),
        }
    }

    /// Number of counting cells.
    pub fn ncells(&self) -> usize {
        self.cells.len()
    }
}

fn unpack_key(packed: u128) -> Option<FlowKey> {
    use ow_common::flowkey::KeyKind;
    let kind = match (packed >> 104) as u8 {
        0 => KeyKind::FiveTuple,
        1 => KeyKind::SrcIp,
        2 => KeyKind::DstIp,
        3 => KeyKind::SrcDst,
        _ => return None,
    };
    let key = FlowKey {
        src_ip: (packed >> 72) as u32,
        dst_ip: (packed >> 40) as u32,
        src_port: (packed >> 24) as u16,
        dst_port: (packed >> 8) as u16,
        proto: packed as u8,
        kind,
    }
    .canonical();
    if key.as_u128() == packed {
        Some(key)
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(i: u32) -> FlowKey {
        FlowKey::five_tuple(i + 1, !i, (i % 50_000) as u16, 80, 6)
    }

    #[test]
    fn decodes_all_flows_with_exact_counts() {
        let mut fr = FlowRadar::new(1024, 3, 512, 1);
        for i in 0..300u32 {
            for _ in 0..(i % 5 + 1) {
                fr.update(&key(i));
            }
        }
        let dec = fr.decode();
        assert!(dec.complete, "peeling must complete below capacity");
        assert_eq!(dec.flows.len(), 300);
        for (k, c) in &dec.flows {
            let i = (0..300u32).find(|&i| key(i) == *k).expect("known flow");
            assert_eq!(*c, (i % 5 + 1) as u64, "count for flow {i}");
        }
    }

    #[test]
    fn overload_reports_incomplete() {
        let mut fr = FlowRadar::new(64, 3, 64, 2);
        for i in 0..500u32 {
            fr.update(&key(i));
        }
        let dec = fr.decode();
        assert!(!dec.complete);
        // Whatever decoded is still correct.
        for (k, c) in &dec.flows {
            let i = (0..500u32).find(|&i| key(i) == *k).expect("known flow");
            let _ = i;
            assert_eq!(*c, 1);
        }
    }

    #[test]
    fn repeated_packets_count_once_per_flow() {
        let mut fr = FlowRadar::new(256, 3, 64, 3);
        for _ in 0..57 {
            fr.update(&key(1));
        }
        let dec = fr.decode();
        assert!(dec.complete);
        assert_eq!(dec.flows, vec![(key(1), 57)]);
    }

    #[test]
    fn reset_clears() {
        let mut fr = FlowRadar::new(128, 3, 64, 4);
        fr.update(&key(1));
        fr.reset();
        let dec = fr.decode();
        assert!(dec.complete);
        assert!(dec.flows.is_empty());
    }

    #[test]
    fn empty_decode_is_empty() {
        let mut fr = FlowRadar::new(128, 3, 64, 5);
        let dec = fr.decode();
        assert!(dec.complete);
        assert!(dec.flows.is_empty());
    }
}
