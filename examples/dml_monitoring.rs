//! Monitoring distributed-ML training with user-defined window signals
//! (the paper's Exp#3 case study).
//!
//! The training application embeds its iteration number in every packet;
//! the switch's user-defined signal engine segments the stream into
//! per-iteration windows and measures each worker's iteration time —
//! no end-host instrumentation needed. Gradient compression doubles
//! every 16 iterations, so the measured times form a falling staircase.
//!
//! Run with: `cargo run --release --example dml_monitoring`

use omniwindow::experiments::exp3_dml;
use ow_trace::dml::{compression_ratio, DmlConfig};

fn main() {
    let cfg = DmlConfig {
        workers: 3,
        iterations: 96,
        ..DmlConfig::default()
    };
    println!(
        "parameter-server training: {} workers, {} iterations, compression 2→2048",
        cfg.workers, cfg.iterations
    );

    let result = exp3_dml::run(&cfg);

    println!(
        "\n{:>9} {:>7} {:>16}",
        "iteration", "ratio", "mean time (µs)"
    );
    let mut prev_mean = f64::INFINITY;
    for it in (8..=cfg.iterations).step_by(16) {
        let mean = result.mean_time(it);
        let ratio = compression_ratio(&cfg, it - 1);
        let bar = "#".repeat((mean / 8.0).min(60.0) as usize);
        println!("{it:>9} {ratio:>7} {mean:>16.0}  {bar}");
        assert!(
            mean <= prev_mean,
            "iteration times must fall as compression rises"
        );
        prev_mean = mean;
    }
    println!("\nthe staircase mirrors the doubling compression schedule ✓");
}
