//! The repo-wide configuration catalog `ow-lint` gates on.
//!
//! Every switch configuration the examples, integration tests, the
//! benchmark harness, and the network simulator deploy is enumerated
//! here as a named [`PipelineProgram`], alongside the paper's Table-2
//! resource configurations. `ow-lint` verifies all of them; CI fails
//! if any entry regresses. When a new example or experiment adds a
//! configuration, it gets a row here — that is the contract.

use ow_common::flowkey::KeyKind;
use ow_sketch::CountMin;
use ow_switch::app::{DataPlaneApp, FrequencyApp};
use ow_switch::resources::ResourceConfig;
use ow_switch::switch::SwitchConfig;

use crate::derive::program_for_switch;
use crate::ir::{omniwindow_program, PipelineProgram};

/// Derive the program for a Count-Min deployment (the application every
/// example and test in this repo wraps).
fn countmin_program(fk_capacity: usize, expected_flows: usize, width: usize) -> PipelineProgram {
    let cfg = SwitchConfig {
        fk_capacity,
        expected_flows,
        ..SwitchConfig::default()
    };
    let app = FrequencyApp::new(CountMin::new(2, width, 1), KeyKind::SrcIp, false);
    program_for_switch(&cfg, &app.meta(), app.states_per_array())
}

/// Every configuration the repo deploys, as `(name, program)` rows.
pub fn repo_programs() -> Vec<(String, PipelineProgram)> {
    let mut rows: Vec<(String, PipelineProgram)> = Vec::new();

    // Paper Table-2 resource configurations. 32K states = the Exp#6
    // 128 KB-per-array Count-Min deployment.
    rows.push((
        "table2-default".into(),
        omniwindow_program(&ResourceConfig::default(), 32 * 1024),
    ));
    rows.push((
        "table2-no-rdma".into(),
        omniwindow_program(
            &ResourceConfig {
                rdma_enabled: false,
                ..ResourceConfig::default()
            },
            32 * 1024,
        ),
    ));
    for hashes in [1u32, 2, 4] {
        rows.push((
            format!("table2-hashes-{hashes}"),
            omniwindow_program(
                &ResourceConfig {
                    bloom_hashes: hashes,
                    ..ResourceConfig::default()
                },
                32 * 1024,
            ),
        ));
    }

    // Sharded live-controller deployments (`OW_SHARDS` / bench_cr).
    // The shard count lives on the controller, so the pipeline program
    // itself is unchanged — but each shard count scales the flow
    // population the deployment is expected to serve, and that *does*
    // have to fit the switch: these rows prove the data plane keeps up
    // with every merge tier the controller can run at.
    for shards in [1usize, 2, 4, 8] {
        rows.push((
            format!("live-sharded-{shards}"),
            countmin_program(4096, shards * 16 * 1024, 8192),
        ));
    }

    // Deployed configurations: examples, integration tests, bench.
    rows.push((
        "example-switch-protocol".into(),
        countmin_program(1024, 4096, 4096),
    ));
    rows.push((
        "example-lossy-afr-recovery".into(),
        countmin_program(4096, 16 * 1024, 8192),
    ));
    rows.push((
        "example-suspicious-lifetime".into(),
        countmin_program(4096, 8192, 8192),
    ));
    rows.push((
        "tests-integration".into(),
        countmin_program(4096, 16 * 1024, 8192),
    ));
    rows.push((
        "bench-switch-pipeline".into(),
        countmin_program(2048, 4096, 8192),
    ));
    rows.push((
        "switch-defaults".into(),
        countmin_program(
            SwitchConfig::default().fk_capacity,
            SwitchConfig::default().expected_flows,
            8192,
        ),
    ));
    rows
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::verify;

    #[test]
    fn every_catalog_entry_verifies() {
        for (name, program) in repo_programs() {
            if let Err(report) = verify(&program) {
                panic!("catalog entry '{name}' rejected:\n{report}");
            }
        }
    }

    #[test]
    fn catalog_names_are_unique() {
        let rows = repo_programs();
        for (i, (a, _)) in rows.iter().enumerate() {
            for (b, _) in rows.iter().skip(i + 1) {
                assert_ne!(a, b, "duplicate catalog name");
            }
        }
    }
}
