//! # ow-verify — static RMT pipeline verification
//!
//! The simulator in `ow-switch` enforces the §2 hardware constraints
//! *at runtime*: a second SALU access in a pass, an out-of-region
//! index, or an unplaceable feature set only surfaces once traffic is
//! flowing. A real deployment cannot afford that — the Tofino compiler
//! rejects such programs before they load. This crate is that step for
//! the simulated pipeline:
//!
//! 1. a declarative IR ([`PipelineProgram`]) describing register
//!    arrays, match-action features, and the per-packet-class paths a
//!    deployment executes;
//! 2. a static verifier ([`verify()`](crate::verify::verify)) proving
//!    C4 discipline, §6
//!    address-bounds safety, recirculation termination, per-stage and
//!    whole-pipeline resource fit, and dependency-aware stage
//!    placement (driving the branch-and-bound
//!    `ow_switch::placement::place_optimal` over the [`depgraph`]
//!    step-dependency graph, with the greedy packer as incumbent and
//!    packing-density reporting);
//! 3. a witness type ([`VerifiedProgram`]) that is the only supported
//!    way to construct a `Switch` — [`verified_switch`] is the front
//!    door used by every example, test, benchmark, and the network
//!    simulator;
//! 4. a runtime soundness bridge ([`exec::execute`]) that replays any
//!    program against the real register machinery, keeping the static
//!    and dynamic encodings of the constraints honest against each
//!    other (property-tested in `tests/soundness.rs`);
//! 5. `ow-lint`, a binary gating CI on the [`catalog`] of every
//!    configuration this repo deploys.
//!
//! Diagnostics carry stable `OW-…` codes ([`ErrorCode`]) and render to
//! JSON ([`VerifyReport::to_json`]) for machine consumption.

pub mod catalog;
pub mod depgraph;
pub mod derive;
pub mod diag;
pub mod exec;
pub mod ir;
pub mod verify;

pub use depgraph::{register_conflict_edges, register_salu_steps};
pub use derive::{program_for_switch, verified_switch};
pub use diag::{Diagnostic, ErrorCode, ResourceTotals, Severity, VerifyReport};
pub use ir::{
    omniwindow_program, AccessDecl, AccessKind, FeatureDecl, PacketClass, PathDecl,
    PipelineProgram, RegisterDecl, StepDecl,
};
pub use verify::{verify, verify_with_budget, VerifiedProgram};
