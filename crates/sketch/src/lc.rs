//! Linear Counting (Whang, Vander-Zanden, Taylor — TODS'90).
//!
//! A bitmap cardinality estimator: hash each key to one bit; estimate
//! `n ≈ m · ln(m / z)` where `z` is the number of zero bits. Used for
//! Q11 (flow cardinality) in Exp#2. Mergeable across sub-windows by
//! bitwise OR — which is exactly how the controller merges the migrated
//! state (§8, "merging intermediate data without AFRs").

use ow_common::flowkey::FlowKey;
use ow_common::hash::HashFn;

use crate::traits::{SketchMeta, SketchObs};

/// A linear-counting bitmap over `m` bits.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LinearCounting {
    bits: Vec<u64>,
    nbits: usize,
    hash: HashFn,
}

impl LinearCounting {
    /// Create an estimator with `nbits` bits (rounded up to 64).
    ///
    /// # Panics
    /// Panics if `nbits == 0`.
    pub fn new(nbits: usize, seed: u64) -> LinearCounting {
        assert!(nbits > 0, "LinearCounting needs at least one bit");
        let words = nbits.div_ceil(64);
        LinearCounting {
            bits: vec![0; words],
            nbits: words * 64,
            hash: HashFn::new(seed ^ 0x1C, 0),
        }
    }

    /// Record a key.
    pub fn insert(&mut self, key: &FlowKey) {
        let bit = self.hash.index(key, self.nbits);
        self.bits[bit / 64] |= 1u64 << (bit % 64);
    }

    /// Estimate the number of distinct keys recorded.
    pub fn estimate(&self) -> f64 {
        let m = self.nbits as f64;
        let ones: u32 = self.bits.iter().map(|w| w.count_ones()).sum();
        let zeros = m - ones as f64;
        if zeros <= 0.0 {
            m * m.ln() // saturated
        } else {
            m * (m / zeros).ln()
        }
    }

    /// Merge another instance (bitwise OR) — distinct-union semantics.
    ///
    /// # Panics
    /// Panics if sizes differ.
    pub fn merge(&mut self, other: &LinearCounting) {
        assert_eq!(self.nbits, other.nbits, "size mismatch");
        for (a, b) in self.bits.iter_mut().zip(other.bits.iter()) {
            *a |= b;
        }
    }

    /// Clear the bitmap.
    pub fn reset(&mut self) {
        self.bits.fill(0);
    }

    /// Raw bitmap words (state-migration export).
    pub fn words(&self) -> &[u64] {
        &self.bits
    }

    /// Set bits, in permille of the bitmap size. Estimates degrade as
    /// this climbs; at 1000‰ the formula degenerates to its ceiling.
    pub fn occupancy_permille(&self) -> u64 {
        let ones: u64 = self.bits.iter().map(|w| u64::from(w.count_ones())).sum();
        ones * 1000 / self.nbits as u64
    }

    /// Whether every bit is set — [`LinearCounting::estimate`] is
    /// pinned at its (unreachable) upper bound `m·ln(m)`.
    pub fn is_saturated(&self) -> bool {
        self.occupancy_permille() == 1000
    }

    /// Publish data-quality signals: the occupancy reading, plus one
    /// saturation event per publish observed while the bitmap is full.
    pub fn publish_quality(&self, obs: &dyn SketchObs) {
        obs.occupancy_permille("lc", self.occupancy_permille());
        if self.is_saturated() {
            obs.saturations("lc", 1);
        }
    }

    /// Resource footprint.
    pub fn meta(&self) -> SketchMeta {
        SketchMeta {
            name: "LinearCounting",
            memory_bytes: self.bits.len() * 8,
            register_arrays: 1,
            salus_per_packet: 1,
            hash_units: 1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(i: u32) -> FlowKey {
        FlowKey::five_tuple(i, i ^ 0xABCD, 10, 80, 6)
    }

    #[test]
    fn estimate_within_ten_percent() {
        let mut lc = LinearCounting::new(64 * 1024, 1);
        for i in 0..10_000u32 {
            lc.insert(&key(i));
        }
        let est = lc.estimate();
        let err = (est - 10_000.0).abs() / 10_000.0;
        assert!(err < 0.10, "LC error {err:.3}");
    }

    #[test]
    fn duplicates_do_not_count() {
        let mut lc = LinearCounting::new(4096, 2);
        for _ in 0..100 {
            for i in 0..50u32 {
                lc.insert(&key(i));
            }
        }
        let est = lc.estimate();
        assert!((30.0..80.0).contains(&est), "estimate {est} far from 50");
    }

    #[test]
    fn merge_equals_union() {
        let mut a = LinearCounting::new(16 * 1024, 3);
        let mut b = LinearCounting::new(16 * 1024, 3);
        let mut union = LinearCounting::new(16 * 1024, 3);
        for i in 0..1000u32 {
            a.insert(&key(i));
            union.insert(&key(i));
        }
        for i in 500..1500u32 {
            b.insert(&key(i));
            union.insert(&key(i));
        }
        a.merge(&b);
        assert_eq!(a, union);
    }

    #[test]
    fn empty_estimates_zero() {
        let lc = LinearCounting::new(1024, 4);
        assert_eq!(lc.estimate(), 0.0);
    }

    #[test]
    fn reset_clears() {
        let mut lc = LinearCounting::new(1024, 5);
        lc.insert(&key(1));
        lc.reset();
        assert_eq!(lc.estimate(), 0.0);
    }
}
