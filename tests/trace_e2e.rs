//! End-to-end causal span tracing under heavy loss.
//!
//! Runs the instrumented obs-smoke pipeline at 30% AFR loss and asserts
//! the tentpole guarantees of the span-tracing subsystem: every
//! collected window yields exactly one single-rooted span tree with no
//! orphans, retransmission spans parent to the window's original
//! `collect` span (the wire-propagated [`ow_obs::TraceContext`] survived
//! drops, duplication, and reordering), the critical path attributes
//! ≥95% of the window's virtual wall time to named spans, and two
//! same-seed runs serialize to byte-identical reports.

use std::collections::{HashMap, HashSet};

use omniwindow::experiments::obs_smoke::{self, ObsSmokeConfig};
use ow_common::time::Duration;
use ow_obs::{validate_trace_json, TraceReport};

fn lossy_cfg() -> ObsSmokeConfig {
    ObsSmokeConfig {
        seed: 7,
        loss: 0.30,
        shards: 4,
        window_subwindows: 3,
    }
}

fn capture(cfg: &ObsSmokeConfig) -> TraceReport {
    let out = obs_smoke::run(cfg);
    TraceReport::capture(
        "trace_e2e",
        out.obs.tracer(),
        Some(Duration::from_millis(10)),
    )
}

#[test]
fn every_window_yields_a_complete_single_rooted_span_tree() {
    let report = capture(&lossy_cfg());
    assert!(
        report.traces.len() >= 2,
        "the trace terminates several sub-windows"
    );
    for trace in &report.traces {
        let ids: HashSet<u64> = trace.spans.iter().map(|s| s.id).collect();
        let roots: Vec<_> = trace.spans.iter().filter(|s| s.parent.is_none()).collect();
        assert_eq!(roots.len(), 1, "sub-window {}: one root", trace.subwindow);
        assert_eq!(roots[0].id, trace.root);
        assert_eq!(roots[0].name, "window");
        for span in &trace.spans {
            if let Some(parent) = span.parent {
                assert!(
                    ids.contains(&parent),
                    "sub-window {}: span {} ('{}') is orphaned",
                    trace.subwindow,
                    span.id,
                    span.name
                );
                assert!(parent < span.id, "ids are causal: parent precedes child");
            }
            assert!(span.end_ns >= span.start_ns);
        }
        // The switch-side phases all made it into the tree.
        for name in ["cr_wait", "collect", "reset"] {
            assert!(
                trace.spans.iter().any(|s| s.name == name),
                "sub-window {}: missing '{name}' span",
                trace.subwindow
            );
        }
        // The lifecycle marks followed the FSM through to merge.
        let events: Vec<&str> = trace.transitions.iter().map(|m| m.event.as_str()).collect();
        for event in [
            "signal_fired",
            "cr_scheduled",
            "collect_started",
            "batch_generated",
        ] {
            assert!(
                events.contains(&event),
                "sub-window {}: missing '{event}' transition",
                trace.subwindow
            );
        }
    }
}

#[test]
fn retransmit_spans_parent_to_the_original_collect_span() {
    let report = capture(&lossy_cfg());
    let mut rounds_seen = 0usize;
    for trace in &report.traces {
        let collect = trace
            .spans
            .iter()
            .find(|s| s.name == "collect")
            .unwrap_or_else(|| panic!("sub-window {} has a collect span", trace.subwindow));
        for round in trace.spans.iter().filter(|s| s.name == "retransmit_round") {
            rounds_seen += 1;
            assert_eq!(
                round.parent,
                Some(collect.id),
                "sub-window {}: retransmit round must hang off the original \
                 collect span (context propagated through the lossy wire)",
                trace.subwindow
            );
            assert_eq!(round.side, "controller");
        }
        // The controller merged every traced window under its root.
        let merge = trace
            .spans
            .iter()
            .find(|s| s.name == "merge")
            .unwrap_or_else(|| panic!("sub-window {} merged", trace.subwindow));
        assert_eq!(merge.parent, Some(trace.root));
    }
    assert!(
        rounds_seen >= report.traces.len(),
        "at 30% loss with one forced drop per sub-window, every session \
         retransmits at least once"
    );
}

#[test]
fn critical_path_attributes_at_least_95_percent_of_wall_time() {
    let report = capture(&lossy_cfg());
    for trace in &report.traces {
        let cp = &trace.critical_path;
        assert!(
            cp.attributed_permille >= 950,
            "sub-window {}: only {}‰ of {}ns wall attributed",
            trace.subwindow,
            cp.attributed_permille,
            cp.wall_ns
        );
        assert!(!cp.chain.is_empty());
        assert_eq!(cp.chain[0], "window");
    }
    // The deterministically escalated session blows the 10ms SLO; the
    // ordinary sessions stay inside it.
    let violated = report
        .traces
        .iter()
        .filter(|t| t.critical_path.slo_violated)
        .count();
    assert_eq!(violated, 1, "exactly the escalated window violates the SLO");
}

#[test]
fn same_seed_runs_serialize_byte_identically_and_validate() {
    let cfg = lossy_cfg();
    let a = capture(&cfg).to_json();
    let b = capture(&cfg).to_json();
    assert_eq!(a, b, "same seed ⇒ byte-identical trace report");
    let doc = ow_obs::json::parse(&a).expect("report parses");
    validate_trace_json(&doc).expect("report passes the span schema");
}

#[test]
fn traces_are_disjoint_per_window_and_cover_all_collected_windows() {
    let cfg = lossy_cfg();
    let out = obs_smoke::run(&cfg);
    let report = TraceReport::capture("trace_e2e", out.obs.tracer(), None);
    let mut seen: HashMap<u32, u64> = HashMap::new();
    let mut all_ids: HashSet<u64> = HashSet::new();
    for trace in &report.traces {
        assert!(
            seen.insert(trace.subwindow, trace.trace_id).is_none(),
            "one trace per sub-window"
        );
        for span in &trace.spans {
            assert!(
                all_ids.insert(span.id),
                "span ids are globally unique across traces"
            );
        }
    }
    // Every session the controller completed has a trace.
    assert_eq!(
        report.traces.len() as u64,
        out.obs
            .snapshot()
            .value("ow_controller_sessions_total", &[]),
        "every completed session left a span tree"
    );
}
