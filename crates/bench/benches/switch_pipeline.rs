//! Per-packet cost of the composed switch pipeline (signal engine →
//! consistency stamp → state update → flowkey tracking), the model's
//! equivalent of the data plane's line-rate path, plus the periodic
//! collect-and-reset amortised over the stream.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use ow_common::flowkey::KeyKind;
use ow_common::packet::{Packet, TcpFlags};
use ow_common::time::{Duration, Instant};
use ow_sketch::{CountMin, MvSketch};
use ow_switch::app::FrequencyApp;
use ow_switch::signal::WindowSignal;
use ow_switch::SwitchConfig;
use ow_verify::verified_switch;

const N: usize = 10_000;

fn packets() -> Vec<Packet> {
    (0..N)
        .map(|i| {
            Packet::tcp(
                Instant::from_micros(i as u64 * 10),
                (i % 997) as u32 + 1,
                9,
                1,
                80,
                TcpFlags::ack(),
                64,
            )
        })
        .collect()
}

fn config() -> SwitchConfig {
    SwitchConfig {
        signal: WindowSignal::Timeout(Duration::from_millis(10)),
        fk_capacity: 2_048,
        expected_flows: 4_096,
        ..SwitchConfig::default()
    }
}

fn bench_switch(c: &mut Criterion) {
    let pkts = packets();
    let mut group = c.benchmark_group("switch_pipeline");
    group.throughput(Throughput::Elements(N as u64));
    group.sample_size(20);

    group.bench_function("count_min_app", |b| {
        b.iter_batched(
            || {
                let app = |s| FrequencyApp::new(CountMin::new(2, 8_192, s), KeyKind::SrcIp, false);
                verified_switch(config(), app(1), app(2)).expect("pipeline verifies")
            },
            |mut sw| {
                for p in &pkts {
                    std::hint::black_box(sw.process(*p));
                }
                std::hint::black_box(sw.flush());
            },
            criterion::BatchSize::LargeInput,
        );
    });

    group.bench_function("mv_sketch_app", |b| {
        b.iter_batched(
            || {
                let app = |s| FrequencyApp::new(MvSketch::new(2, 2_048, s), KeyKind::SrcIp, false);
                verified_switch(config(), app(1), app(2)).expect("pipeline verifies")
            },
            |mut sw| {
                for p in &pkts {
                    std::hint::black_box(sw.process(*p));
                }
                std::hint::black_box(sw.flush());
            },
            criterion::BatchSize::LargeInput,
        );
    });
    group.finish();
}

criterion_group!(benches, bench_switch);
criterion_main!(benches);
