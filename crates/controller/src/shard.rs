//! The sharded merge table: `N` disjoint [`MergeTable`] slices behind
//! one flow-key-hash partition.
//!
//! The single-threaded merge path caps the controller at one core's
//! insert rate — nowhere near the millions of flows per second the
//! north star requires. Sharding splits every incoming batch by
//! [`ShardPartition`] (a fixed multiply-shift reduction of the flow
//! key), so each shard owns a *disjoint* key slice and shards never
//! contend on a key.
//!
//! Two properties make the split invisible to queries:
//!
//! 1. **Key locality** — one key's records always land on the same
//!    shard, so the per-key merge fold runs in the same order it would
//!    in a single table.
//! 2. **Synchronized eviction** — every shard receives every sub-window
//!    batch (possibly empty), so `evict_oldest` retires the same
//!    sub-window everywhere and the sliding-window span never skews
//!    between shards.
//!
//! The deterministic final fold ([`ShardedMergeTable::snapshot`] /
//! [`ShardedMergeTable::flows_over`]) sorts by packed key, making the
//! merged output **byte-identical** to the single-shard baseline at any
//! shard count — the property the proptests in `tests/props.rs` pin
//! down and `ow-bench`'s `bench_cr` re-asserts while measuring.

use ow_common::afr::{AttrValue, FlowRecord};
use ow_common::block::{RecordBlock, ShardScatter, DEFAULT_BLOCK_CAPACITY};
use ow_common::flowkey::FlowKey;
use ow_common::hash::ShardPartition;

use crate::table::MergeTable;

/// `N` disjoint merge-table slices behind one key partition.
#[derive(Debug, Clone)]
pub struct ShardedMergeTable {
    shards: Vec<MergeTable>,
    partition: ShardPartition,
}

impl ShardedMergeTable {
    /// A table split over `shards` slices (≥ 1).
    pub fn new(shards: usize) -> ShardedMergeTable {
        let partition = ShardPartition::new(shards);
        ShardedMergeTable {
            shards: (0..shards).map(|_| MergeTable::new()).collect(),
            partition,
        }
    }

    /// The key → shard mapping in force.
    pub fn partition(&self) -> ShardPartition {
        self.partition
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// One shard's slice (for inspection and per-worker ownership).
    pub fn shard(&self, i: usize) -> &MergeTable {
        &self.shards[i]
    }

    /// Split one sub-window's batch across the shards. Every shard gets
    /// an entry for `subwindow` — empty where it owns none of the keys —
    /// so evictions stay synchronized. Internally this is the block
    /// path: the batch is scattered into capacity-bounded
    /// [`RecordBlock`]s and folded with [`MergeTable::insert_block`].
    pub fn insert_batch(&mut self, subwindow: u32, afrs: Vec<FlowRecord>) {
        let mut scatter = ShardScatter::new(self.partition, DEFAULT_BLOCK_CAPACITY);
        let shards = &mut self.shards;
        scatter.scatter_batch(subwindow, &afrs, |shard, block, open| {
            shards[shard].insert_block(block, open);
        });
    }

    /// Scatter one incoming [`RecordBlock`] across the shards. Like
    /// [`ShardedMergeTable::insert_batch`], every shard opens an entry
    /// for the block's sub-window so evictions stay synchronized.
    pub fn insert_block(&mut self, block: &RecordBlock) {
        let mut scatter = ShardScatter::new(self.partition, DEFAULT_BLOCK_CAPACITY);
        let shards = &mut self.shards;
        scatter.begin(block.subwindow());
        scatter.push_block(block, |shard, b, open| shards[shard].insert_block(b, open));
        scatter.seal(|shard, b, open| shards[shard].insert_block(b, open));
    }

    /// Evict the oldest sub-window from every shard (sliding-window
    /// advance). All shards agree on the oldest because every insert
    /// touches every shard.
    pub fn evict_oldest(&mut self) -> Option<u32> {
        let mut evicted = None;
        for shard in &mut self.shards {
            let sw = shard.evict_oldest();
            debug_assert!(
                evicted.is_none() || sw == evicted,
                "shards evicted different sub-windows: {evicted:?} vs {sw:?}"
            );
            evicted = sw;
        }
        evicted
    }

    /// Sub-windows currently merged (oldest first) — identical on every
    /// shard, so shard 0 answers.
    pub fn subwindows(&self) -> Vec<u32> {
        self.shards[0].subwindows()
    }

    /// Total flows in the merged view across all shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(MergeTable::len).sum()
    }

    /// Whether no flow is merged anywhere.
    pub fn is_empty(&self) -> bool {
        self.shards.iter().all(MergeTable::is_empty)
    }

    /// The merged statistic for one flow, served by the owning shard.
    pub fn get(&self, key: &FlowKey) -> Option<AttrValue> {
        self.shards[self.partition.shard_of(key)].get(key)
    }

    /// Threshold query (O4) folded across shards, in canonical key
    /// order — the same answer the single-shard table gives.
    pub fn flows_over(&self, threshold: f64) -> Vec<(FlowKey, f64)> {
        let mut out: Vec<(FlowKey, f64)> = self
            .shards
            .iter()
            .flat_map(|s| s.flows_over(threshold))
            .collect();
        out.sort_by_key(|(k, _)| k.as_u128());
        out
    }

    /// The deterministic final fold: every shard's merged view,
    /// concatenated and sorted by packed key. Encoding this with
    /// `wire::encode_merged` yields bytes independent of the shard
    /// count.
    pub fn snapshot(&self) -> Vec<(FlowKey, AttrValue)> {
        let mut out: Vec<(FlowKey, AttrValue)> =
            self.shards.iter().flat_map(MergeTable::snapshot).collect();
        out.sort_by_key(|(k, _)| k.as_u128());
        out
    }

    /// Drop everything on every shard (tumbling-window release).
    pub fn clear(&mut self) {
        for shard in &mut self.shards {
            shard.clear();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::encode_merged;

    fn freq(i: u32, n: u64, sw: u32) -> FlowRecord {
        FlowRecord::frequency(FlowKey::src_ip(i), n, sw)
    }

    fn workload() -> Vec<(u32, Vec<FlowRecord>)> {
        (0..6u32)
            .map(|sw| {
                let batch = (0..40u32)
                    .map(|i| freq(i % 17, (sw * 40 + i) as u64 + 1, sw))
                    .collect();
                (sw, batch)
            })
            .collect()
    }

    fn run(shards: usize, evictions: usize) -> ShardedMergeTable {
        let mut t = ShardedMergeTable::new(shards);
        for (sw, batch) in workload() {
            t.insert_batch(sw, batch);
        }
        for _ in 0..evictions {
            t.evict_oldest();
        }
        t
    }

    #[test]
    fn sharded_matches_single_shard_byte_for_byte() {
        let baseline = run(1, 2);
        for shards in [2usize, 4, 8] {
            let t = run(shards, 2);
            assert_eq!(
                encode_merged(&t.snapshot()),
                encode_merged(&baseline.snapshot()),
                "{shards} shards diverged from baseline"
            );
            assert_eq!(t.flows_over(50.0), baseline.flows_over(50.0));
            assert_eq!(t.len(), baseline.len());
        }
    }

    #[test]
    fn block_scatter_matches_batch_insert() {
        let mut by_batch = ShardedMergeTable::new(4);
        let mut by_block = ShardedMergeTable::new(4);
        for (sw, batch) in workload() {
            by_batch.insert_batch(sw, batch.clone());
            by_block.insert_block(&RecordBlock::from_records(sw, &batch));
        }
        by_batch.evict_oldest();
        by_block.evict_oldest();
        assert_eq!(by_block.subwindows(), by_batch.subwindows());
        assert_eq!(
            encode_merged(&by_block.snapshot()),
            encode_merged(&by_batch.snapshot())
        );
    }

    #[test]
    fn every_shard_sees_every_subwindow() {
        let t = run(4, 0);
        for i in 0..4 {
            assert_eq!(t.shard(i).subwindows(), vec![0, 1, 2, 3, 4, 5]);
        }
        assert_eq!(t.subwindows(), vec![0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn eviction_is_synchronized_across_shards() {
        let mut t = run(4, 0);
        assert_eq!(t.evict_oldest(), Some(0));
        assert_eq!(t.subwindows(), vec![1, 2, 3, 4, 5]);
        for i in 0..4 {
            assert_eq!(t.shard(i).subwindows(), vec![1, 2, 3, 4, 5]);
        }
    }

    #[test]
    fn get_routes_to_the_owning_shard() {
        let t = run(8, 0);
        let single = run(1, 0);
        for i in 0..17u32 {
            let k = FlowKey::src_ip(i);
            assert_eq!(t.get(&k), single.get(&k), "key {i}");
        }
        assert_eq!(t.get(&FlowKey::src_ip(999)), None);
    }

    #[test]
    fn clear_empties_every_shard() {
        let mut t = run(3, 0);
        t.clear();
        assert!(t.is_empty());
        assert_eq!(t.len(), 0);
        assert!(t.subwindows().is_empty());
    }
}
