//! Live query-accuracy observatory: a streaming ground-truth oracle
//! plus a scorer that turns OmniWindow's *offline* evaluation metrics
//! (precision / recall / ARE per query per window) into *live*
//! telemetry.
//!
//! The paper's whole value proposition is measured in query accuracy,
//! yet transport-plane health says nothing about it: a fleet can merge
//! every window on time while an undersized sketch quietly evicts half
//! the heavy hitters. This module closes that gap:
//!
//! * [`AccuracyScorer::feed_truth`] — the feeder (netsim/fleet) hands
//!   the *exact* per-sub-window batch to the oracle **before** the
//!   lossy channel and before any sketch compression, keyed by the
//!   global sub-window id. Truth is aggregated per flow key with the
//!   [`AttrValue`] merge algebra — the same algebra the controller's
//!   merge tables and `ow-core`'s `ExactStat` scalarize.
//! * [`AccuracyScorer::score_block`] — the controller calls this at
//!   each window's `Merged` transition with the recovered
//!   [`RecordBlock`].
//!
//! Both calls are **off the hot path**: the feeder and the merge path
//! pay one `Arc` bump and a mutex push each — never an O(records)
//! copy, never a thread wakeup — onto the *shadow lane*, a deferred
//! work queue. The lane is applied in arrival order at the next
//! [`AccuracyScorer::quiesce`], so between quiesce points the
//! observatory costs the running pipeline nothing but the hand-off —
//! the fleet quiesces at its settle point, right before the health
//! engine reads the gauges, which is exactly when the scores are
//! consumed. The lane's FIFO order preserves the callers' causal
//! order — truth is fed before its window can merge or depart, so
//! ingestion always precedes scoring or dropping for a window. The
//! quiesce pass runs [`AccuracyScorer::score_window`]: it diffs the
//! merged answer against the oracle entry (consuming it), computes
//! the per-window precision/recall/ARE with the *identical*
//! [`ow_common::metrics`] helpers the offline
//! `evaluate::score_reports` path uses, and publishes running
//! aggregates as `ow_accuracy_{precision,recall,aare}_permille`
//! gauges — so live and offline scores agree to the permille by
//! construction. Anything that reads scores (the fleet's health tick,
//! benches, tests) calls [`AccuracyScorer::quiesce`] first.
//!
//! [`AccuracyScorer::window_departed`] handles crash churn: the
//! abandoned window's oracle entry is dropped so the map stays
//! bounded.
//!
//! Aggregates are recomputed from a `BTreeMap` keyed by sub-window on
//! every score, so the *final* gauge values are independent of the
//! order in which concurrent controller workers score their windows —
//! the property that keeps same-seed artifacts byte-identical.
//!
//! [`accuracy_health_rules`] closes the loop through the health
//! engine with the `OW-HEALTH-4xx` catalog (recall SLO burn, sketch
//! saturation, cardinality drift, and the critical accuracy collapse
//! that freezes the flight recorder).

use std::collections::{BTreeMap, HashMap, HashSet};
use std::sync::Arc;

use parking_lot::Mutex;
use serde::Serialize;

use ow_common::afr::{AttrValue, FlowRecord};
use ow_common::block::RecordBlock;
use ow_common::flowkey::FlowKey;
use ow_common::metrics;

use crate::health::{Cmp, MetricSelector, Rule, RuleSet, Severity, Signal};
use crate::journal::{Event, EventJournal};
use crate::registry::{Counter, Gauge, Histogram, MetricsRegistry};

/// Per-window recall error (‰) above which a window counts against the
/// recall SLO (the `OW-HEALTH-401` deadline). 64‰ keeps the log2
/// histogram bucket boundaries clean: a window with recall ≤ 936‰
/// records an error value whose bucket lies entirely past the deadline.
pub const RECALL_SLO_ERROR_PERMILLE: u64 = 64;

/// Error budget for `OW-HEALTH-401`: the allowed fraction of windows
/// (‰) that may violate the recall SLO before the burn rate exceeds 1×.
pub const RECALL_SLO_BUDGET_PERMILLE: u64 = 100;

/// Sketch occupancy (‰) above which `OW-HEALTH-402` flags saturation.
pub const SKETCH_SATURATION_PERMILLE: u64 = 900;

/// Merged/oracle distinct-key ratio (‰) below which `OW-HEALTH-403`
/// flags cardinality drift (the merged answer is missing keys the
/// oracle saw).
pub const CARDINALITY_DRIFT_PERMILLE: u64 = 900;

/// Live recall (‰) below which `OW-HEALTH-404` declares accuracy
/// collapse — critical, freezing the flight recorder.
pub const ACCURACY_COLLAPSE_PERMILLE: u64 = 500;

/// Configuration of the live accuracy query being scored.
#[derive(Debug, Clone)]
pub struct AccuracyConfig {
    /// Value of the `query` label on every `ow_accuracy_*` series.
    pub query: String,
    /// Scalar threshold a key must reach ([`AttrValue::scalar`]) to be
    /// *reported* by the query, on both the merged and the oracle side
    /// (the heavy-hitter detection threshold). Keys below it still
    /// contribute to the ARE estimate pairs.
    pub threshold: f64,
}

impl Default for AccuracyConfig {
    fn default() -> AccuracyConfig {
        AccuracyConfig {
            query: "heavy_hitter".to_string(),
            threshold: 1.0,
        }
    }
}

/// One scored window, with enough detail to replay the offline scoring
/// path (`evaluate::score_reports` / `score_estimates`) over the same
/// data — the live-vs-offline agreement gate.
#[derive(Debug, Clone)]
pub struct WindowScore {
    /// The scored (global) sub-window id.
    pub subwindow: u32,
    /// Merged scalar per key, ascending key order (all keys, not just
    /// reported ones — the mechanism's estimate map).
    pub merged: Vec<(FlowKey, f64)>,
    /// Oracle scalar per key, ascending key order (the reference's
    /// estimate map).
    pub truth: Vec<(FlowKey, f64)>,
    /// Per-window precision of the thresholded report sets.
    pub precision: f64,
    /// Per-window recall of the thresholded report sets.
    pub recall: f64,
    /// Per-window average relative error over truth keys.
    pub are: f64,
    /// True positives of the thresholded report sets.
    pub tp: usize,
    /// False positives.
    pub fp: usize,
    /// False negatives.
    pub fn_: usize,
}

/// One scored window in serializable, integer-only form.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct WindowScoreBrief {
    /// The scored sub-window id.
    pub subwindow: u32,
    /// Distinct keys in the oracle entry.
    pub truth_keys: usize,
    /// Distinct keys in the merged answer.
    pub merged_keys: usize,
    /// Per-window precision, permille.
    pub precision_permille: u64,
    /// Per-window recall, permille.
    pub recall_permille: u64,
    /// Per-window average relative error, permille.
    pub are_permille: u64,
}

/// Deterministic snapshot of everything the scorer has seen: the
/// aggregates mirrored by the gauges plus the per-window briefs in
/// sub-window order. Serialized into `results/accuracy_smoke.json`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct AccuracySummary {
    /// The scored query's label.
    pub query: String,
    /// Windows scored so far.
    pub windows_scored: u64,
    /// Mean per-window precision, permille (the live gauge value).
    pub precision_permille: u64,
    /// Mean per-window recall, permille.
    pub recall_permille: u64,
    /// Mean per-window ARE, permille.
    pub aare_permille: u64,
    /// Per-window scores, ascending sub-window order.
    pub windows: Vec<WindowScoreBrief>,
}

/// Round a fraction to permille the way every gate in this repo does.
fn permille(x: f64) -> u64 {
    (x * 1000.0).round() as u64
}

/// Aggregate `(key, attr)` rows per key with the [`AttrValue`] merge
/// algebra into a hash map — O(1) per row, so the callers can bulk-sort
/// the (much smaller) distinct-key set afterwards.
///
/// # Panics
/// Panics when one key carries two different attribute patterns — the
/// same hard failure the merge tables raise.
fn aggregate_records(
    rows: impl Iterator<Item = (FlowKey, AttrValue)>,
    capacity: usize,
) -> HashMap<u128, (FlowKey, AttrValue)> {
    let mut agg: HashMap<u128, (FlowKey, AttrValue)> = HashMap::with_capacity(capacity);
    for (key, attr) in rows {
        match agg.entry(key.as_u128()) {
            std::collections::hash_map::Entry::Occupied(mut e) => {
                e.get_mut()
                    .1
                    .merge(&attr)
                    .expect("one merge kind per key in an aggregated batch");
            }
            std::collections::hash_map::Entry::Vacant(e) => {
                e.insert((key, attr));
            }
        }
    }
    agg
}

/// Work queued on the shadow lane. Payloads are shared, not cloned:
/// on a box where the pipeline is memory-bandwidth bound, an
/// O(records) copy on the hot path would cost more than the merge it
/// observes.
#[derive(Debug)]
enum ScoreMsg {
    /// One sub-window's exact pre-loss records for the oracle.
    Truth(u32, Arc<[FlowRecord]>),
    /// A merged window's block to score.
    Block(Arc<RecordBlock>),
    /// A departed window whose oracle entry must be dropped.
    Departed(u32),
}

/// One sub-window's exact truth, aggregated per flow key. Keyed by the
/// packed key so iteration (and therefore scoring) is deterministic.
type TruthTable = BTreeMap<u128, (FlowKey, AttrValue)>;

/// The streaming ground-truth oracle plus scorer. Built by
/// [`crate::Obs::install_accuracy`]; every clone of the handle sees it.
#[derive(Debug)]
pub struct AccuracyScorer {
    cfg: AccuracyConfig,
    journal: Arc<EventJournal>,
    /// The shadow lane: work deferred in arrival order, applied by the
    /// next [`AccuracyScorer::quiesce`].
    backlog: Mutex<Vec<ScoreMsg>>,
    /// Sub-windows whose truth is on the lane or held by the oracle —
    /// the synchronous view [`AccuracyScorer::score_block`] consults,
    /// maintained on the caller side so the answer does not wait on
    /// the shadow lane.
    fed: Mutex<HashSet<u32>>,
    /// Exact per-sub-window truth, aggregated per key; consumed at
    /// scoring (or dropped at departure). Written by the quiesce pass
    /// (and by direct [`AccuracyScorer::score_window`] callers).
    oracle: Mutex<HashMap<u32, TruthTable>>,
    /// Every scored window, keyed by sub-window so aggregate recompute
    /// order is deterministic regardless of scoring order.
    scores: Mutex<BTreeMap<u32, WindowScore>>,
    precision_g: Gauge,
    recall_g: Gauge,
    aare_g: Gauge,
    windows_c: Counter,
    truth_keys_c: Counter,
    merged_keys_c: Counter,
    departed_c: Counter,
    recall_err_h: Histogram,
}

impl AccuracyScorer {
    /// Build a scorer over a registry + journal pair, registering the
    /// `ow_accuracy_*` series. The precision/recall gauges start at
    /// 1000‰ ("perfect until a window proves otherwise") so alert
    /// rules evaluated before the first scored window stay silent.
    pub fn new(
        cfg: AccuracyConfig,
        registry: Arc<MetricsRegistry>,
        journal: Arc<EventJournal>,
    ) -> Arc<AccuracyScorer> {
        let labels = [("query", cfg.query.as_str())];
        let scorer = AccuracyScorer {
            journal,
            backlog: Mutex::new(Vec::new()),
            fed: Mutex::new(HashSet::new()),
            oracle: Mutex::new(HashMap::new()),
            scores: Mutex::new(BTreeMap::new()),
            precision_g: registry.gauge("ow_accuracy_precision_permille", &labels),
            recall_g: registry.gauge("ow_accuracy_recall_permille", &labels),
            aare_g: registry.gauge("ow_accuracy_aare_permille", &labels),
            windows_c: registry.counter("ow_accuracy_windows_scored_total", &labels),
            truth_keys_c: registry.counter("ow_accuracy_truth_keys_total", &labels),
            merged_keys_c: registry.counter("ow_accuracy_merged_keys_total", &labels),
            departed_c: registry.counter("ow_accuracy_oracle_departed_total", &labels),
            recall_err_h: registry.histogram("ow_accuracy_recall_error_permille", &labels),
            cfg,
        };
        scorer.precision_g.set(1000);
        scorer.recall_g.set(1000);
        scorer.aare_g.set(0);
        Arc::new(scorer)
    }

    /// Apply one queued shadow-lane message (runs on whichever thread
    /// called [`AccuracyScorer::quiesce`]).
    fn apply(&self, msg: ScoreMsg) {
        match msg {
            ScoreMsg::Truth(subwindow, records) => self.ingest_truth(subwindow, &records),
            ScoreMsg::Block(block) => {
                self.score_window(&block);
            }
            ScoreMsg::Departed(subwindow) => self.drop_departed(subwindow),
        }
    }

    /// Defer a message onto the shadow lane — one mutex push, no
    /// thread wakeup (a channel send would make the consumer runnable
    /// and cost the pipeline a context switch per hand-off).
    fn send(&self, msg: ScoreMsg) -> bool {
        self.backlog.lock().push(msg);
        true
    }

    /// Hand a merged window's block to the shadow scoring thread.
    /// Returns `true` when the oracle was fed truth for the block's
    /// sub-window (the window *will* be scored), `false` for windows
    /// the oracle never saw. The merge path pays one `Arc` bump and a
    /// mutex push — never an O(records) copy; call
    /// [`AccuracyScorer::quiesce`] before reading scores that must
    /// include this window.
    pub fn score_block(&self, block: &Arc<RecordBlock>) -> bool {
        // Consult (and consume) the synchronous fed-set — the oracle
        // map itself may still trail behind on the shadow thread.
        if !self.fed.lock().remove(&block.subwindow()) {
            return false;
        }
        self.send(ScoreMsg::Block(Arc::clone(block)))
    }

    /// Apply everything handed to the shadow lane —
    /// [`AccuracyScorer::feed_truth`], [`AccuracyScorer::score_block`],
    /// [`AccuracyScorer::window_departed`] — before this call, in
    /// arrival order, on the calling thread. The fleet calls this at
    /// its settle point, before the health engine reads the accuracy
    /// gauges.
    pub fn quiesce(&self) {
        // Take the backlog out from under the lock first: applying a
        // block can journal and recompute aggregates, and hand-offs
        // arriving meanwhile must not deadlock or interleave.
        let backlog = std::mem::take(&mut *self.backlog.lock());
        for msg in backlog {
            self.apply(msg);
        }
    }

    /// The scored query's configuration.
    pub fn config(&self) -> &AccuracyConfig {
        &self.cfg
    }

    /// Feed the oracle one sub-window's *exact* records — called by the
    /// feeder before loss and before any sketch compression, alongside
    /// the real announce path. Repeated feeds for the same sub-window
    /// aggregate (multi-batch feeders). The feeder pays one buffer
    /// copy (into the shared allocation) and a mutex push;
    /// aggregation happens on the quiesce pass, so call
    /// [`AccuracyScorer::quiesce`] before reading oracle state that
    /// must include this feed. Feeders that already hold (or can
    /// pre-build) a shared slice use
    /// [`AccuracyScorer::feed_truth_shared`] and skip the copy too.
    pub fn feed_truth(&self, subwindow: u32, records: &[FlowRecord]) {
        self.feed_truth_shared(subwindow, records.into());
    }

    /// Zero-copy variant of [`AccuracyScorer::feed_truth`]: the feeder
    /// hands a shared slice, paying one `Arc` bump and a mutex push —
    /// nothing O(records) on its hot path.
    pub fn feed_truth_shared(&self, subwindow: u32, records: Arc<[FlowRecord]>) {
        self.fed.lock().insert(subwindow);
        self.send(ScoreMsg::Truth(subwindow, records));
    }

    /// Shadow-thread half of [`AccuracyScorer::feed_truth`]: aggregate
    /// the batch into the oracle entry.
    ///
    /// # Panics
    /// Panics if a key is fed two different attribute patterns — the
    /// same hard failure the merge tables raise.
    fn ingest_truth(&self, subwindow: u32, records: &[FlowRecord]) {
        // Aggregate the batch hash-first (O(1) per record, outside the
        // oracle lock), then bulk-build the ordered entry — an order of
        // magnitude cheaper than per-record ordered inserts.
        let agg = aggregate_records(records.iter().map(|r| (r.key, r.attr)), records.len());
        let mut oracle = self.oracle.lock();
        match oracle.entry(subwindow) {
            std::collections::hash_map::Entry::Vacant(e) => {
                e.insert(agg.into_iter().collect());
            }
            std::collections::hash_map::Entry::Occupied(mut e) => {
                let entry = e.get_mut();
                for (k, (key, attr)) in agg {
                    match entry.entry(k) {
                        std::collections::btree_map::Entry::Occupied(mut e) => {
                            e.get_mut()
                                .1
                                .merge(&attr)
                                .expect("one merge kind per key in the oracle feed");
                        }
                        std::collections::btree_map::Entry::Vacant(e) => {
                            e.insert((key, attr));
                        }
                    }
                }
            }
        }
    }

    /// Sub-windows currently held by the oracle (fed, not yet scored).
    /// Shadow-lane state: [`AccuracyScorer::quiesce`] first for a
    /// settled answer.
    pub fn pending_windows(&self) -> usize {
        self.oracle.lock().len()
    }

    /// Score one window's merged answer at its `Merged` transition:
    /// consume the oracle entry, diff, publish. Returns the per-window
    /// score, or `None` when the oracle was never fed this sub-window
    /// (unobserved windows are skipped, not scored as empty). Runs on
    /// the shadow thread for [`AccuracyScorer::score_block`] callers;
    /// direct callers must [`AccuracyScorer::quiesce`] after
    /// [`AccuracyScorer::feed_truth`] so the oracle entry has landed.
    pub fn score_window(&self, block: &RecordBlock) -> Option<WindowScoreBrief> {
        let subwindow = block.subwindow();
        let truth = self.oracle.lock().remove(&subwindow)?;

        // Aggregate the merged rows per key with the same merge algebra
        // the shard tables use — hash-first, then bulk-build ordered.
        let merged: TruthTable =
            aggregate_records(block.iter().map(|r| (r.key, r.attr)), block.len())
                .into_iter()
                .collect();

        let merged_scalars: Vec<(FlowKey, f64)> =
            merged.values().map(|(k, v)| (*k, v.scalar())).collect();
        let truth_scalars: Vec<(FlowKey, f64)> =
            truth.values().map(|(k, v)| (*k, v.scalar())).collect();

        // The thresholded report sets, then the exact helpers the
        // offline scorer uses.
        let reported: HashSet<FlowKey> = merged_scalars
            .iter()
            .filter(|(_, s)| *s >= self.cfg.threshold)
            .map(|(k, _)| *k)
            .collect();
        let truth_set: HashSet<FlowKey> = truth_scalars
            .iter()
            .filter(|(_, s)| *s >= self.cfg.threshold)
            .map(|(k, _)| *k)
            .collect();
        let pr = metrics::precision_recall(&reported, &truth_set);
        let pairs: Vec<(f64, f64)> = truth_scalars
            .iter()
            .filter(|(_, t)| *t > 0.0)
            .map(|(k, t)| {
                let est = merged
                    .get(&k.as_u128())
                    .map(|(_, v)| v.scalar())
                    .unwrap_or(0.0);
                (est, *t)
            })
            .collect();
        let are = metrics::average_relative_error(&pairs);

        let score = WindowScore {
            subwindow,
            merged: merged_scalars,
            truth: truth_scalars,
            precision: pr.precision,
            recall: pr.recall,
            are,
            tp: pr.tp,
            fp: pr.fp,
            fn_: pr.fn_,
        };
        let brief = WindowScoreBrief {
            subwindow,
            truth_keys: truth.len(),
            merged_keys: merged.len(),
            precision_permille: permille(pr.precision),
            recall_permille: permille(pr.recall),
            are_permille: permille(are),
        };

        // Insert, then recompute the aggregates over the *ordered* map:
        // the final gauge values come out identical no matter which
        // worker scored which window first.
        {
            let mut scores = self.scores.lock();
            scores.insert(subwindow, score);
            let n = scores.len() as f64;
            let precision = scores.values().map(|w| w.precision).sum::<f64>() / n;
            let recall = scores.values().map(|w| w.recall).sum::<f64>() / n;
            let aare = scores.values().map(|w| w.are).sum::<f64>() / n;
            self.precision_g.set(permille(precision));
            self.recall_g.set(permille(recall));
            self.aare_g.set(permille(aare));
        }
        self.windows_c.inc();
        // Merged before truth: a health snapshot racing these two adds
        // then sees a cardinality ratio biased *high*, so the `Below`
        // drift rule (OW-HEALTH-403) can never false-fire mid-update.
        self.merged_keys_c.add(brief.merged_keys as u64);
        self.truth_keys_c.add(brief.truth_keys as u64);
        self.recall_err_h
            .record_value(1000 - brief.recall_permille.min(1000));
        self.journal.record(
            Event::new(
                "accuracy_scored",
                format!(
                    "query '{}': precision {}‰ recall {}‰ are {}‰ ({} truth keys, {} merged)",
                    self.cfg.query,
                    brief.precision_permille,
                    brief.recall_permille,
                    brief.are_permille,
                    brief.truth_keys,
                    brief.merged_keys,
                ),
            )
            .subwindow(subwindow)
            .phase("merged"),
        );
        Some(brief)
    }

    /// Drop the oracle entry of a window abandoned through the `Depart`
    /// path — its merged answer will never arrive, and the oracle map
    /// must not grow without bound under crash churn. The drop rides
    /// the shadow lane so it cannot outrun the window's own truth feed.
    pub fn window_departed(&self, subwindow: u32) {
        self.fed.lock().remove(&subwindow);
        self.send(ScoreMsg::Departed(subwindow));
    }

    /// Shadow-thread half of [`AccuracyScorer::window_departed`].
    fn drop_departed(&self, subwindow: u32) {
        if self.oracle.lock().remove(&subwindow).is_some() {
            self.departed_c.inc();
        }
    }

    /// Every scored window, ascending sub-window order.
    pub fn windows(&self) -> Vec<WindowScore> {
        self.scores.lock().values().cloned().collect()
    }

    /// The deterministic summary (aggregates + per-window briefs).
    pub fn summary(&self) -> AccuracySummary {
        let scores = self.scores.lock();
        let n = scores.len() as f64;
        let (precision, recall, aare) = if scores.is_empty() {
            (1.0, 1.0, 0.0)
        } else {
            (
                scores.values().map(|w| w.precision).sum::<f64>() / n,
                scores.values().map(|w| w.recall).sum::<f64>() / n,
                scores.values().map(|w| w.are).sum::<f64>() / n,
            )
        };
        AccuracySummary {
            query: self.cfg.query.clone(),
            windows_scored: scores.len() as u64,
            precision_permille: permille(precision),
            recall_permille: permille(recall),
            aare_permille: permille(aare),
            windows: scores
                .values()
                .map(|w| WindowScoreBrief {
                    subwindow: w.subwindow,
                    truth_keys: w.truth.len(),
                    merged_keys: w.merged.len(),
                    precision_permille: permille(w.precision),
                    recall_permille: permille(w.recall),
                    are_permille: permille(w.are),
                })
                .collect(),
        }
    }
}

/// The accuracy rule catalog (`OW-HEALTH-4xx`), evaluated over the
/// `ow_accuracy_*` and `ow_sketch_*` series at the run's settle tick.
///
/// | code | rule | signal |
/// |------|------|--------|
/// | `OW-HEALTH-401` | `recall_slo_burn` | burn rate of per-window recall errors ≥ [`RECALL_SLO_ERROR_PERMILLE`]‰ against a [`RECALL_SLO_BUDGET_PERMILLE`]‰ budget (conservative straddling-bucket undercount — see [`Signal::BurnRatePermille`]) |
/// | `OW-HEALTH-402` | `sketch_saturation` | per-sketch occupancy above [`SKETCH_SATURATION_PERMILLE`]‰ |
/// | `OW-HEALTH-403` | `cardinality_drift` | merged/oracle distinct-key ratio below [`CARDINALITY_DRIFT_PERMILLE`]‰ |
/// | `OW-HEALTH-404` | `accuracy_collapse` | live recall below [`ACCURACY_COLLAPSE_PERMILLE`]‰ (**critical** — freezes the flight recorder) |
pub fn accuracy_health_rules() -> RuleSet {
    RuleSet::new(vec![
        Rule::new(
            "OW-HEALTH-401",
            "recall_slo_burn",
            MetricSelector::new("ow_accuracy_recall_error_permille", &[]),
            // The deadline is a recall-error permille, not a latency:
            // the burn-rate signal only reads bucket bounds, so any
            // monotone unit recorded into a log2 histogram works. Its
            // straddling-bucket undercount (documented on the signal)
            // means windows with error in (32, 64] never count — the
            // rule errs toward silence, never toward a false page.
            Signal::BurnRatePermille {
                deadline_ns: RECALL_SLO_ERROR_PERMILLE,
                budget_permille: RECALL_SLO_BUDGET_PERMILLE,
            },
            Cmp::Above,
            1000,
            Severity::Warning,
        )
        .entity("accuracy"),
        Rule::new(
            "OW-HEALTH-402",
            "sketch_saturation",
            MetricSelector::new("ow_sketch_occupancy_permille", &[]),
            Signal::Value,
            Cmp::Above,
            SKETCH_SATURATION_PERMILLE,
            Severity::Warning,
        )
        .group_by("sketch")
        .entity("sketch"),
        Rule::new(
            "OW-HEALTH-403",
            "cardinality_drift",
            MetricSelector::new("ow_accuracy_merged_keys_total", &[]),
            Signal::RatioPermille {
                denominator: MetricSelector::new("ow_accuracy_truth_keys_total", &[]),
            },
            Cmp::Below,
            CARDINALITY_DRIFT_PERMILLE,
            Severity::Warning,
        )
        .entity("accuracy"),
        Rule::new(
            "OW-HEALTH-404",
            "accuracy_collapse",
            MetricSelector::new("ow_accuracy_recall_permille", &[]),
            Signal::Value,
            Cmp::Below,
            ACCURACY_COLLAPSE_PERMILLE,
            Severity::Critical,
        )
        .entity("accuracy"),
    ])
    .expect("accuracy rule catalog validates")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{FlightRecorderConfig, Obs};
    use ow_common::time::Instant;

    fn freq(key: u32, count: u64, sw: u32) -> FlowRecord {
        FlowRecord::frequency(FlowKey::src_ip(key), count, sw)
    }

    #[test]
    fn perfect_merge_scores_perfectly() {
        let obs = Obs::new();
        let acc = obs.install_accuracy(AccuracyConfig::default());
        let batch = vec![freq(1, 60, 7), freq(2, 80, 7), freq(1, 40, 7)];
        acc.feed_truth(7, &batch);
        acc.quiesce();
        let brief = acc
            .score_window(&RecordBlock::from_records(7, &batch))
            .expect("fed window scores");
        assert_eq!(brief.precision_permille, 1000);
        assert_eq!(brief.recall_permille, 1000);
        assert_eq!(brief.are_permille, 0);
        assert_eq!(brief.truth_keys, 2);
        let snap = obs.snapshot();
        let q = [("query", "heavy_hitter")];
        assert_eq!(snap.value("ow_accuracy_precision_permille", &q), 1000);
        assert_eq!(snap.value("ow_accuracy_recall_permille", &q), 1000);
        assert_eq!(snap.value("ow_accuracy_aare_permille", &q), 0);
        assert_eq!(snap.value("ow_accuracy_windows_scored_total", &q), 1);
        // A perfect window records recall error 0.
        let h = snap
            .get("ow_accuracy_recall_error_permille", &q)
            .unwrap()
            .histogram
            .as_ref()
            .unwrap();
        assert_eq!(h.count, 1);
        assert_eq!(h.sum, 0);
    }

    #[test]
    fn missing_and_spurious_keys_degrade_the_scores() {
        let obs = Obs::new();
        let acc = obs.install_accuracy(AccuracyConfig::default());
        acc.feed_truth(1, &[freq(1, 100, 1), freq(2, 50, 1)]);
        acc.quiesce();
        // The merged answer lost key 2 and invented key 9.
        let brief = acc
            .score_window(&RecordBlock::from_records(
                1,
                &[freq(1, 100, 1), freq(9, 10, 1)],
            ))
            .unwrap();
        assert_eq!(brief.precision_permille, 500); // 1 of 2 reported is real
        assert_eq!(brief.recall_permille, 500); // 1 of 2 truths found
                                                // ARE: key 1 exact (0), key 2 missing (|0-50|/50 = 1) → 0.5.
        assert_eq!(brief.are_permille, 500);
        let ws = &acc.windows()[0];
        assert_eq!((ws.tp, ws.fp, ws.fn_), (1, 1, 1));
    }

    #[test]
    fn aggregates_average_over_windows_in_subwindow_order() {
        let obs = Obs::new();
        let acc = obs.install_accuracy(AccuracyConfig::default());
        // Score out of order: window 5 first, then window 2.
        acc.feed_truth(5, &[freq(1, 10, 5), freq(2, 10, 5)]);
        acc.feed_truth(2, &[freq(3, 10, 2)]);
        acc.quiesce();
        acc.score_window(&RecordBlock::from_records(5, &[freq(1, 10, 5)]))
            .unwrap();
        acc.score_window(&RecordBlock::from_records(2, &[freq(3, 10, 2)]))
            .unwrap();
        let summary = acc.summary();
        assert_eq!(summary.windows_scored, 2);
        // Mean of 1000 and 500.
        assert_eq!(summary.recall_permille, 750);
        assert_eq!(summary.precision_permille, 1000);
        // Briefs come back in sub-window order regardless of scoring order.
        let sws: Vec<u32> = summary.windows.iter().map(|w| w.subwindow).collect();
        assert_eq!(sws, vec![2, 5]);
        let snap = obs.snapshot();
        let q = [("query", "heavy_hitter")];
        assert_eq!(snap.value("ow_accuracy_recall_permille", &q), 750);
    }

    #[test]
    fn unfed_windows_are_skipped_and_departures_drop_the_oracle_entry() {
        let obs = Obs::new();
        let acc = obs.install_accuracy(AccuracyConfig::default());
        assert!(acc
            .score_window(&RecordBlock::from_records(3, &[freq(1, 1, 3)]))
            .is_none());
        acc.feed_truth(4, &[freq(1, 1, 4)]);
        acc.quiesce();
        assert_eq!(acc.pending_windows(), 1);
        acc.window_departed(4);
        acc.quiesce();
        assert_eq!(acc.pending_windows(), 0);
        // A second departure of the same window is a no-op.
        acc.window_departed(4);
        acc.quiesce();
        let snap = obs.snapshot();
        let q = [("query", "heavy_hitter")];
        assert_eq!(snap.value("ow_accuracy_oracle_departed_total", &q), 1);
    }

    #[test]
    fn collapse_rule_fires_and_freezes_only_on_bad_recall() {
        let obs = Obs::new();
        let engine = obs.install_health(accuracy_health_rules(), FlightRecorderConfig::default());
        let acc = obs.install_accuracy(AccuracyConfig::default());
        // Perfect window: every 4xx rule stays silent.
        let batch = vec![freq(1, 10, 0), freq(2, 10, 0)];
        acc.feed_truth(0, &batch);
        acc.quiesce();
        acc.score_window(&RecordBlock::from_records(0, &batch));
        engine.tick(Instant::from_millis(1));
        assert!(engine.timeline().is_empty(), "{:?}", engine.timeline());
        assert!(!engine.frozen());
        // Two collapsed windows (none of the truths recovered, only a
        // spurious key): the aggregate recall drops to 333‰, so
        // 401 + 403 + 404 fire and the critical 404 freezes the box.
        for sw in [1u32, 2] {
            let truth: Vec<FlowRecord> = (0..4).map(|k| freq(k, 10, sw)).collect();
            acc.feed_truth(sw, &truth);
            acc.quiesce();
            acc.score_window(&RecordBlock::from_records(sw, &[freq(9, 10, sw)]));
        }
        engine.tick(Instant::from_millis(2));
        let fired: Vec<String> = engine
            .timeline()
            .iter()
            .filter(|a| a.state == "fired")
            .map(|a| a.code.clone())
            .collect();
        let fired: Vec<&str> = fired.iter().map(String::as_str).collect();
        assert!(fired.contains(&"OW-HEALTH-401"), "{fired:?}");
        assert!(fired.contains(&"OW-HEALTH-403"), "{fired:?}");
        assert!(fired.contains(&"OW-HEALTH-404"), "{fired:?}");
        assert!(engine.frozen(), "accuracy collapse freezes the recorder");
        let dump = engine.flight_dump("unit").expect("frozen");
        assert!(dump.freeze_reason.contains("OW-HEALTH-404"));
    }
}
