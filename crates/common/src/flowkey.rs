//! Flow keys — the unit of aggregation for all telemetry applications.
//!
//! The paper (§4.1) requires each telemetry application to declare its flow
//! key explicitly (five-tuple, source IP, destination IP, …) so that the
//! switch can track keys and the controller can merge AFRs. We model a key
//! as a compact `Copy` value: the full five-tuple plus a [`KeyKind`]
//! projection that selects which fields participate in hashing/equality.

use serde::{Deserialize, Serialize};

use crate::packet::Packet;

/// Which projection of the five-tuple a telemetry application keys on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum KeyKind {
    /// Full 5-tuple `(src ip, dst ip, src port, dst port, proto)`.
    FiveTuple,
    /// Source IPv4 address only (e.g. super-spreader detection).
    SrcIp,
    /// Destination IPv4 address only (e.g. DDoS victim detection).
    DstIp,
    /// Source/destination address pair (e.g. scan detection).
    SrcDst,
}

/// A flow key: a five-tuple restricted to a [`KeyKind`] projection.
///
/// Equality and hashing respect the projection: two packets between the
/// same hosts but different ports compare equal under [`KeyKind::SrcDst`].
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct FlowKey {
    /// Source IPv4 address.
    pub src_ip: u32,
    /// Destination IPv4 address.
    pub dst_ip: u32,
    /// Source transport port.
    pub src_port: u16,
    /// Destination transport port.
    pub dst_port: u16,
    /// IP protocol number (6 = TCP, 17 = UDP).
    pub proto: u8,
    /// The projection under which this key compares and hashes.
    pub kind: KeyKind,
}

impl FlowKey {
    /// Extract the key of `kind` from a packet's five-tuple.
    pub fn of_packet(pkt: &Packet, kind: KeyKind) -> FlowKey {
        FlowKey {
            src_ip: pkt.src_ip,
            dst_ip: pkt.dst_ip,
            src_port: pkt.src_port,
            dst_port: pkt.dst_port,
            proto: pkt.proto,
            kind,
        }
    }

    /// Build a five-tuple key directly from its fields.
    pub fn five_tuple(src_ip: u32, dst_ip: u32, src_port: u16, dst_port: u16, proto: u8) -> Self {
        FlowKey {
            src_ip,
            dst_ip,
            src_port,
            dst_port,
            proto,
            kind: KeyKind::FiveTuple,
        }
    }

    /// Build a source-IP key.
    pub fn src_ip(ip: u32) -> Self {
        FlowKey {
            src_ip: ip,
            dst_ip: 0,
            src_port: 0,
            dst_port: 0,
            proto: 0,
            kind: KeyKind::SrcIp,
        }
    }

    /// Build a destination-IP key.
    pub fn dst_ip(ip: u32) -> Self {
        FlowKey {
            src_ip: 0,
            dst_ip: ip,
            src_port: 0,
            dst_port: 0,
            proto: 0,
            kind: KeyKind::DstIp,
        }
    }

    /// The canonical byte representation under the projection: fields not
    /// selected by `kind` are zeroed so equality/hash/serialisation agree.
    pub fn canonical(self) -> FlowKey {
        match self.kind {
            KeyKind::FiveTuple => self,
            KeyKind::SrcIp => FlowKey::src_ip(self.src_ip),
            KeyKind::DstIp => FlowKey::dst_ip(self.dst_ip),
            KeyKind::SrcDst => FlowKey {
                src_ip: self.src_ip,
                dst_ip: self.dst_ip,
                src_port: 0,
                dst_port: 0,
                proto: 0,
                kind: KeyKind::SrcDst,
            },
        }
    }

    /// Pack the projected key into a `u128` for fast hashing and storage.
    ///
    /// Layout (most to least significant): kind tag, src ip, dst ip,
    /// src port, dst port, proto. Non-projected fields are zero.
    pub fn as_u128(self) -> u128 {
        let c = self.canonical();
        ((c.kind as u128) << 104)
            | ((c.src_ip as u128) << 72)
            | ((c.dst_ip as u128) << 40)
            | ((c.src_port as u128) << 24)
            | ((c.dst_port as u128) << 8)
            | (c.proto as u128)
    }
}

impl PartialEq for FlowKey {
    fn eq(&self, other: &Self) -> bool {
        self.as_u128() == other.as_u128()
    }
}

impl Eq for FlowKey {}

impl core::hash::Hash for FlowKey {
    fn hash<H: core::hash::Hasher>(&self, state: &mut H) {
        self.as_u128().hash(state);
    }
}

impl core::fmt::Display for FlowKey {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        let ip = |v: u32| {
            format!(
                "{}.{}.{}.{}",
                (v >> 24) & 0xff,
                (v >> 16) & 0xff,
                (v >> 8) & 0xff,
                v & 0xff
            )
        };
        match self.kind {
            KeyKind::FiveTuple => write!(
                f,
                "{}:{}->{}:{}/{}",
                ip(self.src_ip),
                self.src_port,
                ip(self.dst_ip),
                self.dst_port,
                self.proto
            ),
            KeyKind::SrcIp => write!(f, "src={}", ip(self.src_ip)),
            KeyKind::DstIp => write!(f, "dst={}", ip(self.dst_ip)),
            KeyKind::SrcDst => write!(f, "{}->{}", ip(self.src_ip), ip(self.dst_ip)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::hash_map::DefaultHasher;
    use std::hash::{Hash, Hasher};

    fn hash_of(k: &FlowKey) -> u64 {
        let mut h = DefaultHasher::new();
        k.hash(&mut h);
        h.finish()
    }

    #[test]
    fn projection_ignores_unselected_fields() {
        let a = FlowKey {
            src_ip: 10,
            dst_ip: 20,
            src_port: 1111,
            dst_port: 2222,
            proto: 6,
            kind: KeyKind::SrcDst,
        };
        let b = FlowKey {
            src_ip: 10,
            dst_ip: 20,
            src_port: 9999,
            dst_port: 80,
            proto: 17,
            kind: KeyKind::SrcDst,
        };
        assert_eq!(a, b);
        assert_eq!(hash_of(&a), hash_of(&b));
    }

    #[test]
    fn different_kinds_never_collide() {
        let a = FlowKey::src_ip(42);
        let b = FlowKey::dst_ip(42);
        assert_ne!(a, b);
        assert_ne!(a.as_u128(), b.as_u128());
    }

    #[test]
    fn five_tuple_distinguishes_ports() {
        let a = FlowKey::five_tuple(1, 2, 10, 20, 6);
        let b = FlowKey::five_tuple(1, 2, 10, 21, 6);
        assert_ne!(a, b);
    }

    #[test]
    fn as_u128_is_injective_on_canonical_fields() {
        let a = FlowKey::five_tuple(0x01020304, 0x05060708, 80, 443, 6);
        let back = a.as_u128();
        assert_eq!((back >> 72) as u32, 0x01020304);
        assert_eq!((back >> 40) as u32, 0x05060708);
        assert_eq!((back >> 24) as u16, 80);
        assert_eq!((back >> 8) as u16, 443);
        assert_eq!(back as u8, 6);
    }

    #[test]
    fn display_formats_dotted_quads() {
        let k = FlowKey::src_ip(0xC0A80001);
        assert_eq!(k.to_string(), "src=192.168.0.1");
    }
}
