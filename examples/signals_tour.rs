//! A tour of OmniWindow's four window-termination signals (§5):
//! timeout, counter, session, and user-defined — each driving the same
//! signal engine over an illustrative packet stream.
//!
//! Run with: `cargo run --release --example signals_tour`

use ow_common::packet::{Packet, TcpFlags, PROTO_TCP};
use ow_common::time::{Duration, Instant};
use ow_switch::signal::{SignalEngine, WindowSignal};

fn pkt(ms: u64, flags: TcpFlags, tag: u32) -> Packet {
    let mut p = Packet::tcp(Instant::from_millis(ms), 1, 2, 3, 4, flags, 64);
    p.app_tag = tag;
    p
}

fn main() {
    // ------------------------------------------------------- timeout --
    println!("1. timeout signal — fixed 100 ms sub-windows");
    let mut e = SignalEngine::new(WindowSignal::Timeout(Duration::from_millis(100)));
    for ms in [10u64, 90, 110, 250, 555] {
        let t = e.on_packet(&pkt(ms, TcpFlags::ack(), 0));
        println!(
            "   packet @{ms:>3}ms → sub-window {}{}",
            e.current(),
            t.map(|t| format!("  (terminated {})", t.ended))
                .unwrap_or_default()
        );
    }

    // ------------------------------------------------------- counter --
    println!("\n2. counter signal — new sub-window every 3 TCP packets");
    fn is_tcp(p: &Packet) -> bool {
        p.proto == PROTO_TCP
    }
    let mut e = SignalEngine::new(WindowSignal::Counter {
        threshold: 3,
        predicate: Some(is_tcp),
    });
    for i in 0..8u64 {
        let t = e.on_packet(&pkt(i, TcpFlags::ack(), 0));
        println!(
            "   packet {i} → sub-window {}{}",
            e.current(),
            t.map(|t| format!("  (counter fired, closed {})", t.ended))
                .unwrap_or_default()
        );
    }

    // ------------------------------------------------------- session --
    println!("\n3. session signal — 50 ms of silence closes the window");
    let mut e = SignalEngine::new(WindowSignal::Session(Duration::from_millis(50)));
    for ms in [0u64, 10, 20, 95, 100, 200] {
        let t = e.on_packet(&pkt(ms, TcpFlags::ack(), 0));
        println!(
            "   packet @{ms:>3}ms → session window {}{}",
            e.current(),
            t.map(|t| format!("  (gap detected, closed {})", t.ended))
                .unwrap_or_default()
        );
    }

    // -------------------------------------------------- user-defined --
    println!("\n4. user-defined signal — the application's iteration tag is the window");
    let mut e = SignalEngine::new(WindowSignal::UserDefined);
    for (ms, tag) in [(0u64, 1u32), (5, 1), (10, 2), (12, 1), (20, 3)] {
        let t = e.on_packet(&pkt(ms, TcpFlags::ack(), tag));
        println!(
            "   packet tag={tag} → window {}{}",
            e.current(),
            t.map(|t| format!("  (advanced from {})", t.ended))
                .unwrap_or_default()
        );
    }
    println!("   (the stale tag=1 packet did not move the window backwards)");
}
