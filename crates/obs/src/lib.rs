//! `ow-obs` — observability for the OmniWindow reproduction.
//!
//! Three pieces, all designed around the repo's *virtual* clock so that
//! everything recorded is deterministic and testable:
//!
//! * [`MetricsRegistry`] ([`registry`]) — named counters, gauges, and
//!   fixed-bucket log2 histograms with percentile readout. Handles are
//!   atomics shared out of the registry, so hot paths never touch the
//!   registry lock. Names follow `ow_<crate>_<name>`.
//! * [`EventJournal`] ([`journal`]) — typed lifecycle events (window,
//!   phase, shard) in a bounded ring, with optional JSONL and console
//!   sinks; this replaces free-form `eprintln!` progress prints.
//! * Exporters ([`export`]) — Prometheus text exposition with a
//!   line-format checker, plus `results/obs_*.json` snapshot reports
//!   rendered by the `ow-obs-report` binary.
//!
//! [`Obs`] bundles one registry and one journal into a cheap-clone
//! handle that threads through the switch, controller, and topology
//! builder. [`Obs::engine_sink`] adapts the handle onto
//! [`ow_common::engine::TransitionSink`] so every `WindowEngine`
//! transition — including rejected drift — lands in both the registry
//! and the journal.

pub mod export;
pub mod journal;
pub mod json;
pub mod registry;

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use ow_common::engine::{Transition, TransitionSink, WindowPhase};
use ow_common::metrics::ReliabilityMetrics;

pub use export::{check_exposition, prometheus_text, ObsReport};
pub use journal::{Event, EventJournal, Level};
pub use registry::{
    validate_metric_name, Counter, Gauge, Histogram, MetricsRegistry, RegistrySnapshot,
};

/// The combined observability handle: one metrics registry plus one
/// event journal. Cheap to clone (two `Arc`s); every clone observes the
/// same run.
#[derive(Debug, Clone, Default)]
pub struct Obs {
    registry: Arc<MetricsRegistry>,
    journal: Arc<EventJournal>,
}

impl Obs {
    /// A fresh registry + journal pair.
    pub fn new() -> Obs {
        Obs::default()
    }

    /// The metrics registry.
    pub fn registry(&self) -> &Arc<MetricsRegistry> {
        &self.registry
    }

    /// The event journal.
    pub fn journal(&self) -> &Arc<EventJournal> {
        &self.journal
    }

    /// Register (or look up) a counter. See [`MetricsRegistry::counter`].
    pub fn counter(&self, name: &str, labels: &[(&str, &str)]) -> Counter {
        self.registry.counter(name, labels)
    }

    /// Register (or look up) a gauge. See [`MetricsRegistry::gauge`].
    pub fn gauge(&self, name: &str, labels: &[(&str, &str)]) -> Gauge {
        self.registry.gauge(name, labels)
    }

    /// Register (or look up) a histogram. See
    /// [`MetricsRegistry::histogram`].
    pub fn histogram(&self, name: &str, labels: &[(&str, &str)]) -> Histogram {
        self.registry.histogram(name, labels)
    }

    /// Record one journal event.
    pub fn event(&self, event: Event) {
        self.journal.record(event);
    }

    /// A deterministic snapshot of the registry.
    pub fn snapshot(&self) -> RegistrySnapshot {
        self.registry.snapshot()
    }

    /// Capture a full on-disk report (registry + journal tail).
    pub fn report(&self, run: &str) -> ObsReport {
        ObsReport::capture(run, &self.registry, &self.journal)
    }

    /// A [`TransitionSink`] mirroring every `WindowEngine` transition on
    /// the given `side` (`"switch"` / `"controller"`) into this handle:
    /// `ow_common_engine_{transitions,released,rejected}_total{side=…}`
    /// counters, an `fsm_transition` journal event per step, and a
    /// one-shot `drift_detected` warning on the first rejection.
    pub fn engine_sink(&self, side: &str) -> Arc<EngineObserver> {
        Arc::new(EngineObserver {
            obs: self.clone(),
            side: side.to_string(),
            transitions: self.counter("ow_common_engine_transitions_total", &[("side", side)]),
            released: self.counter("ow_common_engine_released_total", &[("side", side)]),
            rejected: self.counter("ow_common_engine_rejected_total", &[("side", side)]),
            drift_warned: AtomicBool::new(false),
        })
    }

    /// Fold one session's [`ReliabilityMetrics`] into the registry under
    /// the `ow_controller_*` names (counters accumulate across
    /// sessions; `wall_clock` feeds the C&R recovery-duration
    /// histogram).
    pub fn fold_reliability(&self, m: &ReliabilityMetrics) {
        self.counter("ow_controller_afr_announced_total", &[])
            .add(m.announced);
        self.counter("ow_controller_afr_first_pass_total", &[])
            .add(m.first_pass);
        self.counter("ow_controller_retransmit_rounds", &[])
            .add(m.retransmit_rounds);
        self.counter("ow_controller_retransmit_requests_total", &[])
            .add(m.retransmit_requests);
        self.counter("ow_controller_afr_recovered_total", &[])
            .add(m.recovered);
        self.counter("ow_controller_afr_duplicates_total", &[])
            .add(m.duplicates);
        self.counter("ow_controller_escalations_total", &[])
            .add(m.escalations);
        self.counter("ow_controller_backpressure_dropped_total", &[])
            .add(m.dropped);
        self.histogram("ow_controller_cr_phase_duration", &[("phase", "recovery")])
            .record(m.wall_clock);
    }
}

/// Adapter from [`Obs`] onto the engine's [`TransitionSink`] hook; build
/// via [`Obs::engine_sink`].
#[derive(Debug)]
pub struct EngineObserver {
    obs: Obs,
    side: String,
    transitions: Counter,
    released: Counter,
    rejected: Counter,
    drift_warned: AtomicBool,
}

impl TransitionSink for EngineObserver {
    fn on_transition(&self, t: &Transition) {
        self.transitions.inc();
        match t.to {
            Some(to) => {
                if to == WindowPhase::Released {
                    self.released.inc();
                }
                self.obs.event(
                    Event::new(
                        "fsm_transition",
                        format!("{} -> {} via '{}' ({})", t.from, to, t.event, self.side),
                    )
                    .subwindow(t.subwindow)
                    .phase(to.name()),
                );
            }
            None => {
                self.rejected.inc();
                self.obs.event(
                    Event::new(
                        "fsm_transition",
                        format!(
                            "rejected event '{}' in phase '{}' ({})",
                            t.event, t.from, self.side
                        ),
                    )
                    .warn()
                    .subwindow(t.subwindow)
                    .phase(t.from.name()),
                );
                if !self.drift_warned.swap(true, Ordering::Relaxed) {
                    self.obs.event(
                        Event::new(
                            "drift_detected",
                            format!(
                                "first rejected transition on side '{}': sub-window {} event '{}' in phase '{}'",
                                self.side, t.subwindow, t.event, t.from
                            ),
                        )
                        .warn()
                        .subwindow(t.subwindow),
                    );
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ow_common::engine::{WindowEngine, WindowEvent, WindowFsm};
    use ow_common::time::Duration;

    #[test]
    fn engine_sink_mirrors_transitions_into_registry_and_journal() {
        let obs = Obs::new();
        let mut engine = WindowEngine::new();
        engine.set_sink(obs.engine_sink("controller"));
        engine.insert(WindowFsm::announced(3, 5));
        engine.apply(3, WindowEvent::RetransmitRound).unwrap();
        engine.apply(3, WindowEvent::StreamComplete).unwrap();
        engine.apply(3, WindowEvent::Acked).unwrap();
        assert!(engine.apply(3, WindowEvent::Acked).is_err(), "pruned");
        assert!(engine.apply(3, WindowEvent::Acked).is_err());

        let snap = obs.snapshot();
        let side = [("side", "controller")];
        assert_eq!(snap.value("ow_common_engine_transitions_total", &side), 5);
        assert_eq!(snap.value("ow_common_engine_released_total", &side), 1);
        assert_eq!(snap.value("ow_common_engine_rejected_total", &side), 2);
        assert_eq!(
            snap.value("ow_common_engine_rejected_total", &side),
            engine.rejected()
        );

        let events = obs.journal().events();
        let kinds: Vec<&str> = events.iter().map(|e| e.kind.as_str()).collect();
        // 5 fsm_transition events plus exactly one drift_detected.
        assert_eq!(kinds.iter().filter(|k| **k == "fsm_transition").count(), 5);
        assert_eq!(kinds.iter().filter(|k| **k == "drift_detected").count(), 1);
        let drift = events.iter().find(|e| e.kind == "drift_detected").unwrap();
        assert_eq!(drift.level, Level::Warn);
        assert_eq!(drift.subwindow, Some(3));
    }

    #[test]
    fn reliability_metrics_fold_accumulates() {
        let obs = Obs::new();
        let session = ReliabilityMetrics {
            announced: 10,
            first_pass: 7,
            retransmit_rounds: 2,
            retransmit_requests: 3,
            recovered: 3,
            duplicates: 1,
            escalations: 1,
            dropped: 0,
            wall_clock: Duration::from_micros(400),
        };
        obs.fold_reliability(&session);
        obs.fold_reliability(&session);
        let snap = obs.snapshot();
        assert_eq!(snap.value("ow_controller_afr_announced_total", &[]), 20);
        assert_eq!(snap.value("ow_controller_retransmit_rounds", &[]), 4);
        assert_eq!(snap.value("ow_controller_escalations_total", &[]), 2);
        let h = snap
            .get("ow_controller_cr_phase_duration", &[("phase", "recovery")])
            .unwrap()
            .histogram
            .as_ref()
            .unwrap();
        assert_eq!(h.count, 2);
        assert_eq!(h.sum, 800_000);
    }
}
