//! Shared experiment scaffolding: scales, the evaluation trace, and
//! result row types.

use serde::Serialize;

use ow_common::time::{Duration, Instant};
use ow_trace::anomaly::{Anomaly, AnomalyKind};
use ow_trace::{Trace, TraceBuilder, TraceConfig};

/// Experiment scale: `Small` for tests, `Paper` for the bench binaries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Minimal: for debug-mode integration tests. Orderings still hold.
    Tiny,
    /// Fast: small trace, small states. Accuracy *ordering* still holds.
    Small,
    /// Near-paper workload sizes.
    Paper,
}

impl Scale {
    /// Background flows in the evaluation trace.
    pub fn flows(self) -> usize {
        match self {
            Scale::Tiny => 1_000,
            Scale::Small => 4_000,
            Scale::Paper => 60_000,
        }
    }

    /// Background packets in the evaluation trace.
    pub fn packets(self) -> usize {
        match self {
            Scale::Tiny => 20_000,
            Scale::Small => 80_000,
            Scale::Paper => 1_500_000,
        }
    }

    /// Trace duration (multiple complete 500 ms windows).
    pub fn duration(self) -> Duration {
        match self {
            Scale::Tiny => Duration::from_millis(1_500),
            Scale::Small => Duration::from_millis(2_000),
            Scale::Paper => Duration::from_millis(4_000),
        }
    }

    /// Memory for one original window's sketch state (scaled stand-in
    /// for the paper's 8 MB: the trace carries fewer flows, and accuracy
    /// depends on the cells-per-flow ratio, which this preserves).
    pub fn window_memory(self) -> usize {
        match self {
            Scale::Tiny => 96 * 1024,
            Scale::Small => 256 * 1024,
            Scale::Paper => 4 * 1024 * 1024,
        }
    }

    /// Register slots for one original window's Sonata query state
    /// (sized a few× the expected key count, as deployed Sonata states
    /// are; sub-windows get 1/4 of this).
    pub fn query_slots(self) -> usize {
        match self {
            Scale::Tiny => 6 * 1024,
            Scale::Small => 16 * 1024,
            Scale::Paper => 256 * 1024,
        }
    }

    /// Memory per sub-window: the paper allocates 1/4 of the window
    /// memory (not 1/5) because traffic is non-uniform.
    pub fn subwindow_memory(self) -> usize {
        self.window_memory() / 4
    }

    /// Data-plane flowkey array capacity.
    pub fn fk_capacity(self) -> usize {
        match self {
            Scale::Tiny => 4 * 1024,
            Scale::Small => 8 * 1024,
            Scale::Paper => 32 * 1024,
        }
    }
}

/// A precision/recall row for one mechanism.
#[derive(Debug, Clone, Serialize)]
pub struct MechScore {
    /// Mechanism label (ITW, ISW, TW1, TW2, OTW, OSW, SS).
    pub mechanism: String,
    /// Average per-window precision.
    pub precision: f64,
    /// Average per-window recall.
    pub recall: f64,
}

/// The anomaly set injected into the evaluation trace: several instances
/// of every attack Table 1's queries detect, staggered so that some land
/// inside windows and some straddle window boundaries (the Figure-1
/// pathology that separates tumbling from sliding windows).
pub fn evaluation_anomalies(duration: Duration) -> Vec<Anomaly> {
    let ms = Duration::from_millis;
    let dur_ms = duration.as_nanos() / 1_000_000;
    let mut anomalies = Vec::new();
    let mut id = 1u32;
    // Stagger starts: in-window (e.g. 120 ms) and boundary-straddling
    // (e.g. 380 ms: a 250 ms attack spans the 500 ms boundary).
    let starts: Vec<u64> = (0..dur_ms / 500)
        .flat_map(|w| vec![w * 500 + 120, w * 500 + 380])
        .collect();
    for (i, &start_ms) in starts.iter().enumerate() {
        let start = Instant::from_millis(start_ms);
        let dur = ms(250);
        let scale = 1 + i % 3; // vary magnitudes
        let kinds = [
            AnomalyKind::NewTcpConns { conns: 50 * scale },
            AnomalyKind::SshBruteForce {
                attempts: 25 * scale,
            },
            AnomalyKind::PortScan { ports: 80 * scale },
            AnomalyKind::Ddos {
                sources: 80 * scale,
            },
            AnomalyKind::SynFlood { syns: 100 * scale },
            AnomalyKind::IncompleteFlows { flows: 60 * scale },
            AnomalyKind::Slowloris {
                conns: 50 * scale,
                pkts_per_conn: 3,
            },
            AnomalyKind::SuperSpreader { dsts: 120 * scale },
            AnomalyKind::HeavyFlow {
                pkts: 150 * scale,
                pkt_len: 1000,
            },
        ];
        for kind in kinds {
            anomalies.push(Anomaly {
                kind,
                id,
                start,
                duration: dur,
            });
            id += 1;
        }
    }
    anomalies
}

/// Build the shared evaluation trace: CAIDA-like background plus the
/// full anomaly set.
pub fn evaluation_trace(scale: Scale, seed: u64) -> Trace {
    evaluation_trace_stretched(scale, seed, 1)
}

/// [`evaluation_trace`] with the duration (and packet/anomaly budget)
/// multiplied — Exp#10 sweeps windows up to 2 s and needs several
/// complete windows of the largest size.
pub fn evaluation_trace_stretched(scale: Scale, seed: u64, stretch: u32) -> Trace {
    let duration = scale.duration() * stretch as u64;
    TraceBuilder::new(TraceConfig {
        duration,
        flows: scale.flows() * stretch as usize,
        packets: scale.packets() * stretch as usize,
        seed,
        ..TraceConfig::default()
    })
    .with_anomalies(evaluation_anomalies(duration))
    .build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn evaluation_trace_contains_anomaly_hosts() {
        let t = evaluation_trace(Scale::Small, 3);
        let has_attacker = t
            .iter()
            .any(|p| p.src_ip & 0xFFFF_0000 == ow_trace::anomaly::ATTACKER_NET);
        let has_victim = t
            .iter()
            .any(|p| p.dst_ip & 0xFFF0_0000 == ow_trace::anomaly::VICTIM_NET);
        assert!(has_attacker);
        assert!(has_victim);
    }

    #[test]
    fn anomalies_cover_every_kind_and_straddle_boundaries() {
        let dur = Duration::from_millis(2_000);
        let list = evaluation_anomalies(dur);
        assert!(list.len() >= 9 * 4);
        // Boundary-straddling instances exist: start < k*500 < start+dur.
        let straddlers = list
            .iter()
            .filter(|a| {
                let s = a.start.as_nanos();
                let e = s + a.duration.as_nanos();
                let w = 500_000_000u64;
                (s / w) != (e / w)
            })
            .count();
        assert!(straddlers > 0, "no boundary-straddling anomalies");
    }
}
