//! Property tests for the metrics registry: snapshots are a pure,
//! deterministic function of the recorded virtual-clock values.

use ow_common::time::Duration;
use ow_obs::{prometheus_text, MetricsRegistry};
use proptest::prelude::*;

/// One abstract recording operation against a small fixed metric space.
#[derive(Debug, Clone, Copy)]
enum Op {
    /// Add to the counter named by the index.
    Count(u8, u64),
    /// Record a virtual duration into the histogram named by the index.
    Observe(u8, u64),
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (any::<u8>(), any::<u64>()).prop_map(|(i, v)| Op::Count(i % 3, v % 1_000)),
        (any::<u8>(), any::<u64>()).prop_map(|(i, v)| Op::Observe(i % 3, v % 10_000_000)),
    ]
}

fn apply(reg: &MetricsRegistry, op: Op) {
    match op {
        Op::Count(i, v) => reg
            .counter("ow_prop_events_total", &[("idx", &i.to_string())])
            .add(v),
        Op::Observe(i, v) => reg
            .histogram("ow_prop_latency", &[("idx", &i.to_string())])
            .record(Duration::from_nanos(v)),
    }
}

fn snapshot_bytes(reg: &MetricsRegistry) -> String {
    serde_json::to_string_pretty(&reg.snapshot()).unwrap()
}

proptest! {
    /// Two registries fed the same virtual-clock operation sequence
    /// produce byte-identical snapshots and expositions — the property
    /// the e2e byte-compare acceptance rests on.
    #[test]
    fn same_sequence_means_identical_snapshots(ops in proptest::collection::vec(arb_op(), 0..64)) {
        let a = MetricsRegistry::new();
        let b = MetricsRegistry::new();
        for op in &ops {
            apply(&a, *op);
            apply(&b, *op);
        }
        prop_assert_eq!(snapshot_bytes(&a), snapshot_bytes(&b));
        prop_assert_eq!(
            prometheus_text(&a.snapshot()),
            prometheus_text(&b.snapshot())
        );
    }

    /// Counters and histograms are commutative: recording order (e.g.
    /// shard-thread interleaving) cannot leak into the snapshot.
    #[test]
    fn recording_order_cannot_leak_into_snapshots(ops in proptest::collection::vec(arb_op(), 0..64)) {
        let forward = MetricsRegistry::new();
        let reverse = MetricsRegistry::new();
        for op in &ops {
            apply(&forward, *op);
        }
        for op in ops.iter().rev() {
            apply(&reverse, *op);
        }
        prop_assert_eq!(snapshot_bytes(&forward), snapshot_bytes(&reverse));
    }
}
