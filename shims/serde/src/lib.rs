//! Offline stand-in for `serde`.
//!
//! The build environment cannot reach crates.io, so this crate supplies
//! the small serialization surface the workspace actually uses: a JSON
//! [`Value`] tree, a [`Serialize`] trait producing it (the only bound
//! `serde_json::to_string_pretty` needs), a no-op [`Deserialize`]
//! marker so existing `#[derive(Deserialize)]` attributes keep
//! compiling, and — behind the `derive` feature — the derive macros
//! from the sibling `serde_derive` shim.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

use std::collections::{BTreeMap, HashMap};

/// A JSON value tree (the serialization target of the shim).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON null.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// JSON number (all Rust numerics widen to f64; u64 values above
    /// 2^53 lose precision exactly as they would in JavaScript).
    Number(f64),
    /// Exact unsigned integer (kept separate so u64 counters print
    /// without float formatting).
    UInt(u64),
    /// Exact signed integer.
    Int(i64),
    /// JSON string.
    String(String),
    /// JSON array.
    Array(Vec<Value>),
    /// JSON object with insertion-ordered keys.
    Object(Vec<(String, Value)>),
}

/// Types serializable into a [`Value`] tree.
///
/// This is the trait `#[derive(Serialize)]` implements via the
/// `serde_derive` shim, and the bound generic `--json` dumpers use.
pub trait Serialize {
    /// The value tree for `self`.
    fn to_value(&self) -> Value;
}

/// No-op marker: the workspace derives `Deserialize` on wire types but
/// never actually deserializes through serde (it has its own codecs).
pub trait Deserialize {}

macro_rules! impl_serialize_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::UInt(*self as u64) }
        }
    )*};
}
impl_serialize_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_serialize_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::Int(*self as i64) }
        }
    )*};
}
impl_serialize_int!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Number(*self)
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Number(*self as f64)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            None => Value::Null,
            Some(v) => v.to_value(),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (*self).to_value()
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_value(&self) -> Value {
        Value::Array(vec![self.0.to_value(), self.1.to_value()])
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn to_value(&self) -> Value {
        Value::Array(vec![
            self.0.to_value(),
            self.1.to_value(),
            self.2.to_value(),
        ])
    }
}

impl<K: ToString, V: Serialize> Serialize for HashMap<K, V> {
    fn to_value(&self) -> Value {
        // Deterministic output: sort keys.
        let mut entries: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_value()))
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Object(entries)
    }
}

impl<K: ToString, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.to_string(), v.to_value()))
                .collect(),
        )
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_map_to_expected_variants() {
        assert_eq!(42u64.to_value(), Value::UInt(42));
        assert_eq!((-3i64).to_value(), Value::Int(-3));
        assert_eq!(1.5f64.to_value(), Value::Number(1.5));
        assert_eq!(true.to_value(), Value::Bool(true));
        assert_eq!("x".to_value(), Value::String("x".into()));
        assert_eq!(Option::<u32>::None.to_value(), Value::Null);
    }

    #[test]
    fn collections_nest() {
        let v = vec![1u32, 2, 3].to_value();
        assert_eq!(
            v,
            Value::Array(vec![Value::UInt(1), Value::UInt(2), Value::UInt(3)])
        );
        let arr = [7u64; 2].to_value();
        assert_eq!(arr, Value::Array(vec![Value::UInt(7), Value::UInt(7)]));
        let pair = ("k", 9usize).to_value();
        assert_eq!(
            pair,
            Value::Array(vec![Value::String("k".into()), Value::UInt(9)])
        );
    }
}
