//! Switch-side health rules for the `ow_obs::health` engine.
//!
//! These interpret the metrics a [`crate::switch::Switch`] registers
//! when observability is attached (`ow_switch_*`): the §8 reliability
//! loop's retransmit and switch-OS escalation signals, plus the
//! collection buffer's eviction pressure. Install with
//! [`switch_health_rules`] (alone or merged with the controller and
//! fleet catalogs via `RuleSet::merged`).
//!
//! | code | rule | signal |
//! |------|------|--------|
//! | `OW-HEALTH-101` | `switch_retransmit_storm` | retransmit requests per 1000 collections above 500‰ |
//! | `OW-HEALTH-102` | `switch_os_escalation` | any switch-OS fallback read observed |
//! | `OW-HEALTH-103` | `switch_eviction_pressure` | collect-buffer evictions observed |

use ow_obs::{Cmp, MetricSelector, Rule, RuleSet, Severity, Signal};

/// Ratio threshold (‰) for the retransmit-storm rule: more than one
/// retransmit request per two collections means the back-channel loss
/// loop dominates the window, not the stream.
pub const RETRANSMIT_STORM_PERMILLE: u64 = 500;

/// The switch rule catalog (`OW-HEALTH-1xx`).
pub fn switch_health_rules() -> RuleSet {
    RuleSet::new(vec![
        Rule::new(
            "OW-HEALTH-101",
            "switch_retransmit_storm",
            MetricSelector::new("ow_switch_retransmit_requests_total", &[]),
            Signal::RatioPermille {
                denominator: MetricSelector::new("ow_switch_collections_total", &[]),
            },
            Cmp::Above,
            RETRANSMIT_STORM_PERMILLE,
            Severity::Warning,
        )
        .entity("switch"),
        Rule::new(
            "OW-HEALTH-102",
            "switch_os_escalation",
            MetricSelector::new("ow_switch_os_read_duration", &[]),
            Signal::Value,
            Cmp::Above,
            0,
            Severity::Warning,
        )
        .entity("switch"),
        Rule::new(
            "OW-HEALTH-103",
            "switch_eviction_pressure",
            MetricSelector::new("ow_switch_evictions_total", &[]),
            Signal::Value,
            Cmp::Above,
            0,
            Severity::Info,
        )
        .entity("switch"),
    ])
    .expect("switch rule catalog validates")
}

#[cfg(test)]
mod tests {
    use super::*;
    use ow_obs::{FlightRecorderConfig, HealthSample, MetricSnapshot, Obs};

    fn metric(name: &str, value: u64) -> MetricSnapshot {
        MetricSnapshot {
            name: name.into(),
            labels: vec![],
            kind: "counter".into(),
            value,
            histogram: None,
        }
    }

    #[test]
    fn catalog_validates_and_covers_the_documented_codes() {
        let rules = switch_health_rules();
        let codes: Vec<&str> = rules.rules().iter().map(|r| r.code.as_str()).collect();
        assert_eq!(
            codes,
            vec!["OW-HEALTH-101", "OW-HEALTH-102", "OW-HEALTH-103"]
        );
    }

    #[test]
    fn retransmit_storm_fires_on_ratio_not_raw_count() {
        let obs = Obs::new();
        let engine = obs.install_health(switch_health_rules(), FlightRecorderConfig::default());
        // 100 retransmits over 1000 collections = 100‰: loud in
        // absolute terms, healthy as a ratio.
        let quiet = engine.tick_with_sample(HealthSample {
            at_ns: 1_000,
            metrics: vec![
                metric("ow_switch_retransmit_requests_total", 100),
                metric("ow_switch_collections_total", 1000),
            ],
            peaks: vec![],
        });
        assert!(quiet.is_empty());
        // 30 retransmits over 40 collections = 750‰: a storm.
        let storm = engine.tick_with_sample(HealthSample {
            at_ns: 2_000,
            metrics: vec![
                metric("ow_switch_retransmit_requests_total", 30),
                metric("ow_switch_collections_total", 40),
            ],
            peaks: vec![],
        });
        assert_eq!(storm.len(), 1);
        assert_eq!(storm[0].code, "OW-HEALTH-101");
        assert_eq!(storm[0].entity, "switch");
        assert_eq!(storm[0].value, 750);
    }

    #[test]
    fn os_escalation_fires_on_any_fallback_read() {
        let obs = Obs::new();
        let engine = obs.install_health(switch_health_rules(), FlightRecorderConfig::default());
        // The histogram's snapshot value is its sample count; one
        // switch-OS read is already noteworthy.
        let fired = engine.tick_with_sample(HealthSample {
            at_ns: 1_000,
            metrics: vec![MetricSnapshot {
                name: "ow_switch_os_read_duration".into(),
                labels: vec![],
                kind: "histogram".into(),
                value: 1,
                histogram: None,
            }],
            peaks: vec![],
        });
        assert_eq!(fired.len(), 1);
        assert_eq!(fired[0].code, "OW-HEALTH-102");
        assert_eq!(fired[0].severity, "warning");
    }
}
