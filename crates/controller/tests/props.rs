//! Property-based tests for the controller's merge semantics and the
//! AFR wire codec.

use ow_common::afr::{AttrValue, DistinctBitmap, FlowRecord};
use ow_common::flowkey::FlowKey;
use ow_controller::table::MergeTable;
use ow_controller::timing::{InstrumentedController, WindowMode};
use ow_controller::wire::{decode_batch, encode_batch};
use proptest::prelude::*;
use std::collections::HashMap;

fn arb_attr() -> impl Strategy<Value = AttrValue> {
    prop_oneof![
        any::<u64>().prop_map(AttrValue::Frequency),
        any::<bool>().prop_map(AttrValue::Existence),
        any::<u64>().prop_map(AttrValue::Max),
        any::<u64>().prop_map(AttrValue::Min),
        any::<i64>().prop_map(AttrValue::Signed),
        proptest::collection::vec(any::<u64>(), 0..20).prop_map(|hs| {
            let mut bm = DistinctBitmap::default();
            for h in hs {
                bm.insert_hash(h);
            }
            AttrValue::Distinction(bm)
        }),
        (proptest::collection::vec(any::<u64>(), 0..20), any::<u64>()).prop_map(|(hs, bytes)| {
            let mut conns = DistinctBitmap::with_logical_bits(64);
            for h in hs {
                conns.insert_hash(h);
            }
            AttrValue::ConnBytes { conns, bytes }
        }),
    ]
}

fn arb_record() -> impl Strategy<Value = FlowRecord> {
    (any::<u32>(), arb_attr(), any::<u32>(), any::<u32>()).prop_map(
        |(src, attr, subwindow, seq)| FlowRecord {
            key: FlowKey::src_ip(src),
            attr,
            subwindow,
            seq,
        },
    )
}

/// Random per-sub-window batches: (key id, count) pairs.
fn arb_batches() -> impl Strategy<Value = Vec<Vec<(u8, u16)>>> {
    proptest::collection::vec(proptest::collection::vec((0u8..24, 1u16..500), 0..40), 1..8)
}

fn to_records(sw: u32, batch: &[(u8, u16)]) -> Vec<FlowRecord> {
    // Deduplicate keys within a batch (one AFR per key per sub-window).
    let mut per_key: HashMap<u8, u64> = HashMap::new();
    for &(k, c) in batch {
        *per_key.entry(k).or_insert(0) += c as u64;
    }
    let mut recs: Vec<FlowRecord> = per_key
        .into_iter()
        .map(|(k, c)| FlowRecord::frequency(FlowKey::src_ip(k as u32 + 1), c, sw))
        .collect();
    recs.sort_by_key(|r| r.key.as_u128());
    for (i, r) in recs.iter_mut().enumerate() {
        r.seq = i as u32;
    }
    recs
}

/// Naive reference: merged counts over a span of batches.
fn naive_merge(batches: &[Vec<FlowRecord>]) -> HashMap<FlowKey, u64> {
    let mut m = HashMap::new();
    for b in batches {
        for r in b {
            if let AttrValue::Frequency(v) = r.attr {
                *m.entry(r.key).or_insert(0) += v;
            }
        }
    }
    m
}

proptest! {
    /// MergeTable's merged view always equals the naive recomputation,
    /// after any sequence of inserts.
    #[test]
    fn table_matches_naive_merge(batches in arb_batches()) {
        let recs: Vec<Vec<FlowRecord>> = batches
            .iter()
            .enumerate()
            .map(|(sw, b)| to_records(sw as u32, b))
            .collect();
        let mut table = MergeTable::new();
        for (sw, b) in recs.iter().enumerate() {
            table.insert_batch(sw as u32, b.clone());
        }
        let naive = naive_merge(&recs);
        prop_assert_eq!(table.len(), naive.len());
        for (k, v) in &naive {
            prop_assert_eq!(table.get(k), Some(AttrValue::Frequency(*v)), "{}", k);
        }
    }

    /// Eviction is exact: after evicting the oldest batch, the table
    /// equals the naive merge over the remaining batches — inverse
    /// subtraction and deletion never drift.
    #[test]
    fn eviction_matches_naive_merge(batches in arb_batches()) {
        let recs: Vec<Vec<FlowRecord>> = batches
            .iter()
            .enumerate()
            .map(|(sw, b)| to_records(sw as u32, b))
            .collect();
        let mut table = MergeTable::new();
        for (sw, b) in recs.iter().enumerate() {
            table.insert_batch(sw as u32, b.clone());
        }
        for evicted in 0..recs.len() {
            table.evict_oldest();
            let naive = naive_merge(&recs[evicted + 1..]);
            prop_assert_eq!(table.len(), naive.len(), "after evicting {}", evicted);
            for (k, v) in &naive {
                prop_assert_eq!(table.get(k), Some(AttrValue::Frequency(*v)));
            }
        }
        prop_assert!(table.is_empty());
    }

    /// The instrumented controller's sliding window reports the same
    /// flows as a naive window recomputation, at every position.
    #[test]
    fn instrumented_sliding_matches_naive(batches in arb_batches(), span in 1usize..4) {
        let recs: Vec<Vec<FlowRecord>> = batches
            .iter()
            .enumerate()
            .map(|(sw, b)| to_records(sw as u32, b))
            .collect();
        let threshold = 400.0;
        let mut ctl = InstrumentedController::new(
            WindowMode::Sliding { subwindows: span },
            threshold,
        );
        let mut reports = Vec::new();
        for (sw, b) in recs.iter().enumerate() {
            ctl.ingest(sw as u32, b);
            if sw + 1 >= span {
                reports.push(ctl.reports().last().cloned().unwrap());
            }
        }
        // Naive reference per position.
        for (pos, report) in reports.iter().enumerate() {
            let naive = naive_merge(&recs[pos..pos + span]);
            let mut expect: Vec<FlowKey> = naive
                .iter()
                .filter(|(_, v)| **v as f64 >= threshold)
                .map(|(k, _)| *k)
                .collect();
            expect.sort_by_key(|k| k.as_u128());
            prop_assert_eq!(report, &expect, "position {}", pos);
        }
    }

    /// The AFR wire codec roundtrips every batch exactly.
    #[test]
    fn wire_codec_roundtrips(batch in proptest::collection::vec(arb_record(), 0..50)) {
        let wire = encode_batch(&batch);
        let back = decode_batch(wire).unwrap();
        prop_assert_eq!(back, batch);
    }

    /// Decoding arbitrary bytes never panics; on success, re-encoding
    /// reproduces semantically equal records.
    #[test]
    fn wire_decode_is_safe(data in proptest::collection::vec(any::<u8>(), 0..256)) {
        if let Ok(batch) = decode_batch(&data[..]) {
            let re = encode_batch(&batch);
            prop_assert_eq!(decode_batch(re).unwrap(), batch);
        }
    }

    /// `flows_over` returns exactly the flows at/above the threshold,
    /// sorted by key.
    #[test]
    fn flows_over_is_exact(batch in proptest::collection::vec((0u8..40, 1u16..300), 0..60), t in 1u32..500) {
        let recs = to_records(0, &batch);
        let mut table = MergeTable::new();
        table.insert_batch(0, recs.clone());
        let over = table.flows_over(t as f64);
        let naive = naive_merge(&[recs]);
        for (k, v) in &over {
            prop_assert!(*v >= t as f64);
            prop_assert_eq!(naive[k] as f64, *v);
        }
        let expect_count = naive.values().filter(|&&v| v as f64 >= t as f64).count();
        prop_assert_eq!(over.len(), expect_count);
        prop_assert!(over.windows(2).all(|w| w[0].0.as_u128() < w[1].0.as_u128()));
    }
}
