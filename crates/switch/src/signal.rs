//! Window termination signals (§5, "Window termination signal").
//!
//! A sub-window ends when a signal fires. OmniWindow supports four
//! signal kinds, all modelled here: timeout (fixed-length sub-windows),
//! counter (threshold on a packet predicate), session (inactivity gap),
//! and user-defined (application-embedded boundary tags, used by the
//! Exp#3 DML case study).

use ow_common::packet::Packet;
use ow_common::time::{Duration, Instant};

/// The signal that terminates sub-windows.
#[derive(Debug, Clone)]
pub enum WindowSignal {
    /// Fixed-length sub-windows: a new sub-window every `Duration`.
    Timeout(Duration),
    /// Counter signal: a sub-window ends after `threshold` packets
    /// matching `predicate` (e.g. TCP packets).
    Counter {
        /// Packets per sub-window.
        threshold: u64,
        /// Which packets count (None = all packets).
        predicate: Option<fn(&Packet) -> bool>,
    },
    /// Session signal: a sub-window ends after `gap` with no traffic.
    Session(Duration),
    /// User-defined: the packet's `app_tag` *is* the window id; a tag
    /// change moves to a new window (monotonically increasing tags, as
    /// the paper requires of applications).
    UserDefined,
}

/// A sub-window termination event produced by the signal engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Termination {
    /// The sub-window that just ended.
    pub ended: u32,
    /// The sub-window now current.
    pub next: u32,
    /// When the termination was detected.
    pub at: Instant,
}

/// Evaluates the configured signal against the packet stream and tracks
/// the current sub-window number.
///
/// ```
/// use ow_switch::signal::{SignalEngine, WindowSignal};
/// use ow_common::packet::{Packet, TcpFlags};
/// use ow_common::time::{Duration, Instant};
///
/// let mut engine = SignalEngine::new(WindowSignal::Timeout(Duration::from_millis(100)));
/// let p = Packet::tcp(Instant::from_millis(150), 1, 2, 3, 4, TcpFlags::ack(), 64);
/// let term = engine.on_packet(&p).expect("crossed the 100 ms boundary");
/// assert_eq!((term.ended, term.next), (0, 1));
/// ```
#[derive(Debug, Clone)]
pub struct SignalEngine {
    signal: WindowSignal,
    current: u32,
    // Timeout state.
    next_deadline: Option<Instant>,
    subwindow_len: Option<Duration>,
    // Counter state.
    count: u64,
    // Session state.
    last_packet: Option<Instant>,
    // User-defined state.
    last_tag: Option<u32>,
}

impl SignalEngine {
    /// Create an engine for `signal`, starting in sub-window 0.
    pub fn new(signal: WindowSignal) -> SignalEngine {
        let subwindow_len = match &signal {
            WindowSignal::Timeout(d) => Some(*d),
            _ => None,
        };
        SignalEngine {
            signal,
            current: 0,
            next_deadline: subwindow_len.map(|d| Instant::ZERO + d),
            subwindow_len,
            count: 0,
            last_packet: None,
            last_tag: None,
        }
    }

    /// The current sub-window number.
    pub fn current(&self) -> u32 {
        self.current
    }

    /// Force the current sub-window forward to `sw` (used when the
    /// consistency model observes a newer embedded sub-window — the
    /// "packet D triggers the window-moving" case of Figure 4).
    pub fn fast_forward(&mut self, sw: u32, now: Instant) -> Option<Termination> {
        if sw > self.current {
            let ended = self.current;
            self.current = sw;
            self.count = 0;
            // Re-anchor the timeout deadline to the new sub-window.
            if let Some(len) = self.subwindow_len {
                self.next_deadline = Some(Instant::from_nanos((sw as u64 + 1) * len.as_nanos()));
            }
            Some(Termination {
                ended,
                next: sw,
                at: now,
            })
        } else {
            None
        }
    }

    /// Observe a packet; returns a termination if this packet moves the
    /// switch into a new sub-window. For timeout signals several
    /// sub-windows may have elapsed in silence; the returned
    /// `Termination::next` reflects the final position.
    pub fn on_packet(&mut self, pkt: &Packet) -> Option<Termination> {
        match &self.signal {
            WindowSignal::Timeout(len) => {
                let deadline = self.next_deadline.expect("timeout engine has deadline");
                if pkt.ts >= deadline {
                    let ended = self.current;
                    // How many whole sub-windows fit before this packet.
                    let sw = (pkt.ts.as_nanos() / len.as_nanos()) as u32;
                    self.current = sw;
                    self.next_deadline =
                        Some(Instant::from_nanos((sw as u64 + 1) * len.as_nanos()));
                    Some(Termination {
                        ended,
                        next: sw,
                        at: pkt.ts,
                    })
                } else {
                    None
                }
            }
            WindowSignal::Counter {
                threshold,
                predicate,
            } => {
                let counts = predicate.map(|f| f(pkt)).unwrap_or(true);
                if counts {
                    self.count += 1;
                }
                if self.count >= *threshold {
                    self.count = 0;
                    let ended = self.current;
                    self.current += 1;
                    Some(Termination {
                        ended,
                        next: self.current,
                        at: pkt.ts,
                    })
                } else {
                    None
                }
            }
            WindowSignal::Session(gap) => {
                let fired = match self.last_packet {
                    Some(last) => pkt.ts.saturating_since(last) >= *gap,
                    None => false,
                };
                self.last_packet = Some(pkt.ts);
                if fired {
                    let ended = self.current;
                    self.current += 1;
                    Some(Termination {
                        ended,
                        next: self.current,
                        at: pkt.ts,
                    })
                } else {
                    None
                }
            }
            WindowSignal::UserDefined => {
                let tag = pkt.app_tag;
                let fired = match self.last_tag {
                    Some(prev) => tag > prev,
                    None => false,
                };
                if self.last_tag.is_none() || fired {
                    self.last_tag = Some(tag);
                }
                if fired {
                    let ended = self.current;
                    self.current = tag;
                    Some(Termination {
                        ended,
                        next: tag,
                        at: pkt.ts,
                    })
                } else {
                    None
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ow_common::packet::TcpFlags;

    fn pkt_at(ms: u64) -> Packet {
        Packet::tcp(Instant::from_millis(ms), 1, 2, 3, 4, TcpFlags::ack(), 64)
    }

    #[test]
    fn timeout_fires_on_boundary() {
        let mut e = SignalEngine::new(WindowSignal::Timeout(Duration::from_millis(100)));
        assert!(e.on_packet(&pkt_at(50)).is_none());
        assert!(e.on_packet(&pkt_at(99)).is_none());
        let t = e.on_packet(&pkt_at(100)).expect("boundary crossing");
        assert_eq!(t.ended, 0);
        assert_eq!(t.next, 1);
        assert_eq!(e.current(), 1);
    }

    #[test]
    fn timeout_skips_silent_subwindows() {
        let mut e = SignalEngine::new(WindowSignal::Timeout(Duration::from_millis(100)));
        let t = e.on_packet(&pkt_at(570)).expect("jump");
        assert_eq!(t.ended, 0);
        assert_eq!(t.next, 5);
    }

    #[test]
    fn counter_fires_at_threshold() {
        let mut e = SignalEngine::new(WindowSignal::Counter {
            threshold: 3,
            predicate: None,
        });
        assert!(e.on_packet(&pkt_at(1)).is_none());
        assert!(e.on_packet(&pkt_at(2)).is_none());
        let t = e.on_packet(&pkt_at(3)).expect("third packet fires");
        assert_eq!((t.ended, t.next), (0, 1));
    }

    #[test]
    fn counter_predicate_filters() {
        fn is_syn(p: &Packet) -> bool {
            p.tcp_flags.is_pure_syn()
        }
        let mut e = SignalEngine::new(WindowSignal::Counter {
            threshold: 2,
            predicate: Some(is_syn),
        });
        // ACK packets never fire it.
        for i in 0..10 {
            assert!(e.on_packet(&pkt_at(i)).is_none());
        }
        let mut syn = pkt_at(11);
        syn.tcp_flags = TcpFlags::syn();
        assert!(e.on_packet(&syn).is_none());
        let mut syn2 = pkt_at(12);
        syn2.tcp_flags = TcpFlags::syn();
        assert!(e.on_packet(&syn2).is_some());
    }

    #[test]
    fn session_fires_after_gap() {
        let mut e = SignalEngine::new(WindowSignal::Session(Duration::from_millis(50)));
        assert!(e.on_packet(&pkt_at(0)).is_none());
        assert!(e.on_packet(&pkt_at(30)).is_none());
        assert!(e.on_packet(&pkt_at(60)).is_none()); // gap only 30ms
        let t = e.on_packet(&pkt_at(150)).expect("90ms gap fires");
        assert_eq!((t.ended, t.next), (0, 1));
    }

    #[test]
    fn user_defined_follows_tags() {
        let mut e = SignalEngine::new(WindowSignal::UserDefined);
        let mut p = pkt_at(0);
        p.app_tag = 1;
        assert!(e.on_packet(&p).is_none());
        let mut p2 = pkt_at(1);
        p2.app_tag = 1;
        assert!(e.on_packet(&p2).is_none());
        let mut p3 = pkt_at(2);
        p3.app_tag = 2;
        let t = e.on_packet(&p3).expect("tag change fires");
        assert_eq!(t.next, 2);
        // Stale tag (out-of-order) does not move the window backwards.
        let mut p4 = pkt_at(3);
        p4.app_tag = 1;
        assert!(e.on_packet(&p4).is_none());
        assert_eq!(e.current(), 2);
    }

    #[test]
    fn fast_forward_only_moves_forward() {
        let mut e = SignalEngine::new(WindowSignal::Timeout(Duration::from_millis(100)));
        let t = e.fast_forward(3, Instant::from_millis(250)).expect("jump");
        assert_eq!((t.ended, t.next), (0, 3));
        assert!(e.fast_forward(2, Instant::from_millis(260)).is_none());
        assert_eq!(e.current(), 3);
        // Deadline re-anchored: packet at 390ms stays in sub-window 3.
        assert!(e.on_packet(&pkt_at(390)).is_none());
        // Packet at 400ms crosses into 4.
        assert_eq!(e.on_packet(&pkt_at(400)).unwrap().next, 4);
    }
}
