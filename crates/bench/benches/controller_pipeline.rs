//! Criterion bench for the controller's per-sub-window pipeline (the
//! Exp#4 operations as one unit): ingest an AFR batch into the
//! reference-counted key-value table in tumbling and sliding modes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use ow_common::afr::FlowRecord;
use ow_common::flowkey::FlowKey;
use ow_controller::timing::{InstrumentedController, WindowMode};

fn batch(sw: u32, flows: usize) -> Vec<FlowRecord> {
    (0..flows)
        .map(|i| {
            let mut r = FlowRecord::frequency(
                FlowKey::src_ip(i as u32 | 0x0A00_0000),
                1 + i as u64 % 50,
                sw,
            );
            r.seq = i as u32;
            r
        })
        .collect()
}

fn bench_ingest(c: &mut Criterion) {
    let mut group = c.benchmark_group("controller_ingest");
    for &flows in &[4_096usize, 16_384, 65_536] {
        group.throughput(Throughput::Elements(flows as u64));
        group.bench_with_input(BenchmarkId::new("tumbling", flows), &flows, |b, &flows| {
            let batches: Vec<Vec<FlowRecord>> = (0..5).map(|sw| batch(sw, flows)).collect();
            b.iter(|| {
                let mut ctl =
                    InstrumentedController::new(WindowMode::Tumbling { subwindows: 5 }, 100.0);
                for (sw, bch) in batches.iter().enumerate() {
                    ctl.ingest(sw as u32, bch);
                }
                std::hint::black_box(ctl.reports().len());
            });
        });
        group.bench_with_input(BenchmarkId::new("sliding", flows), &flows, |b, &flows| {
            let batches: Vec<Vec<FlowRecord>> = (0..8).map(|sw| batch(sw, flows)).collect();
            b.iter(|| {
                let mut ctl =
                    InstrumentedController::new(WindowMode::Sliding { subwindows: 5 }, 100.0);
                for (sw, bch) in batches.iter().enumerate() {
                    ctl.ingest(sw as u32, bch);
                }
                std::hint::black_box(ctl.reports().len());
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_ingest);
criterion_main!(benches);
