//! Scalar vs vectorised AFR aggregation (Exp#7).
//!
//! The paper merges AFRs with AVX-512: one instruction sums/maxes many
//! AFRs' attributes at once. Portable Rust gets the same effect by
//! arranging attributes in structure-of-arrays buffers and writing the
//! merge as a chunked loop LLVM auto-vectorises. The bench compares the
//! deliberately scalar form (`*_scalar`, with an `#[inline(never)]`
//! per-element helper that defeats vectorisation) against the
//! vectorisable form — the same comparison as Figure 12.

/// Element-wise `dst[i] += src[i]` — scalar reference implementation.
///
/// The per-element helper is `#[inline(never)]` so the optimiser cannot
/// fuse the loop into SIMD; this stands in for the paper's non-AVX path.
pub fn sum_scalar(dst: &mut [u64], src: &[u64]) {
    assert_eq!(dst.len(), src.len(), "length mismatch");
    for i in 0..dst.len() {
        dst[i] = add_one(dst[i], src[i]);
    }
}

#[inline(never)]
fn add_one(a: u64, b: u64) -> u64 {
    a.wrapping_add(b)
}

/// Element-wise `dst[i] += src[i]` — vectorisable implementation.
pub fn sum_vectorized(dst: &mut [u64], src: &[u64]) {
    assert_eq!(dst.len(), src.len(), "length mismatch");
    for (d, s) in dst.iter_mut().zip(src.iter()) {
        *d = d.wrapping_add(*s);
    }
}

/// Element-wise `dst[i] = max(dst[i], src[i])` — scalar reference.
pub fn max_scalar(dst: &mut [u64], src: &[u64]) {
    assert_eq!(dst.len(), src.len(), "length mismatch");
    for i in 0..dst.len() {
        dst[i] = max_one(dst[i], src[i]);
    }
}

#[inline(never)]
fn max_one(a: u64, b: u64) -> u64 {
    if a >= b {
        a
    } else {
        b
    }
}

/// Element-wise max — vectorisable implementation.
pub fn max_vectorized(dst: &mut [u64], src: &[u64]) {
    assert_eq!(dst.len(), src.len(), "length mismatch");
    for (d, s) in dst.iter_mut().zip(src.iter()) {
        *d = (*d).max(*s);
    }
}

/// Element-wise min — vectorisable implementation (completes the
/// max/min pattern pair; the paper's figure shows sum and max).
pub fn min_vectorized(dst: &mut [u64], src: &[u64]) {
    assert_eq!(dst.len(), src.len(), "length mismatch");
    for (d, s) in dst.iter_mut().zip(src.iter()) {
        *d = (*d).min(*s);
    }
}

/// Element-wise `dst[i] += src[i]` over 32-bit attributes — the wire
/// format of AFR flow attributes, and the layout the RDMA-collected
/// key-value table keeps, giving the vector unit twice the lanes.
pub fn sum_vectorized_u32(dst: &mut [u32], src: &[u32]) {
    assert_eq!(dst.len(), src.len(), "length mismatch");
    for (d, s) in dst.iter_mut().zip(src.iter()) {
        *d = d.wrapping_add(*s);
    }
}

/// Element-wise max over 32-bit attributes.
pub fn max_vectorized_u32(dst: &mut [u32], src: &[u32]) {
    assert_eq!(dst.len(), src.len(), "length mismatch");
    for (d, s) in dst.iter_mut().zip(src.iter()) {
        *d = (*d).max(*s);
    }
}

/// Element-wise saturating `dst[i] += src[i]` — vectorisable.
///
/// The merge algebra saturates frequency counters instead of wrapping
/// (a wrapped heavy hitter would vanish below the reporting threshold),
/// so the block-fold path needs a saturating lane kernel. Written as
/// compare-and-select over the wrapped sum, which LLVM turns into
/// vector `cmp` + `blend` — no branch in the loop body.
pub fn sum_saturating_vectorized(dst: &mut [u64], src: &[u64]) {
    assert_eq!(dst.len(), src.len(), "length mismatch");
    for (d, s) in dst.iter_mut().zip(src.iter()) {
        let sum = d.wrapping_add(*s);
        *d = if sum < *d { u64::MAX } else { sum };
    }
}

/// Sentinel slot id meaning "row does not participate in the fold"
/// (pattern mismatch rows on the block-insert fast path).
pub const SKIP_SLOT: u32 = u32::MAX;

/// Detect the longest run starting at `i` of non-skip slot ids that
/// are *strictly consecutive* (`slots[j+1] == slots[j] + 1`).
///
/// Consecutive slot ids are pairwise distinct, so the run's gather/fold
/// has no intra-run aliasing and can be delegated to the contiguous
/// vector kernels.
#[inline]
fn consecutive_run(slots: &[u32], i: usize) -> usize {
    let mut j = i;
    while j + 1 < slots.len() && slots[j] != SKIP_SLOT && slots[j + 1] == slots[j].wrapping_add(1) {
        j += 1;
    }
    j + 1 - i
}

/// Minimum consecutive-run length worth a vector-kernel dispatch.
const RUN_MIN: usize = 8;

macro_rules! fold_slots {
    ($name:ident, $scalar_op:expr, $vector_kernel:path, $doc:literal) => {
        #[doc = $doc]
        ///
        /// For each row `i`, folds `src[i]` into `dst[slots[i] as usize]`;
        /// rows whose slot is [`SKIP_SLOT`] are ignored. Runs of strictly
        /// consecutive slot ids (which cannot alias) of length ≥ 8 are
        /// delegated to the contiguous vector kernel; the remainder runs
        /// as a tight scalar loop.
        ///
        /// # Panics
        /// Panics when `slots` and `src` differ in length, or a non-skip
        /// slot is out of bounds for `dst`.
        pub fn $name(dst: &mut [u64], slots: &[u32], src: &[u64]) {
            assert_eq!(slots.len(), src.len(), "length mismatch");
            let op = $scalar_op;
            let mut i = 0;
            while i < slots.len() {
                let run = consecutive_run(slots, i);
                if run >= RUN_MIN {
                    let lo = slots[i] as usize;
                    $vector_kernel(&mut dst[lo..lo + run], &src[i..i + run]);
                    i += run;
                    continue;
                }
                for j in i..i + run {
                    let s = slots[j];
                    if s != SKIP_SLOT {
                        let d = &mut dst[s as usize];
                        *d = op(*d, src[j]);
                    }
                }
                i += run;
            }
        }
    };
}

fold_slots!(
    fold_slots_sum_saturating,
    |a: u64, b: u64| a.saturating_add(b),
    sum_saturating_vectorized,
    "Slot-indexed saturating-sum fold (frequency pattern)."
);
fold_slots!(
    fold_slots_max,
    |a: u64, b: u64| a.max(b),
    max_vectorized,
    "Slot-indexed max fold (max pattern)."
);
fold_slots!(
    fold_slots_min,
    |a: u64, b: u64| a.min(b),
    min_vectorized,
    "Slot-indexed min fold (min pattern)."
);

#[cfg(test)]
mod tests {
    use super::*;

    fn vecs(n: usize) -> (Vec<u64>, Vec<u64>) {
        let a: Vec<u64> = (0..n as u64).map(|i| i * 3 + 1).collect();
        let b: Vec<u64> = (0..n as u64).map(|i| i.wrapping_mul(7) % 100).collect();
        (a, b)
    }

    #[test]
    fn scalar_and_vectorized_sum_agree() {
        let (a, b) = vecs(1000);
        let mut d1 = a.clone();
        let mut d2 = a.clone();
        sum_scalar(&mut d1, &b);
        sum_vectorized(&mut d2, &b);
        assert_eq!(d1, d2);
        assert_eq!(d1[10], a[10] + b[10]);
    }

    #[test]
    fn scalar_and_vectorized_max_agree() {
        let (a, b) = vecs(1000);
        let mut d1 = a.clone();
        let mut d2 = a.clone();
        max_scalar(&mut d1, &b);
        max_vectorized(&mut d2, &b);
        assert_eq!(d1, d2);
    }

    #[test]
    fn min_takes_minimum() {
        let mut d = vec![5, 1, 9];
        min_vectorized(&mut d, &[3, 2, 10]);
        assert_eq!(d, vec![3, 1, 9]);
    }

    #[test]
    fn sum_wraps_instead_of_panicking() {
        let mut d = vec![u64::MAX];
        sum_vectorized(&mut d, &[2]);
        assert_eq!(d, vec![1]);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn length_mismatch_panics() {
        let mut d = vec![1, 2];
        sum_vectorized(&mut d, &[1]);
    }

    #[test]
    fn saturating_sum_saturates_and_matches_plain_sum_below() {
        let mut d = vec![1u64, u64::MAX - 1, 7];
        sum_saturating_vectorized(&mut d, &[2, 5, 0]);
        assert_eq!(d, vec![3, u64::MAX, 7]);
    }

    /// Reference fold: per-row, no run detection.
    fn fold_ref(dst: &mut [u64], slots: &[u32], src: &[u64], op: impl Fn(u64, u64) -> u64) {
        for (s, v) in slots.iter().zip(src) {
            if *s != SKIP_SLOT {
                dst[*s as usize] = op(dst[*s as usize], *v);
            }
        }
    }

    #[test]
    fn slot_folds_match_reference_on_random_slots() {
        // Mix of scattered, consecutive (vector-delegated), duplicate,
        // and skipped slots.
        let mut slots: Vec<u32> = (0..64u32).collect(); // long consecutive run
        slots.extend([5, 5, 5, 63, 0, SKIP_SLOT, 17, SKIP_SLOT, 2, 3, 4, 5]);
        let src: Vec<u64> = (0..slots.len() as u64).map(|i| i * 11 + 1).collect();
        let base: Vec<u64> = (0..70u64).map(|i| i * 3).collect();

        for (fold, op) in [
            (
                fold_slots_sum_saturating as fn(&mut [u64], &[u32], &[u64]),
                (|a: u64, b: u64| a.saturating_add(b)) as fn(u64, u64) -> u64,
            ),
            (fold_slots_max, |a, b| a.max(b)),
            (fold_slots_min, |a, b| a.min(b)),
        ] {
            let mut got = base.clone();
            let mut want = base.clone();
            fold(&mut got, &slots, &src);
            fold_ref(&mut want, &slots, &src, op);
            assert_eq!(got, want);
        }
    }

    #[test]
    fn slot_fold_handles_all_skips_and_empty() {
        let mut d = vec![9u64; 4];
        fold_slots_sum_saturating(&mut d, &[], &[]);
        fold_slots_sum_saturating(&mut d, &[SKIP_SLOT, SKIP_SLOT], &[1, 2]);
        assert_eq!(d, vec![9; 4]);
    }

    #[test]
    fn u32_variants_agree_with_u64() {
        let a32: Vec<u32> = (0..500u32).collect();
        let b32: Vec<u32> = (0..500u32).map(|i| i * 3 % 97).collect();
        let mut d32 = a32.clone();
        sum_vectorized_u32(&mut d32, &b32);
        let mut m32 = a32.clone();
        max_vectorized_u32(&mut m32, &b32);
        for i in 0..500usize {
            assert_eq!(d32[i], a32[i] + b32[i]);
            assert_eq!(m32[i], a32[i].max(b32[i]));
        }
    }
}
