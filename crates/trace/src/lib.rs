//! Synthetic workload generation for OmniWindow-RS.
//!
//! The paper evaluates on a CAIDA 2018 backbone trace replayed by PktGen.
//! That trace is access-gated, so this crate generates a *seeded*
//! CAIDA-like workload with the properties the experiments rely on:
//!
//! * heavy-tailed flow sizes (Zipf), tens of thousands of flows,
//! * TCP connection structure (SYN / data / FIN) so query-driven
//!   telemetry (Q1–Q7) has real connection semantics to detect,
//! * injectable ground-truth anomalies ([`anomaly`]): port scans, DDoS,
//!   SYN floods, SSH brute force, Slowloris, super-spreaders, and the
//!   window-boundary bursts of Figure 1,
//! * the distributed-ML parameter-server traffic of Exp#3 ([`dml`]),
//!   with iteration-tagged packets and the paper's doubling compression
//!   schedule.
//!
//! Everything is deterministic given the seed.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod anomaly;
pub mod dml;
pub mod file;
pub mod gen;

pub use anomaly::{Anomaly, AnomalyKind};
pub use file::{load, save};
pub use gen::{Trace, TraceBuilder, TraceConfig};
