//! Fleet-scale simulation: hundreds of switches against a sharded
//! controller tier.
//!
//! Exp#9 stops at two switches; a production deployment is a *fleet*.
//! This module scales the C&R pipeline to 100–1000 switches served by
//! `N` controller workers (each a `ReliableLiveController` with its own
//! shard pool), with three mechanisms the two-switch model never needed:
//!
//! * **Consistent worker assignment** — each switch is mapped to a
//!   worker by rendezvous (highest-random-weight) hashing over
//!   [`mix64`], so adding or removing workers moves only the minimal
//!   set of switches and every run of the same config assigns
//!   identically.
//! * **Phase staggering** — every switch gets a deterministic per-switch
//!   offset within the sub-window period, de-spiking the announce/AFR
//!   bursts that a synchronized fleet would fire at each window
//!   boundary (the Laminar-style pipelined feeding pattern).
//! * **Failure domains and churn** — per-link [`FaultConfig`]-style
//!   loss plus *rack-correlated* loss bursts (every switch in a rack
//!   degrades together for an interval), and mid-window switch
//!   join/leave/crash churn. A graceful leave drains its in-flight
//!   windows; a crash abandons them through the controller's
//!   `Depart` path, driving their `WindowFsm`s to `Released` instead of
//!   wedging a recovery loop against a dead peer.
//!
//! Everything is virtual-time and seed-driven: the event schedule is
//! computed up front and replayed in sorted order, per-switch loss draws
//! come from per-switch seeded [`LossyChannel`]s, and each worker's
//! router consumes its messages in a deterministic order — so a fixed
//! [`FleetConfig`] reproduces the same [`FleetReport`] byte for byte
//! (the property the chaos suite and the CI determinism gate pin down).

use std::collections::{BTreeMap, HashMap, HashSet};
use std::sync::{Arc, Mutex};

use ow_common::afr::{AttrValue, FlowRecord};
use ow_common::block::RecordBlock;
use ow_common::flowkey::FlowKey;
use ow_common::hash::mix64;
use ow_common::metrics::ReliabilityMetrics;
use ow_common::time::{Duration, Instant};
use ow_controller::live::{ReliableLiveController, ReliableMsg};
use ow_controller::reliability::RetryPolicy;
use ow_obs::{Cmp, Counter, Gauge, MetricSelector, Obs, Rule, RuleSet, Severity, Signal};

use ow_sketch::traits::{FrequencySketch, InvertibleSketch};
use ow_sketch::MvSketch;

use crate::fault::{FaultConfig, FaultStats, LossyChannel, PacketClass};
use crate::sketchobs::ObsSketchObs;

/// Bits of the global sub-window id reserved for the switch-local
/// window index; the rest carry the switch id.
const LOCAL_BITS: u32 = 8;

/// How many surviving AFR clones one wire block carries. Smaller than
/// the controller's scatter capacity: the fleet models NIC-sized bursts,
/// and a lost burst should not erase a whole sub-window.
const FLEET_BLOCK_CAPACITY: usize = 256;

/// Salt for the rendezvous assignment weights (fixed so the assignment
/// is a pure function of `(switch, workers)`).
const ASSIGN_SALT: u64 = 0x6f77_666c_6565_7431;

/// Salt for per-switch stagger offsets.
const STAGGER_SALT: u64 = 0x6f77_7374_6167_6731;

/// Salt for the synthetic per-window workload.
const WORKLOAD_SALT: u64 = 0x6f77_776f_726b_6c64;

/// Namespace a switch-local sub-window into the fleet-global id one
/// controller worker keys its sessions by.
///
/// # Panics
/// Panics when `local` ≥ 2⁸ or `switch` ≥ 2²⁴ (the packing bounds).
pub fn global_subwindow(switch: u32, local: u32) -> u32 {
    assert!(
        local < (1 << LOCAL_BITS),
        "local window {local} out of range"
    );
    assert!(
        switch < (1 << (32 - LOCAL_BITS)),
        "switch {switch} out of range"
    );
    (switch << LOCAL_BITS) | local
}

/// The switch that owns a fleet-global sub-window id.
pub fn subwindow_switch(global: u32) -> u32 {
    global >> LOCAL_BITS
}

/// Rendezvous (highest-random-weight) assignment of a switch to one of
/// `workers` controller workers: deterministic, uniform, and minimally
/// disruptive when the worker count changes.
///
/// # Panics
/// Panics when `workers` is zero.
pub fn worker_of(switch: u32, workers: usize) -> usize {
    assert!(workers > 0, "a fleet needs at least one worker");
    (0..workers)
        .max_by_key(|&w| mix64(ASSIGN_SALT ^ ((switch as u64) << 32) ^ w as u64))
        .expect("workers > 0")
}

/// What a churn event does to its switch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChurnKind {
    /// The switch joins the fleet at the event time (it is absent — no
    /// windows scheduled — before then).
    Join,
    /// Graceful leave: no new windows start, but windows already
    /// announced drain to completion (their streams finish).
    Leave,
    /// Crash: windows already announced but not yet end-of-streamed are
    /// abandoned through the controller's `Depart` path; nothing else
    /// from this switch is ever heard again.
    Crash,
}

/// One mid-run membership change.
#[derive(Debug, Clone, Copy)]
pub struct ChurnEvent {
    /// Virtual time of the change.
    pub at: Duration,
    /// The switch joining, leaving, or crashing.
    pub switch: u32,
    /// What happens.
    pub kind: ChurnKind,
}

/// A rack-correlated loss burst: every switch in `rack` transmits its
/// AFR streams at `loss` for events inside `[from, until)`.
#[derive(Debug, Clone, Copy)]
pub struct RackBurst {
    /// The failure domain (rack index, `switch / rack_size`).
    pub rack: u32,
    /// Burst start (inclusive, virtual time).
    pub from: Duration,
    /// Burst end (exclusive, virtual time).
    pub until: Duration,
    /// AFR loss probability during the burst.
    pub loss: f64,
}

/// Configuration of one fleet run.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Fleet size (switch count), < 2²⁴.
    pub switches: u32,
    /// Controller workers the fleet is rendezvous-hashed onto.
    pub workers: usize,
    /// Merge shards per worker.
    pub shards_per_worker: usize,
    /// Sub-windows each switch terminates over the run, < 2⁸.
    pub local_windows: u32,
    /// AFRs per per-switch sub-window batch.
    pub records_per_window: u32,
    /// Flow-key population the synthetic batches draw from (keys are
    /// shared fleet-wide, so merges overlap across switches).
    pub population: u32,
    /// Virtual length of one sub-window period.
    pub subwindow_len: Duration,
    /// Baseline per-link AFR-stream loss probability.
    pub afr_loss: f64,
    /// Switches per rack (the correlated failure domain).
    pub rack_size: u32,
    /// Rack-level loss bursts.
    pub bursts: Vec<RackBurst>,
    /// Membership churn schedule.
    pub churn: Vec<ChurnEvent>,
    /// Force every Nth started window's retransmission back-channel
    /// dead (recovery must escalate to the OS read); 0 disables.
    pub escalate_every: u32,
    /// When set to `(rows, width)`, each switch announces the
    /// heavy-hitter view recovered from an MV-Sketch of that geometry
    /// instead of its exact batch — modelling a data plane whose sketch
    /// is the only record of the window. An undersized geometry loses
    /// flows *before* the channel, which only the accuracy observatory
    /// (not transport health) can see. `None` announces exact batches.
    pub sketch_feed: Option<(usize, usize)>,
    /// Seed driving stagger offsets, workloads, and loss draws.
    pub seed: u64,
}

impl Default for FleetConfig {
    fn default() -> FleetConfig {
        FleetConfig {
            switches: 32,
            workers: 4,
            shards_per_worker: 2,
            local_windows: 4,
            records_per_window: 24,
            population: 64,
            subwindow_len: Duration::from_millis(1),
            afr_loss: 0.10,
            rack_size: 8,
            bursts: Vec::new(),
            churn: Vec::new(),
            escalate_every: 0,
            sketch_feed: None,
            seed: 1,
        }
    }
}

impl FleetConfig {
    /// The failure domain of a switch.
    pub fn rack_of(&self, switch: u32) -> u32 {
        switch / self.rack_size.max(1)
    }

    /// The deterministic per-switch phase offset within the sub-window
    /// period (the de-spiking stagger).
    pub fn stagger_ns(&self, switch: u32) -> u64 {
        let period = self.subwindow_len.as_nanos().max(1);
        mix64(STAGGER_SALT ^ self.seed ^ switch as u64) % period
    }

    /// When `switch` announces its `local`-th sub-window.
    fn announce_ns(&self, switch: u32, local: u32) -> u64 {
        local as u64 * self.subwindow_len.as_nanos() + self.stagger_ns(switch)
    }

    /// When `switch` finishes streaming its `local`-th sub-window.
    fn eos_ns(&self, switch: u32, local: u32) -> u64 {
        self.announce_ns(switch, local) + self.subwindow_len.as_nanos() / 2
    }

    /// The lossless single-worker control run used as the merge-identity
    /// baseline: identical fleet, workloads, stagger, and churn
    /// schedule, but zero loss and one worker. The surviving window set
    /// is schedule-determined (announcements travel reliably), so the
    /// baseline merges exactly the windows the chaotic run merges.
    pub fn lossless_baseline(&self) -> FleetConfig {
        FleetConfig {
            workers: 1,
            shards_per_worker: 1,
            afr_loss: 0.0,
            bursts: Vec::new(),
            escalate_every: 0,
            ..self.clone()
        }
    }

    /// The synthetic AFR batch of `(switch, local)`: deterministic keys
    /// over the shared population, seq-numbered for the §8 loop.
    pub fn workload(&self, switch: u32, local: u32) -> Vec<FlowRecord> {
        let global = global_subwindow(switch, local);
        (0..self.records_per_window)
            .map(|i| {
                let draw = mix64(WORKLOAD_SALT ^ self.seed ^ ((global as u64) << 16) ^ i as u64);
                let key = (draw % self.population.max(1) as u64) as u32;
                let count = 1 + (draw >> 32) % 100;
                let mut rec = FlowRecord::frequency(FlowKey::src_ip(key), count, global);
                rec.seq = i;
                rec
            })
            .collect()
    }

    /// The batch `(switch, local)` actually announces: the exact
    /// workload unless [`FleetConfig::sketch_feed`] is set, in which
    /// case the window passes through an MV-Sketch of that geometry and
    /// the announced records are its recovered heavy-hitter candidates
    /// with their estimated counts. Quality signals (occupancy,
    /// collisions, evictions) are published through `sketch_obs` when
    /// one is wired.
    pub fn announced_batch(
        &self,
        exact: &[FlowRecord],
        global: u32,
        sketch_obs: Option<&crate::sketchobs::ObsSketchObs>,
    ) -> Vec<FlowRecord> {
        let Some((rows, width)) = self.sketch_feed else {
            return exact.to_vec();
        };
        let mut mv = MvSketch::new(rows, width, self.seed ^ u64::from(global));
        for rec in exact {
            mv.update(&rec.key, rec.attr.scalar().round() as u64);
        }
        // `candidates()` is sorted and deduped, so the derived batch —
        // and everything downstream of it — is deterministic.
        let mut batch: Vec<FlowRecord> = mv
            .candidates()
            .into_iter()
            .map(|key| FlowRecord::frequency(key, mv.query(&key), global))
            .collect();
        for (i, rec) in batch.iter_mut().enumerate() {
            rec.seq = i as u32;
        }
        if let Some(o) = sketch_obs {
            mv.publish_quality(o);
        }
        batch
    }
}

/// What happens at one scheduled instant of the fleet run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum FleetEventKind {
    Join,
    Announce,
    Eos,
    Leave,
    Crash,
}

/// One entry of the precomputed, totally ordered event schedule.
#[derive(Debug, Clone, Copy)]
struct FleetEvent {
    at_ns: u64,
    /// Tie-break rank so same-instant events replay in a fixed order
    /// (joins first, then traffic, then departures).
    rank: u8,
    switch: u32,
    local: u32,
    kind: FleetEventKind,
}

/// Per-switch membership interval derived from the churn schedule.
#[derive(Debug, Clone, Copy)]
struct Presence {
    /// First instant the switch is live.
    from_ns: u64,
    /// First instant the switch is gone (`u64::MAX` = never leaves).
    until_ns: u64,
    crashes: bool,
}

/// Outcome of a fleet run.
#[derive(Debug)]
pub struct FleetReport {
    /// Fleet size the run was configured with.
    pub switches: u32,
    /// Controller workers.
    pub workers: usize,
    /// Windows whose announcement was sent (started lifecycles).
    pub started_windows: u64,
    /// Windows that merged complete batches.
    pub merged_windows: u64,
    /// Windows abandoned because their switch crashed mid-window.
    pub departed_windows: u64,
    /// Started windows per worker, in worker order.
    pub per_worker_started: Vec<u64>,
    /// Reliability counters folded across every worker.
    pub metrics: ReliabilityMetrics,
    /// Per-class delivery counters summed over every per-link channel.
    pub fault_stats: FaultStats,
    /// The fleet-wide merged view, folded across workers in canonical
    /// (ascending packed key) order — `encode_merged` on this is the
    /// byte-identity witness against the lossless baseline.
    pub merged: Vec<(FlowKey, AttrValue)>,
}

impl FleetReport {
    /// Every started window ended its lifecycle: merged or released via
    /// departure, nothing wedged in between.
    pub fn all_windows_accounted(&self) -> bool {
        self.started_windows == self.merged_windows + self.departed_windows
    }
}

/// Build the totally ordered event schedule for `cfg`.
fn schedule(cfg: &FleetConfig) -> (Vec<FleetEvent>, HashMap<u32, Presence>) {
    let mut presence: HashMap<u32, Presence> = (0..cfg.switches)
        .map(|s| {
            (
                s,
                Presence {
                    from_ns: 0,
                    until_ns: u64::MAX,
                    crashes: false,
                },
            )
        })
        .collect();
    for ev in &cfg.churn {
        assert!(ev.switch < cfg.switches, "churn references unknown switch");
        let p = presence.get_mut(&ev.switch).expect("bounded above");
        match ev.kind {
            ChurnKind::Join => p.from_ns = p.from_ns.max(ev.at.as_nanos()),
            ChurnKind::Leave => {
                p.until_ns = p.until_ns.min(ev.at.as_nanos());
            }
            ChurnKind::Crash => {
                if ev.at.as_nanos() <= p.until_ns {
                    p.until_ns = ev.at.as_nanos();
                    p.crashes = true;
                }
            }
        }
    }

    let mut events: Vec<FleetEvent> = Vec::new();
    for (&switch, p) in &presence {
        if p.from_ns > 0 {
            events.push(FleetEvent {
                at_ns: p.from_ns,
                rank: 0,
                switch,
                local: 0,
                kind: FleetEventKind::Join,
            });
        }
        if p.until_ns != u64::MAX {
            events.push(FleetEvent {
                at_ns: p.until_ns,
                rank: 3,
                switch,
                local: 0,
                kind: if p.crashes {
                    FleetEventKind::Crash
                } else {
                    FleetEventKind::Leave
                },
            });
        }
        for local in 0..cfg.local_windows {
            let announce = cfg.announce_ns(switch, local);
            if announce < p.from_ns || announce >= p.until_ns {
                continue;
            }
            events.push(FleetEvent {
                at_ns: announce,
                rank: 1,
                switch,
                local,
                kind: FleetEventKind::Announce,
            });
            let eos = cfg.eos_ns(switch, local);
            // A crash swallows the unfinished stream (the crash event
            // departs it); a graceful leave lets it drain.
            if !(p.crashes && eos >= p.until_ns) {
                events.push(FleetEvent {
                    at_ns: eos,
                    rank: 2,
                    switch,
                    local,
                    kind: FleetEventKind::Eos,
                });
            }
        }
    }
    events.sort_by_key(|e| (e.at_ns, e.rank, e.switch, e.local));
    (events, presence)
}

/// Run the fleet to completion and fold the outcome.
///
/// When `obs` is attached, every worker reports through it (per-shard
/// queue depth, reliability folds, lifecycle transitions) and the run
/// maintains the fleet gauges: `ow_fleet_switches_live` tracks
/// membership through churn, and `ow_fleet_windows_inflight{worker=…}`
/// counts announced-but-unfinished windows per worker (both settle to
/// their final values deterministically). Counter and histogram totals
/// are deterministic per seed; journal *interleaving* across workers is
/// not, so determinism checks compare the report, not the journal.
pub fn run(cfg: &FleetConfig, obs: Option<&Obs>) -> FleetReport {
    assert!(cfg.switches > 0, "a fleet needs switches");
    assert!(cfg.records_per_window > 0, "windows must announce records");
    let (events, presence) = schedule(cfg);

    // The switch-OS retained copies: every announced batch, keyed by
    // global sub-window. Workers read it from their router threads; the
    // channel send ordering makes each insert visible before the worker
    // can ask for it. Crash churn never mutates this map — windows whose
    // stream finished before the crash still recover from retained data.
    let store: Arc<Mutex<HashMap<u32, Vec<FlowRecord>>>> = Arc::new(Mutex::new(HashMap::new()));
    // Windows whose retransmission back-channel is forced dead (the
    // escalation drill), fixed before any worker starts.
    let dead: Arc<HashSet<u32>> = {
        let mut dead = HashSet::new();
        if cfg.escalate_every > 0 {
            let mut ordinal = 0u32;
            for ev in &events {
                if ev.kind == FleetEventKind::Announce {
                    ordinal += 1;
                    if ordinal % cfg.escalate_every == 0 {
                        dead.insert(global_subwindow(ev.switch, ev.local));
                    }
                }
            }
        }
        Arc::new(dead)
    };

    // Per-worker window counts size each worker's sliding span so no
    // window is evicted before shutdown (the fleet compares *complete*
    // merged views; sliding retention is exercised elsewhere).
    let mut per_worker_started = vec![0u64; cfg.workers];
    for ev in &events {
        if ev.kind == FleetEventKind::Announce {
            per_worker_started[worker_of(ev.switch, cfg.workers)] += 1;
        }
    }

    let workers: Vec<ReliableLiveController> = (0..cfg.workers)
        .map(|w| {
            let retrans_store = store.clone();
            let retrans_dead = dead.clone();
            let os_store = store.clone();
            ReliableLiveController::spawn_sharded_obs(
                (per_worker_started[w] as usize).max(1) + 1,
                256,
                RetryPolicy::default(),
                Box::new(move |sw, seqs| {
                    if retrans_dead.contains(&sw) {
                        return Vec::new();
                    }
                    let store = retrans_store.lock().expect("store lock");
                    let batch = &store[&sw];
                    seqs.iter().map(|&s| batch[s as usize]).collect()
                }),
                Box::new(move |sw| {
                    let store = os_store.lock().expect("store lock");
                    (store[&sw].clone(), Duration::from_millis(2))
                }),
                cfg.shards_per_worker.max(1),
                obs,
            )
        })
        .collect();

    let live_gauge: Option<Gauge> = obs.map(|o| o.gauge("ow_fleet_switches_live", &[]));
    let inflight_gauges: Option<Vec<Gauge>> = obs.map(|o| {
        (0..cfg.workers)
            .map(|w| o.gauge("ow_fleet_windows_inflight", &[("worker", &w.to_string())]))
            .collect()
    });
    if let Some(g) = &live_gauge {
        let initially_live = presence.values().filter(|p| p.from_ns == 0).count();
        g.set(initially_live as u64);
    }
    // Health-engine inputs: declared fleet size, crash liveness (leaves
    // are expected churn, crashes are faults), and per-rack offered/
    // dropped AFR counters for correlated-degradation detection. All
    // maintained on the replay thread, so totals are deterministic.
    let rack_count = cfg.switches.div_ceil(cfg.rack_size.max(1)).max(1);
    let crash_counter: Option<Counter> =
        obs.map(|o| o.counter("ow_fleet_switch_crashes_total", &[]));
    let rack_counters: Option<Vec<(Counter, Counter)>> = obs.map(|o| {
        (0..rack_count)
            .map(|r| {
                let r = r.to_string();
                (
                    o.counter("ow_fleet_rack_offered_total", &[("rack", &r)]),
                    o.counter("ow_fleet_rack_dropped_total", &[("rack", &r)]),
                )
            })
            .collect()
    });
    if let Some(o) = obs {
        o.gauge("ow_fleet_switches_declared", &[])
            .set(cfg.switches as u64);
    }
    // The accuracy observatory's feeder side: the oracle receives every
    // exact batch before loss and before any sketch compression; the
    // sketch adapter turns data-plane quality signals into telemetry.
    let accuracy = obs.and_then(|o| o.accuracy());
    let sketch_obs: Option<ObsSketchObs> = obs.map(ObsSketchObs::new);

    // Per-switch lossy links: a baseline channel plus a degraded burst
    // channel, both privately seeded so the draw sequences are fixed by
    // the schedule alone.
    let mut channels: HashMap<u32, (LossyChannel, LossyChannel)> = (0..cfg.switches)
        .map(|s| {
            let base = LossyChannel::new(FaultConfig::afr_loss(
                cfg.seed ^ mix64(s as u64),
                cfg.afr_loss,
            ));
            let burst_loss = cfg
                .bursts
                .iter()
                .find(|b| b.rack == cfg.rack_of(s))
                .map_or(cfg.afr_loss, |b| b.loss);
            let burst = LossyChannel::new(FaultConfig::afr_loss(
                cfg.seed ^ mix64(s as u64 | 1 << 40),
                burst_loss,
            ));
            (s, (base, burst))
        })
        .collect();
    let in_burst = |switch: u32, at_ns: u64| {
        cfg.bursts.iter().any(|b| {
            b.rack == cfg.rack_of(switch)
                && at_ns >= b.from.as_nanos()
                && at_ns < b.until.as_nanos()
        })
    };

    // Replay the schedule: every message lands on its worker in this
    // deterministic order.
    let mut started = 0u64;
    let mut departed = 0u64;
    let mut inflight: HashMap<u32, Vec<(u32, usize)>> = HashMap::new();
    for ev in &events {
        let worker = worker_of(ev.switch, cfg.workers);
        match ev.kind {
            FleetEventKind::Join => {
                if let Some(g) = &live_gauge {
                    g.inc();
                }
            }
            FleetEventKind::Announce => {
                let global = global_subwindow(ev.switch, ev.local);
                let exact = cfg.workload(ev.switch, ev.local);
                if let Some(acc) = &accuracy {
                    acc.feed_truth(global, &exact);
                }
                let batch = cfg.announced_batch(&exact, global, sketch_obs.as_ref());
                store
                    .lock()
                    .expect("store lock")
                    .insert(global, batch.clone());
                workers[worker]
                    .sender
                    .send(ReliableMsg::Announce {
                        subwindow: global,
                        announced: batch.len() as u32,
                    })
                    .expect("worker alive");
                let (base, burst) = channels.get_mut(&ev.switch).expect("declared switch");
                let channel = if in_burst(ev.switch, ev.at_ns) {
                    burst
                } else {
                    base
                };
                // Whatever survived the channel travels in columnar
                // bursts: one queue send per block, not per record.
                let offered = batch.len() as u64;
                let survivors = channel.transmit(PacketClass::AfrReport, batch);
                if let Some(racks) = &rack_counters {
                    let (offered_total, dropped_total) = &racks[cfg.rack_of(ev.switch) as usize];
                    offered_total.add(offered);
                    dropped_total.add(offered - survivors.len() as u64);
                }
                for chunk in survivors.chunks(FLEET_BLOCK_CAPACITY) {
                    workers[worker]
                        .sender
                        .send(ReliableMsg::AfrBlock(RecordBlock::from_records(
                            global, chunk,
                        )))
                        .expect("worker alive");
                }
                started += 1;
                inflight
                    .entry(ev.switch)
                    .or_default()
                    .push((global, worker));
                if let Some(gauges) = &inflight_gauges {
                    gauges[worker].inc();
                }
            }
            FleetEventKind::Eos => {
                let global = global_subwindow(ev.switch, ev.local);
                workers[worker]
                    .sender
                    .send(ReliableMsg::EndOfStream { subwindow: global })
                    .expect("worker alive");
                if let Some(open) = inflight.get_mut(&ev.switch) {
                    open.retain(|&(g, _)| g != global);
                }
                if let Some(gauges) = &inflight_gauges {
                    gauges[worker].dec();
                }
            }
            FleetEventKind::Leave => {
                if let Some(g) = &live_gauge {
                    g.dec();
                }
            }
            FleetEventKind::Crash => {
                if let Some(g) = &live_gauge {
                    g.dec();
                }
                if let Some(c) = &crash_counter {
                    c.inc();
                }
                for (global, w) in inflight.remove(&ev.switch).unwrap_or_default() {
                    workers[w]
                        .sender
                        .send(ReliableMsg::Depart { subwindow: global })
                        .expect("worker alive");
                    departed += 1;
                    if let Some(gauges) = &inflight_gauges {
                        gauges[w].dec();
                    }
                }
            }
        }
    }

    // Drain the tier and fold the outcome.
    let mut metrics = ReliabilityMetrics::default();
    let mut merged_windows = 0u64;
    let mut folded: BTreeMap<u128, (FlowKey, AttrValue)> = BTreeMap::new();
    for ctl in workers {
        let handle = ctl.handle.clone();
        metrics.merge(&ctl.join());
        merged_windows += handle.subwindows().len() as u64;
        for (key, value) in handle.snapshot() {
            match folded.entry(key.as_u128()) {
                std::collections::btree_map::Entry::Occupied(mut e) => {
                    e.get_mut()
                        .1
                        .merge(&value)
                        .expect("one merge kind per key in the fleet workload");
                }
                std::collections::btree_map::Entry::Vacant(e) => {
                    e.insert((key, value));
                }
            }
        }
    }
    let mut fault_stats = FaultStats::default();
    for (base, burst) in channels.values() {
        fault_stats.merge(base.stats());
        fault_stats.merge(burst.stats());
    }
    // Let the accuracy observatory's shadow lane finish scoring every
    // merged window the workers handed it — the health tick below reads
    // the accuracy gauges.
    if let Some(acc) = &accuracy {
        acc.quiesce();
    }
    // Evaluate the health engine (when installed) at the quiesce point:
    // after every worker has drained and joined, counter totals and
    // final gauge values are deterministic per seed — journal
    // *interleaving* across workers is not, which is exactly why the
    // fleet ticks at settle instead of mid-replay.
    if let Some(o) = obs {
        if let Some(health) = o.health() {
            let settle_ns = events.last().map_or(0, |e| e.at_ns) + cfg.subwindow_len.as_nanos();
            health.tick(Instant(settle_ns));
        }
    }
    FleetReport {
        switches: cfg.switches,
        workers: cfg.workers,
        started_windows: started,
        merged_windows,
        departed_windows: departed,
        per_worker_started,
        metrics,
        fault_stats,
        merged: folded.into_values().collect(),
    }
}

/// Rack-degradation threshold (‰ of offered AFRs dropped) for
/// `OW-HEALTH-302`: comfortably above the 30% heavy-loss steady state,
/// comfortably below a bursting rack's drop rate.
pub const RACK_DEGRADED_PERMILLE: u64 = 500;

/// The fleet rule catalog (`OW-HEALTH-3xx`) for runs driven through
/// [`run`] with observability attached. Evaluated at the post-drain
/// settle tick, so every signal reads quiesced, deterministic totals.
///
/// | code | rule | signal |
/// |------|------|--------|
/// | `OW-HEALTH-301` | `fleet_switch_crash` | any crash departure (graceful leaves stay silent) |
/// | `OW-HEALTH-302` | `rack_degraded` | per-rack dropped/offered ratio above [`RACK_DEGRADED_PERMILLE`] |
/// | `OW-HEALTH-303` | `fleet_window_wedged` | in-flight windows left after the fleet drained (**critical**) |
pub fn fleet_health_rules() -> RuleSet {
    RuleSet::new(vec![
        Rule::new(
            "OW-HEALTH-301",
            "fleet_switch_crash",
            MetricSelector::new("ow_fleet_switch_crashes_total", &[]),
            Signal::Value,
            Cmp::Above,
            0,
            Severity::Warning,
        )
        .entity("fleet"),
        Rule::new(
            "OW-HEALTH-302",
            "rack_degraded",
            MetricSelector::new("ow_fleet_rack_dropped_total", &[]),
            Signal::RatioPermille {
                denominator: MetricSelector::new("ow_fleet_rack_offered_total", &[]),
            },
            Cmp::Above,
            RACK_DEGRADED_PERMILLE,
            Severity::Warning,
        )
        .group_by("rack")
        .entity("rack"),
        Rule::new(
            "OW-HEALTH-303",
            "fleet_window_wedged",
            MetricSelector::new("ow_fleet_windows_inflight", &[]),
            Signal::Value,
            Cmp::Above,
            0,
            Severity::Critical,
        )
        .entity("fleet"),
    ])
    .expect("fleet rule catalog validates")
}

#[cfg(test)]
mod tests {
    use super::*;
    use ow_obs::FlightRecorderConfig;

    #[test]
    fn rendezvous_assignment_is_stable_and_minimally_disruptive() {
        let before: Vec<usize> = (0..256).map(|s| worker_of(s, 8)).collect();
        // Deterministic.
        assert_eq!(
            before,
            (0..256).map(|s| worker_of(s, 8)).collect::<Vec<_>>()
        );
        // Every worker serves someone.
        for w in 0..8 {
            assert!(before.contains(&w), "worker {w} unused");
        }
        // Growing the tier only moves switches *onto* the new worker.
        let after: Vec<usize> = (0..256).map(|s| worker_of(s, 9)).collect();
        let moved = before
            .iter()
            .zip(&after)
            .filter(|(b, a)| b != a)
            .collect::<Vec<_>>();
        assert!(!moved.is_empty(), "the new worker takes some load");
        assert!(
            moved.iter().all(|(_, &a)| a == 8),
            "moves only target the new worker"
        );
    }

    #[test]
    fn global_subwindow_round_trips() {
        for switch in [0u32, 1, 511, (1 << 23) - 1] {
            for local in [0u32, 1, 255] {
                assert_eq!(subwindow_switch(global_subwindow(switch, local)), switch);
            }
        }
    }

    #[test]
    fn stagger_spreads_the_fleet_across_the_period() {
        let cfg = FleetConfig {
            switches: 128,
            ..FleetConfig::default()
        };
        let offsets: HashSet<u64> = (0..cfg.switches).map(|s| cfg.stagger_ns(s)).collect();
        assert!(
            offsets.len() > 100,
            "128 switches landed on only {} distinct offsets",
            offsets.len()
        );
        let period = cfg.subwindow_len.as_nanos();
        assert!(offsets.iter().all(|&o| o < period));
    }

    #[test]
    fn small_lossless_fleet_merges_every_window() {
        let cfg = FleetConfig {
            switches: 8,
            workers: 2,
            local_windows: 3,
            afr_loss: 0.0,
            ..FleetConfig::default()
        };
        let report = run(&cfg, None);
        assert_eq!(report.started_windows, 24);
        assert_eq!(report.merged_windows, 24);
        assert_eq!(report.departed_windows, 0);
        assert!(report.all_windows_accounted());
        assert!(report.metrics.lossless());
        assert_eq!(report.metrics.announced, 24 * 24);
        assert_eq!(report.per_worker_started.iter().sum::<u64>(), 24);
    }

    #[test]
    fn crash_churn_departs_only_unfinished_windows() {
        let cfg = FleetConfig {
            switches: 4,
            workers: 2,
            local_windows: 4,
            afr_loss: 0.0,
            // Crash switch 1 mid-run: whatever it announced without
            // finishing departs; everything else merges.
            churn: vec![ChurnEvent {
                at: Duration::from_micros(1_700),
                switch: 1,
                kind: ChurnKind::Crash,
            }],
            ..FleetConfig::default()
        };
        let report = run(&cfg, None);
        assert!(report.all_windows_accounted());
        assert!(
            report.started_windows < 16,
            "the crash cancels later windows"
        );
        assert_eq!(report.metrics.departed, report.departed_windows);
    }

    #[test]
    fn same_seed_reproduces_the_report() {
        let cfg = FleetConfig {
            switches: 16,
            workers: 3,
            afr_loss: 0.2,
            escalate_every: 5,
            churn: vec![
                ChurnEvent {
                    at: Duration::from_micros(1_200),
                    switch: 3,
                    kind: ChurnKind::Crash,
                },
                ChurnEvent {
                    at: Duration::from_micros(2_500),
                    switch: 9,
                    kind: ChurnKind::Leave,
                },
            ],
            ..FleetConfig::default()
        };
        let a = run(&cfg, None);
        let b = run(&cfg, None);
        assert_eq!(a.started_windows, b.started_windows);
        assert_eq!(a.merged_windows, b.merged_windows);
        assert_eq!(a.departed_windows, b.departed_windows);
        assert_eq!(a.metrics, b.metrics);
        assert_eq!(a.fault_stats, b.fault_stats);
        assert_eq!(a.merged, b.merged);
    }

    #[test]
    fn lossless_fleet_with_health_engine_raises_no_alerts() {
        let obs = Obs::new();
        let engine = obs.install_health(fleet_health_rules(), FlightRecorderConfig::default());
        let cfg = FleetConfig {
            switches: 8,
            workers: 2,
            local_windows: 2,
            afr_loss: 0.0,
            ..FleetConfig::default()
        };
        let report = run(&cfg, Some(&obs));
        assert!(report.metrics.lossless());
        // The false-positive gate: a clean fleet fires nothing.
        assert!(engine.timeline().is_empty(), "{:?}", engine.timeline());
        assert!(!engine.frozen());
        let snap = obs.snapshot();
        assert_eq!(snap.value("ow_health_fleet_score", &[]), 1000);
        assert_eq!(
            snap.value("ow_health_ticks_total", &[]),
            1,
            "settle tick ran"
        );
    }

    #[test]
    fn crash_and_rack_burst_fire_exactly_their_fleet_rules() {
        let obs = Obs::new();
        let engine = obs.install_health(fleet_health_rules(), FlightRecorderConfig::default());
        let cfg = FleetConfig {
            switches: 16,
            workers: 2,
            local_windows: 3,
            afr_loss: 0.0,
            // Rack 1 (switches 8..16) degrades to 90% loss for the
            // whole run; rack 0 stays clean.
            bursts: vec![RackBurst {
                rack: 1,
                from: Duration::ZERO,
                until: Duration::from_millis(100),
                loss: 0.9,
            }],
            churn: vec![ChurnEvent {
                at: Duration::from_micros(1_700),
                switch: 2,
                kind: ChurnKind::Crash,
            }],
            ..FleetConfig::default()
        };
        let report = run(&cfg, Some(&obs));
        assert!(report.all_windows_accounted());
        let timeline = engine.timeline();
        let fired: Vec<(&str, &str)> = timeline
            .iter()
            .map(|a| (a.code.as_str(), a.entity.as_str()))
            .collect();
        assert!(fired.contains(&("OW-HEALTH-301", "fleet")), "{fired:?}");
        assert!(fired.contains(&("OW-HEALTH-302", "rack:1")), "{fired:?}");
        // Precision: the healthy rack does not fire, nothing wedged.
        assert!(!fired.contains(&("OW-HEALTH-302", "rack:0")), "{fired:?}");
        assert!(
            !fired.iter().any(|(c, _)| *c == "OW-HEALTH-303"),
            "{fired:?}"
        );
        assert!(!engine.frozen(), "no critical rule fired");
    }
}
