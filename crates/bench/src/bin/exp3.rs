//! Exp#3 (Figure 9): per-iteration training time via user-defined
//! window signals.

use omniwindow::experiments::exp3_dml;
use ow_bench::Cli;
use ow_trace::dml::{compression_ratio, DmlConfig};

fn main() {
    let cli = Cli::parse();
    let cfg = DmlConfig::default();
    eprintln!(
        "running Exp#3 (DML case study): {} workers × {} iterations…",
        cfg.workers, cfg.iterations
    );
    let result = exp3_dml::run(&cfg);

    println!("Exp#3: distributed-ML iteration times (Figure 9)");
    println!(
        "compression doubles every {} iterations\n",
        cfg.double_every
    );
    println!(
        "{:>9} {:>6} {:>14} {:>12}",
        "iteration", "ratio", "mean time (µs)", "per worker"
    );
    for it in (1..=cfg.iterations).step_by(4) {
        let ratio = compression_ratio(&cfg, it - 1);
        let per_worker: Vec<String> = (0..cfg.workers)
            .map(|w| {
                result
                    .times
                    .iter()
                    .find(|t| t.iteration == it && t.worker == w)
                    .map(|t| format!("{:.0}", t.micros))
                    .unwrap_or_else(|| "-".into())
            })
            .collect();
        println!(
            "{:>9} {:>6} {:>14.0} {:>12}",
            it,
            ratio,
            result.mean_time(it),
            per_worker.join("/")
        );
    }
    cli.dump(&result);
}
