//! Soundness of the static verifier against the runtime discipline,
//! plus one negative test per stable error code.
//!
//! The central property: **any program the verifier accepts executes on
//! the real `ow-switch` register machinery without a C4 violation, an
//! address error, or a leaked pass**. The verifier and the runtime are
//! two independent encodings of the §2 constraints; this suite keeps
//! them from drifting apart.

use ow_switch::placement::StageLimits;
use ow_verify::exec::execute;
use ow_verify::{
    omniwindow_program, verify, AccessDecl, AccessKind, ErrorCode, FeatureDecl, PacketClass,
    PathDecl, PipelineProgram, RegisterDecl, StepDecl,
};
use proptest::prelude::*;

fn kind_of(k: u8) -> AccessKind {
    match k % 4 {
        0 => AccessKind::Read,
        1 => AccessKind::AddSat,
        2 => AccessKind::Max,
        _ => AccessKind::Write,
    }
}

fn class_of(c: u8) -> PacketClass {
    match c % 5 {
        0 => PacketClass::Normal,
        1 => PacketClass::Clear,
        2 => PacketClass::Recirculated,
        3 => PacketClass::Retransmit,
        _ => PacketClass::OsRead,
    }
}

/// Build a program from flat generated data. Deliberately allowed to be
/// invalid in every dimension the verifier checks: the property filters
/// on the verifier's verdict, so both accepted and rejected shapes are
/// exercised.
#[allow(clippy::type_complexity)]
fn build_program(
    registers: Vec<(usize, usize)>,
    features: Vec<Vec<(u32, u32, u32, u32)>>,
    paths: Vec<(u8, Vec<(usize, u8, usize)>, Option<u64>)>,
) -> PipelineProgram {
    let mut program = PipelineProgram::new("generated", StageLimits::default());
    for (i, (regions, cells)) in registers.iter().enumerate() {
        program = program.register(RegisterDecl::new(format!("r{i}"), *regions, *cells));
    }
    let nregs = registers.len().max(1);
    for (i, steps) in features.iter().enumerate() {
        program = program.feature(FeatureDecl::new(
            format!("f{i}"),
            steps
                .iter()
                .map(|&(sram_kb, salus, vliw, gateways)| StepDecl {
                    sram_kb,
                    salus,
                    vliw,
                    gateways,
                })
                .collect(),
        ));
    }
    for (i, (class, accesses, bound)) in paths.into_iter().enumerate() {
        let mut path = PathDecl::new(
            format!("p{i}"),
            class_of(class),
            accesses
                .into_iter()
                .map(|(reg, kind, max_index)| {
                    AccessDecl::new(format!("r{}", reg % nregs), kind_of(kind), max_index)
                })
                .collect(),
        );
        if let Some(b) = bound {
            path.max_recirculations = Some(b);
        }
        program = program.path(path);
    }
    program
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Verifier-accepted programs never hit a runtime C4 / bounds /
    /// pass-discipline error and leak no pass.
    #[test]
    fn accepted_programs_execute_cleanly(
        registers in proptest::collection::vec((1usize..3, 1usize..64), 1..4),
        features in proptest::collection::vec(
            proptest::collection::vec((0u32..200, 0u32..3, 0u32..5, 0u32..4), 1..4),
            1..4,
        ),
        paths in proptest::collection::vec(
            (
                0u8..5,
                proptest::collection::vec((0usize..4, 0u8..4, 0usize..80), 0..5),
                proptest::option::of(0u64..100),
            ),
            1..5,
        ),
    ) {
        let program = build_program(registers, features, paths);
        if let Ok(witness) = verify(&program) {
            let exec = execute(&program);
            prop_assert!(
                exec.is_ok(),
                "statically verified program failed at runtime: {:?}\nprogram: {:#?}",
                exec.err(),
                witness.program()
            );
            let exec = exec.unwrap();
            prop_assert_eq!(exec.leaked_passes, 0);
            prop_assert!(witness.placement().stages_used <= program.limits.stages);
        }
    }

    /// Rejection is stable: a rejected program is rejected with at least
    /// one error diagnostic carrying a context string.
    #[test]
    fn rejections_carry_diagnostics(
        registers in proptest::collection::vec((0usize..3, 0usize..64), 0..4),
        paths in proptest::collection::vec(
            (
                0u8..5,
                proptest::collection::vec((0usize..4, 0u8..4, 0usize..80), 0..6),
                proptest::option::of(0u64..100),
            ),
            0..5,
        ),
    ) {
        let program = build_program(registers, vec![vec![(0, 2, 1, 1)]], paths);
        if let Err(report) = verify(&program) {
            prop_assert!(!report.ok);
            prop_assert!(report.errors().count() > 0);
            for d in report.errors() {
                prop_assert!(!d.context.is_empty() && !d.message.is_empty());
            }
        }
    }
}

/// A minimal valid program each negative test perturbs in exactly one
/// dimension.
fn valid_program() -> PipelineProgram {
    PipelineProgram::new("minimal", StageLimits::default())
        .register(RegisterDecl::new("state", 2, 16))
        .register(RegisterDecl::new("counter", 1, 1))
        .feature(FeatureDecl::new(
            "update",
            vec![
                StepDecl {
                    sram_kb: 1,
                    salus: 1,
                    vliw: 1,
                    gateways: 1,
                },
                StepDecl {
                    sram_kb: 0,
                    salus: 1,
                    vliw: 1,
                    gateways: 1,
                },
            ],
        ))
        .path(PathDecl::new(
            "normal",
            PacketClass::Normal,
            vec![
                AccessDecl::new("state", AccessKind::AddSat, 15),
                AccessDecl::new("counter", AccessKind::Max, 0),
            ],
        ))
        .path(
            PathDecl::new(
                "clear",
                PacketClass::Clear,
                vec![AccessDecl::new("state", AccessKind::Write, 15)],
            )
            .with_recirc_bound(16),
        )
}

#[test]
fn minimal_valid_program_is_accepted() {
    let witness = verify(&valid_program()).expect("baseline must verify");
    assert!(witness.report().ok);
    assert!(execute(&valid_program()).is_ok());
}

#[test]
fn double_salu_access_on_clear_path_is_rejected() {
    // The ISSUE acceptance case: a clear-packet path touching the same
    // register array twice in one pass.
    let mut program = valid_program();
    program.paths[1]
        .accesses
        .push(AccessDecl::new("state", AccessKind::Read, 0));
    let report = verify(&program).unwrap_err();
    assert!(report.has_code(ErrorCode::C4DoubleAccess), "{report}");
    assert!(execute(&program).is_err(), "runtime agrees");
}

#[test]
fn unknown_register_is_rejected() {
    let mut program = valid_program();
    program.paths[0]
        .accesses
        .push(AccessDecl::new("ghost", AccessKind::Read, 0));
    let report = verify(&program).unwrap_err();
    assert!(report.has_code(ErrorCode::UnknownRegister), "{report}");
}

#[test]
fn bad_register_is_rejected() {
    let program = valid_program().register(RegisterDecl::new("empty", 2, 0));
    let report = verify(&program).unwrap_err();
    assert!(report.has_code(ErrorCode::BadRegister), "{report}");

    let program = valid_program().register(RegisterDecl::new("state", 2, 16));
    let report = verify(&program).unwrap_err();
    assert!(
        report.has_code(ErrorCode::BadRegister),
        "duplicate: {report}"
    );
}

#[test]
fn out_of_region_index_is_rejected() {
    let mut program = valid_program();
    // Index 16 aliases the second region of a 16-cell region.
    program.paths[0].accesses[0].max_index = 16;
    let report = verify(&program).unwrap_err();
    assert!(report.has_code(ErrorCode::AddrOutOfBounds), "{report}");
    assert!(execute(&program).is_err(), "runtime agrees");
}

#[test]
fn stage_overflow_is_rejected() {
    let steps = vec![
        StepDecl {
            sram_kb: 0,
            salus: 0,
            vliw: 1,
            gateways: 0,
        };
        13
    ];
    let program = valid_program().feature(FeatureDecl::new("long-chain", steps));
    let report = verify(&program).unwrap_err();
    assert!(report.has_code(ErrorCode::StageOverflow), "{report}");
}

#[test]
fn per_stage_budget_overflows_are_rejected() {
    let oversized = |step: StepDecl, code: ErrorCode| {
        let program = valid_program().feature(FeatureDecl::new("fat", vec![step]));
        let report = verify(&program).unwrap_err();
        assert!(report.has_code(code), "{code:?}: {report}");
    };
    oversized(
        StepDecl {
            sram_kb: 2000,
            salus: 0,
            vliw: 0,
            gateways: 0,
        },
        ErrorCode::SramOverflow,
    );
    oversized(
        StepDecl {
            sram_kb: 0,
            salus: 5,
            vliw: 0,
            gateways: 0,
        },
        ErrorCode::SaluOverflow,
    );
    oversized(
        StepDecl {
            sram_kb: 0,
            salus: 0,
            vliw: 9,
            gateways: 0,
        },
        ErrorCode::VliwOverflow,
    );
    oversized(
        StepDecl {
            sram_kb: 0,
            salus: 0,
            vliw: 0,
            gateways: 9,
        },
        ErrorCode::GatewayOverflow,
    );
}

#[test]
fn salu_underprovisioning_is_rejected() {
    let mut program = valid_program();
    // Strip every SALU from the feature steps: two register arrays are
    // left with no SALU to serve them.
    for feature in &mut program.features {
        for step in &mut feature.steps {
            step.salus = 0;
        }
    }
    let report = verify(&program).unwrap_err();
    assert!(report.has_code(ErrorCode::SaluUnderprovisioned), "{report}");
}

#[test]
fn unbounded_recirculation_is_rejected() {
    let mut program = valid_program();
    program.paths[1].max_recirculations = None;
    let report = verify(&program).unwrap_err();
    assert!(report.has_code(ErrorCode::RecircUnbounded), "{report}");
    assert!(execute(&program).is_err(), "runtime agrees");
}

#[test]
fn control_plane_salu_access_is_rejected() {
    let program = valid_program().path(PathDecl::new(
        "retransmit",
        PacketClass::Retransmit,
        vec![AccessDecl::new("state", AccessKind::Read, 0)],
    ));
    let report = verify(&program).unwrap_err();
    assert!(report.has_code(ErrorCode::ControlPlaneSalu), "{report}");
    assert!(execute(&program).is_err(), "runtime agrees");
}

#[test]
fn missing_clear_path_is_a_warning_not_an_error() {
    let mut program = valid_program();
    program.paths.remove(1); // drop the clear path; two-region state remains
    let witness = verify(&program).expect("warnings do not reject");
    assert!(witness.report().has_code(ErrorCode::MissingPath));
    assert!(witness.report().ok);
}

#[test]
fn placement_infeasibility_names_feature_step_and_resource() {
    // A program no stage assignment can place: two stages with one
    // SALU and two VLIW slots each, but three SALU steps and a 2-VLIW
    // step that must share the pipeline. The diagnostic must say which
    // feature/step wedged and which resource class ran out — not the
    // old anonymous "placement" arm.
    let limits = StageLimits {
        stages: 2,
        sram_kb: 64,
        salus: 1,
        vliw: 2,
        gateways: 4,
    };
    let program = PipelineProgram::new("wedge", limits)
        .register(RegisterDecl::new("a", 1, 8))
        .register(RegisterDecl::new("b", 1, 8))
        .feature(FeatureDecl::new(
            "deep",
            vec![
                StepDecl {
                    sram_kb: 0,
                    salus: 1,
                    vliw: 1,
                    gateways: 1,
                },
                StepDecl {
                    sram_kb: 0,
                    salus: 0,
                    vliw: 2,
                    gateways: 1,
                },
            ],
        ))
        .feature(FeatureDecl::new(
            "rider",
            vec![StepDecl {
                sram_kb: 0,
                salus: 1,
                vliw: 1,
                gateways: 1,
            }],
        ))
        .path(PathDecl::new(
            "normal",
            PacketClass::Normal,
            vec![
                AccessDecl::new("a", AccessKind::AddSat, 7),
                AccessDecl::new("b", AccessKind::AddSat, 7),
            ],
        ));
    let report = verify(&program).unwrap_err();
    assert!(report.has_code(ErrorCode::PlaceInfeasible), "{report}");
    let diag = report
        .diagnostics
        .iter()
        .find(|d| d.code == ErrorCode::PlaceInfeasible)
        .unwrap();
    assert!(
        diag.context.contains("feature '"),
        "context names the wedged feature: {}",
        diag.context
    );
    assert!(
        diag.context.contains("step "),
        "context names the wedged step: {}",
        diag.context
    );
    assert!(
        diag.message.contains("salu") || diag.message.contains("vliw"),
        "message names the exhausted resource class: {}",
        diag.message
    );
}

#[test]
fn table2_configuration_is_accepted() {
    // The ISSUE acceptance case: the paper's Table-2 OmniWindow
    // configuration passes the full verifier.
    let program = omniwindow_program(&ow_switch::resources::ResourceConfig::default(), 32 * 1024);
    let witness = verify(&program).expect("Table-2 must verify");
    assert!(witness.placement().stages_used <= 12);
    let exec = execute(&program).expect("and execute");
    assert_eq!(exec.leaked_passes, 0);
}
