//! A live, threaded switch→controller deployment.
//!
//! The simulation experiments run single-threaded on virtual time, but a
//! real deployment has the data plane and the controller on different
//! processors connected by a message stream. This module provides that
//! runtime shape: a bounded crossbeam channel carries per-sub-window AFR
//! batches from the (switch-side) producer thread to a controller thread
//! that folds them into a shared, lock-protected merge table; queries
//! read the table concurrently through the [`LiveHandle`].

use std::collections::HashMap;
use std::thread::JoinHandle;

use crossbeam::channel::{bounded, Receiver, Sender};
use parking_lot::RwLock;
use std::sync::Arc;

use ow_common::afr::FlowRecord;
use ow_common::flowkey::FlowKey;
use ow_common::metrics::ReliabilityMetrics;
use ow_common::time::Duration;

use crate::collector::CollectionSession;
use crate::reliability::{FnTransport, ReliabilityDriver, RetryPolicy};
use crate::table::MergeTable;

/// A message from the data plane to the controller.
#[derive(Debug, Clone)]
pub enum DataPlaneMsg {
    /// One terminated sub-window's AFR batch.
    AfrBatch {
        /// The terminated sub-window.
        subwindow: u32,
        /// Its AFRs.
        afrs: Vec<FlowRecord>,
    },
    /// End of stream: the controller thread drains and exits.
    Shutdown,
}

/// Shared handle for querying the live merge table.
#[derive(Debug, Clone)]
pub struct LiveHandle {
    table: Arc<RwLock<MergeTable>>,
    window_subwindows: usize,
}

impl LiveHandle {
    /// Flows whose merged scalar is at least `threshold`, right now.
    pub fn flows_over(&self, threshold: f64) -> Vec<(FlowKey, f64)> {
        self.table.read().flows_over(threshold)
    }

    /// Number of flows currently merged.
    pub fn merged_flows(&self) -> usize {
        self.table.read().len()
    }

    /// The sub-windows currently contributing to the table.
    pub fn subwindows(&self) -> Vec<u32> {
        self.table.read().subwindows()
    }

    /// Sub-windows per sliding window.
    pub fn window_span(&self) -> usize {
        self.window_subwindows
    }
}

/// The running controller: its input channel, query handle, and thread.
pub struct LiveController {
    /// Send AFR batches (and finally `Shutdown`) here.
    pub sender: Sender<DataPlaneMsg>,
    /// Concurrent query access.
    pub handle: LiveHandle,
    thread: JoinHandle<u64>,
}

impl LiveController {
    /// Spawn a controller maintaining a sliding window of
    /// `window_subwindows` sub-windows. `queue_depth` bounds the channel
    /// (back-pressure toward the data plane, as a NIC queue would).
    pub fn spawn(window_subwindows: usize, queue_depth: usize) -> LiveController {
        let (tx, rx): (Sender<DataPlaneMsg>, Receiver<DataPlaneMsg>) = bounded(queue_depth);
        let table = Arc::new(RwLock::new(MergeTable::new()));
        let handle = LiveHandle {
            table: table.clone(),
            window_subwindows,
        };
        let thread = std::thread::spawn(move || {
            let mut batches = 0u64;
            while let Ok(msg) = rx.recv() {
                match msg {
                    DataPlaneMsg::AfrBatch { subwindow, afrs } => {
                        let mut t = table.write();
                        t.insert_batch(subwindow, afrs);
                        while t.subwindows().len() > window_subwindows {
                            t.evict_oldest();
                        }
                        batches += 1;
                    }
                    DataPlaneMsg::Shutdown => break,
                }
            }
            batches
        });
        LiveController {
            sender: tx,
            handle,
            thread,
        }
    }

    /// Signal shutdown and wait for the controller thread; returns the
    /// number of batches it processed.
    pub fn join(self) -> u64 {
        let _ = self.sender.send(DataPlaneMsg::Shutdown);
        self.thread.join().expect("controller thread panicked")
    }
}

/// A message on the reliability-aware live path. Unlike
/// [`DataPlaneMsg`], AFRs stream individually (they are individually
/// droppable on the wire) and each sub-window is bracketed by an
/// announcement and an end-of-stream mark.
#[derive(Debug, Clone)]
pub enum ReliableMsg {
    /// Trigger-packet announcement: `announced` AFRs are coming for
    /// `subwindow`. A duplicate announcement (the trigger clone was
    /// duplicated in the fabric) is idempotent.
    Announce {
        /// The terminated sub-window.
        subwindow: u32,
        /// How many AFRs its batch holds.
        announced: u32,
    },
    /// One AFR report clone — whatever survived the lossy channel, in
    /// arrival order (possibly before its announcement).
    Afr(FlowRecord),
    /// The switch finished emitting `subwindow`'s initial stream; the
    /// controller may now run the recovery loop and merge.
    EndOfStream {
        /// The sub-window whose stream ended.
        subwindow: u32,
    },
    /// End of input: finalize every open session, then exit.
    Shutdown,
}

/// Controller→switch back-channel serving retransmission requests:
/// `(subwindow, missing seq ids) → replayed AFRs` (empty when the
/// request or its replies were lost).
pub type RetransmitFn = Box<dyn FnMut(u32, &[u32]) -> Vec<FlowRecord> + Send>;

/// The OS-path escalation: `subwindow → (full batch, charged latency)`.
pub type OsReadFn = Box<dyn FnMut(u32) -> (Vec<FlowRecord>, Duration) + Send>;

/// A [`LiveController`] variant that tolerates AFR loss: per-sub-window
/// [`CollectionSession`]s verify completeness against the announced
/// count, and a [`ReliabilityDriver`] runs the §8 recovery loop
/// (retransmission rounds, then OS-path escalation) through caller
/// supplied callbacks before anything is merged. Only complete batches
/// ever reach the table.
pub struct ReliableLiveController {
    /// Send announcements, AFRs, end-of-stream marks, then `Shutdown`.
    pub sender: Sender<ReliableMsg>,
    /// Concurrent query access.
    pub handle: LiveHandle,
    thread: JoinHandle<ReliabilityMetrics>,
}

impl ReliableLiveController {
    /// Spawn the controller thread. `retransmit` and `os_read` are the
    /// back-channel to the switch (typically spliced through a lossy
    /// channel in experiments).
    pub fn spawn(
        window_subwindows: usize,
        queue_depth: usize,
        policy: RetryPolicy,
        mut retransmit: RetransmitFn,
        mut os_read: OsReadFn,
    ) -> ReliableLiveController {
        let (tx, rx): (Sender<ReliableMsg>, Receiver<ReliableMsg>) = bounded(queue_depth);
        let table = Arc::new(RwLock::new(MergeTable::new()));
        let handle = LiveHandle {
            table: table.clone(),
            window_subwindows,
        };
        let thread = std::thread::spawn(move || {
            let driver = ReliabilityDriver::new(policy);
            let mut total = ReliabilityMetrics::default();
            // Open sessions and AFRs that raced ahead of their
            // announcement (reordering across the message stream).
            let mut sessions: HashMap<u32, (CollectionSession, ReliabilityMetrics)> =
                HashMap::new();
            let mut early: HashMap<u32, Vec<FlowRecord>> = HashMap::new();

            let feed = |entry: &mut (CollectionSession, ReliabilityMetrics), rec: FlowRecord| {
                let before = entry.0.received();
                if entry.0.receive(rec).is_ok() {
                    if entry.0.received() > before {
                        entry.1.first_pass += 1;
                    } else {
                        entry.1.duplicates += 1;
                    }
                }
            };

            let mut finalize = |subwindow: u32,
                                entry: (CollectionSession, ReliabilityMetrics),
                                total: &mut ReliabilityMetrics| {
                let (mut session, mut metrics) = entry;
                driver.complete_session(
                    &mut session,
                    &mut metrics,
                    &mut FnTransport {
                        retransmit: &mut retransmit,
                        os_read: &mut os_read,
                    },
                );
                total.merge(&metrics);
                let mut t = table.write();
                t.insert_batch(subwindow, session.into_batch());
                while t.subwindows().len() > window_subwindows {
                    t.evict_oldest();
                }
            };

            while let Ok(msg) = rx.recv() {
                match msg {
                    ReliableMsg::Announce {
                        subwindow,
                        announced,
                    } => {
                        let entry = sessions.entry(subwindow).or_insert_with(|| {
                            let m = ReliabilityMetrics {
                                announced: announced as u64,
                                ..Default::default()
                            };
                            (CollectionSession::new(subwindow, announced), m)
                        });
                        for rec in early.remove(&subwindow).unwrap_or_default() {
                            feed(entry, rec);
                        }
                    }
                    ReliableMsg::Afr(rec) => match sessions.get_mut(&rec.subwindow) {
                        Some(entry) => feed(entry, rec),
                        None => early.entry(rec.subwindow).or_default().push(rec),
                    },
                    ReliableMsg::EndOfStream { subwindow } => {
                        if let Some(entry) = sessions.remove(&subwindow) {
                            finalize(subwindow, entry, &mut total);
                        }
                    }
                    ReliableMsg::Shutdown => break,
                }
            }
            // Sessions whose end-of-stream mark was lost still complete:
            // the recovery loop fetches whatever the first pass missed.
            let mut rest: Vec<(u32, (CollectionSession, ReliabilityMetrics))> =
                sessions.drain().collect();
            rest.sort_by_key(|(sw, _)| *sw);
            for (sw, entry) in rest {
                finalize(sw, entry, &mut total);
            }
            total
        });
        ReliableLiveController {
            sender: tx,
            handle,
            thread,
        }
    }

    /// Signal shutdown and wait for the controller thread; returns the
    /// aggregated reliability counters across all sessions.
    pub fn join(self) -> ReliabilityMetrics {
        let _ = self.sender.send(ReliableMsg::Shutdown);
        self.thread.join().expect("controller thread panicked")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn batch(sw: u32, flows: std::ops::Range<u32>, n: u64) -> DataPlaneMsg {
        DataPlaneMsg::AfrBatch {
            subwindow: sw,
            afrs: flows
                .map(|i| FlowRecord::frequency(FlowKey::src_ip(i), n, sw))
                .collect(),
        }
    }

    #[test]
    fn live_pipeline_merges_and_slides() {
        let ctl = LiveController::spawn(2, 16);
        ctl.sender.send(batch(0, 0..10, 60)).unwrap();
        ctl.sender.send(batch(1, 0..10, 80)).unwrap();
        // Wait for the controller to drain.
        while ctl.handle.merged_flows() < 10 {
            std::thread::yield_now();
        }
        // 60 + 80 = 140 ≥ 100: boundary flows visible live.
        let mut over = Vec::new();
        for _ in 0..1000 {
            over = ctl.handle.flows_over(100.0);
            if over.len() == 10 {
                break;
            }
            std::thread::yield_now();
        }
        assert_eq!(over.len(), 10);

        // Slide: sub-window 2 evicts sub-window 0.
        ctl.sender.send(batch(2, 0..10, 5)).unwrap();
        let mut sws = Vec::new();
        for _ in 0..10_000 {
            sws = ctl.handle.subwindows();
            if sws == vec![1, 2] {
                break;
            }
            std::thread::yield_now();
        }
        assert_eq!(sws, vec![1, 2]);
        assert_eq!(ctl.join(), 3);
    }

    #[test]
    fn shutdown_without_traffic() {
        let ctl = LiveController::spawn(5, 4);
        assert_eq!(ctl.join(), 0);
    }

    fn seq_batch(sw: u32, n: u32) -> Vec<FlowRecord> {
        (0..n)
            .map(|seq| {
                let mut r = FlowRecord::frequency(FlowKey::src_ip(seq + 1), seq as u64 + 1, sw);
                r.seq = seq;
                r
            })
            .collect()
    }

    #[test]
    fn reliable_controller_repairs_lossy_stream() {
        // The switch retains both sub-windows' batches; the back-channel
        // replays faithfully.
        let store: HashMap<u32, Vec<FlowRecord>> =
            (0..2u32).map(|sw| (sw, seq_batch(sw, 10))).collect();
        let retrans_store = store.clone();
        let ctl = ReliableLiveController::spawn(
            2,
            64,
            RetryPolicy::default(),
            Box::new(move |sw, seqs| {
                let batch = &retrans_store[&sw];
                seqs.iter().map(|&s| batch[s as usize]).collect()
            }),
            Box::new(|_| panic!("no escalation expected")),
        );
        for sw in 0..2u32 {
            ctl.sender
                .send(ReliableMsg::Announce {
                    subwindow: sw,
                    announced: 10,
                })
                .unwrap();
            // Drop every third AFR from the initial stream.
            for rec in store[&sw].iter().filter(|r| r.seq % 3 != 0) {
                ctl.sender.send(ReliableMsg::Afr(*rec)).unwrap();
            }
            ctl.sender
                .send(ReliableMsg::EndOfStream { subwindow: sw })
                .unwrap();
        }
        let handle = ctl.handle.clone();
        let metrics = ctl.join();
        // Despite the losses both sub-windows merged complete: every
        // flow's two-sub-window sum is exact.
        assert_eq!(handle.merged_flows(), 10);
        for seq in 0..10u32 {
            let sum = handle
                .flows_over(0.0)
                .into_iter()
                .find(|(k, _)| *k == FlowKey::src_ip(seq + 1))
                .map(|(_, v)| v)
                .unwrap();
            assert_eq!(sum, 2.0 * (seq as f64 + 1.0));
        }
        assert_eq!(metrics.announced, 20);
        assert_eq!(metrics.first_pass, 12);
        assert_eq!(metrics.recovered, 8);
        assert!(metrics.retransmit_rounds >= 2);
        assert_eq!(metrics.escalations, 0);
    }

    #[test]
    fn reliable_controller_handles_reordered_and_duplicated_control_msgs() {
        let store = seq_batch(4, 5);
        let retrans_store = store.clone();
        let ctl = ReliableLiveController::spawn(
            4,
            64,
            RetryPolicy::default(),
            Box::new(move |_, seqs| seqs.iter().map(|&s| retrans_store[s as usize]).collect()),
            Box::new(|_| panic!("no escalation expected")),
        );
        // AFRs race ahead of their announcement; the trigger arrives
        // twice (duplicated clone); one AFR arrives twice too.
        ctl.sender.send(ReliableMsg::Afr(store[1])).unwrap();
        ctl.sender.send(ReliableMsg::Afr(store[1])).unwrap();
        for _ in 0..2 {
            ctl.sender
                .send(ReliableMsg::Announce {
                    subwindow: 4,
                    announced: 5,
                })
                .unwrap();
        }
        ctl.sender.send(ReliableMsg::Afr(store[3])).unwrap();
        // End-of-stream mark lost: shutdown finalizes the session.
        let handle = ctl.handle.clone();
        let metrics = ctl.join();
        assert_eq!(handle.merged_flows(), 5);
        assert_eq!(metrics.first_pass, 2);
        assert_eq!(metrics.duplicates, 1);
        assert_eq!(metrics.recovered, 3);
    }

    #[test]
    fn reliable_controller_escalates_when_backchannel_dead() {
        let store = seq_batch(0, 3);
        let os_store = store.clone();
        let ctl = ReliableLiveController::spawn(
            1,
            16,
            RetryPolicy {
                max_rounds: 2,
                ..RetryPolicy::default()
            },
            // The back-channel loses every request.
            Box::new(|_, _| Vec::new()),
            Box::new(move |_| (os_store.clone(), Duration::from_millis(40))),
        );
        ctl.sender
            .send(ReliableMsg::Announce {
                subwindow: 0,
                announced: 3,
            })
            .unwrap();
        ctl.sender
            .send(ReliableMsg::EndOfStream { subwindow: 0 })
            .unwrap();
        let handle = ctl.handle.clone();
        let metrics = ctl.join();
        assert_eq!(handle.merged_flows(), 3);
        assert_eq!(metrics.escalations, 1);
        assert_eq!(metrics.retransmit_rounds, 2);
        assert!(metrics.wall_clock >= Duration::from_millis(40));
    }

    #[test]
    fn queries_concurrent_with_ingest() {
        let ctl = LiveController::spawn(3, 64);
        let handle = ctl.handle.clone();
        let reader = std::thread::spawn(move || {
            let mut max_seen = 0;
            for _ in 0..200 {
                max_seen = max_seen.max(handle.merged_flows());
                std::thread::yield_now();
            }
            max_seen
        });
        for sw in 0..20u32 {
            ctl.sender.send(batch(sw, 0..50, 1)).unwrap();
        }
        let _ = reader.join().unwrap();
        let final_handle = ctl.handle.clone();
        assert_eq!(ctl.join(), 20);
        // Final state spans the last 3 sub-windows.
        assert_eq!(final_handle.subwindows(), vec![17, 18, 19]);
    }
}
