//! Accuracy metrics used by the evaluation: precision, recall, ARE, AARE.
//!
//! * **Precision** — of the flows a mechanism reported, the fraction that
//!   are true anomalies.
//! * **Recall** — of the true anomalies, the fraction the mechanism found.
//! * **ARE** (average relative error) — mean of `|est - true| / true` over
//!   ground-truth flows.
//! * **AARE** — the ARE averaged again across windows (the paper computes
//!   AARE for the per-window cardinality query).
//!
//! Alongside accuracy, [`ReliabilityMetrics`] counts what the §8 AFR
//! recovery loop did: retransmission rounds, recovered AFRs, OS-path
//! escalations, and the virtual wall-clock spent reaching completeness.

use std::collections::HashSet;

use crate::flowkey::FlowKey;
use crate::time::Duration;

/// Precision/recall of a reported set against a ground-truth set.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PrecisionRecall {
    /// Fraction of reported items that are true positives.
    pub precision: f64,
    /// Fraction of ground-truth items that were reported.
    pub recall: f64,
    /// True-positive count.
    pub tp: usize,
    /// False-positive count.
    pub fp: usize,
    /// False-negative count.
    pub fn_: usize,
}

impl PrecisionRecall {
    /// F1 score (harmonic mean of precision and recall).
    pub fn f1(&self) -> f64 {
        if self.precision + self.recall == 0.0 {
            0.0
        } else {
            2.0 * self.precision * self.recall / (self.precision + self.recall)
        }
    }
}

/// Compare a reported flow set against ground truth.
///
/// Empty-set conventions: precision of an empty report is 1.0 (nothing
/// wrong was said); recall against empty ground truth is 1.0 (nothing was
/// missed). These match how the paper's plots treat windows with no
/// anomalies.
pub fn precision_recall(reported: &HashSet<FlowKey>, truth: &HashSet<FlowKey>) -> PrecisionRecall {
    let tp = reported.intersection(truth).count();
    let fp = reported.len() - tp;
    let fn_ = truth.len() - tp;
    let precision = if reported.is_empty() {
        1.0
    } else {
        tp as f64 / reported.len() as f64
    };
    let recall = if truth.is_empty() {
        1.0
    } else {
        tp as f64 / truth.len() as f64
    };
    PrecisionRecall {
        precision,
        recall,
        tp,
        fp,
        fn_,
    }
}

/// Average relative error of `(estimate, truth)` pairs.
///
/// Pairs with `truth == 0` are skipped (relative error is undefined);
/// returns 0.0 when no pair is usable.
pub fn average_relative_error(pairs: &[(f64, f64)]) -> f64 {
    let mut sum = 0.0;
    let mut n = 0usize;
    for &(est, truth) in pairs {
        if truth > 0.0 {
            sum += (est - truth).abs() / truth;
            n += 1;
        }
    }
    if n == 0 {
        0.0
    } else {
        sum / n as f64
    }
}

/// Mean of per-window AREs (the paper's AARE).
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        0.0
    } else {
        values.iter().sum::<f64>() / values.len() as f64
    }
}

/// Counters surfaced by the controller's AFR reliability loop (§8,
/// "Reliability of AFRs").
///
/// One value describes one collection session (a single switch,
/// sub-window pair); sessions aggregate with [`ReliabilityMetrics::merge`]
/// into per-window or per-run totals.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReliabilityMetrics {
    /// AFRs the trigger packet announced.
    pub announced: u64,
    /// Distinct AFRs that survived the initial lowest-priority stream.
    pub first_pass: u64,
    /// Retransmission rounds the session ran (0 when the first pass was
    /// already complete).
    pub retransmit_rounds: u64,
    /// Retransmission requests put on the wire (counted even when the
    /// request itself is lost).
    pub retransmit_requests: u64,
    /// Distinct AFRs recovered by retransmission.
    pub recovered: u64,
    /// Duplicate AFR copies discarded (retransmissions that crossed
    /// their original, or channel-duplicated clones).
    pub duplicates: u64,
    /// Sessions that gave up on retransmission and read the sub-window
    /// through the slow switch-OS path.
    pub escalations: u64,
    /// AFR **records** refused by a full controller ingest queue under
    /// the non-blocking `offer` path (the blocking `send` path never
    /// drops). A rejected block charges its record count — one refused
    /// 1024-record block is 1024 drops, not 1 — and a rejected
    /// control/empty message charges 1, so the counter stays comparable
    /// across batch sizes. Explicit backpressure rejections, not silent
    /// loss.
    pub dropped: u64,
    /// Sessions abandoned because their switch departed the fleet
    /// mid-window (crash churn): the partial batch is discarded and the
    /// window released instead of merged.
    pub departed: u64,
    /// Virtual wall-clock from generation end to a complete batch
    /// (timeouts waited plus any charged OS-read latency).
    pub wall_clock: Duration,
}

impl ReliabilityMetrics {
    /// Fold another session's counters into this aggregate. Counters
    /// add; `wall_clock` adds too, making the aggregate the *total*
    /// recovery time across sessions (sessions are sequential per
    /// switch in the model).
    pub fn merge(&mut self, other: &ReliabilityMetrics) {
        self.announced += other.announced;
        self.first_pass += other.first_pass;
        self.retransmit_rounds += other.retransmit_rounds;
        self.retransmit_requests += other.retransmit_requests;
        self.recovered += other.recovered;
        self.duplicates += other.duplicates;
        self.escalations += other.escalations;
        self.dropped += other.dropped;
        self.departed += other.departed;
        self.wall_clock += other.wall_clock;
    }

    /// Fraction of announced AFRs lost on the first pass (0.0 when
    /// nothing was announced).
    pub fn first_pass_loss(&self) -> f64 {
        if self.announced == 0 {
            0.0
        } else {
            (self.announced - self.first_pass.min(self.announced)) as f64 / self.announced as f64
        }
    }

    /// Whether the recovery loop had any work to do.
    pub fn lossless(&self) -> bool {
        self.retransmit_rounds == 0 && self.escalations == 0
    }
}

/// Relative error of a single scalar estimate.
pub fn relative_error(estimate: f64, truth: f64) -> f64 {
    if truth == 0.0 {
        if estimate == 0.0 {
            0.0
        } else {
            f64::INFINITY
        }
    } else {
        (estimate - truth).abs() / truth
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn keys(ids: &[u32]) -> HashSet<FlowKey> {
        ids.iter().map(|&i| FlowKey::src_ip(i)).collect()
    }

    #[test]
    fn perfect_report_scores_one() {
        let truth = keys(&[1, 2, 3]);
        let pr = precision_recall(&truth, &truth);
        assert_eq!(pr.precision, 1.0);
        assert_eq!(pr.recall, 1.0);
        assert_eq!(pr.f1(), 1.0);
        assert_eq!((pr.tp, pr.fp, pr.fn_), (3, 0, 0));
    }

    #[test]
    fn half_right_report() {
        let reported = keys(&[1, 2, 4, 5]);
        let truth = keys(&[1, 2, 3]);
        let pr = precision_recall(&reported, &truth);
        assert!((pr.precision - 0.5).abs() < 1e-12);
        assert!((pr.recall - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!((pr.tp, pr.fp, pr.fn_), (2, 2, 1));
    }

    #[test]
    fn empty_sets_follow_conventions() {
        let empty = HashSet::new();
        let truth = keys(&[1]);
        let pr = precision_recall(&empty, &truth);
        assert_eq!(pr.precision, 1.0);
        assert_eq!(pr.recall, 0.0);
        let pr = precision_recall(&truth, &empty);
        assert_eq!(pr.precision, 0.0);
        assert_eq!(pr.recall, 1.0);
        let pr = precision_recall(&empty, &empty);
        assert_eq!(pr.precision, 1.0);
        assert_eq!(pr.recall, 1.0);
    }

    #[test]
    fn are_ignores_zero_truth() {
        let pairs = [(10.0, 10.0), (15.0, 10.0), (5.0, 0.0)];
        let are = average_relative_error(&pairs);
        assert!((are - 0.25).abs() < 1e-12);
        assert_eq!(average_relative_error(&[]), 0.0);
    }

    #[test]
    fn relative_error_handles_zero() {
        assert_eq!(relative_error(0.0, 0.0), 0.0);
        assert!(relative_error(1.0, 0.0).is_infinite());
        assert!((relative_error(12.0, 10.0) - 0.2).abs() < 1e-12);
    }

    #[test]
    fn reliability_metrics_merge_and_loss() {
        let mut total = ReliabilityMetrics::default();
        assert!(total.lossless());
        assert_eq!(total.first_pass_loss(), 0.0);
        let session = ReliabilityMetrics {
            announced: 10,
            first_pass: 7,
            retransmit_rounds: 2,
            retransmit_requests: 2,
            recovered: 3,
            duplicates: 1,
            escalations: 0,
            dropped: 1,
            departed: 1,
            wall_clock: Duration::from_micros(400),
        };
        total.merge(&session);
        total.merge(&session);
        assert_eq!(total.announced, 20);
        assert_eq!(total.recovered, 6);
        assert_eq!(total.dropped, 2);
        assert_eq!(total.departed, 2);
        assert_eq!(total.wall_clock, Duration::from_micros(800));
        assert!((total.first_pass_loss() - 0.3).abs() < 1e-12);
        assert!(!total.lossless());
    }

    #[test]
    fn f1_handles_all_zero() {
        let pr = PrecisionRecall {
            precision: 0.0,
            recall: 0.0,
            tp: 0,
            fp: 1,
            fn_: 1,
        };
        assert_eq!(pr.f1(), 0.0);
    }
}
