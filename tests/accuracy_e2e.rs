//! End-to-end acceptance for the live query-accuracy observatory:
//!
//! 1. **Perfect pipeline, perfect score.** A lossless exact-feed fleet
//!    scores every window at 1000‰ precision/recall and 0‰ AARE, and
//!    the `OW-HEALTH-4xx` catalog stays silent.
//! 2. **Live ≡ offline.** The scores the observatory publishes while
//!    the run is still in flight equal — to the permille — what the
//!    offline `evaluate::score_reports` / `score_estimates` path
//!    computes over the same windows after the fact.
//! 3. **Recall collapse pages.** An undersized data-plane sketch fires
//!    exactly the expected 4xx set, and the critical `OW-HEALTH-404`
//!    freezes the flight recorder.
//! 4. **Determinism.** Same-seed runs — threaded workers and all —
//!    produce byte-identical accuracy summaries and alert timelines.

use std::collections::BTreeSet;
use std::sync::Arc;

use omniwindow::evaluate;
use omniwindow::mechanisms::WindowResult;
use ow_common::metrics;
use ow_common::time::Duration;
use ow_netsim::fleet;
use ow_netsim::{ChurnEvent, ChurnKind, FleetConfig};
use ow_obs::{
    accuracy_health_rules, validate_flightrec_json, AccuracyConfig, AccuracyScorer,
    FlightRecorderConfig, HealthEngine, Obs,
};
use proptest::prelude::*;

/// A fleet whose switches crash occasionally and announce through a
/// data-plane MV-Sketch of the given geometry (`None` = exact feed).
fn fleet_config(seed: u64, sketch_feed: Option<(usize, usize)>) -> FleetConfig {
    FleetConfig {
        switches: 8,
        workers: 2,
        local_windows: 3,
        afr_loss: 0.15,
        churn: vec![ChurnEvent {
            at: Duration::from_micros(1_700),
            switch: 2,
            kind: ChurnKind::Crash,
        }],
        sketch_feed,
        seed,
        ..FleetConfig::default()
    }
}

/// Run a fleet with the accuracy observatory and its 4xx catalog
/// installed; returns the scorer and engine for inspection.
fn run_with_accuracy(cfg: &FleetConfig) -> (Arc<AccuracyScorer>, Arc<HealthEngine>) {
    let obs = Obs::with_journal_capacity(1 << 15);
    let engine = obs.install_health(accuracy_health_rules(), FlightRecorderConfig::default());
    let scorer = obs.install_accuracy(AccuracyConfig::default());
    fleet::run(cfg, Some(&obs));
    (scorer, engine)
}

fn fired_pairs(engine: &HealthEngine) -> BTreeSet<(String, String)> {
    engine
        .timeline()
        .iter()
        .filter(|a| a.state == "fired")
        .map(|a| (a.code.clone(), a.entity.clone()))
        .collect()
}

fn permille(x: f64) -> u64 {
    (x * 1000.0).round() as u64
}

#[test]
fn lossless_exact_feed_scores_perfectly_and_stays_silent() {
    let cfg = FleetConfig {
        switches: 8,
        workers: 2,
        local_windows: 3,
        afr_loss: 0.0,
        seed: 7,
        ..FleetConfig::default()
    };
    let (scorer, engine) = run_with_accuracy(&cfg);
    let summary = scorer.summary();
    assert_eq!(summary.windows_scored, 8 * 3);
    assert_eq!(summary.precision_permille, 1000);
    assert_eq!(summary.recall_permille, 1000);
    assert_eq!(summary.aare_permille, 0);
    assert_eq!(scorer.pending_windows(), 0, "every fed window was scored");
    assert!(engine.timeline().is_empty(), "{:?}", engine.timeline());
    assert!(!engine.frozen());
}

#[test]
fn live_scores_equal_the_offline_evaluation_path() {
    // A moderately sized sketch: enough buckets that most — but not
    // all — flows survive, so the scores are non-trivial.
    let (scorer, _engine) = run_with_accuracy(&fleet_config(21, Some((1, 12))));
    let summary = scorer.summary();
    assert!(summary.windows_scored > 0);
    assert!(
        summary.recall_permille < 1000,
        "an undersized sketch must lose flows ({summary:?})"
    );
    assert_eq!(
        scorer.pending_windows(),
        0,
        "scored or departed, nothing wedged"
    );

    // Rebuild the offline evaluation inputs from the per-window data
    // the scorer retained, in the same (sub-window) order the live
    // aggregates summed in.
    let windows = scorer.windows();
    let threshold = scorer.config().threshold;
    let mech: Vec<WindowResult> = windows
        .iter()
        .enumerate()
        .map(|(i, w)| WindowResult {
            index: i,
            reported: w
                .merged
                .iter()
                .filter(|(_, s)| *s >= threshold)
                .map(|(k, _)| *k)
                .collect(),
            estimates: w.merged.iter().cloned().collect(),
        })
        .collect();
    let refr: Vec<WindowResult> = windows
        .iter()
        .enumerate()
        .map(|(i, w)| WindowResult {
            index: i,
            reported: w
                .truth
                .iter()
                .filter(|(_, s)| *s >= threshold)
                .map(|(k, _)| *k)
                .collect(),
            estimates: w.truth.iter().cloned().collect(),
        })
        .collect();

    let pr = evaluate::score_reports(&mech, &refr);
    assert_eq!(permille(pr.precision), summary.precision_permille);
    assert_eq!(permille(pr.recall), summary.recall_permille);

    // The live AARE is the mean of per-window AREs; replay that shape
    // through the offline estimator window by window.
    let ares: Vec<f64> = (0..windows.len())
        .map(|i| {
            evaluate::score_estimates(
                std::slice::from_ref(&mech[i]),
                std::slice::from_ref(&refr[i]),
            )
        })
        .collect();
    assert_eq!(permille(metrics::mean(&ares)), summary.aare_permille);

    // The per-window briefs agree with the offline helpers too.
    for (i, w) in windows.iter().enumerate() {
        let pr_w = evaluate::score_reports(
            std::slice::from_ref(&mech[i]),
            std::slice::from_ref(&refr[i]),
        );
        assert_eq!(permille(pr_w.precision), permille(w.precision));
        assert_eq!(permille(pr_w.recall), permille(w.recall));
    }
}

#[test]
fn undersized_sketch_fires_the_accuracy_catalog_and_freezes() {
    // Four buckets against a ~20-distinct-key window: most flows are
    // lost in the data plane, invisibly to transport health.
    let (scorer, engine) = run_with_accuracy(&fleet_config(31, Some((1, 4))));
    let summary = scorer.summary();
    assert!(
        summary.recall_permille < 500,
        "recall must collapse ({summary:?})"
    );
    let fired = fired_pairs(&engine);
    let want: BTreeSet<(String, String)> = [
        ("OW-HEALTH-401", "accuracy"),  // recall SLO burn
        ("OW-HEALTH-402", "sketch:mv"), // the saturated sketch, by name
        ("OW-HEALTH-403", "accuracy"),  // merged keys ≪ oracle keys
        ("OW-HEALTH-404", "accuracy"),  // accuracy collapse
    ]
    .iter()
    .map(|(c, e)| (c.to_string(), e.to_string()))
    .collect();
    assert_eq!(fired, want, "recall and precision must both hold");
    assert!(engine.frozen(), "the critical 404 freezes the black box");
    let dump = engine.flight_dump("e2e").expect("frozen");
    assert!(dump.freeze_reason.contains("OW-HEALTH-404"));
    let doc = ow_obs::json::parse(&dump.to_json()).expect("dump parses");
    validate_flightrec_json(&doc).expect("dump validates");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Same-seed degraded runs — threaded workers and all — publish
    /// byte-identical accuracy summaries and alert timelines.
    #[test]
    fn same_seed_accuracy_runs_are_byte_identical(seed in 1u64..10_000) {
        let cfg = fleet_config(seed, Some((1, 8)));
        let (scorer_a, engine_a) = run_with_accuracy(&cfg);
        let (scorer_b, engine_b) = run_with_accuracy(&cfg);
        let json_a = serde_json::to_string(&scorer_a.summary()).unwrap();
        let json_b = serde_json::to_string(&scorer_b.summary()).unwrap();
        prop_assert_eq!(json_a, json_b);
        prop_assert_eq!(engine_a.timeline(), engine_b.timeline());
        let dump_a = engine_a.flight_dump("e2e").map(|d| d.to_json());
        let dump_b = engine_b.flight_dump("e2e").map(|d| d.to_json());
        prop_assert_eq!(dump_a, dump_b);
    }
}
