//! Property-based tests for the switch model's invariants.

use ow_common::packet::{Packet, TcpFlags};
use ow_common::time::{Duration, Instant};
use ow_switch::consistency::{ConsistencyModel, Placement};
use ow_switch::flowkey::FlowkeyTracker;
use ow_switch::latency::LatencyModel;
use ow_switch::register::{FlattenedLayout, SaluOp};
use ow_switch::signal::{SignalEngine, WindowSignal};
use proptest::prelude::*;

fn pkt_at_ns(ns: u64) -> Packet {
    Packet::tcp(Instant::from_nanos(ns), 1, 2, 3, 4, TcpFlags::ack(), 64)
}

proptest! {
    /// Timeout signals always place the engine in sub-window
    /// `floor(t / len)` after processing a packet at time `t`, for any
    /// non-decreasing packet sequence.
    #[test]
    fn timeout_subwindow_matches_formula(
        mut times in proptest::collection::vec(0u64..2_000_000_000, 1..100),
        len_ms in 1u64..500,
    ) {
        times.sort_unstable();
        let len = Duration::from_millis(len_ms);
        let mut e = SignalEngine::new(WindowSignal::Timeout(len));
        for &t in &times {
            let _ = e.on_packet(&pkt_at_ns(t));
            prop_assert_eq!(e.current() as u64, t / len.as_nanos(), "at t={}", t);
        }
    }

    /// The sub-window number never decreases over any packet sequence
    /// (monotonicity of the local clock view).
    #[test]
    fn signal_engine_is_monotone(
        mut times in proptest::collection::vec(0u64..1_000_000_000, 1..200),
    ) {
        times.sort_unstable();
        let mut e = SignalEngine::new(WindowSignal::Timeout(Duration::from_millis(50)));
        let mut last = 0;
        for &t in &times {
            let _ = e.on_packet(&pkt_at_ns(t));
            prop_assert!(e.current() >= last);
            last = e.current();
        }
    }

    /// Terminations report contiguous progress: `ended` is the previous
    /// current and `next` the new one.
    #[test]
    fn terminations_are_consistent(
        mut times in proptest::collection::vec(0u64..1_000_000_000, 1..200),
    ) {
        times.sort_unstable();
        let mut e = SignalEngine::new(WindowSignal::Timeout(Duration::from_millis(20)));
        let mut current = 0;
        for &t in &times {
            if let Some(term) = e.on_packet(&pkt_at_ns(t)) {
                prop_assert_eq!(term.ended, current);
                prop_assert!(term.next > term.ended);
                current = term.next;
            }
            prop_assert_eq!(e.current(), current);
        }
    }

    /// A transit switch never *loses* a packet: every packet is either
    /// placed in its embedded sub-window or declared a latency spike —
    /// and the spike case only fires when the stamp is older than the
    /// preservation horizon.
    #[test]
    fn transit_placement_is_total_and_correct(
        embedded in 0u32..100,
        current in 0u32..100,
        preserve in 0u32..5,
    ) {
        let cm = ConsistencyModel::new(false, preserve);
        let mut sig = SignalEngine::new(WindowSignal::Timeout(Duration::from_millis(100)));
        sig.fast_forward(current, Instant::ZERO);
        let mut p = pkt_at_ns(0);
        p.ow.subwindow = embedded;
        let out = cm.place(&mut p, &mut sig, Instant::ZERO);
        match out.placement {
            Placement::SubWindow(sw) => {
                prop_assert_eq!(sw, embedded, "always monitored at its stamp");
                prop_assert!(embedded + preserve >= current || embedded > current);
            }
            Placement::LatencySpike { embedded: e } => {
                prop_assert_eq!(e, embedded);
                prop_assert!(embedded < current && current - embedded > preserve);
            }
        }
        // The local sub-window never moves backwards.
        prop_assert!(sig.current() >= current);
        prop_assert_eq!(sig.current(), current.max(embedded));
    }

    /// Flowkey tracking conserves keys: every distinct key is buffered,
    /// overflowed, or (rarely) suppressed by a Bloom false positive —
    /// never duplicated.
    #[test]
    fn tracker_conserves_keys(ids in proptest::collection::hash_set(1u32..1_000_000, 1..300)) {
        let mut t = FlowkeyTracker::new(64, 1024, 42);
        for &i in &ids {
            t.track(&ow_common::flowkey::FlowKey::src_ip(i));
        }
        let tracked = t.total_tracked();
        prop_assert!(tracked <= ids.len(), "duplicates created");
        // Bloom false positives are rare at this load: at most a few keys
        // may be suppressed.
        prop_assert!(tracked + 3 >= ids.len(), "{tracked} of {}", ids.len());
        // Buffered never exceeds capacity.
        prop_assert!(t.buffered().len() <= 64);
    }

    /// The flattened layout keeps regions perfectly isolated: writes to
    /// one sub-window's region are invisible to the other's, at every
    /// index, for any interleaving.
    #[test]
    fn flattened_regions_are_isolated(
        writes in proptest::collection::vec((0u32..8, 0usize..16, 1u32..100), 1..60),
    ) {
        let mut l = FlattenedLayout::new("t", 2, 16);
        let mut shadow = [[0u32; 16]; 2];
        for &(sw, idx, v) in &writes {
            let region = l.region_of_subwindow(sw);
            l.access(sw, idx, SaluOp::AddSat(v)).unwrap();
            shadow[region][idx] = shadow[region][idx].saturating_add(v);
        }
        #[allow(clippy::needless_range_loop)]
        for sw in 0..2u32 {
            for idx in 0..16usize {
                let got = l.access(sw, idx, SaluOp::Read).unwrap();
                prop_assert_eq!(got, shadow[sw as usize][idx]);
            }
        }
    }

    /// The latency model is monotone: more items never collect faster,
    /// more recirculating packets never collect slower.
    #[test]
    fn latency_model_monotonicity(
        items_a in 0usize..100_000,
        items_b in 0usize..100_000,
        pkts_a in 1usize..64,
        pkts_b in 1usize..64,
    ) {
        let m = LatencyModel::default();
        let (lo, hi) = (items_a.min(items_b), items_a.max(items_b));
        prop_assert!(m.recirc_enumeration(lo, pkts_a) <= m.recirc_enumeration(hi, pkts_a));
        let (pl, ph) = (pkts_a.min(pkts_b), pkts_a.max(pkts_b));
        prop_assert!(m.recirc_enumeration(items_a, ph) <= m.recirc_enumeration(items_a, pl));
        prop_assert!(m.inject(lo, false) <= m.inject(hi, false));
        prop_assert!(m.inject(items_a, false) <= m.inject(items_a, true));
    }
}
