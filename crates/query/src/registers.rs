//! The data-plane register engine — Sonata's stateful operators as they
//! actually behave on the switch.
//!
//! Each query's reduce/distinct state lives in a hash-indexed register
//! array. Crucially, the engine does **not** handle hash conflicts: two
//! keys hashing to the same cell share one statistic and one key slot
//! (the last writer wins the slot). This is the precision/recall error
//! source the paper attributes to Sonata and explicitly does *not* fix:
//! "the stateful operators of Sonata do not handle hash conflicts, which
//! cannot be avoided by OmniWindow."

use std::collections::HashSet;

use ow_common::afr::AttrValue;
use ow_common::flowkey::FlowKey;
use ow_common::hash::HashFn;
use ow_common::packet::Packet;

use crate::exact::update_attr;
use crate::spec::QuerySpec;

/// One register cell: the shared statistic plus the last key that
/// updated it (the key slot Sonata uses to emit reports).
#[derive(Debug, Clone)]
struct Cell {
    attr: AttrValue,
    key: Option<FlowKey>,
}

/// Register-based execution of one query over one window/sub-window.
#[derive(Debug, Clone)]
pub struct RegisterEngine {
    spec: QuerySpec,
    cells: Vec<Cell>,
    hash: HashFn,
}

impl RegisterEngine {
    /// Create an engine with `slots` register cells.
    ///
    /// # Panics
    /// Panics if `slots == 0`.
    pub fn new(spec: QuerySpec, slots: usize, seed: u64) -> RegisterEngine {
        assert!(slots > 0, "register engine needs at least one slot");
        RegisterEngine {
            cells: vec![
                Cell {
                    attr: AttrValue::identity(spec.stat.attr_kind()),
                    key: None,
                };
                slots
            ],
            spec,
            hash: HashFn::new(seed ^ 0x50A7A, 0),
        }
    }

    /// The query being executed.
    pub fn spec(&self) -> &QuerySpec {
        &self.spec
    }

    /// Number of register cells.
    pub fn slots(&self) -> usize {
        self.cells.len()
    }

    /// Process one packet (single SALU access per array — C4).
    pub fn update(&mut self, pkt: &Packet) {
        if !(self.spec.filter)(pkt) {
            return;
        }
        let key = pkt.key(self.spec.key_kind);
        let idx = self.hash.index(&key, self.cells.len());
        let cell = &mut self.cells[idx];
        // No conflict handling: the statistic is shared, the key slot is
        // overwritten by the latest key.
        update_attr(&mut cell.attr, &self.spec, pkt);
        cell.key = Some(key);
    }

    /// Data-plane flow query for AFR generation: reads the cell the key
    /// hashes to — collisions inflate the result exactly as on hardware.
    pub fn query(&self, key: &FlowKey) -> AttrValue {
        let idx = self.hash.index(key, self.cells.len());
        self.cells[idx].attr
    }

    /// Keys currently resident in key slots (what the data plane can
    /// enumerate without OmniWindow's flowkey tracking).
    pub fn resident_keys(&self) -> Vec<FlowKey> {
        let mut keys: Vec<FlowKey> = self.cells.iter().filter_map(|c| c.key).collect();
        keys.sort_by_key(|k| k.as_u128());
        keys.dedup();
        keys
    }

    /// Report: cells whose statistic passes the predicate report their
    /// resident key.
    pub fn report(&self) -> HashSet<FlowKey> {
        self.cells
            .iter()
            .filter(|c| c.key.is_some() && self.spec.passes(&c.attr))
            .filter_map(|c| c.key)
            .collect()
    }

    /// Reset all cells (the in-switch reset target).
    pub fn reset(&mut self) {
        let id = AttrValue::identity(self.spec.stat.attr_kind());
        for c in &mut self.cells {
            c.attr = id;
            c.key = None;
        }
    }

    /// Bytes of register memory this engine occupies (statistic payload
    /// + 13-byte key slot per cell).
    pub fn memory_bytes(&self) -> usize {
        let attr_bytes = match self.spec.stat.attr_kind() {
            ow_common::afr::AttrKind::Frequency | ow_common::afr::AttrKind::Signed => 4,
            ow_common::afr::AttrKind::Max | ow_common::afr::AttrKind::Min => 4,
            ow_common::afr::AttrKind::Existence => 1,
            ow_common::afr::AttrKind::Distinction => 64,
            ow_common::afr::AttrKind::ConnBytes => 72,
        };
        self.cells.len() * (attr_bytes + 13)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::ExactEngine;
    use crate::spec::standard_queries;
    use ow_common::packet::TcpFlags;
    use ow_common::time::Instant;

    fn syn(src: u32, dst: u32, sport: u16, dport: u16) -> Packet {
        Packet::tcp(Instant::ZERO, src, dst, sport, dport, TcpFlags::syn(), 64)
    }

    #[test]
    fn matches_exact_when_no_collisions() {
        let q5 = standard_queries()[4];
        let mut reg = RegisterEngine::new(q5, 1 << 16, 1);
        let mut exact = ExactEngine::new(q5);
        for i in 0..100u32 {
            let p = syn(1000 + i, 7, 1000, 80);
            reg.update(&p);
            exact.update(&p);
        }
        let victim = FlowKey::dst_ip(7);
        assert_eq!(reg.query(&victim), exact.query(&victim));
        assert_eq!(reg.report(), exact.report());
    }

    #[test]
    fn collisions_inflate_counts() {
        // One slot: every victim shares the cell.
        let q5 = standard_queries()[4];
        let mut reg = RegisterEngine::new(q5, 1, 2);
        for i in 0..50u32 {
            reg.update(&syn(1, 100 + i, 1000, 80));
        }
        // Each victim saw 1 SYN, but the shared cell reads 50.
        assert_eq!(reg.query(&FlowKey::dst_ip(100)).scalar(), 50.0);
    }

    #[test]
    fn collision_overwrites_key_slot() {
        let q5 = standard_queries()[4];
        let mut reg = RegisterEngine::new(q5, 1, 3);
        reg.update(&syn(1, 10, 1000, 80));
        reg.update(&syn(1, 20, 1000, 80));
        // Only the last key is resident.
        assert_eq!(reg.resident_keys(), vec![FlowKey::dst_ip(20)]);
    }

    #[test]
    fn report_uses_resident_key() {
        let q5 = standard_queries()[4];
        let mut reg = RegisterEngine::new(q5, 1, 4);
        // 80 SYNs to victim 10, then one SYN to victim 20 (same cell):
        // the cell passes threshold but reports victim 20 — a false
        // positive + false negative pair, the Sonata error mode.
        for _ in 0..80 {
            reg.update(&syn(1, 10, 1000, 80));
        }
        reg.update(&syn(1, 20, 1000, 80));
        let reported = reg.report();
        assert!(reported.contains(&FlowKey::dst_ip(20)));
        assert!(!reported.contains(&FlowKey::dst_ip(10)));
    }

    #[test]
    fn reset_clears_cells() {
        let q5 = standard_queries()[4];
        let mut reg = RegisterEngine::new(q5, 64, 5);
        for _ in 0..100 {
            reg.update(&syn(1, 10, 1000, 80));
        }
        reg.reset();
        assert!(reg.report().is_empty());
        assert!(reg.resident_keys().is_empty());
        assert_eq!(reg.query(&FlowKey::dst_ip(10)).scalar(), 0.0);
    }

    #[test]
    fn memory_accounting_scales_with_slots() {
        let q5 = standard_queries()[4];
        let small = RegisterEngine::new(q5, 64, 6);
        let big = RegisterEngine::new(q5, 128, 6);
        assert_eq!(big.memory_bytes(), small.memory_bytes() * 2);
    }
}
