//! HyperLogLog (Flajolet et al.; practice variant of Heule et al. EDBT'13).
//!
//! Cardinality estimation with one-byte registers (the paper's
//! configuration: "each bucket is one byte long"). Includes the small-
//! range linear-counting correction from the HLL++ paper. Mergeable by
//! register-wise max — the distinct-union merge the controller uses when
//! combining sub-window states.

use ow_common::flowkey::FlowKey;
use ow_common::hash::HashFn;

use crate::traits::SketchMeta;

/// A HyperLogLog estimator with `m = 2^p` one-byte registers.
///
/// ```
/// use ow_sketch::HyperLogLog;
/// use ow_common::flowkey::FlowKey;
///
/// let mut hll = HyperLogLog::new(12, 1);
/// for i in 0..10_000u32 { hll.insert(&FlowKey::src_ip(i)); }
/// let est = hll.estimate();
/// assert!((est - 10_000.0).abs() / 10_000.0 < 0.05);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HyperLogLog {
    p: u8,
    registers: Vec<u8>,
    hash: HashFn,
}

impl HyperLogLog {
    /// Create an estimator with precision `p` (4 ≤ p ≤ 18), i.e. `2^p`
    /// registers.
    ///
    /// # Panics
    /// Panics if `p` is outside `[4, 18]`.
    pub fn new(p: u8, seed: u64) -> HyperLogLog {
        assert!((4..=18).contains(&p), "HLL precision must be in [4,18]");
        HyperLogLog {
            p,
            registers: vec![0; 1 << p],
            hash: HashFn::new(seed ^ 0x4711, 0),
        }
    }

    /// Number of registers.
    pub fn m(&self) -> usize {
        self.registers.len()
    }

    /// Record a key.
    pub fn insert(&mut self, key: &FlowKey) {
        let h = self.hash.hash_key(key);
        let idx = (h >> (64 - self.p)) as usize;
        let rest = h << self.p;
        // Rank: position of the leftmost 1-bit in the remaining bits.
        let rank = (rest.leading_zeros() + 1).min(64 - self.p as u32) as u8;
        if rank > self.registers[idx] {
            self.registers[idx] = rank;
        }
    }

    fn alpha(m: f64) -> f64 {
        // Standard bias-correction constants.
        match m as usize {
            16 => 0.673,
            32 => 0.697,
            64 => 0.709,
            _ => 0.7213 / (1.0 + 1.079 / m),
        }
    }

    /// Estimate the number of distinct keys recorded.
    pub fn estimate(&self) -> f64 {
        let m = self.m() as f64;
        let sum: f64 = self.registers.iter().map(|&r| 2f64.powi(-(r as i32))).sum();
        let raw = Self::alpha(m) * m * m / sum;
        if raw <= 2.5 * m {
            // Small-range correction: fall back to linear counting on the
            // zero registers.
            let zeros = self.registers.iter().filter(|&&r| r == 0).count();
            if zeros > 0 {
                return m * (m / zeros as f64).ln();
            }
        }
        raw
    }

    /// Merge another instance (register-wise max).
    ///
    /// # Panics
    /// Panics if precisions differ.
    pub fn merge(&mut self, other: &HyperLogLog) {
        assert_eq!(self.p, other.p, "precision mismatch");
        for (a, b) in self.registers.iter_mut().zip(other.registers.iter()) {
            *a = (*a).max(*b);
        }
    }

    /// Clear all registers.
    pub fn reset(&mut self) {
        self.registers.fill(0);
    }

    /// Raw registers (state-migration export).
    pub fn registers(&self) -> &[u8] {
        &self.registers
    }

    /// Resource footprint.
    pub fn meta(&self) -> SketchMeta {
        SketchMeta {
            name: "HyperLogLog",
            memory_bytes: self.registers.len(),
            register_arrays: 1,
            salus_per_packet: 1,
            hash_units: 1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(i: u32) -> FlowKey {
        FlowKey::five_tuple(i, !i, 7, 443, 6)
    }

    #[test]
    fn estimate_within_five_percent_large() {
        let mut hll = HyperLogLog::new(14, 1);
        for i in 0..100_000u32 {
            hll.insert(&key(i));
        }
        let est = hll.estimate();
        let err = (est - 100_000.0).abs() / 100_000.0;
        assert!(err < 0.05, "HLL error {err:.3}");
    }

    #[test]
    fn small_range_correction_is_accurate() {
        let mut hll = HyperLogLog::new(12, 2);
        for i in 0..100u32 {
            hll.insert(&key(i));
        }
        let est = hll.estimate();
        assert!((80.0..130.0).contains(&est), "estimate {est} far from 100");
    }

    #[test]
    fn duplicates_do_not_count() {
        let mut hll = HyperLogLog::new(12, 3);
        for _ in 0..1000 {
            hll.insert(&key(1));
        }
        assert!(hll.estimate() < 5.0);
    }

    #[test]
    fn merge_estimates_union() {
        let mut a = HyperLogLog::new(12, 4);
        let mut b = HyperLogLog::new(12, 4);
        for i in 0..5000u32 {
            a.insert(&key(i));
        }
        for i in 2500..7500u32 {
            b.insert(&key(i));
        }
        a.merge(&b);
        let est = a.estimate();
        let err = (est - 7500.0).abs() / 7500.0;
        assert!(err < 0.1, "union estimate error {err:.3}");
    }

    #[test]
    fn merge_is_idempotent() {
        let mut a = HyperLogLog::new(10, 5);
        for i in 0..1000u32 {
            a.insert(&key(i));
        }
        let before = a.clone();
        let copy = a.clone();
        a.merge(&copy);
        assert_eq!(a, before);
    }

    #[test]
    fn reset_clears() {
        let mut hll = HyperLogLog::new(10, 6);
        hll.insert(&key(1));
        hll.reset();
        assert_eq!(hll.estimate(), 0.0);
    }

    #[test]
    #[should_panic(expected = "precision")]
    fn bad_precision_panics() {
        let _ = HyperLogLog::new(3, 7);
    }
}
