//! Per-packet update throughput of every sketch — the data-plane hot
//! path the switch model executes for each forwarded packet.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use ow_common::flowkey::FlowKey;
use ow_sketch::traits::{FrequencySketch, SpreadEstimator};
use ow_sketch::{
    BloomFilter, CountMin, HashPipe, HyperLogLog, LinearCounting, MvSketch, SpreadSketch, SuMax,
    VectorBloomFilter,
};

const N: usize = 10_000;

fn keys() -> Vec<FlowKey> {
    (0..N as u32)
        .map(|i| FlowKey::five_tuple(i, !i, (i % 60_000) as u16, 80, 6))
        .collect()
}

fn bench_updates(c: &mut Criterion) {
    let keys = keys();
    let mut group = c.benchmark_group("sketch_update");
    group.throughput(Throughput::Elements(N as u64));

    group.bench_function("count_min", |b| {
        let mut s = CountMin::new(4, 1 << 16, 1);
        let mut i = 0;
        b.iter(|| {
            s.update(&keys[i % N], 1);
            i += 1;
        });
    });
    group.bench_function("sumax", |b| {
        let mut s = SuMax::new(4, 1 << 16, 1);
        let mut i = 0;
        b.iter(|| {
            s.update(&keys[i % N], 1);
            i += 1;
        });
    });
    group.bench_function("mv_sketch", |b| {
        let mut s = MvSketch::new(4, 1 << 14, 1);
        let mut i = 0;
        b.iter(|| {
            s.update(&keys[i % N], 1);
            i += 1;
        });
    });
    group.bench_function("hashpipe", |b| {
        let mut s = HashPipe::new(4, 1 << 14, 1);
        let mut i = 0;
        b.iter(|| {
            s.update(&keys[i % N], 1);
            i += 1;
        });
    });
    group.bench_function("spread_sketch", |b| {
        let mut s = SpreadSketch::new(4, 1 << 12, 1);
        let mut i = 0;
        b.iter(|| {
            s.update_element(&keys[i % N], (i * 7) as u64);
            i += 1;
        });
    });
    group.bench_function("vbf", |b| {
        let mut s = VectorBloomFilter::new(1);
        let srcs: Vec<FlowKey> = (0..N as u32).map(FlowKey::src_ip).collect();
        let mut i = 0;
        b.iter(|| {
            s.update_element(&srcs[i % N], (i * 7) as u64);
            i += 1;
        });
    });
    group.bench_function("linear_counting", |b| {
        let mut s = LinearCounting::new(1 << 16, 1);
        let mut i = 0;
        b.iter(|| {
            s.insert(&keys[i % N]);
            i += 1;
        });
    });
    group.bench_function("hyperloglog", |b| {
        let mut s = HyperLogLog::new(14, 1);
        let mut i = 0;
        b.iter(|| {
            s.insert(&keys[i % N]);
            i += 1;
        });
    });
    group.bench_function("bloom_track", |b| {
        let mut s = BloomFilter::for_capacity(N, 1);
        let mut i = 0;
        b.iter(|| {
            s.check_and_insert(&keys[i % N]);
            i += 1;
        });
    });
    group.finish();
}

criterion_group!(benches, bench_updates);
criterion_main!(benches);
