//! Causal span tracing for the C&R pipeline.
//!
//! Aggregate metrics (PR 4) answer "how often" and "how long on
//! average"; they cannot answer *"where did window W's 40 ms go?"*.
//! This module adds the missing causal layer:
//!
//! * [`Span`] — one named virtual-clock interval with a trace id, a
//!   span id, and an optional parent id. All timestamps are discrete
//!   event-clock nanoseconds ([`ow_common::time`]), never wall-clock,
//!   so two runs with the same seed produce identical trees.
//! * [`Tracer`] — the shared recorder. One mutex-guarded allocation
//!   table hands out *sequential* ids, which buys two properties for
//!   free: byte-identical reports under a fixed spawn order, and a
//!   trivial acyclicity proof (`parent < id` always, enforced at
//!   insertion).
//! * [`TraceContext`] — the propagation key carried **on the wire**.
//!   The switch stamps it onto every message it emits for a window;
//!   [`Traced`] envelopes survive the lossy channel's drops, dups,
//!   and reordering unchanged, so whichever copies arrive let the
//!   controller stitch its recovery spans under the same root.
//! * [`critical_path`] — the analyser: per-name self-time, the
//!   longest blocking chain from the root, the fraction of window
//!   wall latency attributed to named child spans, and SLO/deadline
//!   violations.
//! * [`TraceReport`] — the deterministic `results/trace_smoke.json`
//!   form, with [`validate_trace_json`] as the schema checker CI runs
//!   against the emitted file.
//!
//! The span vocabulary mirrors the §8 lifecycle: a `window` root
//! covers `cr_wait` → `collect` → `reset` on the switch side, then
//! `retransmit_round` / `os_read` recovery spans and a `merge` span
//! (with per-shard `shard_insert` children) reconstructed by the
//! controller from its [`ow_common::metrics::ReliabilityMetrics`] and
//! retry policy.

use std::collections::{BTreeMap, HashMap};

use parking_lot::Mutex;
use serde::Serialize;

use crate::json::ValueExt;
use crate::registry::Counter;
use ow_common::time::Duration;
use serde::Value;

/// The wire-propagated trace context: enough for any receiver of any
/// (possibly duplicated, reordered, or retransmitted) message to file
/// its spans under the originating window's tree.
///
/// `Copy` on purpose — the lossy channel clones payloads freely when it
/// duplicates, and every copy must carry the same context.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct TraceContext {
    /// The trace this window's lifecycle belongs to.
    pub trace_id: u64,
    /// The root (`window`) span id.
    pub root: u64,
    /// The switch-side `collect` span id — retransmission spans parent
    /// here, because a retransmit replays *collection* output.
    pub collect: u64,
    /// Virtual-clock nanosecond at which the switch finished generating
    /// the batch (end of `reset`); the controller anchors its recovery
    /// timeline at this instant.
    pub anchor_ns: u64,
}

/// A payload wrapped with its [`TraceContext`] for transit through
/// `ow-netsim` channels. The envelope is transparent to the fault
/// model: drops drop it, duplicates copy it, reordering moves it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Traced<T> {
    /// The originating window's context.
    pub ctx: TraceContext,
    /// The wrapped message.
    pub payload: T,
}

impl<T> Traced<T> {
    /// Wrap `payload` under `ctx`.
    pub fn new(ctx: TraceContext, payload: T) -> Traced<T> {
        Traced { ctx, payload }
    }
}

/// One completed span: a named virtual-clock interval inside a trace.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct Span {
    /// Span id, unique across the whole [`Tracer`]; ids are allocated
    /// sequentially, so `parent < id` always holds (acyclicity by
    /// construction).
    pub id: u64,
    /// Parent span id; `None` only for the trace root.
    pub parent: Option<u64>,
    /// Phase name (`"window"`, `"cr_wait"`, `"collect"`, `"reset"`,
    /// `"retransmit_round"`, `"os_read"`, `"merge"`, `"shard_insert"`,
    /// `"retransmit_replay"`).
    pub name: String,
    /// Which side recorded it (`"switch"` / `"controller"`).
    pub side: String,
    /// Merge shard, for `shard_insert` spans.
    pub shard: Option<u32>,
    /// Virtual-clock start (nanoseconds).
    pub start_ns: u64,
    /// Virtual-clock end (nanoseconds, `>= start_ns`).
    pub end_ns: u64,
}

impl Span {
    /// The span's duration in virtual nanoseconds.
    pub fn duration_ns(&self) -> u64 {
        self.end_ns.saturating_sub(self.start_ns)
    }
}

/// One `WindowEngine` transition observed while the window's trace was
/// active — the FSM's footprint inside the causal tree.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct PhaseMark {
    /// Side that applied the transition (`"switch"` / `"controller"`).
    pub side: String,
    /// The event's stable name ([`ow_common::engine::WindowEvent::name`]).
    pub event: String,
    /// Phase name before the event.
    pub from: String,
    /// Phase name after the event.
    pub to: String,
}

#[derive(Debug)]
struct TraceData {
    subwindow: u32,
    root: u64,
    spans: Vec<Span>,
    marks: Vec<PhaseMark>,
}

#[derive(Debug, Default)]
struct TracerInner {
    next_id: u64,
    traces: BTreeMap<u64, TraceData>,
    /// Sub-window → currently active trace (latest wins on reuse).
    active: HashMap<u32, u64>,
}

/// The shared span recorder.
///
/// Lock-cheap by the same standard as the registry: recording a span is
/// one short mutex-guarded `Vec::push` — no allocation-heavy work under
/// the lock, and nothing on the per-packet fast path records spans at
/// all (only per-window lifecycle steps do, a handful per window).
#[derive(Debug, Default)]
pub struct Tracer {
    inner: Mutex<TracerInner>,
    spans_total: Mutex<Option<Counter>>,
}

impl Tracer {
    /// A tracer with no traces.
    pub fn new() -> Tracer {
        Tracer::default()
    }

    /// Attach the `ow_obs_spans_total` counter (wired by
    /// [`crate::Obs::new`]) so span volume shows up in the registry.
    pub fn set_span_counter(&self, counter: Counter) {
        *self.spans_total.lock() = Some(counter);
    }

    fn count_span(&self) {
        if let Some(c) = self.spans_total.lock().as_ref() {
            c.inc();
        }
    }

    /// Open a new trace for `subwindow` with a root span named
    /// `"window"` on `side`, starting (and provisionally ending) at
    /// `start_ns`. Returns the new trace id (= root span id). The
    /// sub-window's active-trace slot is repointed here, so later
    /// [`Tracer::mark`]s land in this trace.
    pub fn start_window(&self, subwindow: u32, side: &str, start_ns: u64) -> u64 {
        let mut inner = self.inner.lock();
        inner.next_id += 1;
        let id = inner.next_id;
        inner.traces.insert(
            id,
            TraceData {
                subwindow,
                root: id,
                spans: vec![Span {
                    id,
                    parent: None,
                    name: "window".to_string(),
                    side: side.to_string(),
                    shard: None,
                    start_ns,
                    end_ns: start_ns,
                }],
                marks: Vec::new(),
            },
        );
        inner.active.insert(subwindow, id);
        drop(inner);
        self.count_span();
        id
    }

    /// Record one completed child span inside `trace_id`. Returns the
    /// new span id, or `None` when the trace is unknown or `parent` is
    /// not an existing span of this trace (misparented spans are
    /// refused, never silently adopted).
    #[allow(clippy::too_many_arguments)]
    pub fn span(
        &self,
        trace_id: u64,
        parent: u64,
        name: &str,
        side: &str,
        shard: Option<u32>,
        start_ns: u64,
        end_ns: u64,
    ) -> Option<u64> {
        let mut inner = self.inner.lock();
        inner.next_id += 1;
        let id = inner.next_id;
        let trace = inner.traces.get_mut(&trace_id)?;
        if !trace.spans.iter().any(|s| s.id == parent) {
            return None;
        }
        trace.spans.push(Span {
            id,
            parent: Some(parent),
            name: name.to_string(),
            side: side.to_string(),
            shard,
            start_ns,
            end_ns: end_ns.max(start_ns),
        });
        drop(inner);
        self.count_span();
        Some(id)
    }

    /// Extend the trace's root span to end at `end_ns` (monotonic: the
    /// root never shrinks). Called by the controller when the window
    /// merges.
    pub fn finish_window(&self, trace_id: u64, end_ns: u64) {
        let mut inner = self.inner.lock();
        if let Some(trace) = inner.traces.get_mut(&trace_id) {
            let root = trace.root;
            if let Some(span) = trace.spans.iter_mut().find(|s| s.id == root) {
                span.end_ns = span.end_ns.max(end_ns);
            }
        }
    }

    /// Record an engine transition against `subwindow`'s active trace;
    /// a no-op when no trace is active (e.g. engines running without
    /// tracing, or transitions after release).
    pub fn mark(&self, subwindow: u32, side: &str, event: &str, from: &str, to: &str) {
        let mut inner = self.inner.lock();
        let Some(trace_id) = inner.active.get(&subwindow).copied() else {
            return;
        };
        if let Some(trace) = inner.traces.get_mut(&trace_id) {
            trace.marks.push(PhaseMark {
                side: side.to_string(),
                event: event.to_string(),
                from: from.to_string(),
                to: to.to_string(),
            });
        }
    }

    /// The active trace id for `subwindow`, if any.
    pub fn active_trace(&self, subwindow: u32) -> Option<u64> {
        self.inner.lock().active.get(&subwindow).copied()
    }

    /// Number of traces recorded.
    pub fn trace_count(&self) -> usize {
        self.inner.lock().traces.len()
    }
}

/// Per-trace critical-path analysis (see [`critical_path`]).
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct CriticalPath {
    /// Root span duration — the window's wall (virtual-clock) latency.
    pub wall_ns: u64,
    /// Fraction (‰) of `wall_ns` covered by named non-root spans;
    /// `1000` when the root is zero-length (nothing to attribute).
    pub attributed_permille: u64,
    /// Longest blocking chain of span names, root first: at each step
    /// the child whose *subtree* finishes last (ties: longer span,
    /// then smaller id).
    pub chain: Vec<String>,
    /// Aggregate self-time (span minus its descendants' coverage) per
    /// span name, sorted by name.
    pub self_time_ns: Vec<(String, u64)>,
    /// Whether `wall_ns` exceeded the report's SLO deadline.
    pub slo_violated: bool,
}

/// Total length covered by `intervals` after clipping each to
/// `[lo, hi]` and merging overlaps.
fn covered_ns(mut intervals: Vec<(u64, u64)>, lo: u64, hi: u64) -> u64 {
    intervals.retain_mut(|(s, e)| {
        *s = (*s).max(lo);
        *e = (*e).min(hi);
        s < e
    });
    intervals.sort_unstable();
    let mut total = 0u64;
    let mut cur: Option<(u64, u64)> = None;
    for (s, e) in intervals {
        match &mut cur {
            Some((_, ce)) if s <= *ce => *ce = (*ce).max(e),
            _ => {
                if let Some((cs, ce)) = cur {
                    total += ce - cs;
                }
                cur = Some((s, e));
            }
        }
    }
    if let Some((cs, ce)) = cur {
        total += ce - cs;
    }
    total
}

/// Analyse one span tree.
///
/// * **Self-time** per span is its duration minus the merged overlap
///   of its descendants (clipped to the span's own interval),
///   aggregated by name — exclusive time: the part of the span no
///   deeper span explains.
/// * **Attribution** is the fraction of the root interval covered by
///   *any* non-root span of the trace — the share of window latency
///   the tree explains causally. Retransmission spans parent to the
///   `collect` span but lie outside its interval, so attribution is
///   computed against the root interval, not the parent chain.
/// * The **chain** follows, from the root, the child whose subtree
///   finishes last (ties broken toward the longer span, then the
///   smaller id) — the sequence that blocked the window's completion,
///   even when the blocking span nests under an earlier phase (a
///   retransmission round under `collect`).
///
/// `slo` is an optional deadline on the root duration.
pub fn critical_path(spans: &[Span], root: u64, slo: Option<Duration>) -> CriticalPath {
    let by_id: HashMap<u64, &Span> = spans.iter().map(|s| (s.id, s)).collect();
    let mut children: HashMap<u64, Vec<&Span>> = HashMap::new();
    for s in spans {
        if let Some(p) = s.parent {
            children.entry(p).or_default().push(s);
        }
    }

    let (root_start, root_end) = match by_id.get(&root) {
        Some(r) => (r.start_ns, r.end_ns),
        None => (0, 0),
    };
    let wall_ns = root_end.saturating_sub(root_start);

    // Intervals of every *descendant*, per span — not just direct
    // children, because recovery spans parent to `collect` while lying
    // inside the root's tail, and they must still explain that tail.
    let mut descendants: HashMap<u64, Vec<(u64, u64)>> = HashMap::new();
    for s in spans {
        let mut up = s.parent;
        while let Some(pid) = up {
            descendants
                .entry(pid)
                .or_default()
                .push((s.start_ns, s.end_ns));
            up = by_id.get(&pid).and_then(|p| p.parent);
        }
    }

    let mut self_time: BTreeMap<String, u64> = BTreeMap::new();
    for s in spans {
        let overlap = covered_ns(
            descendants.get(&s.id).cloned().unwrap_or_default(),
            s.start_ns,
            s.end_ns,
        );
        *self_time.entry(s.name.clone()).or_default() += s.duration_ns().saturating_sub(overlap);
    }

    let non_root: Vec<(u64, u64)> = spans
        .iter()
        .filter(|s| s.id != root)
        .map(|s| (s.start_ns, s.end_ns))
        .collect();
    let attributed_permille = (covered_ns(non_root, root_start, root_end) * 1000)
        .checked_div(wall_ns)
        .unwrap_or(1000);

    // Latest finish time anywhere in each span's subtree. Ids are
    // sequential with parent < id, so one descending pass folds every
    // child into its parent before the parent is read.
    let mut subtree_end: BTreeMap<u64, u64> = spans.iter().map(|s| (s.id, s.end_ns)).collect();
    let mut descending: Vec<&Span> = spans.iter().collect();
    descending.sort_unstable_by_key(|s| std::cmp::Reverse(s.id));
    for s in descending {
        if let Some(p) = s.parent {
            let e = subtree_end.get(&s.id).copied().unwrap_or(s.end_ns);
            if let Some(pe) = subtree_end.get_mut(&p) {
                *pe = (*pe).max(e);
            }
        }
    }

    let mut chain = Vec::new();
    let mut cursor = root;
    while let Some(span) = by_id.get(&cursor) {
        chain.push(span.name.clone());
        let next = children.get(&cursor).and_then(|ks| {
            ks.iter()
                .copied()
                .max_by(|a, b| {
                    let (ea, eb) = (subtree_end[&a.id], subtree_end[&b.id]);
                    (ea, a.duration_ns(), std::cmp::Reverse(a.id)).cmp(&(
                        eb,
                        b.duration_ns(),
                        std::cmp::Reverse(b.id),
                    ))
                })
                .map(|s| s.id)
        });
        match next {
            Some(id) => cursor = id,
            None => break,
        }
    }

    CriticalPath {
        wall_ns,
        attributed_permille,
        chain,
        self_time_ns: self_time.into_iter().collect(),
        slo_violated: slo.is_some_and(|d| wall_ns > d.as_nanos()),
    }
}

/// One trace in the on-disk report: the span tree plus the engine
/// transitions observed while it was active and its critical path.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct TraceSummary {
    /// Trace id (= root span id).
    pub trace_id: u64,
    /// The traced sub-window.
    pub subwindow: u32,
    /// Root span id.
    pub root: u64,
    /// Every span, sorted by id.
    pub spans: Vec<Span>,
    /// Engine transitions in recording order.
    pub transitions: Vec<PhaseMark>,
    /// The critical-path analysis of this tree.
    pub critical_path: CriticalPath,
}

/// The deterministic on-disk trace report (`results/trace_smoke.json`):
/// every trace sorted by id, each with its critical path pre-computed.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct TraceReport {
    /// Name of the run (e.g. `obs_smoke`).
    pub run: String,
    /// SLO deadline applied to every trace's root duration, if any.
    pub slo_deadline_ns: Option<u64>,
    /// Traces in id order.
    pub traces: Vec<TraceSummary>,
}

impl TraceReport {
    /// Capture every trace in `tracer`, analysing each against `slo`.
    ///
    /// Roots of unfinished traces are extended to the latest child end
    /// so the wall latency is well-defined even when the controller
    /// never acknowledged (e.g. an evicted window).
    pub fn capture(run: &str, tracer: &Tracer, slo: Option<Duration>) -> TraceReport {
        let inner = tracer.inner.lock();
        let traces = inner
            .traces
            .values()
            .map(|t| {
                let mut spans = t.spans.clone();
                spans.sort_unstable_by_key(|s| s.id);
                let max_end = spans.iter().map(|s| s.end_ns).max().unwrap_or(0);
                if let Some(root) = spans.iter_mut().find(|s| s.id == t.root) {
                    root.end_ns = root.end_ns.max(max_end);
                }
                TraceSummary {
                    trace_id: t.root,
                    subwindow: t.subwindow,
                    root: t.root,
                    critical_path: critical_path(&spans, t.root, slo),
                    spans,
                    transitions: t.marks.clone(),
                }
            })
            .collect();
        TraceReport {
            run: run.to_string(),
            slo_deadline_ns: slo.map(|d| d.as_nanos()),
            traces,
        }
    }

    /// Pretty-printed JSON (the byte-stable form the determinism check
    /// compares).
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("trace report serializes")
    }

    /// Write the report to `path`, creating parent directories.
    pub fn write(&self, path: &std::path::Path) -> std::io::Result<()> {
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        std::fs::write(path, self.to_json())
    }
}

/// Validate a parsed trace-report document against the schema
/// [`TraceReport`] emits: per trace, exactly one root (the only
/// parentless span, with `id == root`), every parent resolving to an
/// earlier span of the same trace (`parent < id` — acyclic by
/// construction), well-ordered intervals, and a non-empty critical-path
/// chain. This is what the CI trace-smoke job runs against
/// `results/trace_smoke.json`.
pub fn validate_trace_json(doc: &Value) -> Result<(), String> {
    doc.field("run")
        .and_then(ValueExt::as_str)
        .ok_or("missing string field 'run'")?;
    let traces = doc
        .field("traces")
        .and_then(ValueExt::items)
        .ok_or("missing array field 'traces'")?;
    if traces.is_empty() {
        return Err("trace report has no traces".to_string());
    }
    for trace in traces {
        let trace_id = trace
            .field("trace_id")
            .and_then(ValueExt::as_u64)
            .ok_or("trace missing 'trace_id'")?;
        let root = trace
            .field("root")
            .and_then(ValueExt::as_u64)
            .ok_or("trace missing 'root'")?;
        let spans = trace
            .field("spans")
            .and_then(ValueExt::items)
            .ok_or("trace missing 'spans' array")?;
        if spans.is_empty() {
            return Err(format!("trace {trace_id} has no spans"));
        }
        let mut ids = std::collections::HashSet::new();
        let mut roots = 0usize;
        for span in spans {
            let id = span
                .field("id")
                .and_then(ValueExt::as_u64)
                .ok_or("span missing 'id'")?;
            let start = span
                .field("start_ns")
                .and_then(ValueExt::as_u64)
                .ok_or("span missing 'start_ns'")?;
            let end = span
                .field("end_ns")
                .and_then(ValueExt::as_u64)
                .ok_or("span missing 'end_ns'")?;
            if end < start {
                return Err(format!("span {id} ends before it starts"));
            }
            span.field("name")
                .and_then(ValueExt::as_str)
                .ok_or("span missing 'name'")?;
            match span.field("parent") {
                Some(Value::Null) | None => {
                    roots += 1;
                    if id != root {
                        return Err(format!(
                            "trace {trace_id}: parentless span {id} is not the root {root}"
                        ));
                    }
                }
                Some(p) => {
                    let p = p.as_u64().ok_or("span 'parent' is not an id")?;
                    if p >= id {
                        return Err(format!("span {id} parents forward to {p} (cycle risk)"));
                    }
                    if !ids.contains(&p) {
                        return Err(format!("span {id} is orphaned (parent {p} unknown)"));
                    }
                }
            }
            ids.insert(id);
        }
        if roots != 1 {
            return Err(format!("trace {trace_id} has {roots} roots (want 1)"));
        }
        let chain = trace
            .field("critical_path")
            .and_then(|cp| cp.field("chain"))
            .and_then(ValueExt::items)
            .ok_or("trace missing critical_path.chain")?;
        if chain.is_empty() {
            return Err(format!("trace {trace_id} has an empty critical path"));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo_tracer() -> (Tracer, u64) {
        let t = Tracer::new();
        let root = t.start_window(3, "switch", 1_000);
        let collect = t
            .span(root, root, "collect", "switch", None, 1_100, 1_400)
            .unwrap();
        t.span(root, root, "cr_wait", "switch", None, 1_000, 1_100)
            .unwrap();
        t.span(root, root, "reset", "switch", None, 1_400, 1_500)
            .unwrap();
        t.span(
            root,
            collect,
            "retransmit_round",
            "controller",
            None,
            1_500,
            1_700,
        )
        .unwrap();
        t.finish_window(root, 1_700);
        (t, root)
    }

    #[test]
    fn ids_are_sequential_and_parents_precede_children() {
        let (t, root) = demo_tracer();
        let report = TraceReport::capture("unit", &t, None);
        let spans = &report.traces[0].spans;
        assert_eq!(spans[0].id, root);
        for pair in spans.windows(2) {
            assert!(pair[0].id < pair[1].id);
        }
        for s in spans {
            if let Some(p) = s.parent {
                assert!(p < s.id, "span {} parents forward", s.id);
            }
        }
    }

    #[test]
    fn misparented_and_unknown_spans_are_refused() {
        let t = Tracer::new();
        let root = t.start_window(0, "switch", 0);
        assert!(t.span(root, 999, "x", "switch", None, 0, 1).is_none());
        assert!(t.span(999, root, "x", "switch", None, 0, 1).is_none());
    }

    #[test]
    fn critical_path_attributes_covered_time() {
        let (t, _root) = demo_tracer();
        let report = TraceReport::capture("unit", &t, Some(Duration::from_nanos(500)));
        let cp = &report.traces[0].critical_path;
        assert_eq!(cp.wall_ns, 700);
        // cr_wait+collect+reset+retransmit_round tile [1000,1700] fully.
        assert_eq!(cp.attributed_permille, 1000);
        assert_eq!(cp.chain, vec!["window", "collect", "retransmit_round"]);
        assert!(cp.slo_violated, "700ns wall > 500ns deadline");
        // Root self-time is zero: children explain the whole window.
        let window_self = cp
            .self_time_ns
            .iter()
            .find(|(n, _)| n == "window")
            .unwrap()
            .1;
        assert_eq!(window_self, 0);
        // The retransmit span lies outside its collect parent, so
        // collect keeps its full self-time.
        let collect_self = cp
            .self_time_ns
            .iter()
            .find(|(n, _)| n == "collect")
            .unwrap()
            .1;
        assert_eq!(collect_self, 300);
    }

    #[test]
    fn zero_length_root_attributes_fully() {
        let t = Tracer::new();
        let root = t.start_window(9, "switch", u64::MAX);
        let report = TraceReport::capture("unit", &t, None);
        let cp = &report.traces[0].critical_path;
        assert_eq!(cp.wall_ns, 0);
        assert_eq!(cp.attributed_permille, 1000);
        assert_eq!(cp.chain, vec!["window"]);
        assert_eq!(root, report.traces[0].root);
    }

    #[test]
    fn marks_record_against_the_active_trace_only() {
        let t = Tracer::new();
        t.mark(5, "switch", "signal_fired", "open", "terminated");
        assert_eq!(t.trace_count(), 0, "no active trace, mark dropped");
        let root = t.start_window(5, "switch", 0);
        t.mark(5, "switch", "signal_fired", "open", "terminated");
        let report = TraceReport::capture("unit", &t, None);
        assert_eq!(report.traces[0].transitions.len(), 1);
        assert_eq!(report.traces[0].transitions[0].event, "signal_fired");
        assert_eq!(t.active_trace(5), Some(root));
    }

    #[test]
    fn report_json_passes_the_validator() {
        let (t, _) = demo_tracer();
        let report = TraceReport::capture("unit", &t, Some(Duration::from_micros(1)));
        let doc = crate::json::parse(&report.to_json()).expect("report parses");
        validate_trace_json(&doc).expect("own report validates");
    }

    #[test]
    fn validator_rejects_orphans_and_forward_parents() {
        let bad_orphan = r#"{"run":"x","slo_deadline_ns":null,"traces":[{
            "trace_id":1,"subwindow":0,"root":1,
            "spans":[
                {"id":1,"parent":null,"name":"window","side":"switch","shard":null,"start_ns":0,"end_ns":10},
                {"id":3,"parent":2,"name":"collect","side":"switch","shard":null,"start_ns":0,"end_ns":5}
            ],
            "transitions":[],
            "critical_path":{"wall_ns":10,"attributed_permille":500,"chain":["window"],"self_time_ns":[],"slo_violated":false}
        }]}"#;
        let doc = crate::json::parse(bad_orphan).unwrap();
        let err = validate_trace_json(&doc).unwrap_err();
        assert!(err.contains("orphaned"), "{err}");

        let two_roots = bad_orphan.replace("\"parent\":2", "\"parent\":null");
        let doc = crate::json::parse(&two_roots).unwrap();
        let err = validate_trace_json(&doc).unwrap_err();
        assert!(
            err.contains("not the root") || err.contains("roots"),
            "{err}"
        );
    }

    #[test]
    fn same_operations_same_bytes() {
        let (a, _) = demo_tracer();
        let (b, _) = demo_tracer();
        assert_eq!(
            TraceReport::capture("unit", &a, None).to_json(),
            TraceReport::capture("unit", &b, None).to_json()
        );
    }

    #[test]
    fn interval_union_merges_overlaps() {
        assert_eq!(covered_ns(vec![(0, 10), (5, 15)], 0, 20), 15);
        assert_eq!(covered_ns(vec![(0, 10), (12, 15)], 0, 20), 13);
        assert_eq!(covered_ns(vec![(0, 100)], 10, 20), 10, "clipped");
        assert_eq!(covered_ns(vec![], 0, 20), 0);
    }
}
