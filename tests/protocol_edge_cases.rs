//! Edge-case integration tests: multi-ingress consistency, AFR loss and
//! retransmission, hopping windows, and the Exp#9 path-length extension.

use std::collections::HashMap;

use ow_common::afr::{AttrValue, FlowRecord};
use ow_common::flowkey::{FlowKey, KeyKind};
use ow_common::packet::{Packet, TcpFlags};
use ow_common::time::{Duration, Instant};
use ow_controller::collector::{CollectionSession, SessionStatus};
use ow_controller::live::{ReliableLiveController, ReliableMsg};
use ow_controller::reliability::{AfrTransport, ReliabilityDriver, RetryPolicy};
use ow_controller::table::MergeTable;
use ow_controller::wire::{decode_batch, encode_batch};
use ow_netsim::{FaultConfig, LossyChannel, PacketClass};
use ow_sketch::CountMin;
use ow_switch::app::FrequencyApp;
use ow_switch::signal::WindowSignal;
use ow_switch::{Switch, SwitchConfig, SwitchEvent};
use ow_verify::verified_switch;

type App = FrequencyApp<CountMin>;

fn mk_switch(first_hop: bool) -> Switch<App> {
    let app = |s| FrequencyApp::new(CountMin::new(2, 8192, s), KeyKind::SrcIp, false);
    verified_switch(
        SwitchConfig {
            first_hop,
            fk_capacity: 4096,
            expected_flows: 16 * 1024,
            signal: WindowSignal::Timeout(Duration::from_millis(100)),
            cr_wait: Duration::from_millis(1),
            ..SwitchConfig::default()
        },
        app(1),
        app(2),
    )
    .expect("pipeline verifies")
}

fn pkt(src: u32, ms: u64) -> Packet {
    Packet::tcp(Instant::from_millis(ms), src, 9, 1, 80, TcpFlags::ack(), 64)
}

fn batch_counts(events: &[SwitchEvent], key: FlowKey) -> HashMap<u32, u64> {
    let mut out = HashMap::new();
    for e in events {
        if let SwitchEvent::AfrBatch {
            subwindow, outcome, ..
        } = e
        {
            let v = outcome
                .afrs
                .iter()
                .find(|r| r.key == key)
                .map(|r| r.attr.scalar() as u64)
                .unwrap_or(0);
            out.insert(*subwindow, v);
        }
    }
    out
}

/// Figure 4's scenario with *two* ingress switches: packets from a
/// fast-forwarded ingress push the transit switch ahead, yet packets
/// stamped by the slower ingress (an older sub-window) are still
/// measured in their stamped sub-window via the preservation horizon.
#[test]
fn two_ingresses_one_transit_stay_consistent() {
    let mut ingress_a = mk_switch(true);
    let mut ingress_b = mk_switch(true);
    let mut transit = mk_switch(false);

    // Ingress A's flow runs 0–400 ms; ingress B's runs 80–480 ms, so at
    // any moment their current sub-windows disagree around boundaries.
    let mut downstream: Vec<(u64, Packet)> = Vec::new();
    for i in 0..100u64 {
        let ta = i * 4; // 0..400ms
        for e in ingress_a.process(pkt(1, ta)) {
            if let SwitchEvent::Forward(p) = e {
                downstream.push((ta * 1_000_000 + 10_000, p)); // +10µs link
            }
        }
        let tb = 80 + i * 4; // 80..480ms
        for e in ingress_b.process(pkt(2, tb)) {
            if let SwitchEvent::Forward(p) = e {
                downstream.push((tb * 1_000_000 + 25_000, p)); // +25µs link
            }
        }
    }
    // Interleave by arrival time at the transit switch.
    downstream.sort_by_key(|(at, _)| *at);

    let mut transit_events = Vec::new();
    for (at, mut p) in downstream {
        p.ts = Instant::from_nanos(at);
        transit_events.extend(transit.process(p));
    }
    transit_events.extend(transit.flush());

    // No packet was demoted to a latency spike…
    assert_eq!(transit.latency_spikes(), 0);

    // …and the transit switch's per-sub-window counts equal the union of
    // both ingresses' counts (consistency across the fan-in).
    let mut a_events = Vec::new();
    a_events.extend(ingress_a.flush());
    let mut b_events = Vec::new();
    b_events.extend(ingress_b.flush());

    let transit_1 = batch_counts(&transit_events, FlowKey::src_ip(1));
    let transit_2 = batch_counts(&transit_events, FlowKey::src_ip(2));
    // Flow 1: 25 packets per 100 ms sub-window (i*4ms spacing).
    for (sw, v) in &transit_1 {
        if *v > 0 {
            assert_eq!(*v, 25, "flow 1 sub-window {sw}");
        }
    }
    // Flow 2 likewise, shifted by 80 ms (split 20/25/25/25/5).
    let total_2: u64 = transit_2.values().sum();
    assert_eq!(total_2, 100, "flow 2 total across sub-windows");
}

/// The §8 reliability path end-to-end over the wire codec: 20 % of AFR
/// report packets are lost in transit; the session detects exactly the
/// missing sequence ids, the "switch" retransmits them, and the merged
/// result is identical to the lossless run.
#[test]
fn afr_loss_detected_and_retransmitted() {
    let mut sw = mk_switch(true);
    let mut packets = Vec::new();
    for src in 1..=50u32 {
        for i in 0..(src as u64 % 7 + 1) {
            packets.push(pkt(src, 10 + i));
        }
    }
    packets.sort_by_key(|p| p.ts);
    for p in packets {
        sw.process(p);
    }
    let events = sw.flush();
    let (subwindow, afrs) = events
        .iter()
        .find_map(|e| match e {
            SwitchEvent::AfrBatch {
                subwindow, outcome, ..
            } => Some((*subwindow, outcome.afrs.clone())),
            _ => None,
        })
        .expect("one batch");
    assert_eq!(afrs.len(), 50);

    // Serialise the batch as the switch would send it; drop every 5th
    // record in transit.
    let wire = encode_batch(&afrs);
    let received = decode_batch(wire).unwrap();
    let mut session = CollectionSession::new(subwindow, afrs.len() as u32);
    for (i, r) in received.iter().enumerate() {
        if i % 5 != 4 {
            session.receive(*r).unwrap();
        }
    }
    assert_eq!(session.status(), SessionStatus::Collecting);

    // The controller asks for exactly the dropped sequence ids…
    let missing = session.missing();
    assert_eq!(missing.len(), 10);
    assert!(missing.iter().all(|seq| seq % 5 == 4));

    // …the switch retransmits them (again over the wire)…
    let retransmit: Vec<_> = afrs
        .iter()
        .filter(|r| missing.contains(&r.seq))
        .copied()
        .collect();
    for r in decode_batch(encode_batch(&retransmit)).unwrap() {
        session.receive(r).unwrap();
    }
    assert_eq!(session.status(), SessionStatus::Complete);
    assert_eq!(session.retransmissions(), 1);

    // …and the merged table matches the lossless ground truth.
    let mut lossy = MergeTable::new();
    lossy.insert_batch(subwindow, session.into_batch());
    let mut lossless = MergeTable::new();
    lossless.insert_batch(subwindow, afrs.clone());
    for r in &afrs {
        assert_eq!(lossy.get(&r.key), lossless.get(&r.key));
    }
}

/// Run a one-sub-window trace and return the switch (still retaining
/// the batch for retransmission) plus the batch it produced.
fn switch_with_one_batch() -> (Switch<App>, u32, Vec<FlowRecord>) {
    let mut sw = mk_switch(true);
    let mut packets = Vec::new();
    for src in 1..=20u32 {
        for i in 0..(src as u64 % 4 + 1) {
            packets.push(pkt(src, 10 + i));
        }
    }
    packets.sort_by_key(|p| p.ts);
    for p in packets {
        sw.process(p);
    }
    let events = sw.flush();
    let (subwindow, afrs) = events
        .iter()
        .find_map(|e| match e {
            SwitchEvent::AfrBatch {
                subwindow, outcome, ..
            } => Some((*subwindow, outcome.afrs.clone())),
            _ => None,
        })
        .expect("one batch");
    (sw, subwindow, afrs)
}

/// The retransmission request itself is lost: the round yields nothing,
/// the timeout fires again, and the next round's request reaches the
/// switch's retransmit buffer and completes the session.
#[test]
fn lost_retransmission_request_is_retried() {
    struct FlakyRequestPath<'a> {
        switch: &'a mut Switch<App>,
        initial: Vec<FlowRecord>,
        swallowed: u32,
        requests_seen: u32,
    }
    impl AfrTransport for FlakyRequestPath<'_> {
        fn initial_afrs(&mut self, _sw: u32) -> Vec<FlowRecord> {
            std::mem::take(&mut self.initial)
        }
        fn request_retransmit(&mut self, sw: u32, seqs: &[u32]) -> Vec<FlowRecord> {
            self.requests_seen += 1;
            if self.requests_seen <= self.swallowed {
                return Vec::new(); // the request died in the fabric
            }
            self.switch.handle_retransmit_request(sw, seqs)
        }
        fn os_read(&mut self, _sw: u32) -> (Vec<FlowRecord>, Duration) {
            panic!("must recover without escalating");
        }
    }

    let (mut sw, subwindow, afrs) = switch_with_one_batch();
    // Half the initial stream is lost.
    let initial: Vec<FlowRecord> = afrs.iter().filter(|r| r.seq % 2 == 0).copied().collect();
    let mut transport = FlakyRequestPath {
        switch: &mut sw,
        initial,
        swallowed: 1,
        requests_seen: 0,
    };
    let out = ReliabilityDriver::new(RetryPolicy::default()).collect(
        &mut transport,
        subwindow,
        afrs.len() as u32,
    );
    assert_eq!(out.batch, afrs);
    assert!(!out.escalated);
    assert_eq!(transport.requests_seen, 2);
    assert_eq!(out.metrics.retransmit_rounds, 2);
    // The second round waited longer than the first (exponential backoff).
    let policy = RetryPolicy::default();
    assert_eq!(
        out.metrics.wall_clock,
        policy.timeout_for_round(1) + policy.timeout_for_round(2)
    );
}

/// A duplicated trigger packet announces the same sub-window twice; the
/// controller opens one session, counts the sub-window once, and the
/// merged result is unaffected.
#[test]
fn duplicate_trigger_packet_is_idempotent() {
    let (_sw, subwindow, afrs) = switch_with_one_batch();

    // Force the fault channel to duplicate every trigger clone.
    let mut cfg = FaultConfig::lossless(42);
    cfg.trigger.duplicate = 1.0;
    let mut channel = LossyChannel::new(cfg);
    let trigger_copies = channel.transmit_one(PacketClass::Trigger, subwindow);
    assert_eq!(trigger_copies.len(), 2, "channel duplicates the trigger");

    let store = afrs.clone();
    let ctl = ReliableLiveController::spawn(
        4,
        64,
        RetryPolicy::default(),
        Box::new(move |_, seqs: &[u32]| seqs.iter().map(|&s| store[s as usize]).collect()),
        Box::new(|_| panic!("no escalation expected")),
    );
    for &sw in &trigger_copies {
        ctl.sender
            .send(ReliableMsg::Announce {
                subwindow: sw,
                announced: afrs.len() as u32,
            })
            .unwrap();
    }
    for r in afrs.iter().skip(3) {
        ctl.sender.send(ReliableMsg::Afr(*r)).unwrap();
    }
    ctl.sender
        .send(ReliableMsg::EndOfStream { subwindow })
        .unwrap();
    let handle = ctl.handle.clone();
    let metrics = ctl.join();

    // One session, announced counted once, table exact.
    assert_eq!(metrics.announced, afrs.len() as u64);
    assert_eq!(handle.merged_flows(), afrs.len());
    let mut expected = MergeTable::new();
    expected.insert_batch(subwindow, afrs.clone());
    for r in &afrs {
        let merged = handle
            .flows_over(0.0)
            .into_iter()
            .find(|(k, _)| k == &r.key)
            .map(|(_, v)| v);
        assert_eq!(merged, Some(expected.get(&r.key).unwrap().scalar()));
    }
}

/// A retransmitted AFR crosses its original in flight: both arrive. The
/// session stays idempotent, the duplicate is counted and discarded, and
/// the batch is exact.
#[test]
fn retransmitted_afr_crossing_original_is_discarded() {
    struct CrossingPath {
        store: Vec<FlowRecord>,
        straggler: FlowRecord,
    }
    impl AfrTransport for CrossingPath {
        fn initial_afrs(&mut self, _sw: u32) -> Vec<FlowRecord> {
            // seq 1's original is "delayed", not lost: it shows up later.
            self.store.iter().filter(|r| r.seq != 1).copied().collect()
        }
        fn request_retransmit(&mut self, _sw: u32, seqs: &[u32]) -> Vec<FlowRecord> {
            // The replay arrives together with the delayed original.
            let mut out: Vec<FlowRecord> = seqs.iter().map(|&s| self.store[s as usize]).collect();
            out.push(self.straggler);
            out
        }
        fn os_read(&mut self, _sw: u32) -> (Vec<FlowRecord>, Duration) {
            panic!("no escalation expected");
        }
    }

    let (_sw, subwindow, afrs) = switch_with_one_batch();
    let mut transport = CrossingPath {
        straggler: afrs[1],
        store: afrs.clone(),
    };
    let out = ReliabilityDriver::new(RetryPolicy::default()).collect(
        &mut transport,
        subwindow,
        afrs.len() as u32,
    );
    assert_eq!(out.batch, afrs, "exactly one copy of each seq survives");
    assert_eq!(out.metrics.recovered, 1);
    assert_eq!(out.metrics.duplicates, 1, "the crossed copy was discarded");
    assert_eq!(out.metrics.retransmit_rounds, 1);
}

/// Every retransmission round fails; after `max_rounds` the controller
/// escalates to the switch-OS read, which charges its (much larger)
/// latency but always completes the batch.
#[test]
fn escalation_after_max_rounds_reads_switch_os() {
    struct DeadBackchannel<'a> {
        switch: &'a mut Switch<App>,
        initial: Vec<FlowRecord>,
    }
    impl AfrTransport for DeadBackchannel<'_> {
        fn initial_afrs(&mut self, _sw: u32) -> Vec<FlowRecord> {
            std::mem::take(&mut self.initial)
        }
        fn request_retransmit(&mut self, _sw: u32, _seqs: &[u32]) -> Vec<FlowRecord> {
            Vec::new() // every round is lost
        }
        fn os_read(&mut self, sw: u32) -> (Vec<FlowRecord>, Duration) {
            self.switch.os_read_terminated(sw).expect("retained")
        }
    }

    let (mut sw, subwindow, afrs) = switch_with_one_batch();
    let initial: Vec<FlowRecord> = afrs.iter().take(2).copied().collect();
    let policy = RetryPolicy {
        max_rounds: 3,
        ..RetryPolicy::default()
    };
    let mut transport = DeadBackchannel {
        switch: &mut sw,
        initial,
    };
    let out = ReliabilityDriver::new(policy).collect(&mut transport, subwindow, afrs.len() as u32);
    assert_eq!(out.batch, afrs);
    assert!(out.escalated);
    assert_eq!(out.metrics.retransmit_rounds, 3);
    assert_eq!(out.metrics.escalations, 1);
    // The OS path dominates the wall clock: far beyond the waited
    // timeouts (3 rounds ≤ 3 × max_timeout = 15 ms; the OS read of this
    // region costs hundreds of milliseconds).
    let timeouts = (1..=3).fold(Duration::ZERO, |acc, r| acc + policy.timeout_for_round(r));
    assert!(out.metrics.wall_clock > timeouts + Duration::from_millis(100));
    // The escalation consumed the retained copy.
    assert!(
        sw.retransmit_buffer().retained().is_empty()
            || !sw.retransmit_buffer().retained().contains(&subwindow)
    );
}

/// Hopping windows (slide larger than one sub-window but smaller than
/// the window): G2's "move forward by any distance", directly from the
/// same sub-windows.
#[test]
fn hopping_windows_from_subwindows() {
    use omniwindow::app::HeavyHitterApp;
    use omniwindow::config::WindowConfig;
    use omniwindow::mechanisms::{run_ideal, run_omniwindow, Mode};
    use ow_trace::Trace;

    // Window 500 ms hopping by 200 ms over 100 ms sub-windows.
    let cfg = WindowConfig::new(
        Duration::from_millis(500),
        Duration::from_millis(200),
        Duration::from_millis(100),
    )
    .unwrap();
    assert_eq!(cfg.subwindows_per_slide(), 2);

    let mut packets = Vec::new();
    for i in 0..120u64 {
        packets.push(pkt(7, i * 10)); // 10 packets / 100ms, 1.2s
    }
    let trace = Trace {
        packets,
        duration: Duration::from_millis(1_200),
    };
    let app = HeavyHitterApp::mv(45);

    let ideal = run_ideal(&app, &trace, &cfg, Mode::Sliding);
    let ow = run_omniwindow(&app, &trace, &cfg, Mode::Sliding, 64 * 1024, 3);
    // Positions: starts at 0,200,400,600 ms (700 ms start would exceed).
    assert_eq!(ideal.len(), 4);
    assert_eq!(ow.len(), 4);
    let key = pkt(7, 0).five_tuple();
    for (i, o) in ideal.iter().zip(ow.iter()) {
        // 50 packets per 500 ms window ≥ 45 → reported at every position.
        assert_eq!(i.reported.contains(&key), o.reported.contains(&key));
        assert!(o.reported.contains(&key));
    }
}

/// The Exp#9 extension: local-clock precision decays with path length;
/// OmniWindow's stamps do not.
#[test]
fn consistency_error_amplifies_with_hops() {
    use omniwindow::experiments::exp9_consistency::{run_hop_sweep, Exp9Config};
    let cfg = Exp9Config {
        flows: 120,
        pkts_per_flow: 25,
        ..Exp9Config::default()
    };
    let sweep = run_hop_sweep(&cfg, 64, &[2, 4]);
    assert_eq!(sweep.len(), 2);
    for p in &sweep {
        assert_eq!(p.omniwindow_precision, 1.0, "{} hops", p.hops);
    }
    assert!(
        sweep[1].local_clock_precision < sweep[0].local_clock_precision,
        "{} → {}",
        sweep[0].local_clock_precision,
        sweep[1].local_clock_precision
    );
}

/// Out-of-order arrival at a transit switch within the preservation
/// horizon: the straggler is measured in its stamped sub-window, and the
/// AFR batch for that sub-window includes it.
#[test]
fn straggler_counted_in_its_stamped_subwindow() {
    let mut transit = mk_switch(false);
    let mut events = Vec::new();
    // Sub-window 1 packets arrive…
    for i in 0..10u64 {
        let mut p = pkt(5, 110 + i);
        p.ow.subwindow = 1;
        events.extend(transit.process(p));
    }
    // …then the switch is pushed to sub-window 2…
    let mut p2 = pkt(6, 210);
    p2.ow.subwindow = 2;
    events.extend(transit.process(p2));
    // …and a straggler stamped 1 arrives 800 µs later — before the
    // delayed C&R (cr_wait = 1 ms) reclaims sub-window 1's region, so the
    // preservation horizon still holds it.
    let mut late = pkt(5, 210);
    late.ts = Instant::from_micros(210_800);
    late.ow.subwindow = 1;
    events.extend(transit.process(late));

    events.extend(transit.flush());
    let counts = batch_counts(&events, FlowKey::src_ip(5));
    assert_eq!(counts.get(&1), Some(&11), "straggler joined sub-window 1");
}

/// A denial test for the AttrValue protocol: merging mismatched patterns
/// through the whole pipeline is rejected, not silently corrupted.
#[test]
fn mismatched_attr_patterns_rejected_everywhere() {
    let mut a = AttrValue::Frequency(1);
    assert!(a.merge(&AttrValue::Max(2)).is_err());
    let mut b = AttrValue::Signed(1);
    assert!(b.merge(&AttrValue::Frequency(1)).is_err());
    assert!(b.unmerge_frequency(&AttrValue::Signed(1)).is_err());
}
