//! The data-plane application abstraction.
//!
//! OmniWindow is a *framework*: it wraps an existing telemetry program
//! (a sketch, a Sonata query's register program, …) with window
//! management. [`DataPlaneApp`] is the contract that program must meet —
//! exactly the feasibility requirements of §4.1: a declared flowkey
//! definition and support for data-plane flow query.

use ow_common::afr::AttrValue;
use ow_common::flowkey::{FlowKey, KeyKind};
use ow_common::packet::Packet;
use ow_sketch::traits::SketchMeta;

/// A telemetry application's per-sub-window state, as deployed in one
/// memory region of the data plane.
pub trait DataPlaneApp {
    /// The flowkey definition the application declares (§4.1).
    fn key_kind(&self) -> KeyKind;

    /// Process one packet (the normal measurement path).
    fn update(&mut self, pkt: &Packet);

    /// Data-plane flow query: the statistic recorded for `key`, used to
    /// generate this flow's AFR when the sub-window terminates.
    fn query(&self, key: &FlowKey) -> AttrValue;

    /// Keys the structure itself stores (heavy keys in MV-Sketch /
    /// HashPipe / Elastic-style structures). Applications that keep no
    /// keys (Count-Min, Sonata reduce tables) return an empty vector and
    /// rely entirely on OmniWindow's flowkey tracking.
    fn self_tracked_keys(&self) -> Vec<FlowKey> {
        Vec::new()
    }

    /// Reset all state (what the clear packets do cell-by-cell).
    fn reset(&mut self);

    /// Number of register entries per array — determines how many
    /// recirculation passes a full in-switch reset needs (§4.3).
    fn states_per_array(&self) -> usize;

    /// Resource footprint of one instance.
    fn meta(&self) -> SketchMeta;
}

/// Blanket adapter: a frequency sketch keyed on `kind`, counting packets
/// (`weight = 1`) or bytes (`weight = wire_len`).
#[derive(Debug, Clone)]
pub struct FrequencyApp<S> {
    sketch: S,
    kind: KeyKind,
    count_bytes: bool,
}

impl<S: ow_sketch::traits::FrequencySketch> FrequencyApp<S> {
    /// Wrap `sketch`, keying on `kind`; `count_bytes` selects byte counts
    /// over packet counts.
    pub fn new(sketch: S, kind: KeyKind, count_bytes: bool) -> Self {
        FrequencyApp {
            sketch,
            kind,
            count_bytes,
        }
    }

    /// Access the wrapped sketch.
    pub fn sketch(&self) -> &S {
        &self.sketch
    }
}

impl<S: ow_sketch::traits::FrequencySketch> DataPlaneApp for FrequencyApp<S> {
    fn key_kind(&self) -> KeyKind {
        self.kind
    }

    fn update(&mut self, pkt: &Packet) {
        let w = if self.count_bytes {
            pkt.wire_len as u64
        } else {
            1
        };
        self.sketch.update(&pkt.key(self.kind), w);
    }

    fn query(&self, key: &FlowKey) -> AttrValue {
        AttrValue::Frequency(self.sketch.query(key))
    }

    fn reset(&mut self) {
        self.sketch.reset();
    }

    fn states_per_array(&self) -> usize {
        let m = self.sketch.meta();
        // Entries per array, assuming 4-byte cells (the layout all
        // frequency sketches here use).
        (m.memory_bytes / 4)
            .checked_div(m.register_arrays)
            .unwrap_or(0)
    }

    fn meta(&self) -> SketchMeta {
        self.sketch.meta()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ow_common::packet::TcpFlags;
    use ow_common::time::Instant;
    use ow_sketch::CountMin;

    fn pkt(src: u32, len: u16) -> Packet {
        Packet::tcp(Instant::ZERO, src, 99, 1, 80, TcpFlags::ack(), len)
    }

    #[test]
    fn frequency_app_counts_packets() {
        let mut app = FrequencyApp::new(CountMin::new(2, 1024, 1), KeyKind::SrcIp, false);
        for _ in 0..5 {
            app.update(&pkt(7, 100));
        }
        assert_eq!(app.query(&FlowKey::src_ip(7)), AttrValue::Frequency(5));
    }

    #[test]
    fn frequency_app_counts_bytes() {
        let mut app = FrequencyApp::new(CountMin::new(2, 1024, 2), KeyKind::SrcIp, true);
        app.update(&pkt(7, 100));
        app.update(&pkt(7, 150));
        assert_eq!(app.query(&FlowKey::src_ip(7)), AttrValue::Frequency(250));
    }

    #[test]
    fn reset_clears_state() {
        let mut app = FrequencyApp::new(CountMin::new(2, 64, 3), KeyKind::SrcIp, false);
        app.update(&pkt(1, 64));
        app.reset();
        assert_eq!(app.query(&FlowKey::src_ip(1)), AttrValue::Frequency(0));
    }

    #[test]
    fn states_per_array_matches_width() {
        let app = FrequencyApp::new(CountMin::new(4, 4096, 4), KeyKind::FiveTuple, false);
        assert_eq!(app.states_per_array(), 4096);
    }
}
