//! A live, threaded switch→controller deployment with a sharded merge
//! path.
//!
//! The simulation experiments run single-threaded on virtual time, but a
//! real deployment has the data plane and the controller on different
//! processors connected by a message stream. This module provides that
//! runtime shape, in two tiers:
//!
//! * A **router thread** receives AFR batches or columnar
//!   [`RecordBlock`]s over a bounded crossbeam channel, drives each
//!   window's lifecycle through the shared [`WindowEngine`] (announced →
//!   merged → released on slide-eviction), and scatters the records by
//!   flow-key hash into capacity-bounded per-shard blocks — one queue
//!   send per *block*, not per record.
//! * **`N` shard workers** (one thread per shard, `N` from the
//!   `OW_SHARDS` environment variable, default 1) each own a disjoint
//!   key slice in their own lock-protected [`MergeTable`] and fold whole
//!   blocks ([`MergeTable::insert_block`]). Every worker receives every
//!   sub-window — empty blocks where it owns no keys — so sliding-window
//!   evictions stay synchronized across shards.
//!
//! Queries read the shard tables concurrently through the
//! [`LiveHandle`]; its [`LiveHandle::snapshot`] is the deterministic
//! final fold (canonical key order), byte-identical under
//! `wire::encode_merged` at any shard count.
//!
//! Back-pressure is explicit at both boundaries: `sender.send` blocks
//! when the router queue is full (as a NIC queue would), and the
//! non-blocking [`LiveController::offer`] /
//! [`ReliableLiveController::offer`] instead reject and count the drop —
//! there is no silent loss path.

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

use crossbeam::channel::{bounded, Receiver, Sender};
use parking_lot::RwLock;

use ow_common::afr::{AttrValue, FlowRecord};
use ow_common::block::{RecordBlock, ShardScatter, DEFAULT_BLOCK_CAPACITY};
use ow_common::engine::{WindowEngine, WindowEvent, WindowFsm, WindowPhase};
use ow_common::flowkey::FlowKey;
use ow_common::hash::ShardPartition;
use ow_common::metrics::ReliabilityMetrics;
use ow_common::time::Duration;
use ow_obs::{Counter, Event, Gauge, Obs, TraceContext, Traced};

use crate::collector::CollectionSession;
use crate::reliability::{FnTransport, ReliabilityDriver, RetryPolicy};
use crate::table::MergeTable;

/// Parse a shard-count override (the `OW_SHARDS` value). Unset or
/// unparsable means 1; zero clamps to 1 (a partition needs a shard).
fn parse_shards(value: Option<&str>) -> usize {
    value
        .and_then(|v| v.trim().parse::<usize>().ok())
        .map_or(1, |n| n.max(1))
}

/// The shard count configured for this process via `OW_SHARDS`.
///
/// This is what [`LiveController::spawn`] and
/// [`ReliableLiveController::spawn`] use, so the CI matrix can exercise
/// the whole test suite at several shard counts without touching call
/// sites.
pub fn shards_from_env() -> usize {
    parse_shards(std::env::var("OW_SHARDS").ok().as_deref())
}

/// A message from the router to one shard worker.
enum ShardMsg {
    /// One scattered block of this shard's slice of a sub-window's
    /// stream (possibly empty — every shard sees every sub-window so
    /// evictions stay aligned). `open` flags the sub-window's first
    /// block on this shard: it starts a new evictable unit.
    Block { block: RecordBlock, open: bool },
    /// Sliding-window advance: retire the oldest sub-window.
    Evict,
    /// Drain and exit.
    Shutdown,
}

/// The shard worker pool: `N` threads, each folding its disjoint key
/// slice into its own merge table.
struct ShardPool {
    tables: Vec<Arc<RwLock<MergeTable>>>,
    senders: Vec<Sender<ShardMsg>>,
    workers: Vec<JoinHandle<u64>>,
    partition: ShardPartition,
    /// Per-shard queue-depth gauges
    /// (`ow_controller_shard_queue_depth{shard=…}`): incremented by the
    /// router on every send, decremented by the worker as it dequeues,
    /// so the live value is the worker's backlog and the value after
    /// `shutdown()` is deterministically zero.
    depth_gauges: Option<Vec<Gauge>>,
    /// Per-shard queued-*record* gauges
    /// (`ow_controller_shard_queue_records{shard=…}`): the router adds a
    /// block's row count on send, the worker subtracts it on dequeue —
    /// depth counts messages, this counts payload.
    record_gauges: Option<Vec<Gauge>>,
    /// Blocks routed to shard workers (`ow_controller_blocks_total`).
    block_counter: Option<Counter>,
    /// Records routed to shard workers (`ow_controller_records_total`).
    record_counter: Option<Counter>,
}

impl ShardPool {
    fn spawn(shards: usize, queue_depth: usize, obs: Option<&Obs>) -> ShardPool {
        let partition = ShardPartition::new(shards);
        let per_shard_gauges = |name: &'static str| {
            obs.map(|o| {
                (0..shards)
                    .map(|i| o.gauge(name, &[("shard", &i.to_string())]))
                    .collect::<Vec<Gauge>>()
            })
        };
        let depth_gauges = per_shard_gauges("ow_controller_shard_queue_depth");
        let record_gauges = per_shard_gauges("ow_controller_shard_queue_records");
        let block_counter = obs.map(|o| o.counter("ow_controller_blocks_total", &[]));
        let record_counter = obs.map(|o| o.counter("ow_controller_records_total", &[]));
        let mut tables = Vec::with_capacity(shards);
        let mut senders = Vec::with_capacity(shards);
        let mut workers = Vec::with_capacity(shards);
        for shard in 0..shards {
            // Pre-sized: the open-addressing fast path starts at a few
            // thousand slots so steady-state ingest never rehashes.
            let table = Arc::new(RwLock::new(MergeTable::with_capacity(4096)));
            let (tx, rx): (Sender<ShardMsg>, Receiver<ShardMsg>) = bounded(queue_depth.max(1));
            let worker_table = table.clone();
            let depth = depth_gauges.as_ref().map(|g| g[shard].clone());
            let records = record_gauges.as_ref().map(|g| g[shard].clone());
            workers.push(std::thread::spawn(move || {
                let mut blocks = 0u64;
                while let Ok(msg) = rx.recv() {
                    if let Some(g) = &depth {
                        g.dec();
                    }
                    match msg {
                        ShardMsg::Block { block, open } => {
                            if let Some(g) = &records {
                                g.sub(block.len() as u64);
                            }
                            worker_table.write().insert_block(block, open);
                            blocks += 1;
                        }
                        ShardMsg::Evict => {
                            worker_table.write().evict_oldest();
                        }
                        ShardMsg::Shutdown => break,
                    }
                }
                blocks
            }));
            tables.push(table);
            senders.push(tx);
        }
        ShardPool {
            tables,
            senders,
            workers,
            partition,
            depth_gauges,
            record_gauges,
            block_counter,
            record_counter,
        }
    }

    fn mark_sent(&self, shard: usize) {
        if let Some(gauges) = &self.depth_gauges {
            gauges[shard].inc();
        }
    }

    /// Send one scattered block to its shard worker. Blocking send: a
    /// full worker queue back-pressures the router rather than dropping.
    fn send_block(&self, shard: usize, block: RecordBlock, open: bool) {
        self.mark_sent(shard);
        if let Some(gauges) = &self.record_gauges {
            gauges[shard].add(block.len() as u64);
        }
        if let Some(c) = &self.block_counter {
            c.inc();
        }
        if let Some(c) = &self.record_counter {
            c.add(block.len() as u64);
        }
        let _ = self.senders[shard].send(ShardMsg::Block { block, open });
    }

    /// Fan one sub-window's batch out to every shard, scattered into
    /// capacity-bounded blocks (one send per block, not per record).
    fn insert(&self, subwindow: u32, afrs: Vec<FlowRecord>) {
        let mut scatter = ShardScatter::new(self.partition, DEFAULT_BLOCK_CAPACITY);
        scatter.scatter_batch(subwindow, &afrs, |shard, block, open| {
            self.send_block(shard, block, open);
        });
    }

    /// Scatter one complete sub-window block across the shards.
    fn insert_block(&self, block: &RecordBlock) {
        let mut scatter = ShardScatter::new(self.partition, DEFAULT_BLOCK_CAPACITY);
        scatter.begin(block.subwindow());
        scatter.push_block(block, |shard, b, open| self.send_block(shard, b, open));
        scatter.seal(|shard, b, open| self.send_block(shard, b, open));
    }

    /// Retire the oldest sub-window on every shard.
    fn evict(&self) {
        for (shard, tx) in self.senders.iter().enumerate() {
            self.mark_sent(shard);
            let _ = tx.send(ShardMsg::Evict);
        }
    }

    /// Stop the workers and wait for their queues to drain, so every
    /// insert is visible once the router thread returns.
    fn shutdown(self) {
        for (shard, tx) in self.senders.iter().enumerate() {
            self.mark_sent(shard);
            let _ = tx.send(ShardMsg::Shutdown);
        }
        drop(self.senders);
        for w in self.workers {
            let _ = w.join();
        }
    }
}

/// Shared handle for querying the live sharded merge tables.
///
/// Each query takes the shard read locks one at a time, so a query
/// concurrent with ingest sees an eventually-consistent view — exactly
/// what a live telemetry dashboard reads. After `join()` the view is
/// final.
#[derive(Debug, Clone)]
pub struct LiveHandle {
    tables: Vec<Arc<RwLock<MergeTable>>>,
    partition: ShardPartition,
    window_subwindows: usize,
    dropped: Arc<AtomicU64>,
    drop_counter: Option<Counter>,
}

impl LiveHandle {
    /// Count one rejected `offer` on both the handle and, when attached,
    /// the registry (`ow_controller_backpressure_dropped_total`).
    ///
    /// The unit is *records*: a rejected block loses its whole payload,
    /// so it charges its row count, not 1 — otherwise batching would
    /// silently deflate the loss accounting.
    fn count_drop(&self, records: u64) {
        self.dropped.fetch_add(records, Ordering::Relaxed);
        if let Some(c) = &self.drop_counter {
            c.add(records);
        }
    }
}

/// How many records a rejected data-plane message loses — the unit the
/// backpressure accounting charges. Payload-free control messages count
/// one, as does a degenerate empty block (the message itself is lost).
fn dataplane_msg_records(msg: &DataPlaneMsg) -> u64 {
    match msg {
        DataPlaneMsg::AfrBatch { afrs, .. } => (afrs.len() as u64).max(1),
        DataPlaneMsg::AfrBlock { block, .. } => (block.len() as u64).max(1),
        DataPlaneMsg::Shutdown => 1,
    }
}

/// Record count of a rejected reliable-path message (see
/// [`dataplane_msg_records`]).
fn reliable_msg_records(msg: &ReliableMsg) -> u64 {
    match msg {
        ReliableMsg::AfrBlock(block) => (block.len() as u64).max(1),
        ReliableMsg::TracedAfrBlock(traced) => (traced.payload.len() as u64).max(1),
        _ => 1,
    }
}

impl LiveHandle {
    /// Flows whose merged scalar is at least `threshold`, right now,
    /// folded across shards in canonical key order.
    pub fn flows_over(&self, threshold: f64) -> Vec<(FlowKey, f64)> {
        let mut out: Vec<(FlowKey, f64)> = self
            .tables
            .iter()
            .flat_map(|t| t.read().flows_over(threshold))
            .collect();
        out.sort_by_key(|(k, _)| k.as_u128());
        out
    }

    /// Number of flows currently merged (summed over shards — key
    /// slices are disjoint, so this never double-counts).
    pub fn merged_flows(&self) -> usize {
        self.tables.iter().map(|t| t.read().len()).sum()
    }

    /// The merged statistic for one flow, served by its owning shard.
    pub fn merged_value(&self, key: &FlowKey) -> Option<AttrValue> {
        self.tables[self.partition.shard_of(key)].read().get(key)
    }

    /// The sub-windows currently contributing to the table. Every shard
    /// holds the same list (empty slices keep them aligned), so shard 0
    /// answers.
    pub fn subwindows(&self) -> Vec<u32> {
        self.tables[0].read().subwindows()
    }

    /// The deterministic final fold: every shard's merged view in
    /// canonical (ascending packed key) order. Encoding this with
    /// `wire::encode_merged` yields bytes independent of the shard
    /// count.
    pub fn snapshot(&self) -> Vec<(FlowKey, AttrValue)> {
        let mut out: Vec<(FlowKey, AttrValue)> = self
            .tables
            .iter()
            .flat_map(|t| t.read().snapshot())
            .collect();
        out.sort_by_key(|(k, _)| k.as_u128());
        out
    }

    /// Sub-windows per sliding window.
    pub fn window_span(&self) -> usize {
        self.window_subwindows
    }

    /// Number of merge shards behind this handle.
    pub fn shard_count(&self) -> usize {
        self.tables.len()
    }

    /// AFR records rejected by the non-blocking `offer` path so far (a
    /// refused block charges its record count; a control message, 1).
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }
}

/// A message from the data plane to the controller.
#[derive(Debug, Clone)]
pub enum DataPlaneMsg {
    /// One terminated sub-window's AFR batch.
    AfrBatch {
        /// The terminated sub-window.
        subwindow: u32,
        /// Its AFRs.
        afrs: Vec<FlowRecord>,
    },
    /// One columnar block of a sub-window's AFR stream — the
    /// wire-batched hot path. A sub-window's blocks arrive contiguously;
    /// `seal` marks its last block and completes the sub-window. A block
    /// for a *different* sub-window (or an [`DataPlaneMsg::AfrBatch`] /
    /// `Shutdown`) also seals whatever stream is open, so a lost seal
    /// flag delays but never wedges a sub-window.
    AfrBlock {
        /// The stream's columnar records (all one sub-window).
        block: RecordBlock,
        /// Whether this is the sub-window's final block.
        seal: bool,
    },
    /// End of stream: the controller thread drains and exits.
    Shutdown,
}

/// The running controller: its input channel, query handle, and router
/// thread (which owns the shard worker pool).
pub struct LiveController {
    /// Send AFR batches (and finally `Shutdown`) here. `send` blocks
    /// when the queue is full — back-pressure, not loss.
    pub sender: Sender<DataPlaneMsg>,
    /// Concurrent query access.
    pub handle: LiveHandle,
    thread: JoinHandle<u64>,
}

impl LiveController {
    /// Spawn a controller maintaining a sliding window of
    /// `window_subwindows` sub-windows, sharded per `OW_SHARDS`.
    /// `queue_depth` bounds every channel (back-pressure toward the
    /// data plane, as a NIC queue would).
    pub fn spawn(window_subwindows: usize, queue_depth: usize) -> LiveController {
        LiveController::spawn_sharded(window_subwindows, queue_depth, shards_from_env())
    }

    /// [`LiveController::spawn`] with an explicit shard count.
    pub fn spawn_sharded(
        window_subwindows: usize,
        queue_depth: usize,
        shards: usize,
    ) -> LiveController {
        LiveController::spawn_sharded_obs(window_subwindows, queue_depth, shards, None)
    }

    /// [`LiveController::spawn_sharded`] with observability attached:
    /// the router's [`WindowEngine`] reports every transition, each
    /// shard worker exposes a queue-depth gauge, routed batches are
    /// counted (`ow_controller_batches_total`), and rejected `offer`s
    /// bump `ow_controller_backpressure_dropped_total`.
    pub fn spawn_sharded_obs(
        window_subwindows: usize,
        queue_depth: usize,
        shards: usize,
        obs: Option<&Obs>,
    ) -> LiveController {
        let (tx, rx): (Sender<DataPlaneMsg>, Receiver<DataPlaneMsg>) = bounded(queue_depth);
        let pool = ShardPool::spawn(shards, queue_depth, obs);
        let handle = LiveHandle {
            tables: pool.tables.clone(),
            partition: pool.partition,
            window_subwindows,
            dropped: Arc::new(AtomicU64::new(0)),
            drop_counter: obs.map(|o| o.counter("ow_controller_backpressure_dropped_total", &[])),
        };
        let obs = obs.cloned();
        let thread = std::thread::spawn(move || {
            let batch_counter = obs
                .as_ref()
                .map(|o| o.counter("ow_controller_batches_total", &[]));
            let mut engine = WindowEngine::new();
            if let Some(o) = &obs {
                engine.set_sink(o.engine_sink("controller"));
            }
            let mut merged_order: VecDeque<u32> = VecDeque::new();
            let mut batches = 0u64;
            // Streaming scatter state for the block path: the open
            // sub-window and how many records it has routed so far.
            let mut scatter = ShardScatter::new(pool.partition, DEFAULT_BLOCK_CAPACITY);
            let mut stream: Option<(u32, u64)> = None;
            // Complete one sub-window: lifecycle bookkeeping plus the
            // sliding-window eviction sweep. The plain data-plane path
            // has no loss to repair, so the sub-window is merged the
            // moment its stream is complete.
            let finish_subwindow =
                |subwindow: u32,
                 announced: u32,
                 engine: &mut WindowEngine,
                 merged_order: &mut VecDeque<u32>| {
                    engine.insert(WindowFsm::announced(subwindow, announced));
                    if engine.phase(subwindow) == Some(WindowPhase::Collected) {
                        let _ = engine.apply(subwindow, WindowEvent::StreamComplete);
                    }
                    merged_order.push_back(subwindow);
                    while merged_order.len() > window_subwindows {
                        let oldest = merged_order.pop_front().expect("non-empty");
                        if engine.phase(oldest) == Some(WindowPhase::Merged) {
                            let _ = engine.apply(oldest, WindowEvent::Acked);
                        }
                        pool.evict();
                    }
                };
            while let Ok(msg) = rx.recv() {
                // Any non-block message (or a block for a different
                // sub-window) seals the open block stream first.
                let boundary = match &msg {
                    DataPlaneMsg::AfrBlock { block, .. } => {
                        stream.is_some_and(|(sw, _)| sw != block.subwindow())
                    }
                    _ => stream.is_some(),
                };
                if boundary {
                    let (sw, routed) = stream.take().expect("boundary implies open stream");
                    scatter.seal(|shard, b, open| pool.send_block(shard, b, open));
                    finish_subwindow(sw, routed as u32, &mut engine, &mut merged_order);
                    batches += 1;
                    if let Some(c) = &batch_counter {
                        c.inc();
                    }
                }
                match msg {
                    DataPlaneMsg::AfrBatch { subwindow, afrs } => {
                        let announced = afrs.len() as u32;
                        pool.insert(subwindow, afrs);
                        finish_subwindow(subwindow, announced, &mut engine, &mut merged_order);
                        batches += 1;
                        if let Some(c) = &batch_counter {
                            c.inc();
                        }
                    }
                    DataPlaneMsg::AfrBlock { block, seal } => {
                        if stream.is_none() {
                            scatter.begin(block.subwindow());
                            stream = Some((block.subwindow(), 0));
                        }
                        let routed = &mut stream.as_mut().expect("opened above").1;
                        *routed += block.len() as u64;
                        scatter.push_block(&block, |shard, b, open| {
                            pool.send_block(shard, b, open);
                        });
                        if seal {
                            let (sw, routed) = stream.take().expect("opened above");
                            scatter.seal(|shard, b, open| pool.send_block(shard, b, open));
                            finish_subwindow(sw, routed as u32, &mut engine, &mut merged_order);
                            batches += 1;
                            if let Some(c) = &batch_counter {
                                c.inc();
                            }
                        }
                    }
                    DataPlaneMsg::Shutdown => break,
                }
            }
            // A stream left open at shutdown (seal flag lost) still
            // completes its sub-window before the pool drains.
            if let Some((sw, routed)) = stream.take() {
                scatter.seal(|shard, b, open| pool.send_block(shard, b, open));
                finish_subwindow(sw, routed as u32, &mut engine, &mut merged_order);
                batches += 1;
                if let Some(c) = &batch_counter {
                    c.inc();
                }
            }
            pool.shutdown();
            batches
        });
        LiveController {
            sender: tx,
            handle,
            thread,
        }
    }

    /// Non-blocking send: when the router queue is full (or the
    /// controller is gone) the message is rejected, the drop is counted
    /// on the handle, and `false` comes back — the caller decides
    /// whether to retry, never silently losing the fact of the drop.
    pub fn offer(&self, msg: DataPlaneMsg) -> bool {
        match self.sender.try_send(msg) {
            Ok(()) => true,
            Err(e) => {
                self.handle
                    .count_drop(dataplane_msg_records(&e.into_inner()));
                false
            }
        }
    }

    /// Signal shutdown and wait for the router and every shard worker;
    /// returns the number of batches routed.
    pub fn join(self) -> u64 {
        let _ = self.sender.send(DataPlaneMsg::Shutdown);
        self.thread.join().expect("controller thread panicked")
    }
}

/// A message on the reliability-aware live path. Unlike
/// [`DataPlaneMsg`], AFRs stream individually or in columnar bursts
/// (each clone is individually droppable on the wire) and each
/// sub-window is bracketed by an announcement and an end-of-stream
/// mark.
#[derive(Debug, Clone)]
pub enum ReliableMsg {
    /// Trigger-packet announcement: `announced` AFRs are coming for
    /// `subwindow`. A duplicate announcement (the trigger clone was
    /// duplicated in the fabric) is idempotent.
    Announce {
        /// The terminated sub-window.
        subwindow: u32,
        /// How many AFRs its batch holds.
        announced: u32,
    },
    /// One AFR report clone — whatever survived the lossy channel, in
    /// arrival order (possibly before its announcement).
    Afr(FlowRecord),
    /// The switch finished emitting `subwindow`'s initial stream; the
    /// controller may now run the recovery loop and merge.
    EndOfStream {
        /// The sub-window whose stream ended.
        subwindow: u32,
    },
    /// [`ReliableMsg::Announce`] carrying the window's wire-propagated
    /// [`TraceContext`], so the controller's recovery and merge spans
    /// join the originating window's causal tree.
    TracedAnnounce {
        /// The terminated sub-window.
        subwindow: u32,
        /// How many AFRs its batch holds.
        announced: u32,
        /// The window's span-tracing context.
        ctx: TraceContext,
    },
    /// One AFR report clone wrapped with its [`TraceContext`]. Every
    /// clone carries the context, so any copy that survives the lossy
    /// channel delivers it — even when the announcement itself was lost.
    TracedAfr(Traced<FlowRecord>),
    /// A burst of AFR report clones for one sub-window in columnar form
    /// — the wire-batched hot path. Semantically identical to sending
    /// each row as [`ReliableMsg::Afr`]; blocks and single records may
    /// interleave freely within and across sub-windows.
    AfrBlock(RecordBlock),
    /// [`ReliableMsg::AfrBlock`] wrapped with its [`TraceContext`].
    TracedAfrBlock(Traced<RecordBlock>),
    /// The switch owning `subwindow` departed the fleet (crash churn)
    /// before its stream completed. The session is abandoned: its
    /// partial batch is discarded (never merged), its [`WindowFsm`] is
    /// driven through `SwitchDeparted` to `Released` instead of being
    /// left to wedge in a recovery loop against a dead peer, and the
    /// sub-window is tombstoned so late clones of its announcement or
    /// AFRs are dropped rather than resurrecting the session.
    Depart {
        /// The sub-window whose switch disappeared.
        subwindow: u32,
    },
    /// End of input: finalize every open session, then exit.
    Shutdown,
}

/// Controller→switch back-channel serving retransmission requests:
/// `(subwindow, missing seq ids) → replayed AFRs` (empty when the
/// request or its replies were lost).
pub type RetransmitFn = Box<dyn FnMut(u32, &[u32]) -> Vec<FlowRecord> + Send>;

/// The OS-path escalation: `subwindow → (full batch, charged latency)`.
pub type OsReadFn = Box<dyn FnMut(u32) -> (Vec<FlowRecord>, Duration) + Send>;

/// A [`LiveController`] variant that tolerates AFR loss: per-sub-window
/// [`CollectionSession`]s verify completeness against the announced
/// count, and a [`ReliabilityDriver`] runs the §8 recovery loop
/// (retransmission rounds, then OS-path escalation) through caller
/// supplied callbacks before anything is merged. Only complete batches
/// ever reach the shard tables; each session's [`WindowFsm`] (already
/// at `Merged` when it leaves the driver) is handed to the router's
/// [`WindowEngine`], which releases it when the sliding window evicts
/// the sub-window.
pub struct ReliableLiveController {
    /// Send announcements, AFRs, end-of-stream marks, then `Shutdown`.
    /// `send` blocks when the queue is full — back-pressure, not loss.
    pub sender: Sender<ReliableMsg>,
    /// Concurrent query access.
    pub handle: LiveHandle,
    thread: JoinHandle<ReliabilityMetrics>,
}

impl ReliableLiveController {
    /// Spawn the controller sharded per `OW_SHARDS`. `retransmit` and
    /// `os_read` are the back-channel to the switch (typically spliced
    /// through a lossy channel in experiments).
    pub fn spawn(
        window_subwindows: usize,
        queue_depth: usize,
        policy: RetryPolicy,
        retransmit: RetransmitFn,
        os_read: OsReadFn,
    ) -> ReliableLiveController {
        ReliableLiveController::spawn_sharded(
            window_subwindows,
            queue_depth,
            policy,
            retransmit,
            os_read,
            shards_from_env(),
        )
    }

    /// [`ReliableLiveController::spawn`] with an explicit shard count.
    pub fn spawn_sharded(
        window_subwindows: usize,
        queue_depth: usize,
        policy: RetryPolicy,
        retransmit: RetransmitFn,
        os_read: OsReadFn,
        shards: usize,
    ) -> ReliableLiveController {
        ReliableLiveController::spawn_sharded_obs(
            window_subwindows,
            queue_depth,
            policy,
            retransmit,
            os_read,
            shards,
            None,
        )
    }

    /// [`ReliableLiveController::spawn_sharded`] with observability
    /// attached: the router's [`WindowEngine`] reports every transition
    /// (the first rejected one raises a structured `drift_detected`
    /// warning), each shard worker exposes a queue-depth gauge, every
    /// completed session's [`ReliabilityMetrics`] folds into the
    /// registry (`ow_controller_retransmit_rounds`, the
    /// `ow_controller_cr_phase_duration{phase="recovery"}` histogram,
    /// …) alongside a `session_complete` journal event, and rejected
    /// `offer`s bump `ow_controller_backpressure_dropped_total`.
    #[allow(clippy::too_many_arguments)]
    pub fn spawn_sharded_obs(
        window_subwindows: usize,
        queue_depth: usize,
        policy: RetryPolicy,
        mut retransmit: RetransmitFn,
        mut os_read: OsReadFn,
        shards: usize,
        obs: Option<&Obs>,
    ) -> ReliableLiveController {
        let (tx, rx): (Sender<ReliableMsg>, Receiver<ReliableMsg>) = bounded(queue_depth);
        let pool = ShardPool::spawn(shards, queue_depth, obs);
        let dropped = Arc::new(AtomicU64::new(0));
        let handle = LiveHandle {
            tables: pool.tables.clone(),
            partition: pool.partition,
            window_subwindows,
            dropped: dropped.clone(),
            drop_counter: obs.map(|o| o.counter("ow_controller_backpressure_dropped_total", &[])),
        };
        let obs = obs.cloned();
        let thread = std::thread::spawn(move || {
            let driver = ReliabilityDriver::new(policy);
            let mut total = ReliabilityMetrics::default();
            let session_obs = obs.clone();
            let session_counter = obs
                .as_ref()
                .map(|o| o.counter("ow_controller_sessions_total", &[]));
            let mut engine = WindowEngine::new();
            if let Some(o) = &obs {
                engine.set_sink(o.engine_sink("controller"));
            }
            let mut merged_order: VecDeque<u32> = VecDeque::new();
            // Open sessions and AFRs that raced ahead of their
            // announcement (reordering across the message stream).
            let mut sessions: HashMap<u32, (CollectionSession, ReliabilityMetrics)> =
                HashMap::new();
            let mut early: HashMap<u32, Vec<FlowRecord>> = HashMap::new();
            // Trace contexts learned from the wire (traced announcements
            // or any surviving traced AFR clone), consumed at finalize.
            let mut ctxs: HashMap<u32, TraceContext> = HashMap::new();
            // Sub-windows whose switch departed: tombstones that drop
            // late announcements/AFRs instead of opening a session that
            // could never complete (bounded by the number of distinct
            // departed windows a run produces).
            let mut departed_windows: std::collections::HashSet<u32> =
                std::collections::HashSet::new();

            let feed = |entry: &mut (CollectionSession, ReliabilityMetrics), rec: FlowRecord| {
                let before = entry.0.received();
                if entry.0.receive(rec).is_ok() {
                    if entry.0.received() > before {
                        entry.1.first_pass += 1;
                    } else {
                        entry.1.duplicates += 1;
                    }
                }
            };

            let feed_block = |entry: &mut (CollectionSession, ReliabilityMetrics),
                              block: &RecordBlock| {
                if let Ok((fresh, dups)) = entry.0.receive_block(block) {
                    entry.1.first_pass += fresh;
                    entry.1.duplicates += dups;
                }
            };

            let mut finalize = |subwindow: u32,
                                entry: (CollectionSession, ReliabilityMetrics),
                                ctx: Option<TraceContext>,
                                total: &mut ReliabilityMetrics,
                                engine: &mut WindowEngine,
                                merged_order: &mut VecDeque<u32>| {
                let (mut session, mut metrics) = entry;
                driver.complete_session(
                    &mut session,
                    &mut metrics,
                    &mut FnTransport {
                        retransmit: &mut retransmit,
                        os_read: &mut os_read,
                    },
                );
                total.merge(&metrics);
                if let Some(o) = &session_obs {
                    o.fold_reliability(&metrics);
                    o.event(
                        Event::new(
                            "session_complete",
                            format!(
                                "merged {} AFRs (first pass {}, recovered {}) after {} \
                                 retransmit round(s), {} escalation(s)",
                                metrics.first_pass + metrics.recovered,
                                metrics.first_pass,
                                metrics.recovered,
                                metrics.retransmit_rounds,
                                metrics.escalations,
                            ),
                        )
                        .subwindow(subwindow)
                        .phase("merged"),
                    );
                }
                if let Some(c) = &session_counter {
                    c.inc();
                }
                // The session's FSM arrives at Merged through the §8
                // loop; the engine tracks it until slide-eviction.
                engine.insert(*session.fsm());
                let block = Arc::new(session.into_block());
                // The window just reached Merged: hand its recovered
                // answer to the accuracy observatory's shadow scoring
                // lane (when installed) — the merge path pays an `Arc`
                // bump, not a copy and not the diff.
                let scored = session_obs
                    .as_ref()
                    .and_then(|o| o.accuracy())
                    .is_some_and(|acc| acc.score_block(&block));
                // Reconstruct the recovery timeline into the window's
                // causal trace. `complete_session` accumulates the exact
                // same quantities into `wall_clock` (one backoff timeout
                // per round, then any charged OS-read latency), so the
                // spans below tile the session's virtual-clock interval
                // precisely, anchored at the switch-side batch instant.
                if let (Some(o), Some(ctx)) = (&session_obs, ctx) {
                    let tracer = o.tracer().clone();
                    let mut t = ctx.anchor_ns;
                    for round in 1..=metrics.retransmit_rounds {
                        let timeout = driver.policy().timeout_for_round(round as u32).as_nanos();
                        tracer.span(
                            ctx.trace_id,
                            ctx.collect,
                            "retransmit_round",
                            "controller",
                            None,
                            t,
                            t.saturating_add(timeout),
                        );
                        t = t.saturating_add(timeout);
                    }
                    let end = ctx.anchor_ns.saturating_add(metrics.wall_clock.as_nanos());
                    if metrics.escalations > 0 {
                        tracer.span(
                            ctx.trace_id,
                            ctx.root,
                            "os_read",
                            "controller",
                            None,
                            t,
                            end,
                        );
                    }
                    if let Some(merge) = tracer.span(
                        ctx.trace_id,
                        ctx.root,
                        "merge",
                        "controller",
                        None,
                        end,
                        end,
                    ) {
                        for shard in 0..pool.partition.shards() {
                            tracer.span(
                                ctx.trace_id,
                                merge,
                                "shard_insert",
                                "controller",
                                Some(shard as u32),
                                end,
                                end,
                            );
                        }
                    }
                    if scored {
                        tracer.span(
                            ctx.trace_id,
                            ctx.root,
                            "accuracy_score",
                            "controller",
                            None,
                            end,
                            end,
                        );
                    }
                    tracer.finish_window(ctx.trace_id, end);
                }
                pool.insert_block(&block);
                merged_order.push_back(subwindow);
                while merged_order.len() > window_subwindows {
                    let oldest = merged_order.pop_front().expect("non-empty");
                    if engine.phase(oldest) == Some(WindowPhase::Merged) {
                        let _ = engine.apply(oldest, WindowEvent::Acked);
                    }
                    pool.evict();
                }
            };

            while let Ok(msg) = rx.recv() {
                // A traced message is its plain counterpart plus a
                // context to remember; unwrap it before dispatch.
                let msg = match msg {
                    ReliableMsg::TracedAnnounce {
                        subwindow,
                        announced,
                        ctx,
                    } => {
                        ctxs.insert(subwindow, ctx);
                        ReliableMsg::Announce {
                            subwindow,
                            announced,
                        }
                    }
                    ReliableMsg::TracedAfr(traced) => {
                        ctxs.entry(traced.payload.subwindow).or_insert(traced.ctx);
                        ReliableMsg::Afr(traced.payload)
                    }
                    ReliableMsg::TracedAfrBlock(traced) => {
                        ctxs.entry(traced.payload.subwindow()).or_insert(traced.ctx);
                        ReliableMsg::AfrBlock(traced.payload)
                    }
                    other => other,
                };
                match msg {
                    ReliableMsg::Announce {
                        subwindow,
                        announced,
                    } => {
                        if departed_windows.contains(&subwindow) {
                            continue;
                        }
                        let entry = sessions.entry(subwindow).or_insert_with(|| {
                            let m = ReliabilityMetrics {
                                announced: announced as u64,
                                ..Default::default()
                            };
                            (CollectionSession::new(subwindow, announced), m)
                        });
                        for rec in early.remove(&subwindow).unwrap_or_default() {
                            feed(entry, rec);
                        }
                    }
                    ReliableMsg::Afr(rec) => {
                        if departed_windows.contains(&rec.subwindow) {
                            continue;
                        }
                        match sessions.get_mut(&rec.subwindow) {
                            Some(entry) => feed(entry, rec),
                            None => early.entry(rec.subwindow).or_default().push(rec),
                        }
                    }
                    ReliableMsg::AfrBlock(block) => {
                        if departed_windows.contains(&block.subwindow()) {
                            continue;
                        }
                        match sessions.get_mut(&block.subwindow()) {
                            Some(entry) => feed_block(entry, &block),
                            None => {
                                // The whole block raced its announcement.
                                early
                                    .entry(block.subwindow())
                                    .or_default()
                                    .extend(block.iter());
                            }
                        }
                    }
                    ReliableMsg::EndOfStream { subwindow } => {
                        if let Some(entry) = sessions.remove(&subwindow) {
                            let ctx = ctxs.remove(&subwindow);
                            finalize(
                                subwindow,
                                entry,
                                ctx,
                                &mut total,
                                &mut engine,
                                &mut merged_order,
                            );
                        }
                    }
                    ReliableMsg::Depart { subwindow } => {
                        departed_windows.insert(subwindow);
                        early.remove(&subwindow);
                        // The merged answer will never arrive; release
                        // the oracle's truth entry for this window.
                        if let Some(acc) = session_obs.as_ref().and_then(|o| o.accuracy()) {
                            acc.window_departed(subwindow);
                        }
                        let ctx = ctxs.remove(&subwindow);
                        if let Some((session, mut metrics)) = sessions.remove(&subwindow) {
                            metrics.departed = 1;
                            total.merge(&metrics);
                            // The partial batch dies with the session;
                            // only the lifecycle bookkeeping survives.
                            engine.insert(*session.fsm());
                            let _ = engine.apply(subwindow, WindowEvent::SwitchDeparted);
                            if let Some(o) = &session_obs {
                                o.fold_reliability(&metrics);
                                o.event(
                                    Event::new(
                                        "switch_departed",
                                        format!(
                                            "abandoned after {} of {} AFRs: switch left the \
                                             fleet mid-window",
                                            metrics.first_pass, metrics.announced,
                                        ),
                                    )
                                    .subwindow(subwindow)
                                    .phase("released"),
                                );
                                // Close the window's causal trace so the
                                // tree stays complete even though no
                                // merge span will ever arrive.
                                if let Some(ctx) = ctx {
                                    let tracer = o.tracer().clone();
                                    tracer.span(
                                        ctx.trace_id,
                                        ctx.root,
                                        "departed",
                                        "controller",
                                        None,
                                        ctx.anchor_ns,
                                        ctx.anchor_ns,
                                    );
                                    tracer.finish_window(ctx.trace_id, ctx.anchor_ns);
                                }
                            }
                        }
                    }
                    ReliableMsg::TracedAnnounce { .. }
                    | ReliableMsg::TracedAfr(_)
                    | ReliableMsg::TracedAfrBlock(_) => {
                        unreachable!("traced messages are unwrapped above")
                    }
                    ReliableMsg::Shutdown => break,
                }
            }
            // Sessions whose end-of-stream mark was lost still complete:
            // the recovery loop fetches whatever the first pass missed.
            let mut rest: Vec<(u32, (CollectionSession, ReliabilityMetrics))> =
                sessions.drain().collect();
            rest.sort_by_key(|(sw, _)| *sw);
            for (sw, entry) in rest {
                let ctx = ctxs.remove(&sw);
                finalize(sw, entry, ctx, &mut total, &mut engine, &mut merged_order);
            }
            pool.shutdown();
            total.dropped += dropped.load(Ordering::Relaxed);
            total
        });
        ReliableLiveController {
            sender: tx,
            handle,
            thread,
        }
    }

    /// Non-blocking send; a rejected message is counted on the handle
    /// (and folded into `join()`'s metrics) instead of lost silently.
    pub fn offer(&self, msg: ReliableMsg) -> bool {
        match self.sender.try_send(msg) {
            Ok(()) => true,
            Err(e) => {
                self.handle
                    .count_drop(reliable_msg_records(&e.into_inner()));
                false
            }
        }
    }

    /// Signal shutdown and wait for the router and every shard worker;
    /// returns the aggregated reliability counters across all sessions,
    /// including offer-path drops.
    pub fn join(self) -> ReliabilityMetrics {
        let _ = self.sender.send(ReliableMsg::Shutdown);
        self.thread.join().expect("controller thread panicked")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::encode_merged;

    fn batch(sw: u32, flows: std::ops::Range<u32>, n: u64) -> DataPlaneMsg {
        DataPlaneMsg::AfrBatch {
            subwindow: sw,
            afrs: flows
                .map(|i| FlowRecord::frequency(FlowKey::src_ip(i), n, sw))
                .collect(),
        }
    }

    #[test]
    fn live_pipeline_merges_and_slides() {
        let ctl = LiveController::spawn(2, 16);
        ctl.sender.send(batch(0, 0..10, 60)).unwrap();
        ctl.sender.send(batch(1, 0..10, 80)).unwrap();
        // Wait for the controller to drain.
        while ctl.handle.merged_flows() < 10 {
            std::thread::yield_now();
        }
        // 60 + 80 = 140 ≥ 100: boundary flows visible live.
        let mut over = Vec::new();
        for _ in 0..1000 {
            over = ctl.handle.flows_over(100.0);
            if over.len() == 10 {
                break;
            }
            std::thread::yield_now();
        }
        assert_eq!(over.len(), 10);

        // Slide: sub-window 2 evicts sub-window 0.
        ctl.sender.send(batch(2, 0..10, 5)).unwrap();
        let mut sws = Vec::new();
        for _ in 0..10_000 {
            sws = ctl.handle.subwindows();
            if sws == vec![1, 2] {
                break;
            }
            std::thread::yield_now();
        }
        assert_eq!(sws, vec![1, 2]);
        assert_eq!(ctl.join(), 3);
    }

    #[test]
    fn shutdown_without_traffic() {
        let ctl = LiveController::spawn(5, 4);
        assert_eq!(ctl.join(), 0);
    }

    #[test]
    fn sharded_live_controller_is_byte_identical_to_single_shard() {
        let run = |shards: usize| {
            let ctl = LiveController::spawn_sharded(3, 16, shards);
            for sw in 0..6u32 {
                ctl.sender
                    .send(batch(sw, 0..40, (sw as u64 + 1) * 7))
                    .unwrap();
            }
            let handle = ctl.handle.clone();
            assert_eq!(ctl.join(), 6);
            assert_eq!(handle.shard_count(), shards);
            assert_eq!(handle.subwindows(), vec![3, 4, 5]);
            handle
        };
        let baseline = run(1);
        for shards in [2usize, 4, 8] {
            let h = run(shards);
            assert_eq!(
                encode_merged(&h.snapshot()),
                encode_merged(&baseline.snapshot()),
                "{shards} shards diverged from the single-shard baseline"
            );
            assert_eq!(h.flows_over(0.0), baseline.flows_over(0.0));
            for i in 0..40u32 {
                let k = FlowKey::src_ip(i);
                assert_eq!(h.merged_value(&k), baseline.merged_value(&k));
            }
        }
    }

    #[test]
    fn ow_shards_parsing_defaults_and_clamps() {
        assert_eq!(parse_shards(None), 1);
        assert_eq!(parse_shards(Some("")), 1);
        assert_eq!(parse_shards(Some("banana")), 1);
        assert_eq!(parse_shards(Some("0")), 1);
        assert_eq!(parse_shards(Some("1")), 1);
        assert_eq!(parse_shards(Some(" 8 ")), 8);
    }

    fn seq_batch(sw: u32, n: u32) -> Vec<FlowRecord> {
        (0..n)
            .map(|seq| {
                let mut r = FlowRecord::frequency(FlowKey::src_ip(seq + 1), seq as u64 + 1, sw);
                r.seq = seq;
                r
            })
            .collect()
    }

    #[test]
    fn reliable_controller_repairs_lossy_stream() {
        // The switch retains both sub-windows' batches; the back-channel
        // replays faithfully.
        let store: HashMap<u32, Vec<FlowRecord>> =
            (0..2u32).map(|sw| (sw, seq_batch(sw, 10))).collect();
        let retrans_store = store.clone();
        let ctl = ReliableLiveController::spawn(
            2,
            64,
            RetryPolicy::default(),
            Box::new(move |sw, seqs| {
                let batch = &retrans_store[&sw];
                seqs.iter().map(|&s| batch[s as usize]).collect()
            }),
            Box::new(|_| panic!("no escalation expected")),
        );
        for sw in 0..2u32 {
            ctl.sender
                .send(ReliableMsg::Announce {
                    subwindow: sw,
                    announced: 10,
                })
                .unwrap();
            // Drop every third AFR from the initial stream.
            for rec in store[&sw].iter().filter(|r| r.seq % 3 != 0) {
                ctl.sender.send(ReliableMsg::Afr(*rec)).unwrap();
            }
            ctl.sender
                .send(ReliableMsg::EndOfStream { subwindow: sw })
                .unwrap();
        }
        let handle = ctl.handle.clone();
        let metrics = ctl.join();
        // Despite the losses both sub-windows merged complete: every
        // flow's two-sub-window sum is exact.
        assert_eq!(handle.merged_flows(), 10);
        for seq in 0..10u32 {
            let sum = handle
                .flows_over(0.0)
                .into_iter()
                .find(|(k, _)| *k == FlowKey::src_ip(seq + 1))
                .map(|(_, v)| v)
                .unwrap();
            assert_eq!(sum, 2.0 * (seq as f64 + 1.0));
        }
        assert_eq!(metrics.announced, 20);
        assert_eq!(metrics.first_pass, 12);
        assert_eq!(metrics.recovered, 8);
        assert!(metrics.retransmit_rounds >= 2);
        assert_eq!(metrics.escalations, 0);
        assert_eq!(metrics.dropped, 0);
    }

    #[test]
    fn reliable_controller_handles_reordered_and_duplicated_control_msgs() {
        let store = seq_batch(4, 5);
        let retrans_store = store.clone();
        let ctl = ReliableLiveController::spawn(
            4,
            64,
            RetryPolicy::default(),
            Box::new(move |_, seqs| seqs.iter().map(|&s| retrans_store[s as usize]).collect()),
            Box::new(|_| panic!("no escalation expected")),
        );
        // AFRs race ahead of their announcement; the trigger arrives
        // twice (duplicated clone); one AFR arrives twice too.
        ctl.sender.send(ReliableMsg::Afr(store[1])).unwrap();
        ctl.sender.send(ReliableMsg::Afr(store[1])).unwrap();
        for _ in 0..2 {
            ctl.sender
                .send(ReliableMsg::Announce {
                    subwindow: 4,
                    announced: 5,
                })
                .unwrap();
        }
        ctl.sender.send(ReliableMsg::Afr(store[3])).unwrap();
        // End-of-stream mark lost: shutdown finalizes the session.
        let handle = ctl.handle.clone();
        let metrics = ctl.join();
        assert_eq!(handle.merged_flows(), 5);
        assert_eq!(metrics.first_pass, 2);
        assert_eq!(metrics.duplicates, 1);
        assert_eq!(metrics.recovered, 3);
    }

    #[test]
    fn reliable_controller_escalates_when_backchannel_dead() {
        let store = seq_batch(0, 3);
        let os_store = store.clone();
        let ctl = ReliableLiveController::spawn(
            1,
            16,
            RetryPolicy {
                max_rounds: 2,
                ..RetryPolicy::default()
            },
            // The back-channel loses every request.
            Box::new(|_, _| Vec::new()),
            Box::new(move |_| (os_store.clone(), Duration::from_millis(40))),
        );
        ctl.sender
            .send(ReliableMsg::Announce {
                subwindow: 0,
                announced: 3,
            })
            .unwrap();
        ctl.sender
            .send(ReliableMsg::EndOfStream { subwindow: 0 })
            .unwrap();
        let handle = ctl.handle.clone();
        let metrics = ctl.join();
        assert_eq!(handle.merged_flows(), 3);
        assert_eq!(metrics.escalations, 1);
        assert_eq!(metrics.retransmit_rounds, 2);
        assert!(metrics.wall_clock >= Duration::from_millis(40));
    }

    #[test]
    fn departed_session_is_abandoned_not_wedged() {
        let obs = Obs::new();
        let store = seq_batch(3, 8);
        let ctl = ReliableLiveController::spawn_sharded_obs(
            4,
            64,
            RetryPolicy::default(),
            // A departed switch can answer nothing; neither callback may
            // ever run for the abandoned window.
            Box::new(|_, _| panic!("no retransmission for a departed switch")),
            Box::new(|_| panic!("no OS read for a departed switch")),
            2,
            Some(&obs),
        );
        ctl.sender
            .send(ReliableMsg::Announce {
                subwindow: 3,
                announced: 8,
            })
            .unwrap();
        // Part of the initial stream arrives, then the switch crashes.
        for rec in store.iter().take(3) {
            ctl.sender.send(ReliableMsg::Afr(*rec)).unwrap();
        }
        ctl.sender
            .send(ReliableMsg::Depart { subwindow: 3 })
            .unwrap();
        // Late clones and a duplicated announcement hit the tombstone
        // instead of resurrecting a session that could never complete.
        ctl.sender.send(ReliableMsg::Afr(store[4])).unwrap();
        ctl.sender
            .send(ReliableMsg::Announce {
                subwindow: 3,
                announced: 8,
            })
            .unwrap();
        let handle = ctl.handle.clone();
        let metrics = ctl.join();
        assert_eq!(handle.merged_flows(), 0, "partial batch never merges");
        assert_eq!(metrics.departed, 1);
        assert_eq!(metrics.first_pass, 3);
        assert_eq!(metrics.escalations, 0);

        let snap = obs.snapshot();
        assert_eq!(snap.value("ow_controller_departed_sessions_total", &[]), 1);
        assert_eq!(snap.value("ow_controller_sessions_total", &[]), 0);
        // The FSM went Collected → Released via switch_departed: the
        // engine released it rather than leaving it in a recovery phase.
        assert_eq!(
            snap.value("ow_common_engine_released_total", &[("side", "controller")]),
            1
        );
        let departs: Vec<_> = obs
            .journal()
            .events()
            .into_iter()
            .filter(|e| e.kind == "switch_departed")
            .collect();
        assert_eq!(departs.len(), 1);
        assert_eq!(departs[0].subwindow, Some(3));
    }

    #[test]
    fn sharded_reliable_controller_matches_single_shard() {
        let run = |shards: usize| {
            let store: HashMap<u32, Vec<FlowRecord>> =
                (0..4u32).map(|sw| (sw, seq_batch(sw, 25))).collect();
            let retrans_store = store.clone();
            let ctl = ReliableLiveController::spawn_sharded(
                2,
                64,
                RetryPolicy::default(),
                Box::new(move |sw, seqs| {
                    let batch = &retrans_store[&sw];
                    seqs.iter().map(|&s| batch[s as usize]).collect()
                }),
                Box::new(|_| panic!("no escalation expected")),
                shards,
            );
            for sw in 0..4u32 {
                ctl.sender
                    .send(ReliableMsg::Announce {
                        subwindow: sw,
                        announced: 25,
                    })
                    .unwrap();
                // A lossy initial stream: the §8 loop repairs it before
                // anything reaches the shards.
                for rec in store[&sw].iter().filter(|r| r.seq % 4 != 1) {
                    ctl.sender.send(ReliableMsg::Afr(*rec)).unwrap();
                }
                ctl.sender
                    .send(ReliableMsg::EndOfStream { subwindow: sw })
                    .unwrap();
            }
            let handle = ctl.handle.clone();
            let metrics = ctl.join();
            (handle, metrics)
        };
        let (baseline, base_metrics) = run(1);
        assert_eq!(baseline.subwindows(), vec![2, 3]);
        for shards in [2usize, 4, 8] {
            let (h, m) = run(shards);
            assert_eq!(
                encode_merged(&h.snapshot()),
                encode_merged(&baseline.snapshot()),
                "{shards} shards diverged from the single-shard baseline"
            );
            assert_eq!(h.flows_over(10.0), baseline.flows_over(10.0));
            assert_eq!(m.recovered, base_metrics.recovered);
            assert_eq!(m.first_pass, base_metrics.first_pass);
        }
    }

    #[test]
    fn offer_counts_drops_instead_of_blocking() {
        // Wedge the router inside a retransmission round so its queue
        // stays full, then offer past the bound: the overflow must be
        // rejected and counted, never silently lost and never blocking.
        let (entered_tx, entered_rx) = std::sync::mpsc::channel::<()>();
        let (gate_tx, gate_rx) = std::sync::mpsc::channel::<()>();
        let store = seq_batch(0, 1);
        let replay = store.clone();
        let ctl = ReliableLiveController::spawn_sharded(
            1,
            2,
            RetryPolicy::default(),
            Box::new(move |_, seqs| {
                entered_tx.send(()).unwrap();
                gate_rx.recv().unwrap();
                seqs.iter().map(|&s| replay[s as usize]).collect()
            }),
            Box::new(|_| panic!("no escalation expected")),
            1,
        );
        ctl.sender
            .send(ReliableMsg::Announce {
                subwindow: 0,
                announced: 1,
            })
            .unwrap();
        ctl.sender
            .send(ReliableMsg::EndOfStream { subwindow: 0 })
            .unwrap();
        // The router is now inside the blocked retransmit callback and
        // its input queue (depth 2) is empty: exactly two offers fit.
        entered_rx.recv().unwrap();
        assert!(ctl.offer(ReliableMsg::Afr(store[0])));
        assert!(ctl.offer(ReliableMsg::Afr(store[0])));
        assert!(
            !ctl.offer(ReliableMsg::Afr(store[0])),
            "third offer overflows"
        );
        assert_eq!(ctl.handle.dropped(), 1);
        gate_tx.send(()).unwrap();
        let handle = ctl.handle.clone();
        let metrics = ctl.join();
        assert_eq!(handle.merged_flows(), 1);
        assert_eq!(metrics.recovered, 1);
        assert_eq!(
            metrics.dropped, 1,
            "the drop is folded into join()'s metrics"
        );
    }

    #[test]
    fn obs_attached_reliable_controller_mirrors_join_metrics() {
        let obs = Obs::new();
        let store: HashMap<u32, Vec<FlowRecord>> =
            (0..3u32).map(|sw| (sw, seq_batch(sw, 12))).collect();
        let retrans_store = store.clone();
        let ctl = ReliableLiveController::spawn_sharded_obs(
            2,
            64,
            RetryPolicy::default(),
            Box::new(move |sw, seqs| {
                let batch = &retrans_store[&sw];
                seqs.iter().map(|&s| batch[s as usize]).collect()
            }),
            Box::new(|_| panic!("no escalation expected")),
            4,
            Some(&obs),
        );
        for sw in 0..3u32 {
            ctl.sender
                .send(ReliableMsg::Announce {
                    subwindow: sw,
                    announced: 12,
                })
                .unwrap();
            for rec in store[&sw].iter().filter(|r| r.seq % 2 == 0) {
                ctl.sender.send(ReliableMsg::Afr(*rec)).unwrap();
            }
            ctl.sender
                .send(ReliableMsg::EndOfStream { subwindow: sw })
                .unwrap();
        }
        let metrics = ctl.join();
        let snap = obs.snapshot();

        // The registry mirrors join()'s fold, counter for counter.
        assert_eq!(
            snap.value("ow_controller_retransmit_rounds", &[]),
            metrics.retransmit_rounds
        );
        assert_eq!(
            snap.value("ow_controller_afr_first_pass_total", &[]),
            metrics.first_pass
        );
        assert_eq!(
            snap.value("ow_controller_afr_recovered_total", &[]),
            metrics.recovered
        );
        assert_eq!(
            snap.value("ow_controller_escalations_total", &[]),
            metrics.escalations
        );
        assert_eq!(snap.value("ow_controller_sessions_total", &[]), 3);
        assert!(metrics.retransmit_rounds >= 1, "lossy run must retransmit");

        // Engine transitions flowed through the sink: each of the 3
        // sessions is inserted at Merged; the first is Acked on slide.
        assert_eq!(
            snap.value(
                "ow_common_engine_transitions_total",
                &[("side", "controller")]
            ),
            1
        );

        // Per-shard queue-depth gauges exist for all 4 shards and read
        // zero after join (every send was matched by a dequeue).
        for shard in 0..4u32 {
            assert_eq!(
                snap.value(
                    "ow_controller_shard_queue_depth",
                    &[("shard", &shard.to_string())]
                ),
                0,
                "shard {shard} gauge must settle to 0 after join"
            );
        }

        // The C&R recovery-phase histogram saw one virtual-clock sample
        // per session.
        let recovery = snap
            .get("ow_controller_cr_phase_duration", &[("phase", "recovery")])
            .expect("recovery histogram registered");
        let histogram = recovery.histogram.as_ref().expect("histogram detail");
        assert_eq!(histogram.count, 3);
        assert_eq!(histogram.sum, metrics.wall_clock.as_nanos());

        // Each session also left a structured journal record.
        let complete: Vec<_> = obs
            .journal()
            .events()
            .into_iter()
            .filter(|e| e.kind == "session_complete")
            .collect();
        assert_eq!(complete.len(), 3);
        assert_eq!(complete[0].subwindow, Some(0));
        assert_eq!(complete[0].phase.as_deref(), Some("merged"));
    }

    #[test]
    fn traced_messages_stitch_recovery_spans_into_the_window_trace() {
        let obs = Obs::new();
        let tracer = obs.tracer().clone();
        // Simulate the switch side: open the window's trace and record
        // its collect span, as `Switch::run_collection` does.
        let trace = tracer.start_window(7, "switch", 1_000);
        let collect = tracer
            .span(trace, trace, "collect", "switch", None, 1_000, 2_000)
            .expect("collect span under a live trace");
        let ctx = TraceContext {
            trace_id: trace,
            root: trace,
            collect,
            anchor_ns: 2_500,
        };
        let store = seq_batch(7, 6);
        let retrans = store.clone();
        let ctl = ReliableLiveController::spawn_sharded_obs(
            1,
            64,
            RetryPolicy::default(),
            Box::new(move |_, seqs| seqs.iter().map(|&s| retrans[s as usize]).collect()),
            Box::new(|_| panic!("no escalation expected")),
            2,
            Some(&obs),
        );
        ctl.sender
            .send(ReliableMsg::TracedAnnounce {
                subwindow: 7,
                announced: 6,
                ctx,
            })
            .unwrap();
        // A lossy stream of traced clones; the end-of-stream mark is
        // lost, so shutdown finalizes the session.
        for rec in store.iter().filter(|r| r.seq % 2 == 0) {
            ctl.sender
                .send(ReliableMsg::TracedAfr(Traced::new(ctx, *rec)))
                .unwrap();
        }
        let metrics = ctl.join();
        assert!(metrics.retransmit_rounds >= 1, "lossy run must retransmit");

        let report = ow_obs::TraceReport::capture("test", &tracer, None);
        assert_eq!(report.traces.len(), 1);
        let summary = &report.traces[0];
        let spans = &summary.spans;
        // Recovery rounds parent to the originating collect span and
        // tile the backoff schedule from the anchor.
        let rounds: Vec<_> = spans
            .iter()
            .filter(|s| s.name == "retransmit_round")
            .collect();
        assert_eq!(rounds.len() as u64, metrics.retransmit_rounds);
        assert!(rounds.iter().all(|s| s.parent == Some(collect)));
        assert_eq!(rounds[0].start_ns, 2_500);
        // One merge span under the root fans out to one shard_insert
        // per shard.
        let merge = spans
            .iter()
            .find(|s| s.name == "merge")
            .expect("merge span recorded");
        assert_eq!(merge.parent, Some(trace));
        let inserts: Vec<_> = spans.iter().filter(|s| s.name == "shard_insert").collect();
        assert_eq!(inserts.len(), 2);
        assert!(inserts.iter().all(|s| s.parent == Some(merge.id)));
        assert_eq!(
            inserts.iter().filter_map(|s| s.shard).collect::<Vec<_>>(),
            vec![0, 1]
        );
        // The root span was extended to cover the whole recovery.
        let root = spans.iter().find(|s| s.id == trace).expect("root span");
        assert_eq!(
            root.end_ns,
            2_500 + metrics.wall_clock.as_nanos(),
            "root covers anchor + recovery wall clock"
        );
        // No escalation happened, so no os_read span exists.
        assert!(spans.iter().all(|s| s.name != "os_read"));
    }

    #[test]
    fn obs_attached_offer_drop_reaches_the_registry() {
        // Same wedge as `offer_counts_drops_instead_of_blocking`, with
        // the registry attached: the rejected offer must surface as
        // `ow_controller_backpressure_dropped_total`.
        let obs = Obs::new();
        let (entered_tx, entered_rx) = std::sync::mpsc::channel::<()>();
        let (gate_tx, gate_rx) = std::sync::mpsc::channel::<()>();
        let store = seq_batch(0, 1);
        let replay = store.clone();
        let ctl = ReliableLiveController::spawn_sharded_obs(
            1,
            2,
            RetryPolicy::default(),
            Box::new(move |_, seqs| {
                entered_tx.send(()).unwrap();
                gate_rx.recv().unwrap();
                seqs.iter().map(|&s| replay[s as usize]).collect()
            }),
            Box::new(|_| panic!("no escalation expected")),
            1,
            Some(&obs),
        );
        ctl.sender
            .send(ReliableMsg::Announce {
                subwindow: 0,
                announced: 1,
            })
            .unwrap();
        ctl.sender
            .send(ReliableMsg::EndOfStream { subwindow: 0 })
            .unwrap();
        entered_rx.recv().unwrap();
        assert!(ctl.offer(ReliableMsg::Afr(store[0])));
        assert!(ctl.offer(ReliableMsg::Afr(store[0])));
        assert!(!ctl.offer(ReliableMsg::Afr(store[0])));
        gate_tx.send(()).unwrap();
        let metrics = ctl.join();
        assert_eq!(metrics.dropped, 1);
        assert_eq!(
            obs.snapshot()
                .value("ow_controller_backpressure_dropped_total", &[]),
            1
        );
    }

    #[test]
    fn block_stream_matches_batch_path_byte_for_byte() {
        // The same workload delivered as AfrBatch messages and as
        // chunked AfrBlock streams (with a lost seal flag on the last
        // sub-window, repaired by shutdown) must merge identically.
        let run_batch = |shards: usize| {
            let ctl = LiveController::spawn_sharded(3, 64, shards);
            for sw in 0..5u32 {
                ctl.sender
                    .send(batch(sw, 0..60, (sw as u64 + 1) * 3))
                    .unwrap();
            }
            let handle = ctl.handle.clone();
            assert_eq!(ctl.join(), 5);
            handle
        };
        let run_blocks = |shards: usize| {
            let ctl = LiveController::spawn_sharded(3, 64, shards);
            for sw in 0..5u32 {
                let afrs: Vec<FlowRecord> = (0..60u32)
                    .map(|i| FlowRecord::frequency(FlowKey::src_ip(i), (sw as u64 + 1) * 3, sw))
                    .collect();
                let chunks: Vec<&[FlowRecord]> = afrs.chunks(17).collect();
                for (i, chunk) in chunks.iter().enumerate() {
                    // The last sub-window's seal flag is "lost": the
                    // next sub-window's first block (or shutdown) must
                    // seal it implicitly.
                    let seal = i + 1 == chunks.len() && sw != 4;
                    ctl.sender
                        .send(DataPlaneMsg::AfrBlock {
                            block: RecordBlock::from_records(sw, chunk),
                            seal,
                        })
                        .unwrap();
                }
            }
            let handle = ctl.handle.clone();
            assert_eq!(ctl.join(), 5);
            handle
        };
        let baseline = run_batch(1);
        for shards in [1usize, 4] {
            let h = run_blocks(shards);
            assert_eq!(h.subwindows(), vec![2, 3, 4]);
            assert_eq!(
                encode_merged(&h.snapshot()),
                encode_merged(&baseline.snapshot()),
                "{shards}-shard block stream diverged from the batch path"
            );
        }
    }

    #[test]
    fn reliable_block_bursts_match_per_record_stream() {
        let run = |blocked: bool| {
            let store: HashMap<u32, Vec<FlowRecord>> =
                (0..3u32).map(|sw| (sw, seq_batch(sw, 40))).collect();
            let retrans_store = store.clone();
            let ctl = ReliableLiveController::spawn_sharded(
                2,
                64,
                RetryPolicy::default(),
                Box::new(move |sw, seqs| {
                    let batch = &retrans_store[&sw];
                    seqs.iter().map(|&s| batch[s as usize]).collect()
                }),
                Box::new(|_| panic!("no escalation expected")),
                4,
            );
            for sw in 0..3u32 {
                ctl.sender
                    .send(ReliableMsg::Announce {
                        subwindow: sw,
                        announced: 40,
                    })
                    .unwrap();
                // Lossy stream; one burst is also duplicated whole.
                let survivors: Vec<FlowRecord> = store[&sw]
                    .iter()
                    .filter(|r| r.seq % 5 != 2)
                    .copied()
                    .collect();
                if blocked {
                    for chunk in survivors.chunks(9) {
                        let block = RecordBlock::from_records(sw, chunk);
                        ctl.sender.send(ReliableMsg::AfrBlock(block)).unwrap();
                    }
                    ctl.sender
                        .send(ReliableMsg::AfrBlock(RecordBlock::from_records(
                            sw,
                            &survivors[0..9],
                        )))
                        .unwrap();
                } else {
                    for rec in &survivors {
                        ctl.sender.send(ReliableMsg::Afr(*rec)).unwrap();
                    }
                    for rec in &survivors[0..9] {
                        ctl.sender.send(ReliableMsg::Afr(*rec)).unwrap();
                    }
                }
                ctl.sender
                    .send(ReliableMsg::EndOfStream { subwindow: sw })
                    .unwrap();
            }
            let handle = ctl.handle.clone();
            let metrics = ctl.join();
            (handle, metrics)
        };
        let (per_record, m1) = run(false);
        let (blocked, m2) = run(true);
        assert_eq!(
            encode_merged(&blocked.snapshot()),
            encode_merged(&per_record.snapshot()),
            "block bursts diverged from the per-record stream"
        );
        assert_eq!(m2.first_pass, m1.first_pass);
        assert_eq!(m2.duplicates, m1.duplicates);
        assert_eq!(m2.recovered, m1.recovered);
        assert_eq!(m1.duplicates, 27, "three duplicated 9-record bursts");
    }

    #[test]
    fn early_block_waits_for_its_announcement() {
        // A whole block races ahead of its announcement: it must buffer
        // and fold in once the announcement lands.
        let store = seq_batch(6, 8);
        let ctl = ReliableLiveController::spawn_sharded(
            2,
            64,
            RetryPolicy::default(),
            Box::new(|_, _| panic!("complete stream needs no retransmit")),
            Box::new(|_| panic!("no escalation expected")),
            2,
        );
        ctl.sender
            .send(ReliableMsg::AfrBlock(RecordBlock::from_records(6, &store)))
            .unwrap();
        ctl.sender
            .send(ReliableMsg::Announce {
                subwindow: 6,
                announced: 8,
            })
            .unwrap();
        let handle = ctl.handle.clone();
        let metrics = ctl.join();
        assert_eq!(handle.merged_flows(), 8);
        assert_eq!(metrics.first_pass, 8);
        assert_eq!(metrics.recovered, 0);
    }

    #[test]
    fn rejected_block_counts_dropped_records_not_messages() {
        // Satellite-6 regression: the offer path's drop accounting is in
        // *records*. Wedge the router, fill the queue (depth 2), then
        // offer a 5-record block — `dropped` must rise by 5, not 1, and
        // the registry counter must mirror it.
        let obs = Obs::new();
        let (entered_tx, entered_rx) = std::sync::mpsc::channel::<()>();
        let (gate_tx, gate_rx) = std::sync::mpsc::channel::<()>();
        let store = seq_batch(0, 1);
        let replay = store.clone();
        let ctl = ReliableLiveController::spawn_sharded_obs(
            1,
            2,
            RetryPolicy::default(),
            Box::new(move |_, seqs| {
                entered_tx.send(()).unwrap();
                gate_rx.recv().unwrap();
                seqs.iter().map(|&s| replay[s as usize]).collect()
            }),
            Box::new(|_| panic!("no escalation expected")),
            1,
            Some(&obs),
        );
        ctl.sender
            .send(ReliableMsg::Announce {
                subwindow: 0,
                announced: 1,
            })
            .unwrap();
        ctl.sender
            .send(ReliableMsg::EndOfStream { subwindow: 0 })
            .unwrap();
        entered_rx.recv().unwrap();
        assert!(ctl.offer(ReliableMsg::Afr(store[0])));
        assert!(ctl.offer(ReliableMsg::Afr(store[0])));
        let burst = RecordBlock::from_records(0, &seq_batch(0, 5));
        assert!(
            !ctl.offer(ReliableMsg::AfrBlock(burst)),
            "third offer overflows"
        );
        assert_eq!(
            ctl.handle.dropped(),
            5,
            "a rejected block drops its whole payload"
        );
        gate_tx.send(()).unwrap();
        let metrics = ctl.join();
        assert_eq!(metrics.dropped, 5);
        assert_eq!(
            obs.snapshot()
                .value("ow_controller_backpressure_dropped_total", &[]),
            5
        );
    }

    #[test]
    fn block_and_record_counters_reconcile_after_join() {
        // 3 sub-windows × 12 records over 4 shards: every record routed
        // is counted, blocks_total counts one open block per (shard,
        // sub-window) at this scale, and the queued-records gauges
        // settle to zero once the workers drain.
        let obs = Obs::new();
        let store: HashMap<u32, Vec<FlowRecord>> =
            (0..3u32).map(|sw| (sw, seq_batch(sw, 12))).collect();
        let retrans_store = store.clone();
        let ctl = ReliableLiveController::spawn_sharded_obs(
            2,
            64,
            RetryPolicy::default(),
            Box::new(move |sw, seqs| {
                let batch = &retrans_store[&sw];
                seqs.iter().map(|&s| batch[s as usize]).collect()
            }),
            Box::new(|_| panic!("no escalation expected")),
            4,
            Some(&obs),
        );
        for sw in 0..3u32 {
            ctl.sender
                .send(ReliableMsg::Announce {
                    subwindow: sw,
                    announced: 12,
                })
                .unwrap();
            ctl.sender
                .send(ReliableMsg::AfrBlock(RecordBlock::from_records(
                    sw,
                    &store[&sw],
                )))
                .unwrap();
            ctl.sender
                .send(ReliableMsg::EndOfStream { subwindow: sw })
                .unwrap();
        }
        let _ = ctl.join();
        let snap = obs.snapshot();
        assert_eq!(snap.value("ow_controller_records_total", &[]), 36);
        assert_eq!(
            snap.value("ow_controller_blocks_total", &[]),
            12,
            "one block per shard per sub-window at this scale"
        );
        for shard in 0..4u32 {
            assert_eq!(
                snap.value(
                    "ow_controller_shard_queue_records",
                    &[("shard", &shard.to_string())]
                ),
                0,
                "shard {shard} queued-records gauge must settle to 0"
            );
        }
    }

    #[test]
    fn queries_concurrent_with_ingest() {
        let ctl = LiveController::spawn(3, 64);
        let handle = ctl.handle.clone();
        let reader = std::thread::spawn(move || {
            let mut max_seen = 0;
            for _ in 0..200 {
                max_seen = max_seen.max(handle.merged_flows());
                std::thread::yield_now();
            }
            max_seen
        });
        for sw in 0..20u32 {
            ctl.sender.send(batch(sw, 0..50, 1)).unwrap();
        }
        let _ = reader.join().unwrap();
        let final_handle = ctl.handle.clone();
        assert_eq!(ctl.join(), 20);
        // Final state spans the last 3 sub-windows.
        assert_eq!(final_handle.subwindows(), vec![17, 18, 19]);
    }
}
