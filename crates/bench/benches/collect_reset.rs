//! CPU cost of the functional collect-and-reset engine (AFR generation
//! and reset) across flowkey-population sizes and collection modes —
//! the controller/switch work behind Exp#6's modelled latencies.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use ow_common::flowkey::{FlowKey, KeyKind};
use ow_common::packet::{Packet, TcpFlags};
use ow_common::time::Instant;
use ow_sketch::CountMin;
use ow_switch::app::{DataPlaneApp, FrequencyApp};
use ow_switch::collect::{CollectConfig, CollectMode, CrEngine};
use ow_switch::flowkey::FlowkeyTracker;
use ow_switch::latency::LatencyModel;

fn populated(keys: usize, fk_capacity: usize) -> (FrequencyApp<CountMin>, FlowkeyTracker) {
    let mut app = FrequencyApp::new(CountMin::new(2, 32 * 1024, 1), KeyKind::SrcIp, false);
    let mut tracker = FlowkeyTracker::new(fk_capacity, keys, 2);
    for i in 0..keys as u32 {
        let p = Packet::tcp(Instant::ZERO, i + 1, 9, 1, 80, TcpFlags::ack(), 64);
        app.update(&p);
        tracker.track(&FlowKey::src_ip(i + 1));
    }
    (app, tracker)
}

fn bench_collect(c: &mut Criterion) {
    let engine = CrEngine::new(LatencyModel::default());
    let mut group = c.benchmark_group("collect_and_reset");
    group.sample_size(20);
    for &keys in &[1_024usize, 8_192, 32_768] {
        group.throughput(Throughput::Elements(keys as u64));
        for (label, mode) in [
            ("hybrid", CollectMode::Hybrid),
            ("data_plane", CollectMode::DataPlane),
            ("control_plane", CollectMode::ControlPlane),
        ] {
            group.bench_with_input(BenchmarkId::new(label, keys), &keys, |b, &keys| {
                b.iter_batched(
                    || populated(keys, keys / 2),
                    |(mut app, mut tracker)| {
                        let out = engine.collect_and_reset(
                            &mut app,
                            &mut tracker,
                            0,
                            CollectConfig {
                                mode,
                                recirc_packets: 3,
                                rdma: false,
                            },
                        );
                        std::hint::black_box(out.afrs.len());
                    },
                    criterion::BatchSize::LargeInput,
                );
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_collect);
criterion_main!(benches);
