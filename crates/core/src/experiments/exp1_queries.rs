//! Exp#1 (Figure 7): query-driven telemetry accuracy.
//!
//! Integrates the window mechanisms with the seven Sonata queries
//! (Q1–Q7) and scores each mechanism's reports against the matching
//! ideal: tumbling mechanisms (ITW, TW1, TW2, OTW) against ITW, sliding
//! (OSW) against ISW, plus the ITW-vs-ISW row showing what tumbling
//! windows inherently miss.

use serde::Serialize;

use ow_common::time::Duration;
use ow_query::spec::standard_queries;

use crate::app::QueryApp;
use crate::config::WindowConfig;
use crate::evaluate::{score_reports, union_score};
use crate::experiments::common::{evaluation_trace, MechScore, Scale};
use crate::mechanisms::{run_conventional_tw, run_ideal, run_omniwindow_probed, Mode};

/// One query's accuracy rows.
#[derive(Debug, Clone, Serialize)]
pub struct QueryAccuracy {
    /// Query name (Q1–Q7).
    pub query: String,
    /// Per-mechanism precision/recall.
    pub rows: Vec<MechScore>,
}

/// The whole experiment's results.
#[derive(Debug, Clone, Serialize)]
pub struct Exp1Result {
    /// One entry per query.
    pub queries: Vec<QueryAccuracy>,
}

/// TW1's blackout: the switch-OS C&R time for the query state, during
/// which the single memory region cannot measure. 60 ms ≈ the OS reading
/// + clearing a Sonata-scale register array via PCIe.
pub const TW1_BLACKOUT: Duration = Duration::from_millis(60);

/// Run Exp#1.
pub fn run(scale: Scale, seed: u64) -> Exp1Result {
    let trace = evaluation_trace(scale, seed);
    let cfg = WindowConfig::paper_default();
    let fk = scale.fk_capacity();

    let mut queries = Vec::new();
    for spec in standard_queries() {
        let app = QueryApp::new(spec);
        // Window state sized to the scale's slot budget; sub-windows get
        // 1/4 of the window's memory (paper §9.1).
        let mem = app.memory_for_slots(scale.query_slots());
        let sub_mem = mem / 4;
        let itw = run_ideal(&app, &trace, &cfg, Mode::Tumbling);
        let isw = run_ideal(&app, &trace, &cfg, Mode::Sliding);
        let tw1 = run_conventional_tw(&app, &trace, &cfg, mem, TW1_BLACKOUT, seed, &[]);
        let tw2 = run_conventional_tw(&app, &trace, &cfg, mem, Duration::ZERO, seed, &[]);
        let otw = run_omniwindow_probed(&app, &trace, &cfg, Mode::Tumbling, sub_mem, fk, seed, &[]);
        let osw = run_omniwindow_probed(&app, &trace, &cfg, Mode::Sliding, sub_mem, fk, seed, &[]);

        let mut rows = Vec::new();
        let mut push = |name: &str, pr: ow_common::metrics::PrecisionRecall| {
            rows.push(MechScore {
                mechanism: name.to_string(),
                precision: pr.precision,
                recall: pr.recall,
            });
        };
        // ITW vs ISW compares the *union over time* of detections: every
        // tumbling window is also a sliding position, so ITW's precision
        // is 1.0 by construction and its recall measures the anomalies
        // only a sliding window catches (Figure 1).
        push("ITW-vs-ISW", union_score(&itw, &isw));
        push("TW1", score_reports(&tw1, &itw));
        push("TW2", score_reports(&tw2, &itw));
        push("OTW", score_reports(&otw, &itw));
        push("OSW", score_reports(&osw, &isw));

        queries.push(QueryAccuracy {
            query: spec.name.to_string(),
            rows,
        });
    }
    Exp1Result { queries }
}

impl Exp1Result {
    /// Average of a metric over all queries for one mechanism.
    pub fn average(&self, mechanism: &str) -> (f64, f64) {
        let rows: Vec<&MechScore> = self
            .queries
            .iter()
            .flat_map(|q| q.rows.iter())
            .filter(|r| r.mechanism == mechanism)
            .collect();
        let n = rows.len().max(1) as f64;
        (
            rows.iter().map(|r| r.precision).sum::<f64>() / n,
            rows.iter().map(|r| r.recall).sum::<f64>() / n,
        )
    }
}
