//! Exp#10 (Figure 15): accuracy under different window sizes.
//!
//! Heavy-hitter detection with MV-Sketch while the user-desired window
//! grows from 0.5 s to 2 s. TW1/TW2 allocated their memory for the
//! original 0.5 s window, so larger windows overflow their state and
//! accuracy degrades; OmniWindow keeps measuring 100 ms sub-windows with
//! fixed per-sub-window memory, so its accuracy is flat in the window
//! size. Sliding Sketch's over-inclusion error likewise grows.

use serde::Serialize;

use ow_common::time::Duration;

use crate::app::HeavyHitterApp;
use crate::config::WindowConfig;
use crate::evaluate::score_reports;
use crate::experiments::common::{evaluation_trace_stretched, MechScore, Scale};
use crate::experiments::exp1_queries::TW1_BLACKOUT;
use crate::mechanisms::{
    run_conventional_tw, run_ideal, run_omniwindow_probed, run_sliding_sketch, Mode,
};

/// Accuracy rows for one window size.
#[derive(Debug, Clone, Serialize)]
pub struct WindowSizePoint {
    /// Window size in milliseconds.
    pub window_ms: u64,
    /// Tumbling mechanisms scored against ITW, sliding against ISW.
    pub rows: Vec<MechScore>,
}

/// The whole experiment.
#[derive(Debug, Clone, Serialize)]
pub struct Exp10Result {
    /// One entry per window size.
    pub points: Vec<WindowSizePoint>,
}

/// Run Exp#10 for the given window sizes (paper: 500–2000 ms).
pub fn run(scale: Scale, window_sizes_ms: &[u64], threshold: u64, seed: u64) -> Exp10Result {
    // A stretched trace: the 2 s windows need several complete windows.
    let trace = evaluation_trace_stretched(scale, seed, 2);
    let app = HeavyHitterApp::mv(threshold);
    // TW memory is provisioned for the *original* 500 ms window and does
    // not grow with the user-desired window — the paper runs its MV
    // instance well into contention even at 500 ms (hundreds of
    // thousands of flows against 8 MB), which a tenth of the window
    // budget reproduces at this trace's flow counts. OmniWindow's
    // per-sub-window budget is fixed regardless of the window size.
    let tw_memory = scale.window_memory() / 10;
    let sub_memory = scale.subwindow_memory();
    let fk = scale.fk_capacity();

    let mut points = Vec::new();
    for &win_ms in window_sizes_ms {
        let cfg = WindowConfig::new(
            Duration::from_millis(win_ms),
            Duration::from_millis(100),
            Duration::from_millis(100),
        )
        .expect("geometry valid");

        let itw = run_ideal(&app, &trace, &cfg, Mode::Tumbling);
        let isw = run_ideal(&app, &trace, &cfg, Mode::Sliding);
        let tw1 = run_conventional_tw(&app, &trace, &cfg, tw_memory, TW1_BLACKOUT, seed, &[]);
        let tw2 = run_conventional_tw(&app, &trace, &cfg, tw_memory, Duration::ZERO, seed, &[]);
        let otw = run_omniwindow_probed(
            &app,
            &trace,
            &cfg,
            Mode::Tumbling,
            sub_memory,
            fk,
            seed,
            &[],
        );
        let osw =
            run_omniwindow_probed(&app, &trace, &cfg, Mode::Sliding, sub_memory, fk, seed, &[]);
        let ss = run_sliding_sketch(&app, &trace, &cfg, tw_memory, seed, &[]);

        let mut rows = Vec::new();
        let mut push = |name: &str, pr: ow_common::metrics::PrecisionRecall| {
            rows.push(MechScore {
                mechanism: name.to_string(),
                precision: pr.precision,
                recall: pr.recall,
            });
        };
        push("TW1", score_reports(&tw1, &itw));
        push("TW2", score_reports(&tw2, &itw));
        push("OTW", score_reports(&otw, &itw));
        push("OSW", score_reports(&osw, &isw));
        push("SS", score_reports(&ss, &isw));

        points.push(WindowSizePoint {
            window_ms: win_ms,
            rows,
        });
    }
    Exp10Result { points }
}

impl Exp10Result {
    /// A mechanism's (precision, recall) at a window size.
    pub fn at(&self, window_ms: u64, mechanism: &str) -> Option<(f64, f64)> {
        self.points
            .iter()
            .find(|p| p.window_ms == window_ms)?
            .rows
            .iter()
            .find(|r| r.mechanism == mechanism)
            .map(|r| (r.precision, r.recall))
    }
}
